# Empty dependencies file for surveyor_cli.
# This may be replaced when dependencies are built.
