file(REMOVE_RECURSE
  "CMakeFiles/surveyor_cli.dir/surveyor_cli.cc.o"
  "CMakeFiles/surveyor_cli.dir/surveyor_cli.cc.o.d"
  "surveyor_cli"
  "surveyor_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveyor_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
