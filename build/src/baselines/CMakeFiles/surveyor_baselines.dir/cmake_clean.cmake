file(REMOVE_RECURSE
  "CMakeFiles/surveyor_baselines.dir/majority_vote.cc.o"
  "CMakeFiles/surveyor_baselines.dir/majority_vote.cc.o.d"
  "CMakeFiles/surveyor_baselines.dir/webchild.cc.o"
  "CMakeFiles/surveyor_baselines.dir/webchild.cc.o.d"
  "libsurveyor_baselines.a"
  "libsurveyor_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveyor_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
