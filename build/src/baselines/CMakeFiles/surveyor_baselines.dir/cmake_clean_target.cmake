file(REMOVE_RECURSE
  "libsurveyor_baselines.a"
)
