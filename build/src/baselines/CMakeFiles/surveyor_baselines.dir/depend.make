# Empty dependencies file for surveyor_baselines.
# This may be replaced when dependencies are built.
