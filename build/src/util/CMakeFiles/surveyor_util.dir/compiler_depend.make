# Empty compiler generated dependencies file for surveyor_util.
# This may be replaced when dependencies are built.
