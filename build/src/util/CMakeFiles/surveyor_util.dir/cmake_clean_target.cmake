file(REMOVE_RECURSE
  "libsurveyor_util.a"
)
