file(REMOVE_RECURSE
  "CMakeFiles/surveyor_util.dir/logging.cc.o"
  "CMakeFiles/surveyor_util.dir/logging.cc.o.d"
  "CMakeFiles/surveyor_util.dir/math.cc.o"
  "CMakeFiles/surveyor_util.dir/math.cc.o.d"
  "CMakeFiles/surveyor_util.dir/rng.cc.o"
  "CMakeFiles/surveyor_util.dir/rng.cc.o.d"
  "CMakeFiles/surveyor_util.dir/status.cc.o"
  "CMakeFiles/surveyor_util.dir/status.cc.o.d"
  "CMakeFiles/surveyor_util.dir/string_util.cc.o"
  "CMakeFiles/surveyor_util.dir/string_util.cc.o.d"
  "CMakeFiles/surveyor_util.dir/table.cc.o"
  "CMakeFiles/surveyor_util.dir/table.cc.o.d"
  "CMakeFiles/surveyor_util.dir/threadpool.cc.o"
  "CMakeFiles/surveyor_util.dir/threadpool.cc.o.d"
  "libsurveyor_util.a"
  "libsurveyor_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveyor_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
