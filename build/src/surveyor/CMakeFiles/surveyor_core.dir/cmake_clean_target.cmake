file(REMOVE_RECURSE
  "libsurveyor_core.a"
)
