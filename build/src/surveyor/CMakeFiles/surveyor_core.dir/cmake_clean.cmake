file(REMOVE_RECURSE
  "CMakeFiles/surveyor_core.dir/mr_pipeline.cc.o"
  "CMakeFiles/surveyor_core.dir/mr_pipeline.cc.o.d"
  "CMakeFiles/surveyor_core.dir/opinion_store.cc.o"
  "CMakeFiles/surveyor_core.dir/opinion_store.cc.o.d"
  "CMakeFiles/surveyor_core.dir/pipeline.cc.o"
  "CMakeFiles/surveyor_core.dir/pipeline.cc.o.d"
  "CMakeFiles/surveyor_core.dir/surveyor_classifier.cc.o"
  "CMakeFiles/surveyor_core.dir/surveyor_classifier.cc.o.d"
  "libsurveyor_core.a"
  "libsurveyor_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveyor_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
