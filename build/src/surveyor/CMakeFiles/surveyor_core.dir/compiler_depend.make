# Empty compiler generated dependencies file for surveyor_core.
# This may be replaced when dependencies are built.
