
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/surveyor/mr_pipeline.cc" "src/surveyor/CMakeFiles/surveyor_core.dir/mr_pipeline.cc.o" "gcc" "src/surveyor/CMakeFiles/surveyor_core.dir/mr_pipeline.cc.o.d"
  "/root/repo/src/surveyor/opinion_store.cc" "src/surveyor/CMakeFiles/surveyor_core.dir/opinion_store.cc.o" "gcc" "src/surveyor/CMakeFiles/surveyor_core.dir/opinion_store.cc.o.d"
  "/root/repo/src/surveyor/pipeline.cc" "src/surveyor/CMakeFiles/surveyor_core.dir/pipeline.cc.o" "gcc" "src/surveyor/CMakeFiles/surveyor_core.dir/pipeline.cc.o.d"
  "/root/repo/src/surveyor/surveyor_classifier.cc" "src/surveyor/CMakeFiles/surveyor_core.dir/surveyor_classifier.cc.o" "gcc" "src/surveyor/CMakeFiles/surveyor_core.dir/surveyor_classifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/surveyor_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/extraction/CMakeFiles/surveyor_extraction.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/surveyor_model.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/surveyor_text.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/surveyor_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surveyor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
