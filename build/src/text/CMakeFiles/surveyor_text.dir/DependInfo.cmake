
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/annotator.cc" "src/text/CMakeFiles/surveyor_text.dir/annotator.cc.o" "gcc" "src/text/CMakeFiles/surveyor_text.dir/annotator.cc.o.d"
  "/root/repo/src/text/dependency.cc" "src/text/CMakeFiles/surveyor_text.dir/dependency.cc.o" "gcc" "src/text/CMakeFiles/surveyor_text.dir/dependency.cc.o.d"
  "/root/repo/src/text/document.cc" "src/text/CMakeFiles/surveyor_text.dir/document.cc.o" "gcc" "src/text/CMakeFiles/surveyor_text.dir/document.cc.o.d"
  "/root/repo/src/text/document_source.cc" "src/text/CMakeFiles/surveyor_text.dir/document_source.cc.o" "gcc" "src/text/CMakeFiles/surveyor_text.dir/document_source.cc.o.d"
  "/root/repo/src/text/entity_tagger.cc" "src/text/CMakeFiles/surveyor_text.dir/entity_tagger.cc.o" "gcc" "src/text/CMakeFiles/surveyor_text.dir/entity_tagger.cc.o.d"
  "/root/repo/src/text/lexicon.cc" "src/text/CMakeFiles/surveyor_text.dir/lexicon.cc.o" "gcc" "src/text/CMakeFiles/surveyor_text.dir/lexicon.cc.o.d"
  "/root/repo/src/text/lexicon_io.cc" "src/text/CMakeFiles/surveyor_text.dir/lexicon_io.cc.o" "gcc" "src/text/CMakeFiles/surveyor_text.dir/lexicon_io.cc.o.d"
  "/root/repo/src/text/parser.cc" "src/text/CMakeFiles/surveyor_text.dir/parser.cc.o" "gcc" "src/text/CMakeFiles/surveyor_text.dir/parser.cc.o.d"
  "/root/repo/src/text/token.cc" "src/text/CMakeFiles/surveyor_text.dir/token.cc.o" "gcc" "src/text/CMakeFiles/surveyor_text.dir/token.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/surveyor_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/surveyor_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/surveyor_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surveyor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
