file(REMOVE_RECURSE
  "CMakeFiles/surveyor_text.dir/annotator.cc.o"
  "CMakeFiles/surveyor_text.dir/annotator.cc.o.d"
  "CMakeFiles/surveyor_text.dir/dependency.cc.o"
  "CMakeFiles/surveyor_text.dir/dependency.cc.o.d"
  "CMakeFiles/surveyor_text.dir/document.cc.o"
  "CMakeFiles/surveyor_text.dir/document.cc.o.d"
  "CMakeFiles/surveyor_text.dir/document_source.cc.o"
  "CMakeFiles/surveyor_text.dir/document_source.cc.o.d"
  "CMakeFiles/surveyor_text.dir/entity_tagger.cc.o"
  "CMakeFiles/surveyor_text.dir/entity_tagger.cc.o.d"
  "CMakeFiles/surveyor_text.dir/lexicon.cc.o"
  "CMakeFiles/surveyor_text.dir/lexicon.cc.o.d"
  "CMakeFiles/surveyor_text.dir/lexicon_io.cc.o"
  "CMakeFiles/surveyor_text.dir/lexicon_io.cc.o.d"
  "CMakeFiles/surveyor_text.dir/parser.cc.o"
  "CMakeFiles/surveyor_text.dir/parser.cc.o.d"
  "CMakeFiles/surveyor_text.dir/token.cc.o"
  "CMakeFiles/surveyor_text.dir/token.cc.o.d"
  "CMakeFiles/surveyor_text.dir/tokenizer.cc.o"
  "CMakeFiles/surveyor_text.dir/tokenizer.cc.o.d"
  "libsurveyor_text.a"
  "libsurveyor_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveyor_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
