# Empty compiler generated dependencies file for surveyor_text.
# This may be replaced when dependencies are built.
