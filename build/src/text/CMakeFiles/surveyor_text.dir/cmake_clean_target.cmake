file(REMOVE_RECURSE
  "libsurveyor_text.a"
)
