
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/generator.cc" "src/corpus/CMakeFiles/surveyor_corpus.dir/generator.cc.o" "gcc" "src/corpus/CMakeFiles/surveyor_corpus.dir/generator.cc.o.d"
  "/root/repo/src/corpus/name_generator.cc" "src/corpus/CMakeFiles/surveyor_corpus.dir/name_generator.cc.o" "gcc" "src/corpus/CMakeFiles/surveyor_corpus.dir/name_generator.cc.o.d"
  "/root/repo/src/corpus/realizer.cc" "src/corpus/CMakeFiles/surveyor_corpus.dir/realizer.cc.o" "gcc" "src/corpus/CMakeFiles/surveyor_corpus.dir/realizer.cc.o.d"
  "/root/repo/src/corpus/world.cc" "src/corpus/CMakeFiles/surveyor_corpus.dir/world.cc.o" "gcc" "src/corpus/CMakeFiles/surveyor_corpus.dir/world.cc.o.d"
  "/root/repo/src/corpus/world_io.cc" "src/corpus/CMakeFiles/surveyor_corpus.dir/world_io.cc.o" "gcc" "src/corpus/CMakeFiles/surveyor_corpus.dir/world_io.cc.o.d"
  "/root/repo/src/corpus/worlds.cc" "src/corpus/CMakeFiles/surveyor_corpus.dir/worlds.cc.o" "gcc" "src/corpus/CMakeFiles/surveyor_corpus.dir/worlds.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/surveyor_text.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/surveyor_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/surveyor_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surveyor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
