file(REMOVE_RECURSE
  "CMakeFiles/surveyor_corpus.dir/generator.cc.o"
  "CMakeFiles/surveyor_corpus.dir/generator.cc.o.d"
  "CMakeFiles/surveyor_corpus.dir/name_generator.cc.o"
  "CMakeFiles/surveyor_corpus.dir/name_generator.cc.o.d"
  "CMakeFiles/surveyor_corpus.dir/realizer.cc.o"
  "CMakeFiles/surveyor_corpus.dir/realizer.cc.o.d"
  "CMakeFiles/surveyor_corpus.dir/world.cc.o"
  "CMakeFiles/surveyor_corpus.dir/world.cc.o.d"
  "CMakeFiles/surveyor_corpus.dir/world_io.cc.o"
  "CMakeFiles/surveyor_corpus.dir/world_io.cc.o.d"
  "CMakeFiles/surveyor_corpus.dir/worlds.cc.o"
  "CMakeFiles/surveyor_corpus.dir/worlds.cc.o.d"
  "libsurveyor_corpus.a"
  "libsurveyor_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveyor_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
