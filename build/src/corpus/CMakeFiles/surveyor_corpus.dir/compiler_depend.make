# Empty compiler generated dependencies file for surveyor_corpus.
# This may be replaced when dependencies are built.
