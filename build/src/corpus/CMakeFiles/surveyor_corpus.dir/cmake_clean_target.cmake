file(REMOVE_RECURSE
  "libsurveyor_corpus.a"
)
