file(REMOVE_RECURSE
  "libsurveyor_kb.a"
)
