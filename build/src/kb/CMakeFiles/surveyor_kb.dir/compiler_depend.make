# Empty compiler generated dependencies file for surveyor_kb.
# This may be replaced when dependencies are built.
