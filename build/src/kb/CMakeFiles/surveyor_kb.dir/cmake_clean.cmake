file(REMOVE_RECURSE
  "CMakeFiles/surveyor_kb.dir/kb_io.cc.o"
  "CMakeFiles/surveyor_kb.dir/kb_io.cc.o.d"
  "CMakeFiles/surveyor_kb.dir/knowledge_base.cc.o"
  "CMakeFiles/surveyor_kb.dir/knowledge_base.cc.o.d"
  "libsurveyor_kb.a"
  "libsurveyor_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveyor_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
