file(REMOVE_RECURSE
  "CMakeFiles/surveyor_extraction.dir/aggregator.cc.o"
  "CMakeFiles/surveyor_extraction.dir/aggregator.cc.o.d"
  "CMakeFiles/surveyor_extraction.dir/extractor.cc.o"
  "CMakeFiles/surveyor_extraction.dir/extractor.cc.o.d"
  "libsurveyor_extraction.a"
  "libsurveyor_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveyor_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
