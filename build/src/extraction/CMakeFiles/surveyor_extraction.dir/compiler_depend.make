# Empty compiler generated dependencies file for surveyor_extraction.
# This may be replaced when dependencies are built.
