file(REMOVE_RECURSE
  "libsurveyor_extraction.a"
)
