file(REMOVE_RECURSE
  "CMakeFiles/surveyor_model.dir/diagnostics.cc.o"
  "CMakeFiles/surveyor_model.dir/diagnostics.cc.o.d"
  "CMakeFiles/surveyor_model.dir/em.cc.o"
  "CMakeFiles/surveyor_model.dir/em.cc.o.d"
  "CMakeFiles/surveyor_model.dir/user_model.cc.o"
  "CMakeFiles/surveyor_model.dir/user_model.cc.o.d"
  "libsurveyor_model.a"
  "libsurveyor_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveyor_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
