
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/diagnostics.cc" "src/model/CMakeFiles/surveyor_model.dir/diagnostics.cc.o" "gcc" "src/model/CMakeFiles/surveyor_model.dir/diagnostics.cc.o.d"
  "/root/repo/src/model/em.cc" "src/model/CMakeFiles/surveyor_model.dir/em.cc.o" "gcc" "src/model/CMakeFiles/surveyor_model.dir/em.cc.o.d"
  "/root/repo/src/model/user_model.cc" "src/model/CMakeFiles/surveyor_model.dir/user_model.cc.o" "gcc" "src/model/CMakeFiles/surveyor_model.dir/user_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/surveyor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
