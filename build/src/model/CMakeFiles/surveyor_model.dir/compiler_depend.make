# Empty compiler generated dependencies file for surveyor_model.
# This may be replaced when dependencies are built.
