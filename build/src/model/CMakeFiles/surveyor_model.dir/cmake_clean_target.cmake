file(REMOVE_RECURSE
  "libsurveyor_model.a"
)
