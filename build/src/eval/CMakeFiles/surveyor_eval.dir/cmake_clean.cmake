file(REMOVE_RECURSE
  "CMakeFiles/surveyor_eval.dir/amt.cc.o"
  "CMakeFiles/surveyor_eval.dir/amt.cc.o.d"
  "CMakeFiles/surveyor_eval.dir/bootstrap.cc.o"
  "CMakeFiles/surveyor_eval.dir/bootstrap.cc.o.d"
  "CMakeFiles/surveyor_eval.dir/extraction_stats.cc.o"
  "CMakeFiles/surveyor_eval.dir/extraction_stats.cc.o.d"
  "CMakeFiles/surveyor_eval.dir/harness.cc.o"
  "CMakeFiles/surveyor_eval.dir/harness.cc.o.d"
  "CMakeFiles/surveyor_eval.dir/hit_counter.cc.o"
  "CMakeFiles/surveyor_eval.dir/hit_counter.cc.o.d"
  "CMakeFiles/surveyor_eval.dir/objective_link.cc.o"
  "CMakeFiles/surveyor_eval.dir/objective_link.cc.o.d"
  "CMakeFiles/surveyor_eval.dir/testcases.cc.o"
  "CMakeFiles/surveyor_eval.dir/testcases.cc.o.d"
  "libsurveyor_eval.a"
  "libsurveyor_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveyor_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
