# Empty dependencies file for surveyor_eval.
# This may be replaced when dependencies are built.
