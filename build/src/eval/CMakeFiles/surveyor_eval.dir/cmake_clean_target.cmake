file(REMOVE_RECURSE
  "libsurveyor_eval.a"
)
