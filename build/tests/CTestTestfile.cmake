# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/kb_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/extraction_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/surveyor_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
