file(REMOVE_RECURSE
  "CMakeFiles/surveyor_test.dir/surveyor/mr_pipeline_test.cc.o"
  "CMakeFiles/surveyor_test.dir/surveyor/mr_pipeline_test.cc.o.d"
  "CMakeFiles/surveyor_test.dir/surveyor/opinion_store_test.cc.o"
  "CMakeFiles/surveyor_test.dir/surveyor/opinion_store_test.cc.o.d"
  "CMakeFiles/surveyor_test.dir/surveyor/pipeline_test.cc.o"
  "CMakeFiles/surveyor_test.dir/surveyor/pipeline_test.cc.o.d"
  "surveyor_test"
  "surveyor_test.pdb"
  "surveyor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveyor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
