# Empty dependencies file for surveyor_test.
# This may be replaced when dependencies are built.
