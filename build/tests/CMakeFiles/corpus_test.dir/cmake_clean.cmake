file(REMOVE_RECURSE
  "CMakeFiles/corpus_test.dir/corpus/generator_test.cc.o"
  "CMakeFiles/corpus_test.dir/corpus/generator_test.cc.o.d"
  "CMakeFiles/corpus_test.dir/corpus/realizer_test.cc.o"
  "CMakeFiles/corpus_test.dir/corpus/realizer_test.cc.o.d"
  "CMakeFiles/corpus_test.dir/corpus/region_test.cc.o"
  "CMakeFiles/corpus_test.dir/corpus/region_test.cc.o.d"
  "CMakeFiles/corpus_test.dir/corpus/world_test.cc.o"
  "CMakeFiles/corpus_test.dir/corpus/world_test.cc.o.d"
  "CMakeFiles/corpus_test.dir/corpus/worlds_test.cc.o"
  "CMakeFiles/corpus_test.dir/corpus/worlds_test.cc.o.d"
  "corpus_test"
  "corpus_test.pdb"
  "corpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
