# Empty compiler generated dependencies file for custom_corpus.
# This may be replaced when dependencies are built.
