file(REMOVE_RECURSE
  "CMakeFiles/cute_animals.dir/cute_animals.cpp.o"
  "CMakeFiles/cute_animals.dir/cute_animals.cpp.o.d"
  "cute_animals"
  "cute_animals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cute_animals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
