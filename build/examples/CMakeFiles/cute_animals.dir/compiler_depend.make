# Empty compiler generated dependencies file for cute_animals.
# This may be replaced when dependencies are built.
