# Empty compiler generated dependencies file for region_specific.
# This may be replaced when dependencies are built.
