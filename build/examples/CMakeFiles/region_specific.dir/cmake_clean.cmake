file(REMOVE_RECURSE
  "CMakeFiles/region_specific.dir/region_specific.cpp.o"
  "CMakeFiles/region_specific.dir/region_specific.cpp.o.d"
  "region_specific"
  "region_specific.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_specific.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
