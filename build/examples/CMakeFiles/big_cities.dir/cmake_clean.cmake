file(REMOVE_RECURSE
  "CMakeFiles/big_cities.dir/big_cities.cpp.o"
  "CMakeFiles/big_cities.dir/big_cities.cpp.o.d"
  "big_cities"
  "big_cities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/big_cities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
