# Empty dependencies file for big_cities.
# This may be replaced when dependencies are built.
