file(REMOVE_RECURSE
  "CMakeFiles/fig13_appendix_correlations.dir/fig13_appendix_correlations.cc.o"
  "CMakeFiles/fig13_appendix_correlations.dir/fig13_appendix_correlations.cc.o.d"
  "fig13_appendix_correlations"
  "fig13_appendix_correlations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_appendix_correlations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
