file(REMOVE_RECURSE
  "CMakeFiles/table5_random_sample.dir/table5_random_sample.cc.o"
  "CMakeFiles/table5_random_sample.dir/table5_random_sample.cc.o.d"
  "table5_random_sample"
  "table5_random_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_random_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
