# Empty compiler generated dependencies file for table5_random_sample.
# This may be replaced when dependencies are built.
