file(REMOVE_RECURSE
  "CMakeFiles/fig03_empirical_study.dir/fig03_empirical_study.cc.o"
  "CMakeFiles/fig03_empirical_study.dir/fig03_empirical_study.cc.o.d"
  "fig03_empirical_study"
  "fig03_empirical_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_empirical_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
