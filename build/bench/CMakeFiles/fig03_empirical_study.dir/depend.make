# Empty dependencies file for fig03_empirical_study.
# This may be replaced when dependencies are built.
