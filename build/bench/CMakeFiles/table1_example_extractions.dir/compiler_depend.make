# Empty compiler generated dependencies file for table1_example_extractions.
# This may be replaced when dependencies are built.
