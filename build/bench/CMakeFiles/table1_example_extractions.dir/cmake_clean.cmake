file(REMOVE_RECURSE
  "CMakeFiles/table1_example_extractions.dir/table1_example_extractions.cc.o"
  "CMakeFiles/table1_example_extractions.dir/table1_example_extractions.cc.o.d"
  "table1_example_extractions"
  "table1_example_extractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_example_extractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
