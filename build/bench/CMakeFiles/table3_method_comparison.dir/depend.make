# Empty dependencies file for table3_method_comparison.
# This may be replaced when dependencies are built.
