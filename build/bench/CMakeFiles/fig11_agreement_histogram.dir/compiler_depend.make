# Empty compiler generated dependencies file for fig11_agreement_histogram.
# This may be replaced when dependencies are built.
