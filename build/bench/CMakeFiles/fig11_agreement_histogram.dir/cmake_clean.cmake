file(REMOVE_RECURSE
  "CMakeFiles/fig11_agreement_histogram.dir/fig11_agreement_histogram.cc.o"
  "CMakeFiles/fig11_agreement_histogram.dir/fig11_agreement_histogram.cc.o.d"
  "fig11_agreement_histogram"
  "fig11_agreement_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_agreement_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
