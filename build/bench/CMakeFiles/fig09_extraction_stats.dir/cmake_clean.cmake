file(REMOVE_RECURSE
  "CMakeFiles/fig09_extraction_stats.dir/fig09_extraction_stats.cc.o"
  "CMakeFiles/fig09_extraction_stats.dir/fig09_extraction_stats.cc.o.d"
  "fig09_extraction_stats"
  "fig09_extraction_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_extraction_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
