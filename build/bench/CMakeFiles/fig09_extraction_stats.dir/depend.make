# Empty dependencies file for fig09_extraction_stats.
# This may be replaced when dependencies are built.
