
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_extraction_stats.cc" "bench/CMakeFiles/fig09_extraction_stats.dir/fig09_extraction_stats.cc.o" "gcc" "bench/CMakeFiles/fig09_extraction_stats.dir/fig09_extraction_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/surveyor_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/surveyor_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/surveyor/CMakeFiles/surveyor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/surveyor_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/extraction/CMakeFiles/surveyor_extraction.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/surveyor_text.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/surveyor_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/surveyor_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surveyor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
