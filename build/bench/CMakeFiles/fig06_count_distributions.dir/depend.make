# Empty dependencies file for fig06_count_distributions.
# This may be replaced when dependencies are built.
