file(REMOVE_RECURSE
  "CMakeFiles/fig06_count_distributions.dir/fig06_count_distributions.cc.o"
  "CMakeFiles/fig06_count_distributions.dir/fig06_count_distributions.cc.o.d"
  "fig06_count_distributions"
  "fig06_count_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_count_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
