file(REMOVE_RECURSE
  "CMakeFiles/fig10_amt_cute_animals.dir/fig10_amt_cute_animals.cc.o"
  "CMakeFiles/fig10_amt_cute_animals.dir/fig10_amt_cute_animals.cc.o.d"
  "fig10_amt_cute_animals"
  "fig10_amt_cute_animals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_amt_cute_animals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
