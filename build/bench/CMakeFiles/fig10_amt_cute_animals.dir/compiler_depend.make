# Empty compiler generated dependencies file for fig10_amt_cute_animals.
# This may be replaced when dependencies are built.
