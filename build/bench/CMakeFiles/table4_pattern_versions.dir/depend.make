# Empty dependencies file for table4_pattern_versions.
# This may be replaced when dependencies are built.
