file(REMOVE_RECURSE
  "CMakeFiles/table4_pattern_versions.dir/table4_pattern_versions.cc.o"
  "CMakeFiles/table4_pattern_versions.dir/table4_pattern_versions.cc.o.d"
  "table4_pattern_versions"
  "table4_pattern_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_pattern_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
