file(REMOVE_RECURSE
  "CMakeFiles/fig12_agreement_sweep.dir/fig12_agreement_sweep.cc.o"
  "CMakeFiles/fig12_agreement_sweep.dir/fig12_agreement_sweep.cc.o.d"
  "fig12_agreement_sweep"
  "fig12_agreement_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_agreement_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
