file(REMOVE_RECURSE
  "CMakeFiles/extension_objective_link.dir/extension_objective_link.cc.o"
  "CMakeFiles/extension_objective_link.dir/extension_objective_link.cc.o.d"
  "extension_objective_link"
  "extension_objective_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_objective_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
