# Empty compiler generated dependencies file for extension_objective_link.
# This may be replaced when dependencies are built.
