# Empty dependencies file for extension_objective_link.
# This may be replaced when dependencies are built.
