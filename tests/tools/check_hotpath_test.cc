#include "tools/check_hotpath_lib.h"

#include <filesystem>
#include <fstream>
#include <string>

#include "gtest/gtest.h"
#include "tools/lint_util.h"

namespace surveyor {
namespace hotpath {
namespace {

namespace fs = std::filesystem;

/// In-memory fixtures: every case pins the exact formatted output, so a
/// message or line-attribution change fails loudly.
class CheckHotpathTest : public ::testing::Test {
 protected:
  static std::string LintFile(const std::string& contents,
                              const Options& options = {}) {
    return FormatViolations(AnalyzeFile("f.cc", contents, options));
  }
};

TEST_F(CheckHotpathTest, ColdCodeIsClean) {
  EXPECT_EQ(LintFile("void F() {\n"
                     "  auto* p = new int[4];\n"
                     "  std::string copy = other;\n"
                     "  printf(\"hello\");\n"
                     "}\n"),
            "");
}

// The seeded violation pair from the issue: an unguarded allocation and a
// std::string copy inside an annotated region must both be caught.
TEST_F(CheckHotpathTest, MarkerFunctionCatchesSeededNewAndStringCopy) {
  EXPECT_EQ(LintFile("SURVEYOR_HOT_FUNCTION\n"
                     "void Tokenize(const std::string& input) {\n"
                     "  std::string copy = input;\n"
                     "  auto* scratch = new char[64];\n"
                     "}\n"),
            "f.cc:3: no-string-copy: std::string 'copy' copy-initialized in "
            "hot region; consider std::string_view\n"
            "f.cc:4: no-heap-alloc: operator new in hot region\n");
}

TEST_F(CheckHotpathTest, MarkerOnDeclarationCoversOnlyTheSignature) {
  EXPECT_EQ(LintFile("SURVEYOR_HOT_FUNCTION\n"
                     "void Fast(std::string by_value);\n"
                     "void Cold(std::string also_by_value);\n"),
            "f.cc:2: no-string-copy: by-value std::string parameter "
            "'by_value'; pass std::string_view\n");
}

TEST_F(CheckHotpathTest, MarkerRegionEndsAtTheClosingBrace) {
  EXPECT_EQ(LintFile("SURVEYOR_HOT_FUNCTION\n"
                     "void Fast() {\n"
                     "  if (x) { y(); }\n"
                     "}\n"
                     "void Cold() {\n"
                     "  auto* p = new int;\n"
                     "}\n"),
            "");
}

TEST_F(CheckHotpathTest, DefineOfTheMarkerItselfIsIgnored) {
  EXPECT_EQ(LintFile("#define SURVEYOR_HOT_FUNCTION\n"
                     "void Cold() { auto* p = new int; }\n"),
            "");
}

TEST_F(CheckHotpathTest, CommentRegionNestingKeepsOuterRegionOpen) {
  EXPECT_EQ(LintFile("// SURVEYOR_HOT_BEGIN\n"
                     "// SURVEYOR_HOT_BEGIN\n"
                     "// SURVEYOR_HOT_END\n"
                     "auto* still_hot = new int;\n"
                     "// SURVEYOR_HOT_END\n"
                     "auto* cold = new int;\n"),
            "f.cc:4: no-heap-alloc: operator new in hot region\n");
}

TEST_F(CheckHotpathTest, EndWithoutBeginIsReported) {
  EXPECT_EQ(LintFile("void F() {}\n"
                     "// SURVEYOR_HOT_END\n"),
            "f.cc:2: region: SURVEYOR_HOT_END without a matching "
            "SURVEYOR_HOT_BEGIN\n");
}

TEST_F(CheckHotpathTest, UnterminatedBeginIsReported) {
  EXPECT_EQ(LintFile("// SURVEYOR_HOT_BEGIN\n"
                     "void F() {}\n"),
            "f.cc:1: region: unterminated SURVEYOR_HOT_BEGIN (no matching "
            "SURVEYOR_HOT_END)\n");
}

TEST_F(CheckHotpathTest, MakeUniqueAndMakeSharedAreFlagged) {
  EXPECT_EQ(LintFile("// SURVEYOR_HOT_BEGIN\n"
                     "auto a = std::make_unique<int>(1);\n"
                     "auto b = std::make_shared<int>(2);\n"
                     "// SURVEYOR_HOT_END\n"),
            "f.cc:2: no-heap-alloc: 'make_unique' allocates in hot region\n"
            "f.cc:3: no-heap-alloc: 'make_shared' allocates in hot region\n");
}

TEST_F(CheckHotpathTest, ReserveInTheSameRegionLicensesPushBack) {
  EXPECT_EQ(LintFile("// SURVEYOR_HOT_BEGIN\n"
                     "void F(std::vector<int>& good, std::vector<int>& bad) {\n"
                     "  good.reserve(8);\n"
                     "  good.push_back(1);\n"
                     "  bad.push_back(2);\n"
                     "}\n"
                     "// SURVEYOR_HOT_END\n"),
            "f.cc:5: no-heap-alloc: 'bad.push_back' without a prior "
            "'bad.reserve' in this hot region\n");
}

TEST_F(CheckHotpathTest, ReserveInAnotherRegionDoesNotCount) {
  EXPECT_EQ(LintFile("SURVEYOR_HOT_FUNCTION\n"
                     "void A(std::vector<int>& xs) { xs.reserve(8); }\n"
                     "SURVEYOR_HOT_FUNCTION\n"
                     "void B(std::vector<int>& xs) { xs.push_back(1); }\n"),
            "f.cc:4: no-heap-alloc: 'xs.push_back' without a prior "
            "'xs.reserve' in this hot region\n");
}

TEST_F(CheckHotpathTest, VectorAndStringLocalsNeedReserve) {
  EXPECT_EQ(LintFile("// SURVEYOR_HOT_BEGIN\n"
                     "void F() {\n"
                     "  std::vector<int> xs;\n"
                     "  std::string s;\n"
                     "  std::vector<int> ok;\n"
                     "  ok.reserve(4);\n"
                     "  std::string buf;\n"
                     "  buf.reserve(64);\n"
                     "}\n"
                     "// SURVEYOR_HOT_END\n"),
            "f.cc:3: no-heap-alloc: std::vector 'xs' constructed without "
            "reserve in hot region\n"
            "f.cc:4: no-heap-alloc: std::string 's' constructed in hot "
            "region (hoist or reserve the buffer)\n");
}

TEST_F(CheckHotpathTest, LocksAndIoAreFlagged) {
  EXPECT_EQ(LintFile("// SURVEYOR_HOT_BEGIN\n"
                     "void F() {\n"
                     "  MutexLock lock(&mu);\n"
                     "  mu.lock();\n"
                     "  printf(\"x\");\n"
                     "  SURVEYOR_LOG(INFO) << 1;\n"
                     "}\n"
                     "// SURVEYOR_HOT_END\n"),
            "f.cc:3: no-lock: lock acquisition ('MutexLock') in hot region\n"
            "f.cc:4: no-lock: lock acquisition ('.lock()') in hot region\n"
            "f.cc:5: no-io-log: I/O or logging ('printf') in hot region\n"
            "f.cc:6: no-io-log: I/O or logging ('SURVEYOR_LOG') in hot "
            "region\n");
}

// Hostile input: rule keywords inside string and char literals must not
// fire — the lexer replaces literal bodies before matching.
TEST_F(CheckHotpathTest, LiteralsContainingKeywordsAreIgnored) {
  EXPECT_EQ(LintFile("// SURVEYOR_HOT_BEGIN\n"
                     "const char* a = \"new MutexLock printf\";\n"
                     "const char* b = R\"(make_unique)\";\n"
                     "char c = 'n';\n"
                     "// SURVEYOR_HOT_END\n"),
            "");
}

TEST_F(CheckHotpathTest, SameLineNolintSuppresses) {
  EXPECT_EQ(LintFile("// SURVEYOR_HOT_BEGIN\n"
                     "auto* p = new int;  // NOLINT_HOTPATH(no-heap-alloc)"
                     " arena setup\n"
                     "// SURVEYOR_HOT_END\n"),
            "");
}

TEST_F(CheckHotpathTest, NextLineNolintSuppressesOnlyTheNamedRule) {
  EXPECT_EQ(LintFile("// SURVEYOR_HOT_BEGIN\n"
                     "// NOLINTNEXTLINE_HOTPATH(no-heap-alloc)\n"
                     "auto* p = new int;\n"
                     "// NOLINTNEXTLINE_HOTPATH(no-lock)\n"
                     "auto* q = new int;\n"
                     "// SURVEYOR_HOT_END\n"),
            "f.cc:5: no-heap-alloc: operator new in hot region\n");
}

TEST_F(CheckHotpathTest, BareNolintSuppressesEveryRule) {
  EXPECT_EQ(LintFile("// SURVEYOR_HOT_BEGIN\n"
                     "auto* p = new MutexLock;  // NOLINT_HOTPATH\n"
                     "// SURVEYOR_HOT_END\n"),
            "");
}

TEST_F(CheckHotpathTest, UnusedStatusAuditFlagsBareCallStatements) {
  const std::string source =
      "util::Status Save(const std::string& path);\n"
      "util::StatusOr<int> Count();\n"
      "void F() {\n"
      "  Save(\"x\");\n"
      "  Count();\n"
      "}\n";
  EXPECT_EQ(LintFile(source), "");  // audit is opt-in
  Options audit;
  audit.audit_unused_status = true;
  EXPECT_EQ(LintFile(source, audit),
            "f.cc:4: unused-status: result of status-returning 'Save' is "
            "discarded\n"
            "f.cc:5: unused-status: result of status-returning 'Count' is "
            "discarded\n");
}

TEST_F(CheckHotpathTest, CheckedOrAssignedStatusesAreNotFlagged) {
  Options audit;
  audit.audit_unused_status = true;
  EXPECT_EQ(LintFile("util::Status Save(const std::string& path);\n"
                     "void F() {\n"
                     "  util::Status s = Save(\"x\");\n"
                     "  if (!Save(\"y\").ok()) return;\n"
                     "  SURVEYOR_RETURN_IF_ERROR(Save(\"z\"));\n"
                     "  Save(\"w\");  // NOLINT_HOTPATH(unused-status) fire-"
                     "and-forget\n"
                     "}\n",
                     audit),
            "");
}

TEST_F(CheckHotpathTest, BaselineSuppressesMatchesAndReportsStale) {
  const std::vector<Violation> violations = {
      {"a.cc", 3, "no-heap-alloc", "operator new in hot region"},
      {"a.cc", 9, "no-lock", "lock acquisition ('MutexLock') in hot region"},
  };
  const std::vector<BaselineEntry> baseline = {
      {"a.cc", 3, "no-heap-alloc"},
      {"gone.cc", 7, "no-io-log"},
  };
  const BaselineResult result = ApplyBaseline(violations, baseline);
  ASSERT_EQ(result.remaining.size(), 1u);
  EXPECT_EQ(result.remaining[0], violations[1]);
  ASSERT_EQ(result.stale.size(), 1u);
  EXPECT_EQ(result.stale[0].file, "gone.cc");
  EXPECT_EQ(result.stale[0].line, 7);
  EXPECT_EQ(result.stale[0].rule, "no-io-log");
}

TEST_F(CheckHotpathTest, BaselineJsonRoundTrips) {
  const std::vector<Violation> violations = {
      {"a.cc", 3, "no-heap-alloc", "operator new in hot region"},
      {"b \"q\".cc", 12, "no-string-copy", "m"},
  };
  const fs::path path =
      fs::path(::testing::TempDir()) / "check_hotpath_baseline_rt.json";
  {
    std::ofstream out(path);
    out << BaselineToJson(violations);
  }
  std::vector<BaselineEntry> parsed;
  std::string error;
  ASSERT_TRUE(ParseBaselineFile(path.string(), &parsed, &error)) << error;
  fs::remove(path);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].file, "a.cc");
  EXPECT_EQ(parsed[0].line, 3);
  EXPECT_EQ(parsed[0].rule, "no-heap-alloc");
  EXPECT_EQ(parsed[1].file, "b \"q\".cc");
  EXPECT_EQ(parsed[1].line, 12);
}

TEST_F(CheckHotpathTest, JsonOutputIsStable) {
  const std::vector<Violation> violations = {
      {"a.cc", 3, "no-heap-alloc", "operator new in hot region"},
  };
  EXPECT_EQ(ViolationsToJson(violations),
            "[\n"
            "  {\"file\": \"a.cc\", \"line\": 3, \"rule\": \"no-heap-alloc\","
            " \"message\": \"operator new in hot region\"}\n"
            "]\n");
  EXPECT_EQ(ViolationsToJson({}), "[]\n");
}

TEST_F(CheckHotpathTest, TreeAuditSeesDeclarationsAcrossFiles) {
  const fs::path root =
      fs::path(::testing::TempDir()) / "check_hotpath_tree_audit";
  fs::remove_all(root);
  fs::create_directories(root / "util");
  fs::create_directories(root / "io");
  {
    std::ofstream out(root / "util" / "saver.h");
    out << "util::Status Save(const std::string& path);\n";
  }
  {
    std::ofstream out(root / "io" / "caller.cc");
    out << "void F() {\n  Save(\"x\");\n}\n";
  }
  Options audit;
  audit.audit_unused_status = true;
  EXPECT_EQ(FormatViolations(AnalyzeTree(root.string(), audit)),
            "io/caller.cc:2: unused-status: result of status-returning "
            "'Save' is discarded\n");
  fs::remove_all(root);
}

}  // namespace
}  // namespace hotpath
}  // namespace surveyor
