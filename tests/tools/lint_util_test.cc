#include "tools/lint_util.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace surveyor {
namespace lint {
namespace {

TEST(ParseNolintsTest, ParsesRuleListAndBareForm) {
  const auto directives =
      ParseNolints("x // NOLINT_HOTPATH(no-heap-alloc, no-lock) why",
                   "HOTPATH");
  ASSERT_EQ(directives.size(), 1u);
  EXPECT_FALSE(directives[0].next_line);
  EXPECT_EQ(directives[0].rules,
            (std::set<std::string>{"no-heap-alloc", "no-lock"}));

  const auto bare = ParseNolints("// NOLINT_HOTPATH", "HOTPATH");
  ASSERT_EQ(bare.size(), 1u);
  EXPECT_TRUE(bare[0].rules.empty());  // empty = all rules
}

TEST(ParseNolintsTest, NextLineVariantAndWrongToolName) {
  const auto directives =
      ParseNolints("// NOLINTNEXTLINE_LAYERS(layer)", "LAYERS");
  ASSERT_EQ(directives.size(), 1u);
  EXPECT_TRUE(directives[0].next_line);

  EXPECT_TRUE(ParseNolints("// NOLINT_LAYERS(layer)", "HOTPATH").empty());
  EXPECT_TRUE(ParseNolints("// NOLINT(readability)", "HOTPATH").empty());
  // A longer token must not match as a prefix.
  EXPECT_TRUE(ParseNolints("// NOLINT_HOTPATHX(x)", "HOTPATH").empty());
}

TEST(ParseNolintsTest, MalformedListWidensToAllRules) {
  const auto unclosed = ParseNolints("// NOLINT_HOTPATH(no-lock", "HOTPATH");
  ASSERT_EQ(unclosed.size(), 1u);
  EXPECT_TRUE(unclosed[0].rules.empty());
}

TEST(IsSuppressedTest, SameLineAndNextLineScoping) {
  const std::vector<std::string> comments = {
      " NOLINTNEXTLINE_HOTPATH(no-lock)",  // line 1
      "",                                  // line 2 (covered by line 1)
      " NOLINT_HOTPATH(no-io-log)",        // line 3
  };
  EXPECT_TRUE(IsSuppressed(comments, 2, "HOTPATH", "no-lock"));
  EXPECT_FALSE(IsSuppressed(comments, 2, "HOTPATH", "no-io-log"));
  EXPECT_FALSE(IsSuppressed(comments, 1, "HOTPATH", "no-lock"));
  EXPECT_TRUE(IsSuppressed(comments, 3, "HOTPATH", "no-io-log"));
  EXPECT_FALSE(IsSuppressed(comments, 4, "HOTPATH", "no-io-log"));
  // Out-of-range lines never crash and never suppress.
  EXPECT_FALSE(IsSuppressed(comments, 0, "HOTPATH", "no-lock"));
  EXPECT_FALSE(IsSuppressed(comments, 99, "HOTPATH", "no-lock"));
}

}  // namespace
}  // namespace lint
}  // namespace surveyor
