#include "tools/check_layers_lib.h"

#include <filesystem>
#include <fstream>
#include <string>

#include "gtest/gtest.h"

namespace surveyor {
namespace layers {
namespace {

namespace fs = std::filesystem;

/// Materializes a fixture source tree under a per-test temp directory and
/// removes it on teardown.
class CheckLayersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("check_layers_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override { fs::remove_all(root_); }

  void WriteFile(const std::string& relative, const std::string& contents) {
    const fs::path path = root_ / relative;
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << contents;
  }

  /// Rules for a miniature repo mirroring the real one's bottom layers.
  static LayerRules MiniRules() {
    return LayerRules{
        {"util", {}},
        {"obs", {"util"}},
        {"text", {"util"}},
    };
  }

  std::string Lint(const LayerRules& rules) {
    return FormatViolations(AnalyzeTree(root_.string(), rules));
  }

  fs::path root_;
};

TEST_F(CheckLayersTest, LegalDagIsClean) {
  WriteFile("util/logging.h",
            "#ifndef SURVEYOR_UTIL_LOGGING_H_\n"
            "#define SURVEYOR_UTIL_LOGGING_H_\n"
            "#endif  // SURVEYOR_UTIL_LOGGING_H_\n");
  WriteFile("obs/metrics.h",
            "#ifndef SURVEYOR_OBS_METRICS_H_\n"
            "#define SURVEYOR_OBS_METRICS_H_\n"
            "#include \"util/logging.h\"\n"
            "#endif  // SURVEYOR_OBS_METRICS_H_\n");
  WriteFile("obs/metrics.cc",
            "#include \"obs/metrics.h\"\n"
            "#include \"util/logging.h\"\n");
  EXPECT_EQ(Lint(MiniRules()), "");
}

TEST_F(CheckLayersTest, UtilIncludingObsIsReported) {
  WriteFile("obs/metrics.h",
            "#ifndef SURVEYOR_OBS_METRICS_H_\n"
            "#define SURVEYOR_OBS_METRICS_H_\n"
            "#endif  // SURVEYOR_OBS_METRICS_H_\n");
  WriteFile("util/logging.cc",
            "#include \"util/logging.h\"\n"
            "#include \"obs/metrics.h\"\n");
  WriteFile("util/logging.h",
            "#ifndef SURVEYOR_UTIL_LOGGING_H_\n"
            "#define SURVEYOR_UTIL_LOGGING_H_\n"
            "#endif  // SURVEYOR_UTIL_LOGGING_H_\n");
  EXPECT_EQ(Lint(MiniRules()),
            "util/logging.cc:2: layer: layer 'util' may not include 'obs' "
            "(allowed: (nothing))\n");
}

TEST_F(CheckLayersTest, DisallowedSiblingEdgeListsAllowedLayers) {
  WriteFile("text/parser.cc", "#include \"obs/metrics.h\"\n");
  EXPECT_EQ(Lint(MiniRules()),
            "text/parser.cc:1: layer: layer 'text' may not include 'obs' "
            "(allowed: util)\n");
}

TEST_F(CheckLayersTest, UndeclaredLayersAreReported) {
  WriteFile("rogue/thing.cc", "#include \"util/logging.h\"\n");
  WriteFile("util/a.cc", "#include \"vendored/blob.h\"\n");
  EXPECT_EQ(Lint(MiniRules()),
            "rogue/thing.cc:1: layer: file is under 'rogue', which is not a "
            "declared layer\n"
            "util/a.cc:1: layer: include \"vendored/blob.h\" does not resolve "
            "to a declared layer\n");
}

TEST_F(CheckLayersTest, MismatchedHeaderGuardIsReported) {
  WriteFile("util/rng.h",
            "#ifndef SURVEYOR_UTIL_RANDOM_H_\n"
            "#define SURVEYOR_UTIL_RANDOM_H_\n"
            "#endif  // SURVEYOR_UTIL_RANDOM_H_\n");
  EXPECT_EQ(Lint(MiniRules()),
            "util/rng.h:1: header-guard: guard 'SURVEYOR_UTIL_RANDOM_H_' "
            "should be 'SURVEYOR_UTIL_RNG_H_'\n");
}

TEST_F(CheckLayersTest, MissingGuardAndMismatchedDefineAreReported) {
  WriteFile("util/a.h", "int x;\n");
  WriteFile("util/b.h",
            "#ifndef SURVEYOR_UTIL_B_H_\n"
            "#define SURVEYOR_UTIL_B_H\n"
            "#endif\n");
  EXPECT_EQ(Lint(MiniRules()),
            "util/a.h:0: header-guard: missing include guard "
            "'SURVEYOR_UTIL_A_H_'\n"
            "util/b.h:2: header-guard: #define after #ifndef should be "
            "'SURVEYOR_UTIL_B_H_'\n");
}

TEST_F(CheckLayersTest, UsingNamespaceInHeaderIsReported) {
  WriteFile("util/bad.h",
            "#ifndef SURVEYOR_UTIL_BAD_H_\n"
            "#define SURVEYOR_UTIL_BAD_H_\n"
            "using namespace std;\n"
            "#endif  // SURVEYOR_UTIL_BAD_H_\n");
  // Source files may (sparingly) use using-directives; only headers are
  // checked.
  WriteFile("util/fine.cc", "using namespace std;\n");
  EXPECT_EQ(Lint(MiniRules()),
            "util/bad.h:3: using-namespace: headers must not contain 'using "
            "namespace'\n");
}

TEST_F(CheckLayersTest, ObsMayNotIncludeExtraction) {
  // The profiler attributes samples to extraction without depending on it:
  // the tag/ring primitives live in util, below obs, and extraction tags
  // itself. This test pins the edge under the real repo rules — if the
  // profiler ever grows an "#include \"extraction/...\"" the lint fails.
  WriteFile("extraction/extractor.h",
            "#ifndef SURVEYOR_EXTRACTION_EXTRACTOR_H_\n"
            "#define SURVEYOR_EXTRACTION_EXTRACTOR_H_\n"
            "#endif  // SURVEYOR_EXTRACTION_EXTRACTOR_H_\n");
  WriteFile("obs/profiler.cc",
            "#include \"util/sample_ring.h\"\n"
            "#include \"extraction/extractor.h\"\n");
  WriteFile("util/sample_ring.h",
            "#ifndef SURVEYOR_UTIL_SAMPLE_RING_H_\n"
            "#define SURVEYOR_UTIL_SAMPLE_RING_H_\n"
            "#endif  // SURVEYOR_UTIL_SAMPLE_RING_H_\n");
  EXPECT_EQ(Lint(DefaultRules()),
            "obs/profiler.cc:2: layer: layer 'obs' may not include "
            "'extraction' (allowed: util)\n");
}

TEST_F(CheckLayersTest, SelfAndSystemIncludesAreIgnored) {
  WriteFile("obs/trace.cc",
            "#include \"obs/trace.h\"\n"
            "#include <vector>\n"
            "#include \"local_helper.h\"\n");
  EXPECT_EQ(Lint(MiniRules()), "");
}

TEST(ExpectedGuardTest, MapsPathToGuardToken) {
  EXPECT_EQ(ExpectedGuard("util/threadpool.h", {}),
            "SURVEYOR_UTIL_THREADPOOL_H_");
  EXPECT_EQ(ExpectedGuard("obs/log_ring.h", {}), "SURVEYOR_OBS_LOG_RING_H_");
  Options prefixed;
  prefixed.guard_prefix = "MY_";
  EXPECT_EQ(ExpectedGuard("a/b-c.d.h", prefixed), "MY_A_B_C_D_H_");
}

TEST(ValidateRulesTest, AcceptsTheRepoRules) {
  EXPECT_EQ(ValidateRules(DefaultRules()), "");
}

TEST(ValidateRulesTest, RejectsUndeclaredDependency) {
  const LayerRules rules{{"a", {"ghost"}}};
  EXPECT_EQ(ValidateRules(rules),
            "layer 'a' depends on undeclared layer 'ghost'");
}

TEST(ValidateRulesTest, RejectsSelfDependency) {
  const LayerRules rules{{"a", {"a"}}};
  EXPECT_EQ(ValidateRules(rules), "layer 'a' lists itself as a dependency");
}

TEST(ValidateRulesTest, RejectsCycles) {
  const LayerRules rules{{"a", {"b"}}, {"b", {"c"}}, {"c", {"a"}}};
  const std::string error = ValidateRules(rules);
  EXPECT_NE(error.find("cycle"), std::string::npos) << error;
}

TEST(ParseRulesFileTest, ParsesCommentsAndEntries) {
  const fs::path path =
      fs::path(::testing::TempDir()) / "check_layers_rules.txt";
  {
    std::ofstream out(path);
    out << "# comment\n"
           "util:\n"
           "obs: util  # trailing comment\n"
           "\n"
           "surveyor: obs util\n";
  }
  LayerRules rules;
  std::string error;
  ASSERT_TRUE(ParseRulesFile(path.string(), &rules, &error)) << error;
  EXPECT_EQ(rules.size(), 3u);
  EXPECT_TRUE(rules.at("util").empty());
  EXPECT_EQ(rules.at("obs"), (std::set<std::string>{"util"}));
  EXPECT_EQ(rules.at("surveyor"), (std::set<std::string>{"obs", "util"}));
  fs::remove(path);
}

TEST(ParseRulesFileTest, RejectsMalformedLines) {
  const fs::path path =
      fs::path(::testing::TempDir()) / "check_layers_bad_rules.txt";
  {
    std::ofstream out(path);
    out << "util\n";
  }
  LayerRules rules;
  std::string error;
  EXPECT_FALSE(ParseRulesFile(path.string(), &rules, &error));
  EXPECT_NE(error.find("expected 'layer: dep dep ...'"), std::string::npos)
      << error;
  fs::remove(path);
}

TEST(ViolationsToJsonTest, EscapesAndStructures) {
  const std::vector<Violation> violations{
      {"util/a.h", 3, "header-guard", "guard \"X\" wrong"}};
  EXPECT_EQ(ViolationsToJson(violations),
            "[\n  {\"file\": \"util/a.h\", \"line\": 3, "
            "\"rule\": \"header-guard\", "
            "\"message\": \"guard \\\"X\\\" wrong\"}\n]\n");
  EXPECT_EQ(ViolationsToJson({}), "[]\n");
}

TEST_F(CheckLayersTest, NolintOnTheViolatingLineSuppresses) {
  WriteFile("util/logging.cc",
            "#include \"obs/metrics.h\"  "
            "// NOLINT_LAYERS(layer) log sink shim\n");
  EXPECT_EQ(Lint(MiniRules()), "");
}

TEST_F(CheckLayersTest, NolintNextLineSuppresses) {
  WriteFile("util/logging.cc",
            "// NOLINTNEXTLINE_LAYERS(layer)\n"
            "#include \"obs/metrics.h\"\n");
  EXPECT_EQ(Lint(MiniRules()), "");
}

// The negative twin of the suppression tests: an unsuppressed violation
// (and one suppressed for the wrong rule) must still fail.
TEST_F(CheckLayersTest, UnsuppressedViolationStillFails) {
  WriteFile("util/a.cc",
            "#include \"obs/metrics.h\"  // NOLINT_LAYERS(header-guard)\n");
  WriteFile("util/b.cc", "#include \"obs/metrics.h\"\n");
  EXPECT_EQ(Lint(MiniRules()),
            "util/a.cc:1: layer: layer 'util' may not include 'obs' "
            "(allowed: (nothing))\n"
            "util/b.cc:1: layer: layer 'util' may not include 'obs' "
            "(allowed: (nothing))\n");
}

TEST_F(CheckLayersTest, NolintForTheOtherToolDoesNotSuppress) {
  WriteFile("util/a.cc",
            "#include \"obs/metrics.h\"  // NOLINT_HOTPATH(layer)\n");
  EXPECT_EQ(Lint(MiniRules()),
            "util/a.cc:1: layer: layer 'util' may not include 'obs' "
            "(allowed: (nothing))\n");
}

}  // namespace
}  // namespace layers
}  // namespace surveyor
