// Integration tests: the full Surveyor loop on the paper's evaluation
// world — corpus simulation, annotation, extraction, EM, and the method
// comparison. These assert the *shapes* of the paper's results (who wins,
// and in which direction metrics move), not absolute numbers.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/majority_vote.h"
#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "eval/harness.h"
#include "eval/testcases.h"
#include "surveyor/pipeline.h"
#include "surveyor/surveyor_classifier.h"
#include "util/math.h"

namespace surveyor {
namespace {

/// Shared expensive fixture: one paper-world corpus, prepared once.
class EndToEndTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(
        World::Generate(MakePaperWorldConfig(/*entities_per_type=*/150)).value());
    GeneratorOptions options;
    options.author_population = 800;
    options.seed = 101;
    corpus_ = new std::vector<RawDocument>(
        CorpusGenerator(world_, options).Generate());
    harness_ = new ComparisonHarness(&world_->kb(), &world_->lexicon());
    ASSERT_TRUE(harness_->Prepare(*corpus_).ok());
    Rng rng(103);
    labeled_ = new std::vector<LabeledTestCase>(LabelWithAmt(
        *world_, SelectCuratedTestCases(*world_, 20), AmtOptions{20}, rng));
  }

  static void TearDownTestSuite() {
    delete labeled_;
    delete harness_;
    delete corpus_;
    delete world_;
    labeled_ = nullptr;
    harness_ = nullptr;
    corpus_ = nullptr;
    world_ = nullptr;
  }

  static World* world_;
  static std::vector<RawDocument>* corpus_;
  static ComparisonHarness* harness_;
  static std::vector<LabeledTestCase>* labeled_;
};

World* EndToEndTest::world_ = nullptr;
std::vector<RawDocument>* EndToEndTest::corpus_ = nullptr;
ComparisonHarness* EndToEndTest::harness_ = nullptr;
std::vector<LabeledTestCase>* EndToEndTest::labeled_ = nullptr;

TEST_F(EndToEndTest, CorpusIsSubstantial) {
  EXPECT_GT(corpus_->size(), 1000u);
  EXPECT_GT(harness_->total_statements(), 5000);
}

TEST_F(EndToEndTest, TestSetResemblesPaperProtocol) {
  // 25 pairs x 20 entities = 500 cases, minus ties (about 4% in the paper).
  EXPECT_GT(labeled_->size(), 400u);
  EXPECT_LE(labeled_->size(), 500u);
  // Mean worker agreement around 17/20.
  double mean_agreement = 0.0;
  for (const auto& l : *labeled_) mean_agreement += l.vote.agreement;
  mean_agreement /= static_cast<double>(labeled_->size());
  EXPECT_GT(mean_agreement, 15.0);
  EXPECT_LT(mean_agreement, 19.9);
}

TEST_F(EndToEndTest, SurveyorBeatsBaselinesTable3Shape) {
  SurveyorClassifier surveyor_method;
  MajorityVoteClassifier mv;
  ScaledMajorityVoteClassifier smv(harness_->global_scale());

  const EvalMetrics s = harness_->Evaluate(surveyor_method, *labeled_);
  const EvalMetrics m = harness_->Evaluate(mv, *labeled_);
  const EvalMetrics sc = harness_->Evaluate(smv, *labeled_);
  const EvalMetrics w = harness_->Evaluate(harness_->webchild(), *labeled_);

  // Table 3 shape: Surveyor has much higher coverage than MV/SMV, and the
  // best precision and F1.
  EXPECT_GT(s.coverage(), 0.9);
  EXPECT_GT(s.coverage(), m.coverage() * 1.5);
  EXPECT_GT(s.coverage(), sc.coverage() * 1.5);
  EXPECT_GT(s.precision(), m.precision());
  EXPECT_GT(s.precision(), sc.precision());
  EXPECT_GT(s.f1(), m.f1());
  EXPECT_GT(s.f1(), sc.f1());
  EXPECT_GT(s.f1(), w.f1());
  EXPECT_GT(s.precision(), 0.7);
}

TEST_F(EndToEndTest, PrecisionRisesWithWorkerAgreementFig12Shape) {
  SurveyorClassifier surveyor_method;
  const EvalMetrics all = harness_->Evaluate(surveyor_method, *labeled_, 11);
  const EvalMetrics high = harness_->Evaluate(surveyor_method, *labeled_, 19);
  ASSERT_GT(high.total_cases, 20);
  EXPECT_GE(high.precision(), all.precision());
}

TEST_F(EndToEndTest, MajorityVoteDoesNotBenefitFromAgreement) {
  // The paper observes MV precision stays flat as agreement grows; allow
  // generous slack but ensure it does not approach Surveyor.
  SurveyorClassifier surveyor_method;
  MajorityVoteClassifier mv;
  const EvalMetrics mv_high = harness_->Evaluate(mv, *labeled_, 19);
  const EvalMetrics s_high = harness_->Evaluate(surveyor_method, *labeled_, 19);
  EXPECT_GT(s_high.precision(), mv_high.precision());
}

TEST_F(EndToEndTest, FittedParametersReflectKnownBiases) {
  // "cute animals": positive statements should dominate (mu+ >> mu-),
  // matching the generating bias (0.030 vs 0.002 per author).
  const TypeId animal = world_->kb().TypeByName("animal").value();
  const PropertyTypeEvidence* cute = harness_->EvidenceFor(animal, "cute");
  ASSERT_NE(cute, nullptr);
  SurveyorClassifier surveyor_method;
  auto fit = surveyor_method.Fit(*cute);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->params.mu_positive, fit->params.mu_negative);

  // "quiet celebrities" was generated with the inverse bias.
  const TypeId celebrity = world_->kb().TypeByName("celebrity").value();
  const PropertyTypeEvidence* quiet =
      harness_->EvidenceFor(celebrity, "quiet");
  ASSERT_NE(quiet, nullptr);
  auto quiet_fit = surveyor_method.Fit(*quiet);
  ASSERT_TRUE(quiet_fit.ok());
  EXPECT_GT(quiet_fit->params.mu_negative, quiet_fit->params.mu_positive);
}

TEST_F(EndToEndTest, BigCityPolarityTracksPopulation) {
  // Section 2 / Fig. 3(d): model polarity correlates with population.
  const TypeId city = world_->kb().TypeByName("city").value();
  const PropertyTypeEvidence* big = harness_->EvidenceFor(city, "big");
  ASSERT_NE(big, nullptr);
  SurveyorClassifier surveyor_method;
  auto fit = surveyor_method.Fit(*big);
  ASSERT_TRUE(fit.ok());

  std::vector<double> log_population;
  std::vector<double> posterior;
  for (size_t i = 0; i < big->entities.size(); ++i) {
    log_population.push_back(std::log(
        world_->kb().GetAttribute(big->entities[i], "population").value()));
    posterior.push_back(fit->responsibilities[i]);
  }
  EXPECT_GT(SpearmanCorrelation(log_population, posterior), 0.6);
}

TEST_F(EndToEndTest, UnmentionedCitiesClassifiedNotBig) {
  const TypeId city = world_->kb().TypeByName("city").value();
  const PropertyTypeEvidence* big = harness_->EvidenceFor(city, "big");
  ASSERT_NE(big, nullptr);
  SurveyorClassifier surveyor_method;
  auto fit = surveyor_method.Fit(*big);
  ASSERT_TRUE(fit.ok());
  int unmentioned = 0, negative = 0;
  for (size_t i = 0; i < big->entities.size(); ++i) {
    if (big->counts[i].total() != 0) continue;
    ++unmentioned;
    if (fit->responsibilities[i] < 0.5) ++negative;
  }
  ASSERT_GT(unmentioned, 10);
  EXPECT_GT(static_cast<double>(negative) / unmentioned, 0.9);
}

TEST_F(EndToEndTest, FullPipelineStatsConsistent) {
  SurveyorConfig config;
  config.min_statements = 100;
  SurveyorPipeline pipeline(&world_->kb(), &world_->lexicon(), config);
  auto result = pipeline.Run(*corpus_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.num_documents,
            static_cast<int64_t>(corpus_->size()));
  EXPECT_GT(result->stats.num_kept_property_type_pairs, 10);
  // Every kept pair covers all entities of its type.
  for (const PropertyTypeResult& pair : result->pairs) {
    EXPECT_EQ(pair.evidence.entities.size(),
              world_->kb().EntitiesOfType(pair.evidence.type).size());
  }
}

}  // namespace
}  // namespace surveyor
