// End-to-end chaos tests (DESIGN.md §9): the acceptance scenario of the
// fault-tolerance layer. A streaming run with a 1% injected document-read
// fault rate plus one forced EM divergence must complete, keep every
// non-degraded pair identical to the fault-free run, and account for all
// of it in PipelineStats and the run report.
#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "surveyor/pipeline.h"
#include "text/document.h"
#include "text/document_source.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace surveyor {
namespace {

/// Yields `healthy` documents, then ends the stream with an error — the
/// shape of a corpus whose backing store died mid-read.
class TruncatedSource : public DocumentSource {
 public:
  TruncatedSource(const std::vector<RawDocument>* corpus, size_t healthy)
      : corpus_(corpus), healthy_(healthy) {}

  std::optional<RawDocument> Next() override {
    MutexLock lock(mutex_);
    if (next_ >= healthy_ || next_ >= corpus_->size()) return std::nullopt;
    return (*corpus_)[next_++];
  }

  Status status() const override {
    MutexLock lock(mutex_);
    return next_ >= healthy_ ? Status::Internal("backing store vanished")
                             : Status::OK();
  }

 private:
  const std::vector<RawDocument>* corpus_;
  const size_t healthy_;
  mutable Mutex mutex_;
  size_t next_ SURVEYOR_GUARDED_BY(mutex_) = 0;
};

class ChaosIntegrationTest : public testing::Test {
 protected:
  ChaosIntegrationTest()
      : world_(World::Generate(MakeTinyWorldConfig()).value()) {
    GeneratorOptions options;
    options.author_population = 8000;
    options.seed = 77;
    corpus_ = CorpusGenerator(&world_, options).Generate();
    // Unique per process: ctest runs the fixture's tests concurrently, and
    // a shared path would be rewritten under a sibling's streaming read.
    corpus_path_ = testing::TempDir() + "/chaos_corpus_" +
                   std::to_string(::getpid()) + ".tsv";
    SURVEYOR_CHECK(SaveCorpusToFile(corpus_, corpus_path_).ok());
  }

  SurveyorConfig BaseConfig() const {
    SurveyorConfig config;
    config.min_statements = 20;
    // Single-threaded keeps the fault trigger stream deterministic, so the
    // @N one-shot picks the same EM victim on every run.
    config.num_threads = 1;
    return config;
  }

  World world_;
  std::vector<RawDocument> corpus_;
  std::string corpus_path_;
};

TEST_F(ChaosIntegrationTest, AcceptanceRunSurvivesFaultsWithFullAccounting) {
  // Fault-free reference run.
  FileDocumentSource clean_source(corpus_path_);
  auto clean = SurveyorPipeline(&world_.kb(), &world_.lexicon(), BaseConfig())
                   .RunStreaming(clean_source);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_GE(clean->pairs.size(), 2u);

  // Chaos run: 1% transient read failures plus one forced EM divergence.
  const std::string ambient_spec = FaultInjector::Global().spec();
  SurveyorConfig config = BaseConfig();
  config.fault_spec = "doc_read:0.01,em_fit:@2";
  config.fault_seed = 1234;
  FileDocumentSource chaotic_source(corpus_path_);
  auto chaotic = SurveyorPipeline(&world_.kb(), &world_.lexicon(), config)
                     .RunStreaming(chaotic_source);
  ASSERT_TRUE(chaotic.ok()) << chaotic.status();
  ASSERT_TRUE(chaotic_source.status().ok());

  // Retries hid every read fault: no document was lost.
  EXPECT_EQ(chaotic->stats.num_documents, clean->stats.num_documents);
  EXPECT_EQ(chaotic->stats.num_statements, clean->stats.num_statements);
  EXPECT_EQ(chaotic->stats.num_docs_quarantined, 0);
  EXPECT_EQ(chaotic->stats.source_truncated, 0);

  // Full accounting: every injected fault is either a recovered retry
  // (doc_read) or the one degraded pair (em_fit).
  EXPECT_GT(chaotic->stats.num_faults_injected, 0);
  EXPECT_EQ(chaotic->stats.num_faults_injected,
            chaotic->stats.num_retries + 1);
  EXPECT_EQ(chaotic->stats.num_degraded_pairs, 1);
  EXPECT_TRUE(chaotic->report.degradation.degraded);
  EXPECT_EQ(chaotic->report.degradation.retries, chaotic->stats.num_retries);
  EXPECT_EQ(chaotic->report.degradation.pairs_degraded, 1);
  ASSERT_EQ(chaotic->report.degradation.degraded_pairs.size(), 1u);

  // Every non-degraded pair is identical to the fault-free run.
  ASSERT_EQ(chaotic->pairs.size(), clean->pairs.size());
  size_t degraded_count = 0;
  for (size_t p = 0; p < chaotic->pairs.size(); ++p) {
    const PropertyTypeResult& pair = chaotic->pairs[p];
    const PropertyTypeResult& reference = clean->pairs[p];
    EXPECT_EQ(pair.evidence.counts, reference.evidence.counts);
    if (pair.degraded) {
      ++degraded_count;
      continue;
    }
    EXPECT_EQ(pair.posterior, reference.posterior);
    EXPECT_EQ(pair.polarity, reference.polarity);
    EXPECT_EQ(pair.em_iterations, reference.em_iterations);
  }
  EXPECT_EQ(degraded_count, 1u);

  // The run's fault scope restored whatever was armed before it — possibly
  // an environment-armed chaos profile, possibly nothing.
  EXPECT_EQ(FaultInjector::Global().spec(), ambient_spec);
}

TEST_F(ChaosIntegrationTest, CorruptLinesQuarantineInsteadOfFailingTheRun) {
  const std::string path = testing::TempDir() + "/corrupt_corpus_" +
                           std::to_string(::getpid()) + ".tsv";
  {
    std::ifstream in(corpus_path_);
    std::ofstream out(path);
    std::string line;
    int copied = 0;
    while (std::getline(in, line)) {
      out << line << "\n";
      // Sprinkle corrupt records through the file.
      if (++copied % 50 == 0) out << "corrupt record without tabs\n";
    }
    out << "trailing garbage\n";
  }

  FileDocumentSourceOptions source_options;
  source_options.quarantine_corrupt = true;
  FileDocumentSource source(path, source_options);
  auto result = SurveyorPipeline(&world_.kb(), &world_.lexicon(), BaseConfig())
                    .RunStreaming(source);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(source.status().ok());

  EXPECT_EQ(result->stats.num_documents,
            static_cast<int64_t>(corpus_.size()));
  EXPECT_GT(result->stats.num_docs_quarantined, 0);
  EXPECT_EQ(result->stats.num_docs_quarantined,
            source.counters().quarantined_documents);
  EXPECT_TRUE(result->report.degradation.degraded);
  EXPECT_EQ(result->report.degradation.docs_quarantined,
            result->stats.num_docs_quarantined);
  EXPECT_GT(result->stats.num_opinions, 0);
}

TEST_F(ChaosIntegrationTest, TruncatedSourceIsReportedNotSilent) {
  TruncatedSource source(&corpus_, corpus_.size() / 2);
  auto result = SurveyorPipeline(&world_.kb(), &world_.lexicon(), BaseConfig())
                    .RunStreaming(source);
  // The run still completes over the documents it got...
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.num_documents,
            static_cast<int64_t>(corpus_.size() / 2));
  // ...but the truncation is loud: counter, degraded flag, and a note.
  EXPECT_EQ(result->stats.source_truncated, 1);
  EXPECT_TRUE(result->report.degradation.degraded);
  ASSERT_EQ(result->report.degradation.notes.size(), 1u);
  EXPECT_NE(result->report.degradation.notes[0].find("truncated"),
            std::string::npos);
  EXPECT_NE(result->report.degradation.notes[0].find("backing store"),
            std::string::npos);
}

}  // namespace
}  // namespace surveyor
