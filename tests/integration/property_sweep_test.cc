// Property-based sweeps across every property-type pair of the paper
// world: realization -> annotation -> extraction must round-trip with the
// correct entity, adjective and polarity, for every pair and both
// polarities. Uses TEST_P so each pair is a separately reported case.
#include <gtest/gtest.h>

#include <memory>

#include "corpus/realizer.h"
#include "corpus/worlds.h"
#include "extraction/extractor.h"
#include "text/annotator.h"

namespace surveyor {
namespace {

const World& PaperWorld() {
  static const World& world = *new World(
      World::Generate(MakePaperWorldConfig(/*entities_per_type=*/60)).value());
  return world;
}

/// (ground-truth index, polarity) — one sweep case per pair per polarity.
using SweepCase = std::tuple<size_t, bool>;

class RealizationSweepTest : public testing::TestWithParam<SweepCase> {};

TEST_P(RealizationSweepTest, RoundTripsThroughExtraction) {
  const auto [truth_index, positive] = GetParam();
  const World& world = PaperWorld();
  ASSERT_LT(truth_index, world.ground_truths().size());
  const PropertyGroundTruth& truth = world.ground_truths()[truth_index];

  // Canonical names only: ambiguous-alias resolution errors are real
  // tagger behavior, tested separately; the sweep checks the clean path.
  RealizationOptions realization;
  realization.alias_prob = 0.0;
  SentenceRealizer realizer(&world, realization);
  TextAnnotator annotator(&world.kb(), &world.lexicon());
  EvidenceExtractor extractor;  // v4
  Rng rng(1000 + truth_index * 2 + (positive ? 1 : 0));

  int recovered = 0, total = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const size_t index = rng.Index(truth.entities.size());
    const std::string sentence =
        realizer.RealizeStatement(truth, index, positive, rng);
    ++total;
    for (const EvidenceStatement& statement : extractor.ExtractFromSentence(
             annotator.AnnotateSentence(sentence))) {
      if (statement.adjective != truth.spec->adjective) continue;
      ++recovered;
      // Everything recovered must be exactly right.
      EXPECT_EQ(statement.entity, truth.entities[index]) << sentence;
      EXPECT_EQ(statement.positive, positive) << sentence;
    }
  }
  // v4 drops "seems"-style and a few other conservative cases; the bulk
  // must survive.
  EXPECT_GT(recovered, total * 6 / 10)
      << "pair: " << truth.property << " / "
      << world.kb().TypeName(truth.type);
}

std::vector<SweepCase> AllSweepCases() {
  std::vector<SweepCase> cases;
  const size_t num_pairs = PaperWorld().ground_truths().size();
  for (size_t i = 0; i < num_pairs; ++i) {
    cases.emplace_back(i, true);
    cases.emplace_back(i, false);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperPairs, RealizationSweepTest, testing::ValuesIn(AllSweepCases()),
    [](const testing::TestParamInfo<SweepCase>& info) {
      const PropertyGroundTruth& truth =
          PaperWorld().ground_truths()[std::get<0>(info.param)];
      std::string name = PaperWorld().kb().TypeName(truth.type) + "_" +
                         truth.property +
                         (std::get<1>(info.param) ? "_pos" : "_neg");
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Non-intrinsic statements must be filtered for every pair.
// ---------------------------------------------------------------------------

class NonIntrinsicSweepTest : public testing::TestWithParam<size_t> {};

TEST_P(NonIntrinsicSweepTest, AlwaysFiltered) {
  const World& world = PaperWorld();
  const PropertyGroundTruth& truth = world.ground_truths()[GetParam()];
  SentenceRealizer realizer(&world);
  TextAnnotator annotator(&world.kb(), &world.lexicon());
  EvidenceExtractor extractor;  // v4 with checks
  Rng rng(7000 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const std::string sentence = realizer.RealizeNonIntrinsic(
        truth, rng.Index(truth.entities.size()), rng.Bernoulli(0.5), rng);
    EXPECT_TRUE(
        extractor.ExtractFromSentence(annotator.AnnotateSentence(sentence))
            .empty())
        << sentence;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPaperPairs, NonIntrinsicSweepTest,
                         testing::Range<size_t>(0, 25));

}  // namespace
}  // namespace surveyor
