// Robustness and invariance properties: the pipeline must never crash on
// garbage input, must be deterministic given seeds, and the EM must be
// invariant under entity permutation.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "model/em.h"
#include "surveyor/pipeline.h"
#include "text/annotator.h"
#include "util/rng.h"

namespace surveyor {
namespace {

TEST(RobustnessTest, AnnotatorSurvivesRandomBytes) {
  World world = World::Generate(MakeTinyWorldConfig()).value();
  TextAnnotator annotator(&world.kb(), &world.lexicon());
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    const size_t length = rng.Index(200);
    for (size_t i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.UniformInt(int64_t{1}, int64_t{127}));
    }
    const AnnotatedDocument doc = annotator.AnnotateDocument(trial, garbage);
    for (const AnnotatedSentence& sentence : doc.sentences) {
      if (sentence.parsed) {
        EXPECT_TRUE(sentence.tree.Validate().ok());
      }
    }
  }
}

TEST(RobustnessTest, AnnotatorSurvivesAdversarialTokenSoup) {
  // Grammar-adjacent garbage: real vocabulary in random order.
  World world = World::Generate(MakeTinyWorldConfig()).value();
  TextAnnotator annotator(&world.kb(), &world.lexicon());
  EvidenceExtractor extractor;
  const std::vector<std::string> vocabulary = {
      "kitten", "is",  "not",   "a",    "cute", "animal", "and", "i",
      "don't",  "think", "that", "very", "san francisco", "big", "city",
      "for",    "never", "are",  ",",    "seems", "find"};
  Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    std::string soup;
    const size_t length = 1 + rng.Index(12);
    for (size_t i = 0; i < length; ++i) {
      soup += vocabulary[rng.Index(vocabulary.size())];
      soup += ' ';
    }
    const AnnotatedSentence sentence = annotator.AnnotateSentence(soup);
    if (sentence.parsed) {
      EXPECT_TRUE(sentence.tree.Validate().ok()) << soup;
      // Extraction must not crash either.
      extractor.ExtractFromSentence(sentence);
    }
  }
}

TEST(RobustnessTest, PipelineFullyDeterministic) {
  World world = World::Generate(MakeTinyWorldConfig()).value();
  GeneratorOptions options;
  options.author_population = 4000;
  options.seed = 31;
  const auto corpus = CorpusGenerator(&world, options).Generate();
  SurveyorConfig config;
  config.min_statements = 20;
  SurveyorPipeline pipeline(&world.kb(), &world.lexicon(), config);
  auto a = pipeline.Run(corpus);
  auto b = pipeline.Run(corpus);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->pairs.size(), b->pairs.size());
  for (size_t p = 0; p < a->pairs.size(); ++p) {
    EXPECT_EQ(a->pairs[p].evidence.property, b->pairs[p].evidence.property);
    EXPECT_EQ(a->pairs[p].params, b->pairs[p].params);
    EXPECT_EQ(a->pairs[p].posterior, b->pairs[p].posterior);
  }
}

TEST(RobustnessTest, EmPermutationInvariant) {
  Rng rng(55);
  std::vector<EvidenceCounts> counts;
  for (int i = 0; i < 500; ++i) {
    counts.push_back({rng.Poisson(rng.Bernoulli(0.3) ? 40.0 : 1.0),
                      rng.Poisson(0.5)});
  }
  auto original = EmLearner().Fit(counts);
  ASSERT_TRUE(original.ok());

  // Permute entities; the fitted parameters must not change and the
  // responsibilities must follow the permutation.
  std::vector<size_t> order(counts.size());
  std::iota(order.begin(), order.end(), 0);
  Rng shuffle_rng(56);
  shuffle_rng.Shuffle(order);
  std::vector<EvidenceCounts> permuted(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) permuted[i] = counts[order[i]];
  auto permuted_fit = EmLearner().Fit(permuted);
  ASSERT_TRUE(permuted_fit.ok());

  EXPECT_NEAR(permuted_fit->params.agreement, original->params.agreement,
              1e-9);
  EXPECT_NEAR(permuted_fit->params.mu_positive, original->params.mu_positive,
              1e-6);
  EXPECT_NEAR(permuted_fit->params.mu_negative, original->params.mu_negative,
              1e-6);
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(permuted_fit->responsibilities[i],
                original->responsibilities[order[i]], 1e-9);
  }
}

TEST(RobustnessTest, EmDuplicationInvariant) {
  // Duplicating every entity must not change the fitted parameters
  // (sufficient statistics scale uniformly).
  Rng rng(57);
  std::vector<EvidenceCounts> counts;
  for (int i = 0; i < 300; ++i) {
    counts.push_back({rng.Poisson(rng.Bernoulli(0.3) ? 40.0 : 1.0),
                      rng.Poisson(0.5)});
  }
  std::vector<EvidenceCounts> doubled = counts;
  doubled.insert(doubled.end(), counts.begin(), counts.end());
  auto single = EmLearner().Fit(counts);
  auto twice = EmLearner().Fit(doubled);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(twice.ok());
  EXPECT_NEAR(single->params.agreement, twice->params.agreement, 1e-6);
  EXPECT_NEAR(single->params.mu_positive, twice->params.mu_positive, 1e-4);
  EXPECT_NEAR(single->params.mu_negative, twice->params.mu_negative, 1e-4);
}

TEST(RobustnessTest, CorpusSerializationPreservesPipelineOutput) {
  // Save the corpus to its TSV form, reload, rerun: identical results.
  World world = World::Generate(MakeTinyWorldConfig()).value();
  GeneratorOptions options;
  options.author_population = 3000;
  const auto corpus = CorpusGenerator(&world, options).Generate();

  std::stringstream stream;
  ASSERT_TRUE(SaveCorpus(corpus, stream).ok());
  auto reloaded = LoadCorpus(stream);
  ASSERT_TRUE(reloaded.ok());

  SurveyorConfig config;
  config.min_statements = 20;
  SurveyorPipeline pipeline(&world.kb(), &world.lexicon(), config);
  auto a = pipeline.Run(corpus);
  auto b = pipeline.Run(*reloaded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.num_statements, b->stats.num_statements);
  EXPECT_EQ(a->Opinions().size(), b->Opinions().size());
}

}  // namespace
}  // namespace surveyor
