#include "util/string_util.h"

#include <gtest/gtest.h>

namespace surveyor {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a  b\tc \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("San Francisco"), "san francisco");
  EXPECT_EQ(ToLower("ABC123"), "abc123");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace surveyor
