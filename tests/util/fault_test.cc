#include "util/fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace surveyor {
namespace {

// Every test restores the disarmed state via ScopedFaults, so the suite
// composes with an environment-armed chaos profile (the CI chaos job runs
// these tests with SURVEYOR_FAULTS set).

TEST(FaultTest, DisarmedPointsNeverFire) {
  ScopedFaults faults("");
  EXPECT_FALSE(FaultInjector::Global().armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(SURVEYOR_FAULT("doc_read"));
  }
  // Disarmed evaluations never reach the stats registry.
  EXPECT_EQ(FaultInjector::Global().StatsFor("doc_read").evaluations, 0);
}

TEST(FaultTest, UnconfiguredPointNeverFiresWhileArmed) {
  ScopedFaults faults("doc_read:1");
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(SURVEYOR_FAULT("some_other_point"));
  }
  const FaultPointStats stats =
      FaultInjector::Global().StatsFor("some_other_point");
  EXPECT_EQ(stats.evaluations, 0);
  EXPECT_EQ(stats.injected, 0);
}

TEST(FaultTest, ProbabilityOneAlwaysFires) {
  ScopedFaults faults("doc_read:1");
  EXPECT_TRUE(FaultInjector::Global().armed());
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(SURVEYOR_FAULT("doc_read"));
  }
  const FaultPointStats stats = FaultInjector::Global().StatsFor("doc_read");
  EXPECT_EQ(stats.evaluations, 20);
  EXPECT_EQ(stats.injected, 20);
}

TEST(FaultTest, ProbabilityZeroNeverFires) {
  ScopedFaults faults("doc_read:0");
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(SURVEYOR_FAULT("doc_read"));
  }
  const FaultPointStats stats = FaultInjector::Global().StatsFor("doc_read");
  EXPECT_EQ(stats.evaluations, 100);
  EXPECT_EQ(stats.injected, 0);
}

TEST(FaultTest, ProbabilityRoughlyMatchesRate) {
  ScopedFaults faults("doc_read:0.3", /*seed=*/7);
  int fired = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (SURVEYOR_FAULT("doc_read")) ++fired;
  }
  EXPECT_GT(fired, n * 0.25);
  EXPECT_LT(fired, n * 0.35);
  EXPECT_EQ(FaultInjector::Global().StatsFor("doc_read").injected, fired);
}

TEST(FaultTest, FiringSequenceIsDeterministicGivenSeed) {
  std::vector<bool> first;
  {
    ScopedFaults faults("p:0.5", /*seed=*/99);
    for (int i = 0; i < 200; ++i) first.push_back(SURVEYOR_FAULT("p"));
  }
  {
    ScopedFaults faults("p:0.5", /*seed=*/99);
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(SURVEYOR_FAULT("p"), first[static_cast<size_t>(i)]) << i;
    }
  }
}

TEST(FaultTest, NthHitFiresExactlyOnce) {
  ScopedFaults faults("em_fit:@3");
  std::vector<int> fired_on;
  for (int i = 1; i <= 10; ++i) {
    if (SURVEYOR_FAULT("em_fit")) fired_on.push_back(i);
  }
  EXPECT_EQ(fired_on, std::vector<int>{3});
  const FaultPointStats stats = FaultInjector::Global().StatsFor("em_fit");
  EXPECT_EQ(stats.evaluations, 10);
  EXPECT_EQ(stats.injected, 1);
}

TEST(FaultTest, MultiplePointsAreIndependent) {
  ScopedFaults faults("a:1,b:@2");
  EXPECT_TRUE(SURVEYOR_FAULT("a"));
  EXPECT_FALSE(SURVEYOR_FAULT("b"));  // first evaluation of b
  EXPECT_TRUE(SURVEYOR_FAULT("b"));   // second: @2 fires
  EXPECT_TRUE(SURVEYOR_FAULT("a"));
}

TEST(FaultTest, SpecWhitespaceIsTolerated) {
  ScopedFaults faults(" a:1 , b:@1 ");
  EXPECT_TRUE(SURVEYOR_FAULT("a"));
  EXPECT_TRUE(SURVEYOR_FAULT("b"));
  EXPECT_EQ(FaultInjector::Global().spec(), " a:1 , b:@1 ");
}

TEST(FaultTest, ConfigureRejectsMalformedSpecs) {
  ScopedFaults clean("");
  FaultInjector& injector = FaultInjector::Global();
  EXPECT_EQ(injector.Configure("noseparator").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(injector.Configure(":0.5").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(injector.Configure("p:").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(injector.Configure("p:1.5").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(injector.Configure("p:-0.1").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(injector.Configure("p:@0").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(injector.Configure("p:@-3").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(injector.Configure("p:@abc").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(injector.Configure("p:0.5,p:0.5").code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultTest, MalformedSpecKeepsPreviousConfiguration) {
  ScopedFaults faults("keep:1");
  FaultInjector& injector = FaultInjector::Global();
  EXPECT_FALSE(injector.Configure("bad spec").ok());
  EXPECT_EQ(injector.spec(), "keep:1");
  EXPECT_TRUE(SURVEYOR_FAULT("keep"));
}

TEST(FaultTest, ConfigureResetsStats) {
  ScopedFaults faults("p:1");
  FaultInjector& injector = FaultInjector::Global();
  EXPECT_TRUE(SURVEYOR_FAULT("p"));
  EXPECT_EQ(injector.StatsFor("p").injected, 1);
  ASSERT_TRUE(injector.Configure("p:1").ok());
  EXPECT_EQ(injector.StatsFor("p").injected, 0);
  EXPECT_EQ(injector.StatsFor("p").evaluations, 0);
}

TEST(FaultTest, TotalInjectedIsMonotonicAcrossConfigures) {
  ScopedFaults clean("");
  FaultInjector& injector = FaultInjector::Global();
  const int64_t before = injector.TotalInjected();
  {
    ScopedFaults faults("p:1");
    EXPECT_TRUE(SURVEYOR_FAULT("p"));
    EXPECT_TRUE(SURVEYOR_FAULT("p"));
  }
  {
    ScopedFaults faults("q:@1");
    EXPECT_TRUE(SURVEYOR_FAULT("q"));
  }
  EXPECT_EQ(injector.TotalInjected(), before + 3);
}

TEST(FaultTest, StatsListsPointsSortedByName) {
  ScopedFaults faults("zeta:0.5,alpha:@1");
  (void)SURVEYOR_FAULT("alpha");
  const auto stats = FaultInjector::Global().Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].first, "alpha");
  EXPECT_EQ(stats[0].second.injected, 1);
  EXPECT_EQ(stats[1].first, "zeta");
  EXPECT_EQ(stats[1].second.evaluations, 0);
}

TEST(FaultTest, ScopedFaultsRestoresPreviousConfiguration) {
  ScopedFaults outer("outer:1", /*seed=*/11);
  {
    ScopedFaults inner("inner:1", /*seed=*/22);
    EXPECT_EQ(FaultInjector::Global().spec(), "inner:1");
    EXPECT_EQ(FaultInjector::Global().seed(), 22u);
    EXPECT_TRUE(SURVEYOR_FAULT("inner"));
    EXPECT_FALSE(SURVEYOR_FAULT("outer"));
  }
  EXPECT_EQ(FaultInjector::Global().spec(), "outer:1");
  EXPECT_EQ(FaultInjector::Global().seed(), 11u);
  EXPECT_TRUE(SURVEYOR_FAULT("outer"));
  EXPECT_FALSE(SURVEYOR_FAULT("inner"));
}

}  // namespace
}  // namespace surveyor
