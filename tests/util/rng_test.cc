#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace surveyor {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 15);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(7);
  Rng split = a.Split();
  // The split stream must not replay the parent's stream.
  Rng parent_copy(7);
  parent_copy.Next();  // advance past the split draw
  int collisions = 0;
  for (int i = 0; i < 20; ++i) {
    if (split.Next() == parent_copy.Next()) ++collisions;
  }
  EXPECT_LT(collisions, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 10000; ++i) ++histogram[rng.UniformInt(uint64_t{10})];
  for (int count : histogram) EXPECT_GT(count, 700);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(15);
  int successes = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) successes += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(successes) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(variance, 4.0, 0.15);
}

TEST(RngTest, PoissonSmallMeanMoments) {
  Rng rng(21);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(2.5));
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, PoissonLargeMeanMoments) {
  Rng rng(23);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(25);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, BinomialBounds) {
  Rng rng(27);
  for (int i = 0; i < 1000; ++i) {
    const int64_t draw = rng.Binomial(100, 0.5);
    EXPECT_GE(draw, 0);
    EXPECT_LE(draw, 100);
  }
}

TEST(RngTest, BinomialMeanSmallN) {
  Rng rng(29);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Binomial(20, 0.25));
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BinomialMeanLargeNSmallP) {
  Rng rng(31);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Binomial(100000, 1e-4));
  }
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(RngTest, BinomialDegenerate) {
  Rng rng(33);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0);
  EXPECT_EQ(rng.Binomial(10, 0.0), 0);
  EXPECT_EQ(rng.Binomial(10, 1.0), 10);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(35);
  int low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t rank = rng.Zipf(1000, 1.1);
    EXPECT_LT(rank, 1000u);
    if (rank < 10) ++low;
    if (rank >= 500) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

}  // namespace
}  // namespace surveyor
