#include "util/math.h"

#include <gtest/gtest.h>

#include <cmath>

namespace surveyor {
namespace {

TEST(MathTest, LogFactorialSmallValues) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-9);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-6);
}

TEST(MathTest, PoissonPmfSumsToOne) {
  const double lambda = 4.2;
  double total = 0.0;
  for (int k = 0; k < 60; ++k) total += PoissonPmf(k, lambda);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MathTest, PoissonPmfMatchesClosedForm) {
  // P(k=3; lambda=2) = 2^3 e^-2 / 6
  EXPECT_NEAR(PoissonPmf(3, 2.0), 8.0 * std::exp(-2.0) / 6.0, 1e-12);
}

TEST(MathTest, PoissonLogPmfHandlesZeroRate) {
  // Zero counts under (clamped) zero rate are ~certain.
  EXPECT_NEAR(PoissonLogPmf(0, 0.0), 0.0, 1e-9);
  // Positive counts under zero rate are extremely unlikely but finite.
  const double ll = PoissonLogPmf(3, 0.0);
  EXPECT_TRUE(std::isfinite(ll));
  EXPECT_LT(ll, -50.0);
}

TEST(MathTest, LogSumExpStable) {
  EXPECT_NEAR(LogSumExp(0.0, 0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogSumExp(-1000.0, 0.0), 0.0, 1e-9);
  EXPECT_NEAR(LogSumExp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, SigmoidProperties) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
}

TEST(MathTest, MeanAndVariance) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_NEAR(Mean({1, 2, 3, 4}), 2.5, 1e-12);
  EXPECT_EQ(Variance({1.0}), 0.0);
  EXPECT_NEAR(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0, 1e-12);
}

TEST(MathTest, PercentileInterpolation) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_NEAR(Percentile(values, 0), 1.0, 1e-12);
  EXPECT_NEAR(Percentile(values, 100), 5.0, 1e-12);
  EXPECT_NEAR(Percentile(values, 50), 3.0, 1e-12);
  EXPECT_NEAR(Percentile(values, 25), 2.0, 1e-12);
  EXPECT_NEAR(Percentile(values, 10), 1.4, 1e-12);
}

TEST(MathTest, PercentileUnsortedInput) {
  EXPECT_NEAR(Percentile({5, 1, 3, 2, 4}, 50), 3.0, 1e-12);
}

TEST(MathTest, PercentileEmptyAndSingle) {
  EXPECT_EQ(Percentile({}, 50), 0.0);
  EXPECT_EQ(Percentile({42.0}, 99), 42.0);
}

TEST(MathTest, PearsonPerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(MathTest, PearsonZeroVariance) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {2, 4, 6}), 0.0);
}

TEST(MathTest, SpearmanMonotoneNonlinear) {
  // Monotone but nonlinear relation: Spearman is exactly 1.
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 8, 27, 64, 125};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(MathTest, SpearmanHandlesTies) {
  std::vector<double> x = {1, 2, 2, 3};
  std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(MathTest, SpearmanShortInput) {
  EXPECT_EQ(SpearmanCorrelation({1.0}, {2.0}), 0.0);
}

}  // namespace
}  // namespace surveyor
