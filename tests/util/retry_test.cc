#include "util/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace surveyor {
namespace {

RetryPolicy FastPolicy(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  // Keep the suite fast: microsecond backoffs are enough to exercise the
  // accounting without real sleeping.
  policy.initial_backoff_seconds = 1e-6;
  policy.max_backoff_seconds = 1e-5;
  return policy;
}

TEST(RetryTest, SucceedsOnFirstAttempt) {
  int calls = 0;
  const RetryResult result = RetryWithBackoff(FastPolicy(5), [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(result.backoff_seconds, 0.0);
}

TEST(RetryTest, RetriesUntilSuccess) {
  int calls = 0;
  const RetryResult result = RetryWithBackoff(FastPolicy(5), [&] {
    return ++calls < 3 ? Status::Internal("transient") : Status::OK();
  });
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(calls, 3);
  EXPECT_GT(result.backoff_seconds, 0.0);
}

TEST(RetryTest, ExhaustsAttemptsAndReturnsLastError) {
  int calls = 0;
  const RetryResult result = RetryWithBackoff(FastPolicy(4), [&] {
    ++calls;
    return Status::Internal("always failing");
  });
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_EQ(result.attempts, 4);
  EXPECT_EQ(calls, 4);
}

TEST(RetryTest, NonRetryableErrorStopsImmediately) {
  int calls = 0;
  const RetryResult result = RetryWithBackoff(FastPolicy(5), [&] {
    ++calls;
    return Status::InvalidArgument("deterministic bug");
  });
  // Default retryable predicate: only kInternal is worth retrying.
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, CustomRetryablePredicate) {
  int calls = 0;
  const RetryResult result = RetryWithBackoff(
      FastPolicy(5),
      [&] {
        ++calls;
        return Status::NotFound("eventually consistent");
      },
      [](const Status& status) {
        return status.code() == StatusCode::kNotFound;
      });
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(result.attempts, 5);
  EXPECT_EQ(calls, 5);
}

TEST(RetryTest, SingleAttemptNeverRetries) {
  int calls = 0;
  const RetryResult result = RetryWithBackoff(FastPolicy(1), [&] {
    ++calls;
    return Status::Internal("fail");
  });
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(result.backoff_seconds, 0.0);
}

TEST(RetryTest, RejectsNonPositiveMaxAttempts) {
  const RetryResult result =
      RetryWithBackoff(FastPolicy(0), [] { return Status::OK(); });
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.attempts, 0);
}

TEST(RetryTest, DeadlineStopsFurtherRetries) {
  RetryPolicy policy = FastPolicy(1000);
  policy.initial_backoff_seconds = 0.02;
  policy.max_backoff_seconds = 0.02;
  policy.total_deadline_seconds = 0.01;
  int calls = 0;
  const RetryResult result = RetryWithBackoff(policy, [&] {
    ++calls;
    return Status::Internal("slow failure");
  });
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_LT(result.attempts, 1000);
  EXPECT_GE(result.attempts, 1);
}

TEST(RetryTest, BackoffGrowsExponentiallyAndClamps) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.001;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.004;
  policy.jitter_fraction = 0.0;  // exact values
  Rng rng(1);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 1, rng), 0.001);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 2, rng), 0.002);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 3, rng), 0.004);
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 4, rng), 0.004);  // clamped
}

TEST(RetryTest, JitterStaysWithinFractionAndIsDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.01;
  policy.jitter_fraction = 0.25;
  std::vector<double> first;
  {
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
      const double backoff = BackoffSeconds(policy, 1, rng);
      EXPECT_GE(backoff, 0.01 * 0.75);
      EXPECT_LE(backoff, 0.01 * 1.25);
      first.push_back(backoff);
    }
  }
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 1, rng),
                     first[static_cast<size_t>(i)]);
  }
}

}  // namespace
}  // namespace surveyor
