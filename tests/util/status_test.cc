#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace surveyor {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Wrapper(int x) {
  SURVEYOR_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Wrapper(1).ok());
  EXPECT_EQ(Wrapper(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = ParsePositive(5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 5);
  EXPECT_EQ(*result, 5);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = ParsePositive(-3);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

StatusOr<int> Doubled(int x) {
  SURVEYOR_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(Doubled(4).ok());
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

}  // namespace
}  // namespace surveyor
