#include "util/durable_file.h"

#include <filesystem>
#include <fstream>
#include <string>

#include "gtest/gtest.h"
#include "util/status.h"

namespace surveyor {
namespace {

namespace fs = std::filesystem;

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(DurableFileTest, WritesContentsAndLeavesNoTempBehind) {
  const std::string dir = testing::TempDir() + "/durable_write";
  fs::create_directories(dir);
  const std::string path = dir + "/data.bin";
  ASSERT_TRUE(
      WriteFileDurable(path, std::string_view("hello\0world", 11)).ok());
  EXPECT_EQ(ReadAll(path), std::string("hello\0world", 11));
  // The temp file was renamed away, not left as a sibling.
  size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(DurableFileTest, ReplacesExistingFileWhole) {
  const std::string dir = testing::TempDir() + "/durable_replace";
  fs::create_directories(dir);
  const std::string path = dir + "/data.bin";
  ASSERT_TRUE(WriteFileDurable(path, "first version, longer").ok());
  ASSERT_TRUE(WriteFileDurable(path, "second").ok());
  // No tail of the longer first version survives the replace.
  EXPECT_EQ(ReadAll(path), "second");
}

TEST(DurableFileTest, FailsWhenDirectoryDoesNotExist) {
  const std::string path =
      testing::TempDir() + "/no-such-dir-durable/data.bin";
  const Status status = WriteFileDurable(path, "x");
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(fs::exists(path));
}

TEST(DurableFileTest, RenamePathReplacesTarget) {
  const std::string dir = testing::TempDir() + "/durable_rename";
  fs::create_directories(dir);
  ASSERT_TRUE(WriteFileDurable(dir + "/from", "new").ok());
  ASSERT_TRUE(WriteFileDurable(dir + "/to", "old").ok());
  ASSERT_TRUE(RenamePath(dir + "/from", dir + "/to").ok());
  EXPECT_FALSE(fs::exists(dir + "/from"));
  EXPECT_EQ(ReadAll(dir + "/to"), "new");
}

TEST(DurableFileTest, RenamePathFailsOnMissingSource) {
  const std::string dir = testing::TempDir() + "/durable_rename_missing";
  fs::create_directories(dir);
  EXPECT_FALSE(RenamePath(dir + "/absent", dir + "/to").ok());
}

TEST(DurableFileTest, SyncHelpersAcceptExistingPaths) {
  const std::string dir = testing::TempDir() + "/durable_sync";
  fs::create_directories(dir);
  ASSERT_TRUE(WriteFileDurable(dir + "/f", "x").ok());
  EXPECT_TRUE(SyncFile(dir + "/f").ok());
  EXPECT_TRUE(SyncDir(dir).ok());
  EXPECT_FALSE(SyncFile(dir + "/absent").ok());
}

}  // namespace
}  // namespace surveyor
