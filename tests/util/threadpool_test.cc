#include "util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace surveyor {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(pool, 0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  ParallelFor(pool, 1, [&sum](size_t i) { sum += static_cast<int>(i) + 5; });
  EXPECT_EQ(sum.load(), 5);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace surveyor
