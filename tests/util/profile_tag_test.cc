#include "util/profile_tag.h"

#include <thread>

#include "gtest/gtest.h"

namespace surveyor {
namespace {

TEST(ProfileTagTest, DefaultsToNullOutsideAnyScope) {
  EXPECT_EQ(CurrentProfileTag(), nullptr);
}

TEST(ProfileTagTest, ScopeInstallsAndRestores) {
  static const char* const kOuter = "tokenize";
  {
    ProfileScope scope(kOuter);
    EXPECT_EQ(CurrentProfileTag(), kOuter);
  }
  EXPECT_EQ(CurrentProfileTag(), nullptr);
}

TEST(ProfileTagTest, NestedScopesRestoreTheEnclosingTag) {
  static const char* const kOuter = "extract";
  static const char* const kInner = "match";
  ProfileScope outer(kOuter);
  EXPECT_EQ(CurrentProfileTag(), kOuter);
  {
    ProfileScope inner(kInner);
    EXPECT_EQ(CurrentProfileTag(), kInner);
  }
  EXPECT_EQ(CurrentProfileTag(), kOuter);
}

TEST(ProfileTagTest, MacroTagsTheEnclosingBlock) {
  {
    SURVEYOR_PROFILE_SCOPE("em");
    EXPECT_STREQ(CurrentProfileTag(), "em");
  }
  EXPECT_EQ(CurrentProfileTag(), nullptr);
}

TEST(ProfileTagTest, TagIsThreadLocal) {
  static const char* const kMain = "query";
  ProfileScope scope(kMain);
  const char* observed_on_other_thread = kMain;  // must be overwritten
  std::thread other([&observed_on_other_thread] {
    observed_on_other_thread = CurrentProfileTag();
  });
  other.join();
  EXPECT_EQ(observed_on_other_thread, nullptr);
  EXPECT_EQ(CurrentProfileTag(), kMain);
}

}  // namespace
}  // namespace surveyor
