#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace surveyor {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"Name", "Value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string output = os.str();
  EXPECT_NE(output.find("Name"), std::string::npos);
  EXPECT_NE(output.find("long-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(output.find("---"), std::string::npos);
}

TEST(TextTableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(0.7777, 2), "0.78");
  EXPECT_EQ(TextTable::Num(3.0, 0), "3");
}

TEST(TextTableTest, EmptyTableStillPrintsHeader) {
  TextTable table({"OnlyHeader"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("OnlyHeader"), std::string::npos);
}

}  // namespace
}  // namespace surveyor
