#include "util/sample_ring.h"

#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace surveyor {
namespace {

StackSample MakeSample(int64_t marker) {
  StackSample sample;
  sample.depth = 2;
  sample.frames[0] = reinterpret_cast<void*>(marker);
  sample.frames[1] = reinterpret_cast<void*>(marker + 1);
  sample.stage = static_cast<int32_t>(marker % 7);
  return sample;
}

TEST(SampleRingTest, AppendsUpToCapacityThenCountsDrops) {
  SampleRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int64_t i = 0; i < 20; ++i) {
    const bool accepted = ring.TryAppend(MakeSample(i + 1));
    EXPECT_EQ(accepted, i < 8) << "append " << i;
  }
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.dropped(), 12);
  EXPECT_EQ(ring.attempts(), 20);
}

TEST(SampleRingTest, SnapshotPreservesPayloadAndAppendOrder) {
  SampleRing ring(4);
  static const char* const kTag = "extract";
  for (int64_t i = 0; i < 3; ++i) {
    StackSample sample = MakeSample(100 + i);
    sample.tag = kTag;
    ASSERT_TRUE(ring.TryAppend(sample));
  }
  const std::vector<StackSample> samples = ring.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(samples[i].depth, 2);
    EXPECT_EQ(samples[i].frames[0], reinterpret_cast<void*>(100 + i));
    EXPECT_EQ(samples[i].frames[1], reinterpret_cast<void*>(101 + i));
    EXPECT_EQ(samples[i].tag, kTag);
    EXPECT_EQ(samples[i].stage, static_cast<int32_t>((100 + i) % 7));
  }
}

TEST(SampleRingTest, ResetForgetsSamplesAndCounts) {
  SampleRing ring(2);
  for (int64_t i = 0; i < 5; ++i) ring.TryAppend(MakeSample(i + 1));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.dropped(), 3);

  ring.Reset();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0);
  EXPECT_EQ(ring.attempts(), 0);
  EXPECT_TRUE(ring.Snapshot().empty());

  // The ring is reusable after Reset: fresh slots, fresh accounting.
  EXPECT_TRUE(ring.TryAppend(MakeSample(42)));
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.Snapshot()[0].frames[0], reinterpret_cast<void*>(42));
}

// Four writer threads hammer one ring past capacity; this is the
// TSan-checked contract the SIGPROF handler relies on (CI runs this suite
// under -fsanitize=thread). Every append must be either committed or
// counted as dropped — no sample may vanish — and every committed slot
// must hold a fully published payload.
TEST(SampleRingTest, ConcurrentAppendsAccountForEverySample) {
  constexpr int kThreads = 4;
  constexpr int64_t kPerThread = 1000;
  SampleRing ring(1024);

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (int64_t i = 0; i < kPerThread; ++i) {
        // Non-zero marker so a torn/unpublished slot (frames[0] == nullptr)
        // is distinguishable from a real payload.
        ring.TryAppend(MakeSample(t * kPerThread + i + 1));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();

  EXPECT_EQ(ring.size(), 1024u);
  EXPECT_EQ(ring.attempts(), kThreads * kPerThread);
  EXPECT_EQ(static_cast<int64_t>(ring.size()) + ring.dropped(),
            kThreads * kPerThread);

  for (const StackSample& sample : ring.Snapshot()) {
    EXPECT_EQ(sample.depth, 2);
    EXPECT_NE(sample.frames[0], nullptr);
    EXPECT_GE(sample.stage, 0);
  }
}

}  // namespace
}  // namespace surveyor
