#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "eval/amt.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "eval/testcases.h"
#include "surveyor/surveyor_classifier.h"

namespace surveyor {
namespace {

TEST(MetricsTest, Formulas) {
  EvalMetrics metrics;
  metrics.total_cases = 10;
  metrics.solved_cases = 8;
  metrics.correct_cases = 6;
  EXPECT_DOUBLE_EQ(metrics.coverage(), 0.8);
  EXPECT_DOUBLE_EQ(metrics.precision(), 0.75);
  EXPECT_NEAR(metrics.f1(), 2 * 0.8 * 0.75 / (0.8 + 0.75), 1e-12);
}

TEST(MetricsTest, DegenerateCases) {
  EvalMetrics metrics;
  EXPECT_EQ(metrics.coverage(), 0.0);
  EXPECT_EQ(metrics.precision(), 0.0);
  EXPECT_EQ(metrics.f1(), 0.0);
}

class EvalTest : public testing::Test {
 protected:
  EvalTest() : world_(World::Generate(MakeTinyWorldConfig()).value()) {}

  World world_;
};

TEST_F(EvalTest, AmtVotesFollowOpinionFraction) {
  AmtSimulator amt(&world_, AmtOptions{20});
  Rng rng(3);
  const PropertyGroundTruth& truth = world_.ground_truths()[0];
  // Aggregate over entities: votes should track the latent fractions.
  for (size_t i = 0; i < truth.entities.size(); ++i) {
    double mean_votes = 0.0;
    const int repeats = 200;
    for (int r = 0; r < repeats; ++r) {
      auto vote = amt.Collect(truth.entities[i], truth.property, rng);
      ASSERT_TRUE(vote.ok());
      EXPECT_EQ(vote->num_workers, 20);
      EXPECT_GE(vote->agreement, 10);
      EXPECT_LE(vote->agreement, 20);
      mean_votes += vote->positive_votes;
    }
    mean_votes /= repeats;
    EXPECT_NEAR(mean_votes, 20.0 * truth.positive_fraction[i], 1.2);
  }
}

TEST_F(EvalTest, AmtUnknownPairFails) {
  AmtSimulator amt(&world_);
  Rng rng(5);
  EXPECT_FALSE(amt.Collect(0, "nonexistent", rng).ok());
}

TEST_F(EvalTest, AmtTieYieldsNeutral) {
  AmtSimulator amt(&world_, AmtOptions{2});  // 2 workers tie often
  Rng rng(7);
  bool saw_tie = false;
  const PropertyGroundTruth& truth = world_.ground_truths()[0];
  for (int r = 0; r < 300 && !saw_tie; ++r) {
    for (size_t i = 0; i < truth.entities.size(); ++i) {
      auto vote = amt.Collect(truth.entities[i], truth.property, rng);
      ASSERT_TRUE(vote.ok());
      if (vote->positive_votes == 1) {
        EXPECT_EQ(vote->dominant, Polarity::kNeutral);
        saw_tie = true;
      }
    }
  }
  EXPECT_TRUE(saw_tie);
}

TEST_F(EvalTest, CuratedSelectionCoversEveryPair) {
  const auto cases = SelectCuratedTestCases(world_, 5);
  // 3 ground-truth pairs x 5 entities.
  EXPECT_EQ(cases.size(), 15u);
  for (const TestCase& tc : cases) {
    EXPECT_NE(world_.FindGroundTruth(tc.type, tc.property), nullptr);
  }
}

TEST_F(EvalTest, CuratedSelectionUniqueEntitiesPerPair) {
  const auto cases = SelectCuratedTestCases(world_, 8);
  std::set<std::tuple<TypeId, std::string, EntityId>> seen;
  for (const TestCase& tc : cases) {
    EXPECT_TRUE(seen.insert({tc.type, tc.property, tc.entity}).second);
  }
}

TEST_F(EvalTest, RandomSelectionRespectsAvailablePairs) {
  Rng rng(11);
  const TypeId animal = world_.kb().TypeByName("animal").value();
  std::vector<std::pair<TypeId, std::string>> available = {{animal, "cute"}};
  const auto cases = SelectRandomTestCases(world_, available, 10, 7, rng);
  EXPECT_EQ(cases.size(), 70u);
  for (const TestCase& tc : cases) {
    EXPECT_EQ(tc.type, animal);
    EXPECT_EQ(tc.property, "cute");
  }
}

TEST_F(EvalTest, LabelWithAmtDropsNothingButTies) {
  Rng rng(13);
  const auto cases = SelectCuratedTestCases(world_, 6);
  const auto labeled = LabelWithAmt(world_, cases, AmtOptions{20}, rng);
  EXPECT_LE(labeled.size(), cases.size());
  EXPECT_GT(labeled.size(), cases.size() / 2);
  for (const LabeledTestCase& l : labeled) {
    EXPECT_NE(l.vote.dominant, Polarity::kNeutral);
  }
}

TEST_F(EvalTest, HarnessEndToEnd) {
  GeneratorOptions options;
  options.author_population = 8000;
  options.seed = 21;
  const auto corpus = CorpusGenerator(&world_, options).Generate();

  ComparisonHarness harness(&world_.kb(), &world_.lexicon());
  ASSERT_TRUE(harness.Prepare(corpus).ok());
  EXPECT_GT(harness.total_statements(), 100);
  EXPECT_GT(harness.global_scale(), 1.0);  // polarity bias exists

  const TypeId animal = world_.kb().TypeByName("animal").value();
  const PropertyTypeEvidence* cute = harness.EvidenceFor(animal, "cute");
  ASSERT_NE(cute, nullptr);
  EXPECT_EQ(cute->entities.size(), world_.kb().EntitiesOfType(animal).size());

  EXPECT_FALSE(harness.PairsAboveThreshold(10).empty());
  EXPECT_TRUE(harness.PairsAboveThreshold(1'000'000'000).empty());

  Rng rng(23);
  const auto labeled =
      LabelWithAmt(world_, SelectCuratedTestCases(world_, 8), AmtOptions{20},
                   rng);
  ASSERT_FALSE(labeled.empty());

  SurveyorClassifier surveyor_method;
  const EvalMetrics metrics = harness.Evaluate(surveyor_method, labeled);
  EXPECT_EQ(metrics.total_cases, static_cast<int64_t>(labeled.size()));
  EXPECT_GT(metrics.coverage(), 0.9);
  EXPECT_GT(metrics.precision(), 0.7);

  // Agreement filtering keeps a subset.
  const EvalMetrics strict = harness.Evaluate(surveyor_method, labeled, 19);
  EXPECT_LE(strict.total_cases, metrics.total_cases);
}

TEST_F(EvalTest, HarnessEvaluateOnPairWithoutEvidence) {
  // Prepare on an empty corpus: no evidence anywhere; Surveyor should
  // still produce decisions from the all-zero evidence (via the mu
  // asymmetry) or stay neutral, but never crash.
  ComparisonHarness harness(&world_.kb(), &world_.lexicon());
  ASSERT_TRUE(harness.Prepare({}).ok());
  Rng rng(29);
  const auto labeled =
      LabelWithAmt(world_, SelectCuratedTestCases(world_, 4), AmtOptions{20},
                   rng);
  SurveyorClassifier surveyor_method;
  const EvalMetrics metrics = harness.Evaluate(surveyor_method, labeled);
  EXPECT_EQ(metrics.total_cases, static_cast<int64_t>(labeled.size()));
}

}  // namespace
}  // namespace surveyor
