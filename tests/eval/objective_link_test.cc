#include "eval/objective_link.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace surveyor {
namespace {

TEST(ObjectiveLinkTest, RecoversSharpThreshold) {
  // Labels flip exactly at value 1000.
  std::vector<double> log_values;
  std::vector<double> labels;
  for (double value = 10; value < 100000; value *= 1.3) {
    log_values.push_back(std::log(value));
    labels.push_back(value > 1000.0 ? 1.0 : 0.0);
  }
  auto link = FitLogisticLink(log_values, labels);
  ASSERT_TRUE(link.ok()) << link.status();
  EXPECT_GT(link->slope, 0.0);
  EXPECT_GT(link->threshold, 500.0);
  EXPECT_LT(link->threshold, 2000.0);
  EXPECT_DOUBLE_EQ(link->agreement, 1.0);
}

TEST(ObjectiveLinkTest, RecoversNoisyLogisticThreshold) {
  Rng rng(5);
  std::vector<double> log_values;
  std::vector<double> labels;
  const double true_threshold = std::log(5e4);
  for (int i = 0; i < 2000; ++i) {
    const double log_value = rng.Uniform(std::log(1e2), std::log(1e7));
    const double p = 1.0 / (1.0 + std::exp(-1.5 * (log_value - true_threshold)));
    log_values.push_back(log_value);
    labels.push_back(rng.Bernoulli(p) ? 1.0 : 0.0);
  }
  auto link = FitLogisticLink(log_values, labels);
  ASSERT_TRUE(link.ok());
  EXPECT_NEAR(std::log(link->threshold), true_threshold, 0.35);
  EXPECT_NEAR(link->slope, 1.5, 0.5);
  EXPECT_GT(link->agreement, 0.85);
}

TEST(ObjectiveLinkTest, HandlesInvertedCorrelation) {
  // Property anti-correlated with the attribute ("small").
  std::vector<double> log_values;
  std::vector<double> labels;
  for (double value = 10; value < 100000; value *= 1.4) {
    log_values.push_back(std::log(value));
    labels.push_back(value < 1000.0 ? 1.0 : 0.0);
  }
  auto link = FitLogisticLink(log_values, labels);
  ASSERT_TRUE(link.ok());
  EXPECT_LT(link->slope, 0.0);
  EXPECT_GT(link->agreement, 0.95);
}

TEST(ObjectiveLinkTest, PredictMatchesFit) {
  std::vector<double> log_values;
  std::vector<double> labels;
  for (double value = 10; value < 100000; value *= 1.3) {
    log_values.push_back(std::log(value));
    labels.push_back(value > 1000.0 ? 1.0 : 0.0);
  }
  auto link = FitLogisticLink(log_values, labels);
  ASSERT_TRUE(link.ok());
  EXPECT_LT(link->Predict(10.0), 0.2);
  EXPECT_GT(link->Predict(100000.0), 0.8);
  EXPECT_NEAR(link->Predict(link->threshold), 0.5, 0.05);
}

TEST(ObjectiveLinkTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(FitLogisticLink({1.0, 2.0}, {0.0, 1.0}).ok());  // too few
  EXPECT_FALSE(FitLogisticLink({1, 2, 3}, {1, 1}).ok());       // mismatch
  // Single class present.
  EXPECT_FALSE(FitLogisticLink({1, 2, 3, 4}, {1, 1, 1, 1}).ok());
  EXPECT_FALSE(FitLogisticLink({1, 2, 3, 4}, {0, 0, 0, 0}).ok());
}

TEST(ObjectiveLinkTest, LinksPipelineResultToAttribute) {
  // Build a synthetic PropertyTypeResult directly: polarity follows an
  // attribute threshold at 100.
  KnowledgeBase kb;
  const TypeId type = kb.AddType("city");
  PropertyTypeResult result;
  result.evidence.type = type;
  result.evidence.property = "big";
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const EntityId id =
        kb.AddEntity("city" + std::to_string(i), type).value();
    const double value = std::pow(10.0, rng.Uniform(0.0, 4.0));
    ASSERT_TRUE(kb.SetAttribute(id, "population", value).ok());
    result.evidence.entities.push_back(id);
    const bool positive = value > 100.0;
    result.posterior.push_back(positive ? 0.95 : 0.05);
    result.polarity.push_back(positive ? Polarity::kPositive
                                       : Polarity::kNegative);
  }
  auto link = LinkObjectiveProperty(kb, result, "population");
  ASSERT_TRUE(link.ok()) << link.status();
  EXPECT_GT(link->threshold, 30.0);
  EXPECT_LT(link->threshold, 300.0);
  EXPECT_EQ(link->num_entities, 100);
}

TEST(ObjectiveLinkTest, SkipsNeutralAndMissingAttribute) {
  KnowledgeBase kb;
  const TypeId type = kb.AddType("city");
  PropertyTypeResult result;
  result.evidence.type = type;
  for (int i = 0; i < 10; ++i) {
    const EntityId id =
        kb.AddEntity("c" + std::to_string(i), type).value();
    result.evidence.entities.push_back(id);
    if (i < 8) {
      ASSERT_TRUE(kb.SetAttribute(id, "population", i < 4 ? 10.0 : 1e6).ok());
    }
    result.posterior.push_back(i < 4 ? 0.1 : 0.9);
    result.polarity.push_back(i == 9 ? Polarity::kNeutral
                              : i < 4 ? Polarity::kNegative
                                      : Polarity::kPositive);
  }
  auto link = LinkObjectiveProperty(kb, result, "population");
  ASSERT_TRUE(link.ok());
  // Two entities dropped: one neutral (also lacking the attribute) and one
  // decided but without the attribute.
  EXPECT_EQ(link->num_entities, 8);
}

}  // namespace
}  // namespace surveyor
