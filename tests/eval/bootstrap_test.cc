#include "eval/bootstrap.h"

#include <gtest/gtest.h>

namespace surveyor {
namespace {

using CaseOutcome = ComparisonHarness::CaseOutcome;

std::vector<CaseOutcome> MakeOutcomes(int solved_correct, int solved_wrong,
                                      int unsolved) {
  std::vector<CaseOutcome> outcomes;
  for (int i = 0; i < solved_correct; ++i) outcomes.push_back({true, true});
  for (int i = 0; i < solved_wrong; ++i) outcomes.push_back({true, false});
  for (int i = 0; i < unsolved; ++i) outcomes.push_back({false, false});
  return outcomes;
}

TEST(BootstrapTest, IntervalsContainPointEstimate) {
  const auto outcomes = MakeOutcomes(60, 20, 20);
  const BootstrapResult result = BootstrapMetrics(outcomes, 2000, 3);
  // Point estimates: coverage 0.8, precision 0.75.
  EXPECT_LT(result.coverage.lo, 0.8);
  EXPECT_GT(result.coverage.hi, 0.8);
  EXPECT_LT(result.precision.lo, 0.75);
  EXPECT_GT(result.precision.hi, 0.75);
  EXPECT_LT(result.f1.lo, result.f1.hi);
  EXPECT_EQ(result.resamples, 2000);
}

TEST(BootstrapTest, IntervalsShrinkWithSampleSize) {
  const auto small = MakeOutcomes(30, 10, 10);
  const auto large = MakeOutcomes(600, 200, 200);
  const BootstrapResult small_ci = BootstrapMetrics(small, 1000, 5);
  const BootstrapResult large_ci = BootstrapMetrics(large, 1000, 5);
  EXPECT_LT(large_ci.precision.hi - large_ci.precision.lo,
            small_ci.precision.hi - small_ci.precision.lo);
}

TEST(BootstrapTest, DeterministicGivenSeed) {
  const auto outcomes = MakeOutcomes(40, 20, 40);
  const BootstrapResult a = BootstrapMetrics(outcomes, 500, 11);
  const BootstrapResult b = BootstrapMetrics(outcomes, 500, 11);
  EXPECT_DOUBLE_EQ(a.precision.lo, b.precision.lo);
  EXPECT_DOUBLE_EQ(a.precision.hi, b.precision.hi);
}

TEST(BootstrapTest, DegenerateInputs) {
  const BootstrapResult empty = BootstrapMetrics({}, 100, 1);
  EXPECT_DOUBLE_EQ(empty.precision.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.precision.hi, 0.0);

  // All-perfect outcomes give a zero-width interval at 1.
  const BootstrapResult perfect = BootstrapMetrics(MakeOutcomes(50, 0, 0), 200, 1);
  EXPECT_DOUBLE_EQ(perfect.coverage.lo, 1.0);
  EXPECT_DOUBLE_EQ(perfect.precision.hi, 1.0);
}

TEST(BootstrapTest, ConfidenceLevelWidensInterval) {
  const auto outcomes = MakeOutcomes(45, 25, 30);
  const BootstrapResult narrow = BootstrapMetrics(outcomes, 2000, 7, 0.80);
  const BootstrapResult wide = BootstrapMetrics(outcomes, 2000, 7, 0.99);
  EXPECT_LT(narrow.precision.hi - narrow.precision.lo,
            wide.precision.hi - wide.precision.lo);
}

}  // namespace
}  // namespace surveyor
