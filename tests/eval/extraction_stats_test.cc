#include "eval/extraction_stats.h"

#include <gtest/gtest.h>

#include <sstream>

#include "corpus/generator.h"

#include "corpus/world_io.h"
#include "corpus/worlds.h"

namespace surveyor {
namespace {

EvidenceStatement Statement(EntityId entity, const std::string& property) {
  EvidenceStatement s;
  s.entity = entity;
  s.adjective = property;
  s.property = property;
  s.positive = true;
  return s;
}

TEST(ExtractionStatsTest, ComputesAllThreeDistributions) {
  KnowledgeBase kb;
  const TypeId city = kb.AddType("city");
  const TypeId animal = kb.AddType("animal");
  const EntityId a = kb.AddEntity("a", city).value();
  const EntityId b = kb.AddEntity("b", city).value();
  const EntityId c = kb.AddEntity("c", animal).value();
  (void)kb.AddEntity("d", animal).value();  // never mentioned

  EvidenceAggregator aggregator;
  for (int i = 0; i < 5; ++i) aggregator.Add(Statement(a, "big"));
  aggregator.Add(Statement(b, "big"));
  for (int i = 0; i < 3; ++i) aggregator.Add(Statement(a, "calm"));
  aggregator.Add(Statement(c, "cute"));

  const ExtractionStatistics stats =
      ComputeExtractionStatistics(kb, aggregator, /*pair_threshold=*/3);

  // 9(a): per entity, zeros included: a=8, b=1, c=1, d=0.
  ASSERT_EQ(stats.statements_per_entity.size(), 4u);
  EXPECT_EQ(stats.statements_per_entity[a], 8);
  EXPECT_EQ(stats.statements_per_entity[b], 1);
  EXPECT_EQ(stats.statements_per_entity[c], 1);
  EXPECT_EQ(stats.statements_per_entity[3], 0);

  // 9(b): pairs (city,big)=6, (city,calm)=3, (animal,cute)=1.
  std::vector<double> pairs = stats.statements_per_pair;
  std::sort(pairs.begin(), pairs.end());
  EXPECT_EQ(pairs, (std::vector<double>{1, 3, 6}));

  // 9(c): with threshold 3, city has 2 qualifying properties, animal 0.
  ASSERT_EQ(stats.qualifying_properties_per_type.size(), 2u);
  EXPECT_EQ(stats.qualifying_properties_per_type[city], 2);
  EXPECT_EQ(stats.qualifying_properties_per_type[animal], 0);
}

TEST(ExtractionStatsTest, EmptyAggregator) {
  KnowledgeBase kb;
  kb.AddType("city");
  (void)kb.AddEntity("a", 0).value();
  EvidenceAggregator aggregator;
  const ExtractionStatistics stats =
      ComputeExtractionStatistics(kb, aggregator);
  EXPECT_EQ(stats.statements_per_entity.size(), 1u);
  EXPECT_TRUE(stats.statements_per_pair.empty());
  EXPECT_EQ(stats.qualifying_properties_per_type.size(), 1u);
}

TEST(WorldIoTest, GroundTruthDumpMatchesOracle) {
  World world = World::Generate(MakeTinyWorldConfig()).value();
  std::ostringstream os;
  ASSERT_TRUE(SaveGroundTruth(world, os).ok());
  const std::string dump = os.str();

  // One line per (pair, entity) plus the header.
  size_t lines = 0;
  for (char c : dump) lines += c == '\n';
  size_t expected = 1;
  for (const PropertyGroundTruth& truth : world.ground_truths()) {
    expected += truth.entities.size();
  }
  EXPECT_EQ(lines, expected);

  // Spot-check one entity's line against the oracle.
  const EntityId kitten = world.kb().EntitiesByName("kitten")[0];
  const Polarity dominant = world.TrueDominant(kitten, "cute").value();
  const std::string needle =
      std::string("truth\tanimal\tkitten\tcute\t");
  const size_t pos = dump.find(needle);
  ASSERT_NE(pos, std::string::npos);
  const std::string line = dump.substr(pos, dump.find('\n', pos) - pos);
  EXPECT_NE(line.find(std::string("\t") +
                      std::string(PolarityName(dominant))),
            std::string::npos);
}

TEST(WorldIoTest, GroundTruthRoundTripsThroughLoader) {
  World world = World::Generate(MakeTinyWorldConfig()).value();
  std::ostringstream os;
  ASSERT_TRUE(SaveGroundTruth(world, os).ok());
  std::istringstream is(os.str());
  auto labels = LoadGroundTruth(is, world.kb());
  ASSERT_TRUE(labels.ok()) << labels.status();

  size_t expected = 0;
  for (const PropertyGroundTruth& truth : world.ground_truths()) {
    expected += truth.entities.size();
  }
  EXPECT_EQ(labels->size(), expected);
  for (const auto& [key, polarity] : *labels) {
    EXPECT_EQ(polarity, world.TrueDominant(key.first, key.second).value());
  }
}

TEST(WorldIoTest, LoaderRejectsGarbage) {
  World world = World::Generate(MakeTinyWorldConfig()).value();
  std::istringstream wrong_kind("bogus\ta\tb\tc\td\te\n");
  EXPECT_FALSE(LoadGroundTruth(wrong_kind, world.kb()).ok());
  std::istringstream unknown_entity(
      "truth\tanimal\tghost\tcute\t0.9\t+\n");
  EXPECT_FALSE(LoadGroundTruth(unknown_entity, world.kb()).ok());
  std::istringstream bad_polarity(
      "truth\tanimal\tkitten\tcute\t0.9\t?\n");
  EXPECT_FALSE(LoadGroundTruth(bad_polarity, world.kb()).ok());
}

}  // namespace
}  // namespace surveyor
