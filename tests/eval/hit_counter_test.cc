#include "eval/hit_counter.h"

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/worlds.h"

namespace surveyor {
namespace {

std::vector<RawDocument> Docs(std::vector<std::string> texts) {
  std::vector<RawDocument> docs;
  for (size_t i = 0; i < texts.size(); ++i) {
    RawDocument doc;
    doc.doc_id = static_cast<int64_t>(i);
    doc.text = std::move(texts[i]);
    docs.push_back(std::move(doc));
  }
  return docs;
}

TEST(PhraseHitCounterTest, CountsExactPhrases) {
  PhraseHitCounter counter(Docs({
      "Gotham is a big city. gotham is a big city indeed.",
      "Some say gotham is a big city; others disagree.",
      "gotham is not a big city.",
  }));
  EXPECT_EQ(counter.CountOccurrences("gotham is a big city"), 3);
  EXPECT_EQ(counter.CountOccurrences("gotham is not a big city"), 1);
  EXPECT_EQ(counter.CountOccurrences("gotham is a tiny city"), 0);
}

TEST(PhraseHitCounterTest, CaseAndWhitespaceInsensitive) {
  PhraseHitCounter counter(Docs({"GOTHAM   Is\n A  BIG   city"}));
  EXPECT_EQ(counter.CountOccurrences("gotham is a big city"), 1);
  EXPECT_EQ(counter.CountOccurrences("  Gotham IS a\tbig CITY "), 1);
}

TEST(PhraseHitCounterTest, EmptyInputs) {
  PhraseHitCounter empty_corpus(Docs({}));
  EXPECT_EQ(empty_corpus.CountOccurrences("anything"), 0);
  PhraseHitCounter counter(Docs({"text"}));
  EXPECT_EQ(counter.CountOccurrences(""), 0);
}

TEST(PhraseHitCounterTest, QueryPairBuildsSectionTwoPhrases) {
  PhraseHitCounter counter(Docs({
      "gotham is a big city. gotham is not a big city. gotham is big.",
  }));
  const EvidenceCounts with_type = counter.QueryPair("gotham", "big", "city");
  EXPECT_EQ(with_type.positive, 1);
  EXPECT_EQ(with_type.negative, 1);
  const EvidenceCounts bare = counter.QueryPair("gotham", "big", "");
  EXPECT_EQ(bare.positive, 1);  // only the literal "gotham is big"
  EXPECT_EQ(bare.negative, 0);
}

TEST(PhraseHitCounterTest, TracksSimulatedCorpusShape) {
  // On the big-city corpus, the phrase counts must correlate with the
  // richer pipeline story: big cities attract far more positive phrase
  // hits than small ones.
  World world = World::Generate(MakeBigCityWorldConfig(60)).value();
  GeneratorOptions options;
  options.author_population = 8000;
  const auto corpus = CorpusGenerator(&world, options).Generate();
  PhraseHitCounter counter(corpus);

  double big_hits = 0, small_hits = 0;
  int big_cities = 0, small_cities = 0;
  for (EntityId e = 0; e < world.kb().num_entities(); ++e) {
    const double population = world.kb().GetAttribute(e, "population").value();
    const EvidenceCounts counts =
        counter.QueryPair(world.kb().entity(e).canonical_name, "big", "city");
    if (population > 1e6) {
      big_hits += static_cast<double>(counts.positive);
      ++big_cities;
    } else if (population < 1e4) {
      small_hits += static_cast<double>(counts.positive);
      ++small_cities;
    }
  }
  ASSERT_GT(big_cities, 0);
  ASSERT_GT(small_cities, 0);
  EXPECT_GT(big_hits / big_cities, 5 * (small_hits + 1) / small_cities);
}

}  // namespace
}  // namespace surveyor
