// Chaos suite for the in-process MapReduce framework (DESIGN.md §9):
// injected task faults must be absorbed by retries without changing the
// output, and poison tasks must quarantine instead of kill the job when
// opted in.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "mapreduce/mapreduce.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

using WordCount = std::pair<std::string, int>;

std::vector<std::string> MakeDocs(int n) {
  std::vector<std::string> docs;
  for (int i = 0; i < n; ++i) {
    docs.push_back(StrFormat("w%d w%d w%d", i % 7, i % 13, i % 29));
  }
  return docs;
}

std::vector<WordCount> CountWords(const std::vector<std::string>& documents,
                                  MapReduceOptions options,
                                  MapReduceReport* report = nullptr) {
  MapReduce<std::string, std::string, int, WordCount> job(options);
  return job.Run(
      documents,
      [](const std::string& doc,
         const std::function<void(std::string, int)>& emit) {
        for (const std::string& word : SplitWhitespace(doc)) emit(word, 1);
      },
      [](const std::string& word, std::vector<int>& ones) {
        int total = 0;
        for (int one : ones) total += one;
        return WordCount{word, total};
      },
      report);
}

MapReduceOptions ChaosOptions() {
  MapReduceOptions options;
  options.map_task_size = 8;  // many tasks -> many fault evaluations
  // Thread interleaving decides which task consumes which draw of the
  // shared trigger stream, so per-task outcomes are probabilistic; a deep
  // retry budget makes accidental exhaustion (which would abort without
  // quarantine) astronomically unlikely at the rates used here.
  options.task_retry.max_attempts = 10;
  options.task_retry.initial_backoff_seconds = 1e-6;
  options.task_retry.max_backoff_seconds = 1e-5;
  return options;
}

TEST(MapReduceChaosTest, MapTaskFaultsAreRetriedToTheSameOutput) {
  const std::vector<std::string> docs = MakeDocs(400);
  const std::vector<WordCount> clean = CountWords(docs, ChaosOptions());

  ScopedFaults faults("mr_map_task:0.3", /*seed=*/17);
  MapReduceReport report;
  const std::vector<WordCount> chaotic =
      CountWords(docs, ChaosOptions(), &report);

  EXPECT_EQ(chaotic, clean);  // identical content AND order
  const FaultPointStats stats =
      FaultInjector::Global().StatsFor("mr_map_task");
  EXPECT_GT(stats.injected, 0);
  // Nothing exhausted its retries, so every injected fault shows up as
  // exactly one retry in the report.
  EXPECT_EQ(report.map_task_retries, stats.injected);
  EXPECT_EQ(report.quarantined_map_tasks, 0);
  EXPECT_EQ(report.quarantined_map_inputs, 0);
}

TEST(MapReduceChaosTest, ReduceTaskFaultsAreRetriedToTheSameOutput) {
  const std::vector<std::string> docs = MakeDocs(400);
  MapReduceOptions options = ChaosOptions();
  options.num_partitions = 64;  // more reduce tasks -> more evaluations
  const std::vector<WordCount> clean = CountWords(docs, options);

  ScopedFaults faults("mr_reduce_task:0.3", /*seed=*/23);
  MapReduceReport report;
  const std::vector<WordCount> chaotic = CountWords(docs, options, &report);

  EXPECT_EQ(chaotic, clean);
  const FaultPointStats stats =
      FaultInjector::Global().StatsFor("mr_reduce_task");
  EXPECT_GT(stats.injected, 0);
  EXPECT_EQ(report.reduce_task_retries, stats.injected);
  EXPECT_EQ(report.quarantined_reduce_tasks, 0);
  EXPECT_EQ(report.quarantined_keys, 0);
}

TEST(MapReduceChaosTest, CombinedFaultsStillConverge) {
  const std::vector<std::string> docs = MakeDocs(200);
  const std::vector<WordCount> clean = CountWords(docs, ChaosOptions());

  ScopedFaults faults("mr_map_task:0.2,mr_reduce_task:0.2", /*seed=*/5);
  MapReduceReport report;
  const std::vector<WordCount> chaotic =
      CountWords(docs, ChaosOptions(), &report);

  EXPECT_EQ(chaotic, clean);
  EXPECT_GT(report.map_task_retries + report.reduce_task_retries, 0);
}

TEST(MapReduceChaosTest, PoisonMapInputQuarantinesOnlyItsTask) {
  ScopedFaults clean_env("");  // compose with a CI chaos profile
  MapReduceOptions options;
  options.map_task_size = 1;  // one input per task: minimal blast radius
  options.quarantine_poison_tasks = true;
  options.task_retry.max_attempts = 2;
  options.task_retry.initial_backoff_seconds = 1e-6;

  MapReduce<int, int, int, std::pair<int, int>> job(options);
  MapReduceReport report;
  const auto out = job.Run(
      std::vector<int>{1, 2, 3, 4, 5},
      [](const int& x, const std::function<void(int, int)>& emit) {
        if (x == 3) throw std::runtime_error("poison record");
        emit(x, x);
      },
      [](const int& key, std::vector<int>&) {
        return std::pair<int, int>{key, 1};
      },
      &report);

  // The poison input is gone; the other four survive.
  std::map<int, int> as_map(out.begin(), out.end());
  EXPECT_EQ(as_map.size(), 4u);
  EXPECT_EQ(as_map.count(3), 0u);
  EXPECT_EQ(report.map_tasks, 5);
  EXPECT_EQ(report.quarantined_map_tasks, 1);
  EXPECT_EQ(report.quarantined_map_inputs, 1);
  // The poison task burned its full retry budget (deterministic throw).
  EXPECT_EQ(report.map_task_retries, options.task_retry.max_attempts - 1);
}

TEST(MapReduceChaosTest, ThrowingReducerQuarantinesOnlyItsKey) {
  ScopedFaults clean_env("");
  MapReduceOptions options;
  options.quarantine_poison_tasks = true;
  options.task_retry.max_attempts = 2;
  options.task_retry.initial_backoff_seconds = 1e-6;

  MapReduce<int, int, int, std::pair<int, int>> job(options);
  MapReduceReport report;
  const auto out = job.Run(
      std::vector<int>{1, 2, 3, 4, 5},
      [](const int& x, const std::function<void(int, int)>& emit) {
        emit(x, x);
      },
      [](const int& key, std::vector<int>&) {
        if (key == 2) throw std::runtime_error("poison key");
        return std::pair<int, int>{key, 1};
      },
      &report);

  std::map<int, int> as_map(out.begin(), out.end());
  EXPECT_EQ(as_map.size(), 4u);
  EXPECT_EQ(as_map.count(2), 0u);
  EXPECT_EQ(report.quarantined_keys, 1);
  EXPECT_EQ(report.quarantined_reduce_tasks, 0);
}

TEST(MapReduceChaosTest, ExhaustedRetriesQuarantineWholeReducePartition) {
  ScopedFaults clean_env("");
  MapReduceOptions options;
  options.num_partitions = 1;  // everything lands in the victim partition
  options.quarantine_poison_tasks = true;
  options.task_retry.max_attempts = 3;
  options.task_retry.initial_backoff_seconds = 1e-6;

  // Probability 1 fails every attempt of the only reduce task, so its
  // retry budget is exhausted and the whole partition quarantines.
  ScopedFaults always("mr_reduce_task:1");
  MapReduce<int, int, int, std::pair<int, int>> job(options);
  MapReduceReport report;
  const auto out = job.Run(
      std::vector<int>{1, 2, 3},
      [](const int& x, const std::function<void(int, int)>& emit) {
        emit(x, x);
      },
      [](const int& key, std::vector<int>&) {
        return std::pair<int, int>{key, 1};
      },
      &report);

  EXPECT_TRUE(out.empty());
  EXPECT_EQ(report.quarantined_reduce_tasks, 1);
  EXPECT_EQ(report.quarantined_keys, 3);
  EXPECT_EQ(report.reduce_task_retries, options.task_retry.max_attempts - 1);
}

TEST(MapReduceChaosTest, DefaultChunkingUnaffectedByFaultMachinery) {
  // map_task_size = 0 must reproduce the legacy per-shard chunking, so a
  // healthy run's report shows one map task per worker shard.
  ScopedFaults clean_env("");
  MapReduceOptions options;
  options.num_workers = 4;
  MapReduceReport report;
  const std::vector<std::string> docs = MakeDocs(100);
  const auto counts = CountWords(docs, options, &report);
  EXPECT_FALSE(counts.empty());
  EXPECT_EQ(report.map_tasks, 4);
  EXPECT_EQ(report.map_task_retries, 0);
  EXPECT_EQ(report.reduce_task_retries, 0);
}

}  // namespace
}  // namespace surveyor
