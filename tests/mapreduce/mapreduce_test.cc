#include "mapreduce/mapreduce.h"

#include <gtest/gtest.h>

#include <string>

#include "util/string_util.h"

namespace surveyor {
namespace {

using WordCount = std::pair<std::string, int>;

std::vector<WordCount> CountWords(const std::vector<std::string>& documents,
                                  MapReduceOptions options) {
  MapReduce<std::string, std::string, int, WordCount> job(options);
  return job.Run(
      documents,
      [](const std::string& doc,
         const std::function<void(std::string, int)>& emit) {
        for (const std::string& word : SplitWhitespace(doc)) emit(word, 1);
      },
      [](const std::string& word, std::vector<int>& ones) {
        int total = 0;
        for (int one : ones) total += one;
        return WordCount{word, total};
      });
}

TEST(MapReduceTest, WordCount) {
  const std::vector<std::string> docs = {"a b a", "b c", "a"};
  const auto counts = CountWords(docs, {});
  std::map<std::string, int> as_map(counts.begin(), counts.end());
  EXPECT_EQ(as_map.size(), 3u);
  EXPECT_EQ(as_map["a"], 3);
  EXPECT_EQ(as_map["b"], 2);
  EXPECT_EQ(as_map["c"], 1);
}

TEST(MapReduceTest, EmptyInput) {
  EXPECT_TRUE(CountWords({}, {}).empty());
}

TEST(MapReduceTest, MapperMayEmitNothing) {
  MapReduce<int, int, int, int> job;
  const auto out = job.Run(
      {1, 2, 3, 4},
      [](const int& x, const std::function<void(int, int)>& emit) {
        if (x % 2 == 0) emit(x, x);
      },
      [](const int& key, std::vector<int>&) { return key; });
  EXPECT_EQ(out.size(), 2u);
}

TEST(MapReduceTest, DeterministicAcrossWorkerCounts) {
  std::vector<std::string> docs;
  for (int i = 0; i < 500; ++i) {
    docs.push_back(StrFormat("w%d w%d w%d", i % 7, i % 13, i % 29));
  }
  MapReduceOptions one_worker;
  one_worker.num_workers = 1;
  MapReduceOptions eight_workers;
  eight_workers.num_workers = 8;
  const auto a = CountWords(docs, one_worker);
  const auto b = CountWords(docs, eight_workers);
  EXPECT_EQ(a, b);  // identical content AND order
}

TEST(MapReduceTest, DeterministicAcrossPartitionsContentwise) {
  std::vector<std::string> docs = {"x y z", "x x", "z"};
  MapReduceOptions few;
  few.num_partitions = 1;
  MapReduceOptions many;
  many.num_partitions = 64;
  auto a = CountWords(docs, few);
  auto b = CountWords(docs, many);
  // Partitioning changes the output order but not the multiset.
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(MapReduceTest, LargeFanOut) {
  // Each input emits many keys; all must arrive.
  MapReduce<int, int, int, std::pair<int, int>> job;
  std::vector<int> inputs(64);
  const auto out = job.Run(
      inputs,
      [](const int&, const std::function<void(int, int)>& emit) {
        for (int k = 0; k < 100; ++k) emit(k, 1);
      },
      [](const int& key, std::vector<int>& values) {
        return std::pair<int, int>{key, static_cast<int>(values.size())};
      });
  ASSERT_EQ(out.size(), 100u);
  for (const auto& [key, count] : out) EXPECT_EQ(count, 64);
}

TEST(MapReduceTest, ReducerSeesAllValuesOfAKey) {
  MapReduce<int, int, int, long> job;
  std::vector<int> inputs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto out = job.Run(
      inputs,
      [](const int& x, const std::function<void(int, int)>& emit) {
        emit(0, x);  // single key
      },
      [](const int&, std::vector<int>& values) {
        long sum = 0;
        for (int v : values) sum += v;
        return sum;
      });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 55);
}

}  // namespace
}  // namespace surveyor
