// Tests for region-specific corpus generation and domain-restricted mining
// (paper Section 2).
#include <gtest/gtest.h>

#include <set>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "surveyor/pipeline.h"

namespace surveyor {
namespace {

class RegionTest : public testing::Test {
 protected:
  RegionTest() : world_(World::Generate(MakeTinyWorldConfig()).value()) {}

  World world_;
};

TEST_F(RegionTest, DocumentsCarryDomains) {
  GeneratorOptions options;
  options.author_population = 4000;
  options.regions = {RegionSpec{"us", 0.7, 0.0}, RegionSpec{"cn", 0.3, 0.0}};
  const auto corpus = CorpusGenerator(&world_, options).Generate();
  size_t us = 0, cn = 0, other = 0;
  for (const RawDocument& doc : corpus) {
    if (doc.domain == "us") {
      ++us;
    } else if (doc.domain == "cn") {
      ++cn;
    } else {
      ++other;
    }
  }
  EXPECT_EQ(other, 0u);
  EXPECT_GT(us, cn);  // 70/30 weight split
  EXPECT_GT(cn, 0u);
}

TEST_F(RegionTest, DocIdsUniqueAcrossRegions) {
  GeneratorOptions options;
  options.author_population = 3000;
  options.regions = {RegionSpec{"a", 0.5, 0.0}, RegionSpec{"b", 0.5, 0.0}};
  const auto corpus = CorpusGenerator(&world_, options).Generate();
  std::set<int64_t> ids;
  for (const RawDocument& doc : corpus) {
    EXPECT_TRUE(ids.insert(doc.doc_id).second);
  }
}

TEST_F(RegionTest, NoRegionsMeansNoDomain) {
  GeneratorOptions options;
  options.author_population = 2000;
  const auto corpus = CorpusGenerator(&world_, options).Generate();
  for (const RawDocument& doc : corpus) EXPECT_TRUE(doc.domain.empty());
}

TEST_F(RegionTest, OppositeShiftsProduceOppositeOpinions) {
  // A balanced-expression property so counts track opinion directly.
  WorldConfig config = MakeTinyWorldConfig();
  config.types[0].properties[0].express_positive = 0.06;
  config.types[0].properties[0].express_negative = 0.04;
  config.types[0].properties[0].agreement = 0.7;
  World world = World::Generate(config).value();

  GeneratorOptions options;
  options.author_population = 20000;
  options.regions = {RegionSpec{"pro", 0.5, +2.5},
                     RegionSpec{"anti", 0.5, -2.5}};
  const auto corpus = CorpusGenerator(&world, options).Generate();

  SurveyorConfig pipeline_config;
  pipeline_config.min_statements = 30;
  SurveyorPipeline pipeline(&world.kb(), &world.lexicon(), pipeline_config);
  const TypeId animal = world.kb().TypeByName("animal").value();

  auto pro = pipeline.Run(FilterByDomain(corpus, "pro"));
  auto anti = pipeline.Run(FilterByDomain(corpus, "anti"));
  ASSERT_TRUE(pro.ok());
  ASSERT_TRUE(anti.ok());
  const PropertyTypeResult* pro_pair = pro->Find(animal, "cute");
  const PropertyTypeResult* anti_pair = anti->Find(animal, "cute");
  ASSERT_NE(pro_pair, nullptr);
  ASSERT_NE(anti_pair, nullptr);

  // The pro region should affirm cuteness for clearly more animals.
  auto positives = [](const PropertyTypeResult& pair) {
    int count = 0;
    for (Polarity p : pair.polarity) count += p == Polarity::kPositive;
    return count;
  };
  EXPECT_GT(positives(*pro_pair), positives(*anti_pair) + 3);
}

TEST_F(RegionTest, WeightsMustBePositive) {
  GeneratorOptions options;
  options.regions = {RegionSpec{"x", 0.0, 0.0}};
  EXPECT_DEATH(CorpusGenerator(&world_, options),
               "region.weight");
}

}  // namespace
}  // namespace surveyor
