#include "corpus/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "corpus/worlds.h"

namespace surveyor {
namespace {

class GeneratorTest : public testing::Test {
 protected:
  GeneratorTest() : world_(World::Generate(MakeTinyWorldConfig()).value()) {}

  World world_;
};

TEST_F(GeneratorTest, DeterministicGivenSeed) {
  GeneratorOptions options;
  options.seed = 5;
  options.author_population = 2000;
  CorpusGenerator generator(&world_, options);
  const auto a = generator.Generate();
  const auto b = generator.Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc_id, b[i].doc_id);
    EXPECT_EQ(a[i].text, b[i].text);
  }
}

TEST_F(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions options;
  options.author_population = 2000;
  options.seed = 1;
  CorpusGenerator a(&world_, options);
  options.seed = 2;
  CorpusGenerator b(&world_, options);
  EXPECT_NE(a.Generate().front().text, b.Generate().front().text);
}

TEST_F(GeneratorTest, ExpectedCountsScaleWithPopularityAndFraction) {
  GeneratorOptions options;
  options.author_population = 10000;
  CorpusGenerator generator(&world_, options);
  const PropertyGroundTruth& truth = *world_.FindGroundTruth(
      world_.kb().TypeByName("animal").value(), "cute");
  for (size_t i = 0; i < truth.entities.size(); ++i) {
    const ExpectedCounts expected = generator.ExpectedCountsFor(truth, i);
    const double exposed = generator.ExposedAuthors(truth.entities[i]);
    EXPECT_NEAR(expected.positive,
                exposed * truth.positive_fraction[i] *
                    truth.spec->express_positive,
                1e-9);
    EXPECT_NEAR(expected.negative,
                exposed * (1.0 - truth.positive_fraction[i]) *
                    truth.spec->express_negative,
                1e-9);
  }
}

TEST_F(GeneratorTest, DocumentsHaveBoundedSize) {
  GeneratorOptions options;
  options.author_population = 3000;
  options.mean_sentences_per_doc = 4;
  CorpusGenerator generator(&world_, options);
  const auto docs = generator.Generate();
  ASSERT_FALSE(docs.empty());
  for (const RawDocument& doc : docs) {
    const size_t sentences =
        static_cast<size_t>(std::count(doc.text.begin(), doc.text.end(), '.'));
    EXPECT_GE(sentences, 1u);
    EXPECT_LE(sentences, 8u);  // capped at 2 * mean_sentences_per_doc - 1
  }
}

TEST_F(GeneratorTest, DocIdsAreSequential) {
  GeneratorOptions options;
  options.author_population = 2000;
  CorpusGenerator generator(&world_, options);
  const auto docs = generator.Generate();
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(docs[i].doc_id, static_cast<int64_t>(i));
  }
}

TEST_F(GeneratorTest, CorpusVolumeTracksAuthorPopulation) {
  GeneratorOptions small_options;
  small_options.author_population = 1000;
  GeneratorOptions big_options;
  big_options.author_population = 8000;
  const auto small_corpus = CorpusGenerator(&world_, small_options).Generate();
  const auto big_corpus = CorpusGenerator(&world_, big_options).Generate();
  size_t small_bytes = 0, big_bytes = 0;
  for (const auto& d : small_corpus) small_bytes += d.text.size();
  for (const auto& d : big_corpus) big_bytes += d.text.size();
  EXPECT_GT(big_bytes, 4 * small_bytes);
}

}  // namespace
}  // namespace surveyor
