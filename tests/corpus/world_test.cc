#include "corpus/world.h"

#include <gtest/gtest.h>

#include "corpus/worlds.h"

namespace surveyor {
namespace {

TEST(WorldTest, GenerateTinyWorld) {
  auto world = World::Generate(MakeTinyWorldConfig());
  ASSERT_TRUE(world.ok()) << world.status();
  EXPECT_EQ(world->kb().num_types(), 2u);
  EXPECT_EQ(world->kb().num_entities(), 22u);
  EXPECT_EQ(world->ground_truths().size(), 3u);
}

TEST(WorldTest, RejectsEmptyConfig) {
  EXPECT_FALSE(World::Generate(WorldConfig{}).ok());
}

TEST(WorldTest, RejectsTooManySeeds) {
  WorldConfig config = MakeTinyWorldConfig();
  config.types[0].num_entities = 2;  // fewer than the seeds
  EXPECT_FALSE(World::Generate(config).ok());
}

TEST(WorldTest, RejectsDuplicateProperty) {
  WorldConfig config = MakeTinyWorldConfig();
  config.types[0].properties.push_back(config.types[0].properties[0]);
  EXPECT_FALSE(World::Generate(config).ok());
}

TEST(WorldTest, DeterministicGivenSeed) {
  auto a = World::Generate(MakeTinyWorldConfig(42));
  auto b = World::Generate(MakeTinyWorldConfig(42));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->kb().num_entities(), b->kb().num_entities());
  for (EntityId e = 0; e < a->kb().num_entities(); ++e) {
    EXPECT_EQ(a->kb().entity(e).canonical_name,
              b->kb().entity(e).canonical_name);
    EXPECT_DOUBLE_EQ(a->kb().entity(e).popularity,
                     b->kb().entity(e).popularity);
  }
  for (size_t g = 0; g < a->ground_truths().size(); ++g) {
    EXPECT_EQ(a->ground_truths()[g].positive_fraction,
              b->ground_truths()[g].positive_fraction);
  }
}

TEST(WorldTest, GroundTruthLookup) {
  auto world = World::Generate(MakeTinyWorldConfig());
  ASSERT_TRUE(world.ok());
  const TypeId animal = world->kb().TypeByName("animal").value();
  EXPECT_NE(world->FindGroundTruth(animal, "cute"), nullptr);
  EXPECT_EQ(world->FindGroundTruth(animal, "gigantic"), nullptr);
}

TEST(WorldTest, FractionsConsistentWithDominant) {
  auto world = World::Generate(MakeTinyWorldConfig());
  ASSERT_TRUE(world.ok());
  for (const PropertyGroundTruth& truth : world->ground_truths()) {
    for (size_t i = 0; i < truth.entities.size(); ++i) {
      const double fraction = truth.positive_fraction[i];
      EXPECT_GE(fraction, 0.0);
      EXPECT_LE(fraction, 1.0);
      EXPECT_EQ(truth.dominant[i], fraction > 0.5 ? Polarity::kPositive
                                                  : Polarity::kNegative);
      // Oracle accessors agree with the stored vectors.
      EXPECT_DOUBLE_EQ(
          world->PositiveFraction(truth.entities[i], truth.property).value(),
          fraction);
      EXPECT_EQ(world->TrueDominant(truth.entities[i], truth.property).value(),
                truth.dominant[i]);
    }
  }
}

TEST(WorldTest, AttributeDrivenOpinionCorrelatesWithAttribute) {
  auto world = World::Generate(MakeBigCityWorldConfig(200));
  ASSERT_TRUE(world.ok());
  const PropertyGroundTruth& truth = world->ground_truths()[0];
  int checked = 0;
  for (size_t i = 0; i < truth.entities.size(); ++i) {
    const double population =
        world->kb().GetAttribute(truth.entities[i], "population").value();
    if (population > 2e6) {
      EXPECT_EQ(truth.dominant[i], Polarity::kPositive);
      ++checked;
    } else if (population < 2e4) {
      EXPECT_EQ(truth.dominant[i], Polarity::kNegative);
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);  // the log-uniform draw covers both tails
}

TEST(WorldTest, PopularityCorrelatesWithAttribute) {
  auto world = World::Generate(MakeBigCityWorldConfig(300));
  ASSERT_TRUE(world.ok());
  // Big cities should be more popular (occurrence bias) on average.
  double pop_big = 0.0, pop_small = 0.0;
  int n_big = 0, n_small = 0;
  for (EntityId e = 0; e < world->kb().num_entities(); ++e) {
    const double population = world->kb().GetAttribute(e, "population").value();
    if (population > 1e6) {
      pop_big += world->NormalizedPopularity(e);
      ++n_big;
    } else if (population < 1e4) {
      pop_small += world->NormalizedPopularity(e);
      ++n_small;
    }
  }
  ASSERT_GT(n_big, 0);
  ASSERT_GT(n_small, 0);
  EXPECT_GT(pop_big / n_big, 10 * pop_small / n_small);
}

TEST(WorldTest, LexiconKnowsVocabulary) {
  auto world = World::Generate(MakeTinyWorldConfig());
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world->lexicon().Lookup("cute"), Pos::kAdjective);
  EXPECT_EQ(world->lexicon().Lookup("kitten"), Pos::kNoun);
  EXPECT_EQ(world->lexicon().Lookup("animal"), Pos::kNoun);
  EXPECT_EQ(world->lexicon().Lookup("animals"), Pos::kNoun);
  EXPECT_EQ(world->lexicon().Lookup("city"), Pos::kNoun);
}

TEST(WorldTest, PaperWorldShape) {
  auto world = World::Generate(MakePaperWorldConfig(100));
  ASSERT_TRUE(world.ok()) << world.status();
  EXPECT_EQ(world->kb().num_types(), 5u);
  EXPECT_EQ(world->kb().num_entities(), 500u);
  EXPECT_EQ(world->ground_truths().size(), 25u);  // 5 types x 5 properties
  // The Fig. 10 animals exist.
  EXPECT_FALSE(world->kb().EntitiesByName("kitten").empty());
  EXPECT_FALSE(world->kb().EntitiesByName("grizzly bear").empty());
}

TEST(WorldTest, WebScaleWorldIsSkewed) {
  auto world = World::Generate(MakeWebScaleWorldConfig(15, 99));
  ASSERT_TRUE(world.ok()) << world.status();
  EXPECT_EQ(world->kb().num_types(), 15u);
  // Property counts vary across types.
  std::vector<size_t> properties_per_type(15, 0);
  for (const PropertyGroundTruth& truth : world->ground_truths()) {
    ++properties_per_type[truth.type];
  }
  size_t min = 1000, max = 0;
  for (size_t count : properties_per_type) {
    min = std::min(min, count);
    max = std::max(max, count);
  }
  EXPECT_GE(min, 1u);
  EXPECT_GT(max, 2 * min);
}

TEST(WorldTest, NormalizedPopularityInUnitInterval) {
  auto world = World::Generate(MakePaperWorldConfig(100));
  ASSERT_TRUE(world.ok());
  double max_seen = 0.0;
  for (EntityId e = 0; e < world->kb().num_entities(); ++e) {
    const double popularity = world->NormalizedPopularity(e);
    EXPECT_GT(popularity, 0.0);
    EXPECT_LE(popularity, 1.0);
    max_seen = std::max(max_seen, popularity);
  }
  EXPECT_DOUBLE_EQ(max_seen, 1.0);
}

TEST(WorldTest, OracleErrorsOnUnknownInput) {
  auto world = World::Generate(MakeTinyWorldConfig());
  ASSERT_TRUE(world.ok());
  EXPECT_FALSE(world->PositiveFraction(9999, "cute").ok());
  EXPECT_FALSE(world->PositiveFraction(0, "nonexistent").ok());
}

}  // namespace
}  // namespace surveyor
