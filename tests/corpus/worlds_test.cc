// Conformance of the canonical world configurations with the paper.
#include <gtest/gtest.h>

#include <set>

#include "corpus/worlds.h"

namespace surveyor {
namespace {

TEST(WorldsTest, PaperWorldMatchesTableTwo) {
  // Table 2 of the paper: five types with exactly these five properties.
  const std::map<std::string, std::set<std::string>> expected = {
      {"animal", {"dangerous", "cute", "big", "friendly", "deadly"}},
      {"celebrity", {"cool", "crazy", "pretty", "quiet", "young"}},
      {"city", {"big", "calm", "cheap", "hectic", "multicultural"}},
      {"profession", {"dangerous", "exciting", "rare", "solid", "vital"}},
      {"sport", {"addictive", "boring", "dangerous", "fast", "popular"}},
  };
  World world = World::Generate(MakePaperWorldConfig(60)).value();
  ASSERT_EQ(world.kb().num_types(), expected.size());
  std::map<std::string, std::set<std::string>> actual;
  for (const PropertyGroundTruth& truth : world.ground_truths()) {
    actual[world.kb().TypeName(truth.type)].insert(truth.property);
  }
  EXPECT_EQ(actual, expected);
}

TEST(WorldsTest, PaperWorldAgreementOrdering) {
  // Section 7.3's observation must hold in the latent parameters:
  // agreement(dangerous animals) > agreement(dangerous sports) >
  // agreement(boring sports).
  World world = World::Generate(MakePaperWorldConfig(60)).value();
  auto agreement = [&](const char* type, const char* property) {
    const TypeId t = world.kb().TypeByName(type).value();
    const PropertyGroundTruth* truth = world.FindGroundTruth(t, property);
    EXPECT_NE(truth, nullptr);
    return truth->spec->agreement;
  };
  EXPECT_GT(agreement("animal", "dangerous"), agreement("sport", "dangerous"));
  EXPECT_GT(agreement("sport", "dangerous"), agreement("sport", "boring"));
}

TEST(WorldsTest, PaperWorldHasPolarityBiasVariety) {
  // Most pairs voice positives more; at least one pair is inverse.
  World world = World::Generate(MakePaperWorldConfig(60)).value();
  int positive_biased = 0, inverse_biased = 0;
  for (const PropertyGroundTruth& truth : world.ground_truths()) {
    if (truth.spec->express_positive > truth.spec->express_negative) {
      ++positive_biased;
    } else {
      ++inverse_biased;
    }
  }
  EXPECT_GT(positive_biased, 20);
  EXPECT_GE(inverse_biased, 2);
}

TEST(WorldsTest, AttributeScenariosExposeBothTails) {
  // Each Appendix-A world must contain clearly-positive and
  // clearly-negative entities so the correlation studies have signal.
  for (const WorldConfig& config :
       {MakeBigCityWorldConfig(200), MakeWealthyCountryWorldConfig(),
        MakeBigLakeWorldConfig(), MakeHighMountainWorldConfig()}) {
    World world = World::Generate(config).value();
    const PropertyGroundTruth& truth = world.ground_truths()[0];
    int positive = 0, negative = 0;
    for (Polarity p : truth.dominant) {
      (p == Polarity::kPositive ? positive : negative)++;
    }
    EXPECT_GT(positive, 10);
    EXPECT_GT(negative, 10);
  }
}

TEST(WorldsTest, WebScaleWorldDeterministicPerSeed) {
  World a = World::Generate(MakeWebScaleWorldConfig(8, 77)).value();
  World b = World::Generate(MakeWebScaleWorldConfig(8, 77)).value();
  EXPECT_EQ(a.kb().num_entities(), b.kb().num_entities());
  EXPECT_EQ(a.ground_truths().size(), b.ground_truths().size());
  World c = World::Generate(MakeWebScaleWorldConfig(8, 78)).value();
  EXPECT_NE(a.kb().entity(0).canonical_name, c.kb().entity(0).canonical_name);
}

}  // namespace
}  // namespace surveyor
