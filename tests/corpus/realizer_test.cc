#include "corpus/realizer.h"

#include <gtest/gtest.h>

#include "corpus/worlds.h"
#include "extraction/extractor.h"
#include "text/annotator.h"

namespace surveyor {
namespace {

class RealizerTest : public testing::Test {
 protected:
  RealizerTest() : world_(World::Generate(MakeTinyWorldConfig()).value()) {}

  const PropertyGroundTruth& Truth(const std::string& type,
                                   const std::string& property) {
    const TypeId type_id = world_.kb().TypeByName(type).value();
    const PropertyGroundTruth* truth =
        world_.FindGroundTruth(type_id, property);
    EXPECT_NE(truth, nullptr);
    return *truth;
  }

  World world_;
};

TEST_F(RealizerTest, StatementsRoundTripThroughExtraction) {
  // Every realized statement must be recovered by the annotation +
  // extraction pipeline with the right entity, adjective, and polarity.
  // (A small loss through v4's conservative filters is acceptable; what is
  // recovered must be correct, and most must be recovered.)
  SentenceRealizer realizer(&world_);
  TextAnnotator annotator(&world_.kb(), &world_.lexicon());
  EvidenceExtractor extractor;  // v4
  Rng rng(31);
  const PropertyGroundTruth& truth = Truth("animal", "cute");

  int recovered = 0, total = 0, polarity_errors = 0, entity_errors = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const size_t index = rng.Index(truth.entities.size());
    const bool positive = rng.Bernoulli(0.5);
    const std::string sentence =
        realizer.RealizeStatement(truth, index, positive, rng);
    ++total;
    const auto statements =
        extractor.ExtractFromSentence(annotator.AnnotateSentence(sentence));
    for (const EvidenceStatement& s : statements) {
      if (s.adjective != "cute") continue;
      ++recovered;
      if (s.entity != truth.entities[index]) ++entity_errors;
      if (s.positive != positive) ++polarity_errors;
    }
  }
  EXPECT_GT(recovered, total * 7 / 10);
  EXPECT_EQ(polarity_errors, 0);
  EXPECT_EQ(entity_errors, 0);
}

TEST_F(RealizerTest, NonIntrinsicStatementsAreFiltered) {
  SentenceRealizer realizer(&world_);
  TextAnnotator annotator(&world_.kb(), &world_.lexicon());
  EvidenceExtractor v4;
  ExtractionOptions v2_options;
  v2_options.version = PatternVersion::kV2AmodAcompCopula;
  EvidenceExtractor v2(v2_options);
  Rng rng(37);
  const PropertyGroundTruth& truth = Truth("animal", "dangerous");

  int v4_extracted = 0, v2_extracted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const std::string sentence = realizer.RealizeNonIntrinsic(
        truth, rng.Index(truth.entities.size()), rng.Bernoulli(0.5), rng);
    const AnnotatedSentence annotated = annotator.AnnotateSentence(sentence);
    v4_extracted += static_cast<int>(v4.ExtractFromSentence(annotated).size());
    v2_extracted += static_cast<int>(v2.ExtractFromSentence(annotated).size());
  }
  EXPECT_EQ(v4_extracted, 0);   // checks reject every aspect-qualified use
  EXPECT_GT(v2_extracted, 100); // unchecked patterns swallow them
}

TEST_F(RealizerTest, AttributiveOnlyExtractedWithoutChecks) {
  SentenceRealizer realizer(&world_);
  TextAnnotator annotator(&world_.kb(), &world_.lexicon());
  EvidenceExtractor v4;
  ExtractionOptions v1_options;
  v1_options.version = PatternVersion::kV1AmodCopula;
  EvidenceExtractor v1(v1_options);
  Rng rng(41);
  const EntityId kitten = world_.kb().EntitiesByName("kitten")[0];

  int v4_count = 0, v1_count = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const std::string sentence =
        realizer.RealizeAttributive(kitten, "cute", rng);
    const AnnotatedSentence annotated = annotator.AnnotateSentence(sentence);
    v4_count += static_cast<int>(v4.ExtractFromSentence(annotated).size());
    v1_count += static_cast<int>(v1.ExtractFromSentence(annotated).size());
  }
  EXPECT_EQ(v4_count, 0);
  EXPECT_GT(v1_count, 60);
}

TEST_F(RealizerTest, FillerNeverYieldsEvidence) {
  SentenceRealizer realizer(&world_);
  TextAnnotator annotator(&world_.kb(), &world_.lexicon());
  EvidenceExtractor extractor;
  Rng rng(43);
  const EntityId kitten = world_.kb().EntitiesByName("kitten")[0];
  for (int trial = 0; trial < 100; ++trial) {
    const EntityId entity = rng.Bernoulli(0.5) ? kitten : kInvalidEntity;
    const std::string sentence = realizer.RealizeFiller(entity, rng);
    EXPECT_TRUE(
        extractor.ExtractFromSentence(annotator.AnnotateSentence(sentence))
            .empty())
        << sentence;
  }
}

TEST_F(RealizerTest, DoubleNegationPreservesPolarity) {
  RealizationOptions options;
  options.double_negation_prob = 1.0;  // force the construction
  SentenceRealizer realizer(&world_, options);
  TextAnnotator annotator(&world_.kb(), &world_.lexicon());
  EvidenceExtractor extractor;
  Rng rng(47);
  const PropertyGroundTruth& truth = Truth("animal", "cute");
  int checked = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const std::string sentence =
        realizer.RealizeStatement(truth, 0, /*positive=*/true, rng);
    EXPECT_NE(sentence.find("don't"), std::string::npos);
    const auto statements =
        extractor.ExtractFromSentence(annotator.AnnotateSentence(sentence));
    for (const EvidenceStatement& s : statements) {
      EXPECT_TRUE(s.positive) << sentence;
      ++checked;
    }
  }
  EXPECT_GT(checked, 40);
}

TEST_F(RealizerTest, CompoundPropertySurvivesRoundTrip) {
  // A property with a fixed adverb ("densely populated") must come back as
  // the full compound string.
  WorldConfig config = MakeTinyWorldConfig();
  PropertySpec compound;
  compound.adjective = "populated";
  compound.adverb = "densely";
  compound.prevalence = 0.5;
  compound.express_positive = 0.05;
  compound.express_negative = 0.01;
  config.types[1].properties.push_back(compound);
  auto world = World::Generate(config);
  ASSERT_TRUE(world.ok());
  SentenceRealizer realizer(&*world);

  TextAnnotator annotator(&world->kb(), &world->lexicon());
  EvidenceExtractor extractor;
  Rng rng(53);
  const TypeId city = world->kb().TypeByName("city").value();
  const PropertyGroundTruth* truth =
      world->FindGroundTruth(city, "densely populated");
  ASSERT_NE(truth, nullptr);
  int matched = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const std::string sentence =
        realizer.RealizeStatement(*truth, 0, true, rng);
    for (const EvidenceStatement& s : extractor.ExtractFromSentence(
             annotator.AnnotateSentence(sentence))) {
      if (s.property == "densely populated") ++matched;
    }
  }
  EXPECT_GT(matched, 50);
}

}  // namespace
}  // namespace surveyor
