#include "extraction/extractor.h"

#include <gtest/gtest.h>

#include "tests/text/text_test_util.h"
#include "text/annotator.h"

namespace surveyor {
namespace {

class ExtractorTest : public testing::Test {
 protected:
  std::vector<EvidenceStatement> Extract(
      const std::string& sentence,
      ExtractionOptions options = {}) {
    TextAnnotator annotator(&fixture_.kb, &fixture_.lexicon);
    EvidenceExtractor extractor(options);
    return extractor.ExtractFromSentence(annotator.AnnotateSentence(sentence));
  }

  TextFixture fixture_;
};

TEST_F(ExtractorTest, SimplePositiveComplement) {
  const auto statements = Extract("san francisco is big");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].entity, fixture_.sf);
  EXPECT_EQ(statements[0].adjective, "big");
  EXPECT_EQ(statements[0].property, "big");
  EXPECT_TRUE(statements[0].positive);
  EXPECT_EQ(statements[0].pattern, PatternKind::kAdjectivalComplement);
}

TEST_F(ExtractorTest, SimpleNegativeComplement) {
  const auto statements = Extract("palo alto is not big");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].entity, fixture_.palo_alto);
  EXPECT_FALSE(statements[0].positive);
}

TEST_F(ExtractorTest, NeverIsNegation) {
  const auto statements = Extract("tiger is never cute");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_FALSE(statements[0].positive);
}

TEST_F(ExtractorTest, AdverbJoinsProperty) {
  const auto statements = Extract("san francisco is very big");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].property, "very big");
  EXPECT_EQ(statements[0].adjective, "big");
}

TEST_F(ExtractorTest, CompoundProperty) {
  const auto statements = Extract("san francisco is densely populated");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].property, "densely populated");
}

TEST_F(ExtractorTest, PredicateNominalViaCoreference) {
  const auto statements = Extract("san francisco is a big city");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].entity, fixture_.sf);
  EXPECT_EQ(statements[0].pattern, PatternKind::kAdjectivalModifier);
  EXPECT_TRUE(statements[0].positive);
}

TEST_F(ExtractorTest, NegatedPredicateNominal) {
  const auto statements = Extract("palo alto is not a big city");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_FALSE(statements[0].positive);
}

TEST_F(ExtractorTest, PluralCoreference) {
  const auto statements = Extract("snakes are dangerous animals");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].entity, fixture_.snake);
  EXPECT_EQ(statements[0].adjective, "dangerous");
}

TEST_F(ExtractorTest, EmbeddedClausePositive) {
  const auto statements = Extract("i think that san francisco is big");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_TRUE(statements[0].positive);
}

TEST_F(ExtractorTest, EmbeddedClauseNegative) {
  const auto statements = Extract("i don't think that san francisco is big");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_FALSE(statements[0].positive);
}

TEST_F(ExtractorTest, DoubleNegationIsPositive) {
  // Figure 5: two negations cancel.
  const auto statements =
      Extract("i don't think that snakes are never dangerous");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].entity, fixture_.snake);
  EXPECT_TRUE(statements[0].positive);
}

TEST_F(ExtractorTest, NegationDetectionCanBeDisabled) {
  ExtractionOptions options;
  options.detect_negation = false;
  const auto statements = Extract("palo alto is not big", options);
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_TRUE(statements[0].positive);
}

TEST_F(ExtractorTest, ConjunctionPattern) {
  const auto statements = Extract("tiger is a fast and exciting animal");
  ASSERT_EQ(statements.size(), 2u);
  EXPECT_EQ(statements[0].adjective, "fast");
  EXPECT_EQ(statements[0].pattern, PatternKind::kAdjectivalModifier);
  EXPECT_EQ(statements[1].adjective, "exciting");
  EXPECT_EQ(statements[1].pattern, PatternKind::kConjunction);
  EXPECT_EQ(statements[1].entity, fixture_.tiger);
}

TEST_F(ExtractorTest, ConjunctionInComplement) {
  const auto statements = Extract("tiger is fast and exciting");
  ASSERT_EQ(statements.size(), 2u);
  EXPECT_EQ(statements[1].adjective, "exciting");
}

TEST_F(ExtractorTest, NegationDistributesOverConjunction) {
  const auto statements = Extract("tiger is not fast and exciting");
  ASSERT_EQ(statements.size(), 2u);
  EXPECT_FALSE(statements[0].positive);
  EXPECT_FALSE(statements[1].positive);
}

TEST_F(ExtractorTest, IntrinsicnessFiltersPrepOnComplement) {
  // v4 drops "bad for parking".
  EXPECT_TRUE(Extract("san francisco is bad for parking").empty());
  // v2 (no checks) keeps it.
  ExtractionOptions v2;
  v2.version = PatternVersion::kV2AmodAcompCopula;
  EXPECT_EQ(Extract("san francisco is bad for parking", v2).size(), 1u);
}

TEST_F(ExtractorTest, IntrinsicnessFiltersPrepOnNominal) {
  EXPECT_TRUE(Extract("san francisco is a big city in the north").empty());
}

TEST_F(ExtractorTest, CoreferenceRequirementFiltersDirectAmod) {
  // "southern France is warm" pattern: adjective on the direct mention
  // restricts to a part of the entity, so the checks reject both the amod
  // ("southern") and the complement ("warm").
  EXPECT_TRUE(Extract("the southern san francisco is warm").empty());
  // Without checks (v2) the amod on the direct mention is extracted.
  ExtractionOptions v2;
  v2.version = PatternVersion::kV2AmodAcompCopula;
  const auto statements = Extract("the southern san francisco is warm", v2);
  // v2 extracts both the amod "southern" and the acomp "warm".
  ASSERT_EQ(statements.size(), 2u);
}

TEST_F(ExtractorTest, AttributiveOnlyInUncheckedVersions) {
  const std::string sentence = "the cute tiger slept";
  EXPECT_TRUE(Extract(sentence).empty());  // v4
  ExtractionOptions v1;
  v1.version = PatternVersion::kV1AmodCopula;
  const auto statements = Extract(sentence, v1);
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].entity, fixture_.tiger);
  EXPECT_EQ(statements[0].adjective, "cute");
}

TEST_F(ExtractorTest, SeemsOnlyInCopulaClassVersions) {
  const std::string sentence = "tiger seems dangerous";
  EXPECT_TRUE(Extract(sentence).empty());  // v4: to-be only
  ExtractionOptions v2;
  v2.version = PatternVersion::kV2AmodAcompCopula;
  EXPECT_EQ(Extract(sentence, v2).size(), 1u);
  ExtractionOptions v3;
  v3.version = PatternVersion::kV3AcompToBeChecks;
  EXPECT_TRUE(Extract(sentence, v3).empty());
}

TEST_F(ExtractorTest, V1HasNoComplementPattern) {
  ExtractionOptions v1;
  v1.version = PatternVersion::kV1AmodCopula;
  EXPECT_TRUE(Extract("san francisco is big", v1).empty());
  // But the amod pattern works.
  EXPECT_EQ(Extract("san francisco is a big city", v1).size(), 1u);
}

TEST_F(ExtractorTest, V3HasNoAmodPattern) {
  ExtractionOptions v3;
  v3.version = PatternVersion::kV3AcompToBeChecks;
  EXPECT_TRUE(Extract("san francisco is a big city", v3).empty());
  EXPECT_EQ(Extract("san francisco is big", v3).size(), 1u);
}

TEST_F(ExtractorTest, ChecksOverrideForAblation) {
  ExtractionOptions options;  // v4
  options.intrinsic_checks_override = false;
  EXPECT_EQ(Extract("san francisco is bad for parking", options).size(), 1u);
}

TEST_F(ExtractorTest, SmallClausePattern) {
  const auto statements = Extract("i find snakes dangerous");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0].entity, fixture_.snake);
  EXPECT_EQ(statements[0].adjective, "dangerous");
  EXPECT_TRUE(statements[0].positive);
  EXPECT_EQ(statements[0].pattern, PatternKind::kSmallClause);
}

TEST_F(ExtractorTest, NegatedSmallClause) {
  const auto statements = Extract("i don't find snakes dangerous");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_FALSE(statements[0].positive);
}

TEST_F(ExtractorTest, SmallClauseDisabledInV1) {
  ExtractionOptions v1;
  v1.version = PatternVersion::kV1AmodCopula;
  EXPECT_TRUE(Extract("i find snakes dangerous", v1).empty());
}

TEST_F(ExtractorTest, SmallClauseChecksFilterConstriction) {
  EXPECT_TRUE(Extract("i find snakes dangerous for parking").empty());
}

TEST_F(ExtractorTest, NoEntityNoExtraction) {
  EXPECT_TRUE(Extract("the garden is big").empty());
  EXPECT_TRUE(Extract("it is big").empty());
}

TEST_F(ExtractorTest, UnparsedSentenceYieldsNothing) {
  EXPECT_TRUE(Extract("the harbor of san francisco is big").empty());
}

TEST_F(ExtractorTest, FillerYieldsNothing) {
  EXPECT_TRUE(Extract("people visit san francisco").empty());
  EXPECT_TRUE(Extract("san francisco has a harbor").empty());
}

TEST_F(ExtractorTest, DocumentExtractionTracksIds) {
  TextAnnotator annotator(&fixture_.kb, &fixture_.lexicon);
  EvidenceExtractor extractor;
  const AnnotatedDocument doc = annotator.AnnotateDocument(
      42, "san francisco is big. tiger is not cute.");
  const auto statements = extractor.ExtractFromDocument(doc);
  ASSERT_EQ(statements.size(), 2u);
  EXPECT_EQ(statements[0].doc_id, 42);
  EXPECT_EQ(statements[0].sentence_index, 0);
  EXPECT_EQ(statements[1].sentence_index, 1);
}

}  // namespace
}  // namespace surveyor
