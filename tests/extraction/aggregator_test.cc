#include "extraction/aggregator.h"

#include <gtest/gtest.h>

namespace surveyor {
namespace {

EvidenceStatement Statement(EntityId entity, const std::string& property,
                            bool positive) {
  EvidenceStatement s;
  s.entity = entity;
  s.adjective = property;
  s.property = property;
  s.positive = positive;
  return s;
}

class AggregatorTest : public testing::Test {
 protected:
  AggregatorTest() {
    city_ = kb_.AddType("city");
    animal_ = kb_.AddType("animal");
    sf_ = kb_.AddEntity("san francisco", city_).value();
    pa_ = kb_.AddEntity("palo alto", city_).value();
    cat_ = kb_.AddEntity("cat", animal_).value();
  }

  KnowledgeBase kb_;
  TypeId city_ = kInvalidType;
  TypeId animal_ = kInvalidType;
  EntityId sf_ = kInvalidEntity;
  EntityId pa_ = kInvalidEntity;
  EntityId cat_ = kInvalidEntity;
};

TEST_F(AggregatorTest, CountsPositiveAndNegative) {
  EvidenceAggregator aggregator;
  aggregator.Add(Statement(sf_, "big", true));
  aggregator.Add(Statement(sf_, "big", true));
  aggregator.Add(Statement(sf_, "big", false));
  const EvidenceCounts counts = aggregator.CountsFor(sf_, "big");
  EXPECT_EQ(counts.positive, 2);
  EXPECT_EQ(counts.negative, 1);
  EXPECT_EQ(aggregator.total_statements(), 3);
  EXPECT_EQ(aggregator.num_pairs(), 1u);
}

TEST_F(AggregatorTest, MissingPairIsZero) {
  EvidenceAggregator aggregator;
  const EvidenceCounts counts = aggregator.CountsFor(sf_, "big");
  EXPECT_EQ(counts.positive, 0);
  EXPECT_EQ(counts.negative, 0);
}

TEST_F(AggregatorTest, SeparatesProperties) {
  EvidenceAggregator aggregator;
  aggregator.Add(Statement(sf_, "big", true));
  aggregator.Add(Statement(sf_, "very big", true));
  EXPECT_EQ(aggregator.num_pairs(), 2u);
  EXPECT_EQ(aggregator.CountsFor(sf_, "big").positive, 1);
  EXPECT_EQ(aggregator.CountsFor(sf_, "very big").positive, 1);
}

TEST_F(AggregatorTest, MergeCombinesCounters) {
  EvidenceAggregator a;
  EvidenceAggregator b;
  a.Add(Statement(sf_, "big", true));
  b.Add(Statement(sf_, "big", false));
  b.Add(Statement(pa_, "big", true));
  a.Merge(b);
  EXPECT_EQ(a.total_statements(), 3);
  EXPECT_EQ(a.CountsFor(sf_, "big").positive, 1);
  EXPECT_EQ(a.CountsFor(sf_, "big").negative, 1);
  EXPECT_EQ(a.CountsFor(pa_, "big").positive, 1);
}

TEST_F(AggregatorTest, GroupByTypeMaterializesAllEntities) {
  EvidenceAggregator aggregator;
  aggregator.Add(Statement(sf_, "big", true));
  const auto groups = aggregator.GroupByType(kb_, 1);
  ASSERT_EQ(groups.size(), 1u);
  const PropertyTypeEvidence& group = groups[0];
  EXPECT_EQ(group.type, city_);
  EXPECT_EQ(group.property, "big");
  EXPECT_EQ(group.total_statements, 1);
  // Both cities appear, palo alto with zero counts.
  ASSERT_EQ(group.entities.size(), 2u);
  ASSERT_EQ(group.counts.size(), 2u);
  EXPECT_EQ(group.counts[0].positive + group.counts[1].positive, 1);
}

TEST_F(AggregatorTest, GroupByTypeSplitsTypes) {
  EvidenceAggregator aggregator;
  aggregator.Add(Statement(sf_, "big", true));
  aggregator.Add(Statement(cat_, "big", true));
  const auto groups = aggregator.GroupByType(kb_, 1);
  EXPECT_EQ(groups.size(), 2u);  // (city,big) and (animal,big)
}

TEST_F(AggregatorTest, RhoThresholdFilters) {
  EvidenceAggregator aggregator;
  for (int i = 0; i < 5; ++i) aggregator.Add(Statement(sf_, "big", true));
  aggregator.Add(Statement(sf_, "calm", true));
  EXPECT_EQ(aggregator.GroupByType(kb_, 1).size(), 2u);
  EXPECT_EQ(aggregator.GroupByType(kb_, 3).size(), 1u);
  EXPECT_EQ(aggregator.GroupByType(kb_, 6).size(), 0u);
}

TEST_F(AggregatorTest, ThresholdSumsAcrossEntities) {
  EvidenceAggregator aggregator;
  aggregator.Add(Statement(sf_, "big", true));
  aggregator.Add(Statement(pa_, "big", false));
  // Two statements across entities pass a threshold of 2.
  EXPECT_EQ(aggregator.GroupByType(kb_, 2).size(), 1u);
}

TEST_F(AggregatorTest, StatementsPerEntity) {
  EvidenceAggregator aggregator;
  aggregator.Add(Statement(sf_, "big", true));
  aggregator.Add(Statement(sf_, "calm", false));
  aggregator.Add(Statement(cat_, "cute", true));
  const auto per_entity = aggregator.StatementsPerEntity(kb_);
  ASSERT_EQ(per_entity.size(), kb_.num_entities());
  EXPECT_EQ(per_entity[sf_], 2);
  EXPECT_EQ(per_entity[pa_], 0);
  EXPECT_EQ(per_entity[cat_], 1);
}

TEST_F(AggregatorTest, ProvenanceDisabledByDefault) {
  EvidenceAggregator aggregator;
  EvidenceStatement s = Statement(sf_, "big", true);
  s.doc_id = 42;
  aggregator.Add(s);
  EXPECT_TRUE(aggregator.SupportingStatements(sf_, "big").empty());
}

TEST_F(AggregatorTest, ProvenanceKeepsBoundedSamples) {
  EvidenceAggregator aggregator(/*max_provenance_samples=*/2);
  for (int i = 0; i < 5; ++i) {
    EvidenceStatement s = Statement(sf_, "big", i % 2 == 0);
    s.doc_id = 100 + i;
    s.sentence_index = i;
    aggregator.Add(s);
  }
  const auto refs = aggregator.SupportingStatements(sf_, "big");
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].doc_id, 100);
  EXPECT_EQ(refs[0].sentence_index, 0);
  EXPECT_TRUE(refs[0].positive);
  EXPECT_EQ(refs[1].doc_id, 101);
  EXPECT_FALSE(refs[1].positive);
  EXPECT_TRUE(aggregator.SupportingStatements(sf_, "calm").empty());
  EXPECT_TRUE(aggregator.SupportingStatements(pa_, "big").empty());
}

TEST_F(AggregatorTest, ProvenanceMergesWithCap) {
  EvidenceAggregator a(2);
  EvidenceAggregator b(2);
  EvidenceStatement s1 = Statement(sf_, "big", true);
  s1.doc_id = 1;
  EvidenceStatement s2 = Statement(sf_, "big", true);
  s2.doc_id = 2;
  EvidenceStatement s3 = Statement(sf_, "big", true);
  s3.doc_id = 3;
  a.Add(s1);
  b.Add(s2);
  b.Add(s3);
  a.Merge(b);
  const auto refs = a.SupportingStatements(sf_, "big");
  ASSERT_EQ(refs.size(), 2u);  // capped at 2 despite 3 available
  EXPECT_EQ(refs[0].doc_id, 1);
  EXPECT_EQ(refs[1].doc_id, 2);
}

TEST_F(AggregatorTest, DeterministicGroupOrder) {
  EvidenceAggregator aggregator;
  aggregator.Add(Statement(cat_, "cute", true));
  aggregator.Add(Statement(sf_, "big", true));
  aggregator.Add(Statement(sf_, "calm", true));
  const auto groups = aggregator.GroupByType(kb_, 1);
  ASSERT_EQ(groups.size(), 3u);
  // Ordered by (type id, property).
  EXPECT_EQ(groups[0].property, "big");
  EXPECT_EQ(groups[1].property, "calm");
  EXPECT_EQ(groups[2].property, "cute");
}

}  // namespace
}  // namespace surveyor
