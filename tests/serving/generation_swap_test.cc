#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serving/opinion_index.h"
#include "serving/snapshot.h"
#include "util/fault.h"
#include "util/status.h"

namespace surveyor {
namespace serving {
namespace {

// The hot-swap consistency hammer (run under TSan in CI): query threads
// hammer point lookups, type scans and prefix scans while the main
// thread drives 100+ live generation swaps, some of them doomed loads of
// corrupt files. Every snapshot encodes its generation number into every
// answerable surface — posterior, provenance doc_id, and a marker entity
// name — so a query thread can prove each answer is internally consistent
// with exactly one generation: a torn swap (half old maps, half new
// snapshot) would decode to two different generation numbers inside one
// answer.

constexpr int kEntities = 8;

/// posterior = (100*g + i + 1) / 100000 encodes (generation, entity).
double EncodePosterior(uint64_t generation, int entity) {
  return static_cast<double>(100 * generation + entity + 1) / 100000.0;
}

/// Recovers 100*g + i + 1 from a posterior.
int64_t DecodePosterior(double posterior) {
  return std::llround(posterior * 100000.0);
}

std::string WriteGenerationSnapshot(uint64_t generation,
                                    const std::string& dir) {
  SnapshotWriter writer;
  writer.set_label("gen" + std::to_string(generation));
  for (int i = 0; i < kEntities; ++i) {
    SnapshotOpinion opinion;
    opinion.entity = "entity" + std::to_string(i);
    opinion.type = "thing";
    opinion.property = "score";
    opinion.posterior = EncodePosterior(generation, i);
    opinion.polarity = Polarity::kPositive;
    EXPECT_TRUE(writer.Add(opinion).ok());
    // Provenance doc_id carries the generation too: a point answer whose
    // posterior and provenance disagree would expose a cross-generation
    // mix inside one Materialize.
    writer.AddProvenance(opinion.entity, "thing", "score",
                         {{static_cast<int64_t>(generation), 0, true}});
  }
  // One marker entity per generation, for prefix-scan consistency: a
  // PrefixScan("marker") must see exactly one of these, never two.
  SnapshotOpinion marker;
  marker.entity = "marker-g" + std::to_string(generation);
  marker.type = "thing";
  marker.property = "score";
  marker.posterior = EncodePosterior(generation, kEntities);
  marker.polarity = Polarity::kPositive;
  EXPECT_TRUE(writer.Add(marker).ok());

  const std::string path =
      dir + "/swap-gen" + std::to_string(generation) + ".surv";
  EXPECT_TRUE(writer.WriteToFile(path).ok());
  return path;
}

TEST(GenerationSwapTest, QueriesStayConsistentAcross100LiveSwaps) {
  ScopedFaults disarm{""};
  const std::string dir = testing::TempDir() + "/generation_swap";
  std::filesystem::create_directories(dir);

  constexpr uint64_t kSwaps = 120;
  // Pre-build the snapshot files so the swap loop measures swaps, not
  // serialization; a handful of distinct files is enough because the
  // generation id is assigned at load time.
  std::vector<std::string> paths;
  for (uint64_t g = 1; g <= 8; ++g) {
    paths.push_back(WriteGenerationSnapshot(g, dir));
  }
  const std::string corrupt_path = dir + "/corrupt.surv";
  {
    std::ifstream in(paths[0], std::ios::binary);
    std::string image((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    image[image.size() / 2] ^= 0x5a;
    std::ofstream(corrupt_path, std::ios::binary) << image;
  }

  OpinionIndexOptions options;
  options.cache_capacity = 16;  // tiny: force eviction churn during swaps
  options.cache_shards = 2;
  options.retry.max_attempts = 1;
  OpinionIndex index(options);
  // Load generation g from file (g-1)%8: the snapshot's *content*
  // encodes ((g-1)%8)+1, so queries must decode content generation, not
  // the LoadGeneration id. Map: file for generation f has content f.
  auto content_generation = [](uint64_t swap) -> uint64_t {
    return (swap - 1) % 8 + 1;
  };
  ASSERT_TRUE(index.LoadGeneration(paths[0], 1).ok());

  std::atomic<bool> done{false};
  std::atomic<int64_t> inconsistencies{0};
  std::atomic<int64_t> answers{0};

  std::vector<std::thread> readers;
  // Thread 0+1: point lookups. An answer must agree with itself: the
  // entity index decoded from the posterior matches the entity asked
  // for, and the provenance doc_id names the same generation.
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&index, &done, &inconsistencies, &answers, t] {
      int i = t;
      while (!done.load(std::memory_order_relaxed)) {
        const std::string entity = "entity" + std::to_string(i % kEntities);
        const auto opinion = index.Lookup(entity, "score");
        if (opinion.ok()) {
          answers.fetch_add(1, std::memory_order_relaxed);
          const int64_t code = DecodePosterior(opinion->posterior);
          const int64_t generation = (code - 1) / 100;
          const int64_t entity_index = (code - 1) % 100;
          bool consistent = generation >= 1 && generation <= 8 &&
                            entity_index == i % kEntities;
          if (consistent && !opinion->provenance.empty()) {
            consistent = opinion->provenance[0].doc_id == generation;
          }
          if (!consistent) {
            inconsistencies.fetch_add(1, std::memory_order_relaxed);
          }
        }
        ++i;
      }
    });
  }
  // Thread 2: type scans. Every row of one scan must decode to the SAME
  // generation — a swap landing mid-scan must not mix rows.
  readers.emplace_back([&index, &done, &inconsistencies, &answers] {
    while (!done.load(std::memory_order_relaxed)) {
      const auto rows = index.QueryType("thing", "score");
      if (rows.empty()) continue;
      answers.fetch_add(1, std::memory_order_relaxed);
      const int64_t generation = (DecodePosterior(rows[0].posterior) - 1) / 100;
      bool consistent = rows.size() == kEntities + 1;
      for (const ServedOpinion& row : rows) {
        if ((DecodePosterior(row.posterior) - 1) / 100 != generation) {
          consistent = false;
        }
      }
      if (!consistent) {
        inconsistencies.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // Thread 3: prefix scans. Exactly one generation marker may exist.
  readers.emplace_back([&index, &done, &inconsistencies, &answers] {
    while (!done.load(std::memory_order_relaxed)) {
      const auto markers = index.PrefixScan("marker-");
      if (markers.empty()) continue;
      answers.fetch_add(1, std::memory_order_relaxed);
      if (markers.size() != 1) {
        inconsistencies.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // The swap driver: 120 live swaps, every 5th a doomed load of the
  // corrupt file (which must fail and keep the old generation serving).
  // An optimized build can finish all 120 swaps before the readers land
  // a single query, so the driver paces itself on reader progress: each
  // swap waits until the answer count moved, and the run only ends once
  // the readers have produced a real sample.
  uint64_t failed_swaps = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (uint64_t swap = 2; swap <= kSwaps + 1; ++swap) {
    if (swap % 5 == 0) {
      EXPECT_FALSE(index.LoadGeneration(corrupt_path, swap).ok());
      ++failed_swaps;
      EXPECT_TRUE(index.loaded());
    } else {
      const uint64_t content = content_generation(swap);
      ASSERT_TRUE(
          index.LoadGeneration(paths[content - 1], swap).ok());
      EXPECT_EQ(index.generation_id(), swap);
    }
    const int64_t before = answers.load(std::memory_order_relaxed);
    while (answers.load(std::memory_order_relaxed) == before &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  }
  while (answers.load(std::memory_order_relaxed) < 1000 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(inconsistencies.load(), 0);
  EXPECT_GT(answers.load(), 0);
  EXPECT_GT(failed_swaps, 20u);
  EXPECT_EQ(index.metrics()
                .GetCounter("surveyor_generation_swap_failures_total")
                ->Value(),
            static_cast<int64_t>(failed_swaps));

  // The swap counter saw the initial load plus every successful swap.
  EXPECT_EQ(index.metrics()
                .GetCounter("surveyor_generation_swaps_total")
                ->Value(),
            static_cast<int64_t>(1 + kSwaps - failed_swaps));
}

// A pinned generation outlives the swap that replaced it: the RCU grace
// period is the shared_ptr refcount.
TEST(GenerationSwapTest, PinnedGenerationSurvivesSwap) {
  ScopedFaults disarm{""};
  const std::string dir = testing::TempDir() + "/generation_pin";
  std::filesystem::create_directories(dir);
  OpinionIndex index;
  ASSERT_TRUE(index.LoadGeneration(WriteGenerationSnapshot(1, dir), 1).ok());
  const GenerationPtr pinned = index.generation();
  ASSERT_TRUE(index.LoadGeneration(WriteGenerationSnapshot(2, dir), 2).ok());
  EXPECT_EQ(index.generation_id(), 2u);
  // The old generation's mapped snapshot is still alive and readable.
  EXPECT_EQ(pinned->id(), 1u);
  EXPECT_EQ(std::string(pinned->snapshot().label()), "gen1");
  EXPECT_EQ(pinned->snapshot().num_entities(), kEntities + 1u);
}

// The generation_swap fault fires after a fully successful build but
// before publication: the failure path the /metrics swap-failure counter
// exists for.
TEST(GenerationSwapTest, SwapFaultKeepsOldGenerationServing) {
  ScopedFaults disarm{""};
  const std::string dir = testing::TempDir() + "/generation_swapfault";
  std::filesystem::create_directories(dir);
  OpinionIndex index;
  ASSERT_TRUE(index.LoadGeneration(WriteGenerationSnapshot(1, dir), 1).ok());
  {
    ScopedFaults faults("generation_swap:@1");
    EXPECT_FALSE(
        index.LoadGeneration(WriteGenerationSnapshot(2, dir), 2).ok());
  }
  EXPECT_EQ(index.generation_id(), 1u);
  EXPECT_TRUE(index.Lookup("entity0", "score").ok());
  EXPECT_EQ(index.metrics()
                .GetCounter("surveyor_generation_swap_failures_total")
                ->Value(),
            1);
  // Disarmed, the same load goes through.
  ASSERT_TRUE(index.LoadGeneration(WriteGenerationSnapshot(2, dir), 2).ok());
  EXPECT_EQ(index.generation_id(), 2u);
}

}  // namespace
}  // namespace serving
}  // namespace surveyor
