#include "serving/query_service.h"

#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define SURVEYOR_TEST_HAVE_SOCKETS 1
#endif

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "gtest/gtest.h"
#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/stage.h"
#include "serving/opinion_index.h"
#include "serving/snapshot.h"
#include "surveyor/api.h"
#include "surveyor/opinion_store.h"
#include "util/fault.h"

namespace surveyor {
namespace serving {
namespace {

SnapshotOpinion MakeOpinion(const std::string& entity, const std::string& type,
                            const std::string& property, double posterior,
                            Polarity polarity) {
  SnapshotOpinion opinion;
  opinion.entity = entity;
  opinion.type = type;
  opinion.property = property;
  opinion.posterior = posterior;
  opinion.polarity = polarity;
  return opinion;
}

/// Fixture with a loaded index and a service that is already "ready".
/// Environment-armed chaos faults (the CI chaos job) are disarmed for the
/// fixture's scope — tests that want a fault arm their own ScopedFaults.
class QueryServiceTest : public testing::Test {
 protected:
  QueryServiceTest() {
    SnapshotWriter writer;
    EXPECT_TRUE(writer
                    .Add(MakeOpinion("kitten", "animal", "cute", 0.97,
                                     Polarity::kPositive))
                    .ok());
    EXPECT_TRUE(writer
                    .Add(MakeOpinion("koala", "animal", "cute", 0.91,
                                     Polarity::kPositive))
                    .ok());
    EXPECT_TRUE(writer
                    .Add(MakeOpinion("spider", "animal", "scary", 0.95,
                                     Polarity::kPositive))
                    .ok());
    path_ = testing::TempDir() + "/query_service.surv";
    EXPECT_TRUE(writer.WriteToFile(path_).ok());
    EXPECT_TRUE(index_.Load(path_).ok());
    stage_.SetStage(obs::PipelineStage::kServing);
  }

  ScopedFaults disarm_{""};
  std::string path_;
  OpinionIndex index_;
  obs::StageTracker stage_;
  obs::MetricRegistry metrics_;
};

TEST_F(QueryServiceTest, PointQueryReturnsJson) {
  QueryService service(&index_, &stage_, &metrics_);
  const obs::AdminResponse response =
      service.Handle("GET", "/query?entity=kitten&property=cute", "");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("\"entity\":\"kitten\""), std::string::npos);
  EXPECT_NE(response.body.find("\"polarity\":\"+\""), std::string::npos);
  EXPECT_NE(response.body.find("\"posterior\":0.97"), std::string::npos);
}

TEST_F(QueryServiceTest, MissIs404WithJsonError) {
  QueryService service(&index_, &stage_, &metrics_);
  const obs::AdminResponse response =
      service.Handle("GET", "/query?entity=kitten&property=haunted", "");
  EXPECT_EQ(response.status, 404);
  EXPECT_NE(response.body.find("\"error\""), std::string::npos);
}

TEST_F(QueryServiceTest, NotReadyIs503) {
  obs::StageTracker cold;  // still kStarting
  QueryService service(&index_, &cold, &metrics_);
  const obs::AdminResponse response =
      service.Handle("GET", "/query?entity=kitten&property=cute", "");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("starting"), std::string::npos);

  cold.SetStage(obs::PipelineStage::kServing);
  EXPECT_EQ(
      service.Handle("GET", "/query?entity=kitten&property=cute", "").status,
      200);
}

TEST_F(QueryServiceTest, TypeScanAndPrefixScan) {
  QueryService service(&index_, &stage_, &metrics_);
  obs::AdminResponse response =
      service.Handle("GET", "/query?type=animal&property=cute", "");
  EXPECT_EQ(response.status, 200);
  // Strongest first: kitten (0.97) before koala (0.91); spider's opinion
  // is on a different property.
  const size_t kitten = response.body.find("kitten");
  const size_t koala = response.body.find("koala");
  ASSERT_NE(kitten, std::string::npos);
  ASSERT_NE(koala, std::string::npos);
  EXPECT_LT(kitten, koala);
  EXPECT_EQ(response.body.find("spider"), std::string::npos);

  response = service.Handle("GET", "/query?prefix=k", "");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"entities\":[\"kitten\",\"koala\"]"),
            std::string::npos);

  // limit= caps results.
  response = service.Handle("GET", "/query?type=animal&property=cute&limit=1",
                            "");
  EXPECT_NE(response.body.find("kitten"), std::string::npos);
  EXPECT_EQ(response.body.find("koala"), std::string::npos);
}

TEST_F(QueryServiceTest, UrlEncodingIsDecoded) {
  QueryService service(&index_, &stage_, &metrics_);
  const obs::AdminResponse response =
      service.Handle("GET", "/query?entity=%6bitten&property=cute", "");
  EXPECT_EQ(response.status, 200);
}

TEST_F(QueryServiceTest, MalformedRequestsAreRejected) {
  QueryService service(&index_, &stage_, &metrics_);
  // No usable parameter combination.
  EXPECT_EQ(service.Handle("GET", "/query?entity=kitten", "").status, 400);
  EXPECT_EQ(service.Handle("GET", "/query", "").status, 400);
  // Wrong methods.
  EXPECT_EQ(
      service.Handle("POST", "/query?entity=kitten&property=cute", "").status,
      405);
  EXPECT_EQ(service.Handle("GET", "/query/batch", "").status, 405);
  // Unknown sub-path.
  EXPECT_EQ(service.Handle("GET", "/query/nope", "").status, 404);
  // The rejected counter saw all of it.
  EXPECT_GT(metrics_.GetCounter("surveyor_query_rejected_total")->Value(), 0);
}

TEST_F(QueryServiceTest, BatchAnswersPerEntry) {
  QueryService service(&index_, &stage_, &metrics_);
  const std::string body =
      "{\"queries\":[{\"entity\":\"kitten\",\"property\":\"cute\"},"
      "{\"entity\":\"nobody\",\"property\":\"cute\"}]}";
  const obs::AdminResponse response =
      service.Handle("POST", "/query/batch", body);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"entity\":\"kitten\""), std::string::npos);
  // Per-entry misses carry the same envelope error object as top-level
  // failures.
  EXPECT_NE(response.body.find("{\"error\":{\"code\":\"not_found\","
                               "\"message\":\"unknown entity 'nobody'\"}}"),
            std::string::npos);
}

TEST_F(QueryServiceTest, BatchRejectsGarbageAndOversizedRequests) {
  QueryServiceOptions options;
  options.max_batch = 2;
  QueryService service(&index_, &stage_, &metrics_, options);
  EXPECT_EQ(service.Handle("POST", "/query/batch", "not json").status, 400);
  EXPECT_EQ(service.Handle("POST", "/query/batch", "{\"queries\":0}").status,
            400);
  EXPECT_EQ(
      service.Handle("POST", "/query/batch", "{\"queries\":[]} trailing")
          .status,
      400);
  const std::string big =
      "{\"queries\":[{\"entity\":\"a\",\"property\":\"p\"},"
      "{\"entity\":\"b\",\"property\":\"p\"},"
      "{\"entity\":\"c\",\"property\":\"p\"}]}";
  EXPECT_EQ(service.Handle("POST", "/query/batch", big).status, 400);
}

TEST_F(QueryServiceTest, LatencyHistogramSeesEveryRequest) {
  QueryService service(&index_, &stage_, &metrics_);
  (void)service.Handle("GET", "/query?entity=kitten&property=cute", "");
  (void)service.Handle("GET", "/query?entity=kitten", "");
  EXPECT_EQ(metrics_.GetCounter("surveyor_query_requests_total")->Value(), 2);
  EXPECT_EQ(
      metrics_.GetHistogram("surveyor_query_latency_seconds", {})->Count(), 2);
}

// ---------------------------------------------------------------------------
// Request tracing through the serving stack.

bool HasSpan(const obs::RequestTrace& trace, std::string_view name) {
  for (const obs::TraceSpan& span : trace.spans) {
    if (span.name == name) return true;
  }
  return false;
}

TEST_F(QueryServiceTest, SampledQueryTraceShowsServingSpans) {
  QueryService service(&index_, &stage_, &metrics_);
  obs::AdminServerOptions options;
  options.trace_sample_rate = 1.0;
  options.slow_query_ms = 0.0;
  obs::AdminServer server(&metrics_, &stage_, nullptr, options);
  service.Register(&server);

  // First lookup: cache miss, so the snapshot decode span appears too.
  EXPECT_EQ(server.Handle("GET", "/query?entity=kitten&property=cute").status,
            200);
  std::vector<obs::RequestTrace> traces = server.request_tracer().Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(HasSpan(traces[0], "GET /query"));
  EXPECT_TRUE(HasSpan(traces[0], "query_service.point"));
  EXPECT_TRUE(HasSpan(traces[0], "opinion_index.lookup"));
  EXPECT_TRUE(HasSpan(traces[0], "snapshot.materialize"));
  EXPECT_EQ(traces[0].stats.cache_misses, 1);
  EXPECT_EQ(traces[0].stats.cache_hits, 0);

  // Second lookup: cache hit, no decode.
  EXPECT_EQ(server.Handle("GET", "/query?entity=kitten&property=cute").status,
            200);
  traces = server.request_tracer().Snapshot();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_TRUE(HasSpan(traces[0], "opinion_index.lookup"));
  EXPECT_FALSE(HasSpan(traces[0], "snapshot.materialize"));
  EXPECT_EQ(traces[0].stats.cache_hits, 1);
  EXPECT_EQ(traces[0].stats.cache_misses, 0);
}

TEST_F(QueryServiceTest, SlowQueryTailCaptureOnForcedCacheMiss) {
  QueryService service(&index_, &stage_, &metrics_);
  obs::AdminServerOptions options;
  options.trace_sample_rate = 0.0;   // head sampling off
  options.slow_query_ms = 1e-6;      // everything exceeds the threshold
  obs::AdminServer server(&metrics_, &stage_, nullptr, options);
  service.Register(&server);

  // Warm the cache, then force misses: the "slow" request explains itself
  // through its stats and its snapshot.materialize span.
  EXPECT_EQ(server.Handle("GET", "/query?entity=kitten&property=cute").status,
            200);
  ScopedFaults faults("query_cache:1");
  EXPECT_EQ(server.Handle("GET", "/query?entity=kitten&property=cute").status,
            200);

  const std::vector<obs::RequestTrace> traces =
      server.request_tracer().Snapshot();
  ASSERT_GE(traces.size(), 2u);
  const obs::RequestTrace& forced = traces[0];  // newest first
  EXPECT_TRUE(forced.slow);
  EXPECT_FALSE(forced.sampled);
  EXPECT_EQ(forced.stats.cache_misses, 1);
  EXPECT_TRUE(HasSpan(forced, "snapshot.materialize"));
}

TEST_F(QueryServiceTest, SnapshotReadRetriesLandInTheTrace) {
  obs::RequestTracerOptions tracer_options;
  tracer_options.sample_rate = 1.0;
  obs::RequestTracer tracer(tracer_options);
  // Fail the first snapshot read; the bounded retry recovers and the
  // request trace records the recovery.
  ScopedFaults faults("snapshot_read:@1");
  OpinionIndexOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_seconds = 0;
  options.retry.max_backoff_seconds = 0;
  OpinionIndex index(options);
  {
    obs::RequestScope scope(&tracer, nullptr, "POST", "/reload");
    EXPECT_TRUE(index.Load(path_).ok());
  }
  const std::vector<obs::RequestTrace> traces = tracer.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].stats.retries, 1);
  EXPECT_TRUE(HasSpan(traces[0], "opinion_index.load"));
  EXPECT_TRUE(HasSpan(traces[0], "snapshot.open"));
}

TEST_F(QueryServiceTest, LatencyExemplarResolvesToRetainedTrace) {
  QueryService service(&index_, &stage_, &metrics_);
  obs::AdminServerOptions options;
  options.trace_sample_rate = 1.0;
  options.slow_query_ms = 0.0;
  obs::AdminServer server(&metrics_, &stage_, nullptr, options);
  service.Register(&server);

  EXPECT_EQ(server.Handle("GET", "/query?entity=kitten&property=cute").status,
            200);
  const std::vector<obs::RequestTrace> traces =
      server.request_tracer().Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const std::string hex = obs::TraceIdHex(traces[0].trace_id);

  // The latency histogram's exemplar carries the sampled request's trace
  // id, so /metrics points straight at the span tree on /tracez.
  const std::string text = metrics_.ToPrometheusText();
  EXPECT_NE(text.find("surveyor_query_latency_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("# {trace_id=\"" + hex + "\"}"), std::string::npos);
}

TEST_F(QueryServiceTest, UnsampledRequestsLeaveNoExemplar) {
  QueryService service(&index_, &stage_, &metrics_);
  obs::AdminServerOptions options;
  options.trace_sample_rate = 0.0;
  options.slow_query_ms = 0.0;
  obs::AdminServer server(&metrics_, &stage_, nullptr, options);
  service.Register(&server);
  EXPECT_EQ(server.Handle("GET", "/query?entity=kitten&property=cute").status,
            200);
  EXPECT_EQ(metrics_.ToPrometheusText().find("# {trace_id="),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// The full loop over a real socket: mine a tiny corpus with the public
// facade, freeze a snapshot, serve it next to the admin plane, scrape
// /query, and check the served posterior matches the mined one.

#ifdef SURVEYOR_TEST_HAVE_SOCKETS

std::string HttpRequest(int port, const std::string& head_and_body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < head_and_body.size()) {
    const ssize_t n = ::write(fd, head_and_body.data() + sent,
                              head_and_body.size() - sent);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[2048];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& target) {
  return HttpRequest(port,
                     "GET " + target + " HTTP/1.0\r\nHost: x\r\n\r\n");
}

TEST(ServingIntegrationTest, MineSnapshotServeScrape) {
  // Mine a tiny synthetic corpus through the one-call facade.
  World world = World::Generate(MakeTinyWorldConfig()).value();
  GeneratorOptions generator_options;
  generator_options.author_population = 4000;
  generator_options.seed = 19;
  const std::vector<RawDocument> corpus =
      CorpusGenerator(&world, generator_options).Generate();
  SurveyorConfig config;
  config.min_statements = 20;
  config.num_threads = 2;
  const auto result = Mine(config, corpus, world.kb(), world.lexicon());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(result->stats.num_opinions, 0);

  // Freeze and reload.
  SnapshotWriter writer;
  writer.set_label("integration");
  ASSERT_TRUE(writer.AddResult(*result, world.kb()).ok());
  const std::string path = testing::TempDir() + "/integration.surv";
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  OpinionIndex index;
  ASSERT_TRUE(index.Load(path).ok());

  // Serve /query next to the admin endpoints, with the readiness gate.
  obs::MetricRegistry metrics;
  obs::StageTracker stage;
  QueryService service(&index, &stage, &metrics);
  obs::AdminServer server(&metrics, &stage, nullptr);
  service.Register(&server);
  ASSERT_TRUE(server.Start().ok());

  // Before the stage flips, /query is refused.
  EXPECT_NE(HttpGet(server.port(), "/query?entity=kitten&property=cute")
                .find("HTTP/1.1 503"),
            std::string::npos);
  stage.SetStage(obs::PipelineStage::kServing);

  // Pick a mined opinion and check the served answer matches it exactly.
  const PairOpinion mined = result->Opinions().front();
  const std::string entity =
      world.kb().entity(mined.entity).canonical_name;
  std::string encoded = entity;
  for (size_t pos; (pos = encoded.find(' ')) != std::string::npos;) {
    encoded.replace(pos, 1, "%20");
  }
  const std::string response = HttpGet(
      server.port(), "/query?entity=" + encoded + "&property=" +
                         mined.property);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("\"entity\":\"" + entity + "\""),
            std::string::npos) << response;
  // Render the posterior the way the JSON layer does (integral values
  // print without a fraction) and demand an exact match with mine time.
  char posterior[64];
  if (mined.probability == static_cast<long long>(mined.probability)) {
    std::snprintf(posterior, sizeof(posterior), "%lld",
                  static_cast<long long>(mined.probability));
  } else {
    std::snprintf(posterior, sizeof(posterior), "%.10g", mined.probability);
  }
  EXPECT_NE(response.find("\"posterior\":" + std::string(posterior)),
            std::string::npos)
      << response;

  // Batch POST over the same socket transport.
  const std::string body = "{\"queries\":[{\"entity\":\"" + entity +
                           "\",\"property\":\"" + mined.property + "\"}]}";
  const std::string batch = HttpRequest(
      server.port(), "POST /query/batch HTTP/1.0\r\nHost: x\r\n"
                     "Content-Length: " + std::to_string(body.size()) +
                     "\r\n\r\n" + body);
  EXPECT_NE(batch.find("HTTP/1.1 200 OK"), std::string::npos) << batch;
  EXPECT_NE(batch.find("\"entity\":\"" + entity + "\""), std::string::npos);

  // The admin plane still works next to /query.
  EXPECT_NE(HttpGet(server.port(), "/metrics")
                .find("surveyor_query_requests_total"),
            std::string::npos);
  server.Stop();
}

#endif  // SURVEYOR_TEST_HAVE_SOCKETS

}  // namespace
}  // namespace serving
}  // namespace surveyor
