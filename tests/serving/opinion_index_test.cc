#include "serving/opinion_index.h"

#include <atomic>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "kb/knowledge_base.h"
#include "serving/snapshot.h"
#include "surveyor/opinion_store.h"
#include "util/fault.h"
#include "util/status.h"

namespace surveyor {
namespace serving {
namespace {

SnapshotOpinion MakeOpinion(const std::string& entity, const std::string& type,
                            const std::string& property, double posterior,
                            Polarity polarity) {
  SnapshotOpinion opinion;
  opinion.entity = entity;
  opinion.type = type;
  opinion.property = property;
  opinion.posterior = posterior;
  opinion.polarity = polarity;
  return opinion;
}

/// Writes a snapshot with animals and cities to a temp file and returns
/// its path.
std::string WriteTestSnapshot(const std::string& name) {
  SnapshotWriter writer;
  writer.set_label("index test");
  EXPECT_TRUE(writer
                  .Add(MakeOpinion("Kitten", "animal", "cute", 0.97,
                                   Polarity::kPositive))
                  .ok());
  EXPECT_TRUE(writer
                  .Add(MakeOpinion("Koala", "animal", "cute", 0.91,
                                   Polarity::kPositive))
                  .ok());
  EXPECT_TRUE(writer
                  .Add(MakeOpinion("Spider", "animal", "cute", 0.12,
                                   Polarity::kNegative))
                  .ok());
  EXPECT_TRUE(writer
                  .Add(MakeOpinion("Lisbon", "city", "hilly", 0.88,
                                   Polarity::kPositive))
                  .ok());
  writer.AddProvenance("Kitten", "animal", "cute", {{42, 1, true}});
  const std::string path = testing::TempDir() + "/" + name;
  EXPECT_TRUE(writer.WriteToFile(path).ok());
  return path;
}

/// Disarms environment-armed chaos faults (the CI chaos job) for the
/// test's scope: these tests assert exact cache counters and load
/// behavior. The fault paths are exercised explicitly by the tests that
/// arm their own ScopedFaults.
class OpinionIndexTest : public testing::Test {
 protected:
  ScopedFaults disarm_{""};
};

TEST_F(OpinionIndexTest, PointLookupResolvesNamesAndProvenance) {
  OpinionIndex index;
  ASSERT_TRUE(index.Load(WriteTestSnapshot("point.surv")).ok());
  ASSERT_TRUE(index.loaded());

  const auto opinion = index.Lookup("kitten", "cute");
  ASSERT_TRUE(opinion.ok()) << opinion.status();
  EXPECT_EQ(opinion->entity, "Kitten");
  EXPECT_EQ(opinion->type, "animal");
  EXPECT_EQ(opinion->property, "cute");
  EXPECT_DOUBLE_EQ(opinion->posterior, 0.97);
  EXPECT_EQ(opinion->polarity, Polarity::kPositive);
  ASSERT_EQ(opinion->provenance.size(), 1u);
  EXPECT_EQ(opinion->provenance[0].doc_id, 42);

  // Name matching is case-insensitive, like the knowledge base.
  EXPECT_TRUE(index.Lookup("KITTEN", "CUTE").ok());
}

TEST_F(OpinionIndexTest, LookupBeforeLoadIsFailedPrecondition) {
  OpinionIndex index;
  EXPECT_EQ(index.Lookup("kitten", "cute").status().code(),
            StatusCode::kFailedPrecondition);
}

// The regression at the heart of satellite (c): the offline store and the
// online index must agree that BOTH miss shapes — unknown entity, and
// known entity with no opinion on the property — are kNotFound, so
// callers can swap one for the other.
TEST_F(OpinionIndexTest, NotFoundSemanticsMatchOpinionStore) {
  KnowledgeBase kb;
  const TypeId animal = kb.AddType("animal");
  const EntityId kitten = kb.AddEntity("kitten", animal).value();
  const EntityId ghost = kb.AddEntity("ghost", animal).value();

  OpinionStore store(&kb);
  PairOpinion mined;
  mined.entity = kitten;
  mined.type = animal;
  mined.property = "cute";
  mined.probability = 0.97;
  mined.polarity = Polarity::kPositive;
  store.Add(mined);

  OpinionIndex index;
  ASSERT_TRUE(index.Load(WriteTestSnapshot("semantics.surv")).ok());

  // Known entity, no opinion on the property.
  EXPECT_EQ(store.Lookup(kitten, "haunted").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(index.Lookup("kitten", "haunted").status().code(),
            StatusCode::kNotFound);

  // Entity with no opinions at all (the store's closest analog of an
  // unknown name is an id it holds nothing for).
  EXPECT_EQ(store.Lookup(ghost, "cute").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(index.Lookup("ghost", "cute").status().code(),
            StatusCode::kNotFound);

  // The index distinguishes the two cases in the message for operators.
  EXPECT_NE(index.Lookup("ghost", "cute").status().message().find(
                "unknown entity"),
            std::string::npos);
  EXPECT_NE(index.Lookup("kitten", "haunted").status().message().find(
                "no opinion"),
            std::string::npos);
}

TEST_F(OpinionIndexTest, BatchLookupAnswersPerEntryInOrder) {
  OpinionIndex index;
  ASSERT_TRUE(index.Load(WriteTestSnapshot("batch.surv")).ok());
  const auto results = index.BatchLookup(
      {{"kitten", "cute"}, {"nobody", "cute"}, {"lisbon", "hilly"}});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[0]->entity, "Kitten");
  EXPECT_EQ(results[1].status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(results[2]->entity, "Lisbon");
}

TEST_F(OpinionIndexTest, QueryTypeIsPositiveOnlyStrongestFirst) {
  OpinionIndex index;
  ASSERT_TRUE(index.Load(WriteTestSnapshot("scan.surv")).ok());

  const auto cute = index.QueryType("animal", "cute");
  ASSERT_EQ(cute.size(), 2u);  // spider's negative opinion is excluded
  EXPECT_EQ(cute[0].entity, "Kitten");
  EXPECT_EQ(cute[1].entity, "Koala");

  EXPECT_EQ(index.QueryType("animal", "cute", 1).size(), 1u);
  EXPECT_TRUE(index.QueryType("animal", "hilly").empty());
  EXPECT_TRUE(index.QueryType("volcano", "cute").empty());
}

TEST_F(OpinionIndexTest, PrefixScanIsSortedAndCaseInsensitive) {
  OpinionIndex index;
  ASSERT_TRUE(index.Load(WriteTestSnapshot("prefix.surv")).ok());
  const auto matches = index.PrefixScan("k");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], "Kitten");
  EXPECT_EQ(matches[1], "Koala");
  EXPECT_EQ(index.PrefixScan("KIT").size(), 1u);
  EXPECT_EQ(index.PrefixScan("k", 1).size(), 1u);
  EXPECT_TRUE(index.PrefixScan("zz").empty());
}

TEST_F(OpinionIndexTest, CacheCountsHitsMissesAndEvictions) {
  OpinionIndexOptions options;
  options.cache_capacity = 1;
  options.cache_shards = 1;
  OpinionIndex index(options);
  ASSERT_TRUE(index.Load(WriteTestSnapshot("cache.surv")).ok());
  obs::MetricRegistry& metrics = index.metrics();
  auto* hits = metrics.GetCounter("surveyor_query_cache_hits_total");
  auto* misses = metrics.GetCounter("surveyor_query_cache_misses_total");
  auto* evictions = metrics.GetCounter("surveyor_query_cache_evictions_total");

  ASSERT_TRUE(index.Lookup("kitten", "cute").ok());  // miss, fills the slot
  EXPECT_EQ(misses->Value(), 1);
  EXPECT_EQ(hits->Value(), 0);

  ASSERT_TRUE(index.Lookup("kitten", "cute").ok());  // hit
  EXPECT_EQ(hits->Value(), 1);

  ASSERT_TRUE(index.Lookup("koala", "cute").ok());  // miss, evicts kitten
  EXPECT_EQ(misses->Value(), 2);
  EXPECT_EQ(evictions->Value(), 1);

  ASSERT_TRUE(index.Lookup("kitten", "cute").ok());  // miss again
  EXPECT_EQ(misses->Value(), 3);
}

TEST_F(OpinionIndexTest, DisabledCacheStillAnswers) {
  OpinionIndexOptions options;
  options.cache_capacity = 0;
  OpinionIndex index(options);
  ASSERT_TRUE(index.Load(WriteTestSnapshot("nocache.surv")).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(index.Lookup("kitten", "cute").ok());
  }
  EXPECT_EQ(index.metrics()
                .GetCounter("surveyor_query_cache_hits_total")
                ->Value(),
            0);
}

TEST_F(OpinionIndexTest, FailedLoadKeepsServingThePreviousSnapshot) {
  OpinionIndex index;
  ASSERT_TRUE(index.Load(WriteTestSnapshot("stable.surv")).ok());

  OpinionIndexOptions no_retry;
  no_retry.retry.max_attempts = 1;
  OpinionIndex strict(no_retry);
  ASSERT_TRUE(strict.Load(WriteTestSnapshot("stable2.surv")).ok());
  EXPECT_FALSE(strict.Load(testing::TempDir() + "/does-not-exist.surv").ok());
  EXPECT_TRUE(strict.loaded());
  EXPECT_TRUE(strict.Lookup("kitten", "cute").ok());
  // The failed load neither advanced the generation nor went uncounted.
  EXPECT_EQ(strict.generation_id(), 1u);
  EXPECT_EQ(strict.metrics()
                .GetCounter("surveyor_generation_swap_failures_total")
                ->Value(),
            1);
}

TEST_F(OpinionIndexTest, GenerationIdsAdvanceWithEachLoad) {
  OpinionIndex index;
  EXPECT_EQ(index.generation_id(), 0u);
  EXPECT_EQ(index.generation(), nullptr);

  ASSERT_TRUE(index.Load(WriteTestSnapshot("gen1.surv")).ok());
  EXPECT_EQ(index.generation_id(), 1u);
  ASSERT_TRUE(index.Load(WriteTestSnapshot("gen2.surv")).ok());
  EXPECT_EQ(index.generation_id(), 2u);

  // An explicit id (the GenerationStore's numbering, including a
  // rollback to a smaller id) is taken verbatim.
  ASSERT_TRUE(index.LoadGeneration(WriteTestSnapshot("gen7.surv"), 7).ok());
  EXPECT_EQ(index.generation_id(), 7u);
  ASSERT_TRUE(index.LoadGeneration(WriteTestSnapshot("gen3.surv"), 3).ok());
  EXPECT_EQ(index.generation_id(), 3u);
  // Implicit Load continues from wherever the explicit id left off.
  ASSERT_TRUE(index.Load(WriteTestSnapshot("gen4.surv")).ok());
  EXPECT_EQ(index.generation_id(), 4u);

  const GenerationPtr generation = index.generation();
  ASSERT_NE(generation, nullptr);
  EXPECT_EQ(generation->id(), 4u);
  EXPECT_GE(generation->AgeSeconds(), 0.0);
  EXPECT_EQ(index.metrics().GetGauge("surveyor_generation_id")->Value(),
            4.0);
}

TEST_F(OpinionIndexTest, RetriesAbsorbTransientSnapshotReadFaults) {
  const std::string path = WriteTestSnapshot("retry.surv");
  // At 50% failure probability, 8 attempts fail together 1 time in 256 —
  // and the seed is fixed, so the test is deterministic anyway.
  ScopedFaults faults("snapshot_read:0.5", /*seed=*/7);
  OpinionIndexOptions options;
  options.retry.max_attempts = 8;
  options.retry.initial_backoff_seconds = 0;
  options.retry.max_backoff_seconds = 0;
  OpinionIndex index(options);
  EXPECT_TRUE(index.Load(path).ok());
}

TEST_F(OpinionIndexTest, QueryCacheFaultForcesMissesButKeepsAnswersCorrect) {
  OpinionIndex index;
  ASSERT_TRUE(index.Load(WriteTestSnapshot("cachefault.surv")).ok());
  ScopedFaults faults("query_cache:1");
  for (int i = 0; i < 3; ++i) {
    const auto opinion = index.Lookup("kitten", "cute");
    ASSERT_TRUE(opinion.ok());
    EXPECT_DOUBLE_EQ(opinion->posterior, 0.97);
  }
  // Every lookup bypassed the cache: correctness preserved, no hits.
  EXPECT_EQ(index.metrics()
                .GetCounter("surveyor_query_cache_hits_total")
                ->Value(),
            0);
}

// Hammer the read-through cache from many threads; run under TSan in CI.
TEST_F(OpinionIndexTest, ConcurrentLookupsAreSafe) {
  OpinionIndexOptions options;
  options.cache_capacity = 2;  // tiny, to force constant eviction races
  options.cache_shards = 2;
  OpinionIndex index(options);
  ASSERT_TRUE(index.Load(WriteTestSnapshot("hammer.surv")).ok());

  const std::vector<std::pair<std::string, std::string>> queries = {
      {"kitten", "cute"}, {"koala", "cute"},   {"spider", "cute"},
      {"lisbon", "hilly"}, {"nobody", "cute"}, {"kitten", "hilly"},
  };
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&index, &queries, &failures, t] {
      for (int i = 0; i < 2000; ++i) {
        const auto& [entity, property] = queries[(t + i) % queries.size()];
        const auto opinion = index.Lookup(entity, property);
        const bool expect_ok =
            (property == "cute" && entity != "nobody" && entity != "lisbon") ||
            (entity == "lisbon" && property == "hilly");
        if (opinion.ok() != expect_ok) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);

  const auto opinion = index.Lookup("kitten", "cute");
  ASSERT_TRUE(opinion.ok());
  EXPECT_DOUBLE_EQ(opinion->posterior, 0.97);
}

}  // namespace
}  // namespace serving
}  // namespace surveyor
