#include "serving/snapshot.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/fault.h"
#include "util/status.h"

namespace surveyor {
namespace serving {
namespace {

SnapshotOpinion MakeOpinion(const std::string& entity, const std::string& type,
                            const std::string& property, double posterior,
                            Polarity polarity) {
  SnapshotOpinion opinion;
  opinion.entity = entity;
  opinion.type = type;
  opinion.property = property;
  opinion.posterior = posterior;
  opinion.polarity = polarity;
  return opinion;
}

/// A writer with a small, representative data set: two types, two
/// properties, a degraded block and a provenance sample.
SnapshotWriter MakeWriter() {
  SnapshotWriter writer;
  writer.set_label("test snapshot");
  EXPECT_TRUE(writer
                  .Add(MakeOpinion("kitten", "animal", "cute", 0.97,
                                   Polarity::kPositive))
                  .ok());
  EXPECT_TRUE(writer
                  .Add(MakeOpinion("spider", "animal", "cute", 0.12,
                                   Polarity::kNegative))
                  .ok());
  EXPECT_TRUE(writer
                  .Add(MakeOpinion("lisbon", "city", "hilly", 0.88,
                                   Polarity::kPositive))
                  .ok());
  writer.AddProvenance("kitten", "animal", "cute",
                       {{1234, 2, true}, {5678, 0, false}});
  return writer;
}

std::string WriteTempFile(const std::string& name, const std::string& bytes) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

/// Snapshot opens must behave deterministically here even when the CI
/// chaos job arms snapshot_read through the environment, so the fixture
/// disarms fault injection for the test's scope (the repo-wide idiom for
/// exact-behavior tests). The fault path itself is tested explicitly
/// below with its own ScopedFaults.
class SnapshotTest : public testing::Test {
 protected:
  ScopedFaults disarm_{""};
};

TEST(SnapshotWriterTest, RejectsUnusableOpinions) {
  SnapshotWriter writer;
  // Neutral opinions carry no decision — same contract as OpinionStore.
  EXPECT_EQ(writer
                .Add(MakeOpinion("kitten", "animal", "cute", 0.5,
                                 Polarity::kNeutral))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(writer
                .Add(MakeOpinion("", "animal", "cute", 0.9,
                                 Polarity::kPositive))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(writer
                .Add(MakeOpinion("kitten", "animal", "cute", 1.5,
                                 Polarity::kPositive))
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, RoundTripPreservesEverything) {
  const std::string path =
      WriteTempFile("roundtrip.surv", MakeWriter().Serialize());

  Snapshot snapshot;
  ASSERT_TRUE(snapshot.Open(path).ok());
  EXPECT_EQ(snapshot.label(), "test snapshot");
  EXPECT_EQ(snapshot.num_opinions(), 3u);
  EXPECT_EQ(snapshot.num_types(), 2u);
  EXPECT_EQ(snapshot.num_entities(), 3u);
  EXPECT_EQ(snapshot.num_properties(), 2u);

  // Find the (animal, cute) block and check both records decode.
  bool found = false;
  for (const Snapshot::BlockView& block : snapshot.blocks()) {
    if (snapshot.TypeName(block.type_index) != "animal" ||
        snapshot.PropertyName(block.property_index) != "cute") {
      continue;
    }
    found = true;
    ASSERT_EQ(block.record_count, 2u);
    for (uint32_t i = 0; i < block.record_count; ++i) {
      const Snapshot::RecordView record =
          Snapshot::ReadRecord(block.records, i);
      const std::string_view entity = snapshot.EntityName(record.entity_index);
      if (entity == "kitten") {
        EXPECT_DOUBLE_EQ(record.posterior, 0.97);
        EXPECT_EQ(record.polarity, Polarity::kPositive);
      } else {
        EXPECT_EQ(entity, "spider");
        EXPECT_DOUBLE_EQ(record.posterior, 0.12);
        EXPECT_EQ(record.polarity, Polarity::kNegative);
      }
      EXPECT_EQ(snapshot.TypeName(snapshot.EntityType(record.entity_index)),
                "animal");
    }
  }
  EXPECT_TRUE(found);

  ASSERT_EQ(snapshot.provenance().size(), 1u);
  const Snapshot::ProvenanceEntry& entry = snapshot.provenance()[0];
  EXPECT_EQ(snapshot.EntityName(entry.entity_index), "kitten");
  EXPECT_EQ(snapshot.PropertyName(entry.property_index), "cute");
  ASSERT_EQ(entry.refs.size(), 2u);
  EXPECT_EQ(entry.refs[0].doc_id, 1234);
  EXPECT_EQ(entry.refs[0].sentence_index, 2);
  EXPECT_TRUE(entry.refs[0].positive);
  EXPECT_FALSE(entry.refs[1].positive);
}

TEST_F(SnapshotTest, SerializationIsInsertionOrderIndependent) {
  SnapshotWriter forward = MakeWriter();

  SnapshotWriter reversed;
  reversed.set_label("test snapshot");
  ASSERT_TRUE(reversed
                  .Add(MakeOpinion("lisbon", "city", "hilly", 0.88,
                                   Polarity::kPositive))
                  .ok());
  ASSERT_TRUE(reversed
                  .Add(MakeOpinion("spider", "animal", "cute", 0.12,
                                   Polarity::kNegative))
                  .ok());
  ASSERT_TRUE(reversed
                  .Add(MakeOpinion("kitten", "animal", "cute", 0.97,
                                   Polarity::kPositive))
                  .ok());
  reversed.AddProvenance("kitten", "animal", "cute",
                         {{1234, 2, true}, {5678, 0, false}});

  EXPECT_EQ(forward.Serialize(), reversed.Serialize());
}

TEST_F(SnapshotTest, ReadAndRebuildIsBitIdentical) {
  const std::string image = MakeWriter().Serialize();
  const std::string path = WriteTempFile("rebuild.surv", image);

  Snapshot snapshot;
  ASSERT_TRUE(snapshot.Open(path).ok());

  // Rebuild a writer purely from what the reader exposes.
  SnapshotWriter rebuilt;
  rebuilt.set_label(std::string(snapshot.label()));
  for (const Snapshot::BlockView& block : snapshot.blocks()) {
    for (uint32_t i = 0; i < block.record_count; ++i) {
      const Snapshot::RecordView record =
          Snapshot::ReadRecord(block.records, i);
      SnapshotOpinion opinion;
      opinion.entity = std::string(snapshot.EntityName(record.entity_index));
      opinion.type = std::string(snapshot.TypeName(block.type_index));
      opinion.property =
          std::string(snapshot.PropertyName(block.property_index));
      opinion.posterior = record.posterior;
      opinion.polarity = record.polarity;
      opinion.degraded = block.degraded;
      ASSERT_TRUE(rebuilt.Add(opinion).ok());
    }
  }
  for (const Snapshot::ProvenanceEntry& entry : snapshot.provenance()) {
    const uint32_t type = snapshot.EntityType(entry.entity_index);
    rebuilt.AddProvenance(std::string(snapshot.EntityName(entry.entity_index)),
                          std::string(snapshot.TypeName(type)),
                          std::string(snapshot.PropertyName(
                              entry.property_index)),
                          entry.refs);
  }
  EXPECT_EQ(rebuilt.Serialize(), image);
}

TEST_F(SnapshotTest, EmptySnapshotRoundTrips) {
  SnapshotWriter writer;
  writer.set_label("empty");
  const std::string path = WriteTempFile("empty.surv", writer.Serialize());
  Snapshot snapshot;
  ASSERT_TRUE(snapshot.Open(path).ok());
  EXPECT_EQ(snapshot.num_opinions(), 0u);
  EXPECT_TRUE(snapshot.blocks().empty());
}

TEST_F(SnapshotTest, RejectsBadMagic) {
  std::string image = MakeWriter().Serialize();
  image[0] = 'X';
  Snapshot snapshot;
  const Status status =
      snapshot.Open(WriteTempFile("badmagic.surv", image));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, VersionMismatchNamesTheVersion) {
  std::string image = MakeWriter().Serialize();
  // The format version is the little-endian u32 right after the magic.
  image[8] = 99;
  Snapshot snapshot;
  const Status status =
      snapshot.Open(WriteTempFile("badversion.surv", image));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("version"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("99"), std::string::npos)
      << status.ToString();
}

TEST_F(SnapshotTest, CorruptedPayloadFailsItsCrcCheck) {
  std::string image = MakeWriter().Serialize();
  // Flip one bit inside a section payload (an entity-name byte, which is
  // covered by its section's CRC).
  const size_t pos = image.find("kitten");
  ASSERT_NE(pos, std::string::npos);
  image[pos] ^= 0x20;
  Snapshot snapshot;
  const Status status = snapshot.Open(WriteTempFile("corrupt.surv", image));
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("CRC"), std::string::npos)
      << status.ToString();
}

TEST_F(SnapshotTest, TruncatedFileIsRejected) {
  const std::string image = MakeWriter().Serialize();
  for (const size_t keep : {image.size() - 5, image.size() / 2, size_t{16}}) {
    Snapshot snapshot;
    const Status status = snapshot.Open(
        WriteTempFile("truncated.surv", image.substr(0, keep)));
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << "kept " << keep << " bytes: " << status.ToString();
  }
}

TEST_F(SnapshotTest, FailedOpenKeepsThePreviousSnapshot) {
  const std::string good_path =
      WriteTempFile("keep-good.surv", MakeWriter().Serialize());
  std::string corrupt = MakeWriter().Serialize();
  corrupt[corrupt.size() - 1] ^= 0xff;

  Snapshot snapshot;
  ASSERT_TRUE(snapshot.Open(good_path).ok());
  ASSERT_FALSE(
      snapshot.Open(WriteTempFile("keep-bad.surv", corrupt.substr(0, 40)))
          .ok());
  // The earlier, valid state is still served.
  EXPECT_EQ(snapshot.num_opinions(), 3u);
  EXPECT_EQ(snapshot.label(), "test snapshot");
}

TEST_F(SnapshotTest, WriteToFilePublishesAtomically) {
  const std::string dir = testing::TempDir() + "/snapshot_atomic";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/atomic.surv";
  ASSERT_TRUE(MakeWriter().WriteToFile(path).ok());

  // Overwriting an existing snapshot replaces it whole — a reader racing
  // the write sees old bytes or new bytes, never a torn hybrid — and the
  // temp file never lingers next to the published one.
  SnapshotWriter second;
  second.set_label("second version");
  ASSERT_TRUE(second
                  .Add(MakeOpinion("koala", "animal", "cute", 0.91,
                                   Polarity::kPositive))
                  .ok());
  ASSERT_TRUE(second.WriteToFile(path).ok());
  size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  Snapshot snapshot;
  ASSERT_TRUE(snapshot.Open(path).ok());
  EXPECT_EQ(snapshot.label(), "second version");
}

TEST_F(SnapshotTest, WriteToFileSurfacesWriteFailures) {
  // The old implementation streamed into an ofstream without checking the
  // stream state — a full disk produced a silent torn file. Now the
  // failure is loud and the target path is never created.
  const std::string path =
      testing::TempDir() + "/no-such-snapshot-dir/out.surv";
  EXPECT_FALSE(MakeWriter().WriteToFile(path).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(SnapshotTest, SnapshotReadFaultPointFiresAsInternal) {
  const std::string path =
      WriteTempFile("faulted.surv", MakeWriter().Serialize());
  ScopedFaults faults("snapshot_read:1");
  Snapshot snapshot;
  const Status status = snapshot.Open(path);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace serving
}  // namespace surveyor
