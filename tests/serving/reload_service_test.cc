#include "serving/reload_service.h"

#include <filesystem>
#include <string>

#include "gtest/gtest.h"
#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "obs/stage.h"
#include "serving/generation_store.h"
#include "serving/opinion_index.h"
#include "serving/snapshot.h"
#include "util/fault.h"
#include "util/status.h"

namespace surveyor {
namespace serving {
namespace {

namespace fs = std::filesystem;

std::string MakeImage(const std::string& entity) {
  SnapshotWriter writer;
  writer.set_label("reload test");
  SnapshotOpinion opinion;
  opinion.entity = entity;
  opinion.type = "animal";
  opinion.property = "cute";
  opinion.posterior = 0.9;
  opinion.polarity = Polarity::kPositive;
  EXPECT_TRUE(writer.Add(opinion).ok());
  return writer.Serialize();
}

/// One wired serving stack: store + index + reload service mounted on a
/// socketless admin server (Handle() only).
class ReloadServiceTest : public testing::Test {
 protected:
  ReloadServiceTest()
      : root_(testing::TempDir() + "/reloadz_" +
              testing::UnitTest::GetInstance()->current_test_info()->name()),
        store_(root_, StoreOptions()),
        index_(IndexOptions()),
        reload_(&store_, &index_, &metrics_),
        admin_(&metrics_, nullptr, nullptr) {
    fs::remove_all(root_);
    EXPECT_TRUE(store_.Open().ok());
    reload_.Register(&admin_);
  }

  GenerationStoreOptions StoreOptions() {
    GenerationStoreOptions options;
    options.metrics = &metrics_;
    return options;
  }

  OpinionIndexOptions IndexOptions() {
    OpinionIndexOptions options;
    options.metrics = &metrics_;
    options.retry.max_attempts = 1;
    return options;
  }

  ScopedFaults disarm_{""};
  std::string root_;
  obs::MetricRegistry metrics_;
  GenerationStore store_;
  OpinionIndex index_;
  ReloadService reload_;
  obs::AdminServer admin_;
};

TEST_F(ReloadServiceTest, ReloadOnEmptyStoreIs404) {
  const auto response = admin_.Handle("POST", "/reloadz");
  EXPECT_EQ(response.status, 404);
  EXPECT_FALSE(index_.loaded());
}

TEST_F(ReloadServiceTest, GetIs405AndBadParamIs400) {
  EXPECT_EQ(admin_.Handle("GET", "/reloadz").status, 405);
  EXPECT_EQ(admin_.Handle("POST", "/reloadz?generation=abc").status, 400);
  EXPECT_EQ(admin_.Handle("POST", "/reloadz?generation=").status, 400);
}

TEST_F(ReloadServiceTest, ReloadzSwapsToTheNewestPublish) {
  ASSERT_TRUE(store_.PublishImage(MakeImage("Kitten")).ok());
  auto response = admin_.Handle("POST", "/reloadz");
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(index_.generation_id(), 1u);
  EXPECT_TRUE(index_.Lookup("kitten", "cute").ok());

  // A publish from *another* store handle (another process writing the
  // same directory): /reloadz must Refresh and pick it up.
  {
    GenerationStore miner(root_);
    ASSERT_TRUE(miner.Open().ok());
    ASSERT_TRUE(miner.PublishImage(MakeImage("Koala")).ok());
  }
  response = admin_.Handle("POST", "/reloadz");
  EXPECT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(index_.generation_id(), 2u);
  EXPECT_TRUE(index_.Lookup("koala", "cute").ok());
  EXPECT_EQ(index_.Lookup("kitten", "cute").status().code(),
            StatusCode::kNotFound);
  EXPECT_NE(response.body.find("\"previous\":1"), std::string::npos);
}

TEST_F(ReloadServiceTest, ExplicitGenerationRollsBack) {
  ASSERT_TRUE(store_.PublishImage(MakeImage("Kitten")).ok());
  ASSERT_TRUE(store_.PublishImage(MakeImage("Koala")).ok());
  ASSERT_EQ(admin_.Handle("POST", "/reloadz").status, 200);
  ASSERT_EQ(index_.generation_id(), 2u);

  const auto rollback = admin_.Handle("POST", "/reloadz?generation=1");
  EXPECT_EQ(rollback.status, 200) << rollback.body;
  EXPECT_EQ(index_.generation_id(), 1u);
  EXPECT_TRUE(index_.Lookup("kitten", "cute").ok());

  // An id the store never had (or already pruned) is 404, not a crash.
  EXPECT_EQ(admin_.Handle("POST", "/reloadz?generation=9").status, 404);
  EXPECT_EQ(index_.generation_id(), 1u);
}

TEST_F(ReloadServiceTest, RepeatReloadWithoutNewPublishIsANoOp) {
  ASSERT_TRUE(store_.PublishImage(MakeImage("Kitten")).ok());
  ASSERT_EQ(admin_.Handle("POST", "/reloadz").status, 200);
  const auto repeat = admin_.Handle("POST", "/reloadz");
  EXPECT_EQ(repeat.status, 200);
  EXPECT_NE(repeat.body.find("\"reloaded\":false"), std::string::npos);
  EXPECT_EQ(index_.generation_id(), 1u);
}

TEST_F(ReloadServiceTest, FailedSwapKeepsOldGenerationAndCounts) {
  ASSERT_TRUE(store_.PublishImage(MakeImage("Kitten")).ok());
  ASSERT_EQ(admin_.Handle("POST", "/reloadz").status, 200);
  ASSERT_TRUE(store_.PublishImage(MakeImage("Koala")).ok());

  {
    ScopedFaults faults("generation_swap:@1");
    const auto response = admin_.Handle("POST", "/reloadz");
    EXPECT_EQ(response.status, 500);
  }
  // The old generation never stopped serving.
  EXPECT_EQ(index_.generation_id(), 1u);
  EXPECT_TRUE(index_.Lookup("kitten", "cute").ok());
  EXPECT_EQ(metrics_.GetCounter("surveyor_reload_failures_total")->Value(),
            1);
  EXPECT_EQ(
      metrics_.GetCounter("surveyor_generation_swap_failures_total")->Value(),
      1);

  // Disarmed, the retry lands.
  EXPECT_EQ(admin_.Handle("POST", "/reloadz").status, 200);
  EXPECT_EQ(index_.generation_id(), 2u);
}

TEST_F(ReloadServiceTest, StatuszGrowsAGenerationSection) {
  ASSERT_TRUE(store_.PublishImage(MakeImage("Kitten")).ok());
  ASSERT_EQ(admin_.Handle("POST", "/reloadz").status, 200);
  const auto statusz = admin_.Handle("GET", "/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("\"generation\""), std::string::npos);
  EXPECT_NE(statusz.body.find("\"serving\":1"), std::string::npos);
  EXPECT_NE(statusz.body.find("\"age_seconds\""), std::string::npos);
  EXPECT_NE(statusz.body.find("\"available\""), std::string::npos);
}

TEST_F(ReloadServiceTest, MetricsScrapeRefreshesGenerationGauges) {
  ASSERT_TRUE(store_.PublishImage(MakeImage("Kitten")).ok());
  ASSERT_EQ(admin_.Handle("POST", "/reloadz").status, 200);
  const auto metrics = admin_.Handle("GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("surveyor_generation_age_seconds"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("surveyor_generation_id 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("surveyor_reloads_total 1"),
            std::string::npos);
  // The age gauge is computed at scrape time, not at swap time.
  EXPECT_GE(metrics_.GetGauge("surveyor_generation_age_seconds")->Value(),
            0.0);
}

TEST_F(ReloadServiceTest, ReloadTraceIsAlwaysRetainedOnTracez) {
  ASSERT_TRUE(store_.PublishImage(MakeImage("Kitten")).ok());
  ASSERT_EQ(admin_.Handle("POST", "/reloadz").status, 200);
  // Default head-sampling is 1%; the forced sample must retain the
  // reload trace anyway.
  const auto traces = admin_.request_tracer().Snapshot();
  bool found = false;
  for (const auto& trace : traces) {
    if (trace.target.rfind("/reloadz", 0) == 0) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace serving
}  // namespace surveyor
