// Socket-level integration of the serving tier: the full stack (store +
// index + reload + query service on the epoll AdminServer) hammered by
// concurrent keep-alive clients while another client hot-swaps
// generations through POST /v1/admin/reload — the TSan proof that the
// event loop, the handler pool, and the generation swap are free of
// data races, and that the /v1 surface plus its deprecation shims
// answer correctly over a real wire.
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "gtest/gtest.h"
#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "serving/generation_store.h"
#include "serving/opinion_index.h"
#include "serving/query_service.h"
#include "serving/reload_service.h"
#include "serving/snapshot.h"
#include "util/fault.h"

namespace surveyor {
namespace serving {
namespace {

namespace fs = std::filesystem;

std::string MakeImage(const std::string& extra_entity) {
  SnapshotWriter writer;
  writer.set_label("serving socket test");
  for (const std::string& entity : {std::string("kitten"), extra_entity}) {
    SnapshotOpinion opinion;
    opinion.entity = entity;
    opinion.type = "animal";
    opinion.property = "cute";
    opinion.posterior = 0.9;
    opinion.polarity = Polarity::kPositive;
    EXPECT_TRUE(writer.Add(opinion).ok());
  }
  return writer.Serialize();
}

/// Minimal keep-alive HTTP/1.1 client with receive timeouts.
class Client {
 public:
  explicit Client(int port) : port_(port) {}
  ~Client() { Disconnect(); }

  /// Sends one request and returns the full response (head + body), or
  /// "" on a transport failure.
  std::string Roundtrip(const std::string& request) {
    if (fd_ < 0 && !Connect()) return "";
    if (!Send(request)) {
      Disconnect();
      if (!Connect() || !Send(request)) return "";
    }
    std::string response = ReadResponse();
    if (response.empty()) Disconnect();
    return response;
  }

  std::string Get(const std::string& target) {
    return Roundtrip("GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
  }

  std::string Post(const std::string& target) {
    return Roundtrip("POST " + target +
                     " HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
  }

 private:
  bool Connect() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Disconnect();
      return false;
    }
    return true;
  }

  void Disconnect() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

  bool Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool Fill() {
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  std::string ReadResponse() {
    size_t head_end;
    while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return "";
    }
    size_t content_length = 0;
    const size_t marker = buffer_.find("Content-Length: ");
    if (marker != std::string::npos && marker < head_end) {
      for (size_t i = marker + 16;
           i < buffer_.size() && buffer_[i] >= '0' && buffer_[i] <= '9';
           ++i) {
        content_length =
            content_length * 10 + static_cast<size_t>(buffer_[i] - '0');
      }
    }
    const size_t total = head_end + 4 + content_length;
    while (buffer_.size() < total) {
      if (!Fill()) return "";
    }
    std::string response = buffer_.substr(0, total);
    buffer_.erase(0, total);
    return response;
  }

  int port_;
  int fd_ = -1;
  std::string buffer_;
};

/// Full serving stack over a real socket. Chaos faults from the
/// environment are disarmed: this suite proves thread-safety, not fault
/// recovery (the chaos integration suite covers that).
class ServingSocketTest : public testing::Test {
 protected:
  ServingSocketTest()
      : root_(testing::TempDir() + "/serving_socket_" +
              testing::UnitTest::GetInstance()->current_test_info()->name()),
        store_(root_, StoreOptions()),
        index_(IndexOptions()),
        reload_(&store_, &index_, &metrics_),
        query_(&index_, nullptr, &metrics_),
        admin_(&metrics_, nullptr, nullptr, AdminOptions()) {
    fs::remove_all(root_);
    EXPECT_TRUE(store_.Open().ok());
    reload_.Register(&admin_);
    query_.Register(&admin_);
  }

  ~ServingSocketTest() override { admin_.Stop(); }

  GenerationStoreOptions StoreOptions() {
    GenerationStoreOptions options;
    options.metrics = &metrics_;
    return options;
  }

  OpinionIndexOptions IndexOptions() {
    OpinionIndexOptions options;
    options.metrics = &metrics_;
    options.retry.max_attempts = 1;
    return options;
  }

  obs::AdminServerOptions AdminOptions() {
    obs::AdminServerOptions options;
    options.serve_workers = 2;
    options.handler_threads = 3;
    // Writable alias of the scraped registry, so the transport metrics
    // (surveyor_http_*) land on /metrics.
    options.profiler_metrics = &metrics_;
    return options;
  }

  ScopedFaults disarm_{""};
  std::string root_;
  obs::MetricRegistry metrics_;
  GenerationStore store_;
  OpinionIndex index_;
  ReloadService reload_;
  QueryService query_;
  obs::AdminServer admin_;
};

TEST_F(ServingSocketTest, V1SurfaceAndShimsAnswerOverTheWire) {
  ASSERT_TRUE(store_.PublishImage(MakeImage("koala")).ok());
  ASSERT_TRUE(admin_.Start().ok());
  Client client(admin_.port());

  // Reload through the versioned path; envelope on the wire.
  const std::string reload = client.Post("/v1/admin/reload");
  EXPECT_NE(reload.find("HTTP/1.1 200 OK"), std::string::npos) << reload;
  EXPECT_NE(reload.find("\"data\":{\"generation\":1"), std::string::npos)
      << reload;
  EXPECT_EQ(reload.find("Deprecation:"), std::string::npos);

  // Query through the versioned path.
  const std::string query = client.Get("/v1/query?entity=kitten&property=cute");
  EXPECT_NE(query.find("HTTP/1.1 200 OK"), std::string::npos) << query;
  EXPECT_NE(query.find("\"data\":{\"entity\":\"kitten\""),
            std::string::npos)
      << query;

  // Errors speak the envelope too.
  const std::string miss =
      client.Get("/v1/query?entity=kitten&property=haunted");
  EXPECT_NE(miss.find("HTTP/1.1 404"), std::string::npos) << miss;
  EXPECT_NE(miss.find("\"error\":{\"code\":\"not_found\""),
            std::string::npos)
      << miss;

  // The legacy paths answer identically, stamped as deprecation shims.
  const std::string shim = client.Get("/query?entity=kitten&property=cute");
  EXPECT_NE(shim.find("HTTP/1.1 200 OK"), std::string::npos) << shim;
  EXPECT_NE(shim.find("\"data\":{\"entity\":\"kitten\""), std::string::npos);
  EXPECT_NE(shim.find("Deprecation: true"), std::string::npos) << shim;
  EXPECT_NE(shim.find("Link: </v1/query>; rel=\"successor-version\""),
            std::string::npos)
      << shim;

  const std::string reload_shim = client.Post("/reloadz");
  EXPECT_NE(reload_shim.find("HTTP/1.1 200 OK"), std::string::npos)
      << reload_shim;
  EXPECT_NE(reload_shim.find("Deprecation: true"), std::string::npos);
  EXPECT_NE(
      reload_shim.find("Link: </v1/admin/reload>; rel=\"successor-version\""),
      std::string::npos)
      << reload_shim;

  // The admin plane rides the same event loop.
  const std::string metrics = client.Get("/metrics");
  EXPECT_NE(metrics.find("surveyor_http_requests_total"), std::string::npos);
  const std::string tracez = client.Get("/tracez");
  EXPECT_NE(tracez.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST_F(ServingSocketTest, ConcurrentClientsAcrossLiveGenerationSwaps) {
  ASSERT_TRUE(store_.PublishImage(MakeImage("gen1")).ok());
  ASSERT_TRUE(store_.PublishImage(MakeImage("gen2")).ok());
  ASSERT_TRUE(admin_.Start().ok());
  {
    Client warm(admin_.port());
    ASSERT_NE(warm.Post("/v1/admin/reload").find("200 OK"),
              std::string::npos);
  }

  constexpr int kClients = 3;
  constexpr int kRequestsEach = 60;
  std::atomic<int> query_ok{0};
  std::atomic<int> query_bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(admin_.port());
      for (int i = 0; i < kRequestsEach; ++i) {
        // Mix the query surface with admin scrapes, all keep-alive.
        const std::string response =
            i % 10 == 9
                ? client.Get(c % 2 == 0 ? "/metrics" : "/tracez")
                : client.Get("/v1/query?entity=kitten&property=cute");
        if (response.find("HTTP/1.1 200 OK") != std::string::npos) {
          query_ok.fetch_add(1);
        } else {
          query_bad.fetch_add(1);
        }
      }
    });
  }

  // Meanwhile: hot-swap generations back and forth through the wire.
  std::atomic<int> swaps_ok{0};
  std::thread swapper([&] {
    Client client(admin_.port());
    for (int i = 0; i < 24; ++i) {
      const std::string target =
          "/v1/admin/reload?generation=" + std::to_string(1 + i % 2);
      if (client.Post(target).find("200 OK") != std::string::npos) {
        swaps_ok.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (std::thread& client : clients) client.join();
  swapper.join();

  // Every query answered 200 across every swap — the hot swap never
  // blocks or breaks the serving path — and every swap landed.
  EXPECT_EQ(query_ok.load(), kClients * kRequestsEach);
  EXPECT_EQ(query_bad.load(), 0);
  EXPECT_EQ(swaps_ok.load(), 24);
  EXPECT_GE(metrics_.GetCounter("surveyor_reloads_total")->Value(), 2);
}

}  // namespace
}  // namespace serving
}  // namespace surveyor

#endif  // defined(__linux__)
