#include "serving/generation_store.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#define SURVEYOR_HAVE_FORK 1
#endif

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "serving/snapshot.h"
#include "util/fault.h"
#include "util/status.h"

namespace surveyor {
namespace serving {
namespace {

namespace fs = std::filesystem;

/// A minimal valid snapshot image whose label identifies the version, so
/// tests can tell which publish a reopened store serves.
std::string MakeImage(const std::string& label) {
  SnapshotWriter writer;
  writer.set_label(label);
  SnapshotOpinion opinion;
  opinion.entity = "Kitten";
  opinion.type = "animal";
  opinion.property = "cute";
  opinion.posterior = 0.97;
  opinion.polarity = Polarity::kPositive;
  EXPECT_TRUE(writer.Add(opinion).ok());
  return writer.Serialize();
}

std::string LabelOf(const std::string& snapshot_path) {
  Snapshot snapshot;
  EXPECT_TRUE(snapshot.Open(snapshot_path).ok()) << snapshot_path;
  return std::string(snapshot.label());
}

std::string FreshRoot(const std::string& name) {
  const std::string root = testing::TempDir() + "/genstore_" + name;
  fs::remove_all(root);
  return root;
}

/// Generation tests assert exact store state; keep the CI chaos profile's
/// env-armed faults out of their way (fault tests arm their own specs).
class GenerationStoreTest : public testing::Test {
 protected:
  ScopedFaults disarm_{""};
};

TEST_F(GenerationStoreTest, OpenOnMissingRootIsAnEmptyStore) {
  GenerationStore store(FreshRoot("empty"));
  ASSERT_TRUE(store.Open().ok());
  EXPECT_EQ(store.latest(), 0u);
  EXPECT_TRUE(store.generations().empty());
  EXPECT_FALSE(store.Contains(1));
}

TEST_F(GenerationStoreTest, PublishCommitsAndSurvivesReopen) {
  const std::string root = FreshRoot("publish");
  GenerationStore store(root);
  ASSERT_TRUE(store.Open().ok());
  const auto first = store.PublishImage(MakeImage("v1"));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, 1u);
  const auto second = store.PublishImage(MakeImage("v2"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 2u);
  EXPECT_EQ(store.latest(), 2u);
  EXPECT_TRUE(store.Contains(1));
  EXPECT_EQ(LabelOf(store.SnapshotPath(2)), "v2");

  // A second store (a fresh process) sees the committed state.
  GenerationStore reopened(root);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.latest(), 2u);
  EXPECT_EQ(reopened.generations(), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(LabelOf(reopened.SnapshotPath(1)), "v1");
}

TEST_F(GenerationStoreTest, RefreshPicksUpAnotherProcessesPublish) {
  const std::string root = FreshRoot("refresh");
  GenerationStore serving(root);
  ASSERT_TRUE(serving.Open().ok());

  GenerationStore miner(root);
  ASSERT_TRUE(miner.Open().ok());
  ASSERT_TRUE(miner.PublishImage(MakeImage("v1")).ok());

  EXPECT_EQ(serving.latest(), 0u);
  ASSERT_TRUE(serving.Refresh().ok());
  EXPECT_EQ(serving.latest(), 1u);
}

TEST_F(GenerationStoreTest, RetentionPrunesOldestAfterCommit) {
  const std::string root = FreshRoot("retain");
  GenerationStoreOptions options;
  options.retain = 2;
  GenerationStore store(root, options);
  ASSERT_TRUE(store.Open().ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(
        store.PublishImage(MakeImage("v" + std::to_string(i))).ok());
  }
  EXPECT_EQ(store.generations(), (std::vector<uint64_t>{3, 4}));
  EXPECT_FALSE(fs::exists(store.SnapshotPath(1)));
  EXPECT_FALSE(fs::exists(store.SnapshotPath(2)));
  EXPECT_TRUE(fs::exists(store.SnapshotPath(3)));
}

TEST_F(GenerationStoreTest, RejectsACorruptImageWithoutPublishing) {
  GenerationStore store(FreshRoot("corrupt_image"));
  ASSERT_TRUE(store.Open().ok());
  std::string image = MakeImage("v1");
  image[image.size() / 2] ^= 0x5a;
  EXPECT_FALSE(store.PublishImage(image).ok());
  EXPECT_EQ(store.latest(), 0u);
  // The scratch directory did not leak.
  size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(store.root())) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 0u);
}

TEST_F(GenerationStoreTest, CorruptManifestFailsOpenLoudly) {
  const std::string root = FreshRoot("corrupt_manifest");
  {
    GenerationStore store(root);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.PublishImage(MakeImage("v1")).ok());
  }
  // Flip one byte inside the committed manifest: the CRC footer must
  // refuse it — serving from a guessed manifest is worse than failing.
  std::string manifest;
  {
    std::ifstream in(root + "/MANIFEST", std::ios::binary);
    manifest.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  manifest[manifest.find("latest") + 7] = '9';
  std::ofstream(root + "/MANIFEST", std::ios::binary) << manifest;
  GenerationStore reopened(root);
  EXPECT_EQ(reopened.Open().code(), StatusCode::kInternal);
}

TEST_F(GenerationStoreTest, OpenSweepsTempAndUnlistedGenerationDirs) {
  const std::string root = FreshRoot("sweep");
  {
    GenerationStore store(root);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.PublishImage(MakeImage("v1")).ok());
  }
  // Fake the corpses of a crashed publish: an in-flight temp dir and a
  // renamed-but-never-committed generation.
  fs::create_directories(root + "/.tmp-gen-000009");
  fs::create_directories(root + "/gen-000002");
  std::ofstream(root + "/gen-000002/snapshot.surv") << "torn";
  GenerationStore reopened(root);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.latest(), 1u);
  EXPECT_FALSE(fs::exists(root + "/.tmp-gen-000009"));
  EXPECT_FALSE(fs::exists(root + "/gen-000002"));
}

// The kill-mid-publish matrix: arm each fault point in turn, verify the
// publish fails cleanly, the committed state is untouched, and a reopened
// store still serves the last complete generation. `@N` fires the N-th
// evaluation of the fault only, which walks the interruption through the
// protocol instruction by instruction.
TEST_F(GenerationStoreTest, FaultAtEveryPublishStepLeavesStoreIntact) {
  struct Step {
    const char* spec;
    const char* name;
  };
  const Step steps[] = {
      {"generation_publish:@1", "before snapshot write"},
      {"generation_publish:@2", "before generation rename"},
      {"generation_manifest:@1", "before manifest commit"},
  };
  int step_index = 0;
  for (const Step& step : steps) {
    SCOPED_TRACE(step.name);
    const std::string root =
        FreshRoot("fault_step" + std::to_string(step_index++));
    obs::MetricRegistry metrics;
    GenerationStoreOptions options;
    options.metrics = &metrics;
    GenerationStore store(root, options);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.PublishImage(MakeImage("good")).ok());

    {
      ScopedFaults faults(step.spec);
      EXPECT_FALSE(store.PublishImage(MakeImage("doomed")).ok());
    }
    EXPECT_EQ(store.latest(), 1u);
    EXPECT_EQ(
        metrics.GetCounter("surveyor_generation_publish_failures_total")
            ->Value(),
        1);

    // A fresh open (the restarted process) sees only the complete
    // generation, sweeps any leftovers, and can publish again.
    GenerationStore reopened(root);
    ASSERT_TRUE(reopened.Open().ok());
    EXPECT_EQ(reopened.latest(), 1u);
    EXPECT_EQ(LabelOf(reopened.SnapshotPath(1)), "good");
    const auto next = reopened.PublishImage(MakeImage("retried"));
    ASSERT_TRUE(next.ok()) << next.status();
    EXPECT_EQ(*next, 2u);
    EXPECT_EQ(LabelOf(reopened.SnapshotPath(2)), "retried");
  }
}

// TSan/ASan and fork do not mix, and the point of this variant is a real
// SIGKILL at an arbitrary instruction — the fault-point matrix above
// covers sanitizer builds.
#if defined(SURVEYOR_HAVE_FORK) && !defined(SURVEYOR_SANITIZE_BUILD)
TEST_F(GenerationStoreTest, SigkillMidPublishNeverLeavesStoreUnopenable) {
  const std::string root = FreshRoot("sigkill");
  {
    GenerationStore store(root);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.PublishImage(MakeImage("base")).ok());
  }

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: publish as fast as possible until killed. _exit (not exit)
    // on any failure so gtest machinery never runs twice.
    GenerationStore store(root);
    if (!store.Open().ok()) _exit(1);
    for (int i = 0; i < 100000; ++i) {
      if (!store.PublishImage(MakeImage("spin" + std::to_string(i))).ok()) {
        _exit(1);
      }
    }
    _exit(0);
  }
  // Parent: let a few publishes land, then kill mid-flight.
  usleep(50 * 1000);
  kill(child, SIGKILL);
  int wait_status = 0;
  waitpid(child, &wait_status, 0);
  ASSERT_TRUE(WIFSIGNALED(wait_status));

  // Whatever instruction the kill landed on, the store must reopen to a
  // complete generation whose snapshots all validate.
  GenerationStore reopened(root);
  ASSERT_TRUE(reopened.Open().ok());
  ASSERT_GE(reopened.latest(), 1u);
  for (const uint64_t id : reopened.generations()) {
    Snapshot snapshot;
    EXPECT_TRUE(snapshot.Open(reopened.SnapshotPath(id)).ok())
        << "generation " << id;
  }
  // And keep working: the next publish gets the next id.
  const auto next = reopened.PublishImage(MakeImage("after"));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, reopened.latest());
}
#endif  // SURVEYOR_HAVE_FORK && !SURVEYOR_SANITIZE_BUILD

}  // namespace
}  // namespace serving
}  // namespace surveyor
