#include <gtest/gtest.h>

#include "baselines/majority_vote.h"
#include "baselines/webchild.h"
#include "surveyor/surveyor_classifier.h"
#include "util/rng.h"

namespace surveyor {
namespace {

PropertyTypeEvidence MakeEvidence(std::vector<EvidenceCounts> counts) {
  PropertyTypeEvidence evidence;
  evidence.type = 0;
  evidence.property = "big";
  for (size_t i = 0; i < counts.size(); ++i) {
    evidence.entities.push_back(static_cast<EntityId>(i));
    evidence.total_statements += counts[i].total();
  }
  evidence.counts = std::move(counts);
  return evidence;
}

TEST(MajorityVoteTest, BasicDecisions) {
  MajorityVoteClassifier mv;
  const auto result = mv.Classify(MakeEvidence({{3, 1}, {1, 3}, {2, 2}, {0, 0}}));
  ASSERT_EQ(result.size(), 4u);
  EXPECT_EQ(result[0], Polarity::kPositive);
  EXPECT_EQ(result[1], Polarity::kNegative);
  EXPECT_EQ(result[2], Polarity::kNeutral);
  EXPECT_EQ(result[3], Polarity::kNeutral);
}

TEST(ScaledMajorityVoteTest, ScalesNegativeCounts) {
  // Global positive/negative ratio 4: one negative statement outweighs up
  // to three positives.
  ScaledMajorityVoteClassifier smv(4.0);
  const auto result = smv.Classify(MakeEvidence({{3, 1}, {5, 1}, {4, 1}}));
  EXPECT_EQ(result[0], Polarity::kNegative);
  EXPECT_EQ(result[1], Polarity::kPositive);
  EXPECT_EQ(result[2], Polarity::kNeutral);
}

TEST(ScaledMajorityVoteTest, ZeroCountsStillNeutral) {
  ScaledMajorityVoteClassifier smv(3.0);
  const auto result = smv.Classify(MakeEvidence({{0, 0}}));
  EXPECT_EQ(result[0], Polarity::kNeutral);
}

TEST(ScaledMajorityVoteTest, GlobalScaleComputation) {
  std::vector<PropertyTypeEvidence> all;
  all.push_back(MakeEvidence({{6, 1}, {2, 1}}));
  EXPECT_DOUBLE_EQ(ScaledMajorityVoteClassifier::ComputeGlobalScale(all), 4.0);
  // No negatives: scale defaults to 1.
  std::vector<PropertyTypeEvidence> no_neg;
  no_neg.push_back(MakeEvidence({{6, 0}}));
  EXPECT_DOUBLE_EQ(ScaledMajorityVoteClassifier::ComputeGlobalScale(no_neg), 1.0);
}

EvidenceStatement Statement(EntityId entity, const std::string& property,
                            bool positive) {
  EvidenceStatement s;
  s.entity = entity;
  s.adjective = property;
  s.property = property;
  s.positive = positive;
  return s;
}

TEST(WebChildTest, HarvestIgnoresPolarity) {
  WebChildClassifier webchild(WebChildOptions{1, 1});
  // Entity 0 is called "not big" twice: WebChild still tags it big.
  webchild.Harvest({Statement(0, "big", false), Statement(0, "big", false)});
  EXPECT_TRUE(webchild.Covers(0));
  EXPECT_TRUE(webchild.HasAssociation(0, "big"));
  const auto result = webchild.Classify(MakeEvidence({{0, 2}}));
  EXPECT_EQ(result[0], Polarity::kPositive);
}

TEST(WebChildTest, AbsenceIsNegativeForCoveredEntities) {
  WebChildClassifier webchild(WebChildOptions{1, 1});
  webchild.Harvest({Statement(0, "cute", true)});
  const auto result = webchild.Classify(MakeEvidence({{0, 0}, {0, 0}}));
  // Entity 0 covered, no "big" association -> negative.
  EXPECT_EQ(result[0], Polarity::kNegative);
  // Entity 1 never mentioned -> not in the KB -> no output.
  EXPECT_EQ(result[1], Polarity::kNeutral);
}

TEST(WebChildTest, MinOccurrenceThresholds) {
  WebChildOptions options;
  options.min_pair_occurrences = 2;
  options.min_entity_occurrences = 2;
  WebChildClassifier webchild(options);
  webchild.Harvest({Statement(0, "big", true)});
  EXPECT_FALSE(webchild.Covers(0));
  webchild.Harvest({Statement(0, "big", true)});
  EXPECT_TRUE(webchild.Covers(0));
  EXPECT_TRUE(webchild.HasAssociation(0, "big"));
}

TEST(SurveyorClassifierTest, SeparatesClearClusters) {
  std::vector<EvidenceCounts> counts;
  for (int i = 0; i < 30; ++i) counts.push_back({50, 1});
  for (int i = 0; i < 100; ++i) counts.push_back({0, 0});
  SurveyorClassifier surveyor_method;
  const auto result = surveyor_method.Classify(MakeEvidence(std::move(counts)));
  for (int i = 0; i < 30; ++i) EXPECT_EQ(result[i], Polarity::kPositive);
  for (size_t i = 30; i < result.size(); ++i) {
    EXPECT_EQ(result[i], Polarity::kNegative);
  }
}

TEST(SurveyorClassifierTest, HigherThresholdLowersCoverage) {
  std::vector<EvidenceCounts> counts;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    counts.push_back({rng.Poisson(3.0), rng.Poisson(2.0)});
  }
  const auto evidence = MakeEvidence(std::move(counts));
  SurveyorClassifier loose;
  SurveyorClassifier strict({}, 0.95);
  const auto loose_result = loose.Classify(evidence);
  const auto strict_result = strict.Classify(evidence);
  auto coverage = [](const std::vector<Polarity>& result) {
    int solved = 0;
    for (Polarity p : result) solved += (p != Polarity::kNeutral) ? 1 : 0;
    return solved;
  };
  EXPECT_LE(coverage(strict_result), coverage(loose_result));
}

TEST(SurveyorClassifierTest, NameIsStable) {
  EXPECT_EQ(SurveyorClassifier().name(), "Surveyor");
  EXPECT_EQ(MajorityVoteClassifier().name(), "Majority Vote");
  EXPECT_EQ(ScaledMajorityVoteClassifier(2.0).name(), "Scaled Majority Vote");
  EXPECT_EQ(WebChildClassifier().name(), "WebChild");
}

}  // namespace
}  // namespace surveyor
