#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace surveyor {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Increment();
  counter.Increment(5);
  EXPECT_EQ(counter.Value(), 6);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_EQ(gauge.Value(), 1.5);
}

TEST(GaugeTest, ConcurrentAddsSumExactly) {
  Gauge gauge;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(gauge.Value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(HistogramTest, LogScaledBounds) {
  Histogram histogram(
      HistogramOptions{/*first_bound=*/1.0, /*growth=*/2.0,
                       /*num_finite_buckets=*/4});
  const std::vector<double> expected = {1.0, 2.0, 4.0, 8.0};
  EXPECT_EQ(histogram.bucket_bounds(), expected);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram histogram(
      HistogramOptions{/*first_bound=*/1.0, /*growth=*/2.0,
                       /*num_finite_buckets=*/4});
  histogram.Record(0.5);  // below the first bound -> bucket 0
  histogram.Record(1.0);  // exactly on a bound -> that bucket
  histogram.Record(1.5);
  histogram.Record(8.0);  // exactly on the last finite bound
  histogram.Record(9.0);  // above every bound -> overflow bucket
  const std::vector<int64_t> expected = {2, 1, 0, 1, 1};
  EXPECT_EQ(histogram.BucketCounts(), expected);
  EXPECT_EQ(histogram.Count(), 5);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.5 + 1.0 + 1.5 + 8.0 + 9.0);
}

TEST(HistogramTest, ConcurrentRecordsPreserveTotalCount) {
  Histogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.Count(),
            static_cast<int64_t>(kThreads) * kPerThread);
  int64_t bucketed = 0;
  for (const int64_t count : histogram.BucketCounts()) bucketed += count;
  EXPECT_EQ(bucketed, histogram.Count());
}

TEST(MetricRegistryTest, ReturnsStablePointers) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("surveyor_test_a_total");
  EXPECT_EQ(counter, registry.GetCounter("surveyor_test_a_total"));
  EXPECT_NE(counter, registry.GetCounter("surveyor_test_b_total"));
  Gauge* gauge = registry.GetGauge("surveyor_test_depth");
  EXPECT_EQ(gauge, registry.GetGauge("surveyor_test_depth"));
  Histogram* histogram = registry.GetHistogram("surveyor_test_latency");
  EXPECT_EQ(histogram, registry.GetHistogram("surveyor_test_latency"));
}

TEST(MetricRegistryTest, SnapshotIsSortedByName) {
  MetricRegistry registry;
  registry.GetCounter("surveyor_z_total")->Increment(3);
  registry.GetGauge("surveyor_a_depth")->Set(1.5);
  registry.GetHistogram("surveyor_m_hist")->Record(2.0);
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "surveyor_a_depth");
  EXPECT_EQ(snapshot[0].kind, MetricSnapshot::Kind::kGauge);
  EXPECT_EQ(snapshot[0].value, 1.5);
  EXPECT_EQ(snapshot[1].name, "surveyor_m_hist");
  EXPECT_EQ(snapshot[1].kind, MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(snapshot[1].count, 1);
  EXPECT_EQ(snapshot[2].name, "surveyor_z_total");
  EXPECT_EQ(snapshot[2].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_EQ(snapshot[2].value, 3.0);
}

TEST(MetricRegistryTest, PrometheusTextExposition) {
  MetricRegistry registry;
  registry.GetCounter("surveyor_docs_total")->Increment(7);
  Histogram* histogram = registry.GetHistogram(
      "surveyor_latency",
      HistogramOptions{/*first_bound=*/1.0, /*growth=*/2.0,
                       /*num_finite_buckets=*/2});
  histogram->Record(1.0);
  histogram->Record(3.0);  // overflow
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE surveyor_docs_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("surveyor_docs_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE surveyor_latency histogram\n"),
            std::string::npos);
  // Buckets are cumulative; +Inf equals the total count.
  EXPECT_NE(text.find("surveyor_latency_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("surveyor_latency_bucket{le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("surveyor_latency_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("surveyor_latency_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("surveyor_latency_count 2\n"), std::string::npos);
}

TEST(HistogramTest, ExemplarKeepsMaxValuePerBucket) {
  Histogram histogram(
      HistogramOptions{/*first_bound=*/1.0, /*growth=*/2.0,
                       /*num_finite_buckets=*/2});
  histogram.Record(0.25, /*exemplar_trace_id=*/0xa);
  histogram.Record(0.75, /*exemplar_trace_id=*/0xb);  // same bucket, larger
  histogram.Record(0.5, /*exemplar_trace_id=*/0xc);   // smaller: ignored
  histogram.Record(9.0, /*exemplar_trace_id=*/0xd);   // overflow bucket

  const std::vector<Histogram::BucketExemplar> exemplars =
      histogram.Exemplars();
  ASSERT_EQ(exemplars.size(), 3u);  // 2 finite buckets + overflow
  EXPECT_EQ(exemplars[0].trace_id, 0xbu);
  EXPECT_DOUBLE_EQ(exemplars[0].value, 0.75);
  EXPECT_EQ(exemplars[1].trace_id, 0u);  // bucket (1, 2] never hit
  EXPECT_EQ(exemplars[2].trace_id, 0xdu);
  EXPECT_DOUBLE_EQ(exemplars[2].value, 9.0);
}

TEST(HistogramTest, ZeroTraceIdRecordsNoExemplar) {
  Histogram histogram;
  histogram.Record(1.0);       // single-arg overload
  histogram.Record(2.0, 0);    // explicit zero id
  for (const Histogram::BucketExemplar& exemplar : histogram.Exemplars()) {
    EXPECT_EQ(exemplar.trace_id, 0u);
  }
  EXPECT_EQ(histogram.Count(), 2);
}

TEST(MetricRegistryTest, PrometheusExemplarSuffixConformance) {
  MetricRegistry registry;
  Histogram* histogram = registry.GetHistogram(
      "surveyor_latency",
      HistogramOptions{/*first_bound=*/1.0, /*growth=*/2.0,
                       /*num_finite_buckets=*/2});
  histogram->Record(0.5, /*exemplar_trace_id=*/0xabc);
  histogram->Record(1.5);  // no exemplar for the (1, 2] bucket
  histogram->Record(9.0, /*exemplar_trace_id=*/0xdef);

  const std::string text = registry.ToPrometheusText();
  // OpenMetrics-style suffix: " # {trace_id=\"<16-hex>\"} <value>" after
  // the cumulative count, on exactly the buckets holding an exemplar.
  EXPECT_NE(
      text.find("surveyor_latency_bucket{le=\"1\"} 1 "
                "# {trace_id=\"0000000000000abc\"} 0.5\n"),
      std::string::npos);
  EXPECT_NE(text.find("surveyor_latency_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("surveyor_latency_bucket{le=\"+Inf\"} 3 "
                "# {trace_id=\"0000000000000def\"} 9\n"),
      std::string::npos);
  // _sum/_count lines never carry exemplars.
  EXPECT_NE(text.find("surveyor_latency_sum 11\n"), std::string::npos);
  EXPECT_NE(text.find("surveyor_latency_count 3\n"), std::string::npos);
}

TEST(HistogramTest, ConcurrentExemplarRecordsStayInBucketRange) {
  Histogram histogram(
      HistogramOptions{/*first_bound=*/1.0, /*growth=*/2.0,
                       /*num_finite_buckets=*/4});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const double value = 0.5 + (i % 16);
        histogram.Record(value, static_cast<uint64_t>(t) * kPerThread + i + 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.Count(),
            static_cast<int64_t>(kThreads) * kPerThread);
  // Every populated bucket retained some exemplar with a non-zero id.
  const std::vector<int64_t> counts = histogram.BucketCounts();
  const std::vector<Histogram::BucketExemplar> exemplars =
      histogram.Exemplars();
  ASSERT_EQ(exemplars.size(), counts.size());
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] > 0) {
      EXPECT_NE(exemplars[b].trace_id, 0u);
    }
  }
}

TEST(MetricRegistryTest, JsonExport) {
  MetricRegistry registry;
  registry.GetCounter("surveyor_docs_total")->Increment(2);
  registry.GetGauge("surveyor_depth")->Set(1.5);
  registry.GetHistogram("surveyor_hist")->Record(1.0);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"surveyor_docs_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"surveyor_depth\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"surveyor_hist\":{\"count\":1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricRegistryTest, ConcurrentLookupAndIncrement) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* counter = registry.GetCounter("surveyor_shared_total");
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("surveyor_shared_total")->Value(),
            static_cast<int64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace surveyor
