#include "obs/http_server.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

#if defined(__linux__)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace surveyor {
namespace obs {
namespace {

/// Raw blocking client with a receive timeout, so a server bug shows up
/// as a test failure instead of a hung test binary.
class RawClient {
 public:
  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }

  ~RawClient() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads until `terminator` appears in the buffered stream (or times
  /// out) and consumes through it; pipelined bytes past the terminator
  /// stay buffered for the next read.
  std::string ReadUntil(const std::string& terminator,
                        int timeout_ms = 5000) {
    size_t end;
    while ((end = buffer_.find(terminator)) == std::string::npos) {
      if (!Fill(timeout_ms)) {
        std::string rest = std::move(buffer_);
        buffer_.clear();
        return rest;
      }
    }
    std::string data = buffer_.substr(0, end + terminator.size());
    buffer_.erase(0, end + terminator.size());
    return data;
  }

  /// Reads and consumes one full response: head + Content-Length body.
  std::string ReadResponse(int timeout_ms = 5000) {
    size_t head_end;
    while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill(timeout_ms)) {
        std::string rest = std::move(buffer_);
        buffer_.clear();
        return rest;
      }
    }
    size_t content_length = 0;
    const size_t marker = buffer_.find("Content-Length: ");
    if (marker != std::string::npos && marker < head_end) {
      for (size_t i = marker + 16; i < buffer_.size() &&
                                   buffer_[i] >= '0' && buffer_[i] <= '9';
           ++i) {
        content_length = content_length * 10 +
                         static_cast<size_t>(buffer_[i] - '0');
      }
    }
    const size_t total = head_end + 4 + content_length;
    while (buffer_.size() < total) {
      if (!Fill(timeout_ms)) break;
    }
    std::string data = buffer_.substr(0, total);
    buffer_.erase(0, std::min(total, buffer_.size()));
    return data;
  }

  /// Reads until the peer closes; "" on timeout with nothing read.
  std::string ReadToEof(int timeout_ms = 5000) {
    while (Fill(timeout_ms)) {
    }
    std::string data = std::move(buffer_);
    buffer_.clear();
    return data;
  }

  /// True when the peer has closed (EOF within the timeout).
  bool AtEof(int timeout_ms = 5000) {
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    char byte;
    return ::recv(fd_, &byte, 1, MSG_PEEK) == 0;
  }

 private:
  bool Fill(int timeout_ms) {
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// An echo-ish handler: 200 with the method and target in the body so
/// tests can match responses to requests.
HttpResponse EchoHandler(std::string_view method, std::string_view target,
                         std::string_view body) {
  HttpResponse response;
  response.body = std::string(method) + " " + std::string(target);
  if (!body.empty()) {
    response.body += " body=" + std::string(body);
  }
  response.body += "\n";
  return response;
}

HttpServerOptions SmallOptions() {
  HttpServerOptions options;
  options.num_workers = 2;
  options.handler_threads = 2;
  return options;
}

TEST(HttpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  HttpServer server(EchoHandler, SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  for (int i = 0; i < 5; ++i) {
    const std::string target = "/ping?n=" + std::to_string(i);
    ASSERT_TRUE(client.Send("GET " + target +
                            " HTTP/1.1\r\nHost: t\r\n\r\n"));
    const std::string response = client.ReadResponse();
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos);
    EXPECT_NE(response.find("GET " + target), std::string::npos);
  }
  // All five answers came over the same accepted connection.
  EXPECT_EQ(server.open_connections(), 1u);
  server.Stop();
}

TEST(HttpServerTest, Http10ConnectionClosesAfterResponse) {
  HttpServer server(EchoHandler, SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.Send("GET /one HTTP/1.0\r\nHost: t\r\n\r\n"));
  const std::string response = client.ReadToEof();
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, PipelinedRequestsAnswerInOrder) {
  HttpServer server(EchoHandler, SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.Send(
      "GET /first HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /second HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /third HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string r1 = client.ReadResponse();
  const std::string r2 = client.ReadResponse();
  const std::string r3 = client.ReadResponse();
  EXPECT_NE(r1.find("GET /first"), std::string::npos) << r1;
  EXPECT_NE(r2.find("GET /second"), std::string::npos) << r2;
  EXPECT_NE(r3.find("GET /third"), std::string::npos) << r3;
  server.Stop();
}

TEST(HttpServerTest, SlowLorisPartialRequestIsAnswered408AndClosed) {
  MetricRegistry metrics;
  HttpServerOptions options = SmallOptions();
  options.idle_timeout_seconds = 0.2;
  options.metrics = &metrics;
  HttpServer server(EchoHandler, options);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  // A request head that never finishes.
  ASSERT_TRUE(client.Send("GET /slow HTTP/1.1\r\nHost: t\r\n"));
  const std::string response = client.ReadToEof();
  EXPECT_NE(response.find("HTTP/1.1 408"), std::string::npos) << response;
  EXPECT_GE(
      metrics.GetCounter("surveyor_http_idle_timeouts_total")->Value(), 1);
  server.Stop();
}

TEST(HttpServerTest, IdleKeepAliveConnectionIsReapedQuietly) {
  HttpServerOptions options = SmallOptions();
  options.idle_timeout_seconds = 0.2;
  HttpServer server(EchoHandler, options);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.Send("GET /ok HTTP/1.1\r\nHost: t\r\n\r\n"));
  EXPECT_NE(client.ReadResponse().find("200 OK"), std::string::npos);
  // Idle with no partial request: the sweep closes without a response.
  EXPECT_TRUE(client.AtEof());
  EXPECT_EQ(server.open_connections(), 0u);
  server.Stop();
}

TEST(HttpServerTest, OversizedHeadIsRejected431) {
  HttpServerOptions options = SmallOptions();
  options.max_header_bytes = 256;
  HttpServer server(EchoHandler, options);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.Send("GET /big HTTP/1.1\r\nHost: t\r\nX-Pad: " +
                          std::string(512, 'x') + "\r\n\r\n"));
  const std::string response = client.ReadToEof();
  EXPECT_NE(response.find("HTTP/1.1 431"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpServerTest, MalformedRequestLineIsRejected400) {
  HttpServer server(EchoHandler, SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.Send("NONSENSE\r\n\r\n"));
  const std::string response = client.ReadToEof();
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpServerTest, OversizedBodyIsRejected413) {
  HttpServerOptions options = SmallOptions();
  options.max_body_bytes = 64;
  HttpServer server(EchoHandler, options);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.Send("POST /p HTTP/1.1\r\nHost: t\r\n"
                          "Content-Length: 1000\r\n\r\n"));
  const std::string response = client.ReadToEof();
  EXPECT_NE(response.find("HTTP/1.1 413"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpServerTest, ChunkedEncodingIsRejected501) {
  HttpServer server(EchoHandler, SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.Send("POST /c HTTP/1.1\r\nHost: t\r\n"
                          "Transfer-Encoding: chunked\r\n\r\n"));
  const std::string response = client.ReadToEof();
  EXPECT_NE(response.find("HTTP/1.1 501"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpServerTest, PostBodyReachesTheHandler) {
  HttpServer server(EchoHandler, SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  const std::string body = "{\"hello\":\"world\"}";
  ASSERT_TRUE(client.Send("POST /submit HTTP/1.1\r\nHost: t\r\n"
                          "Content-Length: " + std::to_string(body.size()) +
                          "\r\n\r\n" + body));
  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("body=" + body), std::string::npos) << response;
  server.Stop();
}

TEST(HttpServerTest, HeadKeepsContentLengthButSuppressesBody) {
  HttpServer server(EchoHandler, SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  // HEAD then GET pipelined: the HEAD response must not carry a body, or
  // the GET response would be misframed.
  ASSERT_TRUE(client.Send("HEAD /h HTTP/1.1\r\nHost: t\r\n\r\n"
                          "GET /after HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string head = client.ReadUntil("\r\n\r\n");
  EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(head.find("Content-Length:"), std::string::npos);
  const std::string after = client.ReadResponse();
  EXPECT_NE(after.find("GET /after"), std::string::npos) << after;
  server.Stop();
}

TEST(HttpServerTest, Expect100ContinueIsAcknowledged) {
  HttpServer server(EchoHandler, SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  const std::string body = "late-body";
  ASSERT_TRUE(client.Send("POST /e HTTP/1.1\r\nHost: t\r\n"
                          "Expect: 100-continue\r\n"
                          "Content-Length: " + std::to_string(body.size()) +
                          "\r\n\r\n"));
  const std::string interim = client.ReadUntil("\r\n\r\n");
  EXPECT_NE(interim.find("HTTP/1.1 100 Continue"), std::string::npos)
      << interim;
  ASSERT_TRUE(client.Send(body));
  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("body=" + body), std::string::npos) << response;
  server.Stop();
}

TEST(HttpServerTest, ExtraResponseHeadersAreWrittenVerbatim) {
  HttpServer server(
      [](std::string_view, std::string_view, std::string_view) {
        HttpResponse response;
        response.body = "ok\n";
        response.headers.emplace_back("Deprecation", "true");
        response.headers.emplace_back("Retry-After", "1");
        return response;
      },
      SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.Send("GET / HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("Deprecation: true"), std::string::npos);
  EXPECT_NE(response.find("Retry-After: 1"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, QueueOverflowIsShedWith429RetryAfter) {
  // One handler thread wedged on a latch + a one-deep queue: the third
  // concurrent request has nowhere to go and must be shed immediately.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  MetricRegistry metrics;
  HttpServerOptions options = SmallOptions();
  options.handler_threads = 1;
  options.queue_high_water = 1;
  options.metrics = &metrics;
  HttpServer server(
      [&](std::string_view, std::string_view, std::string_view) {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return release; });
        HttpResponse response;
        response.body = "done\n";
        return response;
      },
      options);
  ASSERT_TRUE(server.Start().ok());

  RawClient blocked(server.port());   // occupies the handler thread
  RawClient queued(server.port());    // fills the queue
  ASSERT_TRUE(blocked.Send("GET /a HTTP/1.1\r\nHost: t\r\n\r\n"));
  ASSERT_TRUE(queued.Send("GET /b HTTP/1.1\r\nHost: t\r\n\r\n"));
  // Until the first two are in place, a third could race past; poll the
  // shed counter while retrying instead of sleeping a fixed time.
  std::string shed_response;
  for (int attempt = 0; attempt < 100; ++attempt) {
    RawClient extra(server.port());
    ASSERT_TRUE(extra.Send("GET /c HTTP/1.1\r\nHost: t\r\n\r\n"));
    const std::string response = extra.ReadResponse();
    if (response.find("HTTP/1.1 429") != std::string::npos) {
      shed_response = response;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_NE(shed_response.find("HTTP/1.1 429"), std::string::npos);
  EXPECT_NE(shed_response.find("Retry-After:"), std::string::npos);
  // The shed connection stays usable — admission control rejects the
  // request, not the client.
  EXPECT_NE(shed_response.find("Connection: keep-alive"),
            std::string::npos);
  EXPECT_GE(server.shed_count(), 1);
  EXPECT_GE(metrics.GetCounter("surveyor_http_shed_total")->Value(), 1);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  EXPECT_NE(blocked.ReadResponse().find("200 OK"), std::string::npos);
  EXPECT_NE(queued.ReadResponse().find("200 OK"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, ConnectionsOverTheCapAreRefused503) {
  HttpServerOptions options = SmallOptions();
  options.max_connections = 2;
  HttpServer server(EchoHandler, options);
  ASSERT_TRUE(server.Start().ok());
  RawClient first(server.port());
  RawClient second(server.port());
  // Make sure both are really registered before the third connects.
  ASSERT_TRUE(first.Send("GET /1 HTTP/1.1\r\nHost: t\r\n\r\n"));
  ASSERT_TRUE(second.Send("GET /2 HTTP/1.1\r\nHost: t\r\n\r\n"));
  EXPECT_NE(first.ReadResponse().find("200 OK"), std::string::npos);
  EXPECT_NE(second.ReadResponse().find("200 OK"), std::string::npos);
  RawClient third(server.port());
  const std::string refused = third.ReadToEof();
  EXPECT_NE(refused.find("HTTP/1.1 503"), std::string::npos) << refused;
  EXPECT_NE(refused.find("Retry-After:"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, StopDrainsInFlightRequests) {
  std::atomic<bool> entered{false};
  HttpServer server(
      [&](std::string_view, std::string_view, std::string_view) {
        entered.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        HttpResponse response;
        response.body = "drained\n";
        return response;
      },
      SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.Send("GET /slow HTTP/1.1\r\nHost: t\r\n\r\n"));
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread stopper([&server] { server.Stop(); });
  const std::string response = client.ReadToEof();
  stopper.join();
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("drained"), std::string::npos);
}

TEST(HttpServerTest, StopIsIdempotentAndServerRestartable) {
  HttpServer server(EchoHandler, SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  const int first_port = server.port();
  EXPECT_GT(first_port, 0);
  server.Stop();
  server.Stop();
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.port());
  ASSERT_TRUE(client.Send("GET /again HTTP/1.1\r\nHost: t\r\n\r\n"));
  EXPECT_NE(client.ReadResponse().find("200 OK"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, ManyConcurrentKeepAliveClients) {
  MetricRegistry metrics;
  HttpServerOptions options = SmallOptions();
  options.metrics = &metrics;
  HttpServer server(EchoHandler, options);
  ASSERT_TRUE(server.Start().ok());
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 20;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      RawClient client(server.port());
      for (int i = 0; i < kRequestsEach; ++i) {
        const std::string target =
            "/c" + std::to_string(c) + "/r" + std::to_string(i);
        if (!client.Send("GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n")) {
          return;
        }
        const std::string response = client.ReadResponse();
        if (response.find("GET " + target) != std::string::npos) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(ok.load(), kClients * kRequestsEach);
  EXPECT_EQ(
      metrics.GetCounter("surveyor_http_requests_total")->Value(),
      kClients * kRequestsEach);
  server.Stop();
}

}  // namespace
}  // namespace obs
}  // namespace surveyor

#endif  // defined(__linux__)
