#include "obs/trace.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace surveyor {
namespace obs {
namespace {

TEST(TracerTest, DisabledByDefaultRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  ASSERT_FALSE(tracer.enabled());
  {
    ScopedSpan span("noop");
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(span.ElapsedSeconds(), 0.0);
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(CurrentSpanId(), 0u);
}

TEST(TracerTest, NestedSpansLinkParents) {
  TraceSession session;
  {
    ScopedSpan outer("outer");
    ASSERT_NE(outer.id(), 0u);
    EXPECT_EQ(CurrentSpanId(), outer.id());
    {
      ScopedSpan inner("inner");
      EXPECT_EQ(CurrentSpanId(), inner.id());
    }
    EXPECT_EQ(CurrentSpanId(), outer.id());
  }
  EXPECT_EQ(CurrentSpanId(), 0u);

  const std::vector<TraceSpan> spans = session.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: the outer span started first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_GE(spans[1].start_seconds, spans[0].start_seconds);
  EXPECT_LE(spans[1].duration_seconds, spans[0].duration_seconds);
}

TEST(TracerTest, ExplicitParentCrossesThreads) {
  TraceSession session;
  uint64_t outer_id = 0;
  {
    ScopedSpan outer("submit");
    outer_id = outer.id();
    const uint64_t parent = CurrentSpanId();
    std::thread worker([parent] {
      // The worker thread has no live span of its own; the explicit
      // parent keeps the linkage.
      EXPECT_EQ(CurrentSpanId(), 0u);
      ScopedSpan span("work", parent);
    });
    worker.join();
  }
  const std::vector<TraceSpan> spans = session.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].name, "work");
  EXPECT_EQ(spans[1].parent_id, outer_id);
  EXPECT_NE(spans[1].thread_index, spans[0].thread_index);
}

TEST(TracerTest, CapacityBoundsBufferAndCountsDrops) {
  TraceSession session;
  Tracer::Global().SetCapacity(3);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("s");
  }
  EXPECT_EQ(session.Snapshot().size(), 3u);
  EXPECT_EQ(session.dropped_spans(), 2);
  Tracer::Global().SetCapacity(16384);
}

TEST(TracerTest, EndIsIdempotentAndFreezesElapsed) {
  TraceSession session;
  ScopedSpan span("once");
  span.End();
  const double elapsed = span.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.0);
  span.End();  // no-op
  EXPECT_EQ(span.ElapsedSeconds(), elapsed);
  EXPECT_EQ(session.Snapshot().size(), 1u);
}

TEST(TracerTest, SessionRestoresPreviousState) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  ASSERT_FALSE(tracer.enabled());
  {
    TraceSession session;
    EXPECT_TRUE(tracer.enabled());
  }
  EXPECT_FALSE(tracer.enabled());
}

TEST(TracerTest, ClearResetsSpansAndDropCounter) {
  TraceSession session;
  Tracer::Global().SetCapacity(1);
  {
    ScopedSpan a("a");
  }
  {
    ScopedSpan b("b");
  }
  EXPECT_EQ(session.dropped_spans(), 1);
  Tracer::Global().Clear();
  EXPECT_TRUE(session.Snapshot().empty());
  EXPECT_EQ(session.dropped_spans(), 0);
  Tracer::Global().SetCapacity(16384);
}

TEST(TracerTest, SpanMacroCompilesAndRecords) {
  TraceSession session;
  {
    SURVEYOR_SPAN("macro.scope");
  }
  const std::vector<TraceSpan> spans = session.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "macro.scope");
}

}  // namespace
}  // namespace obs
}  // namespace surveyor
