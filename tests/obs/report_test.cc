#include "obs/report.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "surveyor/pipeline.h"
#include "text/document_source.h"

namespace surveyor {
namespace obs {
namespace {

/// One deterministic tiny-scenario run shared by the report tests:
/// single-threaded so span ids, task counts and orderings are stable.
class ReportTest : public testing::Test {
 protected:
  ReportTest() : world_(World::Generate(MakeTinyWorldConfig()).value()) {
    GeneratorOptions options;
    options.author_population = 8000;
    options.seed = 77;
    corpus_ = CorpusGenerator(&world_, options).Generate();
    config_.min_statements = 20;
    config_.num_threads = 1;
  }

  World world_;
  std::vector<RawDocument> corpus_;
  SurveyorConfig config_;
};

TEST_F(ReportTest, EmAggregateKeepsWorstFitsSortedAndBounded) {
  EmAggregateDiagnostics aggregate;
  aggregate.max_worst_fits = 2;
  for (int i = 0; i < 4; ++i) {
    EmFitDiagnostics fit;
    fit.type_name = "t";
    fit.property = "p" + std::to_string(i);
    fit.iterations = 3;
    fit.converged = (i != 1);
    fit.chi2_positive = static_cast<double>(i);
    fit.chi2_negative = 0.5;
    aggregate.Add(std::move(fit));
  }
  EXPECT_EQ(aggregate.fits, 4);
  EXPECT_EQ(aggregate.converged, 3);
  EXPECT_EQ(aggregate.total_iterations, 12);
  EXPECT_DOUBLE_EQ(aggregate.mean_iterations(), 3.0);
  EXPECT_DOUBLE_EQ(aggregate.max_chi2, 3.0);
  ASSERT_EQ(aggregate.worst_fits.size(), 2u);
  EXPECT_EQ(aggregate.worst_fits[0].property, "p3");
  EXPECT_EQ(aggregate.worst_fits[1].property, "p2");
}

TEST_F(ReportTest, RunPopulatesReport) {
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config_);
  auto result = pipeline.Run(corpus_);
  ASSERT_TRUE(result.ok()) << result.status();
  const RunReport& report = result->report;

  // The acceptance bar: a real run exposes a rich metric set.
  EXPECT_GE(report.metrics.size(), 15u);

  // The span tree covers every pipeline stage, rooted at pipeline.run.
  std::set<std::string> names;
  uint64_t root_id = 0;
  for (const TraceSpan& span : report.spans) {
    names.insert(span.name);
    if (span.name == "pipeline.run") root_id = span.id;
  }
  EXPECT_TRUE(names.count("pipeline.run"));
  EXPECT_TRUE(names.count("extract"));
  EXPECT_TRUE(names.count("extract.shard"));
  EXPECT_TRUE(names.count("group"));
  EXPECT_TRUE(names.count("em"));
  EXPECT_TRUE(names.count("em.fit"));
  ASSERT_NE(root_id, 0u);
  for (const TraceSpan& span : report.spans) {
    if (span.name == "extract" || span.name == "group" ||
        span.name == "em") {
      EXPECT_EQ(span.parent_id, root_id) << span.name;
    }
  }
  EXPECT_EQ(report.dropped_spans, 0);

  // PipelineStats is derived from the registry, so struct and report
  // counters must agree exactly.
  const PipelineStats& stats = result->stats;
  EXPECT_EQ(static_cast<double>(stats.num_documents),
            report.MetricValue("surveyor_extract_documents_total"));
  EXPECT_EQ(static_cast<double>(stats.num_sentences),
            report.MetricValue("surveyor_extract_sentences_total"));
  EXPECT_EQ(static_cast<double>(stats.parse_failure_count),
            report.MetricValue("surveyor_extract_parse_failures_total"));
  EXPECT_EQ(static_cast<double>(stats.num_statements),
            report.MetricValue("surveyor_extract_statements_total"));
  EXPECT_EQ(static_cast<double>(stats.num_negative_statements),
            report.MetricValue("surveyor_extract_negative_statements_total"));
  EXPECT_EQ(static_cast<double>(stats.num_kept_property_type_pairs),
            report.MetricValue("surveyor_group_pairs_kept_total"));
  EXPECT_EQ(static_cast<double>(stats.num_property_type_pairs),
            report.MetricValue("surveyor_group_property_type_pairs_total"));
  EXPECT_EQ(static_cast<double>(stats.num_opinions),
            report.MetricValue("surveyor_infer_opinions_total"));

  // Per-pattern statement counts partition the statement total.
  int64_t by_pattern = 0;
  ASSERT_EQ(stats.statements_by_pattern.size(), 4u);
  for (const auto& [pattern, count] : stats.statements_by_pattern) {
    by_pattern += count;
  }
  EXPECT_EQ(by_pattern, stats.num_statements);

  // Aggregate EM diagnostics cover every kept pair.
  EXPECT_EQ(report.em.fits, stats.num_kept_property_type_pairs);
  EXPECT_GT(report.em.total_iterations, 0);
  EXPECT_FALSE(report.em.worst_fits.empty());
  EXPECT_GE(report.em.max_chi2, report.em.mean_worst_chi2());

  // Stage timings are recorded both as stats and stage_seconds.
  EXPECT_GT(stats.extraction_seconds, 0.0);
  EXPECT_EQ(report.stage_seconds.at("extract"), stats.extraction_seconds);
  EXPECT_EQ(report.stage_seconds.at("group"), stats.grouping_seconds);
  EXPECT_EQ(report.stage_seconds.at("em"), stats.em_seconds);
}

TEST_F(ReportTest, CleanRunReportsZeroedDegradationSection) {
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config_);
  auto result = pipeline.Run(corpus_);
  ASSERT_TRUE(result.ok()) << result.status();
  const DegradationReport& degradation = result->report.degradation;
  EXPECT_FALSE(degradation.degraded);
  EXPECT_EQ(degradation.retries, 0);
  EXPECT_EQ(degradation.faults_injected, 0);
  EXPECT_EQ(degradation.docs_quarantined, 0);
  EXPECT_EQ(degradation.pairs_degraded, 0);
  EXPECT_TRUE(degradation.degraded_pairs.empty());
  EXPECT_TRUE(degradation.notes.empty());

  // The section is always present in the JSON artifact, zeroed or not.
  const std::string json = result->report.ToJson();
  EXPECT_NE(json.find("\"degradation\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":false"), std::string::npos);
}

TEST_F(ReportTest, RunAndRunStreamingDeriveIdenticalStats) {
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config_);
  auto batch = pipeline.Run(corpus_);
  ASSERT_TRUE(batch.ok()) << batch.status();
  VectorDocumentSource source(&corpus_);
  auto streaming = pipeline.RunStreaming(source);
  ASSERT_TRUE(streaming.ok()) << streaming.status();

  const PipelineStats& a = batch->stats;
  const PipelineStats& b = streaming->stats;
  EXPECT_EQ(a.num_documents, b.num_documents);
  EXPECT_EQ(a.num_sentences, b.num_sentences);
  EXPECT_EQ(a.num_parsed_sentences, b.num_parsed_sentences);
  EXPECT_EQ(a.parse_failure_count, b.parse_failure_count);
  EXPECT_EQ(a.num_statements, b.num_statements);
  EXPECT_EQ(a.num_negative_statements, b.num_negative_statements);
  EXPECT_EQ(a.statements_by_pattern, b.statements_by_pattern);
  EXPECT_EQ(a.num_entity_property_pairs, b.num_entity_property_pairs);
  EXPECT_EQ(a.num_property_type_pairs, b.num_property_type_pairs);
  EXPECT_EQ(a.num_kept_property_type_pairs, b.num_kept_property_type_pairs);
  EXPECT_EQ(a.num_opinions, b.num_opinions);
}

/// Replaces the run-dependent values (wall times, thread indices, idle
/// time, floating-point diagnostics) with `null` so the remaining JSON —
/// structure, metric names and every integer counter — is byte-stable.
std::string Normalize(std::string json) {
  static const std::regex seconds_key(
      "(\"[A-Za-z_.]*seconds\":)-?[0-9][-+.eE0-9]*");
  json = std::regex_replace(json, seconds_key, "$1null");
  static const std::regex thread_key("(\"thread\":)[0-9]+");
  json = std::regex_replace(json, thread_key, "$1null");
  static const std::regex idle_gauge(
      "(\"name\":\"[a-z_]*idle_seconds\",\"kind\":\"gauge\",\"value\":)"
      "-?[0-9][-+.eE0-9]*");
  json = std::regex_replace(json, idle_gauge, "$1null");
  // Any remaining non-integer number is a measured quantity (likelihoods,
  // chi-squares, sums); integers are exact counts and must match.
  static const std::regex fractional(
      "-?[0-9]+\\.[0-9]+([eE][-+]?[0-9]+)?|-?[0-9]+[eE][-+]?[0-9]+");
  json = std::regex_replace(json, fractional, "null");
  return json;
}

TEST_F(ReportTest, GoldenJsonReport) {
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config_);
  auto result = pipeline.Run(corpus_);
  ASSERT_TRUE(result.ok()) << result.status();
  result->report.label = "tiny";
  const std::string normalized = Normalize(result->report.ToJson());

  const std::string golden_path =
      std::string(SURVEYOR_OBS_TESTDATA_DIR) + "/tiny_report.json";
  if (std::getenv("UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << normalized << "\n";
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (run with UPDATE_GOLDEN=1 to create it)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string golden = buffer.str();
  if (!golden.empty() && golden.back() == '\n') golden.pop_back();
  EXPECT_EQ(normalized, golden)
      << "run report JSON drifted; if intentional, regenerate with "
         "UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace obs
}  // namespace surveyor
