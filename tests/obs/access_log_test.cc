#include "obs/access_log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace surveyor {
namespace obs {
namespace {

AccessLogEntry MakeEntry(const std::string& endpoint, int status,
                         double latency_seconds) {
  AccessLogEntry entry;
  entry.method = "GET";
  entry.target = endpoint;
  entry.endpoint = endpoint;
  entry.status = status;
  entry.latency_seconds = latency_seconds;
  return entry;
}

TEST(AccessLogTest, AssignsSequencesOldestFirst) {
  AccessLog log(8);
  log.Append(MakeEntry("/a", 200, 0.001));
  log.Append(MakeEntry("/b", 200, 0.002));
  log.Append(MakeEntry("/c", 404, 0.003));

  const std::vector<AccessLogEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].endpoint, "/a");
  EXPECT_EQ(entries[1].endpoint, "/b");
  EXPECT_EQ(entries[2].endpoint, "/c");
  EXPECT_EQ(entries[0].sequence, 0);
  EXPECT_EQ(entries[1].sequence, 1);
  EXPECT_EQ(entries[2].sequence, 2);
  EXPECT_EQ(log.total_requests(), 3);
}

TEST(AccessLogTest, RingEvictsOldest) {
  AccessLog log(3);
  for (int i = 0; i < 7; ++i) {
    log.Append(MakeEntry("/n" + std::to_string(i), 200, 0.001));
  }
  const std::vector<AccessLogEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].endpoint, "/n4");
  EXPECT_EQ(entries[1].endpoint, "/n5");
  EXPECT_EQ(entries[2].endpoint, "/n6");
  EXPECT_EQ(entries[0].sequence, 4);
  // Counters survive eviction.
  EXPECT_EQ(log.total_requests(), 7);
  const std::vector<AccessLog::EndpointCounts> counts = log.ByEndpoint();
  int64_t total = 0;
  for (const AccessLog::EndpointCounts& count : counts) {
    total += count.requests;
  }
  EXPECT_EQ(total, 7);
}

TEST(AccessLogTest, SlowestNOrdersByLatency) {
  AccessLog log(8);
  log.Append(MakeEntry("/fast", 200, 0.001));
  log.Append(MakeEntry("/slowest", 200, 0.9));
  log.Append(MakeEntry("/medium", 200, 0.05));
  log.Append(MakeEntry("/slow", 200, 0.5));

  const std::vector<AccessLogEntry> slowest = log.SlowestN(3);
  ASSERT_EQ(slowest.size(), 3u);
  EXPECT_EQ(slowest[0].endpoint, "/slowest");
  EXPECT_EQ(slowest[1].endpoint, "/slow");
  EXPECT_EQ(slowest[2].endpoint, "/medium");

  // n larger than the buffer returns everything.
  EXPECT_EQ(log.SlowestN(100).size(), 4u);
}

TEST(AccessLogTest, SlowestNBreaksTiesNewestFirst) {
  AccessLog log(8);
  log.Append(MakeEntry("/old", 200, 0.1));
  log.Append(MakeEntry("/new", 200, 0.1));
  const std::vector<AccessLogEntry> slowest = log.SlowestN(2);
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].endpoint, "/new");
  EXPECT_EQ(slowest[1].endpoint, "/old");
}

TEST(AccessLogTest, CountsErrorsPerEndpoint) {
  AccessLog log(8);
  log.Append(MakeEntry("/query", 200, 0.001));
  log.Append(MakeEntry("/query", 404, 0.001));
  log.Append(MakeEntry("/query", 500, 0.001));
  log.Append(MakeEntry("/metrics", 200, 0.001));
  // 3xx is not an error.
  log.Append(MakeEntry("/metrics", 304, 0.001));

  const std::vector<AccessLog::EndpointCounts> counts = log.ByEndpoint();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].endpoint, "/metrics");
  EXPECT_EQ(counts[0].requests, 2);
  EXPECT_EQ(counts[0].errors, 0);
  EXPECT_EQ(counts[1].endpoint, "/query");
  EXPECT_EQ(counts[1].requests, 3);
  EXPECT_EQ(counts[1].errors, 2);
}

TEST(AccessLogTest, FoldsUnboundedEndpointsIntoOther) {
  AccessLog log(4);
  for (size_t i = 0; i < AccessLog::kMaxEndpoints + 10; ++i) {
    log.Append(MakeEntry("/scan" + std::to_string(i), 404, 0.001));
  }
  const std::vector<AccessLog::EndpointCounts> counts = log.ByEndpoint();
  // kMaxEndpoints distinct keys plus the "other" bucket.
  ASSERT_EQ(counts.size(), AccessLog::kMaxEndpoints + 1);
  int64_t other_requests = 0;
  for (const AccessLog::EndpointCounts& count : counts) {
    if (count.endpoint == "other") other_requests = count.requests;
  }
  EXPECT_EQ(other_requests, 10);
}

TEST(AccessLogTest, EmptyEndpointCountsAsOther) {
  AccessLog log(4);
  log.Append(MakeEntry("", 200, 0.001));
  const std::vector<AccessLog::EndpointCounts> counts = log.ByEndpoint();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].endpoint, "other");
}

TEST(AccessLogTest, ClearResetsEverything) {
  AccessLog log(4);
  log.Append(MakeEntry("/a", 500, 0.001));
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_TRUE(log.ByEndpoint().empty());
  EXPECT_EQ(log.total_requests(), 0);
  log.Append(MakeEntry("/b", 200, 0.001));
  EXPECT_EQ(log.Snapshot()[0].sequence, 0);
}

TEST(AccessLogTest, PrometheusTextListsEndpointCounters) {
  AccessLog log(4);
  log.Append(MakeEntry("/query", 200, 0.001));
  log.Append(MakeEntry("/query", 500, 0.001));
  std::string text;
  log.AppendPrometheusText(&text);
  EXPECT_NE(text.find("# TYPE surveyor_admin_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("surveyor_admin_requests_total{endpoint=\"/query\"} 2"),
            std::string::npos);
  EXPECT_NE(
      text.find("surveyor_admin_request_errors_total{endpoint=\"/query\"} 1"),
      std::string::npos);
}

TEST(AccessLogTest, PrometheusTextEmptyWhenNoTraffic) {
  AccessLog log(4);
  std::string text;
  log.AppendPrometheusText(&text);
  EXPECT_TRUE(text.empty());
}

}  // namespace
}  // namespace obs
}  // namespace surveyor
