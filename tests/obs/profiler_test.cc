#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/stage.h"
#include "util/profile_tag.h"
#include "util/sample_ring.h"
#include "util/status.h"

namespace surveyor {
namespace obs {
namespace {

// Deterministic fake symbolizer: real addresses differ run to run, so the
// aggregation tests name frames after their integer value.
std::string FakeSymbolize(const void* pc) {
  return "fn_" + std::to_string(reinterpret_cast<uintptr_t>(pc));
}

StackSample MakeSample(std::vector<uintptr_t> leaf_first_frames,
                       const char* tag, int32_t stage) {
  StackSample sample;
  sample.depth = static_cast<int32_t>(leaf_first_frames.size());
  for (size_t i = 0; i < leaf_first_frames.size(); ++i) {
    sample.frames[i] = reinterpret_cast<void*>(leaf_first_frames[i]);
  }
  sample.tag = tag;
  sample.stage = stage;
  return sample;
}

TEST(AggregateSamplesTest, ReversesFramesAndPrefixesStageAndTag) {
  // backtrace() records leaf-first (3 is the leaf, 1 the root); the folded
  // line must read root-first after the "stage;tag" attribution prefix.
  const std::vector<StackSample> samples = {
      MakeSample({3, 2, 1}, "extract",
                 static_cast<int32_t>(PipelineStage::kExtracting))};
  const ProfileResult result =
      AggregateSamples(samples, /*dropped=*/0, /*duration_seconds=*/1.0,
                       /*frequency_hz=*/97.0, FakeSymbolize);
  EXPECT_EQ(result.ToFolded(), "extracting;extract;fn_1;fn_2;fn_3 1\n");
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_EQ(result.stages[0].stage, "extracting");
  EXPECT_EQ(result.stages[0].tag, "extract");
  EXPECT_EQ(result.stages[0].samples, 1);
  EXPECT_DOUBLE_EQ(result.stages[0].fraction, 1.0);
}

TEST(AggregateSamplesTest, FoldedOutputIsByteIdenticalAcrossSampleOrder) {
  const int32_t extracting = static_cast<int32_t>(PipelineStage::kExtracting);
  const int32_t fitting = static_cast<int32_t>(PipelineStage::kFitting);
  std::vector<StackSample> samples = {
      MakeSample({3, 2, 1}, "extract", extracting),
      MakeSample({5, 2, 1}, "extract", extracting),
      MakeSample({3, 2, 1}, "extract", extracting),
      MakeSample({9, 8}, "em", fitting),
      MakeSample({7}, nullptr, -1),
  };
  const ProfileResult forward = AggregateSamples(samples, 2, 1.5, 97.0,
                                                 FakeSymbolize);
  std::reverse(samples.begin(), samples.end());
  const ProfileResult reversed = AggregateSamples(samples, 2, 1.5, 97.0,
                                                  FakeSymbolize);

  // Identical samples in any arrival order → byte-identical renderings
  // (folded stacks sort lexicographically; "none" < "extracting" is false,
  // so the exact expected text pins the ordering contract too).
  const std::string expected =
      "extracting;extract;fn_1;fn_2;fn_3 2\n"
      "extracting;extract;fn_1;fn_2;fn_5 1\n"
      "fitting;em;fn_8;fn_9 1\n"
      "none;untagged;fn_7 1\n";
  EXPECT_EQ(forward.ToFolded(), expected);
  EXPECT_EQ(reversed.ToFolded(), expected);

  EXPECT_EQ(forward.samples, 5);
  EXPECT_EQ(forward.dropped, 2);
  EXPECT_DOUBLE_EQ(forward.duration_seconds, 1.5);
}

TEST(AggregateSamplesTest, StageTableSortsByCountThenStageThenTag) {
  const int32_t extracting = static_cast<int32_t>(PipelineStage::kExtracting);
  const int32_t fitting = static_cast<int32_t>(PipelineStage::kFitting);
  const std::vector<StackSample> samples = {
      MakeSample({1}, "match", extracting),
      MakeSample({1}, "match", extracting),
      MakeSample({1}, "tokenize", extracting),
      MakeSample({1}, "em", fitting),
  };
  const ProfileResult result =
      AggregateSamples(samples, 0, 1.0, 97.0, FakeSymbolize);
  ASSERT_EQ(result.stages.size(), 3u);
  EXPECT_EQ(result.stages[0].tag, "match");  // 2 samples: count wins.
  EXPECT_EQ(result.stages[0].samples, 2);
  EXPECT_DOUBLE_EQ(result.stages[0].fraction, 0.5);
  // 1-sample tie: "extracting" sorts before "fitting".
  EXPECT_EQ(result.stages[1].stage, "extracting");
  EXPECT_EQ(result.stages[1].tag, "tokenize");
  EXPECT_EQ(result.stages[2].stage, "fitting");
  EXPECT_EQ(result.stages[2].tag, "em");
}

TEST(AggregateSamplesTest, SanitizesFrameNamesThatWouldBreakTheGrammar) {
  const auto hostile = [](const void*) -> std::string {
    return "operator() (lambda);evil\nname";
  };
  const std::vector<StackSample> samples = {MakeSample({1}, "my tag", -1)};
  const ProfileResult result = AggregateSamples(samples, 0, 1.0, 97.0, hostile);
  // ';' and newlines become ':', spaces '_': one frame stays one frame.
  EXPECT_EQ(result.ToFolded(), "none;my_tag;operator()_(lambda):evil:name 1\n");
}

TEST(AggregateSamplesTest, EmptyWindowRendersNoLines) {
  const ProfileResult result = AggregateSamples({}, 0, 1.0, 97.0,
                                                FakeSymbolize);
  EXPECT_EQ(result.samples, 0);
  EXPECT_EQ(result.ToFolded(), "");
  EXPECT_TRUE(result.stages.empty());
}

TEST(ProfileResultTest, ToJsonCarriesBuildInfoAndTotals) {
  const std::vector<StackSample> samples = {
      MakeSample({3, 2, 1}, "extract",
                 static_cast<int32_t>(PipelineStage::kExtracting))};
  const std::string json =
      AggregateSamples(samples, 1, 2.0, 97.0, FakeSymbolize).ToJson();
  for (const char* key :
       {"\"build_info\"", "\"git_sha\"", "\"samples\":1", "\"dropped\":1",
        "\"frequency_hz\"", "\"stage_attribution\"", "\"folded\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing: " << json;
  }
}

TEST(ProfilerTest, StartValidatesFrequency) {
  if (!Profiler::SupportedOnThisBuild()) {
    // Unsupported builds fail with Unimplemented before any validation.
    EXPECT_EQ(Profiler::Global().Start().code(), StatusCode::kUnimplemented);
    return;
  }
  ProfilerOptions options;
  options.frequency_hz = 0.0;
  EXPECT_EQ(Profiler::Global().Start(options).code(),
            StatusCode::kInvalidArgument);
  options.frequency_hz = 5000.0;
  EXPECT_EQ(Profiler::Global().Start(options).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProfilerTest, SecondStartIsRejectedWhileRunning) {
  Profiler& profiler = Profiler::Global();
  if (!Profiler::SupportedOnThisBuild()) {
    GTEST_SKIP() << "profiler unsupported on this build (sanitizer/platform)";
  }
  ASSERT_TRUE(profiler.Start().ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_EQ(profiler.Start().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(profiler.Stop().ok());
  EXPECT_FALSE(profiler.running());
  // Stop without a running window is also a precondition failure.
  EXPECT_EQ(profiler.Stop().status().code(), StatusCode::kFailedPrecondition);
}

// End-to-end smoke test: burn CPU under a known tag and stage, and expect
// the profiler to attribute the window to them. Sample counts depend on
// scheduler behavior, so the test waits on SamplesSoFar() instead of
// assuming the timer fires immediately.
TEST(ProfilerTest, LiveWindowAttributesSamplesToTagAndStage) {
  Profiler& profiler = Profiler::Global();
  if (!Profiler::SupportedOnThisBuild()) {
    GTEST_SKIP() << "profiler unsupported on this build (sanitizer/platform)";
  }

  StageTracker stage_tracker;
  stage_tracker.SetStage(PipelineStage::kExtracting);
  MetricRegistry metrics;
  ProfilerOptions options;
  options.stage_tracker = &stage_tracker;
  options.metrics = &metrics;
  ASSERT_TRUE(profiler.Start(options).ok());

  // CPU-burning loop: ITIMER_PROF only ticks while the process burns
  // cycles. Bounded by wall-clock in case the timer is slow under load.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  volatile double sink = 0.0;
  {
    SURVEYOR_PROFILE_SCOPE("hotspot");
    while (profiler.SamplesSoFar() < 5 &&
           std::chrono::steady_clock::now() < deadline) {
      for (int i = 1; i < 4096; ++i) sink = sink + 1.0 / i;
    }
  }

  auto result = profiler.Stop();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->samples, 0);
  EXPECT_GE(result->duration_seconds, 0.0);

  // The burn loop dominates the window: the top bucket must be the tagged
  // extracting-stage work, and the folded output must carry the prefix.
  ASSERT_FALSE(result->stages.empty());
  EXPECT_EQ(result->stages[0].stage, "extracting");
  EXPECT_EQ(result->stages[0].tag, "hotspot");
  EXPECT_NE(result->ToFolded().find("extracting;hotspot;"), std::string::npos);

  EXPECT_EQ(metrics.GetCounter("surveyor_profile_samples_total")->Value(),
            result->samples);
  EXPECT_EQ(
      metrics.GetCounter("surveyor_profile_samples_dropped_total")->Value(),
      result->dropped);
}

}  // namespace
}  // namespace obs
}  // namespace surveyor
