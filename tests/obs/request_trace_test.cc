#include "obs/request_trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/access_log.h"
#include "obs/trace.h"

namespace surveyor {
namespace obs {
namespace {

TEST(SampleDecisionTest, RateZeroNeverSamples) {
  for (uint64_t id = 1; id <= 1000; ++id) {
    EXPECT_FALSE(RequestTracer::SampleDecision(id, 0.0));
  }
  EXPECT_FALSE(RequestTracer::SampleDecision(7, -0.5));
}

TEST(SampleDecisionTest, RateOneAlwaysSamples) {
  for (uint64_t id = 1; id <= 1000; ++id) {
    EXPECT_TRUE(RequestTracer::SampleDecision(id, 1.0));
  }
  EXPECT_TRUE(RequestTracer::SampleDecision(7, 2.0));
}

TEST(SampleDecisionTest, FractionalRateIsDeterministicAndConverges) {
  const double rate = 0.1;
  int sampled = 0;
  for (uint64_t id = 1; id <= 10000; ++id) {
    const bool first = RequestTracer::SampleDecision(id, rate);
    // Deterministic: the same id always gets the same verdict.
    EXPECT_EQ(first, RequestTracer::SampleDecision(id, rate));
    if (first) ++sampled;
  }
  // The sampled fraction converges to the rate (loose 30% tolerance —
  // the hash is fixed, so this is deterministic, not flaky).
  EXPECT_GT(sampled, 10000 * rate * 0.7);
  EXPECT_LT(sampled, 10000 * rate * 1.3);
}

TEST(TraceIdHexTest, FixedWidthLowercase) {
  EXPECT_EQ(TraceIdHex(0), "0000000000000000");
  EXPECT_EQ(TraceIdHex(0xabc), "0000000000000abc");
  EXPECT_EQ(TraceIdHex(0xDEADBEEFCAFEF00Dull), "deadbeefcafef00d");
}

RequestTracerOptions AlwaysSample() {
  RequestTracerOptions options;
  options.sample_rate = 1.0;
  options.slow_threshold_seconds = 0.0;
  return options;
}

TEST(RequestScopeTest, SampledRequestKeepsSpanTree) {
  RequestTracer tracer(AlwaysSample());
  {
    RequestScope scope(&tracer, nullptr, "GET", "/query?entity=berlin");
    EXPECT_NE(scope.trace_id(), 0u);
    EXPECT_TRUE(scope.sampled());
    EXPECT_EQ(CurrentTraceId(), scope.trace_id());
    EXPECT_EQ(CurrentSampledTraceId(), scope.trace_id());
    ASSERT_NE(CurrentRequestStats(), nullptr);
    CurrentRequestStats()->cache_hits = 3;
    scope.set_status(200);
    scope.set_response_bytes(42);
    {
      SURVEYOR_SPAN("child");
      SURVEYOR_SPAN("grandchild");
    }
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
  EXPECT_EQ(CurrentRequestStats(), nullptr);

  const std::vector<RequestTrace> traces = tracer.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const RequestTrace& trace = traces[0];
  EXPECT_TRUE(trace.sampled);
  EXPECT_EQ(trace.method, "GET");
  EXPECT_EQ(trace.target, "/query?entity=berlin");
  EXPECT_EQ(trace.status, 200);
  EXPECT_EQ(trace.response_bytes, 42u);
  EXPECT_EQ(trace.stats.cache_hits, 3);
  EXPECT_GT(trace.duration_seconds, 0.0);

  // Three spans: root "GET /query" plus the two nested ones, linked.
  ASSERT_EQ(trace.spans.size(), 3u);
  const TraceSpan* root = nullptr;
  const TraceSpan* child = nullptr;
  const TraceSpan* grandchild = nullptr;
  for (const TraceSpan& span : trace.spans) {
    if (span.name == "GET /query") root = &span;
    if (span.name == "child") child = &span;
    if (span.name == "grandchild") grandchild = &span;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  ASSERT_NE(grandchild, nullptr);
  EXPECT_EQ(child->parent_id, root->id);
  EXPECT_EQ(grandchild->parent_id, child->id);
  EXPECT_GE(child->start_seconds, 0.0);
}

TEST(RequestScopeTest, DisarmedTracerCollectsNothing) {
  RequestTracerOptions options;
  options.sample_rate = 0.0;
  options.slow_threshold_seconds = 0.0;
  RequestTracer tracer(options);
  ASSERT_FALSE(tracer.armed());
  {
    RequestScope scope(&tracer, nullptr, "GET", "/healthz");
    // Stats stay reachable even when spans are off.
    ASSERT_NE(CurrentRequestStats(), nullptr);
    EXPECT_EQ(CurrentSampledTraceId(), 0u);
    SURVEYOR_SPAN("ignored");
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.requests_started(), 1);
  EXPECT_EQ(tracer.traces_kept(), 0);
}

TEST(RequestScopeTest, SlowRequestIsTailCapturedWithoutSampling) {
  RequestTracerOptions options;
  options.sample_rate = 0.0;
  // Every request is "slow" against a zero-microsecond-ish threshold.
  options.slow_threshold_seconds = 1e-9;
  RequestTracer tracer(options);
  ASSERT_TRUE(tracer.armed());
  {
    RequestScope scope(&tracer, nullptr, "GET", "/query?entity=x");
    EXPECT_FALSE(scope.sampled());
    // Not head-sampled, so exemplars must not reference this trace.
    EXPECT_EQ(CurrentSampledTraceId(), 0u);
    SURVEYOR_SPAN("slow.work");
  }
  const std::vector<RequestTrace> traces = tracer.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_FALSE(traces[0].sampled);
  EXPECT_TRUE(traces[0].slow);
  ASSERT_EQ(traces[0].spans.size(), 2u);
  EXPECT_EQ(tracer.requests_slow(), 1);
}

TEST(RequestScopeTest, FastUnsampledRequestIsDropped) {
  RequestTracerOptions options;
  options.sample_rate = 0.0;
  options.slow_threshold_seconds = 100.0;  // Nothing is that slow here.
  RequestTracer tracer(options);
  {
    RequestScope scope(&tracer, nullptr, "GET", "/query?entity=x");
    SURVEYOR_SPAN("work");
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.requests_started(), 1);
}

TEST(RequestScopeTest, SpanCapCountsDroppedSpans) {
  RequestTracerOptions options = AlwaysSample();
  options.max_spans_per_trace = 2;
  RequestTracer tracer(options);
  {
    RequestScope scope(&tracer, nullptr, "GET", "/query");
    for (int i = 0; i < 5; ++i) {
      SURVEYOR_SPAN("span");
    }
  }
  const std::vector<RequestTrace> traces = tracer.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].spans.size(), 2u);
  // 5 child spans + 1 root, cap 2 -> 4 dropped.
  EXPECT_EQ(traces[0].dropped_spans, 4);
}

TEST(RequestScopeTest, LongTargetIsTruncated) {
  RequestTracer tracer(AlwaysSample());
  const std::string target = "/query?entity=" + std::string(1000, 'x');
  {
    RequestScope scope(&tracer, nullptr, "GET", target);
  }
  const std::vector<RequestTrace> traces = tracer.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_LE(traces[0].target.size(), 256u);
}

TEST(RequestScopeTest, AppendsAccessLogEntryEvenWhenUnsampled) {
  RequestTracerOptions options;
  options.sample_rate = 0.0;
  options.slow_threshold_seconds = 0.0;
  RequestTracer tracer(options);
  AccessLog log(8);
  {
    RequestScope scope(&tracer, &log, "GET", "/metrics");
    scope.set_status(200);
    scope.set_response_bytes(7);
  }
  const std::vector<AccessLogEntry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].method, "GET");
  EXPECT_EQ(entries[0].endpoint, "/metrics");
  EXPECT_EQ(entries[0].status, 200);
  EXPECT_EQ(entries[0].response_bytes, 7u);
  EXPECT_FALSE(entries[0].sampled);
  EXPECT_NE(entries[0].trace_id, 0u);
}

TEST(RequestTracerTest, RingWrapsKeepingNewest) {
  RequestTracerOptions options = AlwaysSample();
  options.ring_capacity = 3;
  RequestTracer tracer(options);
  for (int i = 0; i < 7; ++i) {
    RequestScope scope(&tracer, nullptr, "GET",
                       "/query?n=" + std::to_string(i));
  }
  const std::vector<RequestTrace> traces = tracer.Snapshot();
  ASSERT_EQ(traces.size(), 3u);
  // Newest first.
  EXPECT_EQ(traces[0].target, "/query?n=6");
  EXPECT_EQ(traces[1].target, "/query?n=5");
  EXPECT_EQ(traces[2].target, "/query?n=4");
  EXPECT_EQ(tracer.traces_kept(), 7);
  EXPECT_EQ(tracer.traces_evicted(), 4);
}

TEST(RequestTracerTest, ConcurrentHammeringStaysBounded) {
  RequestTracerOptions options = AlwaysSample();
  options.ring_capacity = 8;
  RequestTracer tracer(options);
  AccessLog log(16);
  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, &log, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        RequestScope scope(&tracer, &log, "GET",
                           "/query?t=" + std::to_string(t));
        SURVEYOR_SPAN("work");
        scope.set_status(200);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(tracer.requests_started(), kThreads * kRequestsPerThread);
  EXPECT_EQ(tracer.traces_kept(), kThreads * kRequestsPerThread);
  const std::vector<RequestTrace> traces = tracer.Snapshot();
  ASSERT_EQ(traces.size(), 8u);
  for (const RequestTrace& trace : traces) {
    // Every retained trace is intact: root + child span.
    EXPECT_EQ(trace.spans.size(), 2u);
    EXPECT_EQ(trace.status, 200);
  }
  EXPECT_EQ(log.Snapshot().size(), 16u);
  EXPECT_EQ(log.total_requests(), kThreads * kRequestsPerThread);
}

TEST(RequestScopeTest, GlobalTracerStillWorksOutsideRequests) {
  // A request scope must not capture spans that belong to a concurrent
  // pipeline trace session on another thread — and the global path keeps
  // working when no scope is installed.
  TraceSession session;
  {
    SURVEYOR_SPAN("pipeline.work");
  }
  EXPECT_EQ(session.Snapshot().size(), 1u);
}

TEST(RequestScopeTest, RequestSpansDoNotLeakIntoGlobalTracer) {
  TraceSession session;  // Global tracing on.
  RequestTracer tracer(AlwaysSample());
  {
    RequestScope scope(&tracer, nullptr, "GET", "/query");
    SURVEYOR_SPAN("request.work");
  }
  // The request's spans went to the request trace, not the session.
  EXPECT_TRUE(session.Snapshot().empty());
  ASSERT_EQ(tracer.Snapshot().size(), 1u);
  EXPECT_EQ(tracer.Snapshot()[0].spans.size(), 2u);
}

}  // namespace
}  // namespace obs
}  // namespace surveyor
