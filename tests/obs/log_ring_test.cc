#include "obs/log_ring.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/logging.h"

namespace surveyor {
namespace obs {
namespace {

TEST(LogRingTest, AppendsInSequenceOrder) {
  LogRing ring(8);
  ring.Append(LogSeverity::kInfo, "first");
  ring.Append(LogSeverity::kWarning, "second");
  const std::vector<LogRing::Line> lines = ring.Snapshot();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].sequence, 0);
  EXPECT_EQ(lines[0].text, "first");
  EXPECT_EQ(lines[0].severity, LogSeverity::kInfo);
  EXPECT_EQ(lines[1].sequence, 1);
  EXPECT_EQ(lines[1].text, "second");
  EXPECT_EQ(lines[1].severity, LogSeverity::kWarning);
}

TEST(LogRingTest, WraparoundKeepsNewestLines) {
  const size_t capacity = 4;
  LogRing ring(capacity);
  for (int i = 0; i < 10; ++i) {
    ring.Append(LogSeverity::kInfo, "line " + std::to_string(i));
  }
  const std::vector<LogRing::Line> lines = ring.Snapshot();
  ASSERT_EQ(lines.size(), capacity);
  // The newest `capacity` lines survive, oldest first.
  for (size_t i = 0; i < capacity; ++i) {
    const int expected = 10 - static_cast<int>(capacity) + static_cast<int>(i);
    EXPECT_EQ(lines[i].sequence, expected);
    EXPECT_EQ(lines[i].text, "line " + std::to_string(expected));
  }
  // Counters see every message, evicted or not.
  EXPECT_EQ(ring.MessageCount(LogSeverity::kInfo), 10);
  EXPECT_EQ(ring.TotalMessages(), 10);
}

TEST(LogRingTest, CountsPerSeverity) {
  LogRing ring;
  ring.Append(LogSeverity::kInfo, "i");
  ring.Append(LogSeverity::kInfo, "i");
  ring.Append(LogSeverity::kWarning, "w");
  ring.Append(LogSeverity::kError, "e");
  EXPECT_EQ(ring.MessageCount(LogSeverity::kInfo), 2);
  EXPECT_EQ(ring.MessageCount(LogSeverity::kWarning), 1);
  EXPECT_EQ(ring.MessageCount(LogSeverity::kError), 1);
  EXPECT_EQ(ring.MessageCount(LogSeverity::kFatal), 0);
  EXPECT_EQ(ring.TotalMessages(), 4);
}

TEST(LogRingTest, SetCapacityTruncatesFromFront) {
  LogRing ring(8);
  for (int i = 0; i < 6; ++i) {
    ring.Append(LogSeverity::kInfo, std::to_string(i));
  }
  ring.SetCapacity(2);
  std::vector<LogRing::Line> lines = ring.Snapshot();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "4");
  EXPECT_EQ(lines[1].text, "5");
  // Growing back does not resurrect evicted lines; new appends fill up to
  // the new capacity.
  ring.SetCapacity(4);
  ring.Append(LogSeverity::kInfo, "6");
  lines = ring.Snapshot();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines.back().text, "6");
}

TEST(LogRingTest, SetCapacityAfterWraparoundKeepsNewest) {
  LogRing ring(4);
  for (int i = 0; i < 11; ++i) {
    ring.Append(LogSeverity::kInfo, std::to_string(i));
  }
  // The ring has wrapped (write cursor mid-buffer); shrinking must keep
  // the newest lines in order regardless of the cursor position.
  ring.SetCapacity(2);
  std::vector<LogRing::Line> lines = ring.Snapshot();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "9");
  EXPECT_EQ(lines[1].text, "10");
  ring.Append(LogSeverity::kInfo, "11");
  lines = ring.Snapshot();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "10");
  EXPECT_EQ(lines[1].text, "11");
}

TEST(LogRingTest, ClearResetsEverything) {
  LogRing ring;
  ring.Append(LogSeverity::kError, "boom");
  ring.Clear();
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.TotalMessages(), 0);
  ring.Append(LogSeverity::kInfo, "fresh");
  EXPECT_EQ(ring.Snapshot().front().sequence, 0);
}

TEST(LogRingTest, PrometheusTextExposesSeverityCounters) {
  LogRing ring;
  ring.Append(LogSeverity::kInfo, "i");
  ring.Append(LogSeverity::kWarning, "w");
  ring.Append(LogSeverity::kWarning, "w");
  std::string text;
  ring.AppendPrometheusText(&text);
  EXPECT_NE(text.find("# TYPE surveyor_log_messages_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("surveyor_log_messages_total{severity=\"info\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("surveyor_log_messages_total{severity=\"warning\"} 2"),
            std::string::npos);
}

TEST(LogRingTest, GlobalTeeCapturesLogMacro) {
  LogRing::Global().Clear();
  LogRing::InstallGlobalTee();
  // INFO is below the default stderr threshold but must reach the ring.
  const int64_t before = LogRing::Global().MessageCount(LogSeverity::kInfo);
  SURVEYOR_LOG(Info) << "tee me";
  EXPECT_EQ(LogRing::Global().MessageCount(LogSeverity::kInfo), before + 1);
  const std::vector<LogRing::Line> lines = LogRing::Global().Snapshot();
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().text.find("tee me"), std::string::npos);

  LogRing::UninstallGlobalTee();
  SURVEYOR_LOG(Info) << "not seen";
  EXPECT_EQ(LogRing::Global().MessageCount(LogSeverity::kInfo), before + 1);
}

TEST(LogRingTest, ConcurrentAppendsKeepCountsExact) {
  const int kThreads = 8;
  const int kPerThread = 500;
  LogRing ring(16);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.Append(LogSeverity::kInfo,
                    "t" + std::to_string(t) + " " + std::to_string(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(ring.TotalMessages(), kThreads * kPerThread);
  const std::vector<LogRing::Line> lines = ring.Snapshot();
  EXPECT_EQ(lines.size(), 16u);
  // Sequences are unique and ascending even under contention.
  for (size_t i = 1; i < lines.size(); ++i) {
    EXPECT_LT(lines[i - 1].sequence, lines[i].sequence);
  }
}

}  // namespace
}  // namespace obs
}  // namespace surveyor
