#include "obs/resource_sampler.h"

#include <chrono>
#include <thread>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace surveyor {
namespace obs {
namespace {

TEST(ResourceSamplerTest, DirectSampleMatchesPlatformSupport) {
  const ResourceSample sample = SampleProcessResources();
  if (ResourceSamplingSupported()) {
    ASSERT_TRUE(sample.valid);
    // A live test process certainly has memory, CPU time, a few open
    // descriptors and at least one thread.
    EXPECT_GT(sample.rss_bytes, 0.0);
    EXPECT_GE(sample.peak_rss_bytes, sample.rss_bytes * 0.5);
    EXPECT_GE(sample.cpu_seconds, 0.0);
    EXPECT_GT(sample.open_fds, 0.0);
    EXPECT_GE(sample.num_threads, 1.0);
  } else {
    // Portable no-op: invalid sample, all zeros.
    EXPECT_FALSE(sample.valid);
    EXPECT_EQ(sample.rss_bytes, 0.0);
  }
}

TEST(ResourceSamplerTest, ConstructorSamplesSynchronously) {
  MetricRegistry registry;
  // interval 0 = no background thread; the constructor still samples once.
  ResourceSampler sampler(&registry, /*interval_seconds=*/0.0);
  if (!ResourceSamplingSupported()) GTEST_SKIP() << "/proc not available";
  EXPECT_GT(registry.GetGauge("surveyor_process_rss_bytes")->Value(), 0.0);
  EXPECT_GE(registry.GetGauge("surveyor_process_threads")->Value(), 1.0);
  EXPECT_GT(registry.GetGauge("surveyor_process_open_fds")->Value(), 0.0);
}

TEST(ResourceSamplerTest, BackgroundThreadUpdatesGauges) {
  if (!ResourceSamplingSupported()) GTEST_SKIP() << "/proc not available";
  MetricRegistry registry;
  Gauge* rss = registry.GetGauge("surveyor_process_rss_bytes");
  {
    ResourceSampler sampler(&registry, /*interval_seconds=*/0.01);
    // Clobber the constructor's sample; the background thread must
    // overwrite the sentinel within a few intervals.
    rss->Set(-1.0);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (rss->Value() < 0.0 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_GT(rss->Value(), 0.0);
}

TEST(ResourceSamplerTest, ExposesHelpTextInPrometheusOutput) {
  if (!ResourceSamplingSupported()) GTEST_SKIP() << "/proc not available";
  MetricRegistry registry;
  ResourceSampler sampler(&registry, /*interval_seconds=*/0.0);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# HELP surveyor_process_rss_bytes"), std::string::npos);
  EXPECT_NE(text.find("# TYPE surveyor_process_rss_bytes gauge"),
            std::string::npos);
  EXPECT_NE(text.find("surveyor_process_cpu_seconds_total"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace surveyor
