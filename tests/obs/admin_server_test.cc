#include "obs/admin_server.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define SURVEYOR_TEST_HAVE_SOCKETS 1
#endif

#include "gtest/gtest.h"
#include "obs/log_ring.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/stage.h"
#include "obs/trace.h"

namespace surveyor {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Socketless dispatch tests via Handle().

TEST(AdminServerHandleTest, HealthzAlwaysOk) {
  MetricRegistry registry;
  AdminServer server(&registry, nullptr, nullptr);
  const AdminResponse response = server.Handle("GET", "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");
}

TEST(AdminServerHandleTest, HealthzReportsDegradedButStays200) {
  MetricRegistry registry;
  StageTracker stage;
  AdminServer server(&registry, &stage, nullptr);
  EXPECT_EQ(server.Handle("GET", "/healthz").body, "ok\n");

  // Degraded is informational: the process is still healthy, so liveness
  // probes must not restart it.
  stage.SetDegraded(true);
  AdminResponse response = server.Handle("GET", "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "degraded\n");

  stage.SetDegraded(false);
  EXPECT_EQ(server.Handle("GET", "/healthz").body, "ok\n");
}

TEST(AdminServerHandleTest, StatuszCarriesTheDegradedFlag) {
  MetricRegistry registry;
  StageTracker stage;
  AdminServer server(&registry, &stage, nullptr);
  EXPECT_NE(server.Handle("GET", "/statusz").body.find("\"degraded\":false"),
            std::string::npos);
  stage.SetDegraded(true);
  EXPECT_NE(server.Handle("GET", "/statusz").body.find("\"degraded\":true"),
            std::string::npos);
}

TEST(AdminServerHandleTest, ReadyzFollowsStageMachine) {
  MetricRegistry registry;
  StageTracker stage;
  AdminServer server(&registry, &stage, nullptr);

  AdminResponse response = server.Handle("GET", "/readyz");
  EXPECT_EQ(response.status, 503);
  EXPECT_EQ(response.body, "starting\n");

  stage.SetStage(PipelineStage::kExtracting);
  EXPECT_EQ(server.Handle("GET", "/readyz").status, 503);
  EXPECT_EQ(server.Handle("GET", "/readyz").body, "extracting\n");

  stage.SetStage(PipelineStage::kFitting);
  EXPECT_EQ(server.Handle("GET", "/readyz").status, 503);

  stage.SetStage(PipelineStage::kServing);
  response = server.Handle("GET", "/readyz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "serving\n");

  stage.SetStage(PipelineStage::kDone);
  EXPECT_EQ(server.Handle("GET", "/readyz").status, 200);
}

TEST(AdminServerHandleTest, ReadyzWithoutTrackerReportsOk) {
  MetricRegistry registry;
  AdminServer server(&registry, nullptr, nullptr);
  EXPECT_EQ(server.Handle("GET", "/readyz").status, 200);
}

TEST(AdminServerHandleTest, MetricsServesRegistryAndLogCounters) {
  MetricRegistry registry;
  registry.GetCounter("surveyor_extraction_documents_total")->Increment(7);
  LogRing ring;
  ring.Append(LogSeverity::kWarning, "careful");
  AdminServer server(&registry, nullptr, &ring);

  const AdminResponse response = server.Handle("GET", "/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(response.body.find("surveyor_extraction_documents_total 7"),
            std::string::npos);
  EXPECT_NE(
      response.body.find("surveyor_log_messages_total{severity=\"warning\"} 1"),
      std::string::npos);
}

TEST(AdminServerHandleTest, MetricsJsonIsServed) {
  MetricRegistry registry;
  registry.GetCounter("surveyor_x_total")->Increment(3);
  AdminServer server(&registry, nullptr, nullptr);
  const AdminResponse response = server.Handle("GET", "/metrics.json");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("\"surveyor_x_total\""), std::string::npos);
}

TEST(AdminServerHandleTest, StatuszReportsStageSecondsAndActiveSpans) {
  MetricRegistry registry;
  StageTracker stage;
  stage.SetStage(PipelineStage::kExtracting);
  AdminServer server(&registry, &stage, nullptr);

  Tracer::Global().Clear();
  Tracer::Global().SetEnabled(true);
  {
    ScopedSpan span("statusz.live");
    const AdminResponse response = server.Handle("GET", "/statusz");
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.content_type, "application/json");
    EXPECT_NE(response.body.find("\"stage\":\"extracting\""),
              std::string::npos);
    EXPECT_NE(response.body.find("\"stage_seconds\""), std::string::npos);
    EXPECT_NE(response.body.find("statusz.live"), std::string::npos);
  }
  Tracer::Global().SetEnabled(false);
  // After the span ends it leaves the live stack.
  EXPECT_EQ(server.Handle("GET", "/statusz").body.find("statusz.live"),
            std::string::npos);
}

TEST(AdminServerHandleTest, LogzServesNewestLines) {
  MetricRegistry registry;
  LogRing ring(128);
  for (int i = 0; i < 20; ++i) {
    ring.Append(LogSeverity::kInfo, "line " + std::to_string(i));
  }
  AdminServerOptions options;
  options.max_log_lines = 5;
  AdminServer server(&registry, nullptr, &ring, options);
  const AdminResponse response = server.Handle("GET", "/logz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.find("line 14"), std::string::npos);
  EXPECT_NE(response.body.find("line 15"), std::string::npos);
  EXPECT_NE(response.body.find("line 19"), std::string::npos);
}

TEST(AdminServerHandleTest, UnknownPathIs404AndBadMethodIs405) {
  MetricRegistry registry;
  AdminServer server(&registry, nullptr, nullptr);
  EXPECT_EQ(server.Handle("GET", "/nope").status, 404);
  EXPECT_EQ(server.Handle("POST", "/metrics").status, 405);
  EXPECT_EQ(server.Handle("GET", "/").status, 200);
  // Query strings are ignored for routing.
  EXPECT_EQ(server.Handle("GET", "/healthz?verbose=1").status, 200);
}

// ---------------------------------------------------------------------------
// Request tracing: /tracez, /requestz, per-endpoint counters.

AdminServerOptions AlwaysTraceOptions() {
  AdminServerOptions options;
  options.trace_sample_rate = 1.0;
  options.slow_query_ms = 0.0;
  return options;
}

TEST(AdminServerTracezTest, ServesRetainedTracesAsJson) {
  MetricRegistry registry;
  AdminServer server(&registry, nullptr, nullptr, AlwaysTraceOptions());
  EXPECT_EQ(server.Handle("GET", "/healthz").status, 200);

  const AdminResponse response = server.Handle("GET", "/tracez");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("\"requests_started\":1"), std::string::npos);
  EXPECT_NE(response.body.find("\"requests_sampled\":1"), std::string::npos);
  EXPECT_NE(response.body.find("\"target\":\"/healthz\""), std::string::npos);
  EXPECT_NE(response.body.find("\"sampled\":true"), std::string::npos);
  EXPECT_NE(response.body.find("\"status\":200"), std::string::npos);
  // The root span "GET /healthz" is in the span tree.
  EXPECT_NE(response.body.find("\"name\":\"GET /healthz\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"children\":["), std::string::npos);
}

TEST(AdminServerTracezTest, TextFormatRendersSpanTree) {
  MetricRegistry registry;
  AdminServer server(&registry, nullptr, nullptr, AlwaysTraceOptions());
  EXPECT_EQ(server.Handle("GET", "/metrics").status, 200);

  const AdminResponse response =
      server.Handle("GET", "/tracez?format=text");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("trace "), std::string::npos);
  EXPECT_NE(response.body.find("GET /metrics status=200"),
            std::string::npos);
  EXPECT_NE(response.body.find(" sampled"), std::string::npos);
  EXPECT_NE(response.body.find("  GET /metrics "), std::string::npos);
}

TEST(AdminServerTracezTest, EmptyRingSaysSo) {
  MetricRegistry registry;
  AdminServerOptions options;
  options.trace_sample_rate = 0.0;
  options.slow_query_ms = 0.0;
  AdminServer server(&registry, nullptr, nullptr, options);
  EXPECT_EQ(server.Handle("GET", "/healthz").status, 200);
  EXPECT_EQ(server.Handle("GET", "/tracez?format=text").body,
            "no traces retained yet\n");
}

TEST(AdminServerTracezTest, SlowQueryTailCaptureWithoutSampling) {
  MetricRegistry registry;
  AdminServerOptions options;
  options.trace_sample_rate = 0.0;
  options.slow_query_ms = 1e-6;  // everything is "slow"
  AdminServer server(&registry, nullptr, nullptr, options);
  EXPECT_EQ(server.Handle("GET", "/healthz").status, 200);
  const AdminResponse response = server.Handle("GET", "/tracez");
  EXPECT_NE(response.body.find("\"slow\":true"), std::string::npos);
  EXPECT_NE(response.body.find("\"sampled\":false"), std::string::npos);
}

TEST(AdminServerRequestzTest, LogsEveryRequestNewestFirst) {
  MetricRegistry registry;
  // Sampling fully off: the access log still sees everything.
  AdminServerOptions options;
  options.trace_sample_rate = 0.0;
  options.slow_query_ms = 0.0;
  AdminServer server(&registry, nullptr, nullptr, options);
  EXPECT_EQ(server.Handle("GET", "/healthz").status, 200);
  EXPECT_EQ(server.Handle("GET", "/nope").status, 404);

  const AdminResponse response = server.Handle("GET", "/requestz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  // Newest first: /nope (the 404) before /healthz. /requestz itself is
  // logged only on completion, so it is absent from its own response.
  const size_t nope = response.body.find("\"target\":\"/nope\"");
  const size_t healthz = response.body.find("\"target\":\"/healthz\"");
  ASSERT_NE(nope, std::string::npos);
  ASSERT_NE(healthz, std::string::npos);
  EXPECT_LT(nope, healthz);
  EXPECT_NE(response.body.find("\"status\":404"), std::string::npos);
  EXPECT_NE(response.body.find("\"total_requests\":2"), std::string::npos);
}

TEST(AdminServerRequestzTest, SlowestNAndTextFormat) {
  MetricRegistry registry;
  AdminServer server(&registry, nullptr, nullptr, AlwaysTraceOptions());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(server.Handle("GET", "/healthz").status, 200);
  }
  AdminResponse response = server.Handle("GET", "/requestz?slowest=2");
  // Exactly 2 entries, slowest first.
  size_t count = 0;
  for (size_t pos = response.body.find("\"sequence\"");
       pos != std::string::npos;
       pos = response.body.find("\"sequence\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);

  response = server.Handle("GET", "/requestz?format=text&n=3");
  EXPECT_NE(response.body.find("GET /healthz status=200"),
            std::string::npos);
  EXPECT_NE(response.body.find(" trace="), std::string::npos);
}

TEST(AdminServerRequestzTest, RequestzLimitParameter) {
  MetricRegistry registry;
  AdminServerOptions options;
  options.trace_sample_rate = 0.0;
  options.slow_query_ms = 0.0;
  AdminServer server(&registry, nullptr, nullptr, options);
  for (int i = 0; i < 6; ++i) server.Handle("GET", "/healthz");
  const AdminResponse response = server.Handle("GET", "/requestz?n=2");
  size_t count = 0;
  for (size_t pos = response.body.find("\"sequence\"");
       pos != std::string::npos;
       pos = response.body.find("\"sequence\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NE(response.body.find("\"total_requests\":6"), std::string::npos);
}

TEST(AdminServerMetricsTest, ExposesPerEndpointAndTracerCounters) {
  MetricRegistry registry;
  AdminServer server(&registry, nullptr, nullptr, AlwaysTraceOptions());
  server.Handle("GET", "/healthz");
  server.Handle("GET", "/healthz");
  server.Handle("GET", "/missing");  // 404 -> error under "other"

  const AdminResponse response = server.Handle("GET", "/metrics");
  EXPECT_NE(response.body.find(
                "surveyor_admin_requests_total{endpoint=\"/healthz\"} 2"),
            std::string::npos);
  EXPECT_NE(response.body.find(
                "surveyor_admin_requests_total{endpoint=\"other\"} 1"),
            std::string::npos);
  EXPECT_NE(
      response.body.find(
          "surveyor_admin_request_errors_total{endpoint=\"other\"} 1"),
      std::string::npos);
  EXPECT_NE(response.body.find("surveyor_trace_requests_total 3"),
            std::string::npos);
  EXPECT_NE(response.body.find("surveyor_trace_requests_sampled_total 3"),
            std::string::npos);
  EXPECT_NE(response.body.find("surveyor_traces_kept_total 3"),
            std::string::npos);
}

TEST(AdminServerMetricsTest, RegisteredHandlerCountsUnderItsPrefix) {
  MetricRegistry registry;
  AdminServer server(&registry, nullptr, nullptr, AlwaysTraceOptions());
  server.AddHandler("/query", [](std::string_view, std::string_view,
                                 std::string_view) {
    AdminResponse response;
    response.body = "result\n";
    return response;
  });
  server.Handle("GET", "/query?entity=berlin");
  server.Handle("GET", "/query?entity=paris");

  const AdminResponse response = server.Handle("GET", "/metrics");
  EXPECT_NE(response.body.find(
                "surveyor_admin_requests_total{endpoint=\"/query\"} 2"),
            std::string::npos);
}

TEST(AdminServerTracezTest, DisabledAccessLogStillTraces) {
  MetricRegistry registry;
  AdminServerOptions options = AlwaysTraceOptions();
  options.access_log_capacity = 0;
  AdminServer server(&registry, nullptr, nullptr, options);
  server.Handle("GET", "/healthz");
  EXPECT_NE(server.Handle("GET", "/tracez").body.find("\"target\":\"/healthz\""),
            std::string::npos);
  // /requestz is empty (the log is disabled), but serves cleanly.
  EXPECT_EQ(server.Handle("GET", "/requestz?format=text").body,
            "no requests logged yet\n");
}

// ---------------------------------------------------------------------------
// Build info (/statusz) and the profiler endpoint (/profilez).

TEST(AdminServerBuildInfoTest, StatuszLeadsWithBuildInfo) {
  MetricRegistry registry;
  AdminServer server(&registry, nullptr, nullptr);
  const std::string body = server.Handle("GET", "/statusz").body;
  for (const char* key : {"\"build_info\"", "\"git_sha\"", "\"compiler\"",
                          "\"build_type\"", "\"sanitizer\""}) {
    EXPECT_NE(body.find(key), std::string::npos) << key << " missing: " << body;
  }
}

TEST(AdminServerProfilezTest, RejectsBadSeconds) {
  MetricRegistry registry;
  AdminServer server(&registry, nullptr, nullptr);
  for (const char* target :
       {"/profilez?seconds=0", "/profilez?seconds=-1", "/profilez?seconds=31",
        "/profilez?seconds=abc"}) {
    const AdminResponse response = server.Handle("GET", target);
    EXPECT_EQ(response.status, 400) << target;
    EXPECT_NE(response.body.find("seconds"), std::string::npos) << target;
  }
}

TEST(AdminServerProfilezTest, RejectsUnknownFormat) {
  MetricRegistry registry;
  AdminServer server(&registry, nullptr, nullptr);
  const AdminResponse response =
      server.Handle("GET", "/profilez?seconds=0.1&format=xml");
  EXPECT_EQ(response.status, 400);
  EXPECT_EQ(response.body, "format must be folded or json\n");
}

TEST(AdminServerProfilezTest, ServesAWindowOr501WhenUnsupported) {
  MetricRegistry registry;
  AdminServerOptions options;
  options.profiler_metrics = &registry;
  AdminServer server(&registry, nullptr, nullptr, options);
  const AdminResponse response =
      server.Handle("GET", "/profilez?seconds=0.2");
  if (!Profiler::SupportedOnThisBuild()) {
    EXPECT_EQ(response.status, 501);
    return;
  }
  ASSERT_EQ(response.status, 200) << response.body;
  // Folded output (possibly the "# no samples" placeholder if the process
  // was idle for the whole window): every line is "stack count" or a
  // comment, never empty.
  EXPECT_FALSE(response.body.empty());
  EXPECT_EQ(response.body.back(), '\n');

  const AdminResponse json =
      server.Handle("GET", "/profilez?seconds=0.2&format=json");
  ASSERT_EQ(json.status, 200) << json.body;
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("\"build_info\""), std::string::npos);
  EXPECT_NE(json.body.find("\"stage_attribution\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Real-socket tests.

#ifdef SURVEYOR_TEST_HAVE_SOCKETS

/// Minimal blocking HTTP GET against 127.0.0.1:port; returns the full
/// response (head + body) or "" on connection failure.
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[2048];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(AdminServerSocketTest, ScrapesMetricsWhileWorkersIncrement) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("surveyor_extraction_statements_total");
  AdminServer server(&registry, nullptr, nullptr);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  // Hammer the counter from workers while scraping over a real socket —
  // the situation the admin plane exists for.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([counter, &stop] {
      while (!stop.load()) counter->Increment();
    });
  }
  std::string last;
  for (int i = 0; i < 10; ++i) {
    last = HttpGet(server.port(), "/metrics");
    ASSERT_FALSE(last.empty());
    EXPECT_NE(last.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(last.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(last.find("# TYPE surveyor_extraction_statements_total counter"),
              std::string::npos);
  }
  stop.store(true);
  for (std::thread& worker : workers) worker.join();

  // The scraped value is a well-formed integer on its own sample line.
  const size_t pos = last.rfind("surveyor_extraction_statements_total ");
  ASSERT_NE(pos, std::string::npos);
  const long long scraped = std::stoll(
      last.substr(pos + std::string("surveyor_extraction_statements_total ")
                            .size()));
  EXPECT_GT(scraped, 0);
  EXPECT_LE(scraped, counter->Value());
  server.Stop();
}

TEST(AdminServerSocketTest, HealthzAndReadyzOverSocket) {
  MetricRegistry registry;
  StageTracker stage;
  AdminServer server(&registry, &stage, nullptr);
  ASSERT_TRUE(server.Start().ok());

  EXPECT_NE(HttpGet(server.port(), "/healthz").find("HTTP/1.1 200 OK"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/readyz").find("HTTP/1.1 503"),
            std::string::npos);
  stage.SetStage(PipelineStage::kDone);
  EXPECT_NE(HttpGet(server.port(), "/readyz").find("HTTP/1.1 200 OK"),
            std::string::npos);
  server.Stop();
}

TEST(AdminServerSocketTest, StopIsIdempotentAndRestartable) {
  MetricRegistry registry;
  AdminServer server(&registry, nullptr, nullptr);
  ASSERT_TRUE(server.Start().ok());
  const int first_port = server.port();
  EXPECT_FALSE(server.Start().ok());  // already running
  server.Stop();
  server.Stop();  // idempotent
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(HttpGet(server.port(), "/healthz").find("200 OK") !=
              std::string::npos);
  server.Stop();
  (void)first_port;
}

TEST(AdminServerSocketTest, MalformedRequestDoesNotWedgeTheServer) {
  MetricRegistry registry;
  AdminServer server(&registry, nullptr, nullptr);
  ASSERT_TRUE(server.Start().ok());

  // A client that connects and immediately disconnects.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server.port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    ::close(fd);
  }
  // The next well-formed request still succeeds.
  EXPECT_NE(HttpGet(server.port(), "/healthz").find("200 OK"),
            std::string::npos);
  server.Stop();
}

TEST(AdminServerSocketTest, ScrapesTracezAndRequestzMidLoad) {
  MetricRegistry registry;
  AdminServerOptions options;
  options.trace_sample_rate = 1.0;
  options.slow_query_ms = 0.0;
  AdminServer server(&registry, nullptr, nullptr, options);
  ASSERT_TRUE(server.Start().ok());

  // Load generators hammer /healthz over real sockets while we scrape the
  // tracing endpoints — the exact situation /tracez exists for.
  std::atomic<bool> stop{false};
  const int port = server.port();
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([port, &stop] {
      while (!stop.load()) {
        if (HttpGet(port, "/healthz").empty()) break;
      }
    });
  }

  bool saw_trace = false;
  bool saw_request = false;
  for (int i = 0; i < 20 && !(saw_trace && saw_request); ++i) {
    const std::string tracez = HttpGet(port, "/tracez");
    EXPECT_NE(tracez.find("HTTP/1.1 200 OK"), std::string::npos);
    if (tracez.find("\"sampled\":true") != std::string::npos) {
      saw_trace = true;
    }
    const std::string requestz = HttpGet(port, "/requestz");
    EXPECT_NE(requestz.find("HTTP/1.1 200 OK"), std::string::npos);
    if (requestz.find("\"target\":\"/healthz\"") != std::string::npos) {
      saw_request = true;
    }
  }
  stop.store(true);
  for (std::thread& client : clients) client.join();
  server.Stop();

  EXPECT_TRUE(saw_trace);
  EXPECT_TRUE(saw_request);
  EXPECT_GT(server.request_tracer().requests_sampled(), 0);
  EXPECT_GT(server.access_log().total_requests(), 0);
}

#endif  // SURVEYOR_TEST_HAVE_SOCKETS

}  // namespace
}  // namespace obs
}  // namespace surveyor
