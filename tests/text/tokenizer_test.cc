#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace surveyor {
namespace {

TEST(SentenceSplitterTest, SplitsOnTerminators) {
  const auto sentences = SplitSentences("A b. C d! E f? G");
  ASSERT_EQ(sentences.size(), 4u);
  EXPECT_EQ(sentences[0], "A b");
  EXPECT_EQ(sentences[1], "C d");
  EXPECT_EQ(sentences[2], "E f");
  EXPECT_EQ(sentences[3], "G");
}

TEST(SentenceSplitterTest, SkipsEmptySentences) {
  EXPECT_EQ(SplitSentences("a.. b.").size(), 2u);
  EXPECT_TRUE(SplitSentences("...").empty());
  EXPECT_TRUE(SplitSentences("").empty());
}

TEST(TokenizerTest, LowercasesAndTags) {
  Lexicon lexicon;
  lexicon.AddWord("big", Pos::kAdjective);
  const auto tokens = Tokenize("Chicago IS Big", lexicon);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "chicago");
  EXPECT_EQ(tokens[0].pos, Pos::kUnknown);
  EXPECT_EQ(tokens[1].text, "is");
  EXPECT_EQ(tokens[1].pos, Pos::kToBe);
  EXPECT_EQ(tokens[2].text, "big");
  EXPECT_EQ(tokens[2].pos, Pos::kAdjective);
}

TEST(TokenizerTest, ExpandsContractions) {
  Lexicon lexicon;
  const auto tokens = Tokenize("I don't know", lexicon);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].text, "do");
  EXPECT_EQ(tokens[1].pos, Pos::kAux);
  EXPECT_EQ(tokens[2].text, "n't");
  EXPECT_EQ(tokens[2].pos, Pos::kNegation);
}

TEST(TokenizerTest, ExpandsIsnt) {
  Lexicon lexicon;
  const auto tokens = Tokenize("it isn't", lexicon);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "is");
  EXPECT_EQ(tokens[2].text, "n't");
}

TEST(TokenizerTest, KeepsUnknownContractionWhole) {
  Lexicon lexicon;
  // "shan't" -> base "sha" unknown, kept whole.
  const auto tokens = Tokenize("shan't", lexicon);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "shan't");
}

TEST(TokenizerTest, EmitsCommaAsPunctuation) {
  Lexicon lexicon;
  const auto tokens = Tokenize("a, b", lexicon);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, ",");
  EXPECT_EQ(tokens[1].pos, Pos::kPunctuation);
}

TEST(TokenizerTest, DropsStrayCharacters) {
  Lexicon lexicon;
  const auto tokens = Tokenize("\"hello\" (world)", lexicon);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "world");
}

TEST(TokenizerTest, EmptyInput) {
  Lexicon lexicon;
  EXPECT_TRUE(Tokenize("", lexicon).empty());
  EXPECT_TRUE(Tokenize("   ", lexicon).empty());
}

TEST(TokenizerTest, HyphensAndDigitsStayInWords) {
  Lexicon lexicon;
  const auto tokens = Tokenize("well-known route66", lexicon);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "well-known");
  EXPECT_EQ(tokens[1].text, "route66");
}

}  // namespace
}  // namespace surveyor
