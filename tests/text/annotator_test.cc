#include "text/annotator.h"

#include <gtest/gtest.h>

#include "tests/text/text_test_util.h"

namespace surveyor {
namespace {

class AnnotatorTest : public testing::Test {
 protected:
  AnnotatedSentence Annotate(const std::string& sentence) {
    TextAnnotator annotator(&fixture_.kb, &fixture_.lexicon);
    return annotator.AnnotateSentence(sentence);
  }

  TextFixture fixture_;
};

TEST_F(AnnotatorTest, DocumentSplitsSentences) {
  TextAnnotator annotator(&fixture_.kb, &fixture_.lexicon);
  const AnnotatedDocument doc = annotator.AnnotateDocument(
      7, "san francisco is big. tiger is dangerous. ");
  EXPECT_EQ(doc.doc_id, 7);
  ASSERT_EQ(doc.sentences.size(), 2u);
  EXPECT_TRUE(doc.sentences[0].parsed);
  EXPECT_TRUE(doc.sentences[1].parsed);
}

TEST_F(AnnotatorTest, PredicateNominalCoreference) {
  // "snakes are dangerous animals": "animals" corefers with the snake.
  const AnnotatedSentence s = Annotate("snakes are dangerous animals");
  ASSERT_TRUE(s.parsed);
  int animals = -1;
  for (size_t i = 0; i < s.units.size(); ++i) {
    if (s.units[i].text == "animals") animals = static_cast<int>(i);
  }
  ASSERT_GE(animals, 0);
  EXPECT_EQ(s.units[animals].coref_entity, fixture_.snake);
  EXPECT_EQ(s.units[animals].ReferentEntity(), fixture_.snake);
}

TEST_F(AnnotatorTest, CoreferenceRequiresTypeMatch) {
  // "san francisco is a dangerous animal": type mismatch, no coreference.
  const AnnotatedSentence s = Annotate("san francisco is a dangerous animal");
  ASSERT_TRUE(s.parsed);
  for (const ParseUnit& unit : s.units) {
    if (unit.text == "animal") {
      EXPECT_EQ(unit.coref_entity, kInvalidEntity);
    }
  }
}

TEST_F(AnnotatorTest, CoreferenceMatchesSingularTypeNoun) {
  const AnnotatedSentence s = Annotate("san francisco is a big city");
  ASSERT_TRUE(s.parsed);
  bool found = false;
  for (const ParseUnit& unit : s.units) {
    if (unit.text == "city") {
      EXPECT_EQ(unit.coref_entity, fixture_.sf);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AnnotatorTest, NoCoreferenceWithoutEntitySubject) {
  const AnnotatedSentence s = Annotate("garden is a big city");
  ASSERT_TRUE(s.parsed);
  for (const ParseUnit& unit : s.units) {
    EXPECT_EQ(unit.coref_entity, kInvalidEntity);
  }
}

TEST_F(AnnotatorTest, UnparsedSentenceKeepsUnits) {
  const AnnotatedSentence s = Annotate("harbor of san francisco big is");
  EXPECT_FALSE(s.parsed);
  EXPECT_GT(s.units.size(), 0u);
  EXPECT_EQ(s.raw_text, "harbor of san francisco big is");
}

TEST_F(AnnotatorTest, EmptyDocument) {
  TextAnnotator annotator(&fixture_.kb, &fixture_.lexicon);
  const AnnotatedDocument doc = annotator.AnnotateDocument(1, "");
  EXPECT_TRUE(doc.sentences.empty());
}

}  // namespace
}  // namespace surveyor
