#ifndef SURVEYOR_TESTS_TEXT_TEXT_TEST_UTIL_H_
#define SURVEYOR_TESTS_TEXT_TEXT_TEST_UTIL_H_

#include "kb/knowledge_base.h"
#include "text/lexicon.h"

namespace surveyor {

/// Shared tiny world for text-pipeline tests: two types, a multi-word
/// entity, plural aliases, and an ambiguous name shared across types.
struct TextFixture {
  KnowledgeBase kb;
  Lexicon lexicon;
  TypeId city = kInvalidType;
  TypeId animal = kInvalidType;
  EntityId sf = kInvalidEntity;
  EntityId palo_alto = kInvalidEntity;
  EntityId snake = kInvalidEntity;
  EntityId tiger = kInvalidEntity;
  EntityId phoenix_city = kInvalidEntity;
  EntityId phoenix_animal = kInvalidEntity;

  TextFixture() {
    city = kb.AddType("city");
    animal = kb.AddType("animal");
    sf = kb.AddEntity("san francisco", city, /*popularity=*/10.0).value();
    palo_alto = kb.AddEntity("palo alto", city, 3.0).value();
    snake = kb.AddEntity("snake", animal, 5.0).value();
    tiger = kb.AddEntity("tiger", animal, 4.0).value();
    // Ambiguous alias: a city and an animal called "phoenix"; the city is
    // far more popular.
    phoenix_city = kb.AddEntity("phoenix", city, 8.0).value();
    phoenix_animal = kb.AddEntity("phoenix bird", animal, 0.5).value();
    EXPECT_TRUE(kb.AddAlias("phoenix", phoenix_animal).ok());
    EXPECT_TRUE(kb.AddAlias("sf", sf).ok());
    EXPECT_TRUE(kb.AddAlias("snakes", snake).ok());

    lexicon.AddNounWithPlural("city");
    lexicon.AddNounWithPlural("animal");
    for (const char* adjective :
         {"big", "cute", "dangerous", "bad", "warm", "southern", "fast",
          "exciting", "small", "populated"}) {
      lexicon.AddWord(adjective, Pos::kAdjective);
    }
    lexicon.AddWord("densely", Pos::kAdverb);
    for (const char* noun : {"parking", "harbor", "north", "mat", "garden"}) {
      lexicon.AddWord(noun, Pos::kNoun);
    }
    for (const char* verb : {"slept", "visit", "visited", "impressed",
                             "has", "love"}) {
      lexicon.AddWord(verb, Pos::kVerb);
    }
    for (const char* entity_word :
         {"san", "francisco", "palo", "alto", "snake", "tiger", "phoenix",
          "sf", "bird"}) {
      lexicon.AddWord(entity_word, Pos::kNoun);
    }
    lexicon.AddWord("snakes", Pos::kNoun);
  }
};

}  // namespace surveyor

#endif  // SURVEYOR_TESTS_TEXT_TEXT_TEST_UTIL_H_
