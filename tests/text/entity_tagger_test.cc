#include "text/entity_tagger.h"

#include <gtest/gtest.h>

#include "tests/text/text_test_util.h"
#include "text/tokenizer.h"

namespace surveyor {
namespace {

class EntityTaggerTest : public testing::Test {
 protected:
  std::vector<ParseUnit> Tag(const std::string& sentence) {
    EntityTagger tagger(&fixture_.kb);
    return tagger.Tag(Tokenize(sentence, fixture_.lexicon));
  }

  TextFixture fixture_;
};

TEST_F(EntityTaggerTest, ChunksMultiWordMention) {
  const auto units = Tag("san francisco is big");
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0].text, "san francisco");
  EXPECT_EQ(units[0].entity, fixture_.sf);
  EXPECT_EQ(units[0].pos, Pos::kNoun);
}

TEST_F(EntityTaggerTest, SingleTokenAlias) {
  const auto units = Tag("sf is big");
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0].entity, fixture_.sf);
}

TEST_F(EntityTaggerTest, PluralAliasResolves) {
  const auto units = Tag("snakes are dangerous");
  EXPECT_EQ(units[0].entity, fixture_.snake);
}

TEST_F(EntityTaggerTest, UnknownWordsStayUntagged) {
  const auto units = Tag("zorblax is big");
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0].entity, kInvalidEntity);
  EXPECT_EQ(units[0].pos, Pos::kUnknown);
}

TEST_F(EntityTaggerTest, AmbiguousAliasResolvedByPopularity) {
  // "phoenix" is a popular city and an obscure animal: popularity wins.
  const auto units = Tag("phoenix is big");
  EXPECT_EQ(units[0].entity, fixture_.phoenix_city);
}

TEST_F(EntityTaggerTest, AmbiguousAliasResolvedByTypeCue) {
  // The type cue "animal" overrides the popularity prior.
  const auto units = Tag("phoenix is a dangerous animal");
  EXPECT_EQ(units[0].entity, fixture_.phoenix_animal);
}

TEST_F(EntityTaggerTest, TypeCuePluralWorks) {
  const auto units = Tag("phoenix is one of the dangerous animals");
  EXPECT_EQ(units[0].entity, fixture_.phoenix_animal);
}

TEST_F(EntityTaggerTest, TooCloseAmbiguityLeftUnresolved) {
  // Two same-popularity candidates, no cue: must stay untagged.
  KnowledgeBase kb;
  const TypeId city = kb.AddType("city");
  const TypeId animal = kb.AddType("animal");
  const EntityId a = kb.AddEntity("springfield", city, 2.0).value();
  ASSERT_TRUE(kb.AddEntity("springfield bird", animal, 2.0).ok());
  ASSERT_TRUE(kb.AddAlias("springfield", kb.EntitiesByName("springfield bird")[0]).ok());
  (void)a;
  EntityTagger tagger(&kb);
  Lexicon lexicon;
  const auto units = tagger.Tag(Tokenize("springfield is big", lexicon));
  EXPECT_EQ(units[0].entity, kInvalidEntity);
  // But it is still chunked as a noun.
  EXPECT_EQ(units[0].pos, Pos::kNoun);
}

TEST_F(EntityTaggerTest, ResolveDirectly) {
  EntityTagger tagger(&fixture_.kb);
  std::unordered_set<std::string> no_context;
  EXPECT_EQ(tagger.Resolve("sf", no_context), fixture_.sf);
  EXPECT_EQ(tagger.Resolve("unknown-alias", no_context), kInvalidEntity);
  std::unordered_set<std::string> animal_context = {"animal"};
  EXPECT_EQ(tagger.Resolve("phoenix", animal_context), fixture_.phoenix_animal);
}

TEST_F(EntityTaggerTest, LongestMatchWins) {
  // "phoenix bird" must match the two-token alias, not "phoenix" alone.
  const auto units = Tag("phoenix bird is dangerous");
  EXPECT_EQ(units[0].text, "phoenix bird");
  EXPECT_EQ(units[0].entity, fixture_.phoenix_animal);
}

TEST_F(EntityTaggerTest, MentionsDoNotCrossPunctuation) {
  const auto units = Tag("san, francisco");
  // No "san francisco" chunk across the comma.
  for (const auto& unit : units) {
    EXPECT_NE(unit.text, "san francisco");
  }
}

}  // namespace
}  // namespace surveyor
