#include "text/lexicon.h"

#include <gtest/gtest.h>

namespace surveyor {
namespace {

TEST(LexiconTest, ClosedClassPreloaded) {
  Lexicon lexicon;
  EXPECT_EQ(lexicon.Lookup("is"), Pos::kToBe);
  EXPECT_EQ(lexicon.Lookup("are"), Pos::kToBe);
  EXPECT_EQ(lexicon.Lookup("seems"), Pos::kCopulaOther);
  EXPECT_EQ(lexicon.Lookup("think"), Pos::kOpinionVerb);
  EXPECT_EQ(lexicon.Lookup("do"), Pos::kAux);
  EXPECT_EQ(lexicon.Lookup("not"), Pos::kNegation);
  EXPECT_EQ(lexicon.Lookup("n't"), Pos::kNegation);
  EXPECT_EQ(lexicon.Lookup("never"), Pos::kNegation);
  EXPECT_EQ(lexicon.Lookup("a"), Pos::kDeterminer);
  EXPECT_EQ(lexicon.Lookup("for"), Pos::kPreposition);
  EXPECT_EQ(lexicon.Lookup("and"), Pos::kConjunction);
  EXPECT_EQ(lexicon.Lookup("that"), Pos::kComplementizer);
  EXPECT_EQ(lexicon.Lookup("i"), Pos::kPronoun);
  EXPECT_EQ(lexicon.Lookup("very"), Pos::kAdverb);
}

TEST(LexiconTest, UnknownWordsDefault) {
  Lexicon lexicon;
  EXPECT_EQ(lexicon.Lookup("zxqwv"), Pos::kUnknown);
  EXPECT_FALSE(lexicon.Contains("zxqwv"));
}

TEST(LexiconTest, AddWordCaseInsensitive) {
  Lexicon lexicon;
  lexicon.AddWord("Big", Pos::kAdjective);
  EXPECT_EQ(lexicon.Lookup("big"), Pos::kAdjective);
  EXPECT_EQ(lexicon.Lookup("BIG"), Pos::kAdjective);
}

TEST(LexiconTest, FirstRegistrationWins) {
  Lexicon lexicon;
  lexicon.AddWord("light", Pos::kAdjective);
  lexicon.AddWord("light", Pos::kNoun);
  EXPECT_EQ(lexicon.Lookup("light"), Pos::kAdjective);
  // Closed-class entries cannot be overridden.
  lexicon.AddWord("is", Pos::kNoun);
  EXPECT_EQ(lexicon.Lookup("is"), Pos::kToBe);
}

TEST(LexiconTest, PluralizeRules) {
  EXPECT_EQ(Lexicon::Pluralize("city"), "cities");
  EXPECT_EQ(Lexicon::Pluralize("animal"), "animals");
  EXPECT_EQ(Lexicon::Pluralize("fox"), "foxes");
  EXPECT_EQ(Lexicon::Pluralize("bus"), "buses");
  EXPECT_EQ(Lexicon::Pluralize("church"), "churches");
  EXPECT_EQ(Lexicon::Pluralize("dish"), "dishes");
  EXPECT_EQ(Lexicon::Pluralize("day"), "days");
  EXPECT_EQ(Lexicon::Pluralize("quiz"), "quizes");
}

TEST(LexiconTest, NounWithPluralRoundTrip) {
  Lexicon lexicon;
  const std::string plural = lexicon.AddNounWithPlural("city");
  EXPECT_EQ(plural, "cities");
  EXPECT_EQ(lexicon.Lookup("city"), Pos::kNoun);
  EXPECT_EQ(lexicon.Lookup("cities"), Pos::kNoun);
  EXPECT_EQ(lexicon.Singularize("cities"), "city");
  // Unregistered plurals map to themselves.
  EXPECT_EQ(lexicon.Singularize("dogs"), "dogs");
}

}  // namespace
}  // namespace surveyor
