#include "text/parser.h"

#include <gtest/gtest.h>

#include "tests/text/text_test_util.h"
#include "text/annotator.h"

namespace surveyor {
namespace {

class ParserTest : public testing::Test {
 protected:
  AnnotatedSentence Parse(const std::string& sentence) {
    TextAnnotator annotator(&fixture_.kb, &fixture_.lexicon);
    return annotator.AnnotateSentence(sentence);
  }

  static int FindUnit(const AnnotatedSentence& sentence,
                      const std::string& text) {
    for (size_t i = 0; i < sentence.units.size(); ++i) {
      if (sentence.units[i].text == text) return static_cast<int>(i);
    }
    return -1;
  }

  TextFixture fixture_;
};

TEST_F(ParserTest, SimpleCopularClause) {
  const AnnotatedSentence s = Parse("san francisco is big");
  ASSERT_TRUE(s.parsed);
  const int big = FindUnit(s, "big");
  const int sf = FindUnit(s, "san francisco");
  const int is = FindUnit(s, "is");
  ASSERT_GE(big, 0);
  ASSERT_GE(sf, 0);
  EXPECT_EQ(s.tree.root(), big);
  EXPECT_EQ(s.tree.rel(sf), DepRel::kNsubj);
  EXPECT_EQ(s.tree.head(sf), big);
  EXPECT_EQ(s.tree.rel(is), DepRel::kCop);
}

TEST_F(ParserTest, NegatedCopularClause) {
  const AnnotatedSentence s = Parse("palo alto is not big");
  ASSERT_TRUE(s.parsed);
  const int big = FindUnit(s, "big");
  const int neg = FindUnit(s, "not");
  EXPECT_EQ(s.tree.head(neg), big);
  EXPECT_EQ(s.tree.rel(neg), DepRel::kNeg);
}

TEST_F(ParserTest, AdverbAttachesToAdjective) {
  const AnnotatedSentence s = Parse("san francisco is very big");
  ASSERT_TRUE(s.parsed);
  const int big = FindUnit(s, "big");
  const int very = FindUnit(s, "very");
  EXPECT_EQ(s.tree.head(very), big);
  EXPECT_EQ(s.tree.rel(very), DepRel::kAdvmod);
}

TEST_F(ParserTest, PredicateNominal) {
  const AnnotatedSentence s = Parse("san francisco is a big city");
  ASSERT_TRUE(s.parsed);
  const int city = FindUnit(s, "city");
  const int big = FindUnit(s, "big");
  const int a = FindUnit(s, "a");
  const int sf = FindUnit(s, "san francisco");
  EXPECT_EQ(s.tree.root(), city);
  EXPECT_EQ(s.tree.rel(big), DepRel::kAmod);
  EXPECT_EQ(s.tree.head(big), city);
  EXPECT_EQ(s.tree.rel(a), DepRel::kDet);
  EXPECT_EQ(s.tree.rel(sf), DepRel::kNsubj);
}

TEST_F(ParserTest, NegatedPredicateNominal) {
  const AnnotatedSentence s = Parse("palo alto is not a big city");
  ASSERT_TRUE(s.parsed);
  const int city = FindUnit(s, "city");
  const int neg = FindUnit(s, "not");
  EXPECT_EQ(s.tree.head(neg), city);
  EXPECT_EQ(s.tree.rel(neg), DepRel::kNeg);
}

TEST_F(ParserTest, EmbeddedClause) {
  const AnnotatedSentence s = Parse("i think that san francisco is big");
  ASSERT_TRUE(s.parsed);
  const int think = FindUnit(s, "think");
  const int big = FindUnit(s, "big");
  const int that = FindUnit(s, "that");
  EXPECT_EQ(s.tree.root(), think);
  EXPECT_EQ(s.tree.rel(big), DepRel::kCcomp);
  EXPECT_EQ(s.tree.head(big), think);
  EXPECT_EQ(s.tree.rel(that), DepRel::kMark);
  EXPECT_EQ(s.tree.head(that), big);
}

TEST_F(ParserTest, DoubleNegationFigureFive) {
  // "I don't think that snakes are never dangerous" (paper Fig. 5).
  const AnnotatedSentence s =
      Parse("i don't think that snakes are never dangerous");
  ASSERT_TRUE(s.parsed);
  const int think = FindUnit(s, "think");
  const int dangerous = FindUnit(s, "dangerous");
  const int nt = FindUnit(s, "n't");
  const int never = FindUnit(s, "never");
  const int do_unit = FindUnit(s, "do");
  EXPECT_EQ(s.tree.root(), think);
  EXPECT_EQ(s.tree.rel(nt), DepRel::kNeg);
  EXPECT_EQ(s.tree.head(nt), think);
  EXPECT_EQ(s.tree.rel(do_unit), DepRel::kAux);
  EXPECT_EQ(s.tree.rel(never), DepRel::kNeg);
  EXPECT_EQ(s.tree.head(never), dangerous);
  EXPECT_EQ(s.tree.rel(dangerous), DepRel::kCcomp);
}

TEST_F(ParserTest, AdjectiveConjunction) {
  const AnnotatedSentence s = Parse("tiger is a fast and exciting animal");
  ASSERT_TRUE(s.parsed);
  const int fast = FindUnit(s, "fast");
  const int exciting = FindUnit(s, "exciting");
  const int and_unit = FindUnit(s, "and");
  const int animal = FindUnit(s, "animal");
  EXPECT_EQ(s.tree.rel(fast), DepRel::kAmod);
  EXPECT_EQ(s.tree.head(fast), animal);
  EXPECT_EQ(s.tree.rel(exciting), DepRel::kConj);
  EXPECT_EQ(s.tree.head(exciting), fast);
  EXPECT_EQ(s.tree.rel(and_unit), DepRel::kCc);
}

TEST_F(ParserTest, ConjunctionInComplement) {
  const AnnotatedSentence s = Parse("tiger is fast and exciting");
  ASSERT_TRUE(s.parsed);
  const int fast = FindUnit(s, "fast");
  const int exciting = FindUnit(s, "exciting");
  EXPECT_EQ(s.tree.root(), fast);
  EXPECT_EQ(s.tree.rel(exciting), DepRel::kConj);
}

TEST_F(ParserTest, PrepositionalConstriction) {
  const AnnotatedSentence s = Parse("san francisco is bad for parking");
  ASSERT_TRUE(s.parsed);
  const int bad = FindUnit(s, "bad");
  const int for_unit = FindUnit(s, "for");
  const int parking = FindUnit(s, "parking");
  EXPECT_EQ(s.tree.root(), bad);
  EXPECT_EQ(s.tree.rel(for_unit), DepRel::kPrep);
  EXPECT_EQ(s.tree.head(for_unit), bad);
  EXPECT_EQ(s.tree.rel(parking), DepRel::kPobj);
  EXPECT_EQ(s.tree.head(parking), for_unit);
}

TEST_F(ParserTest, PrepositionOnPredicateNominal) {
  const AnnotatedSentence s = Parse("san francisco is a big city in the north");
  ASSERT_TRUE(s.parsed);
  const int city = FindUnit(s, "city");
  const int in = FindUnit(s, "in");
  EXPECT_EQ(s.tree.rel(in), DepRel::kPrep);
  EXPECT_EQ(s.tree.head(in), city);
}

TEST_F(ParserTest, AttributiveSubject) {
  const AnnotatedSentence s = Parse("the big san francisco impressed the garden");
  ASSERT_TRUE(s.parsed);
  const int big = FindUnit(s, "big");
  const int sf = FindUnit(s, "san francisco");
  const int verb = FindUnit(s, "impressed");
  EXPECT_EQ(s.tree.root(), verb);
  EXPECT_EQ(s.tree.rel(big), DepRel::kAmod);
  EXPECT_EQ(s.tree.head(big), sf);
  EXPECT_EQ(s.tree.rel(sf), DepRel::kNsubj);
}

TEST_F(ParserTest, VerbClauseWithObjectAndPp) {
  const AnnotatedSentence s = Parse("we visited san francisco during the garden");
  ASSERT_TRUE(s.parsed);
  const int verb = FindUnit(s, "visited");
  const int sf = FindUnit(s, "san francisco");
  const int during = FindUnit(s, "during");
  EXPECT_EQ(s.tree.root(), verb);
  EXPECT_EQ(s.tree.rel(sf), DepRel::kDobj);
  EXPECT_EQ(s.tree.rel(during), DepRel::kPrep);
  EXPECT_EQ(s.tree.head(during), verb);
}

TEST_F(ParserTest, SeemsCopula) {
  const AnnotatedSentence s = Parse("tiger seems dangerous");
  ASSERT_TRUE(s.parsed);
  const int dangerous = FindUnit(s, "dangerous");
  const int seems = FindUnit(s, "seems");
  EXPECT_EQ(s.tree.root(), dangerous);
  EXPECT_EQ(s.tree.rel(seems), DepRel::kCop);
}

TEST_F(ParserTest, SmallClause) {
  // The paper's opening example: "I find kittens cute".
  const AnnotatedSentence s = Parse("i find snakes dangerous");
  ASSERT_TRUE(s.parsed);
  const int find = FindUnit(s, "find");
  const int snakes = FindUnit(s, "snakes");
  const int dangerous = FindUnit(s, "dangerous");
  EXPECT_EQ(s.tree.root(), find);
  EXPECT_EQ(s.tree.rel(dangerous), DepRel::kXcomp);
  EXPECT_EQ(s.tree.head(dangerous), find);
  EXPECT_EQ(s.tree.rel(snakes), DepRel::kNsubj);
  EXPECT_EQ(s.tree.head(snakes), dangerous);
}

TEST_F(ParserTest, NegatedSmallClause) {
  const AnnotatedSentence s = Parse("i don't find snakes dangerous");
  ASSERT_TRUE(s.parsed);
  const int find = FindUnit(s, "find");
  const int nt = FindUnit(s, "n't");
  EXPECT_EQ(s.tree.rel(nt), DepRel::kNeg);
  EXPECT_EQ(s.tree.head(nt), find);
}

TEST_F(ParserTest, SmallClauseWithAdverb) {
  const AnnotatedSentence s = Parse("we consider tiger very dangerous");
  ASSERT_TRUE(s.parsed);
  const int very = FindUnit(s, "very");
  const int dangerous = FindUnit(s, "dangerous");
  EXPECT_EQ(s.tree.head(very), dangerous);
}

TEST_F(ParserTest, UnparseableSentenceFlagged) {
  // Subject NP with a PP is outside the grammar.
  const AnnotatedSentence s = Parse("the harbor of san francisco is big");
  EXPECT_FALSE(s.parsed);
  // Units are still available for statistics.
  EXPECT_FALSE(s.units.empty());
}

TEST_F(ParserTest, GarbageSentenceFlagged) {
  EXPECT_FALSE(Parse("harbor harbor harbor").parsed);
  EXPECT_FALSE(Parse("and").parsed);
}

TEST_F(ParserTest, EmptySentence) {
  const AnnotatedSentence s = Parse("");
  EXPECT_FALSE(s.parsed);
}

TEST_F(ParserTest, ValidatedTreeOnEveryParse) {
  for (const char* text : {
           "san francisco is big",
           "palo alto is not a big city",
           "i don't think that snakes are never dangerous",
           "tiger is fast and exciting",
           "san francisco is bad for parking",
       }) {
    const AnnotatedSentence s = Parse(text);
    ASSERT_TRUE(s.parsed) << text;
    EXPECT_TRUE(s.tree.Validate().ok()) << text;
  }
}

}  // namespace
}  // namespace surveyor
