// Tests for corpus and lexicon (de)serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "text/document.h"
#include "text/lexicon_io.h"

namespace surveyor {
namespace {

TEST(CorpusIoTest, RoundTrip) {
  std::vector<RawDocument> corpus;
  RawDocument a;
  a.doc_id = 7;
  a.domain = "us";
  a.text = "kitten is cute. tiger is big. ";
  RawDocument b;
  b.doc_id = 8;
  b.text = "palo alto is not big. ";
  corpus.push_back(a);
  corpus.push_back(b);

  std::stringstream stream;
  ASSERT_TRUE(SaveCorpus(corpus, stream).ok());
  auto loaded = LoadCorpus(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].doc_id, 7);
  EXPECT_EQ((*loaded)[0].domain, "us");
  EXPECT_EQ((*loaded)[0].text, a.text);
  EXPECT_EQ((*loaded)[1].domain, "");
}

TEST(CorpusIoTest, RejectsTabsInText) {
  std::vector<RawDocument> corpus(1);
  corpus[0].text = "a\tb";
  std::stringstream stream;
  EXPECT_FALSE(SaveCorpus(corpus, stream).ok());
}

TEST(CorpusIoTest, RejectsMalformedLines) {
  std::stringstream missing_fields("1\tonly-two-fields\n");
  EXPECT_FALSE(LoadCorpus(missing_fields).ok());
  std::stringstream bad_id("x\tus\ttext\n");
  EXPECT_FALSE(LoadCorpus(bad_id).ok());
}

TEST(CorpusIoTest, SkipsComments) {
  std::stringstream stream("# header\n1\t\thello there. \n");
  auto loaded = LoadCorpus(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
}

TEST(DomainFilterTest, FiltersAndPassesThrough) {
  std::vector<RawDocument> corpus(3);
  corpus[0].domain = "us";
  corpus[1].domain = "cn";
  corpus[2].domain = "us";
  EXPECT_EQ(FilterByDomain(corpus, "us").size(), 2u);
  EXPECT_EQ(FilterByDomain(corpus, "cn").size(), 1u);
  EXPECT_EQ(FilterByDomain(corpus, "de").size(), 0u);
  EXPECT_EQ(FilterByDomain(corpus, "").size(), 3u);  // empty = everything
}

TEST(LexiconIoTest, PosNameRoundTrip) {
  for (Pos pos : {Pos::kNoun, Pos::kAdjective, Pos::kAdverb, Pos::kVerb,
                  Pos::kSmallClauseVerb, Pos::kUnknown}) {
    auto parsed = PosFromName(std::string(PosName(pos)));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, pos);
  }
  EXPECT_FALSE(PosFromName("NOT_A_POS").ok());
}

TEST(LexiconIoTest, RoundTripPreservesVocabulary) {
  Lexicon lexicon;
  lexicon.AddWord("cute", Pos::kAdjective);
  lexicon.AddWord("densely", Pos::kAdverb);
  lexicon.AddWord("kitten", Pos::kNoun);
  lexicon.AddWord("visited", Pos::kVerb);
  lexicon.AddNounWithPlural("city");

  std::stringstream stream;
  ASSERT_TRUE(SaveLexicon(lexicon, stream).ok());
  auto loaded = LoadLexicon(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->Lookup("cute"), Pos::kAdjective);
  EXPECT_EQ(loaded->Lookup("densely"), Pos::kAdverb);
  EXPECT_EQ(loaded->Lookup("kitten"), Pos::kNoun);
  EXPECT_EQ(loaded->Lookup("visited"), Pos::kVerb);
  EXPECT_EQ(loaded->Lookup("cities"), Pos::kNoun);
  EXPECT_EQ(loaded->Singularize("cities"), "city");
  // Closed-class words come back through the built-in table.
  EXPECT_EQ(loaded->Lookup("is"), Pos::kToBe);
  EXPECT_EQ(loaded->Lookup("n't"), Pos::kNegation);
}

TEST(LexiconIoTest, SavedFormIsStable) {
  Lexicon lexicon;
  lexicon.AddWord("zeta", Pos::kAdjective);
  lexicon.AddWord("alpha", Pos::kNoun);
  std::stringstream a, b;
  ASSERT_TRUE(SaveLexicon(lexicon, a).ok());
  ASSERT_TRUE(SaveLexicon(lexicon, b).ok());
  EXPECT_EQ(a.str(), b.str());
  // Sorted: alpha before zeta.
  EXPECT_LT(a.str().find("alpha"), a.str().find("zeta"));
}

TEST(LexiconIoTest, LoadRejectsGarbage) {
  std::stringstream unknown_kind("frobnicate\tx\ty\n");
  EXPECT_FALSE(LoadLexicon(unknown_kind).ok());
  std::stringstream bad_pos("word\tfoo\tNOT_A_POS\n");
  EXPECT_FALSE(LoadLexicon(bad_pos).ok());
  std::stringstream wrong_arity("word\tfoo\n");
  EXPECT_FALSE(LoadLexicon(wrong_arity).ok());
}

}  // namespace
}  // namespace surveyor
