#include "text/document_source.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <set>
#include <thread>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "surveyor/pipeline.h"
#include "util/fault.h"

namespace surveyor {
namespace {

TEST(VectorDocumentSourceTest, StreamsAllDocuments) {
  std::vector<RawDocument> corpus(5);
  for (size_t i = 0; i < corpus.size(); ++i) {
    corpus[i].doc_id = static_cast<int64_t>(i);
  }
  VectorDocumentSource source(&corpus);
  for (size_t i = 0; i < corpus.size(); ++i) {
    auto doc = source.Next();
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->doc_id, static_cast<int64_t>(i));
  }
  EXPECT_FALSE(source.Next().has_value());
  EXPECT_FALSE(source.Next().has_value());  // stays exhausted
}

TEST(VectorDocumentSourceTest, ConcurrentPullsSeeEachDocumentOnce) {
  std::vector<RawDocument> corpus(1000);
  for (size_t i = 0; i < corpus.size(); ++i) {
    corpus[i].doc_id = static_cast<int64_t>(i);
  }
  VectorDocumentSource source(&corpus);
  std::mutex mutex;
  std::set<int64_t> seen;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        auto doc = source.Next();
        if (!doc.has_value()) return;
        std::lock_guard<std::mutex> lock(mutex);
        EXPECT_TRUE(seen.insert(doc->doc_id).second);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(seen.size(), corpus.size());
}

TEST(FileDocumentSourceTest, StreamsCorpusFile) {
  const std::string path = testing::TempDir() + "/stream_corpus.tsv";
  {
    std::ofstream os(path);
    os << "# header\n";
    os << "1\tus\thello there. \n";
    os << "2\t\tsecond doc. \n";
  }
  FileDocumentSource source(path);
  ASSERT_TRUE(source.status().ok());
  auto first = source.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->doc_id, 1);
  EXPECT_EQ(first->domain, "us");
  auto second = source.Next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->domain, "");
  EXPECT_FALSE(source.Next().has_value());
  EXPECT_TRUE(source.status().ok());
}

TEST(FileDocumentSourceTest, ReportsErrors) {
  FileDocumentSource missing("/nonexistent/corpus.tsv");
  EXPECT_FALSE(missing.status().ok());
  EXPECT_FALSE(missing.Next().has_value());

  const std::string path = testing::TempDir() + "/bad_corpus.tsv";
  {
    std::ofstream os(path);
    os << "not-tab-separated\n";
  }
  FileDocumentSource bad(path);
  ASSERT_TRUE(bad.status().ok());
  EXPECT_FALSE(bad.Next().has_value());
  EXPECT_FALSE(bad.status().ok());
}

TEST(FileDocumentSourceTest, QuarantineModeSkipsCorruptLines) {
  const std::string path = testing::TempDir() + "/quarantine_corpus.tsv";
  {
    std::ofstream os(path);
    os << "1\tus\tfirst doc. \n";
    os << "not-tab-separated\n";
    os << "not_a_number\tus\ttext. \n";
    os << "2\t\tsecond doc. \n";
  }
  FileDocumentSourceOptions options;
  options.quarantine_corrupt = true;
  FileDocumentSource source(path, options);
  ASSERT_TRUE(source.status().ok());
  auto first = source.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->doc_id, 1);
  auto second = source.Next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->doc_id, 2);
  EXPECT_FALSE(source.Next().has_value());
  // The stream ends healthy; the damage shows up in the counters.
  EXPECT_TRUE(source.status().ok());
  EXPECT_EQ(source.counters().quarantined_documents, 2);
  EXPECT_EQ(source.counters().read_retries, 0);
}

TEST(FileDocumentSourceTest, TransientReadFaultsAreRetriedAndCounted) {
  const std::string path = testing::TempDir() + "/retry_corpus.tsv";
  {
    std::ofstream os(path);
    for (int i = 0; i < 20; ++i) os << i << "\tus\tdoc text. \n";
  }
  // Single-threaded pulls make the shared trigger stream deterministic:
  // this seed recovers every fault within the retry budget.
  ScopedFaults faults("doc_read:0.3", /*seed=*/3);
  FileDocumentSourceOptions options;
  options.read_retry.initial_backoff_seconds = 1e-6;
  options.read_retry.max_backoff_seconds = 1e-5;
  FileDocumentSource source(path, options);
  int streamed = 0;
  while (source.Next().has_value()) ++streamed;
  EXPECT_EQ(streamed, 20);
  EXPECT_TRUE(source.status().ok());
  EXPECT_GT(source.counters().read_retries, 0);
  EXPECT_EQ(source.counters().read_retries,
            FaultInjector::Global().StatsFor("doc_read").injected);
}

TEST(FileDocumentSourceTest, ExhaustedReadRetriesEndTheStreamWithError) {
  const std::string path = testing::TempDir() + "/exhausted_corpus.tsv";
  {
    std::ofstream os(path);
    os << "1\tus\tdoc text. \n";
  }
  ScopedFaults faults("doc_read:1");  // every attempt fails
  FileDocumentSourceOptions options;
  options.read_retry.max_attempts = 2;
  options.read_retry.initial_backoff_seconds = 1e-6;
  FileDocumentSource source(path, options);
  EXPECT_FALSE(source.Next().has_value());
  const Status status = source.status();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("read failed"), std::string::npos);
}

TEST(StreamingPipelineTest, MatchesInMemoryRun) {
  World world = World::Generate(MakeTinyWorldConfig()).value();
  GeneratorOptions options;
  options.author_population = 5000;
  const auto corpus = CorpusGenerator(&world, options).Generate();

  SurveyorConfig config;
  config.min_statements = 20;
  SurveyorPipeline pipeline(&world.kb(), &world.lexicon(), config);

  auto in_memory = pipeline.Run(corpus);
  VectorDocumentSource source(&corpus);
  auto streamed = pipeline.RunStreaming(source);
  ASSERT_TRUE(in_memory.ok());
  ASSERT_TRUE(streamed.ok());

  EXPECT_EQ(in_memory->stats.num_documents, streamed->stats.num_documents);
  EXPECT_EQ(in_memory->stats.num_statements, streamed->stats.num_statements);
  EXPECT_EQ(in_memory->stats.num_opinions, streamed->stats.num_opinions);
  ASSERT_EQ(in_memory->pairs.size(), streamed->pairs.size());
  for (size_t p = 0; p < in_memory->pairs.size(); ++p) {
    EXPECT_EQ(in_memory->pairs[p].evidence.counts,
              streamed->pairs[p].evidence.counts);
    EXPECT_EQ(in_memory->pairs[p].polarity, streamed->pairs[p].polarity);
  }
}

TEST(StreamingPipelineTest, RunsFromDiskEndToEnd) {
  World world = World::Generate(MakeTinyWorldConfig()).value();
  GeneratorOptions options;
  options.author_population = 4000;
  const auto corpus = CorpusGenerator(&world, options).Generate();
  const std::string path = testing::TempDir() + "/full_corpus.tsv";
  ASSERT_TRUE(SaveCorpusToFile(corpus, path).ok());

  SurveyorConfig config;
  config.min_statements = 20;
  SurveyorPipeline pipeline(&world.kb(), &world.lexicon(), config);
  FileDocumentSource source(path);
  auto result = pipeline.RunStreaming(source);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(source.status().ok());
  EXPECT_EQ(result->stats.num_documents,
            static_cast<int64_t>(corpus.size()));
  EXPECT_GT(result->stats.num_opinions, 0);
}

}  // namespace
}  // namespace surveyor
