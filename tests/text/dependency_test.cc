#include "text/dependency.h"

#include <gtest/gtest.h>

namespace surveyor {
namespace {

TEST(DependencyTreeTest, BasicArcs) {
  // "snakes are dangerous": units 0=snakes 1=are 2=dangerous
  DependencyTree tree(3);
  tree.SetRoot(2);
  tree.SetArc(0, 2, DepRel::kNsubj);
  tree.SetArc(1, 2, DepRel::kCop);
  EXPECT_EQ(tree.root(), 2);
  EXPECT_EQ(tree.head(0), 2);
  EXPECT_EQ(tree.rel(0), DepRel::kNsubj);
  EXPECT_EQ(tree.head(2), -1);
  EXPECT_EQ(tree.children(2).size(), 2u);
  EXPECT_TRUE(tree.HasChildWithRel(2, DepRel::kCop));
  EXPECT_FALSE(tree.HasChildWithRel(2, DepRel::kNeg));
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(DependencyTreeTest, ChildrenWithRel) {
  DependencyTree tree(4);
  tree.SetRoot(0);
  tree.SetArc(1, 0, DepRel::kAmod);
  tree.SetArc(2, 0, DepRel::kAmod);
  tree.SetArc(3, 0, DepRel::kDet);
  EXPECT_EQ(tree.ChildrenWithRel(0, DepRel::kAmod), (std::vector<int>{1, 2}));
  EXPECT_EQ(tree.ChildrenWithRel(0, DepRel::kDet), (std::vector<int>{3}));
  EXPECT_TRUE(tree.ChildrenWithRel(0, DepRel::kNeg).empty());
}

TEST(DependencyTreeTest, ReattachMovesChild) {
  DependencyTree tree(3);
  tree.SetRoot(0);
  tree.SetArc(2, 0, DepRel::kAmod);
  tree.SetArc(1, 0, DepRel::kDet);
  tree.SetArc(2, 1, DepRel::kAdvmod);  // move 2 under 1
  EXPECT_EQ(tree.head(2), 1);
  EXPECT_FALSE(tree.HasChildWithRel(0, DepRel::kAmod));
  EXPECT_TRUE(tree.HasChildWithRel(1, DepRel::kAdvmod));
}

TEST(DependencyTreeTest, PathToRoot) {
  // chain: 3 -> 2 -> 1 -> 0(root)
  DependencyTree tree(4);
  tree.SetRoot(0);
  tree.SetArc(1, 0, DepRel::kCcomp);
  tree.SetArc(2, 1, DepRel::kAmod);
  tree.SetArc(3, 2, DepRel::kAdvmod);
  EXPECT_EQ(tree.PathToRoot(3), (std::vector<int>{3, 2, 1, 0}));
  EXPECT_EQ(tree.PathToRoot(0), (std::vector<int>{0}));
}

TEST(DependencyTreeTest, PathToRootDetached) {
  DependencyTree tree(3);
  tree.SetRoot(0);
  tree.SetArc(1, 0, DepRel::kDet);
  // Unit 2 never attached.
  EXPECT_TRUE(tree.PathToRoot(2).empty());
}

TEST(DependencyTreeTest, ValidateRejectsUnattached) {
  DependencyTree tree(2);
  tree.SetRoot(0);
  EXPECT_FALSE(tree.Validate().ok());
  tree.SetArc(1, 0, DepRel::kDet);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(DependencyTreeTest, ValidateRejectsNoRoot) {
  DependencyTree tree(1);
  EXPECT_FALSE(tree.Validate().ok());
}

TEST(DependencyTreeTest, RelNames) {
  EXPECT_EQ(DepRelName(DepRel::kNsubj), "nsubj");
  EXPECT_EQ(DepRelName(DepRel::kAmod), "amod");
  EXPECT_EQ(DepRelName(DepRel::kNeg), "neg");
  EXPECT_EQ(DepRelName(DepRel::kCcomp), "ccomp");
}

}  // namespace
}  // namespace surveyor
