#include "model/em.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace surveyor {
namespace {

/// Draws counts for `num_entities` entities from the model's own
/// generative story with the given true parameters and prevalence.
struct SyntheticData {
  std::vector<EvidenceCounts> counts;
  std::vector<bool> truth;  // dominant opinion positive?
};

SyntheticData DrawFromModel(const ModelParams& params, double prevalence,
                            size_t num_entities, uint64_t seed) {
  Rng rng(seed);
  const PoissonRates rates = RatesFromParams(params);
  SyntheticData data;
  data.counts.resize(num_entities);
  data.truth.resize(num_entities);
  for (size_t i = 0; i < num_entities; ++i) {
    const bool positive = rng.Bernoulli(prevalence);
    data.truth[i] = positive;
    data.counts[i].positive =
        rng.Poisson(positive ? rates.pos_given_pos : rates.pos_given_neg);
    data.counts[i].negative =
        rng.Poisson(positive ? rates.neg_given_pos : rates.neg_given_neg);
  }
  return data;
}

TEST(EmTest, RejectsEmptyInput) {
  EmLearner learner;
  EXPECT_FALSE(learner.Fit({}).ok());
}

TEST(EmTest, RejectsBadOptions) {
  EmOptions options;
  options.max_iterations = 0;
  EXPECT_FALSE(EmLearner(options).Fit({{1, 0}}).ok());

  options = EmOptions();
  options.agreement_grid = {};
  EXPECT_FALSE(EmLearner(options).Fit({{1, 0}}).ok());

  options = EmOptions();
  options.agreement_grid = {0.4};  // must be > 0.5
  EXPECT_FALSE(EmLearner(options).Fit({{1, 0}}).ok());

  options = EmOptions();
  options.agreement_grid = {1.0};  // must be < 1
  EXPECT_FALSE(EmLearner(options).Fit({{1, 0}}).ok());
}

TEST(EmTest, MStepStatsMatchHandComputation) {
  const std::vector<EvidenceCounts> counts = {{10, 2}, {0, 4}};
  const std::vector<double> r = {0.9, 0.2};
  const MStepStats stats = ComputeMStepStats(counts, r);
  EXPECT_NEAR(stats.pos_statements_pos_entities, 10 * 0.9 + 0 * 0.2, 1e-12);
  EXPECT_NEAR(stats.neg_statements_pos_entities, 2 * 0.9 + 4 * 0.2, 1e-12);
  EXPECT_NEAR(stats.pos_statements_neg_entities, 10 * 0.1 + 0 * 0.8, 1e-12);
  EXPECT_NEAR(stats.neg_statements_neg_entities, 2 * 0.1 + 4 * 0.8, 1e-12);
  EXPECT_NEAR(stats.pos_entities, 1.1, 1e-12);
  EXPECT_NEAR(stats.neg_entities, 0.9, 1e-12);
}

TEST(EmTest, ClosedFormMaximizerMatchesNumericalOptimum) {
  // The closed-form mu's must maximize Q' for fixed pA: check against a
  // fine grid search.
  const std::vector<EvidenceCounts> counts = {{12, 1}, {0, 3}, {5, 2}, {0, 0}};
  const std::vector<double> r = {0.95, 0.1, 0.7, 0.4};
  const MStepStats stats = ComputeMStepStats(counts, r);
  const double pa = 0.85;
  const ModelParams closed_form = MaximizeGivenAgreement(stats, pa);
  const double q_closed = EvaluateQ(stats, closed_form);
  for (double mu_pos = 0.5; mu_pos < 20.0; mu_pos += 0.25) {
    for (double mu_neg = 0.5; mu_neg < 10.0; mu_neg += 0.25) {
      ModelParams candidate{pa, mu_pos, mu_neg};
      EXPECT_LE(EvaluateQ(stats, candidate), q_closed + 1e-9);
    }
  }
}

TEST(EmTest, LogLikelihoodNonDecreasing) {
  const SyntheticData data =
      DrawFromModel({0.9, 40.0, 8.0}, 0.4, 300, /*seed=*/5);
  EmLearner learner;
  auto fit = learner.Fit(data.counts);
  ASSERT_TRUE(fit.ok());
  for (size_t i = 1; i < fit->log_likelihood_trace.size(); ++i) {
    EXPECT_GE(fit->log_likelihood_trace[i],
              fit->log_likelihood_trace[i - 1] - 1e-6);
  }
}

TEST(EmTest, RecoversParametersOnModelData) {
  const ModelParams truth{0.9, 60.0, 10.0};
  const SyntheticData data = DrawFromModel(truth, 0.35, 2000, /*seed=*/7);
  EmOptions options;
  options.max_iterations = 100;
  auto fit = EmLearner(options).Fit(data.counts);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->params.agreement, truth.agreement, 0.06);
  EXPECT_NEAR(fit->params.mu_positive, truth.mu_positive,
              0.15 * truth.mu_positive);
  EXPECT_NEAR(fit->params.mu_negative, truth.mu_negative,
              0.25 * truth.mu_negative);
}

TEST(EmTest, ClassifiesEntitiesOnModelData) {
  const ModelParams truth{0.92, 80.0, 12.0};
  const SyntheticData data = DrawFromModel(truth, 0.4, 1000, /*seed=*/11);
  auto fit = EmLearner().Fit(data.counts);
  ASSERT_TRUE(fit.ok());
  int correct = 0;
  for (size_t i = 0; i < data.counts.size(); ++i) {
    const bool predicted = fit->responsibilities[i] > 0.5;
    if (predicted == data.truth[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / data.counts.size(), 0.95);
}

TEST(EmTest, InfersNegativeForUnmentionedEntities) {
  // Mirrors the big-city insight: positives produce many statements, so an
  // entity with zero statements should be classified negative.
  std::vector<EvidenceCounts> counts;
  for (int i = 0; i < 20; ++i) counts.push_back({40 + i, 2});  // big cities
  for (int i = 0; i < 200; ++i) counts.push_back({0, 0});      // unmentioned
  auto fit = EmLearner().Fit(counts);
  ASSERT_TRUE(fit.ok());
  for (int i = 0; i < 20; ++i) EXPECT_GT(fit->responsibilities[i], 0.5);
  for (size_t i = 20; i < counts.size(); ++i) {
    EXPECT_LT(fit->responsibilities[i], 0.5) << "entity " << i;
  }
}

TEST(EmTest, HandlesAllZeroCounts) {
  std::vector<EvidenceCounts> counts(50);
  auto fit = EmLearner().Fit(counts);
  ASSERT_TRUE(fit.ok());
  for (double r : fit->responsibilities) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(EmTest, HandlesSingleEntity) {
  auto fit = EmLearner().Fit({{7, 1}});
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(std::isfinite(fit->final_log_likelihood()));
}

TEST(EmTest, ConvergesAndReportsIterations) {
  const SyntheticData data = DrawFromModel({0.85, 30.0, 5.0}, 0.4, 500, 13);
  EmOptions options;
  options.max_iterations = 200;
  auto fit = EmLearner(options).Fit(data.counts);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->converged);
  EXPECT_LT(fit->iterations, 200);
  EXPECT_GT(fit->iterations, 0);
}

TEST(EmTest, PolarityBiasDoesNotFoolTheModel) {
  // Strong polarity bias: negatives are rarely voiced. An entity with
  // slightly more negative than positive statements relative to the global
  // pattern should still be classified correctly.
  const ModelParams truth{0.9, 50.0, 2.0};
  const SyntheticData data = DrawFromModel(truth, 0.5, 1500, 17);
  auto fit = EmLearner().Fit(data.counts);
  ASSERT_TRUE(fit.ok());
  int correct = 0;
  for (size_t i = 0; i < data.counts.size(); ++i) {
    if ((fit->responsibilities[i] > 0.5) == data.truth[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / data.counts.size(), 0.95);
}

TEST(EmTest, InitializationModesAgree) {
  const SyntheticData data = DrawFromModel({0.9, 40.0, 6.0}, 0.3, 800, 19);
  EmOptions mv_init;
  mv_init.initialize_from_majority_vote = true;
  EmOptions estep_init;
  estep_init.initialize_from_majority_vote = false;
  auto fit_a = EmLearner(mv_init).Fit(data.counts);
  auto fit_b = EmLearner(estep_init).Fit(data.counts);
  ASSERT_TRUE(fit_a.ok());
  ASSERT_TRUE(fit_b.ok());
  // Both land in the same basin on well-separated data.
  EXPECT_NEAR(fit_a->params.agreement, fit_b->params.agreement, 0.11);
  EXPECT_NEAR(fit_a->params.mu_positive, fit_b->params.mu_positive,
              0.2 * fit_a->params.mu_positive);
}

// ---------------------------------------------------------------------------
// Property-based sweep: EM must recover parameters across a grid of
// regimes (agreement level x polarity bias x prevalence).
// ---------------------------------------------------------------------------

struct EmRecoveryCase {
  double agreement;
  double mu_positive;
  double mu_negative;
  double prevalence;
};

class EmRecoveryTest : public testing::TestWithParam<EmRecoveryCase> {};

TEST_P(EmRecoveryTest, RecoversRegime) {
  const EmRecoveryCase& param = GetParam();
  const ModelParams truth{param.agreement, param.mu_positive,
                          param.mu_negative};
  const SyntheticData data =
      DrawFromModel(truth, param.prevalence, 1500,
                    /*seed=*/static_cast<uint64_t>(
                        param.agreement * 1000 + param.mu_positive));
  EmOptions options;
  options.max_iterations = 150;
  auto fit = EmLearner(options).Fit(data.counts);
  ASSERT_TRUE(fit.ok());
  // Parameter recovery within loose tolerances.
  EXPECT_NEAR(fit->params.agreement, truth.agreement, 0.08);
  EXPECT_NEAR(fit->params.mu_positive, truth.mu_positive,
              0.2 * truth.mu_positive + 1.0);
  // Classification accuracy is the property that matters downstream.
  int correct = 0;
  for (size_t i = 0; i < data.counts.size(); ++i) {
    if ((fit->responsibilities[i] > 0.5) == data.truth[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / data.counts.size(), 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, EmRecoveryTest,
    testing::Values(
        EmRecoveryCase{0.80, 30.0, 5.0, 0.3},    // moderate everything
        EmRecoveryCase{0.90, 60.0, 10.0, 0.5},   // balanced prevalence
        EmRecoveryCase{0.95, 100.0, 3.0, 0.2},   // strong consensus
        EmRecoveryCase{0.85, 20.0, 20.0, 0.4},   // no polarity bias
        EmRecoveryCase{0.90, 8.0, 40.0, 0.4},    // inverted bias (mu- > mu+)
        EmRecoveryCase{0.75, 50.0, 8.0, 0.35},   // low agreement
        EmRecoveryCase{0.90, 200.0, 30.0, 0.25}, // heavy traffic
        EmRecoveryCase{0.85, 12.0, 2.0, 0.6}));  // positive-majority world

}  // namespace
}  // namespace surveyor
