#include "model/diagnostics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace surveyor {
namespace {

/// Draws counts from the model family itself.
std::vector<EvidenceCounts> DrawFromModel(const ModelParams& params,
                                          double prevalence, size_t entities,
                                          uint64_t seed) {
  Rng rng(seed);
  const PoissonRates rates = RatesFromParams(params);
  std::vector<EvidenceCounts> counts(entities);
  for (auto& c : counts) {
    const bool positive = rng.Bernoulli(prevalence);
    c.positive = rng.Poisson(positive ? rates.pos_given_pos : rates.pos_given_neg);
    c.negative = rng.Poisson(positive ? rates.neg_given_pos : rates.neg_given_neg);
  }
  return counts;
}

TEST(DiagnosticsTest, OnModelDataFitsWell) {
  const auto counts = DrawFromModel({0.9, 40.0, 6.0}, 0.3, 1500, 3);
  auto fit = EmLearner().Fit(counts);
  ASSERT_TRUE(fit.ok());
  const ModelDiagnostics diagnostics = DiagnoseFit(counts, *fit);

  // Statement-mass conservation: the M-step matches first moments.
  EXPECT_NEAR(diagnostics.expected_positive_statements,
              diagnostics.observed_positive_statements,
              0.02 * diagnostics.observed_positive_statements + 2.0);
  EXPECT_NEAR(diagnostics.expected_negative_statements,
              diagnostics.observed_negative_statements,
              0.05 * diagnostics.observed_negative_statements + 2.0);
  EXPECT_NEAR(diagnostics.positive_entity_fraction, 0.3, 0.05);
  // On-model data: the binned chi-square stays modest (7 bins, m=1500).
  EXPECT_LT(diagnostics.positive_count_chi2, 60.0);
  EXPECT_TRUE(std::isfinite(diagnostics.log_likelihood));
  EXPECT_NEAR(diagnostics.aic, 6.0 - 2.0 * diagnostics.log_likelihood, 1e-9);
}

TEST(DiagnosticsTest, DetectsOffModelHeterogeneity) {
  // Exposure heterogeneity: positive entities draw from TWO very different
  // rates; the single-rate mixture must show a much larger chi-square than
  // the on-model fit.
  Rng rng(7);
  std::vector<EvidenceCounts> counts;
  for (int i = 0; i < 1500; ++i) {
    EvidenceCounts c;
    if (rng.Bernoulli(0.3)) {
      const double rate = rng.Bernoulli(0.5) ? 150.0 : 8.0;
      c.positive = rng.Poisson(rate);
      c.negative = rng.Poisson(0.5);
    } else {
      c.positive = rng.Poisson(0.3);
      c.negative = rng.Poisson(0.2);
    }
    counts.push_back(c);
  }
  auto fit = EmLearner().Fit(counts);
  ASSERT_TRUE(fit.ok());
  const ModelDiagnostics off_model = DiagnoseFit(counts, *fit);

  const auto clean = DrawFromModel({0.9, 40.0, 6.0}, 0.3, 1500, 3);
  auto clean_fit = EmLearner().Fit(clean);
  ASSERT_TRUE(clean_fit.ok());
  const ModelDiagnostics on_model = DiagnoseFit(clean, *clean_fit);

  EXPECT_GT(off_model.positive_count_chi2, 5 * on_model.positive_count_chi2);
}

TEST(DiagnosticsTest, CountsUndecidedEntities) {
  // Symmetric parameters put zero-count entities exactly at 1/2.
  std::vector<EvidenceCounts> counts = {{5, 0}, {0, 5}, {0, 0}, {0, 0}};
  EmFitResult fit;
  fit.params = {0.9, 10.0, 10.0};
  for (const EvidenceCounts& c : counts) {
    fit.responsibilities.push_back(PosteriorPositive(c, fit.params));
  }
  const ModelDiagnostics diagnostics = DiagnoseFit(counts, fit);
  EXPECT_EQ(diagnostics.undecided_entities, 2);
}

TEST(DiagnosticsTest, ToStringMentionsKeyNumbers) {
  const auto counts = DrawFromModel({0.9, 20.0, 4.0}, 0.4, 200, 11);
  auto fit = EmLearner().Fit(counts);
  ASSERT_TRUE(fit.ok());
  const std::string report = DiagnoseFit(counts, *fit).ToString();
  EXPECT_NE(report.find("LL="), std::string::npos);
  EXPECT_NE(report.find("chi2"), std::string::npos);
  EXPECT_NE(report.find("positive-fraction="), std::string::npos);
}

}  // namespace
}  // namespace surveyor
