// Validates the paper's Poisson-product approximation of the multinomial
// (Section 5.2, citing McDonald 1980 / Roos 1999): for Web-scale author
// populations n, the posterior computed with two independent Poissons is
// numerically indistinguishable from the exact multinomial posterior.
#include <gtest/gtest.h>

#include <cmath>

#include "model/user_model.h"
#include "util/math.h"

namespace surveyor {
namespace {

/// Exact posterior under the multinomial model with population size n.
/// The multinomial coefficient n!/(a!b!(n-a-b)!) is identical under both
/// hypotheses and cancels from the posterior.
double MultinomialPosterior(const EvidenceCounts& counts,
                            const ModelParams& params, double n) {
  const PoissonRates rates = RatesFromParams(params);
  const double a = static_cast<double>(counts.positive);
  const double b = static_cast<double>(counts.negative);
  // Per-document statement probabilities under each dominant opinion.
  const double pp_pos = rates.pos_given_pos / n;
  const double pn_pos = rates.neg_given_pos / n;
  const double pp_neg = rates.pos_given_neg / n;
  const double pn_neg = rates.neg_given_neg / n;
  const double log_pos = a * SafeLog(pp_pos) + b * SafeLog(pn_pos) +
                         (n - a - b) * std::log1p(-(pp_pos + pn_pos));
  const double log_neg = a * SafeLog(pp_neg) + b * SafeLog(pn_neg) +
                         (n - a - b) * std::log1p(-(pp_neg + pn_neg));
  return Sigmoid(log_pos - log_neg);
}

struct ApproxCase {
  double n;           // author population
  ModelParams params; // model parameters (rates scaled to n*pS)
  EvidenceCounts counts;
  double tolerance;
};

class PoissonApproxTest : public testing::TestWithParam<ApproxCase> {};

TEST_P(PoissonApproxTest, PosteriorMatchesMultinomial) {
  const ApproxCase& c = GetParam();
  const double poisson = PosteriorPositive(c.counts, c.params);
  const double multinomial = MultinomialPosterior(c.counts, c.params, c.n);
  EXPECT_NEAR(poisson, multinomial, c.tolerance)
      << "n=" << c.n << " counts=(" << c.counts.positive << ","
      << c.counts.negative << ")";
}

INSTANTIATE_TEST_SUITE_P(
    WebScalePopulations, PoissonApproxTest,
    testing::Values(
        // The paper's Example 3 parameters at increasing population sizes.
        ApproxCase{1e4, {0.9, 100.0, 5.0}, {60, 3}, 1e-3},
        ApproxCase{1e6, {0.9, 100.0, 5.0}, {60, 3}, 1e-5},
        ApproxCase{1e8, {0.9, 100.0, 5.0}, {60, 3}, 1e-7},
        // Borderline tuples where the decision could flip.
        ApproxCase{1e6, {0.9, 100.0, 5.0}, {15, 1}, 1e-4},
        ApproxCase{1e6, {0.8, 30.0, 10.0}, {8, 4}, 1e-4},
        // Zero counts (the silence-as-evidence case).
        ApproxCase{1e6, {0.9, 100.0, 5.0}, {0, 0}, 1e-5},
        // Inverse bias.
        ApproxCase{1e6, {0.85, 5.0, 80.0}, {2, 40}, 1e-5},
        // Heavy counts.
        ApproxCase{1e7, {0.95, 500.0, 50.0}, {450, 20}, 1e-5}));

TEST(PoissonApproxTest, SmallPopulationsDiverge) {
  // Sanity check on the test itself: with n comparable to the counts the
  // approximation must be visibly worse than at Web scale.
  // A borderline tuple keeps the posterior away from the saturated 0/1
  // region where all differences round to zero.
  const ModelParams params{0.9, 100.0, 5.0};
  const EvidenceCounts counts{16, 1};
  const double at_small_n =
      std::abs(PosteriorPositive(counts, params) -
               MultinomialPosterior(counts, params, /*n=*/150));
  const double at_large_n =
      std::abs(PosteriorPositive(counts, params) -
               MultinomialPosterior(counts, params, /*n=*/1e8));
  EXPECT_GT(at_small_n, 100 * at_large_n);
}

}  // namespace
}  // namespace surveyor
