#include "model/user_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/math.h"

namespace surveyor {
namespace {

TEST(UserModelTest, RatesFromParamsMatchPaperEquations) {
  // Example 3 of the paper: pA=0.9, np+S=100, np-S=5 gives
  // l++ = 90, l-+ = 0.5, l-- = 4.5, l+- = 10.
  ModelParams params{0.9, 100.0, 5.0};
  const PoissonRates rates = RatesFromParams(params);
  EXPECT_NEAR(rates.pos_given_pos, 90.0, 1e-12);
  EXPECT_NEAR(rates.neg_given_pos, 0.5, 1e-12);
  EXPECT_NEAR(rates.neg_given_neg, 4.5, 1e-12);
  EXPECT_NEAR(rates.pos_given_neg, 10.0, 1e-12);
}

TEST(UserModelTest, ValidateParams) {
  EXPECT_TRUE(ValidateParams({0.8, 1.0, 1.0}).ok());
  EXPECT_FALSE(ValidateParams({0.0, 1.0, 1.0}).ok());
  EXPECT_FALSE(ValidateParams({1.0, 1.0, 1.0}).ok());
  EXPECT_FALSE(ValidateParams({0.8, -1.0, 1.0}).ok());
  EXPECT_FALSE(ValidateParams({0.8, 1.0, std::nan("")}).ok());
}

TEST(UserModelTest, LikelihoodIsProductOfPoissons) {
  ModelParams params{0.9, 100.0, 5.0};
  EvidenceCounts counts{60, 3};
  const double expected = PoissonLogPmf(60, 90.0) + PoissonLogPmf(3, 0.5);
  EXPECT_NEAR(LogLikelihoodPositive(counts, params), expected, 1e-9);
  const double expected_neg = PoissonLogPmf(60, 10.0) + PoissonLogPmf(3, 4.5);
  EXPECT_NEAR(LogLikelihoodNegative(counts, params), expected_neg, 1e-9);
}

TEST(UserModelTest, Figure6TupleIsPositive) {
  // The paper's Example 1: the evidence tuple (60, 3) is more likely under
  // the positive-dominant-opinion distribution.
  ModelParams params{0.9, 100.0, 5.0};
  EXPECT_GT(PosteriorPositive({60, 3}, params), 0.5);
}

TEST(UserModelTest, ManyNegativesIsNegative) {
  ModelParams params{0.9, 100.0, 5.0};
  EXPECT_LT(PosteriorPositive({2, 6}, params), 0.5);
}

TEST(UserModelTest, UnmentionedEntityFollowsRateAsymmetry) {
  // With mu+ > mu- and pA > 1/2, silence is evidence of a negative
  // dominant opinion ("a city never mentioned is not big").
  ModelParams big_city{0.9, 100.0, 5.0};
  EXPECT_LT(PosteriorPositive({0, 0}, big_city), 0.5);
  // With mu- > mu+ silence points the other way.
  ModelParams inverse{0.9, 5.0, 100.0};
  EXPECT_GT(PosteriorPositive({0, 0}, inverse), 0.5);
}

TEST(UserModelTest, PosteriorMonotoneInPositiveCount) {
  ModelParams params{0.85, 50.0, 10.0};
  double previous = 0.0;
  for (int64_t c = 0; c <= 40; c += 5) {
    const double posterior = PosteriorPositive({c, 5}, params);
    if (c > 0) {
      EXPECT_GT(posterior, previous);
    }
    previous = posterior;
  }
}

TEST(UserModelTest, PriorShiftsPosterior) {
  ModelParams params{0.8, 20.0, 20.0};
  EvidenceCounts counts{4, 4};
  // Symmetric rates and counts: posterior equals the prior.
  EXPECT_NEAR(PosteriorPositive(counts, params, 0.5), 0.5, 1e-9);
  EXPECT_GT(PosteriorPositive(counts, params, 0.9), 0.5);
  EXPECT_LT(PosteriorPositive(counts, params, 0.1), 0.5);
}

TEST(UserModelTest, DecidePolarityDefaultThreshold) {
  EXPECT_EQ(DecidePolarity(0.9), Polarity::kPositive);
  EXPECT_EQ(DecidePolarity(0.1), Polarity::kNegative);
  EXPECT_EQ(DecidePolarity(0.5), Polarity::kNeutral);
}

TEST(UserModelTest, DecidePolarityCustomThreshold) {
  EXPECT_EQ(DecidePolarity(0.7, 0.8), Polarity::kNeutral);
  EXPECT_EQ(DecidePolarity(0.85, 0.8), Polarity::kPositive);
  EXPECT_EQ(DecidePolarity(0.15, 0.8), Polarity::kNegative);
  EXPECT_EQ(DecidePolarity(0.25, 0.8), Polarity::kNeutral);
}

TEST(UserModelTest, PolarityNames) {
  EXPECT_EQ(PolarityName(Polarity::kPositive), "+");
  EXPECT_EQ(PolarityName(Polarity::kNegative), "-");
  EXPECT_EQ(PolarityName(Polarity::kNeutral), "N");
}

TEST(UserModelTest, LargeCountsStayFinite) {
  ModelParams params{0.9, 1e6, 1e3};
  const double posterior = PosteriorPositive({900000, 500}, params);
  EXPECT_TRUE(std::isfinite(posterior));
  EXPECT_GT(posterior, 0.5);
}

}  // namespace
}  // namespace surveyor
