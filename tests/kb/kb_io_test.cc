#include "kb/kb_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace surveyor {
namespace {

KnowledgeBase MakeSample() {
  KnowledgeBase kb;
  const TypeId city = kb.AddType("city");
  const TypeId animal = kb.AddType("animal");
  const EntityId sf = kb.AddEntity("san francisco", city, 3.5).value();
  const EntityId cat = kb.AddEntity("cat", animal, 9.0).value();
  EXPECT_TRUE(kb.AddAlias("sf", sf).ok());
  EXPECT_TRUE(kb.SetAttribute(sf, "population", 870000).ok());
  EXPECT_TRUE(kb.SetAttribute(cat, "weight", 4.2).ok());
  return kb;
}

TEST(KbIoTest, RoundTrip) {
  const KnowledgeBase original = MakeSample();
  std::stringstream stream;
  ASSERT_TRUE(SaveKnowledgeBase(original, stream).ok());
  auto loaded = LoadKnowledgeBase(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->num_types(), original.num_types());
  EXPECT_EQ(loaded->num_entities(), original.num_entities());
  EXPECT_EQ(loaded->num_aliases(), original.num_aliases());

  const auto sf_ids = loaded->EntitiesByName("san francisco");
  ASSERT_EQ(sf_ids.size(), 1u);
  const Entity& sf = loaded->entity(sf_ids[0]);
  EXPECT_DOUBLE_EQ(sf.popularity, 3.5);
  EXPECT_DOUBLE_EQ(loaded->GetAttribute(sf.id, "population").value(), 870000);
  EXPECT_EQ(loaded->CandidatesForAlias("sf").size(), 1u);
}

TEST(KbIoTest, IgnoresCommentsAndBlankLines) {
  std::stringstream stream(
      "# comment\n"
      "\n"
      "type\tcity\n"
      "entity\tcity\tparis\t1.5\n");
  auto kb = LoadKnowledgeBase(stream);
  ASSERT_TRUE(kb.ok()) << kb.status();
  EXPECT_EQ(kb->num_entities(), 1u);
}

TEST(KbIoTest, RejectsUnknownRecordKind) {
  std::stringstream stream("bogus\tx\n");
  EXPECT_FALSE(LoadKnowledgeBase(stream).ok());
}

TEST(KbIoTest, RejectsEntityWithUnknownType) {
  std::stringstream stream("entity\tcity\tparis\t1.0\n");
  auto kb = LoadKnowledgeBase(stream);
  EXPECT_FALSE(kb.ok());
  EXPECT_EQ(kb.status().code(), StatusCode::kInvalidArgument);
}

TEST(KbIoTest, RejectsMalformedNumbers) {
  std::stringstream stream(
      "type\tcity\n"
      "entity\tcity\tparis\tnot-a-number\n");
  EXPECT_FALSE(LoadKnowledgeBase(stream).ok());
}

TEST(KbIoTest, RejectsAliasForMissingEntity) {
  std::stringstream stream(
      "type\tcity\n"
      "alias\tcity\tghost\tg\n");
  EXPECT_FALSE(LoadKnowledgeBase(stream).ok());
}

TEST(KbIoTest, FileRoundTrip) {
  const KnowledgeBase original = MakeSample();
  const std::string path = testing::TempDir() + "/kb_io_test.tsv";
  ASSERT_TRUE(SaveKnowledgeBaseToFile(original, path).ok());
  auto loaded = LoadKnowledgeBaseFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_entities(), original.num_entities());
}

TEST(KbIoTest, MissingFileFails) {
  EXPECT_EQ(LoadKnowledgeBaseFromFile("/nonexistent/nope.tsv").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace surveyor
