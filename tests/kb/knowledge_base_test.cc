#include "kb/knowledge_base.h"

#include <gtest/gtest.h>

namespace surveyor {
namespace {

TEST(KnowledgeBaseTest, AddTypeIsIdempotent) {
  KnowledgeBase kb;
  const TypeId a = kb.AddType("City");
  const TypeId b = kb.AddType("city");
  EXPECT_EQ(a, b);
  EXPECT_EQ(kb.num_types(), 1u);
  EXPECT_EQ(kb.TypeName(a), "city");
}

TEST(KnowledgeBaseTest, AddEntityBasics) {
  KnowledgeBase kb;
  const TypeId city = kb.AddType("city");
  auto id = kb.AddEntity("San Francisco", city, 2.5);
  ASSERT_TRUE(id.ok());
  const Entity& entity = kb.entity(*id);
  EXPECT_EQ(entity.canonical_name, "san francisco");
  EXPECT_EQ(entity.most_notable_type, city);
  EXPECT_DOUBLE_EQ(entity.popularity, 2.5);
  EXPECT_EQ(kb.num_entities(), 1u);
}

TEST(KnowledgeBaseTest, RejectsUnknownTypeAndDuplicates) {
  KnowledgeBase kb;
  const TypeId city = kb.AddType("city");
  EXPECT_FALSE(kb.AddEntity("x", city + 7).ok());
  ASSERT_TRUE(kb.AddEntity("paris", city).ok());
  EXPECT_EQ(kb.AddEntity("Paris", city).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(kb.AddEntity("", city).ok());
}

TEST(KnowledgeBaseTest, SameNameDifferentTypesAllowed) {
  KnowledgeBase kb;
  const TypeId city = kb.AddType("city");
  const TypeId animal = kb.AddType("animal");
  ASSERT_TRUE(kb.AddEntity("phoenix", city).ok());
  ASSERT_TRUE(kb.AddEntity("phoenix", animal).ok());
  EXPECT_EQ(kb.EntitiesByName("phoenix").size(), 2u);
  EXPECT_EQ(kb.CandidatesForAlias("phoenix").size(), 2u);
}

TEST(KnowledgeBaseTest, AliasResolution) {
  KnowledgeBase kb;
  const TypeId city = kb.AddType("city");
  const EntityId sf = kb.AddEntity("san francisco", city).value();
  ASSERT_TRUE(kb.AddAlias("sf", sf).ok());
  ASSERT_TRUE(kb.AddAlias("frisco", sf).ok());
  // Idempotent alias registration.
  ASSERT_TRUE(kb.AddAlias("sf", sf).ok());
  EXPECT_EQ(kb.CandidatesForAlias("sf").size(), 1u);
  EXPECT_EQ(kb.CandidatesForAlias("SF")[0], sf);
  EXPECT_TRUE(kb.CandidatesForAlias("nope").empty());
  // Canonical name + 2 aliases.
  EXPECT_EQ(kb.entity(sf).aliases.size(), 3u);
}

TEST(KnowledgeBaseTest, SharedAliasAcrossEntities) {
  KnowledgeBase kb;
  const TypeId city = kb.AddType("city");
  const TypeId animal = kb.AddType("animal");
  const EntityId a = kb.AddEntity("springfield", city).value();
  const EntityId b = kb.AddEntity("jaguar", animal).value();
  ASSERT_TRUE(kb.AddAlias("spring", a).ok());
  ASSERT_TRUE(kb.AddAlias("spring", b).ok());
  EXPECT_EQ(kb.CandidatesForAlias("spring").size(), 2u);
}

TEST(KnowledgeBaseTest, AliasToUnknownEntityFails) {
  KnowledgeBase kb;
  EXPECT_FALSE(kb.AddAlias("x", 12).ok());
}

TEST(KnowledgeBaseTest, Attributes) {
  KnowledgeBase kb;
  const TypeId city = kb.AddType("city");
  const EntityId sf = kb.AddEntity("san francisco", city).value();
  ASSERT_TRUE(kb.SetAttribute(sf, "population", 870000).ok());
  auto population = kb.GetAttribute(sf, "population");
  ASSERT_TRUE(population.ok());
  EXPECT_DOUBLE_EQ(*population, 870000);
  EXPECT_EQ(kb.GetAttribute(sf, "area").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(kb.SetAttribute(99, "x", 1).ok());
}

TEST(KnowledgeBaseTest, EntitiesOfTypeInInsertionOrder) {
  KnowledgeBase kb;
  const TypeId animal = kb.AddType("animal");
  const TypeId city = kb.AddType("city");
  const EntityId cat = kb.AddEntity("cat", animal).value();
  const EntityId dog = kb.AddEntity("dog", animal).value();
  kb.AddEntity("paris", city).value();
  EXPECT_EQ(kb.EntitiesOfType(animal), (std::vector<EntityId>{cat, dog}));
  EXPECT_EQ(kb.EntitiesOfType(city).size(), 1u);
}

TEST(KnowledgeBaseTest, TypeByName) {
  KnowledgeBase kb;
  const TypeId animal = kb.AddType("animal");
  auto found = kb.TypeByName("ANIMAL");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, animal);
  EXPECT_FALSE(kb.TypeByName("plant").ok());
}

TEST(KnowledgeBaseTest, AllAliasesContainsCanonicalNames) {
  KnowledgeBase kb;
  const TypeId animal = kb.AddType("animal");
  const EntityId cat = kb.AddEntity("cat", animal).value();
  ASSERT_TRUE(kb.AddAlias("kitty", cat).ok());
  const std::vector<std::string> aliases = kb.AllAliases();
  EXPECT_EQ(aliases.size(), 2u);
}

}  // namespace
}  // namespace surveyor
