#include "surveyor/pipeline.h"

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "surveyor/api.h"
#include "text/annotator.h"
#include "text/document_source.h"
#include "corpus/worlds.h"

namespace surveyor {
namespace {

class PipelineTest : public testing::Test {
 protected:
  PipelineTest() : world_(World::Generate(MakeTinyWorldConfig()).value()) {
    GeneratorOptions options;
    options.author_population = 8000;
    options.seed = 77;
    corpus_ = CorpusGenerator(&world_, options).Generate();
  }

  World world_;
  std::vector<RawDocument> corpus_;
};

TEST_F(PipelineTest, EndToEndRunProducesOpinions) {
  SurveyorConfig config;
  config.min_statements = 20;
  config.num_threads = 4;
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config);
  auto result = pipeline.Run(corpus_);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_GT(result->stats.num_documents, 0);
  EXPECT_GT(result->stats.num_sentences, 0);
  EXPECT_GT(result->stats.num_parsed_sentences, 0);
  EXPECT_LE(result->stats.num_parsed_sentences, result->stats.num_sentences);
  EXPECT_GT(result->stats.num_statements, 0);
  EXPECT_GT(result->stats.num_kept_property_type_pairs, 0);
  EXPECT_LE(result->stats.num_kept_property_type_pairs,
            result->stats.num_property_type_pairs);
  EXPECT_GT(result->stats.num_opinions, 0);

  // The three seeded property-type combinations should pass the threshold.
  const TypeId animal = world_.kb().TypeByName("animal").value();
  const TypeId city = world_.kb().TypeByName("city").value();
  EXPECT_NE(result->Find(animal, "cute"), nullptr);
  EXPECT_NE(result->Find(animal, "dangerous"), nullptr);
  EXPECT_NE(result->Find(city, "big"), nullptr);
}

TEST_F(PipelineTest, OpinionsMostlyMatchGroundTruth) {
  SurveyorConfig config;
  config.min_statements = 20;
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config);
  auto result = pipeline.Run(corpus_);
  ASSERT_TRUE(result.ok());

  int correct = 0, total = 0;
  for (const PropertyTypeResult& pair : result->pairs) {
    const PropertyGroundTruth* truth =
        world_.FindGroundTruth(pair.evidence.type, pair.evidence.property);
    if (truth == nullptr) continue;  // adverb-fragmented property
    for (size_t i = 0; i < pair.evidence.entities.size(); ++i) {
      if (pair.polarity[i] == Polarity::kNeutral) continue;
      ++total;
      if (pair.polarity[i] == truth->dominant[i]) ++correct;
    }
  }
  ASSERT_GT(total, 20);
  EXPECT_GT(static_cast<double>(correct) / total, 0.8);
}

TEST_F(PipelineTest, PerEntityPolaritiesAlignWithPosterior) {
  SurveyorConfig config;
  config.min_statements = 20;
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config);
  auto result = pipeline.Run(corpus_);
  ASSERT_TRUE(result.ok());
  for (const PropertyTypeResult& pair : result->pairs) {
    ASSERT_EQ(pair.posterior.size(), pair.evidence.entities.size());
    ASSERT_EQ(pair.polarity.size(), pair.evidence.entities.size());
    for (size_t i = 0; i < pair.posterior.size(); ++i) {
      EXPECT_EQ(pair.polarity[i], DecidePolarity(pair.posterior[i]));
    }
  }
}

TEST_F(PipelineTest, OpinionsFlattenNonNeutralOnly) {
  SurveyorConfig config;
  config.min_statements = 20;
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config);
  auto result = pipeline.Run(corpus_);
  ASSERT_TRUE(result.ok());
  const auto opinions = result->Opinions();
  EXPECT_EQ(static_cast<int64_t>(opinions.size()),
            result->stats.num_opinions);
  for (const PairOpinion& opinion : opinions) {
    EXPECT_NE(opinion.polarity, Polarity::kNeutral);
    if (opinion.polarity == Polarity::kPositive) {
      EXPECT_GT(opinion.probability, 0.5);
    } else {
      EXPECT_LT(opinion.probability, 0.5);
    }
  }
}

TEST_F(PipelineTest, RhoThresholdControlsPairCount) {
  SurveyorConfig loose;
  loose.min_statements = 5;
  SurveyorConfig strict;
  strict.min_statements = 200;
  auto loose_result =
      SurveyorPipeline(&world_.kb(), &world_.lexicon(), loose).Run(corpus_);
  auto strict_result =
      SurveyorPipeline(&world_.kb(), &world_.lexicon(), strict).Run(corpus_);
  ASSERT_TRUE(loose_result.ok());
  ASSERT_TRUE(strict_result.ok());
  EXPECT_GE(loose_result->stats.num_kept_property_type_pairs,
            strict_result->stats.num_kept_property_type_pairs);
}

TEST_F(PipelineTest, SingleAndMultiThreadAgree) {
  SurveyorConfig single;
  single.min_statements = 20;
  single.num_threads = 1;
  SurveyorConfig multi = single;
  multi.num_threads = 8;
  auto a = SurveyorPipeline(&world_.kb(), &world_.lexicon(), single).Run(corpus_);
  auto b = SurveyorPipeline(&world_.kb(), &world_.lexicon(), multi).Run(corpus_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.num_statements, b->stats.num_statements);
  EXPECT_EQ(a->stats.num_kept_property_type_pairs,
            b->stats.num_kept_property_type_pairs);
  EXPECT_EQ(a->stats.num_opinions, b->stats.num_opinions);
  ASSERT_EQ(a->pairs.size(), b->pairs.size());
  for (size_t p = 0; p < a->pairs.size(); ++p) {
    EXPECT_EQ(a->pairs[p].evidence.property, b->pairs[p].evidence.property);
    EXPECT_EQ(a->pairs[p].polarity, b->pairs[p].polarity);
  }
}

TEST_F(PipelineTest, RunFromEvidenceValidatesThreshold) {
  SurveyorConfig config;
  config.decision_threshold = 0.4;  // invalid
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config);
  EXPECT_FALSE(pipeline.RunFromEvidence({}).ok());
}

TEST_F(PipelineTest, ProvenanceLinksBackToDocuments) {
  SurveyorConfig config;
  config.min_statements = 20;
  config.max_provenance_samples = 3;
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config);
  auto result = pipeline.Run(corpus_);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->provenance.empty());

  TextAnnotator annotator(&world_.kb(), &world_.lexicon());
  EvidenceExtractor extractor;
  int verified = 0;
  for (const auto& [key, refs] : result->provenance) {
    ASSERT_LE(refs.size(), 3u);
    for (const StatementRef& ref : refs) {
      if (verified >= 20) break;
      // The referenced document must actually contain a statement about
      // the pair with the recorded polarity.
      ASSERT_LT(static_cast<size_t>(ref.doc_id), corpus_.size());
      const RawDocument& doc = corpus_[ref.doc_id];
      EXPECT_EQ(doc.doc_id, ref.doc_id);
      const AnnotatedDocument annotated =
          annotator.AnnotateDocument(doc.doc_id, doc.text);
      bool found = false;
      for (const EvidenceStatement& statement :
           extractor.ExtractFromDocument(annotated)) {
        if (statement.entity == key.first && statement.property == key.second &&
            statement.sentence_index == ref.sentence_index &&
            statement.positive == ref.positive) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << "pair " << key.second << " doc " << ref.doc_id;
      ++verified;
    }
  }
  EXPECT_GT(verified, 5);
}

TEST_F(PipelineTest, ProvenanceOffByDefault) {
  SurveyorConfig config;
  config.min_statements = 20;
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config);
  auto result = pipeline.Run(corpus_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->provenance.empty());
}

TEST_F(PipelineTest, EmptyCorpusYieldsEmptyResult) {
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon());
  auto result = pipeline.Run({});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.num_documents, 0);
  EXPECT_EQ(result->stats.num_opinions, 0);
  EXPECT_TRUE(result->pairs.empty());
}

TEST(SurveyorConfigTest, ValidateCentralizesRangeChecks) {
  EXPECT_TRUE(SurveyorConfig{}.Validate().ok());

  SurveyorConfig config;
  config.min_statements = -1;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);

  config = SurveyorConfig{};
  config.decision_threshold = 0.4;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.decision_threshold = 1.0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);

  config = SurveyorConfig{};
  config.num_threads = -2;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);

  config = SurveyorConfig{};
  config.fault_spec = "not a spec";
  const Status status = config.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("fault_spec"), std::string::npos);
}

TEST_F(PipelineTest, EveryEntryPointSurfacesValidateVerbatim) {
  SurveyorConfig config;
  config.decision_threshold = 2.0;
  const std::string expected =
      std::string(SurveyorConfig{config}.Validate().message());
  ASSERT_FALSE(expected.empty());

  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config);
  const auto run = pipeline.Run(corpus_);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().message(), expected);

  VectorDocumentSource source(&corpus_);
  const auto streaming = pipeline.RunStreaming(source);
  ASSERT_FALSE(streaming.ok());
  EXPECT_EQ(streaming.status().message(), expected);

  // The one-call facade rejects it identically.
  const auto mined = Mine(config, corpus_, world_.kb(), world_.lexicon());
  ASSERT_FALSE(mined.ok());
  EXPECT_EQ(mined.status().message(), expected);
}

}  // namespace
}  // namespace surveyor
