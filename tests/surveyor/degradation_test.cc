// Graceful-degradation tests (DESIGN.md §9): a pair whose EM fit fails
// falls back to the smoothed majority vote and is reported degraded; the
// rest of the run is untouched.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "obs/stage.h"
#include "surveyor/pipeline.h"

namespace surveyor {
namespace {

class DegradationTest : public testing::Test {
 protected:
  DegradationTest() : world_(World::Generate(MakeTinyWorldConfig()).value()) {
    GeneratorOptions options;
    options.author_population = 8000;
    options.seed = 77;
    corpus_ = CorpusGenerator(&world_, options).Generate();
  }

  SurveyorConfig BaseConfig() const {
    SurveyorConfig config;
    config.min_statements = 20;
    // @N one-shot fault triggers pick a deterministic victim only when
    // pairs are fitted sequentially.
    config.num_threads = 1;
    return config;
  }

  World world_;
  std::vector<RawDocument> corpus_;
};

TEST_F(DegradationTest, InjectedFitFaultDegradesOnlyTheVictimPair) {
  const SurveyorConfig clean_config = BaseConfig();
  auto clean = SurveyorPipeline(&world_.kb(), &world_.lexicon(), clean_config)
                   .Run(corpus_);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_GE(clean->pairs.size(), 2u);

  SurveyorConfig chaos_config = BaseConfig();
  chaos_config.fault_spec = "em_fit:@2";  // force the second pair to fail
  auto degraded =
      SurveyorPipeline(&world_.kb(), &world_.lexicon(), chaos_config)
          .Run(corpus_);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  ASSERT_EQ(degraded->pairs.size(), clean->pairs.size());

  size_t degraded_count = 0;
  for (size_t p = 0; p < degraded->pairs.size(); ++p) {
    const PropertyTypeResult& pair = degraded->pairs[p];
    const PropertyTypeResult& reference = clean->pairs[p];
    ASSERT_EQ(pair.evidence.property, reference.evidence.property);
    if (pair.degraded) {
      ++degraded_count;
      EXPECT_NE(pair.degraded_reason.find("em_fit"), std::string::npos)
          << pair.degraded_reason;
      // The fallback is the smoothed majority vote over the pair's own
      // evidence; EM never ran.
      EXPECT_EQ(pair.em_iterations, 0);
      ASSERT_EQ(pair.posterior.size(), pair.evidence.counts.size());
      for (size_t i = 0; i < pair.posterior.size(); ++i) {
        const EvidenceCounts& counts = pair.evidence.counts[i];
        const double smv = (counts.positive + 0.5) /
                           (counts.positive + counts.negative + 1.0);
        EXPECT_DOUBLE_EQ(pair.posterior[i], smv);
        EXPECT_EQ(pair.polarity[i], DecidePolarity(pair.posterior[i]));
      }
    } else {
      // Every healthy pair is bit-identical to the fault-free run.
      EXPECT_EQ(pair.degraded_reason, "");
      EXPECT_EQ(pair.em_iterations, reference.em_iterations);
      EXPECT_EQ(pair.posterior, reference.posterior);
      EXPECT_EQ(pair.polarity, reference.polarity);
      EXPECT_EQ(pair.params.agreement, reference.params.agreement);
    }
  }
  EXPECT_EQ(degraded_count, 1u);

  EXPECT_EQ(degraded->stats.num_degraded_pairs, 1);
  EXPECT_EQ(degraded->stats.num_faults_injected, 1);
  EXPECT_TRUE(degraded->report.degradation.degraded);
  EXPECT_EQ(degraded->report.degradation.pairs_degraded, 1);
  ASSERT_EQ(degraded->report.degradation.degraded_pairs.size(), 1u);
  EXPECT_NE(degraded->report.degradation.degraded_pairs[0].reason.find(
                "em_fit"),
            std::string::npos);

  // The clean run reports no degradation at all.
  EXPECT_FALSE(clean->report.degradation.degraded);
  EXPECT_EQ(clean->stats.num_degraded_pairs, 0);
  EXPECT_EQ(clean->stats.num_faults_injected, 0);
}

TEST_F(DegradationTest, DegradedPairsStillEmitOpinions) {
  SurveyorConfig config = BaseConfig();
  config.fault_spec = "em_fit:@1";
  auto result =
      SurveyorPipeline(&world_.kb(), &world_.lexicon(), config).Run(corpus_);
  ASSERT_TRUE(result.ok()) << result.status();
  const PropertyTypeResult& victim = result->pairs.front();
  ASSERT_TRUE(victim.degraded);
  int emitted = 0;
  for (const Polarity polarity : victim.polarity) {
    if (polarity != Polarity::kNeutral) ++emitted;
  }
  EXPECT_GT(emitted, 0);
}

TEST_F(DegradationTest, DegradationOffMakesFitFaultsFatal) {
  SurveyorConfig config = BaseConfig();
  config.fault_spec = "em_fit:@1";
  config.degrade_failed_fits = false;
  auto result =
      SurveyorPipeline(&world_.kb(), &world_.lexicon(), config).Run(corpus_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("em_fit"), std::string::npos);
}

TEST_F(DegradationTest, ConfigErrorsStayFatalEvenWithDegradationOn) {
  SurveyorConfig config = BaseConfig();
  config.degrade_failed_fits = true;
  config.em.agreement_grid = {0.3};  // invalid: must lie in (0.5, 1)
  auto result =
      SurveyorPipeline(&world_.kb(), &world_.lexicon(), config).Run(corpus_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DegradationTest, StageTrackerCarriesTheDegradedFlag) {
  obs::StageTracker tracker;
  SurveyorConfig config = BaseConfig();
  config.stage_tracker = &tracker;
  config.fault_spec = "em_fit:@1";
  auto degraded =
      SurveyorPipeline(&world_.kb(), &world_.lexicon(), config).Run(corpus_);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(tracker.degraded());

  // A subsequent clean run clears the flag.
  config.fault_spec.clear();
  auto clean =
      SurveyorPipeline(&world_.kb(), &world_.lexicon(), config).Run(corpus_);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(tracker.degraded());
}

}  // namespace
}  // namespace surveyor
