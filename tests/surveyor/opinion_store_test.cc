#include "surveyor/opinion_store.h"

#include <gtest/gtest.h>

#include <sstream>

namespace surveyor {
namespace {

class OpinionStoreTest : public testing::Test {
 protected:
  OpinionStoreTest() {
    city_ = kb_.AddType("city");
    animal_ = kb_.AddType("animal");
    sf_ = kb_.AddEntity("san francisco", city_).value();
    pa_ = kb_.AddEntity("palo alto", city_).value();
    cat_ = kb_.AddEntity("cat", animal_).value();
  }

  PairOpinion Opinion(EntityId entity, TypeId type, const std::string& property,
                      Polarity polarity, double probability) {
    PairOpinion opinion;
    opinion.entity = entity;
    opinion.type = type;
    opinion.property = property;
    opinion.polarity = polarity;
    opinion.probability = probability;
    return opinion;
  }

  KnowledgeBase kb_;
  TypeId city_ = kInvalidType;
  TypeId animal_ = kInvalidType;
  EntityId sf_ = kInvalidEntity;
  EntityId pa_ = kInvalidEntity;
  EntityId cat_ = kInvalidEntity;
};

TEST_F(OpinionStoreTest, AddAndLookup) {
  OpinionStore store(&kb_);
  store.Add(Opinion(sf_, city_, "big", Polarity::kPositive, 0.98));
  EXPECT_EQ(store.size(), 1u);
  auto found = store.Lookup(sf_, "big");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->polarity, Polarity::kPositive);
  EXPECT_DOUBLE_EQ(found->probability, 0.98);
  EXPECT_FALSE(store.Lookup(sf_, "calm").ok());
  EXPECT_FALSE(store.Lookup(pa_, "big").ok());
}

TEST_F(OpinionStoreTest, AddReplacesExisting) {
  OpinionStore store(&kb_);
  store.Add(Opinion(sf_, city_, "big", Polarity::kPositive, 0.9));
  store.Add(Opinion(sf_, city_, "big", Polarity::kNegative, 0.1));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Lookup(sf_, "big")->polarity, Polarity::kNegative);
}

TEST_F(OpinionStoreTest, QueryReturnsPositivesSortedByProbability) {
  OpinionStore store(&kb_);
  store.Add(Opinion(sf_, city_, "big", Polarity::kPositive, 0.8));
  store.Add(Opinion(pa_, city_, "big", Polarity::kPositive, 0.95));
  store.Add(Opinion(cat_, animal_, "big", Polarity::kPositive, 0.99));
  const auto result = store.Query(city_, "big");
  ASSERT_EQ(result.size(), 2u);  // the cat is not a city
  EXPECT_EQ(result[0].entity, pa_);
  EXPECT_EQ(result[1].entity, sf_);
}

TEST_F(OpinionStoreTest, QueryExcludesNegativesAndHonorsLimit) {
  OpinionStore store(&kb_);
  store.Add(Opinion(sf_, city_, "big", Polarity::kPositive, 0.8));
  store.Add(Opinion(pa_, city_, "big", Polarity::kNegative, 0.05));
  EXPECT_EQ(store.Query(city_, "big").size(), 1u);
  store.Add(Opinion(pa_, city_, "calm", Polarity::kPositive, 0.7));
  store.Add(Opinion(sf_, city_, "calm", Polarity::kPositive, 0.9));
  EXPECT_EQ(store.Query(city_, "calm", 1).size(), 1u);
}

TEST_F(OpinionStoreTest, PropertiesOfSortsAffirmedFirst) {
  OpinionStore store(&kb_);
  store.Add(Opinion(sf_, city_, "calm", Polarity::kNegative, 0.01));
  store.Add(Opinion(sf_, city_, "big", Polarity::kPositive, 0.97));
  store.Add(Opinion(sf_, city_, "cheap", Polarity::kNegative, 0.2));
  const auto profile = store.PropertiesOf(sf_);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0].property, "big");
  // Then negatives by confidence (distance from 1/2).
  EXPECT_EQ(profile[1].property, "calm");
  EXPECT_EQ(profile[2].property, "cheap");
  EXPECT_TRUE(store.PropertiesOf(pa_).empty());
}

TEST_F(OpinionStoreTest, PairsDeduplicates) {
  OpinionStore store(&kb_);
  store.Add(Opinion(sf_, city_, "big", Polarity::kPositive, 0.9));
  store.Add(Opinion(pa_, city_, "big", Polarity::kNegative, 0.2));
  store.Add(Opinion(cat_, animal_, "cute", Polarity::kPositive, 0.9));
  const auto pairs = store.Pairs();
  ASSERT_EQ(pairs.size(), 2u);
}

TEST_F(OpinionStoreTest, SaveLoadRoundTrip) {
  OpinionStore store(&kb_);
  store.Add(Opinion(sf_, city_, "big", Polarity::kPositive, 0.987654));
  store.Add(Opinion(pa_, city_, "very big", Polarity::kNegative, 0.04));
  store.Add(Opinion(cat_, animal_, "cute", Polarity::kPositive, 0.75));

  std::stringstream stream;
  ASSERT_TRUE(store.Save(stream).ok());

  OpinionStore loaded(&kb_);
  ASSERT_TRUE(loaded.Load(stream).ok());
  EXPECT_EQ(loaded.size(), 3u);
  auto opinion = loaded.Lookup(sf_, "big");
  ASSERT_TRUE(opinion.ok());
  EXPECT_NEAR(opinion->probability, 0.987654, 1e-6);
  EXPECT_EQ(loaded.Lookup(pa_, "very big")->polarity, Polarity::kNegative);
}

TEST_F(OpinionStoreTest, LoadRejectsUnknownEntity) {
  OpinionStore store(&kb_);
  std::stringstream stream("opinion\tcity\tghost town\tbig\t+\t0.9\n");
  EXPECT_FALSE(store.Load(stream).ok());
}

TEST_F(OpinionStoreTest, LoadRejectsMalformedLines) {
  OpinionStore store(&kb_);
  std::stringstream bad_polarity(
      "opinion\tcity\tsan francisco\tbig\t?\t0.9\n");
  EXPECT_FALSE(store.Load(bad_polarity).ok());
  std::stringstream bad_probability(
      "opinion\tcity\tsan francisco\tbig\t+\ttwo\n");
  EXPECT_FALSE(store.Load(bad_probability).ok());
  std::stringstream out_of_range(
      "opinion\tcity\tsan francisco\tbig\t+\t1.5\n");
  EXPECT_FALSE(store.Load(out_of_range).ok());
}

}  // namespace
}  // namespace surveyor
