#include "surveyor/mr_pipeline.h"

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "surveyor/pipeline.h"

namespace surveyor {
namespace {

class MrPipelineTest : public testing::Test {
 protected:
  MrPipelineTest() : world_(World::Generate(MakeTinyWorldConfig()).value()) {
    GeneratorOptions options;
    options.author_population = 6000;
    options.seed = 404;
    corpus_ = CorpusGenerator(&world_, options).Generate();
  }

  World world_;
  std::vector<RawDocument> corpus_;
};

TEST_F(MrPipelineTest, EquivalentToThreadedPipeline) {
  const int64_t rho = 20;
  // Reference: the sharded pipeline's aggregation.
  SurveyorConfig config;
  config.min_statements = rho;
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config);
  PipelineStats stats;
  EvidenceAggregator aggregator = pipeline.ExtractEvidence(corpus_, &stats);
  std::vector<PropertyTypeEvidence> expected =
      aggregator.GroupByType(world_.kb(), rho);

  // MapReduce formulation.
  std::vector<PropertyTypeEvidence> actual = ExtractAndGroupMapReduce(
      world_.kb(), world_.lexicon(), corpus_, rho);

  ASSERT_EQ(actual.size(), expected.size());
  for (size_t g = 0; g < actual.size(); ++g) {
    EXPECT_EQ(actual[g].type, expected[g].type);
    EXPECT_EQ(actual[g].property, expected[g].property);
    EXPECT_EQ(actual[g].total_statements, expected[g].total_statements);
    EXPECT_EQ(actual[g].entities, expected[g].entities);
    EXPECT_EQ(actual[g].counts, expected[g].counts);
  }
}

TEST_F(MrPipelineTest, DeterministicAcrossWorkerCounts) {
  MapReduceOptions one;
  one.num_workers = 1;
  MapReduceOptions many;
  many.num_workers = 8;
  many.num_partitions = 3;
  const auto a = ExtractAndGroupMapReduce(world_.kb(), world_.lexicon(),
                                          corpus_, 20, {}, {}, one);
  const auto b = ExtractAndGroupMapReduce(world_.kb(), world_.lexicon(),
                                          corpus_, 20, {}, {}, many);
  ASSERT_EQ(a.size(), b.size());
  for (size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(a[g].property, b[g].property);
    EXPECT_EQ(a[g].counts, b[g].counts);
  }
}

TEST_F(MrPipelineTest, RhoFilterApplies) {
  const auto loose = ExtractAndGroupMapReduce(world_.kb(), world_.lexicon(),
                                              corpus_, 1);
  const auto strict = ExtractAndGroupMapReduce(world_.kb(), world_.lexicon(),
                                               corpus_, 500);
  EXPECT_GT(loose.size(), strict.size());
  for (const PropertyTypeEvidence& group : strict) {
    EXPECT_GE(group.total_statements, 500);
  }
}

TEST_F(MrPipelineTest, FeedsEmDirectly) {
  // The MR output plugs straight into the model-learning stage.
  const auto groups = ExtractAndGroupMapReduce(world_.kb(), world_.lexicon(),
                                               corpus_, 20);
  ASSERT_FALSE(groups.empty());
  SurveyorConfig config;
  SurveyorPipeline pipeline(&world_.kb(), &world_.lexicon(), config);
  auto result = pipeline.RunFromEvidence(groups);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.num_opinions, 0);
}

TEST_F(MrPipelineTest, EmptyCorpus) {
  const auto groups =
      ExtractAndGroupMapReduce(world_.kb(), world_.lexicon(), {}, 1);
  EXPECT_TRUE(groups.empty());
}

}  // namespace
}  // namespace surveyor
