#include "kb/kb_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace surveyor {

Status SaveKnowledgeBase(const KnowledgeBase& kb, std::ostream& os) {
  os << "# surveyor knowledge base v1\n";
  for (TypeId t = 0; t < kb.num_types(); ++t) {
    os << "type\t" << kb.TypeName(t) << "\n";
  }
  for (EntityId e = 0; e < kb.num_entities(); ++e) {
    const Entity& entity = kb.entity(e);
    os << "entity\t" << kb.TypeName(entity.most_notable_type) << "\t"
       << entity.canonical_name << "\t" << entity.popularity << "\n";
    for (const auto& [key, value] : entity.attributes) {
      os << "attr\t" << kb.TypeName(entity.most_notable_type) << "\t"
         << entity.canonical_name << "\t" << key << "\t" << value << "\n";
    }
  }
  // Aliases are stored against (type, canonical_name) pairs.
  for (const std::string& alias : kb.AllAliases()) {
    for (EntityId e : kb.CandidatesForAlias(alias)) {
      const Entity& entity = kb.entity(e);
      if (entity.canonical_name == alias) continue;  // implicit alias
      os << "alias\t" << kb.TypeName(entity.most_notable_type) << "\t"
         << entity.canonical_name << "\t" << alias << "\n";
    }
  }
  if (!os.good()) return Status::Internal("write failure");
  return Status::OK();
}

namespace {

StatusOr<EntityId> ResolveEntity(const KnowledgeBase& kb,
                                 const std::string& type_name,
                                 const std::string& entity_name) {
  SURVEYOR_ASSIGN_OR_RETURN(TypeId type, kb.TypeByName(type_name));
  for (EntityId id : kb.EntitiesByName(entity_name)) {
    if (kb.entity(id).most_notable_type == type) return id;
  }
  return Status::NotFound("entity '" + entity_name + "' of type '" +
                          type_name + "' not found");
}

}  // namespace

StatusOr<KnowledgeBase> LoadKnowledgeBase(std::istream& is) {
  KnowledgeBase kb;
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::vector<std::string> fields = Split(trimmed, '\t');
    const std::string& kind = fields[0];
    auto error = [&](const std::string& msg) {
      return Status::InvalidArgument(
          StrFormat("line %d: %s", line_number, msg.c_str()));
    };
    if (kind == "type") {
      if (fields.size() != 2) return error("type expects 1 field");
      kb.AddType(fields[1]);
    } else if (kind == "entity") {
      if (fields.size() != 4) return error("entity expects 3 fields");
      auto type = kb.TypeByName(fields[1]);
      if (!type.ok()) return error("unknown type '" + fields[1] + "'");
      double popularity = 1.0;
      try {
        popularity = std::stod(fields[3]);
      } catch (...) {
        return error("bad popularity '" + fields[3] + "'");
      }
      auto id = kb.AddEntity(fields[2], *type, popularity);
      if (!id.ok()) return error(id.status().message());
    } else if (kind == "alias") {
      if (fields.size() != 4) return error("alias expects 3 fields");
      auto id = ResolveEntity(kb, fields[1], fields[2]);
      if (!id.ok()) return error(id.status().message());
      SURVEYOR_RETURN_IF_ERROR(kb.AddAlias(fields[3], *id));
    } else if (kind == "attr") {
      if (fields.size() != 5) return error("attr expects 4 fields");
      auto id = ResolveEntity(kb, fields[1], fields[2]);
      if (!id.ok()) return error(id.status().message());
      double value = 0.0;
      try {
        value = std::stod(fields[4]);
      } catch (...) {
        return error("bad attribute value '" + fields[4] + "'");
      }
      SURVEYOR_RETURN_IF_ERROR(kb.SetAttribute(*id, fields[3], value));
    } else {
      return error("unknown record kind '" + kind + "'");
    }
  }
  return kb;
}

Status SaveKnowledgeBaseToFile(const KnowledgeBase& kb,
                               const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::NotFound("cannot open '" + path + "' for writing");
  return SaveKnowledgeBase(kb, os);
}

StatusOr<KnowledgeBase> LoadKnowledgeBaseFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open '" + path + "'");
  return LoadKnowledgeBase(is);
}

}  // namespace surveyor
