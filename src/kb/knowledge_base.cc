#include "kb/knowledge_base.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace surveyor {

TypeId KnowledgeBase::AddType(std::string_view name) {
  const std::string key = ToLower(name);
  auto it = type_index_.find(key);
  if (it != type_index_.end()) return it->second;
  const TypeId id = static_cast<TypeId>(type_names_.size());
  type_names_.push_back(key);
  type_index_[key] = id;
  entities_by_type_.emplace_back();
  return id;
}

StatusOr<EntityId> KnowledgeBase::AddEntity(std::string_view canonical_name,
                                            TypeId type, double popularity) {
  if (type >= type_names_.size()) {
    return Status::InvalidArgument("unknown type id");
  }
  const std::string name = ToLower(canonical_name);
  if (name.empty()) {
    return Status::InvalidArgument("entity name must be non-empty");
  }
  for (EntityId existing : EntitiesByName(name)) {
    if (entities_[existing].most_notable_type == type) {
      return Status::AlreadyExists("entity '" + name + "' already exists");
    }
  }
  const EntityId id = static_cast<EntityId>(entities_.size());
  Entity entity;
  entity.id = id;
  entity.canonical_name = name;
  entity.most_notable_type = type;
  entity.popularity = popularity;
  entity.aliases.push_back(name);
  entities_.push_back(std::move(entity));
  entities_by_type_[type].push_back(id);
  alias_index_[name].push_back(id);
  return id;
}

Status KnowledgeBase::AddAlias(std::string_view alias, EntityId entity) {
  if (entity >= entities_.size()) {
    return Status::InvalidArgument("unknown entity id");
  }
  const std::string key = ToLower(alias);
  if (key.empty()) return Status::InvalidArgument("alias must be non-empty");
  auto& candidates = alias_index_[key];
  for (EntityId existing : candidates) {
    if (existing == entity) return Status::OK();  // idempotent
  }
  candidates.push_back(entity);
  entities_[entity].aliases.push_back(key);
  return Status::OK();
}

Status KnowledgeBase::SetAttribute(EntityId entity, std::string_view key,
                                   double value) {
  if (entity >= entities_.size()) {
    return Status::InvalidArgument("unknown entity id");
  }
  entities_[entity].attributes[std::string(key)] = value;
  return Status::OK();
}

StatusOr<double> KnowledgeBase::GetAttribute(EntityId entity,
                                             std::string_view key) const {
  if (entity >= entities_.size()) {
    return Status::InvalidArgument("unknown entity id");
  }
  const auto& attrs = entities_[entity].attributes;
  auto it = attrs.find(std::string(key));
  if (it == attrs.end()) {
    return Status::NotFound("attribute '" + std::string(key) + "' not set");
  }
  return it->second;
}

StatusOr<TypeId> KnowledgeBase::TypeByName(std::string_view name) const {
  auto it = type_index_.find(ToLower(name));
  if (it == type_index_.end()) {
    return Status::NotFound("type '" + std::string(name) + "' not found");
  }
  return it->second;
}

const std::string& KnowledgeBase::TypeName(TypeId type) const {
  SURVEYOR_CHECK_LT(type, type_names_.size());
  return type_names_[type];
}

std::vector<EntityId> KnowledgeBase::EntitiesByName(
    std::string_view name) const {
  std::vector<EntityId> result;
  const std::string key = ToLower(name);
  auto it = alias_index_.find(key);
  if (it == alias_index_.end()) return result;
  for (EntityId id : it->second) {
    if (entities_[id].canonical_name == key) result.push_back(id);
  }
  return result;
}

const std::vector<EntityId>& KnowledgeBase::CandidatesForAlias(
    std::string_view alias) const {
  auto it = alias_index_.find(ToLower(alias));
  if (it == alias_index_.end()) return empty_;
  return it->second;
}

const std::vector<EntityId>& KnowledgeBase::EntitiesOfType(TypeId type) const {
  SURVEYOR_CHECK_LT(type, entities_by_type_.size());
  return entities_by_type_[type];
}

const Entity& KnowledgeBase::entity(EntityId id) const {
  SURVEYOR_CHECK_LT(id, entities_.size());
  return entities_[id];
}

std::vector<std::string> KnowledgeBase::AllAliases() const {
  std::vector<std::string> aliases;
  aliases.reserve(alias_index_.size());
  for (const auto& [alias, ids] : alias_index_) aliases.push_back(alias);
  return aliases;
}

}  // namespace surveyor
