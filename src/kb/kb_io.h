#ifndef SURVEYOR_KB_KB_IO_H_
#define SURVEYOR_KB_KB_IO_H_

#include <iosfwd>
#include <string>

#include "kb/knowledge_base.h"
#include "util/status.h"
#include "util/statusor.h"

namespace surveyor {

/// Serializes a knowledge base as a line-oriented TSV stream. The format is
/// human-editable:
///   type <tab> NAME
///   entity <tab> TYPE <tab> NAME <tab> POPULARITY
///   alias <tab> TYPE <tab> NAME <tab> SURFACE_FORM
///   attr <tab> TYPE <tab> NAME <tab> KEY <tab> VALUE
/// Lines starting with '#' and blank lines are ignored on load.
Status SaveKnowledgeBase(const KnowledgeBase& kb, std::ostream& os);

/// Parses a knowledge base from the format written by SaveKnowledgeBase.
StatusOr<KnowledgeBase> LoadKnowledgeBase(std::istream& is);

/// File-path convenience wrappers.
Status SaveKnowledgeBaseToFile(const KnowledgeBase& kb,
                               const std::string& path);
StatusOr<KnowledgeBase> LoadKnowledgeBaseFromFile(const std::string& path);

}  // namespace surveyor

#endif  // SURVEYOR_KB_KB_IO_H_
