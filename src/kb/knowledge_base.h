#ifndef SURVEYOR_KB_KNOWLEDGE_BASE_H_
#define SURVEYOR_KB_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace surveyor {

/// Identifier of an entity within a KnowledgeBase.
using EntityId = uint32_t;
/// Identifier of an entity type within a KnowledgeBase.
using TypeId = uint32_t;

inline constexpr EntityId kInvalidEntity = static_cast<EntityId>(-1);
inline constexpr TypeId kInvalidType = static_cast<TypeId>(-1);

/// A typed knowledge-base entity. Mirrors what Surveyor needs from its
/// Freebase extension: a canonical name, a most-notable type, aliases for
/// mention detection, objective numeric attributes (population, area, ...)
/// used by the empirical correlation studies, and a popularity prior used
/// by the entity tagger's disambiguation.
struct Entity {
  EntityId id = kInvalidEntity;
  std::string canonical_name;
  TypeId most_notable_type = kInvalidType;
  /// Relative prior probability of this entity being the referent of an
  /// ambiguous mention; also drives mention frequency in the simulator.
  double popularity = 1.0;
  /// Objective numeric attributes, e.g. {"population", 870000}.
  std::map<std::string, double> attributes;
  /// All registered surface forms, canonical name included.
  std::vector<std::string> aliases;
};

/// In-memory knowledge base: typed entities with aliases and attributes.
///
/// Names and aliases are matched case-insensitively (stored lower-cased).
/// An alias may be shared by several entities; disambiguation happens in
/// the entity tagger, not here.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  /// Registers a type (idempotent); returns its id.
  TypeId AddType(std::string_view name);

  /// Adds an entity with the given canonical name and most-notable type.
  /// The canonical name is automatically registered as an alias. Fails if
  /// the type id is unknown or an entity with the same canonical name and
  /// type already exists.
  StatusOr<EntityId> AddEntity(std::string_view canonical_name, TypeId type,
                               double popularity = 1.0);

  /// Registers an additional surface form for an entity. Aliases are
  /// allowed to collide across entities (that is the ambiguity the tagger
  /// must resolve).
  Status AddAlias(std::string_view alias, EntityId entity);

  /// Sets a numeric attribute on an entity.
  Status SetAttribute(EntityId entity, std::string_view key, double value);

  /// Returns the attribute value or NotFound.
  StatusOr<double> GetAttribute(EntityId entity, std::string_view key) const;

  // --- Lookups ---------------------------------------------------------

  StatusOr<TypeId> TypeByName(std::string_view name) const;
  const std::string& TypeName(TypeId type) const;

  /// Entities whose canonical (lower-cased) name matches exactly; the same
  /// name may exist under several types.
  std::vector<EntityId> EntitiesByName(std::string_view name) const;

  /// Candidate entities for a surface form; empty if the alias is unknown.
  const std::vector<EntityId>& CandidatesForAlias(std::string_view alias) const;

  /// All entities whose most-notable type is `type`, in insertion order.
  const std::vector<EntityId>& EntitiesOfType(TypeId type) const;

  const Entity& entity(EntityId id) const;

  size_t num_entities() const { return entities_.size(); }
  size_t num_types() const { return type_names_.size(); }
  size_t num_aliases() const { return alias_index_.size(); }

  /// All registered alias surface forms (lower-cased), for lexicon
  /// construction.
  std::vector<std::string> AllAliases() const;

 private:
  std::vector<Entity> entities_;
  std::vector<std::string> type_names_;
  std::unordered_map<std::string, TypeId> type_index_;
  std::unordered_map<std::string, std::vector<EntityId>> alias_index_;
  std::vector<std::vector<EntityId>> entities_by_type_;
  std::vector<EntityId> empty_;
};

}  // namespace surveyor

#endif  // SURVEYOR_KB_KNOWLEDGE_BASE_H_
