#ifndef SURVEYOR_SURVEYOR_PIPELINE_H_
#define SURVEYOR_SURVEYOR_PIPELINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "extraction/aggregator.h"
#include "extraction/extractor.h"
#include "kb/knowledge_base.h"
#include "model/em.h"
#include "obs/report.h"
#include "obs/stage.h"
#include "text/annotator.h"
#include "text/document.h"
#include "text/document_source.h"
#include "text/lexicon.h"
#include "util/statusor.h"

namespace surveyor {

/// End-to-end pipeline configuration (Algorithm 1 of the paper).
struct SurveyorConfig {
  /// The occurrence threshold rho: property-type combinations with fewer
  /// total statements are dropped (100 in the deployed system).
  int64_t min_statements = 100;
  ExtractionOptions extraction;
  EmOptions em;
  /// Posterior threshold for emitting a polarity (paper default 1/2).
  double decision_threshold = 0.5;
  /// Supporting-statement references kept per pair (0 = off); lets query
  /// results link back to the documents that asserted them.
  int max_provenance_samples = 0;
  /// Worker threads for document annotation/extraction and per-pair EM.
  /// 0 means hardware concurrency. This is the laptop-scale stand-in for
  /// the paper's 5000-node cluster.
  int num_threads = 0;
  EntityTaggerOptions tagger;
  /// Streaming extraction logs a progress line (docs/sec, statements/sec,
  /// queue depth) every this many seconds; 0 disables the reporter.
  double progress_interval_seconds = 5.0;
  /// When true, Run* computes per-pair ModelDiagnostics and aggregates
  /// them into the run report (worst-chi2 misfit ranking).
  bool collect_fit_diagnostics = true;
  /// How many worst-fitting pairs the run report keeps.
  int report_worst_fits = 10;
  /// Live metrics registry for the admin plane (not owned, must outlive
  /// the pipeline). When set, Run* records its counters here — so an
  /// embedded obs::AdminServer scraping the same registry sees them move
  /// mid-run — instead of into a run-local registry. Reports and
  /// PipelineStats are derived from the same registry either way.
  obs::MetricRegistry* live_metrics = nullptr;
  /// Readiness state machine for /readyz (not owned). When set, Run*
  /// advances it: extracting -> fitting -> done, and carries the degraded
  /// flag of the last run.
  obs::StageTracker* stage_tracker = nullptr;
  /// Fault-injection spec armed for the duration of every Run* call (see
  /// util/fault.h for the grammar, DESIGN.md §9 for the point names).
  /// Empty = leave the process-wide injector alone (including an
  /// environment-armed chaos profile).
  std::string fault_spec;
  /// Seed of the fault injector's trigger stream when fault_spec is set.
  uint64_t fault_seed = 42;
  /// When true (default), a property-type pair whose EM fit fails — an
  /// injected "em_fit" fault, a non-finite result, or an internal error —
  /// falls back to the smoothed-majority-vote baseline and is reported as
  /// degraded instead of failing the run. Configuration errors (invalid
  /// EmOptions, bad threshold) are always hard failures. When false, the
  /// first fit failure aborts the run (the pre-degradation behavior).
  bool degrade_failed_fits = true;
  /// Head-sampling rate in [0, 1] for admin-plane request traces
  /// (--trace-sample-rate): the fraction of requests whose span tree is
  /// retained on /tracez. 0 disables head sampling.
  double trace_sample_rate = 0.01;
  /// Requests slower than this many milliseconds are trace-captured
  /// regardless of sampling (--slow-query-ms); 0 disables tail capture.
  double slow_query_ms = 250.0;

  /// One check for the whole configuration: range checks on
  /// min_statements / decision_threshold / thread counts / sample counts,
  /// EmOptions validity, fault-spec parseability. Every pipeline entry
  /// point (Run, RunStreaming, RunFromEvidence — and therefore Mine)
  /// calls this before doing any work, so a bad configuration fails fast
  /// with kInvalidArgument instead of mid-run; the CLI surfaces the
  /// message verbatim.
  Status Validate() const;
};

/// Fitted model and inferences for one property-type combination.
struct PropertyTypeResult {
  PropertyTypeEvidence evidence;
  ModelParams params;
  /// Posterior Pr(D=+|E) aligned with evidence.entities.
  std::vector<double> posterior;
  /// Decisions aligned with evidence.entities.
  std::vector<Polarity> polarity;
  int em_iterations = 0;
  /// True when the EM fit failed and this pair's posterior is the
  /// smoothed-majority-vote fallback (params are the initial guess,
  /// em_iterations is 0). Degraded pairs still emit opinions.
  bool degraded = false;
  /// Why the fit was abandoned; empty for healthy pairs.
  std::string degraded_reason;
};

/// One output tuple <entity, property, polarity> of Algorithm 1.
struct PairOpinion {
  EntityId entity = kInvalidEntity;
  TypeId type = kInvalidType;
  std::string property;
  double probability = 0.5;
  Polarity polarity = Polarity::kNeutral;
};

/// Throughput and volume statistics of one pipeline run (the Section 7.1
/// numbers at laptop scale). Every counter is derived from the run's
/// metrics registry, so Run and RunStreaming cannot drift and the values
/// match the run report exactly.
struct PipelineStats {
  int64_t num_documents = 0;
  int64_t num_sentences = 0;
  int64_t num_parsed_sentences = 0;
  int64_t parse_failure_count = 0;         ///< sentences the parser rejected
  int64_t num_statements = 0;
  int64_t num_negative_statements = 0;     ///< polarity flipped by negation
  /// Statements per extraction pattern, keyed by PatternKindName
  /// ("amod", "acomp", "conj", "xcomp").
  std::map<std::string, int64_t> statements_by_pattern;
  int64_t num_entity_property_pairs = 0;   ///< pairs with evidence (60M analog)
  int64_t num_property_type_pairs = 0;     ///< before the rho filter (7M analog)
  int64_t num_kept_property_type_pairs = 0;  ///< after the filter (380k analog)
  int64_t num_opinions = 0;                ///< emitted polarities (4B analog)
  int64_t num_retries = 0;                 ///< recovered transient failures
  int64_t num_faults_injected = 0;         ///< fault-point firings this run
  int64_t num_docs_quarantined = 0;        ///< corrupt documents dropped
  int64_t num_degraded_pairs = 0;          ///< pairs on the SMV fallback
  int64_t source_truncated = 0;            ///< 1 if the stream ended early
  double extraction_seconds = 0.0;
  double grouping_seconds = 0.0;
  double em_seconds = 0.0;
};

/// Full pipeline result.
struct PipelineResult {
  std::vector<PropertyTypeResult> pairs;
  PipelineStats stats;
  /// Machine-readable run artifact: every metric, the span tree, stage
  /// seconds and aggregate EM diagnostics (see DESIGN.md §7).
  obs::RunReport report;
  /// Supporting-statement samples per (entity, property); populated only
  /// when SurveyorConfig::max_provenance_samples > 0. These are the
  /// "links to supporting content" a subjective-query result can show.
  std::map<std::pair<EntityId, std::string>, std::vector<StatementRef>>
      provenance;

  /// Flattens all non-neutral decisions into output tuples.
  std::vector<PairOpinion> Opinions() const;

  /// Finds the result for a (type, property) combination; nullptr if the
  /// combination fell under the rho threshold.
  const PropertyTypeResult* Find(TypeId type, const std::string& property) const;
};

/// The Surveyor system (Algorithm 1): extract evidence from raw documents,
/// group it by property-type combination, learn the user-behavior model
/// per combination with EM, and infer a dominant-opinion probability for
/// every entity of every kept combination.
class SurveyorPipeline {
 public:
  /// `kb` and `lexicon` must outlive the pipeline.
  SurveyorPipeline(const KnowledgeBase* kb, const Lexicon* lexicon,
                   SurveyorConfig config = {});

  /// Runs the full pipeline over a document corpus.
  StatusOr<PipelineResult> Run(const std::vector<RawDocument>& corpus) const;

  /// Full pipeline over a document stream: workers pull documents from
  /// `source` until it is exhausted, so the corpus never needs to fit in
  /// memory (the deployed system's snapshot was 40 TB). `source` must be
  /// thread-safe.
  StatusOr<PipelineResult> RunStreaming(DocumentSource& source) const;

  /// Model learning + inference over pre-aggregated evidence (one entry
  /// per property-type combination that passed the rho filter).
  StatusOr<PipelineResult> RunFromEvidence(
      std::vector<PropertyTypeEvidence> evidence) const;

  const SurveyorConfig& config() const { return config_; }

  // --- Deprecated shims (removal next PR) --------------------------------
  // The public API is Run/RunStreaming/RunFromEvidence (or the
  // surveyor::Mine facade in api.h); partial-pipeline extraction was
  // registry plumbing that leaked out. Kept one PR for callers to migrate.

  /// \deprecated Use Run(); extraction-only output will move behind the
  /// facade. Annotation + extraction, sharded across threads, against a
  /// throwaway registry.
  EvidenceAggregator ExtractEvidence(const std::vector<RawDocument>& corpus,
                                     PipelineStats* stats) const;

  /// \deprecated Use RunStreaming(); see ExtractEvidence.
  EvidenceAggregator ExtractEvidenceStreaming(DocumentSource& source,
                                              PipelineStats* stats) const;

 private:
  EvidenceAggregator ExtractEvidenceWithRegistry(
      const std::vector<RawDocument>& corpus, obs::MetricRegistry& registry,
      PipelineStats* stats) const;
  EvidenceAggregator ExtractEvidenceStreamingWithRegistry(
      DocumentSource& source, obs::MetricRegistry& registry,
      PipelineStats* stats) const;
  StatusOr<PipelineResult> RunFromEvidenceWithRegistry(
      std::vector<PropertyTypeEvidence> evidence,
      obs::MetricRegistry& registry, obs::RunReport* report) const;
  StatusOr<PipelineResult> FinishRun(EvidenceAggregator aggregator,
                                     PipelineStats stats,
                                     obs::MetricRegistry& registry,
                                     obs::RunReport* report) const;

  const KnowledgeBase* kb_;
  const Lexicon* lexicon_;
  SurveyorConfig config_;
};

}  // namespace surveyor

#endif  // SURVEYOR_SURVEYOR_PIPELINE_H_
