#include "surveyor/surveyor_classifier.h"

#include "util/logging.h"

namespace surveyor {

SurveyorClassifier::SurveyorClassifier(EmOptions em_options,
                                       double decision_threshold,
                                       std::string name)
    : learner_(std::move(em_options)),
      decision_threshold_(decision_threshold),
      name_(std::move(name)) {
  SURVEYOR_CHECK_GE(decision_threshold_, 0.5);
  SURVEYOR_CHECK_LT(decision_threshold_, 1.0);
}

StatusOr<EmFitResult> SurveyorClassifier::Fit(
    const PropertyTypeEvidence& evidence) const {
  return learner_.Fit(evidence.counts);
}

std::vector<Polarity> SurveyorClassifier::Classify(
    const PropertyTypeEvidence& evidence) const {
  std::vector<Polarity> result(evidence.counts.size(), Polarity::kNeutral);
  auto fit = learner_.Fit(evidence.counts);
  if (!fit.ok()) {
    SURVEYOR_LOG(Warning) << "EM failed for property '" << evidence.property
                          << "': " << fit.status().ToString();
    return result;
  }
  for (size_t i = 0; i < result.size(); ++i) {
    result[i] = DecidePolarity(fit->responsibilities[i], decision_threshold_);
  }
  return result;
}

}  // namespace surveyor
