#ifndef SURVEYOR_SURVEYOR_MR_PIPELINE_H_
#define SURVEYOR_SURVEYOR_MR_PIPELINE_H_

#include <vector>

#include "extraction/aggregator.h"
#include "extraction/extractor.h"
#include "kb/knowledge_base.h"
#include "mapreduce/mapreduce.h"
#include "text/document.h"
#include "text/entity_tagger.h"
#include "text/lexicon.h"
#include "util/statusor.h"

namespace surveyor {

/// The extraction and grouping stages of Algorithm 1 expressed as two
/// MapReduce jobs — the same shape as the paper's cluster deployment
/// (Section 7.1: "extracting evidence ... took around one hour [on 5000
/// nodes]; combining information ... and grouping entities by type took
/// around one hour"):
///
///   Job 1 (extract): map each document through annotation + pattern
///   extraction, emitting ((entity, property), counts); reduce by summing
///   counters per pair.
///
///   Job 2 (group by type): map each pair to ((most-notable type,
///   property), (entity, counts)); reduce by materializing the full
///   per-entity counter vector of the combination.
///
/// Combinations with fewer than `min_statements` total statements (the
/// paper's rho) are dropped after Job 2. Output is deterministic and
/// equivalent to SurveyorPipeline::ExtractEvidence + GroupByType.
///
/// When `report` is non-null it receives the summed retry/quarantine
/// accounting of both jobs (see MapReduceOptions for the fault model).
std::vector<PropertyTypeEvidence> ExtractAndGroupMapReduce(
    const KnowledgeBase& kb, const Lexicon& lexicon,
    const std::vector<RawDocument>& corpus, int64_t min_statements,
    ExtractionOptions extraction = {}, EntityTaggerOptions tagger = {},
    MapReduceOptions mr_options = {}, MapReduceReport* report = nullptr);

}  // namespace surveyor

#endif  // SURVEYOR_SURVEYOR_MR_PIPELINE_H_
