#include "surveyor/api.h"

namespace surveyor {

StatusOr<PipelineResult> Mine(const SurveyorConfig& config,
                              DocumentSource& source, const KnowledgeBase& kb,
                              const Lexicon& lexicon) {
  return SurveyorPipeline(&kb, &lexicon, config).RunStreaming(source);
}

StatusOr<PipelineResult> Mine(const SurveyorConfig& config,
                              const std::vector<RawDocument>& corpus,
                              const KnowledgeBase& kb, const Lexicon& lexicon) {
  return SurveyorPipeline(&kb, &lexicon, config).Run(corpus);
}

}  // namespace surveyor
