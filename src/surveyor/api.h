#ifndef SURVEYOR_SURVEYOR_API_H_
#define SURVEYOR_SURVEYOR_API_H_

#include <vector>

#include "kb/knowledge_base.h"
#include "surveyor/pipeline.h"
#include "text/document.h"
#include "text/document_source.h"
#include "text/lexicon.h"
#include "util/statusor.h"

namespace surveyor {

/// The public face of the mining side of Surveyor: one call from raw
/// documents to mined opinions (Algorithm 1 end to end). `Mine` validates
/// the configuration, runs extraction + grouping + per-pair EM + inference
/// and returns the full result — the report, the provenance and the
/// opinions that `serving::SnapshotWriter` freezes into the artifact
/// `surveyor_cli serve` answers queries from.
///
/// This facade plus SurveyorPipeline's three Run* methods are the entire
/// supported surface; everything else on the pipeline (registry plumbing,
/// partial extraction) is private or a deprecated shim on its way out.
/// Prefer the facade: it cannot be called in a wrong order, and callers
/// that only mine never need to name SurveyorPipeline at all.
///
/// `kb` and `lexicon` must outlive the call. `source` must be
/// thread-safe; it is drained until exhaustion without ever materializing
/// the corpus in memory.
StatusOr<PipelineResult> Mine(const SurveyorConfig& config,
                              DocumentSource& source, const KnowledgeBase& kb,
                              const Lexicon& lexicon);

/// In-memory corpus overload for tests and laptop-scale runs.
StatusOr<PipelineResult> Mine(const SurveyorConfig& config,
                              const std::vector<RawDocument>& corpus,
                              const KnowledgeBase& kb, const Lexicon& lexicon);

}  // namespace surveyor

#endif  // SURVEYOR_SURVEYOR_API_H_
