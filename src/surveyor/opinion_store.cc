#include "surveyor/opinion_store.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace surveyor {

OpinionStore::OpinionStore(const KnowledgeBase* kb) : kb_(kb) {
  SURVEYOR_CHECK(kb_ != nullptr);
}

void OpinionStore::Add(const PairOpinion& opinion) {
  SURVEYOR_CHECK_NE(opinion.entity, kInvalidEntity);
  SURVEYOR_CHECK(opinion.polarity != Polarity::kNeutral);
  by_pair_[{opinion.entity, opinion.property}] = opinion;
}

void OpinionStore::AddAll(const PipelineResult& result) {
  for (const PairOpinion& opinion : result.Opinions()) Add(opinion);
}

StatusOr<PairOpinion> OpinionStore::Lookup(EntityId entity,
                                           const std::string& property) const {
  auto it = by_pair_.find({entity, property});
  if (it == by_pair_.end()) {
    return Status::NotFound("no opinion for entity " +
                            std::to_string(entity) + " / '" + property + "'");
  }
  return it->second;
}

std::vector<PairOpinion> OpinionStore::Query(TypeId type,
                                             const std::string& property,
                                             size_t limit) const {
  std::vector<PairOpinion> result;
  for (const auto& [key, opinion] : by_pair_) {
    if (opinion.type != type || opinion.property != property) continue;
    if (opinion.polarity != Polarity::kPositive) continue;
    result.push_back(opinion);
  }
  std::sort(result.begin(), result.end(),
            [](const PairOpinion& a, const PairOpinion& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.entity < b.entity;
            });
  if (limit > 0 && result.size() > limit) result.resize(limit);
  return result;
}

std::vector<PairOpinion> OpinionStore::PropertiesOf(EntityId entity) const {
  std::vector<PairOpinion> result;
  for (auto it = by_pair_.lower_bound({entity, std::string()});
       it != by_pair_.end() && it->first.first == entity; ++it) {
    result.push_back(it->second);
  }
  std::sort(result.begin(), result.end(),
            [](const PairOpinion& a, const PairOpinion& b) {
              if (a.polarity != b.polarity) {
                return a.polarity == Polarity::kPositive;
              }
              const double da = std::abs(a.probability - 0.5);
              const double db = std::abs(b.probability - 0.5);
              if (da != db) return da > db;
              return a.property < b.property;
            });
  return result;
}

std::vector<std::pair<TypeId, std::string>> OpinionStore::Pairs() const {
  std::vector<std::pair<TypeId, std::string>> pairs;
  for (const auto& [key, opinion] : by_pair_) {
    const std::pair<TypeId, std::string> pair{opinion.type, opinion.property};
    if (pairs.empty() || pairs.back() != pair) pairs.push_back(pair);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

Status OpinionStore::Save(std::ostream& os) const {
  os << "# surveyor opinion store v1\n";
  for (const auto& [key, opinion] : by_pair_) {
    os << "opinion\t" << kb_->TypeName(opinion.type) << "\t"
       << kb_->entity(opinion.entity).canonical_name << "\t"
       << opinion.property << "\t" << PolarityName(opinion.polarity) << "\t"
       << StrFormat("%.6f", opinion.probability) << "\n";
  }
  if (!os.good()) return Status::Internal("write failure");
  return Status::OK();
}

Status OpinionStore::Load(std::istream& is) {
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::vector<std::string> fields = Split(trimmed, '\t');
    auto error = [&](const std::string& msg) {
      return Status::InvalidArgument(
          StrFormat("line %d: %s", line_number, msg.c_str()));
    };
    if (fields[0] != "opinion" || fields.size() != 6) {
      return error("expected 'opinion' with 5 fields");
    }
    auto type = kb_->TypeByName(fields[1]);
    if (!type.ok()) return error("unknown type '" + fields[1] + "'");
    EntityId entity = kInvalidEntity;
    for (EntityId candidate : kb_->EntitiesByName(fields[2])) {
      if (kb_->entity(candidate).most_notable_type == *type) {
        entity = candidate;
      }
    }
    if (entity == kInvalidEntity) {
      return error("unknown entity '" + fields[2] + "'");
    }
    PairOpinion opinion;
    opinion.entity = entity;
    opinion.type = *type;
    opinion.property = fields[3];
    if (fields[4] == "+") {
      opinion.polarity = Polarity::kPositive;
    } else if (fields[4] == "-") {
      opinion.polarity = Polarity::kNegative;
    } else {
      return error("bad polarity '" + fields[4] + "'");
    }
    try {
      opinion.probability = std::stod(fields[5]);
    } catch (...) {
      return error("bad probability '" + fields[5] + "'");
    }
    if (!(opinion.probability >= 0.0 && opinion.probability <= 1.0)) {
      return error("probability out of range");
    }
    Add(opinion);
  }
  return Status::OK();
}

Status OpinionStore::SaveToFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return Status::NotFound("cannot open '" + path + "' for writing");
  return Save(os);
}

Status OpinionStore::LoadFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open '" + path + "'");
  return Load(is);
}

}  // namespace surveyor
