#include "surveyor/pipeline.h"

#include <algorithm>
#include <mutex>
#include <thread>

#include "util/logging.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace surveyor {

std::vector<PairOpinion> PipelineResult::Opinions() const {
  std::vector<PairOpinion> opinions;
  for (const PropertyTypeResult& pair : pairs) {
    for (size_t i = 0; i < pair.evidence.entities.size(); ++i) {
      if (pair.polarity[i] == Polarity::kNeutral) continue;
      PairOpinion opinion;
      opinion.entity = pair.evidence.entities[i];
      opinion.type = pair.evidence.type;
      opinion.property = pair.evidence.property;
      opinion.probability = pair.posterior[i];
      opinion.polarity = pair.polarity[i];
      opinions.push_back(std::move(opinion));
    }
  }
  return opinions;
}

const PropertyTypeResult* PipelineResult::Find(
    TypeId type, const std::string& property) const {
  for (const PropertyTypeResult& pair : pairs) {
    if (pair.evidence.type == type && pair.evidence.property == property) {
      return &pair;
    }
  }
  return nullptr;
}

SurveyorPipeline::SurveyorPipeline(const KnowledgeBase* kb,
                                   const Lexicon* lexicon,
                                   SurveyorConfig config)
    : kb_(kb), lexicon_(lexicon), config_(std::move(config)) {
  SURVEYOR_CHECK(kb_ != nullptr);
  SURVEYOR_CHECK(lexicon_ != nullptr);
}

namespace {

size_t EffectiveThreads(int configured) {
  if (configured > 0) return static_cast<size_t>(configured);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

}  // namespace

EvidenceAggregator SurveyorPipeline::ExtractEvidence(
    const std::vector<RawDocument>& corpus, PipelineStats* stats) const {
  const size_t num_threads = EffectiveThreads(config_.num_threads);
  ThreadPool pool(num_threads);
  const size_t num_shards = num_threads;

  struct ShardState {
    EvidenceAggregator aggregator;
    int64_t sentences = 0;
    int64_t parsed = 0;
  };
  std::vector<ShardState> shards(num_shards);
  for (ShardState& shard : shards) {
    shard.aggregator = EvidenceAggregator(config_.max_provenance_samples);
  }

  TextAnnotator annotator(kb_, lexicon_, config_.tagger);
  EvidenceExtractor extractor(config_.extraction);

  // Documents are independent: shard them across workers, merge counters
  // at the end — the paper's map-reduce at thread scale.
  const size_t docs_per_shard = (corpus.size() + num_shards - 1) / num_shards;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    const size_t begin = shard * docs_per_shard;
    const size_t end = std::min(corpus.size(), begin + docs_per_shard);
    if (begin >= end) continue;
    pool.Submit([&, shard, begin, end] {
      ShardState& state = shards[shard];
      for (size_t d = begin; d < end; ++d) {
        const AnnotatedDocument doc =
            annotator.AnnotateDocument(corpus[d].doc_id, corpus[d].text);
        state.sentences += static_cast<int64_t>(doc.sentences.size());
        for (const AnnotatedSentence& sentence : doc.sentences) {
          if (sentence.parsed) ++state.parsed;
        }
        state.aggregator.AddAll(extractor.ExtractFromDocument(doc));
      }
    });
  }
  pool.Wait();

  EvidenceAggregator merged(config_.max_provenance_samples);
  int64_t sentences = 0;
  int64_t parsed = 0;
  for (const ShardState& state : shards) {
    merged.Merge(state.aggregator);
    sentences += state.sentences;
    parsed += state.parsed;
  }
  if (stats != nullptr) {
    stats->num_documents = static_cast<int64_t>(corpus.size());
    stats->num_sentences = sentences;
    stats->num_parsed_sentences = parsed;
    stats->num_statements = merged.total_statements();
    stats->num_entity_property_pairs = static_cast<int64_t>(merged.num_pairs());
  }
  return merged;
}

EvidenceAggregator SurveyorPipeline::ExtractEvidenceStreaming(
    DocumentSource& source, PipelineStats* stats) const {
  const size_t num_threads = EffectiveThreads(config_.num_threads);
  ThreadPool pool(num_threads);

  struct ShardState {
    EvidenceAggregator aggregator;
    int64_t documents = 0;
    int64_t sentences = 0;
    int64_t parsed = 0;
  };
  std::vector<ShardState> shards(num_threads);
  for (ShardState& shard : shards) {
    shard.aggregator = EvidenceAggregator(config_.max_provenance_samples);
  }

  TextAnnotator annotator(kb_, lexicon_, config_.tagger);
  EvidenceExtractor extractor(config_.extraction);

  // Each worker pulls documents until the source runs dry; the source is
  // the only point of coordination.
  for (size_t shard = 0; shard < num_threads; ++shard) {
    pool.Submit([&, shard] {
      ShardState& state = shards[shard];
      for (;;) {
        std::optional<RawDocument> doc = source.Next();
        if (!doc.has_value()) return;
        ++state.documents;
        const AnnotatedDocument annotated =
            annotator.AnnotateDocument(doc->doc_id, doc->text);
        state.sentences += static_cast<int64_t>(annotated.sentences.size());
        for (const AnnotatedSentence& sentence : annotated.sentences) {
          if (sentence.parsed) ++state.parsed;
        }
        state.aggregator.AddAll(extractor.ExtractFromDocument(annotated));
      }
    });
  }
  pool.Wait();

  EvidenceAggregator merged(config_.max_provenance_samples);
  int64_t documents = 0;
  int64_t sentences = 0;
  int64_t parsed = 0;
  for (const ShardState& state : shards) {
    merged.Merge(state.aggregator);
    documents += state.documents;
    sentences += state.sentences;
    parsed += state.parsed;
  }
  if (stats != nullptr) {
    stats->num_documents = documents;
    stats->num_sentences = sentences;
    stats->num_parsed_sentences = parsed;
    stats->num_statements = merged.total_statements();
    stats->num_entity_property_pairs = static_cast<int64_t>(merged.num_pairs());
  }
  return merged;
}

namespace {

/// Shared tail of Run/RunStreaming: group, filter, learn, merge stats.
StatusOr<PipelineResult> FinishRun(const SurveyorPipeline& pipeline,
                                   const KnowledgeBase& kb,
                                   const SurveyorConfig& config,
                                   EvidenceAggregator aggregator,
                                   PipelineStats stats) {
  WallTimer timer;
  std::vector<PropertyTypeEvidence> all_pairs =
      aggregator.GroupByType(kb, /*min_statements=*/1);
  stats.num_property_type_pairs = static_cast<int64_t>(all_pairs.size());
  std::vector<PropertyTypeEvidence> kept;
  for (PropertyTypeEvidence& pair : all_pairs) {
    if (pair.total_statements >= config.min_statements) {
      kept.push_back(std::move(pair));
    }
  }
  stats.grouping_seconds = timer.ElapsedSeconds();

  SURVEYOR_ASSIGN_OR_RETURN(PipelineResult result,
                            pipeline.RunFromEvidence(std::move(kept)));
  if (config.max_provenance_samples > 0) {
    for (auto& [entity, property, refs] :
         aggregator.AllSupportingStatements()) {
      result.provenance[{entity, property}] = std::move(refs);
    }
  }
  const double em_seconds = result.stats.em_seconds;
  const int64_t kept_pairs = result.stats.num_kept_property_type_pairs;
  const int64_t opinions = result.stats.num_opinions;
  result.stats = stats;
  result.stats.em_seconds = em_seconds;
  result.stats.num_kept_property_type_pairs = kept_pairs;
  result.stats.num_opinions = opinions;
  return result;
}

}  // namespace

StatusOr<PipelineResult> SurveyorPipeline::RunStreaming(
    DocumentSource& source) const {
  PipelineStats stats;
  WallTimer timer;
  EvidenceAggregator aggregator = ExtractEvidenceStreaming(source, &stats);
  stats.extraction_seconds = timer.ElapsedSeconds();
  return FinishRun(*this, *kb_, config_, std::move(aggregator), stats);
}

StatusOr<PipelineResult> SurveyorPipeline::RunFromEvidence(
    std::vector<PropertyTypeEvidence> evidence) const {
  if (!(config_.decision_threshold >= 0.5 && config_.decision_threshold < 1.0)) {
    return Status::InvalidArgument("decision threshold must be in [0.5, 1)");
  }
  PipelineResult result;
  result.pairs.resize(evidence.size());

  const EmLearner learner(config_.em);
  ThreadPool pool(EffectiveThreads(config_.num_threads));
  std::mutex error_mutex;
  Status first_error = Status::OK();

  WallTimer timer;
  // Property-type combinations are independent: one EM per combination.
  ParallelFor(pool, evidence.size(), [&](size_t i) {
    PropertyTypeResult& pair = result.pairs[i];
    pair.evidence = std::move(evidence[i]);
    auto fit = learner.Fit(pair.evidence.counts);
    if (!fit.ok()) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.ok()) first_error = fit.status();
      return;
    }
    pair.params = fit->params;
    pair.posterior = std::move(fit->responsibilities);
    pair.em_iterations = fit->iterations;
    pair.polarity.resize(pair.posterior.size());
    for (size_t e = 0; e < pair.posterior.size(); ++e) {
      pair.polarity[e] =
          DecidePolarity(pair.posterior[e], config_.decision_threshold);
    }
  });
  if (!first_error.ok()) return first_error;

  result.stats.em_seconds = timer.ElapsedSeconds();
  result.stats.num_kept_property_type_pairs =
      static_cast<int64_t>(result.pairs.size());
  for (const PropertyTypeResult& pair : result.pairs) {
    for (Polarity polarity : pair.polarity) {
      if (polarity != Polarity::kNeutral) ++result.stats.num_opinions;
    }
  }
  return result;
}

StatusOr<PipelineResult> SurveyorPipeline::Run(
    const std::vector<RawDocument>& corpus) const {
  PipelineStats stats;
  WallTimer timer;
  EvidenceAggregator aggregator = ExtractEvidence(corpus, &stats);
  stats.extraction_seconds = timer.ElapsedSeconds();
  return FinishRun(*this, *kb_, config_, std::move(aggregator), stats);
}

}  // namespace surveyor
