#include "surveyor/pipeline.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <thread>

#include "model/diagnostics.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/string_util.h"
#include "util/threadpool.h"

namespace surveyor {

std::vector<PairOpinion> PipelineResult::Opinions() const {
  std::vector<PairOpinion> opinions;
  for (const PropertyTypeResult& pair : pairs) {
    for (size_t i = 0; i < pair.evidence.entities.size(); ++i) {
      if (pair.polarity[i] == Polarity::kNeutral) continue;
      PairOpinion opinion;
      opinion.entity = pair.evidence.entities[i];
      opinion.type = pair.evidence.type;
      opinion.property = pair.evidence.property;
      opinion.probability = pair.posterior[i];
      opinion.polarity = pair.polarity[i];
      opinions.push_back(std::move(opinion));
    }
  }
  return opinions;
}

const PropertyTypeResult* PipelineResult::Find(
    TypeId type, const std::string& property) const {
  for (const PropertyTypeResult& pair : pairs) {
    if (pair.evidence.type == type && pair.evidence.property == property) {
      return &pair;
    }
  }
  return nullptr;
}

Status SurveyorConfig::Validate() const {
  if (min_statements < 0) {
    return Status::InvalidArgument(
        "min_statements (the rho occurrence threshold) must be >= 0");
  }
  if (!(decision_threshold >= 0.5 && decision_threshold < 1.0)) {
    return Status::InvalidArgument("decision threshold must be in [0.5, 1)");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        "num_threads must be >= 0 (0 = hardware concurrency)");
  }
  if (max_provenance_samples < 0) {
    return Status::InvalidArgument(
        "max_provenance_samples must be >= 0 (0 = provenance off)");
  }
  if (report_worst_fits < 0) {
    return Status::InvalidArgument("report_worst_fits must be >= 0");
  }
  if (!(progress_interval_seconds >= 0.0)) {
    return Status::InvalidArgument(
        "progress_interval_seconds must be >= 0 (0 = reporter off)");
  }
  if (!(trace_sample_rate >= 0.0 && trace_sample_rate <= 1.0)) {
    return Status::InvalidArgument(
        "trace_sample_rate must be in [0, 1] (0 = head sampling off)");
  }
  if (!(slow_query_ms >= 0.0)) {
    return Status::InvalidArgument(
        "slow_query_ms must be >= 0 (0 = tail capture off)");
  }
  SURVEYOR_RETURN_IF_ERROR(ValidateEmOptions(em));
  if (!fault_spec.empty()) {
    const Status spec_status = FaultInjector::ValidateSpec(fault_spec);
    if (!spec_status.ok()) {
      return Status::InvalidArgument("fault_spec: " + spec_status.message());
    }
  }
  return Status::OK();
}

SurveyorPipeline::SurveyorPipeline(const KnowledgeBase* kb,
                                   const Lexicon* lexicon,
                                   SurveyorConfig config)
    : kb_(kb), lexicon_(lexicon), config_(std::move(config)) {
  SURVEYOR_CHECK(kb_ != nullptr);
  SURVEYOR_CHECK(lexicon_ != nullptr);
}

namespace {

constexpr int kNumPatternKinds = 4;

size_t EffectiveThreads(int configured) {
  if (configured > 0) return static_cast<size_t>(configured);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

/// Advances the admin plane's readiness machine when one is attached.
void EnterStage(obs::StageTracker* tracker, obs::PipelineStage stage) {
  if (tracker != nullptr) tracker->SetStage(stage);
}

/// Per-run fault accounting: arms the config's spec for the scope of one
/// Run* call and meters the injections it caused into the registry
/// (surveyor_faults_injected_total), whether they came from the config
/// spec or an environment-armed chaos profile.
class RunFaultScope {
 public:
  RunFaultScope(const SurveyorConfig& config, obs::MetricRegistry& registry)
      : registry_(registry),
        injected_before_(FaultInjector::Global().TotalInjected()) {
    if (!config.fault_spec.empty()) {
      scoped_.emplace(config.fault_spec, config.fault_seed);
    }
    if (config.stage_tracker != nullptr) {
      config.stage_tracker->SetDegraded(false);
    }
  }

  /// Flushes the injection delta into the registry; call before reading
  /// the counter (idempotent via re-snapshotting).
  void MeterInjected() {
    const int64_t now = FaultInjector::Global().TotalInjected();
    registry_.GetCounter("surveyor_faults_injected_total")
        ->Increment(now - injected_before_);
    injected_before_ = now;
  }

 private:
  obs::MetricRegistry& registry_;
  int64_t injected_before_;
  std::optional<ScopedFaults> scoped_;
};

/// Copies the degradation counters out of the registry into the stats
/// view (same single-source-of-truth scheme as the extraction counters).
void FillDegradationStats(obs::MetricRegistry& registry,
                          PipelineStats* stats) {
  stats->num_retries = registry.GetCounter("surveyor_retries_total")->Value();
  stats->num_faults_injected =
      registry.GetCounter("surveyor_faults_injected_total")->Value();
  stats->num_docs_quarantined =
      registry.GetCounter("surveyor_docs_quarantined_total")->Value();
  stats->num_degraded_pairs =
      registry.GetCounter("surveyor_pairs_degraded_total")->Value();
  stats->source_truncated =
      registry.GetCounter("surveyor_source_truncated_total")->Value();
}

/// True when every number the fit produced is usable for inference.
bool FitIsFinite(const EmFitResult& fit) {
  if (!std::isfinite(fit.params.agreement) ||
      !std::isfinite(fit.params.mu_positive) ||
      !std::isfinite(fit.params.mu_negative)) {
    return false;
  }
  for (double r : fit.responsibilities) {
    if (!std::isfinite(r)) return false;
  }
  return true;
}

/// The smoothed-majority-vote fallback of a failed fit: the same formula
/// EM uses to initialize responsibilities, so a degraded pair equals an
/// EM run stopped before its first iteration. Entities with no evidence
/// land on 0.5 (undecided) and emit no opinion.
void DegradePairToMajorityVote(const Status& why, double decision_threshold,
                               const ModelParams& initial_params,
                               PropertyTypeResult* pair) {
  pair->degraded = true;
  pair->degraded_reason = why.message();
  pair->params = initial_params;
  pair->em_iterations = 0;
  const std::vector<EvidenceCounts>& counts = pair->evidence.counts;
  pair->posterior.resize(counts.size());
  pair->polarity.resize(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    const double cp = static_cast<double>(counts[i].positive);
    const double cn = static_cast<double>(counts[i].negative);
    pair->posterior[i] = (cp + 0.5) / (cp + cn + 1.0);
    pair->polarity[i] = DecidePolarity(pair->posterior[i], decision_threshold);
  }
}

/// Counter handles of the extraction stage, resolved once per run so the
/// per-document hot path is pure lock-free increments. Both the batch and
/// the streaming path count through this one type, which is what keeps
/// their PipelineStats in lockstep.
struct ExtractionCounters {
  explicit ExtractionCounters(obs::MetricRegistry& registry) {
    documents = registry.GetCounter("surveyor_extract_documents_total");
    sentences = registry.GetCounter("surveyor_extract_sentences_total");
    parsed_sentences =
        registry.GetCounter("surveyor_extract_parsed_sentences_total");
    parse_failures =
        registry.GetCounter("surveyor_extract_parse_failures_total");
    statements = registry.GetCounter("surveyor_extract_statements_total");
    negative_statements =
        registry.GetCounter("surveyor_extract_negative_statements_total");
    for (int kind = 0; kind < kNumPatternKinds; ++kind) {
      by_pattern[static_cast<size_t>(kind)] = registry.GetCounter(
          "surveyor_extract_statements_" +
          std::string(PatternKindName(static_cast<PatternKind>(kind))) +
          "_total");
    }
  }

  void CountDocument(const AnnotatedDocument& doc,
                     const std::vector<EvidenceStatement>& extracted) const {
    documents->Increment();
    sentences->Increment(static_cast<int64_t>(doc.sentences.size()));
    int64_t parsed = 0;
    for (const AnnotatedSentence& sentence : doc.sentences) {
      if (sentence.parsed) ++parsed;
    }
    parsed_sentences->Increment(parsed);
    parse_failures->Increment(static_cast<int64_t>(doc.sentences.size()) -
                              parsed);
    statements->Increment(static_cast<int64_t>(extracted.size()));
    for (const EvidenceStatement& statement : extracted) {
      if (!statement.positive) negative_statements->Increment();
      by_pattern[static_cast<size_t>(statement.pattern)]->Increment();
    }
  }

  obs::Counter* documents = nullptr;
  obs::Counter* sentences = nullptr;
  obs::Counter* parsed_sentences = nullptr;
  obs::Counter* parse_failures = nullptr;
  obs::Counter* statements = nullptr;
  obs::Counter* negative_statements = nullptr;
  std::array<obs::Counter*, kNumPatternKinds> by_pattern{};
};

/// Derives the extraction slice of PipelineStats from the registry — the
/// registry is the single source of truth, the struct is a view.
void FillExtractionStats(const ExtractionCounters& counters,
                         obs::MetricRegistry& registry,
                         const EvidenceAggregator& merged,
                         PipelineStats* stats) {
  registry.GetGauge("surveyor_extract_entity_property_pairs")
      ->Set(static_cast<double>(merged.num_pairs()));
  if (stats == nullptr) return;
  stats->num_documents = counters.documents->Value();
  stats->num_sentences = counters.sentences->Value();
  stats->num_parsed_sentences = counters.parsed_sentences->Value();
  stats->parse_failure_count = counters.parse_failures->Value();
  stats->num_statements = counters.statements->Value();
  stats->num_negative_statements = counters.negative_statements->Value();
  stats->statements_by_pattern.clear();
  for (int kind = 0; kind < kNumPatternKinds; ++kind) {
    stats->statements_by_pattern[std::string(
        PatternKindName(static_cast<PatternKind>(kind)))] =
        counters.by_pattern[static_cast<size_t>(kind)]->Value();
  }
  stats->num_entity_property_pairs = static_cast<int64_t>(merged.num_pairs());
}

/// Copies a pool's usage counters into the registry under a stage prefix.
void RecordPoolMetrics(obs::MetricRegistry& registry, const ThreadPool& pool,
                       const std::string& stage) {
  const ThreadPoolStats pool_stats = pool.stats();
  registry.GetCounter("surveyor_" + stage + "_pool_tasks_total")
      ->Increment(pool_stats.tasks_submitted);
  registry.GetGauge("surveyor_" + stage + "_pool_idle_seconds")
      ->Add(pool_stats.idle_seconds);
  registry.GetGauge("surveyor_" + stage + "_pool_threads")
      ->Set(static_cast<double>(pool.num_threads()));
}

/// Mirrors PipelineStats as name -> value for the run report, so report
/// consumers can cross-check the struct against the raw counters.
std::map<std::string, double> StatsToMap(const PipelineStats& stats) {
  std::map<std::string, double> map = {
      {"num_documents", static_cast<double>(stats.num_documents)},
      {"num_sentences", static_cast<double>(stats.num_sentences)},
      {"num_parsed_sentences",
       static_cast<double>(stats.num_parsed_sentences)},
      {"parse_failure_count", static_cast<double>(stats.parse_failure_count)},
      {"num_statements", static_cast<double>(stats.num_statements)},
      {"num_negative_statements",
       static_cast<double>(stats.num_negative_statements)},
      {"num_entity_property_pairs",
       static_cast<double>(stats.num_entity_property_pairs)},
      {"num_property_type_pairs",
       static_cast<double>(stats.num_property_type_pairs)},
      {"num_kept_property_type_pairs",
       static_cast<double>(stats.num_kept_property_type_pairs)},
      {"num_opinions", static_cast<double>(stats.num_opinions)},
      {"num_retries", static_cast<double>(stats.num_retries)},
      {"num_faults_injected",
       static_cast<double>(stats.num_faults_injected)},
      {"num_docs_quarantined",
       static_cast<double>(stats.num_docs_quarantined)},
      {"num_degraded_pairs", static_cast<double>(stats.num_degraded_pairs)},
      {"source_truncated", static_cast<double>(stats.source_truncated)},
      {"extraction_seconds", stats.extraction_seconds},
      {"grouping_seconds", stats.grouping_seconds},
      {"em_seconds", stats.em_seconds},
  };
  for (const auto& [pattern, count] : stats.statements_by_pattern) {
    map["statements_" + pattern] = static_cast<double>(count);
  }
  return map;
}

/// Final report assembly: metric snapshot, span tree, stage seconds and
/// the PipelineStats mirror.
void AssembleReport(obs::MetricRegistry& registry,
                    const obs::TraceSession& trace,
                    const PipelineStats& stats, obs::RunReport* report) {
  report->metrics = registry.Snapshot();
  report->spans = trace.Snapshot();
  report->dropped_spans = trace.dropped_spans();
  report->stage_seconds = {{"extract", stats.extraction_seconds},
                           {"group", stats.grouping_seconds},
                           {"em", stats.em_seconds}};
  report->pipeline_stats = StatsToMap(stats);
  // Recovered retries alone do not degrade a run — only lost documents,
  // fallback pairs, or a truncated source do.
  report->degradation.retries = stats.num_retries;
  report->degradation.faults_injected = stats.num_faults_injected;
  report->degradation.docs_quarantined = stats.num_docs_quarantined;
  report->degradation.pairs_degraded = stats.num_degraded_pairs;
  report->degradation.degraded = stats.num_docs_quarantined > 0 ||
                                 stats.num_degraded_pairs > 0 ||
                                 !report->degradation.notes.empty();
}

}  // namespace

EvidenceAggregator SurveyorPipeline::ExtractEvidenceWithRegistry(
    const std::vector<RawDocument>& corpus, obs::MetricRegistry& registry,
    PipelineStats* stats) const {
  const size_t num_threads = EffectiveThreads(config_.num_threads);
  ThreadPool pool(num_threads);
  const size_t num_shards = num_threads;

  std::vector<EvidenceAggregator> shards(num_shards);
  for (EvidenceAggregator& shard : shards) {
    shard = EvidenceAggregator(config_.max_provenance_samples);
  }

  ExtractionCounters counters(registry);
  TextAnnotator annotator(kb_, lexicon_, config_.tagger);
  EvidenceExtractor extractor(config_.extraction);

  // Documents are independent: shard them across workers, merge counters
  // at the end — the paper's map-reduce at thread scale.
  const uint64_t parent_span = obs::CurrentSpanId();
  const size_t docs_per_shard = (corpus.size() + num_shards - 1) / num_shards;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    const size_t begin = shard * docs_per_shard;
    const size_t end = std::min(corpus.size(), begin + docs_per_shard);
    if (begin >= end) continue;
    pool.Submit([&, shard, begin, end, parent_span] {
      obs::ScopedSpan span("extract.shard", parent_span);
      EvidenceAggregator& aggregator = shards[shard];
      for (size_t d = begin; d < end; ++d) {
        const AnnotatedDocument doc =
            annotator.AnnotateDocument(corpus[d].doc_id, corpus[d].text);
        const std::vector<EvidenceStatement> statements =
            extractor.ExtractFromDocument(doc);
        counters.CountDocument(doc, statements);
        aggregator.AddAll(statements);
      }
    });
  }
  pool.Wait();

  EvidenceAggregator merged(config_.max_provenance_samples);
  for (const EvidenceAggregator& shard : shards) merged.Merge(shard);
  RecordPoolMetrics(registry, pool, "extract");
  FillExtractionStats(counters, registry, merged, stats);
  return merged;
}

EvidenceAggregator SurveyorPipeline::ExtractEvidenceStreamingWithRegistry(
    DocumentSource& source, obs::MetricRegistry& registry,
    PipelineStats* stats) const {
  const size_t num_threads = EffectiveThreads(config_.num_threads);
  ThreadPool pool(num_threads);

  std::vector<EvidenceAggregator> shards(num_threads);
  for (EvidenceAggregator& shard : shards) {
    shard = EvidenceAggregator(config_.max_provenance_samples);
  }

  ExtractionCounters counters(registry);
  TextAnnotator annotator(kb_, lexicon_, config_.tagger);
  EvidenceExtractor extractor(config_.extraction);

  // The snapshot never fits in memory, so the operator's only window into
  // a streaming run is this periodic progress line.
  std::unique_ptr<obs::ProgressReporter> reporter;
  if (config_.progress_interval_seconds > 0) {
    struct RateState {
      int64_t documents = 0;
      int64_t statements = 0;
      std::chrono::steady_clock::time_point last =
          std::chrono::steady_clock::now();
    };
    auto previous = std::make_shared<RateState>();
    obs::Counter* documents_counter = counters.documents;
    obs::Counter* statements_counter = counters.statements;
    ThreadPool* pool_ptr = &pool;
    reporter = std::make_unique<obs::ProgressReporter>(
        config_.progress_interval_seconds,
        [previous, documents_counter, statements_counter, pool_ptr] {
          const int64_t documents = documents_counter->Value();
          const int64_t statements = statements_counter->Value();
          const auto now = std::chrono::steady_clock::now();
          const double seconds =
              std::chrono::duration<double>(now - previous->last).count();
          const double doc_rate =
              seconds > 0 ? (documents - previous->documents) / seconds : 0.0;
          const double statement_rate =
              seconds > 0 ? (statements - previous->statements) / seconds
                          : 0.0;
          previous->documents = documents;
          previous->statements = statements;
          previous->last = now;
          SURVEYOR_LOG(Info) << StrFormat(
              "extract: %lld docs (%.0f/s), %lld statements (%.0f/s), "
              "queue depth %zu",
              static_cast<long long>(documents), doc_rate,
              static_cast<long long>(statements), statement_rate,
              pool_ptr->queue_depth());
        });
  }

  // Each worker pulls documents until the source runs dry; the source is
  // the only point of coordination.
  const uint64_t parent_span = obs::CurrentSpanId();
  for (size_t shard = 0; shard < num_threads; ++shard) {
    pool.Submit([&, shard, parent_span] {
      obs::ScopedSpan span("extract.shard", parent_span);
      EvidenceAggregator& aggregator = shards[shard];
      for (;;) {
        std::optional<RawDocument> doc = source.Next();
        if (!doc.has_value()) return;
        const AnnotatedDocument annotated =
            annotator.AnnotateDocument(doc->doc_id, doc->text);
        const std::vector<EvidenceStatement> statements =
            extractor.ExtractFromDocument(annotated);
        counters.CountDocument(annotated, statements);
        aggregator.AddAll(statements);
      }
    });
  }
  pool.Wait();
  reporter.reset();

  EvidenceAggregator merged(config_.max_provenance_samples);
  for (const EvidenceAggregator& shard : shards) merged.Merge(shard);
  RecordPoolMetrics(registry, pool, "extract");
  // The source's fault accounting (transparent retries, quarantined
  // corrupt documents) surfaces through the run's registry.
  const DocumentSourceCounters source_counters = source.counters();
  registry.GetCounter("surveyor_retries_total")
      ->Increment(source_counters.read_retries);
  registry.GetCounter("surveyor_docs_quarantined_total")
      ->Increment(source_counters.quarantined_documents);
  FillExtractionStats(counters, registry, merged, stats);
  return merged;
}

EvidenceAggregator SurveyorPipeline::ExtractEvidence(
    const std::vector<RawDocument>& corpus, PipelineStats* stats) const {
  obs::MetricRegistry registry;
  return ExtractEvidenceWithRegistry(corpus, registry, stats);
}

EvidenceAggregator SurveyorPipeline::ExtractEvidenceStreaming(
    DocumentSource& source, PipelineStats* stats) const {
  obs::MetricRegistry registry;
  return ExtractEvidenceStreamingWithRegistry(source, registry, stats);
}

/// Shared tail of Run/RunStreaming: group, filter, learn, merge stats.
StatusOr<PipelineResult> SurveyorPipeline::FinishRun(
    EvidenceAggregator aggregator, PipelineStats stats,
    obs::MetricRegistry& registry, obs::RunReport* report) const {
  std::vector<PropertyTypeEvidence> kept;
  {
    obs::ScopedSpan span("group");
    std::vector<PropertyTypeEvidence> all_pairs =
        aggregator.GroupByType(*kb_, /*min_statements=*/1);
    obs::Counter* total_pairs =
        registry.GetCounter("surveyor_group_property_type_pairs_total");
    obs::Counter* kept_pairs =
        registry.GetCounter("surveyor_group_pairs_kept_total");
    obs::Counter* dropped_pairs =
        registry.GetCounter("surveyor_group_pairs_dropped_total");
    obs::Counter* dropped_statements =
        registry.GetCounter("surveyor_group_statements_dropped_total");
    total_pairs->Increment(static_cast<int64_t>(all_pairs.size()));
    for (PropertyTypeEvidence& pair : all_pairs) {
      if (pair.total_statements >= config_.min_statements) {
        kept_pairs->Increment();
        kept.push_back(std::move(pair));
      } else {
        dropped_pairs->Increment();
        dropped_statements->Increment(pair.total_statements);
      }
    }
    stats.num_property_type_pairs = total_pairs->Value();
    span.End();
    stats.grouping_seconds = span.ElapsedSeconds();
  }

  SURVEYOR_ASSIGN_OR_RETURN(
      PipelineResult result,
      RunFromEvidenceWithRegistry(std::move(kept), registry, report));
  if (config_.max_provenance_samples > 0) {
    for (auto& [entity, property, refs] :
         aggregator.AllSupportingStatements()) {
      result.provenance[{entity, property}] = std::move(refs);
    }
  }
  const double em_seconds = result.stats.em_seconds;
  const int64_t kept_pairs = result.stats.num_kept_property_type_pairs;
  const int64_t opinions = result.stats.num_opinions;
  result.stats = stats;
  result.stats.em_seconds = em_seconds;
  result.stats.num_kept_property_type_pairs = kept_pairs;
  result.stats.num_opinions = opinions;
  return result;
}

StatusOr<PipelineResult> SurveyorPipeline::RunStreaming(
    DocumentSource& source) const {
  SURVEYOR_RETURN_IF_ERROR(config_.Validate());
  obs::MetricRegistry local_registry;
  obs::MetricRegistry& registry =
      config_.live_metrics != nullptr ? *config_.live_metrics : local_registry;
  obs::TraceSession trace;
  obs::RunReport report;
  report.em.max_worst_fits = config_.report_worst_fits;
  PipelineStats stats;
  RunFaultScope faults(config_, registry);
  StatusOr<PipelineResult> result = [&]() -> StatusOr<PipelineResult> {
    obs::ScopedSpan root("pipeline.run");
    EvidenceAggregator aggregator = [&] {
      EnterStage(config_.stage_tracker, obs::PipelineStage::kExtracting);
      obs::ScopedSpan span("extract");
      EvidenceAggregator extracted =
          ExtractEvidenceStreamingWithRegistry(source, registry, &stats);
      span.End();
      stats.extraction_seconds = span.ElapsedSeconds();
      return extracted;
    }();
    return FinishRun(std::move(aggregator), stats, registry, &report);
  }();
  if (!result.ok()) return result;
  // A source that ends with an error mid-stream means the corpus was only
  // partially read; warn rather than pretend the numbers are complete.
  const Status source_status = source.status();
  if (!source_status.ok()) {
    registry.GetCounter("surveyor_source_truncated_total")->Increment();
    SURVEYOR_LOG(Warning) << "document source truncated: "
                          << source_status.ToString();
    report.degradation.notes.push_back("document source truncated: " +
                                       source_status.ToString());
  }
  faults.MeterInjected();
  FillDegradationStats(registry, &result->stats);
  AssembleReport(registry, trace, result->stats, &report);
  result->report = std::move(report);
  EnterStage(config_.stage_tracker, obs::PipelineStage::kDone);
  if (config_.stage_tracker != nullptr) {
    config_.stage_tracker->SetDegraded(result->report.degradation.degraded);
  }
  return result;
}

StatusOr<PipelineResult> SurveyorPipeline::RunFromEvidenceWithRegistry(
    std::vector<PropertyTypeEvidence> evidence, obs::MetricRegistry& registry,
    obs::RunReport* report) const {
  // A bad configuration fails every pair the same way; reject it once, up
  // front and loudly — degradation is only for per-pair failures. The
  // public entry points validate before extraction; this backstop covers
  // the internal path for callers the compiler cannot see.
  SURVEYOR_RETURN_IF_ERROR(config_.Validate());
  EnterStage(config_.stage_tracker, obs::PipelineStage::kFitting);
  PipelineResult result;
  result.pairs.resize(evidence.size());

  obs::Counter* fits = registry.GetCounter("surveyor_em_fits_total");
  obs::Counter* iterations =
      registry.GetCounter("surveyor_em_iterations_total");
  obs::Counter* grid_evaluations =
      registry.GetCounter("surveyor_em_grid_evaluations_total");
  obs::Counter* convergence_failures =
      registry.GetCounter("surveyor_em_convergence_failures_total");
  obs::Counter* degraded_pairs =
      registry.GetCounter("surveyor_pairs_degraded_total");
  obs::Histogram* iteration_histogram = registry.GetHistogram(
      "surveyor_em_iterations",
      obs::HistogramOptions{/*first_bound=*/1.0, /*growth=*/2.0,
                            /*num_finite_buckets=*/8});

  const bool collect_diagnostics =
      config_.collect_fit_diagnostics && report != nullptr;
  std::vector<obs::EmFitDiagnostics> fit_diagnostics(
      collect_diagnostics ? evidence.size() : 0);

  const EmLearner learner(config_.em);
  ThreadPool pool(EffectiveThreads(config_.num_threads));
  Mutex error_mutex;
  Status first_error = Status::OK();
  // Written by workers under error_mutex; read single-threaded after Wait.
  std::vector<obs::DegradedPairInfo> degraded_infos;

  obs::ScopedSpan em_span("em");
  const uint64_t em_parent = obs::CurrentSpanId();
  // Property-type combinations are independent: one EM per combination.
  ParallelFor(pool, evidence.size(), [&](size_t i) {
    obs::ScopedSpan span("em.fit", em_parent);
    PropertyTypeResult& pair = result.pairs[i];
    pair.evidence = std::move(evidence[i]);
    // A failed fit degrades this pair, not the run: an injected "em_fit"
    // fault, an internal error, or a non-finite result falls back to the
    // SMV baseline. Deterministic input errors (kInvalidArgument) still
    // abort — retrying or degrading those would hide bugs.
    Status fit_error = Status::OK();
    std::optional<EmFitResult> fit;
    if (SURVEYOR_FAULT("em_fit")) {
      fit_error = Status::Internal("injected fault: em_fit");
    } else {
      StatusOr<EmFitResult> fitted = learner.Fit(pair.evidence.counts);
      if (!fitted.ok()) {
        fit_error = fitted.status();
      } else if (!FitIsFinite(*fitted)) {
        fit_error = Status::Internal("non-finite fit result");
      } else {
        fit = std::move(*fitted);
      }
    }
    if (!fit_error.ok()) {
      const bool degradable =
          config_.degrade_failed_fits &&
          fit_error.code() != StatusCode::kInvalidArgument;
      if (!degradable) {
        MutexLock lock(error_mutex);
        if (first_error.ok()) first_error = fit_error;
        return;
      }
      DegradePairToMajorityVote(fit_error, config_.decision_threshold,
                                config_.em.initial_params, &pair);
      degraded_pairs->Increment();
      obs::DegradedPairInfo info;
      info.type_name = kb_->TypeName(pair.evidence.type);
      info.property = pair.evidence.property;
      info.reason = pair.degraded_reason;
      MutexLock lock(error_mutex);
      degraded_infos.push_back(std::move(info));
      return;
    }
    fits->Increment();
    iterations->Increment(fit->iterations);
    grid_evaluations->Increment(fit->grid_evaluations);
    if (!fit->converged) convergence_failures->Increment();
    iteration_histogram->Record(static_cast<double>(fit->iterations));
    if (collect_diagnostics) {
      const ModelDiagnostics diagnostics =
          DiagnoseFit(pair.evidence.counts, *fit);
      obs::EmFitDiagnostics& out = fit_diagnostics[i];
      out.type_name = kb_->TypeName(pair.evidence.type);
      out.property = pair.evidence.property;
      out.total_statements = pair.evidence.total_statements;
      out.iterations = fit->iterations;
      out.converged = fit->converged;
      out.log_likelihood = diagnostics.log_likelihood;
      out.aic = diagnostics.aic;
      out.chi2_positive = diagnostics.positive_count_chi2;
      out.chi2_negative = diagnostics.negative_count_chi2;
    }
    pair.params = fit->params;
    pair.posterior = std::move(fit->responsibilities);
    pair.em_iterations = fit->iterations;
    pair.polarity.resize(pair.posterior.size());
    for (size_t e = 0; e < pair.posterior.size(); ++e) {
      pair.polarity[e] =
          DecidePolarity(pair.posterior[e], config_.decision_threshold);
    }
  });
  if (!first_error.ok()) return first_error;
  em_span.End();
  RecordPoolMetrics(registry, pool, "em");

  if (!degraded_infos.empty()) {
    // Collection order is scheduling-dependent; sort for a deterministic
    // report.
    std::sort(degraded_infos.begin(), degraded_infos.end(),
              [](const obs::DegradedPairInfo& a,
                 const obs::DegradedPairInfo& b) {
                if (a.type_name != b.type_name) {
                  return a.type_name < b.type_name;
                }
                return a.property < b.property;
              });
    for (const obs::DegradedPairInfo& info : degraded_infos) {
      SURVEYOR_LOG(Warning) << "degraded pair (" << info.type_name << ", "
                            << info.property
                            << ") fell back to majority vote: " << info.reason;
    }
    if (report != nullptr) {
      for (obs::DegradedPairInfo& info : degraded_infos) {
        report->degradation.degraded_pairs.push_back(std::move(info));
      }
    }
  }

  if (collect_diagnostics) {
    report->em.max_worst_fits = config_.report_worst_fits;
    for (obs::EmFitDiagnostics& diagnostics : fit_diagnostics) {
      report->em.Add(std::move(diagnostics));
    }
  }

  result.stats.em_seconds = em_span.ElapsedSeconds();
  result.stats.num_kept_property_type_pairs =
      static_cast<int64_t>(result.pairs.size());
  obs::Counter* opinions =
      registry.GetCounter("surveyor_infer_opinions_total");
  obs::Counter* neutral = registry.GetCounter("surveyor_infer_neutral_total");
  for (const PropertyTypeResult& pair : result.pairs) {
    for (Polarity polarity : pair.polarity) {
      if (polarity != Polarity::kNeutral) {
        opinions->Increment();
      } else {
        neutral->Increment();
      }
    }
  }
  result.stats.num_opinions = opinions->Value();
  return result;
}

StatusOr<PipelineResult> SurveyorPipeline::RunFromEvidence(
    std::vector<PropertyTypeEvidence> evidence) const {
  SURVEYOR_RETURN_IF_ERROR(config_.Validate());
  obs::MetricRegistry local_registry;
  obs::MetricRegistry& registry =
      config_.live_metrics != nullptr ? *config_.live_metrics : local_registry;
  obs::TraceSession trace;
  obs::RunReport report;
  RunFaultScope faults(config_, registry);
  StatusOr<PipelineResult> result =
      RunFromEvidenceWithRegistry(std::move(evidence), registry, &report);
  if (!result.ok()) return result;
  faults.MeterInjected();
  FillDegradationStats(registry, &result->stats);
  AssembleReport(registry, trace, result->stats, &report);
  result->report = std::move(report);
  EnterStage(config_.stage_tracker, obs::PipelineStage::kDone);
  if (config_.stage_tracker != nullptr) {
    config_.stage_tracker->SetDegraded(result->report.degradation.degraded);
  }
  return result;
}

StatusOr<PipelineResult> SurveyorPipeline::Run(
    const std::vector<RawDocument>& corpus) const {
  SURVEYOR_RETURN_IF_ERROR(config_.Validate());
  obs::MetricRegistry local_registry;
  obs::MetricRegistry& registry =
      config_.live_metrics != nullptr ? *config_.live_metrics : local_registry;
  obs::TraceSession trace;
  obs::RunReport report;
  report.em.max_worst_fits = config_.report_worst_fits;
  PipelineStats stats;
  RunFaultScope faults(config_, registry);
  StatusOr<PipelineResult> result = [&]() -> StatusOr<PipelineResult> {
    obs::ScopedSpan root("pipeline.run");
    EvidenceAggregator aggregator = [&] {
      EnterStage(config_.stage_tracker, obs::PipelineStage::kExtracting);
      obs::ScopedSpan span("extract");
      EvidenceAggregator extracted =
          ExtractEvidenceWithRegistry(corpus, registry, &stats);
      span.End();
      stats.extraction_seconds = span.ElapsedSeconds();
      return extracted;
    }();
    return FinishRun(std::move(aggregator), stats, registry, &report);
  }();
  if (!result.ok()) return result;
  faults.MeterInjected();
  FillDegradationStats(registry, &result->stats);
  AssembleReport(registry, trace, result->stats, &report);
  result->report = std::move(report);
  EnterStage(config_.stage_tracker, obs::PipelineStage::kDone);
  if (config_.stage_tracker != nullptr) {
    config_.stage_tracker->SetDegraded(result->report.degradation.degraded);
  }
  return result;
}

}  // namespace surveyor
