#ifndef SURVEYOR_SURVEYOR_SURVEYOR_CLASSIFIER_H_
#define SURVEYOR_SURVEYOR_SURVEYOR_CLASSIFIER_H_

#include <string>
#include <vector>

#include "baselines/classifier.h"
#include "model/em.h"

namespace surveyor {

/// The Surveyor method behind the OpinionClassifier interface: fits the
/// user-behavior model to the pair's evidence with EM and decides each
/// entity from its posterior. Used by the comparison harness next to the
/// baselines.
class SurveyorClassifier : public OpinionClassifier {
 public:
  /// `name` distinguishes configured variants in result tables and in the
  /// comparison harness's classification cache.
  explicit SurveyorClassifier(EmOptions em_options = {},
                              double decision_threshold = 0.5,
                              std::string name = "Surveyor");

  std::string name() const override { return name_; }
  std::vector<Polarity> Classify(
      const PropertyTypeEvidence& evidence) const override;

  /// Like Classify but also exposes the fitted parameters and posteriors.
  StatusOr<EmFitResult> Fit(const PropertyTypeEvidence& evidence) const;

 private:
  EmLearner learner_;
  double decision_threshold_;
  std::string name_;
};

}  // namespace surveyor

#endif  // SURVEYOR_SURVEYOR_SURVEYOR_CLASSIFIER_H_
