#include "surveyor/mr_pipeline.h"

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>

#include "obs/trace.h"
#include "text/annotator.h"

namespace surveyor {
namespace {

/// (entity, property) shuffle key for the extract job.
using PairKey = std::pair<EntityId, std::string>;
/// (type, property) shuffle key for the grouping job.
using TypePropertyKey = std::pair<TypeId, std::string>;

struct PairKeyHasher {
  size_t operator()(const PairKey& key) const {
    return std::hash<EntityId>()(key.first) ^
           (std::hash<std::string>()(key.second) * 1099511628211ULL);
  }
};

struct TypePropertyKeyHasher {
  size_t operator()(const TypePropertyKey& key) const {
    return std::hash<TypeId>()(key.first) ^
           (std::hash<std::string>()(key.second) * 1099511628211ULL);
  }
};

/// Output record of the extract job: one pair with summed counters.
struct PairCounts {
  EntityId entity = kInvalidEntity;
  std::string property;
  EvidenceCounts counts;
};

/// Sums one job's fault accounting into the caller's report.
void AccumulateReport(const MapReduceReport& job, MapReduceReport* total) {
  if (total == nullptr) return;
  total->map_tasks += job.map_tasks;
  total->reduce_tasks += job.reduce_tasks;
  total->map_task_retries += job.map_task_retries;
  total->reduce_task_retries += job.reduce_task_retries;
  total->quarantined_map_tasks += job.quarantined_map_tasks;
  total->quarantined_map_inputs += job.quarantined_map_inputs;
  total->quarantined_reduce_tasks += job.quarantined_reduce_tasks;
  total->quarantined_keys += job.quarantined_keys;
}

}  // namespace

std::vector<PropertyTypeEvidence> ExtractAndGroupMapReduce(
    const KnowledgeBase& kb, const Lexicon& lexicon,
    const std::vector<RawDocument>& corpus, int64_t min_statements,
    ExtractionOptions extraction, EntityTaggerOptions tagger,
    MapReduceOptions mr_options, MapReduceReport* report) {
  const TextAnnotator annotator(&kb, &lexicon, tagger);
  const EvidenceExtractor extractor(extraction);

  // --- Job 1: extract -----------------------------------------------------
  obs::ScopedSpan extract_span("mr.extract");
  MapReduce<RawDocument, PairKey, EvidenceCounts, PairCounts, PairKeyHasher>
      extract_job(mr_options);
  MapReduceReport extract_report;
  const std::vector<PairCounts> pair_counts = extract_job.Run(
      corpus,
      [&](const RawDocument& doc,
          const std::function<void(PairKey, EvidenceCounts)>& emit) {
        const AnnotatedDocument annotated =
            annotator.AnnotateDocument(doc.doc_id, doc.text);
        for (const EvidenceStatement& statement :
             extractor.ExtractFromDocument(annotated)) {
          EvidenceCounts counts;
          (statement.positive ? counts.positive : counts.negative) = 1;
          emit(PairKey{statement.entity, statement.property}, counts);
        }
      },
      [](const PairKey& key, std::vector<EvidenceCounts>& values) {
        PairCounts out;
        out.entity = key.first;
        out.property = key.second;
        for (const EvidenceCounts& v : values) {
          out.counts.positive += v.positive;
          out.counts.negative += v.negative;
        }
        return out;
      },
      &extract_report);
  extract_span.End();
  AccumulateReport(extract_report, report);

  // Precompute each entity's slot within its type's member list so the
  // grouping reducer is O(pairs) instead of O(pairs * type size).
  std::vector<size_t> slot_of_entity(kb.num_entities(), 0);
  for (TypeId t = 0; t < kb.num_types(); ++t) {
    const std::vector<EntityId>& members = kb.EntitiesOfType(t);
    for (size_t i = 0; i < members.size(); ++i) {
      slot_of_entity[members[i]] = i;
    }
  }

  // --- Job 2: group by (most-notable type, property) -----------------------
  obs::ScopedSpan group_span("mr.group");
  using EntityCounts = std::pair<EntityId, EvidenceCounts>;
  MapReduce<PairCounts, TypePropertyKey, EntityCounts, PropertyTypeEvidence,
            TypePropertyKeyHasher>
      group_job(mr_options);
  MapReduceReport group_report;
  std::vector<PropertyTypeEvidence> groups = group_job.Run(
      pair_counts,
      [&](const PairCounts& pair,
          const std::function<void(TypePropertyKey, EntityCounts)>& emit) {
        const TypeId type = kb.entity(pair.entity).most_notable_type;
        emit(TypePropertyKey{type, pair.property},
             EntityCounts{pair.entity, pair.counts});
      },
      [&](const TypePropertyKey& key, std::vector<EntityCounts>& values) {
        PropertyTypeEvidence evidence;
        evidence.type = key.first;
        evidence.property = key.second;
        evidence.entities = kb.EntitiesOfType(key.first);
        evidence.counts.resize(evidence.entities.size());
        for (const auto& [entity, counts] : values) {
          const size_t slot = slot_of_entity[entity];
          SURVEYOR_CHECK_LT(slot, evidence.counts.size());
          evidence.counts[slot] = counts;
          evidence.total_statements += counts.total();
        }
        return evidence;
      },
      &group_report);
  group_span.End();
  AccumulateReport(group_report, report);

  // --- rho filter + deterministic global order ------------------------------
  std::vector<PropertyTypeEvidence> kept;
  for (PropertyTypeEvidence& group : groups) {
    if (group.total_statements >= min_statements) {
      kept.push_back(std::move(group));
    }
  }
  std::sort(kept.begin(), kept.end(),
            [](const PropertyTypeEvidence& a, const PropertyTypeEvidence& b) {
              if (a.type != b.type) return a.type < b.type;
              return a.property < b.property;
            });
  return kept;
}

}  // namespace surveyor
