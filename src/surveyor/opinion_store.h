#ifndef SURVEYOR_SURVEYOR_OPINION_STORE_H_
#define SURVEYOR_SURVEYOR_OPINION_STORE_H_

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "surveyor/pipeline.h"
#include "util/statusor.h"

namespace surveyor {

/// The knowledge base of subjective properties that Surveyor exists to
/// build (paper Section 1): mined <entity, property, polarity, probability>
/// tuples with the query shapes a search engine needs — "safe cities"
/// (entities of a type with a property) and entity profiles (properties of
/// an entity). Serializable to a line-oriented TSV format.
class OpinionStore {
 public:
  /// `kb` must outlive the store; it resolves names in queries and I/O.
  explicit OpinionStore(const KnowledgeBase* kb);

  /// Inserts one opinion (replaces an existing tuple for the same pair).
  void Add(const PairOpinion& opinion);

  /// Inserts every non-neutral opinion of a pipeline result.
  void AddAll(const PipelineResult& result);

  size_t size() const { return by_pair_.size(); }

  /// The mined opinion for one pair; NotFound when Surveyor produced no
  /// output for it.
  StatusOr<PairOpinion> Lookup(EntityId entity,
                               const std::string& property) const;

  /// Subjective query ("safe cities"): entities of `type` whose dominant
  /// opinion affirms `property`, strongest probability first, at most
  /// `limit` results (0 = no limit).
  std::vector<PairOpinion> Query(TypeId type, const std::string& property,
                                 size_t limit = 0) const;

  /// Entity profile: every mined property of `entity`, affirmed first,
  /// then by probability distance from 1/2.
  std::vector<PairOpinion> PropertiesOf(EntityId entity) const;

  /// All distinct (type, property) combinations present in the store.
  std::vector<std::pair<TypeId, std::string>> Pairs() const;

  // --- Serialization ------------------------------------------------------
  /// Writes "opinion <tab> TYPE <tab> ENTITY <tab> PROPERTY <tab>
  /// POLARITY <tab> PROBABILITY" lines.
  Status Save(std::ostream& os) const;

  /// Parses the format written by Save. Entities are resolved against the
  /// store's knowledge base; unknown entities are an error.
  Status Load(std::istream& is);

  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

 private:
  const KnowledgeBase* kb_;
  /// (entity, property) -> opinion. Ordered for deterministic output.
  std::map<std::pair<EntityId, std::string>, PairOpinion> by_pair_;
};

}  // namespace surveyor

#endif  // SURVEYOR_SURVEYOR_OPINION_STORE_H_
