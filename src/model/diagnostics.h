#ifndef SURVEYOR_MODEL_DIAGNOSTICS_H_
#define SURVEYOR_MODEL_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "model/em.h"
#include "model/opinion.h"
#include "model/user_model.h"

namespace surveyor {

/// Goodness-of-fit diagnostics for one fitted property-type model. The
/// deployed system runs unsupervised over 380k pairs; diagnostics like
/// these are how an operator finds pairs where the two-Poisson mixture is
/// a poor description of the counts (e.g. heavy exposure heterogeneity).
struct ModelDiagnostics {
  /// Observed-data log-likelihood of the fitted model.
  double log_likelihood = 0.0;
  /// Akaike information criterion (2k - 2 LL with k = 3 parameters).
  double aic = 0.0;

  /// Statement-mass check: expected vs observed totals under the fit.
  double expected_positive_statements = 0.0;
  double observed_positive_statements = 0.0;
  double expected_negative_statements = 0.0;
  double observed_negative_statements = 0.0;

  /// Expected fraction of entities with a positive dominant opinion.
  double positive_entity_fraction = 0.0;
  /// Entities whose posterior is within 1e-6 of 1/2 (no decision).
  int undecided_entities = 0;

  /// Pearson chi-square statistics over binned count histograms
  /// (bins 0, 1, 2, 3-5, 6-10, 11-20, 21+), one per statement polarity.
  /// Large values flag misfit; the statistic is descriptive (the bins are
  /// few and the model was fitted on the same data), not a formal test.
  double positive_count_chi2 = 0.0;
  double negative_count_chi2 = 0.0;

  /// Renders a compact human-readable report.
  std::string ToString() const;
};

/// Computes diagnostics for a fit over its training evidence.
ModelDiagnostics DiagnoseFit(const std::vector<EvidenceCounts>& counts,
                             const EmFitResult& fit);

}  // namespace surveyor

#endif  // SURVEYOR_MODEL_DIAGNOSTICS_H_
