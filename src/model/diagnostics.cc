#include "model/diagnostics.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/logging.h"
#include "util/math.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

// Histogram bins over statement counts: [lo, hi] inclusive.
struct Bin {
  int64_t lo;
  int64_t hi;
};
constexpr Bin kBins[] = {{0, 0},  {1, 1},   {2, 2},          {3, 5},
                         {6, 10}, {11, 20}, {21, INT64_MAX}};
constexpr size_t kNumBins = std::size(kBins);

size_t BinIndex(int64_t count) {
  for (size_t b = 0; b < kNumBins; ++b) {
    if (count >= kBins[b].lo && count <= kBins[b].hi) return b;
  }
  return kNumBins - 1;
}

// Probability that a Poisson(rate) draw lands in bin b.
double PoissonBinProbability(double rate, size_t b) {
  // Sum the pmf; for the open-ended last bin use the complement.
  if (kBins[b].hi == INT64_MAX) {
    double below = 0.0;
    for (int64_t k = 0; k < kBins[b].lo; ++k) below += PoissonPmf(k, rate);
    return std::max(0.0, 1.0 - below);
  }
  double total = 0.0;
  for (int64_t k = kBins[b].lo; k <= kBins[b].hi; ++k) {
    total += PoissonPmf(k, rate);
  }
  return total;
}

double ChiSquare(const std::array<double, kNumBins>& observed,
                 const std::array<double, kNumBins>& expected) {
  double chi2 = 0.0;
  for (size_t b = 0; b < kNumBins; ++b) {
    const double e = std::max(expected[b], 1e-9);
    const double d = observed[b] - expected[b];
    chi2 += d * d / e;
  }
  return chi2;
}

}  // namespace

ModelDiagnostics DiagnoseFit(const std::vector<EvidenceCounts>& counts,
                             const EmFitResult& fit) {
  SURVEYOR_CHECK_EQ(counts.size(), fit.responsibilities.size());
  ModelDiagnostics diagnostics;
  const PoissonRates rates = RatesFromParams(fit.params);
  const double log_half = std::log(0.5);

  std::array<double, kNumBins> observed_pos{}, expected_pos{};
  std::array<double, kNumBins> observed_neg{}, expected_neg{};

  for (size_t i = 0; i < counts.size(); ++i) {
    const double r = fit.responsibilities[i];
    const EvidenceCounts& c = counts[i];

    diagnostics.log_likelihood +=
        LogSumExp(log_half + LogLikelihoodPositive(c, fit.params),
                  log_half + LogLikelihoodNegative(c, fit.params));
    diagnostics.observed_positive_statements += static_cast<double>(c.positive);
    diagnostics.observed_negative_statements += static_cast<double>(c.negative);
    diagnostics.expected_positive_statements +=
        r * rates.pos_given_pos + (1.0 - r) * rates.pos_given_neg;
    diagnostics.expected_negative_statements +=
        r * rates.neg_given_pos + (1.0 - r) * rates.neg_given_neg;
    diagnostics.positive_entity_fraction += r;
    if (std::abs(r - 0.5) < 1e-6) ++diagnostics.undecided_entities;

    ++observed_pos[BinIndex(c.positive)];
    ++observed_neg[BinIndex(c.negative)];
    for (size_t b = 0; b < kNumBins; ++b) {
      expected_pos[b] += r * PoissonBinProbability(rates.pos_given_pos, b) +
                         (1.0 - r) * PoissonBinProbability(rates.pos_given_neg, b);
      expected_neg[b] += r * PoissonBinProbability(rates.neg_given_pos, b) +
                         (1.0 - r) * PoissonBinProbability(rates.neg_given_neg, b);
    }
  }
  if (!counts.empty()) {
    diagnostics.positive_entity_fraction /= static_cast<double>(counts.size());
  }
  diagnostics.aic = 2.0 * 3.0 - 2.0 * diagnostics.log_likelihood;
  diagnostics.positive_count_chi2 = ChiSquare(observed_pos, expected_pos);
  diagnostics.negative_count_chi2 = ChiSquare(observed_neg, expected_neg);
  return diagnostics;
}

std::string ModelDiagnostics::ToString() const {
  return StrFormat(
      "LL=%.1f AIC=%.1f C+ obs/exp=%.0f/%.0f C- obs/exp=%.0f/%.0f "
      "positive-fraction=%.3f undecided=%d chi2(C+)=%.1f chi2(C-)=%.1f",
      log_likelihood, aic, observed_positive_statements,
      expected_positive_statements, observed_negative_statements,
      expected_negative_statements, positive_entity_fraction,
      undecided_entities, positive_count_chi2, negative_count_chi2);
}

}  // namespace surveyor
