#include "model/user_model.h"

#include <cmath>

#include "util/logging.h"
#include "util/math.h"
#include "util/string_util.h"

namespace surveyor {

std::string_view PolarityName(Polarity polarity) {
  switch (polarity) {
    case Polarity::kPositive:
      return "+";
    case Polarity::kNegative:
      return "-";
    case Polarity::kNeutral:
      return "N";
  }
  return "?";
}

std::string ModelParams::ToString() const {
  return StrFormat("pA=%.4f nP+s=%.4f nP-s=%.4f", agreement, mu_positive,
                   mu_negative);
}

PoissonRates RatesFromParams(const ModelParams& params) {
  PoissonRates rates;
  rates.pos_given_pos = params.agreement * params.mu_positive;
  rates.neg_given_pos = (1.0 - params.agreement) * params.mu_negative;
  rates.pos_given_neg = (1.0 - params.agreement) * params.mu_positive;
  rates.neg_given_neg = params.agreement * params.mu_negative;
  return rates;
}

Status ValidateParams(const ModelParams& params) {
  if (!(params.agreement > 0.0 && params.agreement < 1.0)) {
    return Status::InvalidArgument(
        StrFormat("agreement must be in (0,1), got %f", params.agreement));
  }
  if (params.mu_positive < 0.0 || params.mu_negative < 0.0) {
    return Status::InvalidArgument("statement rates must be non-negative");
  }
  if (!std::isfinite(params.mu_positive) || !std::isfinite(params.mu_negative)) {
    return Status::InvalidArgument("statement rates must be finite");
  }
  return Status::OK();
}

double LogLikelihoodPositive(const EvidenceCounts& counts,
                             const ModelParams& params) {
  const PoissonRates rates = RatesFromParams(params);
  return PoissonLogPmf(counts.positive, rates.pos_given_pos) +
         PoissonLogPmf(counts.negative, rates.neg_given_pos);
}

double LogLikelihoodNegative(const EvidenceCounts& counts,
                             const ModelParams& params) {
  const PoissonRates rates = RatesFromParams(params);
  return PoissonLogPmf(counts.positive, rates.pos_given_neg) +
         PoissonLogPmf(counts.negative, rates.neg_given_neg);
}

double PosteriorPositive(const EvidenceCounts& counts,
                         const ModelParams& params, double prior_positive) {
  SURVEYOR_CHECK_GT(prior_positive, 0.0);
  SURVEYOR_CHECK_LT(prior_positive, 1.0);
  const double log_pos =
      LogLikelihoodPositive(counts, params) + std::log(prior_positive);
  const double log_neg =
      LogLikelihoodNegative(counts, params) + std::log(1.0 - prior_positive);
  return Sigmoid(log_pos - log_neg);
}

Polarity DecidePolarity(double posterior_positive, double threshold) {
  SURVEYOR_CHECK_GE(threshold, 0.5);
  SURVEYOR_CHECK_LT(threshold, 1.0);
  // An exact posterior of 1/2 (both components equally likely) must yield
  // no output per Algorithm 1; compare with a small epsilon to make the
  // tie robust to floating-point noise.
  constexpr double kTieEpsilon = 1e-12;
  if (posterior_positive > threshold + kTieEpsilon) return Polarity::kPositive;
  if (posterior_positive < 1.0 - threshold - kTieEpsilon) {
    return Polarity::kNegative;
  }
  return Polarity::kNeutral;
}

}  // namespace surveyor
