#ifndef SURVEYOR_MODEL_OPINION_H_
#define SURVEYOR_MODEL_OPINION_H_

#include <cstdint>
#include <string_view>

namespace surveyor {

/// Polarity of a dominant opinion about an entity-property pair.
enum class Polarity : int8_t {
  kNegative = -1,  ///< the dominant opinion denies the property
  kNeutral = 0,    ///< undecided (no output is produced for the pair)
  kPositive = 1,   ///< the dominant opinion affirms the property
};

/// Returns "+", "-" or "N".
std::string_view PolarityName(Polarity polarity);

/// Evidence counters for one entity and one property: the number of
/// positive and negative statements extracted from the corpus
/// (the tuple (C+_i, C-_i) of paper Section 5).
struct EvidenceCounts {
  int64_t positive = 0;
  int64_t negative = 0;

  int64_t total() const { return positive + negative; }
  bool operator==(const EvidenceCounts&) const = default;
};

}  // namespace surveyor

#endif  // SURVEYOR_MODEL_OPINION_H_
