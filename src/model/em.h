#ifndef SURVEYOR_MODEL_EM_H_
#define SURVEYOR_MODEL_EM_H_

#include <cstdint>
#include <vector>

#include "model/opinion.h"
#include "model/user_model.h"
#include "util/statusor.h"

namespace surveyor {

/// Options for the expectation-maximization parameter learner
/// (paper Section 6, Algorithm 2).
struct EmOptions {
  /// Maximum number of EM iterations (the paper's X).
  int max_iterations = 50;
  /// Early-stop when the observed-data log-likelihood improves by less
  /// than this between iterations.
  double tolerance = 1e-7;
  /// Grid of candidate agreement values pA. The paper "tries a fixed set
  /// of values for pA" and solves the remaining parameters in closed form.
  /// All values must lie in (0.5, 1): restricting pA > 1/2 breaks the
  /// label-flip symmetry of the two-component mixture (swapping pA with
  /// 1-pA and both opinion labels leaves the likelihood unchanged).
  std::vector<double> agreement_grid = {0.55, 0.60, 0.65, 0.70, 0.75,
                                        0.80, 0.85, 0.90, 0.95, 0.99};
  /// Initial parameter guess (theta_0 of Algorithm 2).
  ModelParams initial_params{/*agreement=*/0.8, /*mu_positive=*/1.0,
                             /*mu_negative=*/1.0};
  /// When true the initial responsibilities come from a smoothed majority
  /// vote instead of an E-step under `initial_params`; this usually lands
  /// EM in the right basin with fewer iterations.
  bool initialize_from_majority_vote = true;
};

/// Result of fitting the user-behavior model to one property-type pair.
struct EmFitResult {
  ModelParams params;
  /// Posterior Pr(D_i = + | E_i, params) for every input entity.
  std::vector<double> responsibilities;
  /// Observed-data log-likelihood after each iteration.
  std::vector<double> log_likelihood_trace;
  int iterations = 0;
  /// Candidate (pA, closed-form mu's) evaluations across the grid search,
  /// for instrumentation: iterations * |agreement_grid|.
  int64_t grid_evaluations = 0;
  bool converged = false;

  double final_log_likelihood() const {
    return log_likelihood_trace.empty() ? 0.0 : log_likelihood_trace.back();
  }
};

/// Sufficient statistics of the M-step (paper Section 6): expected
/// statement counts g^{sigma2}_{sigma1} and expected entity counts g±.
struct MStepStats {
  double pos_statements_pos_entities = 0.0;  ///< g++
  double neg_statements_pos_entities = 0.0;  ///< g-+
  double pos_statements_neg_entities = 0.0;  ///< g+-
  double neg_statements_neg_entities = 0.0;  ///< g--
  double pos_entities = 0.0;                 ///< g+
  double neg_entities = 0.0;                 ///< g-
};

/// Accumulates the M-step statistics from counts and responsibilities.
MStepStats ComputeMStepStats(const std::vector<EvidenceCounts>& counts,
                             const std::vector<double>& responsibilities);

/// Checks EmOptions invariants (positive iteration budget, agreement grid
/// in (0.5, 1), valid initial parameters). Exposed so callers fitting many
/// pairs can reject a bad configuration once, up front — a config error is
/// a hard failure, unlike a per-pair fit failure which the pipeline
/// degrades (DESIGN.md §9).
Status ValidateEmOptions(const EmOptions& options);

/// Closed-form maximizer of Q' in (mu_positive, mu_negative) for a fixed
/// agreement value (paper Section 6):
///   n·p+S = (g++ + g+-) / (g- + pA·g+ - pA·g-)
///   n·p-S = (g-+ + g--) / (g+ + pA·g- - pA·g+)
ModelParams MaximizeGivenAgreement(const MStepStats& stats, double agreement);

/// Evaluates Q'(theta) from the sufficient statistics (constant terms of
/// Q dropped); used to select the best grid value of pA.
double EvaluateQ(const MStepStats& stats, const ModelParams& params);

/// Expectation-maximization learner for the user-behavior model. Runs in
/// O(m + |grid|) per iteration where m is the number of entities — the
/// linear-time property the paper credits for Web-scale EM.
class EmLearner {
 public:
  explicit EmLearner(EmOptions options = {});

  /// Fits the model to the evidence of one property-type pair: one
  /// EvidenceCounts per entity of the type (zero counts included — the
  /// absence of statements is evidence too). Requires at least one entity
  /// and valid options.
  StatusOr<EmFitResult> Fit(const std::vector<EvidenceCounts>& counts) const;

  const EmOptions& options() const { return options_; }

 private:
  EmOptions options_;
};

}  // namespace surveyor

#endif  // SURVEYOR_MODEL_EM_H_
