#ifndef SURVEYOR_MODEL_USER_MODEL_H_
#define SURVEYOR_MODEL_USER_MODEL_H_

#include <string>

#include "model/opinion.h"
#include "util/statusor.h"

namespace surveyor {

/// Parameters of the probabilistic user-behavior model for one
/// property-type combination (paper Section 5):
///   - `agreement` (pA): probability that an author agrees with the
///     dominant opinion on a given entity;
///   - `mu_positive` (n * p+S): expected number of statements issued by the
///     author population for an entity whose authors hold a positive
///     opinion — the paper works with n*p±S directly to avoid rounding;
///   - `mu_negative` (n * p-S): likewise for negative opinions.
struct ModelParams {
  double agreement = 0.8;
  double mu_positive = 1.0;
  double mu_negative = 1.0;

  bool operator==(const ModelParams&) const = default;
  std::string ToString() const;
};

/// The four Poisson rates λ^{statement polarity}_{dominant opinion}
/// induced by the parameters (paper Section 5.2):
///   λ++ = n·pA·p+S        λ-+ = n·(1-pA)·p-S
///   λ+- = n·(1-pA)·p+S    λ-- = n·pA·p-S
struct PoissonRates {
  double pos_given_pos = 0.0;  ///< λ++
  double neg_given_pos = 0.0;  ///< λ-+
  double pos_given_neg = 0.0;  ///< λ+-
  double neg_given_neg = 0.0;  ///< λ--
};

/// Computes the four Poisson rates from the model parameters.
PoissonRates RatesFromParams(const ModelParams& params);

/// Validates parameter ranges: agreement in (0,1), rates non-negative.
Status ValidateParams(const ModelParams& params);

/// log Pr(C+ = counts.positive, C- = counts.negative | D = +), including
/// the factorial normalization terms.
double LogLikelihoodPositive(const EvidenceCounts& counts,
                             const ModelParams& params);

/// log Pr(counts | D = -).
double LogLikelihoodNegative(const EvidenceCounts& counts,
                             const ModelParams& params);

/// Posterior probability that the dominant opinion is positive given the
/// evidence counters, with prior Pr(D=+) = `prior_positive` (the paper is
/// agnostic and uses 1/2).
double PosteriorPositive(const EvidenceCounts& counts,
                         const ModelParams& params,
                         double prior_positive = 0.5);

/// Decision rule of Algorithm 1 with a configurable threshold:
/// positive when posterior > threshold, negative when
/// posterior < 1 - threshold, neutral otherwise. The paper's default
/// threshold is 1/2 (ties yield no output); raising it trades recall for
/// precision (paper Section 3).
Polarity DecidePolarity(double posterior_positive, double threshold = 0.5);

}  // namespace surveyor

#endif  // SURVEYOR_MODEL_USER_MODEL_H_
