#include "model/em.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/math.h"
#include "util/profile_tag.h"

namespace surveyor {

MStepStats ComputeMStepStats(const std::vector<EvidenceCounts>& counts,
                             const std::vector<double>& responsibilities) {
  SURVEYOR_CHECK_EQ(counts.size(), responsibilities.size());
  MStepStats stats;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double r = responsibilities[i];
    const double cp = static_cast<double>(counts[i].positive);
    const double cn = static_cast<double>(counts[i].negative);
    stats.pos_statements_pos_entities += cp * r;
    stats.neg_statements_pos_entities += cn * r;
    stats.pos_statements_neg_entities += cp * (1.0 - r);
    stats.neg_statements_neg_entities += cn * (1.0 - r);
    stats.pos_entities += r;
    stats.neg_entities += 1.0 - r;
  }
  return stats;
}

ModelParams MaximizeGivenAgreement(const MStepStats& stats, double agreement) {
  ModelParams params;
  params.agreement = agreement;
  const double pa = agreement;
  const double gp = stats.pos_entities;
  const double gn = stats.neg_entities;
  // Denominators are the expected "effective" author exposure: pA weight
  // on same-polarity entities plus (1-pA) weight on the others. They are
  // strictly positive whenever pa is in (0,1) and there is >= 1 entity.
  const double denom_pos = gn + pa * gp - pa * gn;
  const double denom_neg = gp + pa * gn - pa * gp;
  const double total_pos = stats.pos_statements_pos_entities +
                           stats.pos_statements_neg_entities;
  const double total_neg = stats.neg_statements_pos_entities +
                           stats.neg_statements_neg_entities;
  params.mu_positive =
      denom_pos > 0.0 ? std::max(total_pos / denom_pos, kMinPoissonRate)
                      : kMinPoissonRate;
  params.mu_negative =
      denom_neg > 0.0 ? std::max(total_neg / denom_neg, kMinPoissonRate)
                      : kMinPoissonRate;
  return params;
}

double EvaluateQ(const MStepStats& stats, const ModelParams& params) {
  const PoissonRates rates = RatesFromParams(params);
  // Q'(theta) in terms of the sufficient statistics:
  //   sum_i r_i (c+_i log l++ - l++ + c-_i log l-+ - l-+) + (1-r_i)(...)
  // = g++ log l++ + g-+ log l-+ + g+- log l+- + g-- log l--
  //   - g+ (l++ + l-+) - g- (l+- + l--)
  return stats.pos_statements_pos_entities * SafeLog(rates.pos_given_pos) +
         stats.neg_statements_pos_entities * SafeLog(rates.neg_given_pos) +
         stats.pos_statements_neg_entities * SafeLog(rates.pos_given_neg) +
         stats.neg_statements_neg_entities * SafeLog(rates.neg_given_neg) -
         stats.pos_entities * (rates.pos_given_pos + rates.neg_given_pos) -
         stats.neg_entities * (rates.pos_given_neg + rates.neg_given_neg);
}

EmLearner::EmLearner(EmOptions options) : options_(std::move(options)) {}

namespace {

// Observed-data log-likelihood under a uniform prior on D.
double ObservedLogLikelihood(const std::vector<EvidenceCounts>& counts,
                             const ModelParams& params) {
  double total = 0.0;
  const double log_half = std::log(0.5);
  for (const EvidenceCounts& c : counts) {
    total += LogSumExp(log_half + LogLikelihoodPositive(c, params),
                       log_half + LogLikelihoodNegative(c, params));
  }
  return total;
}

void EStep(const std::vector<EvidenceCounts>& counts,
           const ModelParams& params, std::vector<double>& responsibilities) {
  responsibilities.resize(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    responsibilities[i] = PosteriorPositive(counts[i], params);
  }
}

}  // namespace

Status ValidateEmOptions(const EmOptions& options) {
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (options.agreement_grid.empty()) {
    return Status::InvalidArgument("agreement grid must be non-empty");
  }
  for (double pa : options.agreement_grid) {
    if (!(pa > 0.5 && pa < 1.0)) {
      return Status::InvalidArgument(
          "agreement grid values must lie in (0.5, 1)");
    }
  }
  return ValidateParams(options.initial_params);
}

StatusOr<EmFitResult> EmLearner::Fit(
    const std::vector<EvidenceCounts>& counts) const {
  SURVEYOR_PROFILE_SCOPE("em");
  if (counts.empty()) {
    return Status::InvalidArgument("EM requires at least one entity");
  }
  SURVEYOR_RETURN_IF_ERROR(ValidateEmOptions(options_));

  EmFitResult result;
  // --- Initialization -----------------------------------------------------
  if (options_.initialize_from_majority_vote) {
    // Smoothed majority vote: entities with no evidence start undecided.
    result.responsibilities.resize(counts.size());
    for (size_t i = 0; i < counts.size(); ++i) {
      const double cp = static_cast<double>(counts[i].positive);
      const double cn = static_cast<double>(counts[i].negative);
      result.responsibilities[i] = (cp + 0.5) / (cp + cn + 1.0);
    }
  } else {
    EStep(counts, options_.initial_params, result.responsibilities);
  }
  result.params = options_.initial_params;

  double previous_ll = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // --- M step: closed form in mu's, grid in pA ---------------------------
    const MStepStats stats =
        ComputeMStepStats(counts, result.responsibilities);
    double best_q = -std::numeric_limits<double>::infinity();
    ModelParams best_params = result.params;
    for (double pa : options_.agreement_grid) {
      const ModelParams candidate = MaximizeGivenAgreement(stats, pa);
      const double q = EvaluateQ(stats, candidate);
      ++result.grid_evaluations;
      if (q > best_q) {
        best_q = q;
        best_params = candidate;
      }
    }
    result.params = best_params;

    // --- E step -------------------------------------------------------------
    EStep(counts, result.params, result.responsibilities);

    const double ll = ObservedLogLikelihood(counts, result.params);
    result.log_likelihood_trace.push_back(ll);
    result.iterations = iter + 1;
    if (std::abs(ll - previous_ll) < options_.tolerance) {
      result.converged = true;
      break;
    }
    previous_ll = ll;
  }
  return result;
}

}  // namespace surveyor
