#ifndef SURVEYOR_TEXT_DEPENDENCY_H_
#define SURVEYOR_TEXT_DEPENDENCY_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace surveyor {

/// Stanford-style typed dependency relations — the subset the extraction
/// patterns (paper Fig. 4), the polarity walk (Fig. 5), and the
/// intrinsicness filters need.
enum class DepRel {
  kRoot,   ///< head of the sentence
  kNsubj,  ///< nominal subject
  kCop,    ///< copula ("is" in "X is big")
  kAux,    ///< auxiliary ("do" in "I do n't think")
  kAmod,   ///< adjectival modifier ("big city")
  kAdvmod, ///< adverbial modifier ("very big")
  kNeg,    ///< negation modifier ("not", "n't", "never")
  kDet,    ///< determiner
  kConj,   ///< conjunct ("fast and exciting": exciting <- fast)
  kCc,     ///< coordinating conjunction word itself
  kPrep,   ///< prepositional modifier ("bad for parking": for <- bad)
  kPobj,   ///< object of preposition ("parking" <- "for")
  kCcomp,  ///< clausal complement ("I think that X is big")
  kXcomp,  ///< open clausal complement ("I find kittens cute")
  kMark,   ///< complementizer "that"
  kDobj,   ///< direct object
  kPunct,  ///< punctuation attachment
};

/// Returns a stable name for a relation ("nsubj", "amod", ...).
std::string_view DepRelName(DepRel rel);

/// A rooted, typed dependency tree over the parse units of one sentence.
/// Unit indices are assigned by the caller (the annotator chunks entity
/// mentions into single units before parsing).
class DependencyTree {
 public:
  /// Creates a tree with `num_units` unattached nodes.
  explicit DependencyTree(size_t num_units);

  /// Attaches `dependent` under `head` with relation `rel`. Re-attaching a
  /// unit moves it.
  void SetArc(int dependent, int head, DepRel rel);

  /// Marks `unit` as the sentence root.
  void SetRoot(int unit);

  /// Index of the root unit, or -1 if none was set.
  int root() const { return root_; }

  /// Head index of a unit (-1 for the root or unattached units).
  int head(int unit) const;

  /// Relation of a unit to its head.
  DepRel rel(int unit) const;

  /// All dependents of `unit`, in attachment order.
  const std::vector<int>& children(int unit) const;

  /// Dependents of `unit` attached with `rel`.
  std::vector<int> ChildrenWithRel(int unit, DepRel rel) const;

  /// Number of dependents of `unit` attached with `rel`. Allocation-free
  /// alternative to ChildrenWithRel(...).size() for hot paths.
  int CountChildrenWithRel(int unit, DepRel rel) const;

  /// First dependent (in attachment order) of `unit` attached with `rel`,
  /// or -1 if there is none.
  int FirstChildWithRel(int unit, DepRel rel) const;

  bool HasChildWithRel(int unit, DepRel rel) const;

  /// Units on the path from `unit` up to (and including) the root.
  /// Returns an empty vector if `unit` is detached from the root.
  std::vector<int> PathToRoot(int unit) const;

  size_t size() const { return heads_.size(); }

  /// Checks structural well-formedness: exactly one root, every unit
  /// attached, no cycles.
  Status Validate() const;

 private:
  std::vector<int> heads_;
  std::vector<DepRel> rels_;
  std::vector<std::vector<int>> children_;
  int root_ = -1;
};

}  // namespace surveyor

#endif  // SURVEYOR_TEXT_DEPENDENCY_H_
