#ifndef SURVEYOR_TEXT_ANNOTATOR_H_
#define SURVEYOR_TEXT_ANNOTATOR_H_

#include <string>
#include <string_view>

#include "kb/knowledge_base.h"
#include "text/annotated.h"
#include "text/entity_tagger.h"
#include "text/lexicon.h"
#include "text/parser.h"

namespace surveyor {

/// End-to-end document annotator: sentence splitting, tokenization,
/// entity tagging/disambiguation, dependency parsing, and the
/// predicate-nominal coreference pass. This is the stand-in for the
/// paper's preprocessed "annotated Web snapshot": the extraction stage
/// consumes only `AnnotatedDocument`s.
class TextAnnotator {
 public:
  /// `kb` and `lexicon` must outlive the annotator.
  TextAnnotator(const KnowledgeBase* kb, const Lexicon* lexicon,
                EntityTaggerOptions tagger_options = {});

  /// Annotates a whole document (splits into sentences first).
  AnnotatedDocument AnnotateDocument(int64_t doc_id,
                                     std::string_view text) const;

  /// Annotates a single sentence. `parsed` is false when the grammar
  /// cannot analyze it.
  AnnotatedSentence AnnotateSentence(std::string_view sentence) const;

 private:
  /// Marks predicate-nominal heads that corefer with their entity subject:
  /// in "snakes are dangerous animals", the noun "animals" (the subject
  /// entity's type noun) corefers with "snakes". The adjectival-modifier
  /// extraction pattern relies on this annotation (paper Section 4).
  void ResolveCoreference(AnnotatedSentence& sentence) const;

  const KnowledgeBase* kb_;
  const Lexicon* lexicon_;
  EntityTagger tagger_;
  DependencyParser parser_;
};

}  // namespace surveyor

#endif  // SURVEYOR_TEXT_ANNOTATOR_H_
