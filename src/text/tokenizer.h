#ifndef SURVEYOR_TEXT_TOKENIZER_H_
#define SURVEYOR_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/lexicon.h"
#include "text/token.h"

namespace surveyor {

/// Splits raw document text into sentences on terminal punctuation
/// (. ! ?), keeping each sentence's text without the terminator.
std::vector<std::string> SplitSentences(std::string_view text);

/// Tokenizes one sentence: lower-cases, splits on whitespace and
/// punctuation, expands the contractions "don't"/"isn't"/... into
/// ["do", "n't"] / ["is", "n't"], and assigns POS tags from the lexicon.
std::vector<Token> Tokenize(std::string_view sentence, const Lexicon& lexicon);

}  // namespace surveyor

#endif  // SURVEYOR_TEXT_TOKENIZER_H_
