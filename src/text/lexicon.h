#ifndef SURVEYOR_TEXT_LEXICON_H_
#define SURVEYOR_TEXT_LEXICON_H_

#include <string>
#include <utility>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/token.h"

namespace surveyor {

/// Word → POS dictionary for the rule-based parser.
///
/// Closed-class words (copulas, determiners, negators, prepositions, ...)
/// are built in. Open-class vocabulary (nouns, adjectives, adverbs, verbs)
/// is registered by whoever owns the domain vocabulary — in this repo the
/// corpus world model registers entity names, type nouns, and property
/// adjectives. Out-of-lexicon words default to `Pos::kUnknown` and are
/// treated noun-ishly by the parser, mirroring how a trained tagger falls
/// back on unseen tokens.
class Lexicon {
 public:
  /// Constructs a lexicon preloaded with the closed-class vocabulary.
  Lexicon();

  /// Registers a word under a POS class. Re-registering the same word with
  /// the same class is a no-op; closed-class words cannot be overridden.
  void AddWord(std::string_view word, Pos pos);

  /// Registers a noun together with its plural form (both map to kNoun).
  /// Returns the plural that was registered.
  std::string AddNounWithPlural(std::string_view singular);

  /// Looks up the POS for a word; kUnknown if absent.
  Pos Lookup(std::string_view word) const;

  bool Contains(std::string_view word) const;

  /// Heuristic English pluralizer ("city"->"cities", "fox"->"foxes").
  static std::string Pluralize(std::string_view singular);

  /// Maps a plural form back to its singular if the plural was registered
  /// via AddNounWithPlural; otherwise returns the input.
  std::string Singularize(std::string_view word) const;

  size_t size() const { return words_.size(); }

  /// All (word, POS) entries in unspecified order (for serialization).
  std::vector<std::pair<std::string, Pos>> Words() const;

  /// All registered (plural, singular) mappings.
  std::vector<std::pair<std::string, std::string>> PluralMappings() const;

 private:
  std::unordered_map<std::string, Pos> words_;
  std::unordered_map<std::string, std::string> plural_to_singular_;
};

}  // namespace surveyor

#endif  // SURVEYOR_TEXT_LEXICON_H_
