#include "text/token.h"

namespace surveyor {

std::string_view PosName(Pos pos) {
  switch (pos) {
    case Pos::kNoun:
      return "NOUN";
    case Pos::kVerb:
      return "VERB";
    case Pos::kToBe:
      return "TO_BE";
    case Pos::kCopulaOther:
      return "COPULA";
    case Pos::kOpinionVerb:
      return "OPINION_VERB";
    case Pos::kSmallClauseVerb:
      return "SMALL_CLAUSE_VERB";
    case Pos::kAux:
      return "AUX";
    case Pos::kAdjective:
      return "ADJ";
    case Pos::kAdverb:
      return "ADV";
    case Pos::kNegation:
      return "NEG";
    case Pos::kDeterminer:
      return "DET";
    case Pos::kPreposition:
      return "PREP";
    case Pos::kConjunction:
      return "CONJ";
    case Pos::kComplementizer:
      return "COMP";
    case Pos::kPronoun:
      return "PRON";
    case Pos::kPunctuation:
      return "PUNCT";
    case Pos::kUnknown:
      return "UNKNOWN";
  }
  return "INVALID";
}

}  // namespace surveyor
