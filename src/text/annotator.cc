#include "text/annotator.h"

#include "text/tokenizer.h"
#include "util/logging.h"

namespace surveyor {

TextAnnotator::TextAnnotator(const KnowledgeBase* kb, const Lexicon* lexicon,
                             EntityTaggerOptions tagger_options)
    : kb_(kb), lexicon_(lexicon), tagger_(kb, tagger_options) {
  SURVEYOR_CHECK(kb_ != nullptr);
  SURVEYOR_CHECK(lexicon_ != nullptr);
}

AnnotatedDocument TextAnnotator::AnnotateDocument(int64_t doc_id,
                                                  std::string_view text) const {
  AnnotatedDocument doc;
  doc.doc_id = doc_id;
  for (const std::string& sentence : SplitSentences(text)) {
    doc.sentences.push_back(AnnotateSentence(sentence));
  }
  return doc;
}

AnnotatedSentence TextAnnotator::AnnotateSentence(
    std::string_view sentence) const {
  AnnotatedSentence result;
  result.raw_text = std::string(sentence);
  const std::vector<Token> tokens = Tokenize(sentence, *lexicon_);
  result.units = tagger_.Tag(tokens);
  if (result.units.empty()) return result;
  auto tree = parser_.Parse(result.units);
  if (!tree.ok()) return result;  // outside the grammar; skipped downstream
  result.tree = *std::move(tree);
  result.parsed = true;
  ResolveCoreference(result);
  return result;
}

void TextAnnotator::ResolveCoreference(AnnotatedSentence& sentence) const {
  const DependencyTree& tree = sentence.tree;
  for (size_t i = 0; i < sentence.units.size(); ++i) {
    ParseUnit& unit = sentence.units[i];
    if (unit.IsEntityMention()) continue;
    if (unit.pos != Pos::kNoun && unit.pos != Pos::kUnknown) continue;
    const int idx = static_cast<int>(i);
    // Predicate nominal: has a copula child and an entity-mention subject.
    if (!tree.HasChildWithRel(idx, DepRel::kCop)) continue;
    if (tree.CountChildrenWithRel(idx, DepRel::kNsubj) != 1) continue;
    const ParseUnit& subj =
        sentence.units[tree.FirstChildWithRel(idx, DepRel::kNsubj)];
    if (!subj.IsEntityMention()) continue;
    const Entity& entity = kb_->entity(subj.entity);
    // The nominal corefers with the subject when it is the subject's type
    // noun ("animals" for an animal, "city" for a city).
    const std::string singular = lexicon_->Singularize(unit.text);
    if (singular == kb_->TypeName(entity.most_notable_type)) {
      unit.coref_entity = subj.entity;
    }
  }
}

}  // namespace surveyor
