#include "text/lexicon_io.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/string_util.h"

namespace surveyor {

StatusOr<Pos> PosFromName(const std::string& name) {
  for (Pos pos : {Pos::kNoun, Pos::kVerb, Pos::kToBe, Pos::kCopulaOther,
                  Pos::kOpinionVerb, Pos::kSmallClauseVerb, Pos::kAux,
                  Pos::kAdjective, Pos::kAdverb, Pos::kNegation,
                  Pos::kDeterminer, Pos::kPreposition, Pos::kConjunction,
                  Pos::kComplementizer, Pos::kPronoun, Pos::kPunctuation,
                  Pos::kUnknown}) {
    if (PosName(pos) == name) return pos;
  }
  return Status::InvalidArgument("unknown POS name '" + name + "'");
}

Status SaveLexicon(const Lexicon& lexicon, std::ostream& os) {
  os << "# surveyor lexicon v1\n";
  const Lexicon builtin_only;
  std::vector<std::pair<std::string, Pos>> words = lexicon.Words();
  std::sort(words.begin(), words.end());
  for (const auto& [word, pos] : words) {
    // Skip entries already provided by the closed-class vocabulary.
    if (builtin_only.Contains(word) && builtin_only.Lookup(word) == pos) {
      continue;
    }
    os << "word\t" << word << "\t" << PosName(pos) << "\n";
  }
  std::vector<std::pair<std::string, std::string>> plurals =
      lexicon.PluralMappings();
  std::sort(plurals.begin(), plurals.end());
  for (const auto& [plural, singular] : plurals) {
    os << "plural\t" << plural << "\t" << singular << "\n";
  }
  if (!os.good()) return Status::Internal("write failure");
  return Status::OK();
}

StatusOr<Lexicon> LoadLexicon(std::istream& is) {
  Lexicon lexicon;
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::vector<std::string> fields = Split(trimmed, '\t');
    auto error = [&](const std::string& msg) {
      return Status::InvalidArgument(
          StrFormat("line %d: %s", line_number, msg.c_str()));
    };
    if (fields[0] == "word") {
      if (fields.size() != 3) return error("word expects 2 fields");
      SURVEYOR_ASSIGN_OR_RETURN(Pos pos, PosFromName(fields[2]));
      lexicon.AddWord(fields[1], pos);
    } else if (fields[0] == "plural") {
      if (fields.size() != 3) return error("plural expects 2 fields");
      // Re-register through the singular so Singularize() works.
      lexicon.AddNounWithPlural(fields[2]);
      lexicon.AddWord(fields[1], Pos::kNoun);
    } else {
      return error("unknown record kind '" + fields[0] + "'");
    }
  }
  return lexicon;
}

Status SaveLexiconToFile(const Lexicon& lexicon, const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::NotFound("cannot open '" + path + "' for writing");
  return SaveLexicon(lexicon, os);
}

StatusOr<Lexicon> LoadLexiconFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open '" + path + "'");
  return LoadLexicon(is);
}

}  // namespace surveyor
