#ifndef SURVEYOR_TEXT_DOCUMENT_H_
#define SURVEYOR_TEXT_DOCUMENT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace surveyor {

/// A raw input document: plain text, no annotations. The pipeline's
/// external input format — whether it comes from the corpus simulator or
/// from files on disk.
struct RawDocument {
  int64_t doc_id = 0;
  std::string text;
  /// Source region / domain extension ("us", "uk", ...); empty when
  /// unknown. Restricting the pipeline input to one domain specializes the
  /// mined opinions to that user group (paper Section 2).
  std::string domain;
};

/// Returns the documents whose domain matches (all documents when
/// `domain` is empty).
std::vector<RawDocument> FilterByDomain(const std::vector<RawDocument>& corpus,
                                        const std::string& domain);

/// Writes a corpus as TSV lines "DOC_ID <tab> DOMAIN <tab> TEXT" (one
/// document per line; document text must not contain tabs or newlines).
Status SaveCorpus(const std::vector<RawDocument>& corpus, std::ostream& os);

/// Parses the format written by SaveCorpus.
StatusOr<std::vector<RawDocument>> LoadCorpus(std::istream& is);

Status SaveCorpusToFile(const std::vector<RawDocument>& corpus,
                        const std::string& path);
StatusOr<std::vector<RawDocument>> LoadCorpusFromFile(const std::string& path);

}  // namespace surveyor

#endif  // SURVEYOR_TEXT_DOCUMENT_H_
