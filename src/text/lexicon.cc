#include "text/lexicon.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

struct ClosedClassEntry {
  const char* word;
  Pos pos;
};

constexpr ClosedClassEntry kClosedClass[] = {
    // to-be forms
    {"is", Pos::kToBe},
    {"are", Pos::kToBe},
    {"was", Pos::kToBe},
    {"were", Pos::kToBe},
    {"be", Pos::kToBe},
    {"been", Pos::kToBe},
    // other copular verbs (the "copula class" of Appendix B versions 1-2)
    {"seems", Pos::kCopulaOther},
    {"seem", Pos::kCopulaOther},
    {"seemed", Pos::kCopulaOther},
    {"looks", Pos::kCopulaOther},
    {"look", Pos::kCopulaOther},
    {"looked", Pos::kCopulaOther},
    {"remains", Pos::kCopulaOther},
    {"remain", Pos::kCopulaOther},
    {"stays", Pos::kCopulaOther},
    {"became", Pos::kCopulaOther},
    {"becomes", Pos::kCopulaOther},
    {"feels", Pos::kCopulaOther},
    // clause-embedding opinion verbs
    {"think", Pos::kOpinionVerb},
    {"thinks", Pos::kOpinionVerb},
    {"thought", Pos::kOpinionVerb},
    {"believe", Pos::kOpinionVerb},
    {"believes", Pos::kOpinionVerb},
    {"say", Pos::kOpinionVerb},
    {"says", Pos::kOpinionVerb},
    {"said", Pos::kOpinionVerb},
    {"doubt", Pos::kOpinionVerb},
    {"doubts", Pos::kOpinionVerb},
    {"agree", Pos::kOpinionVerb},
    {"feel", Pos::kOpinionVerb},
    // small-clause verbs ("I find kittens cute")
    {"find", Pos::kSmallClauseVerb},
    {"finds", Pos::kSmallClauseVerb},
    {"found", Pos::kSmallClauseVerb},
    {"consider", Pos::kSmallClauseVerb},
    {"considers", Pos::kSmallClauseVerb},
    {"call", Pos::kSmallClauseVerb},
    {"calls", Pos::kSmallClauseVerb},
    // auxiliaries
    {"do", Pos::kAux},
    {"does", Pos::kAux},
    {"did", Pos::kAux},
    {"would", Pos::kAux},
    {"could", Pos::kAux},
    {"might", Pos::kAux},
    // negators
    {"not", Pos::kNegation},
    {"n't", Pos::kNegation},
    {"never", Pos::kNegation},
    {"hardly", Pos::kNegation},
    // determiners
    {"a", Pos::kDeterminer},
    {"an", Pos::kDeterminer},
    {"the", Pos::kDeterminer},
    {"this", Pos::kDeterminer},
    {"these", Pos::kDeterminer},
    // prepositions
    {"for", Pos::kPreposition},
    {"in", Pos::kPreposition},
    {"of", Pos::kPreposition},
    {"at", Pos::kPreposition},
    {"on", Pos::kPreposition},
    {"near", Pos::kPreposition},
    {"with", Pos::kPreposition},
    {"from", Pos::kPreposition},
    {"by", Pos::kPreposition},
    {"during", Pos::kPreposition},
    {"to", Pos::kPreposition},
    // conjunctions
    {"and", Pos::kConjunction},
    {"or", Pos::kConjunction},
    {"but", Pos::kConjunction},
    // complementizer
    {"that", Pos::kComplementizer},
    // pronouns
    {"i", Pos::kPronoun},
    {"you", Pos::kPronoun},
    {"we", Pos::kPronoun},
    {"they", Pos::kPronoun},
    {"he", Pos::kPronoun},
    {"she", Pos::kPronoun},
    {"it", Pos::kPronoun},
    {"everyone", Pos::kPronoun},
    {"people", Pos::kPronoun},
    // common intensity adverbs (open-class adverbs can still be added)
    {"very", Pos::kAdverb},
    {"really", Pos::kAdverb},
    {"quite", Pos::kAdverb},
    {"extremely", Pos::kAdverb},
    {"incredibly", Pos::kAdverb},
    {"so", Pos::kAdverb},
    {"rather", Pos::kAdverb},
    {"somewhat", Pos::kAdverb},
    {"truly", Pos::kAdverb},
};

}  // namespace

Lexicon::Lexicon() {
  for (const auto& entry : kClosedClass) {
    words_.emplace(entry.word, entry.pos);
  }
}

void Lexicon::AddWord(std::string_view word, Pos pos) {
  const std::string key = ToLower(word);
  SURVEYOR_CHECK(!key.empty());
  auto [it, inserted] = words_.emplace(key, pos);
  if (!inserted && it->second != pos) {
    // Closed-class words win; open-class re-registrations with a different
    // POS keep the first registration (stable, deterministic behavior).
    return;
  }
}

std::string Lexicon::AddNounWithPlural(std::string_view singular) {
  AddWord(singular, Pos::kNoun);
  std::string plural = Pluralize(singular);
  AddWord(plural, Pos::kNoun);
  plural_to_singular_.emplace(plural, ToLower(singular));
  return plural;
}

Pos Lexicon::Lookup(std::string_view word) const {
  auto it = words_.find(ToLower(word));
  if (it == words_.end()) return Pos::kUnknown;
  return it->second;
}

bool Lexicon::Contains(std::string_view word) const {
  return words_.find(ToLower(word)) != words_.end();
}

std::string Lexicon::Pluralize(std::string_view singular) {
  std::string s = ToLower(singular);
  if (s.empty()) return s;
  auto ends_with = [&](std::string_view suffix) {
    return EndsWith(s, suffix);
  };
  if (s.size() >= 2 && s.back() == 'y') {
    const char before = s[s.size() - 2];
    if (before != 'a' && before != 'e' && before != 'i' && before != 'o' &&
        before != 'u') {
      return s.substr(0, s.size() - 1) + "ies";
    }
  }
  if (ends_with("s") || ends_with("x") || ends_with("z") || ends_with("ch") ||
      ends_with("sh")) {
    return s + "es";
  }
  return s + "s";
}

std::vector<std::pair<std::string, Pos>> Lexicon::Words() const {
  std::vector<std::pair<std::string, Pos>> entries;
  entries.reserve(words_.size());
  for (const auto& [word, pos] : words_) entries.emplace_back(word, pos);
  return entries;
}

std::vector<std::pair<std::string, std::string>> Lexicon::PluralMappings()
    const {
  std::vector<std::pair<std::string, std::string>> mappings;
  mappings.reserve(plural_to_singular_.size());
  for (const auto& [plural, singular] : plural_to_singular_) {
    mappings.emplace_back(plural, singular);
  }
  return mappings;
}

std::string Lexicon::Singularize(std::string_view word) const {
  auto it = plural_to_singular_.find(ToLower(word));
  if (it == plural_to_singular_.end()) return std::string(ToLower(word));
  return it->second;
}

}  // namespace surveyor
