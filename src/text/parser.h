#ifndef SURVEYOR_TEXT_PARSER_H_
#define SURVEYOR_TEXT_PARSER_H_

#include <vector>

#include "text/annotated.h"
#include "text/dependency.h"
#include "util/statusor.h"

namespace surveyor {

/// Deterministic rule-based dependency parser.
///
/// Produces Stanford-typed dependency trees for the sentence inventory that
/// Web authors use to attribute properties to entities — copular clauses
/// ("X is (not) (very) big"), predicate nominals ("X is a big city"),
/// attributive noun phrases ("the cute kitten slept"), clausal complements
/// ("I don't think that X is never big"), adjective coordination ("a fast
/// and exciting sport"), prepositional attachment ("bad for parking"), and
/// plain verb clauses. In the paper this analysis is performed upstream by
/// a Stanford-parser-like annotation pipeline; this class plays that role
/// for the synthetic snapshot. Sentences outside the grammar yield an
/// error and are skipped by the annotator, exactly as noisy Web text that
/// fails preprocessing is.
class DependencyParser {
 public:
  DependencyParser() = default;

  /// Parses one sentence (as entity-chunked units). Returns the typed
  /// dependency tree or InvalidArgument for sentences outside the grammar.
  StatusOr<DependencyTree> Parse(const std::vector<ParseUnit>& units) const;
};

}  // namespace surveyor

#endif  // SURVEYOR_TEXT_PARSER_H_
