#ifndef SURVEYOR_TEXT_DOCUMENT_SOURCE_H_
#define SURVEYOR_TEXT_DOCUMENT_SOURCE_H_

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "text/document.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace surveyor {

/// Fault-handling counters of a DocumentSource, reported into the
/// pipeline's metrics (surveyor_retries_total,
/// surveyor_docs_quarantined_total).
struct DocumentSourceCounters {
  /// Read attempts beyond the first (i.e. recoveries from transient
  /// failures).
  int64_t read_retries = 0;
  /// Documents dropped as unparseable instead of failing the stream
  /// (quarantine mode only).
  int64_t quarantined_documents = 0;
};

/// Pull-based document stream. The deployed system processed a 40 TB
/// snapshot that could never sit in memory; this interface lets the
/// pipeline consume documents incrementally from any backing store.
/// Implementations must be thread-safe: extraction workers pull from the
/// same source concurrently.
class DocumentSource {
 public:
  virtual ~DocumentSource() = default;

  /// Returns the next document, or nullopt at end of stream.
  virtual std::optional<RawDocument> Next() = 0;

  /// Stream health after Next() returned nullopt: OK when the stream was
  /// fully consumed, an error when it ended early (the pipeline reports
  /// that as a truncated corpus rather than silently under-counting).
  virtual Status status() const { return Status::OK(); }

  /// Fault-handling accounting; zero for sources that cannot fail.
  virtual DocumentSourceCounters counters() const { return {}; }
};

/// Adapts an in-memory corpus to the streaming interface.
class VectorDocumentSource : public DocumentSource {
 public:
  /// `corpus` must outlive the source.
  explicit VectorDocumentSource(const std::vector<RawDocument>* corpus);

  std::optional<RawDocument> Next() override SURVEYOR_EXCLUDES(mutex_);

 private:
  const std::vector<RawDocument>* corpus_;
  Mutex mutex_;
  size_t next_ SURVEYOR_GUARDED_BY(mutex_) = 0;
};

/// Fault-handling knobs of FileDocumentSource.
struct FileDocumentSourceOptions {
  /// Retry policy for transient read failures (exercised through the
  /// "doc_read" fault point; real I/O errors from the stream are
  /// currently terminal).
  RetryPolicy read_retry;
  /// When true, a malformed line is counted and skipped instead of ending
  /// the stream with an error — the 40-TB-snapshot posture where corrupt
  /// documents are routine. Default false: a corpus file you authored
  /// should fail loudly.
  bool quarantine_corrupt = false;
};

/// Streams a corpus.tsv file (the format of SaveCorpus) from disk without
/// loading it whole.
class FileDocumentSource : public DocumentSource {
 public:
  /// Opens the file; check `status()` before use.
  explicit FileDocumentSource(const std::string& path,
                              FileDocumentSourceOptions options = {});

  /// OK when the file opened; parsing errors surface here after the
  /// offending Next() returned nullopt. Returns a copy: workers may be
  /// writing the status under the mutex while a coordinator polls it.
  Status status() const override SURVEYOR_EXCLUDES(mutex_);

  DocumentSourceCounters counters() const override SURVEYOR_EXCLUDES(mutex_);

  std::optional<RawDocument> Next() override SURVEYOR_EXCLUDES(mutex_);

 private:
  const FileDocumentSourceOptions options_;
  mutable Mutex mutex_;
  std::ifstream stream_ SURVEYOR_GUARDED_BY(mutex_);
  Status status_ SURVEYOR_GUARDED_BY(mutex_);
  DocumentSourceCounters counters_ SURVEYOR_GUARDED_BY(mutex_);
  int line_number_ SURVEYOR_GUARDED_BY(mutex_) = 0;
};

}  // namespace surveyor

#endif  // SURVEYOR_TEXT_DOCUMENT_SOURCE_H_
