#ifndef SURVEYOR_TEXT_DOCUMENT_SOURCE_H_
#define SURVEYOR_TEXT_DOCUMENT_SOURCE_H_

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "text/document.h"
#include "util/mutex.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace surveyor {

/// Pull-based document stream. The deployed system processed a 40 TB
/// snapshot that could never sit in memory; this interface lets the
/// pipeline consume documents incrementally from any backing store.
/// Implementations must be thread-safe: extraction workers pull from the
/// same source concurrently.
class DocumentSource {
 public:
  virtual ~DocumentSource() = default;

  /// Returns the next document, or nullopt at end of stream.
  virtual std::optional<RawDocument> Next() = 0;
};

/// Adapts an in-memory corpus to the streaming interface.
class VectorDocumentSource : public DocumentSource {
 public:
  /// `corpus` must outlive the source.
  explicit VectorDocumentSource(const std::vector<RawDocument>* corpus);

  std::optional<RawDocument> Next() override SURVEYOR_EXCLUDES(mutex_);

 private:
  const std::vector<RawDocument>* corpus_;
  Mutex mutex_;
  size_t next_ SURVEYOR_GUARDED_BY(mutex_) = 0;
};

/// Streams a corpus.tsv file (the format of SaveCorpus) from disk without
/// loading it whole.
class FileDocumentSource : public DocumentSource {
 public:
  /// Opens the file; check `status()` before use.
  explicit FileDocumentSource(const std::string& path);

  /// OK when the file opened; parsing errors surface here after the
  /// offending Next() returned nullopt. Returns a copy: workers may be
  /// writing the status under the mutex while a coordinator polls it.
  Status status() const SURVEYOR_EXCLUDES(mutex_);

  std::optional<RawDocument> Next() override SURVEYOR_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::ifstream stream_ SURVEYOR_GUARDED_BY(mutex_);
  Status status_ SURVEYOR_GUARDED_BY(mutex_);
  int line_number_ SURVEYOR_GUARDED_BY(mutex_) = 0;
};

}  // namespace surveyor

#endif  // SURVEYOR_TEXT_DOCUMENT_SOURCE_H_
