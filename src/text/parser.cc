#include "text/parser.h"

#include <string>

#include "util/hotpath.h"
#include "util/logging.h"
#include "util/profile_tag.h"
#include "util/string_util.h"

namespace surveyor {
namespace {
// SURVEYOR_HOT_BEGIN: the recursive-descent clause parser runs once per
// sentence; modifier lists are tracked as contiguous [begin, end) unit
// ranges (Consume() hands out consecutive indices), never materialized.

/// Treats out-of-lexicon words as nouns, like a tagger's fallback class.
bool IsNounish(Pos pos) {
  return pos == Pos::kNoun || pos == Pos::kUnknown;
}

bool IsSubjectHead(Pos pos) { return IsNounish(pos) || pos == Pos::kPronoun; }

/// Recursive-descent parser state over one sentence.
class ClauseParser {
 public:
  explicit ClauseParser(const std::vector<ParseUnit>& units)
      : units_(units), tree_(units.size()) {}

  StatusOr<DependencyTree> Run() {
    SURVEYOR_ASSIGN_OR_RETURN(int root, ParseClause());
    // Trailing punctuation attaches to the root.
    while (!AtEnd() && Peek() == Pos::kPunctuation) {
      tree_.SetArc(Consume(), root, DepRel::kPunct);
    }
    if (!AtEnd()) {
      return Status::InvalidArgument(
          StrFormat("trailing material at unit %zu ('%s')", pos_,
                    units_[pos_].text.c_str()));
    }
    tree_.SetRoot(root);
    SURVEYOR_RETURN_IF_ERROR(tree_.Validate());
    return std::move(tree_);
  }

 private:
  bool AtEnd() const { return pos_ >= units_.size(); }
  Pos Peek(size_t ahead = 0) const {
    return pos_ + ahead < units_.size() ? units_[pos_ + ahead].pos
                                        : Pos::kPunctuation;
  }
  int Consume() { return static_cast<int>(pos_++); }
  /// Current position as a unit index; [Here(), Here()) ranges taken
  /// around runs of Consume() calls name the units consumed in between.
  int Here() const { return static_cast<int>(pos_); }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(StrFormat(
        "%s at unit %zu%s", what.c_str(), pos_,
        AtEnd() ? " (end of sentence)"
                : (" ('" + units_[pos_].text + "')").c_str()));
  }

  // Clause := NP (AuxNeg? OpinionVerb (that? Clause) | Cop Predicate
  //            | Verb Complements)
  StatusOr<int> ParseClause() {
    SURVEYOR_ASSIGN_OR_RETURN(int subj, ParseNounPhrase());
    if (AtEnd()) return Error("expected a verb after the subject");

    if (Peek() == Pos::kAux) {
      const int aux = Consume();
      const int negs_begin = Here();
      while (Peek() == Pos::kNegation) Consume();
      const int negs_end = Here();
      if (Peek() != Pos::kOpinionVerb && Peek() != Pos::kSmallClauseVerb) {
        return Error("expected an opinion verb after the auxiliary");
      }
      const bool small_clause = Peek() == Pos::kSmallClauseVerb;
      const int verb = Consume();
      tree_.SetArc(aux, verb, DepRel::kAux);
      for (int n = negs_begin; n < negs_end; ++n) {
        tree_.SetArc(n, verb, DepRel::kNeg);
      }
      tree_.SetArc(subj, verb, DepRel::kNsubj);
      if (small_clause) {
        SURVEYOR_RETURN_IF_ERROR(ParseSmallClause(verb));
      } else {
        SURVEYOR_RETURN_IF_ERROR(ParseClausalComplement(verb));
      }
      return verb;
    }

    if (Peek() == Pos::kOpinionVerb) {
      const int verb = Consume();
      tree_.SetArc(subj, verb, DepRel::kNsubj);
      SURVEYOR_RETURN_IF_ERROR(ParseClausalComplement(verb));
      return verb;
    }

    if (Peek() == Pos::kSmallClauseVerb) {
      const int verb = Consume();
      tree_.SetArc(subj, verb, DepRel::kNsubj);
      SURVEYOR_RETURN_IF_ERROR(ParseSmallClause(verb));
      return verb;
    }

    if (Peek() == Pos::kToBe || Peek() == Pos::kCopulaOther) {
      const int cop = Consume();
      return ParseCopularPredicate(cop, subj);
    }

    if (Peek() == Pos::kVerb) {
      const int verb = Consume();
      tree_.SetArc(subj, verb, DepRel::kNsubj);
      SURVEYOR_RETURN_IF_ERROR(ParseVerbComplements(verb));
      return verb;
    }

    return Error("unsupported clause structure");
  }

  // "NP AdjP" small clause under `verb`: "I find [kittens] [cute]".
  // The adjective heads an xcomp whose nsubj is the inner NP.
  Status ParseSmallClause(int verb) {
    SURVEYOR_ASSIGN_OR_RETURN(int subject, ParseNounPhrase());
    const int advs_begin = Here();
    while (Peek() == Pos::kAdverb) Consume();
    const int advs_end = Here();
    if (Peek() != Pos::kAdjective) {
      return Error("expected an adjective in the small clause");
    }
    const int adj = Consume();
    for (int a = advs_begin; a < advs_end; ++a) {
      tree_.SetArc(a, adj, DepRel::kAdvmod);
    }
    SURVEYOR_RETURN_IF_ERROR(ParseAdjectiveConjuncts(adj));
    tree_.SetArc(subject, adj, DepRel::kNsubj);
    tree_.SetArc(adj, verb, DepRel::kXcomp);
    while (Peek() == Pos::kPreposition) {
      SURVEYOR_RETURN_IF_ERROR(ParsePrepositionalPhrase(adj));
    }
    return Status::OK();
  }

  // "(that)? Clause" attached as ccomp under `verb`.
  Status ParseClausalComplement(int verb) {
    int mark = -1;
    if (Peek() == Pos::kComplementizer) mark = Consume();
    SURVEYOR_ASSIGN_OR_RETURN(int embedded, ParseClause());
    if (mark >= 0) tree_.SetArc(mark, embedded, DepRel::kMark);
    tree_.SetArc(embedded, verb, DepRel::kCcomp);
    return Status::OK();
  }

  // NP := det? (adv* adj (conj-chain)?)* head-noun
  StatusOr<int> ParseNounPhrase() {
    const int np_begin = Here();
    int det = -1;
    if (Peek() == Pos::kDeterminer) det = Consume();
    for (;;) {
      const int advs_begin = Here();
      while (Peek() == Pos::kAdverb) Consume();
      const int advs_end = Here();
      if (Peek() == Pos::kAdjective) {
        const int adj = Consume();
        for (int a = advs_begin; a < advs_end; ++a) {
          tree_.SetArc(a, adj, DepRel::kAdvmod);
        }
        SURVEYOR_RETURN_IF_ERROR(ParseAdjectiveConjuncts(adj));
      } else {
        if (advs_end != advs_begin) {
          return Error("dangling adverb in noun phrase");
        }
        break;
      }
    }
    if (!IsSubjectHead(Peek())) {
      return Error("expected the head noun of a noun phrase");
    }
    const int head = Consume();
    if (det >= 0) tree_.SetArc(det, head, DepRel::kDet);
    // The phrase's top-level adjectives are exactly its still-unattached
    // adjective units: adverbs, conjunction words, and conjunct
    // adjectives were all attached as they were consumed.
    for (int u = np_begin; u < head; ++u) {
      if (units_[u].pos == Pos::kAdjective && tree_.head(u) < 0) {
        tree_.SetArc(u, head, DepRel::kAmod);
      }
    }
    return head;
  }

  // "(and|or) adv* adj" chains attached via cc/conj to `first`.
  Status ParseAdjectiveConjuncts(int first) {
    while (Peek() == Pos::kConjunction) {
      // Only coordinate adjectives: look ahead past adverbs.
      size_t ahead = 1;
      while (Peek(ahead) == Pos::kAdverb) ++ahead;
      if (Peek(ahead) != Pos::kAdjective) break;
      const int cc = Consume();
      tree_.SetArc(cc, first, DepRel::kCc);
      const int advs_begin = Here();
      while (Peek() == Pos::kAdverb) Consume();
      const int advs_end = Here();
      const int adj = Consume();
      for (int a = advs_begin; a < advs_end; ++a) {
        tree_.SetArc(a, adj, DepRel::kAdvmod);
      }
      tree_.SetArc(adj, first, DepRel::kConj);
    }
    return Status::OK();
  }

  // Distinguishes "are dangerous" (adjectival complement) from
  // "are dangerous animals" (predicate nominal with amod): looks past the
  // adjective sequence (with adverbs and conjunctions) for a head noun.
  bool AdjectivesLeadToNoun() const {
    size_t ahead = 0;
    for (;;) {
      while (Peek(ahead) == Pos::kAdverb) ++ahead;
      if (Peek(ahead) != Pos::kAdjective) return false;
      ++ahead;
      // Skip "and adv* adj" continuations.
      while (Peek(ahead) == Pos::kConjunction) {
        size_t next = ahead + 1;
        while (Peek(next) == Pos::kAdverb) ++next;
        if (Peek(next) != Pos::kAdjective) break;
        ahead = next + 1;
      }
      if (IsNounish(Peek(ahead))) return true;
      if (Peek(ahead) != Pos::kAdjective && Peek(ahead) != Pos::kAdverb) {
        return false;
      }
    }
  }

  // Predicate := neg/adv* (AdjP | NP) PP*
  StatusOr<int> ParseCopularPredicate(int cop, int subj) {
    const int mods_begin = Here();
    bool has_adverb = false;
    for (;;) {
      if (Peek() == Pos::kNegation) {
        Consume();
      } else if (Peek() == Pos::kAdverb) {
        has_adverb = true;
        Consume();
      } else {
        break;
      }
    }
    const int mods_end = Here();

    int head = -1;
    if (Peek() == Pos::kAdjective && !AdjectivesLeadToNoun()) {
      head = Consume();
      for (int a = mods_begin; a < mods_end; ++a) {
        if (units_[a].pos == Pos::kAdverb) {
          tree_.SetArc(a, head, DepRel::kAdvmod);
        }
      }
      SURVEYOR_RETURN_IF_ERROR(ParseAdjectiveConjuncts(head));
    } else if (Peek() == Pos::kDeterminer || IsNounish(Peek()) ||
               Peek() == Pos::kAdjective) {
      // Predicate nominal, possibly with leading adjectives
      // ("are dangerous animals"); ParseNounPhrase attaches them as amod.
      if (has_adverb) return Error("dangling adverb before predicate");
      SURVEYOR_ASSIGN_OR_RETURN(head, ParseNounPhrase());
    } else {
      return Error("unsupported copular predicate");
    }

    for (int n = mods_begin; n < mods_end; ++n) {
      if (units_[n].pos == Pos::kNegation) {
        tree_.SetArc(n, head, DepRel::kNeg);
      }
    }
    tree_.SetArc(cop, head, DepRel::kCop);
    tree_.SetArc(subj, head, DepRel::kNsubj);
    while (Peek() == Pos::kPreposition) {
      SURVEYOR_RETURN_IF_ERROR(ParsePrepositionalPhrase(head));
    }
    return head;
  }

  // Complements of a plain verb: adverbs, an optional object NP, PPs.
  Status ParseVerbComplements(int verb) {
    for (;;) {
      if (Peek() == Pos::kAdverb) {
        tree_.SetArc(Consume(), verb, DepRel::kAdvmod);
      } else if (Peek() == Pos::kPreposition) {
        SURVEYOR_RETURN_IF_ERROR(ParsePrepositionalPhrase(verb));
      } else if (Peek() == Pos::kDeterminer || Peek() == Pos::kAdjective ||
                 IsSubjectHead(Peek())) {
        SURVEYOR_ASSIGN_OR_RETURN(int obj, ParseNounPhrase());
        tree_.SetArc(obj, verb, DepRel::kDobj);
      } else {
        break;
      }
    }
    return Status::OK();
  }

  // PP := prep NP, attached under `head`.
  Status ParsePrepositionalPhrase(int head) {
    SURVEYOR_CHECK(Peek() == Pos::kPreposition);
    const int prep = Consume();
    SURVEYOR_ASSIGN_OR_RETURN(int obj, ParseNounPhrase());
    tree_.SetArc(obj, prep, DepRel::kPobj);
    tree_.SetArc(prep, head, DepRel::kPrep);
    return Status::OK();
  }

  const std::vector<ParseUnit>& units_;
  DependencyTree tree_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<DependencyTree> DependencyParser::Parse(
    const std::vector<ParseUnit>& units) const {
  SURVEYOR_PROFILE_SCOPE("parse");
  if (units.empty()) return Status::InvalidArgument("empty sentence");
  ClauseParser parser(units);
  return parser.Run();
}
// SURVEYOR_HOT_END

}  // namespace surveyor
