#include "text/dependency.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace surveyor {

std::string_view DepRelName(DepRel rel) {
  switch (rel) {
    case DepRel::kRoot:
      return "root";
    case DepRel::kNsubj:
      return "nsubj";
    case DepRel::kCop:
      return "cop";
    case DepRel::kAux:
      return "aux";
    case DepRel::kAmod:
      return "amod";
    case DepRel::kAdvmod:
      return "advmod";
    case DepRel::kNeg:
      return "neg";
    case DepRel::kDet:
      return "det";
    case DepRel::kConj:
      return "conj";
    case DepRel::kCc:
      return "cc";
    case DepRel::kPrep:
      return "prep";
    case DepRel::kPobj:
      return "pobj";
    case DepRel::kCcomp:
      return "ccomp";
    case DepRel::kXcomp:
      return "xcomp";
    case DepRel::kMark:
      return "mark";
    case DepRel::kDobj:
      return "dobj";
    case DepRel::kPunct:
      return "punct";
  }
  return "invalid";
}

DependencyTree::DependencyTree(size_t num_units)
    : heads_(num_units, -1),
      rels_(num_units, DepRel::kRoot),
      children_(num_units) {}

void DependencyTree::SetArc(int dependent, int head, DepRel rel) {
  SURVEYOR_CHECK_GE(dependent, 0);
  SURVEYOR_CHECK_LT(static_cast<size_t>(dependent), heads_.size());
  SURVEYOR_CHECK_GE(head, 0);
  SURVEYOR_CHECK_LT(static_cast<size_t>(head), heads_.size());
  SURVEYOR_CHECK_NE(dependent, head);
  // Detach from a previous head if re-attaching.
  if (heads_[dependent] >= 0) {
    auto& siblings = children_[heads_[dependent]];
    siblings.erase(std::remove(siblings.begin(), siblings.end(), dependent),
                   siblings.end());
  }
  heads_[dependent] = head;
  rels_[dependent] = rel;
  children_[head].push_back(dependent);
  if (root_ == dependent) root_ = -1;
}

void DependencyTree::SetRoot(int unit) {
  SURVEYOR_CHECK_GE(unit, 0);
  SURVEYOR_CHECK_LT(static_cast<size_t>(unit), heads_.size());
  if (heads_[unit] >= 0) {
    auto& siblings = children_[heads_[unit]];
    siblings.erase(std::remove(siblings.begin(), siblings.end(), unit),
                   siblings.end());
    heads_[unit] = -1;
  }
  rels_[unit] = DepRel::kRoot;
  root_ = unit;
}

int DependencyTree::head(int unit) const {
  SURVEYOR_CHECK_GE(unit, 0);
  SURVEYOR_CHECK_LT(static_cast<size_t>(unit), heads_.size());
  return heads_[unit];
}

DepRel DependencyTree::rel(int unit) const {
  SURVEYOR_CHECK_GE(unit, 0);
  SURVEYOR_CHECK_LT(static_cast<size_t>(unit), rels_.size());
  return rels_[unit];
}

const std::vector<int>& DependencyTree::children(int unit) const {
  SURVEYOR_CHECK_GE(unit, 0);
  SURVEYOR_CHECK_LT(static_cast<size_t>(unit), children_.size());
  return children_[unit];
}

std::vector<int> DependencyTree::ChildrenWithRel(int unit, DepRel rel) const {
  std::vector<int> result;
  for (int child : children(unit)) {
    if (rels_[child] == rel) result.push_back(child);
  }
  return result;
}

int DependencyTree::CountChildrenWithRel(int unit, DepRel rel) const {
  int count = 0;
  for (int child : children(unit)) {
    if (rels_[child] == rel) ++count;
  }
  return count;
}

int DependencyTree::FirstChildWithRel(int unit, DepRel rel) const {
  for (int child : children(unit)) {
    if (rels_[child] == rel) return child;
  }
  return -1;
}

bool DependencyTree::HasChildWithRel(int unit, DepRel rel) const {
  for (int child : children(unit)) {
    if (rels_[child] == rel) return true;
  }
  return false;
}

std::vector<int> DependencyTree::PathToRoot(int unit) const {
  std::vector<int> path;
  int current = unit;
  while (current >= 0) {
    path.push_back(current);
    if (current == root_) return path;
    if (path.size() > heads_.size()) return {};  // cycle guard
    current = heads_[current];
  }
  return {};  // detached from root
}

Status DependencyTree::Validate() const {
  if (root_ < 0) return Status::FailedPrecondition("tree has no root");
  for (size_t i = 0; i < heads_.size(); ++i) {
    if (static_cast<int>(i) != root_ && heads_[i] < 0) {
      return Status::FailedPrecondition(
          StrFormat("unit %zu is unattached", i));
    }
    if (PathToRoot(static_cast<int>(i)).empty()) {
      return Status::FailedPrecondition(
          StrFormat("unit %zu does not reach the root", i));
    }
  }
  return Status::OK();
}

}  // namespace surveyor
