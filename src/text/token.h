#ifndef SURVEYOR_TEXT_TOKEN_H_
#define SURVEYOR_TEXT_TOKEN_H_

#include <string>
#include <string_view>

namespace surveyor {

/// Part-of-speech classes used by the rule-based dependency parser. This is
/// a deliberately coarse tag set: it is exactly the granularity the
/// extraction patterns of the paper (Fig. 4) and the intrinsicness filters
/// need.
enum class Pos {
  kNoun,            ///< common noun (incl. entity mentions after tagging)
  kVerb,            ///< ordinary verb ("slept", "visits")
  kToBe,            ///< form of "to be" ("is", "are", "was", "were")
  kCopulaOther,     ///< non-"to be" copular verb ("seems", "looks", "remains")
  kOpinionVerb,     ///< clause-embedding verb ("think", "believe", "say")
  kSmallClauseVerb, ///< small-clause verb ("find" in "I find kittens cute")
  kAux,             ///< auxiliary ("do", "does", "did")
  kAdjective,       ///< property adjective ("big", "cute")
  kAdverb,          ///< intensity or manner adverb ("very", "densely")
  kNegation,        ///< negator ("not", "n't", "never")
  kDeterminer,      ///< "a", "an", "the"
  kPreposition,     ///< "for", "in", "of", ...
  kConjunction,     ///< coordinating conjunction ("and", "or", "but")
  kComplementizer,  ///< "that" introducing a clausal complement
  kPronoun,         ///< "i", "you", "we", ...
  kPunctuation,     ///< sentence-internal punctuation
  kUnknown,         ///< out-of-lexicon word
};

/// Returns a stable name for a POS tag (for debugging and tests).
std::string_view PosName(Pos pos);

/// A single surface token. Tokens are lower-cased by the tokenizer;
/// `text` preserves the normalized form.
struct Token {
  std::string text;
  Pos pos = Pos::kUnknown;
};

}  // namespace surveyor

#endif  // SURVEYOR_TEXT_TOKEN_H_
