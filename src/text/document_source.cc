#include "text/document_source.h"

#include "util/fault.h"
#include "util/string_util.h"

namespace surveyor {

VectorDocumentSource::VectorDocumentSource(
    const std::vector<RawDocument>* corpus)
    : corpus_(corpus) {
  SURVEYOR_CHECK(corpus_ != nullptr);
}

std::optional<RawDocument> VectorDocumentSource::Next() {
  MutexLock lock(mutex_);
  if (next_ >= corpus_->size()) return std::nullopt;
  return (*corpus_)[next_++];
}

FileDocumentSource::FileDocumentSource(const std::string& path,
                                       FileDocumentSourceOptions options)
    : options_(options) {
  // No other thread can see a half-constructed source, but the analysis
  // checks constructor bodies like any other function.
  MutexLock lock(mutex_);
  stream_.open(path);
  if (!stream_) {
    status_ = Status::NotFound("cannot open '" + path + "'");
  }
}

Status FileDocumentSource::status() const {
  MutexLock lock(mutex_);
  return status_;
}

DocumentSourceCounters FileDocumentSource::counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

std::optional<RawDocument> FileDocumentSource::Next() {
  MutexLock lock(mutex_);
  if (!status_.ok()) return std::nullopt;
  std::string line;
  while (true) {
    // The "doc_read" fault point models the flaky storage layer of a
    // cluster read; transient failures are retried per policy. Backoffs
    // are sub-millisecond by default but do hold the source mutex, which
    // is the honest cost of a stalled shared reader.
    RetryResult read = RetryWithBackoff(options_.read_retry, [] {
      if (SURVEYOR_FAULT("doc_read")) {
        return Status::Internal("injected fault: doc_read");
      }
      return Status::OK();
    });
    counters_.read_retries += read.attempts - 1;
    if (!read.status.ok()) {
      status_ = Status::Internal(
          StrFormat("line %d: read failed after %d attempts: %s",
                    line_number_ + 1, read.attempts,
                    read.status.message().c_str()));
      return std::nullopt;
    }
    if (!std::getline(stream_, line)) return std::nullopt;
    ++line_number_;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      if (options_.quarantine_corrupt) {
        ++counters_.quarantined_documents;
        continue;
      }
      status_ = Status::InvalidArgument(
          StrFormat("line %d: expected 3 tab-separated fields", line_number_));
      return std::nullopt;
    }
    RawDocument doc;
    try {
      doc.doc_id = std::stoll(fields[0]);
    } catch (...) {
      if (options_.quarantine_corrupt) {
        ++counters_.quarantined_documents;
        continue;
      }
      status_ = Status::InvalidArgument(
          StrFormat("line %d: bad document id '%s'", line_number_,
                    fields[0].c_str()));
      return std::nullopt;
    }
    doc.domain = fields[1];
    doc.text = fields[2];
    return doc;
  }
}

}  // namespace surveyor
