#include "text/document_source.h"

#include "util/string_util.h"

namespace surveyor {

VectorDocumentSource::VectorDocumentSource(
    const std::vector<RawDocument>* corpus)
    : corpus_(corpus) {
  SURVEYOR_CHECK(corpus_ != nullptr);
}

std::optional<RawDocument> VectorDocumentSource::Next() {
  MutexLock lock(mutex_);
  if (next_ >= corpus_->size()) return std::nullopt;
  return (*corpus_)[next_++];
}

FileDocumentSource::FileDocumentSource(const std::string& path) {
  // No other thread can see a half-constructed source, but the analysis
  // checks constructor bodies like any other function.
  MutexLock lock(mutex_);
  stream_.open(path);
  if (!stream_) {
    status_ = Status::NotFound("cannot open '" + path + "'");
  }
}

Status FileDocumentSource::status() const {
  MutexLock lock(mutex_);
  return status_;
}

std::optional<RawDocument> FileDocumentSource::Next() {
  MutexLock lock(mutex_);
  if (!status_.ok()) return std::nullopt;
  std::string line;
  while (std::getline(stream_, line)) {
    ++line_number_;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      status_ = Status::InvalidArgument(
          StrFormat("line %d: expected 3 tab-separated fields", line_number_));
      return std::nullopt;
    }
    RawDocument doc;
    try {
      doc.doc_id = std::stoll(fields[0]);
    } catch (...) {
      status_ = Status::InvalidArgument(
          StrFormat("line %d: bad document id '%s'", line_number_,
                    fields[0].c_str()));
      return std::nullopt;
    }
    doc.domain = fields[1];
    doc.text = fields[2];
    return doc;
  }
  return std::nullopt;
}

}  // namespace surveyor
