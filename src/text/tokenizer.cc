#include "text/tokenizer.h"

#include <cctype>

#include "util/profile_tag.h"
#include "util/string_util.h"

namespace surveyor {

std::vector<std::string> SplitSentences(std::string_view text) {
  std::vector<std::string> sentences;
  std::string current;
  for (char c : text) {
    if (c == '.' || c == '!' || c == '?') {
      const std::string trimmed = Trim(current);
      if (!trimmed.empty()) sentences.push_back(trimmed);
      current.clear();
    } else {
      current += c;
    }
  }
  const std::string trimmed = Trim(current);
  if (!trimmed.empty()) sentences.push_back(trimmed);
  return sentences;
}

namespace {

// Emits `word` (if non-empty) as one or two tokens, expanding "xxxn't".
void EmitWord(std::string&& word, const Lexicon& lexicon,
              std::vector<Token>& tokens) {
  if (word.empty()) return;
  // Normalize the typographic apostrophe.
  std::string w = ToLower(word);
  if (EndsWith(w, "n't") && w.size() > 3) {
    std::string base = w.substr(0, w.size() - 3);
    // "don't" -> "do" + "n't"; "isn't" -> "is" + "n't"; "can't" -> "ca"
    // is not in our vocabulary, so leave unsplittable bases alone.
    if (lexicon.Contains(base)) {
      tokens.push_back(Token{base, lexicon.Lookup(base)});
      tokens.push_back(Token{"n't", Pos::kNegation});
      return;
    }
  }
  tokens.push_back(Token{w, lexicon.Lookup(w)});
}

}  // namespace

std::vector<Token> Tokenize(std::string_view sentence, const Lexicon& lexicon) {
  SURVEYOR_PROFILE_SCOPE("tokenize");
  std::vector<Token> tokens;
  std::string current;
  for (char c : sentence) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc) || c == '\'' || c == '-') {
      current += c;
    } else if (std::isspace(uc)) {
      EmitWord(std::move(current), lexicon, tokens);
      current.clear();
    } else if (c == ',' || c == ';' || c == ':') {
      EmitWord(std::move(current), lexicon, tokens);
      current.clear();
      tokens.push_back(Token{std::string(1, c), Pos::kPunctuation});
    }
    // Any other character (quotes, brackets, stray bytes) is dropped,
    // mirroring the robustness a Web-scale tokenizer needs.
  }
  EmitWord(std::move(current), lexicon, tokens);
  return tokens;
}

}  // namespace surveyor
