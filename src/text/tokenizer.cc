#include "text/tokenizer.h"

#include <cctype>

#include "util/hotpath.h"
#include "util/profile_tag.h"
#include "util/string_util.h"

namespace surveyor {

namespace {

std::string_view TrimView(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool IsTerminator(char c) { return c == '.' || c == '!' || c == '?'; }

}  // namespace

SURVEYOR_HOT_FUNCTION
std::vector<std::string> SplitSentences(std::string_view text) {
  // Pre-count terminators so the output vector is sized once; sentences
  // are then trimmed views over `text`, copied exactly once each.
  size_t terminators = 0;
  for (const char c : text) {
    if (IsTerminator(c)) ++terminators;
  }
  std::vector<std::string> sentences;
  sentences.reserve(terminators + 1);
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && !IsTerminator(text[i])) continue;
    const std::string_view sentence = TrimView(text.substr(start, i - start));
    if (!sentence.empty()) sentences.emplace_back(sentence);
    start = i + 1;
  }
  return sentences;
}

// SURVEYOR_HOT_BEGIN: EmitWord is an extension of Tokenize's loop body;
// one region so the reserve() in Tokenize covers the pushes here.
namespace {

// Emits `word` (if non-empty) as one or two tokens, expanding "xxxn't".
// Lower-cases at copy time, directly into the token's own buffer (SSO
// for every realistic word), instead of allocating a scratch string.
void EmitWord(std::string_view word, const Lexicon& lexicon,
              std::vector<Token>& tokens) {
  if (word.empty()) return;
  Token& token = tokens.emplace_back();
  token.text.resize(word.size());
  for (size_t i = 0; i < word.size(); ++i) {
    token.text[i] =
        static_cast<char>(std::tolower(static_cast<unsigned char>(word[i])));
  }
  if (EndsWith(token.text, "n't") && token.text.size() > 3) {
    const std::string_view base =
        std::string_view(token.text).substr(0, token.text.size() - 3);
    // "don't" -> "do" + "n't"; "isn't" -> "is" + "n't"; "can't" -> "ca"
    // is not in our vocabulary, so leave unsplittable bases alone.
    if (lexicon.Contains(base)) {
      token.text.resize(base.size());  // shrink never reallocates
      token.pos = lexicon.Lookup(token.text);
      tokens.push_back(Token{"n't", Pos::kNegation});
      return;
    }
  }
  token.pos = lexicon.Lookup(token.text);
}

}  // namespace

std::vector<Token> Tokenize(std::string_view sentence, const Lexicon& lexicon) {
  SURVEYOR_PROFILE_SCOPE("tokenize");
  std::vector<Token> tokens;
  // English words average ~5 chars + separator; round down so the guess
  // rarely over-allocates by more than one doubling.
  tokens.reserve(sentence.size() / 6 + 1);
  size_t word_start = std::string_view::npos;
  for (size_t i = 0; i <= sentence.size(); ++i) {
    const char c = i < sentence.size() ? sentence[i] : ' ';
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc) || c == '\'' || c == '-') {
      if (word_start == std::string_view::npos) word_start = i;
      continue;
    }
    if (word_start != std::string_view::npos) {
      EmitWord(sentence.substr(word_start, i - word_start), lexicon, tokens);
      word_start = std::string_view::npos;
    }
    if (c == ',' || c == ';' || c == ':') {
      tokens.push_back(Token{std::string(1, c), Pos::kPunctuation});
    }
    // Any other character (quotes, brackets, stray bytes) is dropped,
    // mirroring the robustness a Web-scale tokenizer needs.
  }
  return tokens;
}
// SURVEYOR_HOT_END

}  // namespace surveyor
