#include "text/document.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/string_util.h"

namespace surveyor {

std::vector<RawDocument> FilterByDomain(const std::vector<RawDocument>& corpus,
                                        const std::string& domain) {
  if (domain.empty()) return corpus;
  std::vector<RawDocument> filtered;
  for (const RawDocument& doc : corpus) {
    if (doc.domain == domain) filtered.push_back(doc);
  }
  return filtered;
}

Status SaveCorpus(const std::vector<RawDocument>& corpus, std::ostream& os) {
  os << "# surveyor corpus v1\n";
  for (const RawDocument& doc : corpus) {
    if (doc.text.find('\t') != std::string::npos ||
        doc.text.find('\n') != std::string::npos) {
      return Status::InvalidArgument(
          "document text must not contain tabs or newlines");
    }
    os << doc.doc_id << "\t" << doc.domain << "\t" << doc.text << "\n";
  }
  if (!os.good()) return Status::Internal("write failure");
  return Status::OK();
}

StatusOr<std::vector<RawDocument>> LoadCorpus(std::istream& is) {
  std::vector<RawDocument> corpus;
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected 3 tab-separated fields", line_number));
    }
    RawDocument doc;
    try {
      doc.doc_id = std::stoll(fields[0]);
    } catch (...) {
      return Status::InvalidArgument(
          StrFormat("line %d: bad document id '%s'", line_number,
                    fields[0].c_str()));
    }
    doc.domain = fields[1];
    doc.text = fields[2];
    corpus.push_back(std::move(doc));
  }
  return corpus;
}

Status SaveCorpusToFile(const std::vector<RawDocument>& corpus,
                        const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::NotFound("cannot open '" + path + "' for writing");
  return SaveCorpus(corpus, os);
}

StatusOr<std::vector<RawDocument>> LoadCorpusFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open '" + path + "'");
  return LoadCorpus(is);
}

}  // namespace surveyor
