#include "text/entity_tagger.h"

#include <algorithm>
#include <cmath>

#include "util/hotpath.h"
#include "util/logging.h"
#include "util/profile_tag.h"
#include "util/string_util.h"

namespace surveyor {

EntityTagger::EntityTagger(const KnowledgeBase* kb, EntityTaggerOptions options)
    : kb_(kb), options_(options) {
  SURVEYOR_CHECK(kb_ != nullptr);
  for (const std::string& alias : kb_->AllAliases()) {
    aliases_[alias] = kb_->CandidatesForAlias(alias);
  }
  type_cues_.resize(kb_->num_types());
  for (TypeId t = 0; t < kb_->num_types(); ++t) {
    const std::string& name = kb_->TypeName(t);
    type_cues_[t].push_back(name);
    type_cues_[t].push_back(Lexicon::Pluralize(name));
  }
}

EntityId EntityTagger::Resolve(
    const std::string& alias,
    const std::unordered_set<std::string>& context) const {
  auto it = aliases_.find(ToLower(alias));
  if (it == aliases_.end()) return kInvalidEntity;
  std::unordered_set<std::string_view> views;
  views.reserve(context.size());
  for (const std::string& word : context) views.insert(word);
  return Disambiguate(it->second, views);
}

SURVEYOR_HOT_FUNCTION
EntityId EntityTagger::Disambiguate(
    const std::vector<EntityId>& candidates,
    const std::unordered_set<std::string_view>& context) const {
  if (candidates.empty()) return kInvalidEntity;
  if (candidates.size() == 1) return candidates[0];

  double best = -1e300, second = -1e300;
  EntityId best_entity = kInvalidEntity;
  for (EntityId id : candidates) {
    const Entity& entity = kb_->entity(id);
    double score = std::log(std::max(entity.popularity, 1e-12));
    for (const std::string& cue : type_cues_[entity.most_notable_type]) {
      if (context.count(cue) > 0) {
        score += options_.type_cue_bonus;
        break;
      }
    }
    if (score > best) {
      second = best;
      best = score;
      best_entity = id;
    } else if (score > second) {
      second = score;
    }
  }
  if (best - second < options_.min_disambiguation_margin) {
    return kInvalidEntity;  // too ambiguous; Section 2 discards such names
  }
  return best_entity;
}

SURVEYOR_HOT_FUNCTION
std::vector<ParseUnit> EntityTagger::Tag(
    const std::vector<Token>& tokens) const {
  SURVEYOR_PROFILE_SCOPE("match");
  // Sentence-level context for disambiguation: views over the (already
  // lower-cased) token texts, no copies.
  std::unordered_set<std::string_view> context;
  context.reserve(tokens.size());
  for (const Token& token : tokens) context.insert(token.text);

  std::vector<ParseUnit> units;
  units.reserve(tokens.size());
  // Scratch for candidate alias spans, reused across every span.
  std::string joined;
  joined.reserve(64);
  size_t i = 0;
  while (i < tokens.size()) {
    bool matched = false;
    const int max_len = std::min<int>(options_.max_mention_tokens,
                                      static_cast<int>(tokens.size() - i));
    for (int len = max_len; len >= 1; --len) {
      // Candidate span must consist of word tokens.
      bool span_ok = true;
      joined.clear();
      for (int k = 0; k < len; ++k) {
        const Token& t = tokens[i + k];
        if (t.pos == Pos::kPunctuation) {
          span_ok = false;
          break;
        }
        if (k > 0) joined += ' ';
        joined += t.text;
      }
      if (!span_ok) continue;
      auto it = aliases_.find(joined);
      if (it == aliases_.end()) continue;
      const EntityId resolved = Disambiguate(it->second, context);
      if (resolved == kInvalidEntity) {
        // Known alias but too ambiguous to resolve: chunk it as one
        // untagged noun so parsing stays sane; downstream sees no entity.
        ParseUnit unit;
        unit.text = joined;
        unit.pos = Pos::kNoun;
        units.push_back(std::move(unit));
        i += static_cast<size_t>(len);
        matched = true;
        break;
      }
      ParseUnit unit;
      unit.text = joined;
      unit.pos = Pos::kNoun;
      unit.entity = resolved;
      units.push_back(std::move(unit));
      i += static_cast<size_t>(len);
      matched = true;
      break;
    }
    if (!matched) {
      const Token& t = tokens[i];
      ParseUnit unit;
      unit.text = t.text;
      unit.pos = t.pos;
      units.push_back(std::move(unit));
      ++i;
    }
  }
  return units;
}

}  // namespace surveyor
