#ifndef SURVEYOR_TEXT_LEXICON_IO_H_
#define SURVEYOR_TEXT_LEXICON_IO_H_

#include <iosfwd>
#include <string>

#include "text/lexicon.h"
#include "util/status.h"
#include "util/statusor.h"

namespace surveyor {

/// Parses a POS name as written by PosName ("NOUN", "ADJ", ...).
StatusOr<Pos> PosFromName(const std::string& name);

/// Serializes the lexicon's open-class vocabulary as TSV lines:
///   word <tab> WORD <tab> POS
///   plural <tab> PLURAL <tab> SINGULAR
/// Closed-class entries are built in and not written. Lines are sorted for
/// deterministic output.
Status SaveLexicon(const Lexicon& lexicon, std::ostream& os);

/// Loads vocabulary written by SaveLexicon into a fresh lexicon (on top of
/// the built-in closed-class words). Lines starting with '#' and blank
/// lines are ignored.
StatusOr<Lexicon> LoadLexicon(std::istream& is);

Status SaveLexiconToFile(const Lexicon& lexicon, const std::string& path);
StatusOr<Lexicon> LoadLexiconFromFile(const std::string& path);

}  // namespace surveyor

#endif  // SURVEYOR_TEXT_LEXICON_IO_H_
