#ifndef SURVEYOR_TEXT_ENTITY_TAGGER_H_
#define SURVEYOR_TEXT_ENTITY_TAGGER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kb/knowledge_base.h"
#include "text/annotated.h"
#include "text/lexicon.h"
#include "text/token.h"

namespace surveyor {

/// Options controlling mention detection and disambiguation.
struct EntityTaggerOptions {
  /// Longest alias (in tokens) considered for chunking.
  int max_mention_tokens = 4;
  /// Minimum score gap (natural-log scale) between the best and the
  /// second-best candidate required to resolve an ambiguous alias. Below
  /// the gap the mention is left untagged — Section 2 of the paper
  /// discards ambiguous city names the same way.
  double min_disambiguation_margin = 0.5;
  /// Score bonus when the sentence contains a cue word for the candidate's
  /// type (the type noun itself, singular or plural).
  double type_cue_bonus = 4.0;
};

/// Detects mentions of knowledge-base entities in a token stream and
/// resolves ambiguous aliases using type-cue context and entity
/// popularity. Plays the role of the paper's upstream entity tagger with
/// "state-of-the-art means for disambiguation".
class EntityTagger {
 public:
  /// `kb` must outlive the tagger. Builds the alias match table.
  EntityTagger(const KnowledgeBase* kb, EntityTaggerOptions options = {});

  /// Chunks `tokens` into parse units, tagging resolved entity mentions.
  /// Unresolved (too-ambiguous) aliases stay as plain tokens.
  std::vector<ParseUnit> Tag(const std::vector<Token>& tokens) const;

  /// Resolves a single alias given sentence context words (lower-cased).
  /// Returns kInvalidEntity when unresolvable.
  EntityId Resolve(const std::string& alias,
                   const std::unordered_set<std::string>& context) const;

 private:
  /// Disambiguation core shared by Tag and Resolve: scores pre-looked-up
  /// candidates against lower-cased context words. Views must outlive the
  /// call only.
  EntityId Disambiguate(
      const std::vector<EntityId>& candidates,
      const std::unordered_set<std::string_view>& context) const;

  const KnowledgeBase* kb_;
  EntityTaggerOptions options_;
  /// alias (space-joined lower-case tokens) -> candidate entities.
  std::unordered_map<std::string, std::vector<EntityId>> aliases_;
  /// type id -> cue words (type noun singular + plural).
  std::vector<std::vector<std::string>> type_cues_;
};

}  // namespace surveyor

#endif  // SURVEYOR_TEXT_ENTITY_TAGGER_H_
