#ifndef SURVEYOR_TEXT_ANNOTATED_H_
#define SURVEYOR_TEXT_ANNOTATED_H_

#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "text/dependency.h"
#include "text/token.h"

namespace surveyor {

/// One parse unit: either a single token or an entity mention chunk
/// (possibly spanning several surface tokens, e.g. "san francisco").
/// The dependency tree is built over units, so a mention behaves as a
/// single noun during parsing — the same effect the paper obtains from an
/// upstream entity tagger annotating the snapshot.
struct ParseUnit {
  /// Normalized surface text ("san francisco").
  std::string text;
  /// POS tag; entity mentions are nouns.
  Pos pos = Pos::kUnknown;
  /// Resolved entity for direct mentions; kInvalidEntity otherwise.
  EntityId entity = kInvalidEntity;
  /// Entity this unit corefers with (e.g. the predicate nominal "animals"
  /// in "snakes are dangerous animals"); filled by the coreference pass.
  EntityId coref_entity = kInvalidEntity;

  bool IsEntityMention() const { return entity != kInvalidEntity; }
  /// The entity this unit stands for, through either a direct mention or
  /// coreference.
  EntityId ReferentEntity() const {
    return entity != kInvalidEntity ? entity : coref_entity;
  }
};

/// A fully annotated sentence: units, dependency tree, and bookkeeping.
struct AnnotatedSentence {
  std::string raw_text;
  std::vector<ParseUnit> units;
  DependencyTree tree{0};
  /// True when the parser produced a well-formed tree; sentences that the
  /// grammar cannot analyze are kept (for statistics) but not extracted
  /// from.
  bool parsed = false;
};

/// A processed document: the unit the extraction shards operate on.
struct AnnotatedDocument {
  int64_t doc_id = 0;
  std::vector<AnnotatedSentence> sentences;
};

}  // namespace surveyor

#endif  // SURVEYOR_TEXT_ANNOTATED_H_
