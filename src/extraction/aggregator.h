#ifndef SURVEYOR_EXTRACTION_AGGREGATOR_H_
#define SURVEYOR_EXTRACTION_AGGREGATOR_H_

#include <cstdint>
#include <tuple>
#include <string>
#include <unordered_map>
#include <vector>

#include "extraction/evidence.h"
#include "kb/knowledge_base.h"
#include "model/opinion.h"
#include "util/statusor.h"

namespace surveyor {

/// Evidence for one property-type combination, ready for EM: counters for
/// *every* entity of the type, zeros included — the paper draws inferences
/// from unmentioned entities too.
struct PropertyTypeEvidence {
  TypeId type = kInvalidType;
  std::string property;
  /// Total statements extracted for this combination (positive+negative
  /// across all entities); the rho-threshold applies to this number.
  int64_t total_statements = 0;
  /// All entities of the type, in knowledge-base order.
  std::vector<EntityId> entities;
  /// Counters aligned with `entities`.
  std::vector<EvidenceCounts> counts;
};

/// A pointer back into the corpus: which document and sentence asserted a
/// statement. Supports the paper's goal of answering subjective queries
/// "with links to supporting content on the Web".
struct StatementRef {
  int64_t doc_id = 0;
  int sentence_index = 0;
  bool positive = true;
};

/// Accumulates evidence statements into per-(entity, property) counters and
/// groups them by entity type. Shards accumulate independently and are
/// merged, mirroring the paper's map-reduce structure. Optionally keeps a
/// bounded sample of supporting statement locations per pair.
class EvidenceAggregator {
 public:
  /// `max_provenance_samples` bounds how many supporting statement
  /// references are kept per (entity, property) pair; 0 disables
  /// provenance tracking.
  explicit EvidenceAggregator(int max_provenance_samples = 0);

  /// Adds one statement to the counters.
  void Add(const EvidenceStatement& statement);

  /// Adds a batch.
  void AddAll(const std::vector<EvidenceStatement>& statements);

  /// Merges another aggregator's counters into this one.
  void Merge(const EvidenceAggregator& other);

  /// Number of distinct (entity, property) pairs with evidence.
  size_t num_pairs() const;

  /// Total number of statements accumulated.
  int64_t total_statements() const { return total_statements_; }

  /// Looks up the counters for one pair (zeros if absent).
  EvidenceCounts CountsFor(EntityId entity, const std::string& property) const;

  /// Groups evidence by (most-notable type, property), keeps combinations
  /// with at least `min_statements` (the paper's rho, 100 in deployment),
  /// and materializes full per-entity counter vectors.
  std::vector<PropertyTypeEvidence> GroupByType(const KnowledgeBase& kb,
                                                int64_t min_statements) const;

  /// Statement totals per entity (for the Fig. 9a percentile statistics);
  /// one value per knowledge-base entity, zeros included.
  std::vector<int64_t> StatementsPerEntity(const KnowledgeBase& kb) const;

  /// Supporting statement locations sampled for a pair (empty when
  /// provenance tracking is disabled or the pair has no evidence).
  std::vector<StatementRef> SupportingStatements(
      EntityId entity, const std::string& property) const;

  /// All provenance entries as (entity, property, refs) tuples, in
  /// unspecified order; empty when tracking is disabled.
  std::vector<std::tuple<EntityId, std::string, std::vector<StatementRef>>>
  AllSupportingStatements() const;

 private:
  /// property -> counts, nested under entity.
  std::unordered_map<EntityId,
                     std::unordered_map<std::string, EvidenceCounts>>
      pairs_;
  /// property -> sampled supporting statements, nested under entity.
  std::unordered_map<EntityId,
                     std::unordered_map<std::string, std::vector<StatementRef>>>
      provenance_;
  int max_provenance_samples_ = 0;
  int64_t total_statements_ = 0;
};

}  // namespace surveyor

#endif  // SURVEYOR_EXTRACTION_AGGREGATOR_H_
