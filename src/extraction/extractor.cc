#include "extraction/extractor.h"

#include "util/hotpath.h"
#include "util/logging.h"
#include "util/profile_tag.h"

namespace surveyor {

std::string_view PatternKindName(PatternKind kind) {
  switch (kind) {
    case PatternKind::kAdjectivalModifier:
      return "amod";
    case PatternKind::kAdjectivalComplement:
      return "acomp";
    case PatternKind::kConjunction:
      return "conj";
    case PatternKind::kSmallClause:
      return "xcomp";
  }
  return "?";
}

EvidenceExtractor::EvidenceExtractor(ExtractionOptions options)
    : options_(options) {}

bool EvidenceExtractor::ChecksEnabled() const {
  if (options_.intrinsic_checks_override.has_value()) {
    return *options_.intrinsic_checks_override;
  }
  return options_.version == PatternVersion::kV3AcompToBeChecks ||
         options_.version == PatternVersion::kV4AmodAcompToBeChecks;
}

bool EvidenceExtractor::AmodEnabled() const {
  return options_.version != PatternVersion::kV3AcompToBeChecks;
}

bool EvidenceExtractor::AcompEnabled() const {
  return options_.version != PatternVersion::kV1AmodCopula;
}

bool EvidenceExtractor::ToBeOnly() const {
  return options_.version == PatternVersion::kV3AcompToBeChecks ||
         options_.version == PatternVersion::kV4AmodAcompToBeChecks;
}

// SURVEYOR_HOT_BEGIN: per-sentence extraction is ~89% of pipeline wall
// time (ROADMAP item 1); child lookups go through the allocation-free
// Count/First queries, and the one output vector is deliberately left
// unreserved (most sentences yield no statements).

bool EvidenceExtractor::IsPositive(const AnnotatedSentence& sentence,
                                   int adjective_unit) const {
  if (!options_.detect_negation) return true;
  // Walk from the property token to the root, flipping the sign once per
  // negated token (a token with a `neg` child) — paper Fig. 5. Follows
  // head() links directly instead of materializing PathToRoot(); the
  // tree is validated (rooted, acyclic), so the walk terminates.
  bool positive = true;
  for (int unit = adjective_unit; unit >= 0; unit = sentence.tree.head(unit)) {
    if (sentence.tree.HasChildWithRel(unit, DepRel::kNeg)) {
      positive = !positive;
    }
  }
  return positive;
}

std::string EvidenceExtractor::PropertyString(const AnnotatedSentence& sentence,
                                              int adjective_unit) const {
  // The parser attaches advmod children in ascending unit order, so
  // attachment order is already surface order — no sort, no index vector.
  const DependencyTree& tree = sentence.tree;
  size_t length = sentence.units[adjective_unit].text.size();
  for (int adv : tree.children(adjective_unit)) {
    if (tree.rel(adv) == DepRel::kAdvmod &&
        sentence.units[adv].pos == Pos::kAdverb) {
      length += sentence.units[adv].text.size() + 1;
    }
  }
  std::string property;
  property.reserve(length);
  for (int adv : tree.children(adjective_unit)) {
    if (tree.rel(adv) != DepRel::kAdvmod) continue;
    if (sentence.units[adv].pos != Pos::kAdverb) continue;
    property += sentence.units[adv].text;
    property += ' ';
  }
  property += sentence.units[adjective_unit].text;
  return property;
}

void EvidenceExtractor::EmitWithConjuncts(
    const AnnotatedSentence& sentence, int adjective_unit, EntityId entity,
    PatternKind kind, int64_t doc_id, int sentence_index,
    std::vector<EvidenceStatement>& out) const {
  auto emit = [&](int adj, PatternKind k) {
    EvidenceStatement statement;
    statement.entity = entity;
    statement.adjective = sentence.units[adj].text;
    statement.property = PropertyString(sentence, adj);
    statement.positive = IsPositive(sentence, adj);
    statement.pattern = k;
    statement.doc_id = doc_id;
    statement.sentence_index = sentence_index;
    // Statements are rare (well under one per sentence); reserving
    // `out` would pessimize the common empty case.
    // NOLINTNEXTLINE_HOTPATH(no-heap-alloc)
    out.push_back(std::move(statement));
  };
  emit(adjective_unit, kind);
  // Conjunction pattern (Fig. 4c): adjectives coordinated with a matched
  // adjective assert the same entity.
  for (int conj : sentence.tree.children(adjective_unit)) {
    if (sentence.tree.rel(conj) != DepRel::kConj) continue;
    if (sentence.units[conj].pos != Pos::kAdjective) continue;
    emit(conj, PatternKind::kConjunction);
  }
}

std::vector<EvidenceStatement> EvidenceExtractor::ExtractFromSentence(
    const AnnotatedSentence& sentence, int64_t doc_id,
    int sentence_index) const {
  SURVEYOR_PROFILE_SCOPE("extract");
  // NOLINTNEXTLINE_HOTPATH(no-heap-alloc) usually stays empty; see above.
  std::vector<EvidenceStatement> out;
  if (!sentence.parsed) return out;
  const DependencyTree& tree = sentence.tree;
  const bool checks = ChecksEnabled();

  for (size_t i = 0; i < sentence.units.size(); ++i) {
    if (sentence.units[i].pos != Pos::kAdjective) continue;
    const int adj = static_cast<int>(i);
    // Conjunct adjectives are emitted through their coordination base.
    if (tree.rel(adj) == DepRel::kConj && tree.head(adj) >= 0 &&
        sentence.units[tree.head(adj)].pos == Pos::kAdjective) {
      continue;
    }

    // --- Adjectival complement: "X is (very) big" -----------------------
    const int cop = tree.FirstChildWithRel(adj, DepRel::kCop);
    if (cop >= 0) {
      if (!AcompEnabled()) continue;
      const int subject_unit = tree.FirstChildWithRel(adj, DepRel::kNsubj);
      if (tree.CountChildrenWithRel(adj, DepRel::kCop) != 1 ||
          tree.CountChildrenWithRel(adj, DepRel::kNsubj) != 1) {
        continue;
      }
      if (ToBeOnly() && sentence.units[cop].pos != Pos::kToBe) continue;
      const ParseUnit& subject = sentence.units[subject_unit];
      if (!subject.IsEntityMention()) continue;
      // Intrinsicness: a prepositional constriction on the predicate
      // ("bad for parking") or an adjectival constriction on the subject
      // mention ("*southern* france is warm" refers to a part of the
      // entity) marks a non-intrinsic statement.
      if (checks && (tree.HasChildWithRel(adj, DepRel::kPrep) ||
                     tree.HasChildWithRel(subject_unit, DepRel::kAmod))) {
        continue;
      }
      EmitWithConjuncts(sentence, adj, subject.entity,
                        PatternKind::kAdjectivalComplement, doc_id,
                        sentence_index, out);
      continue;
    }

    // --- Small clause: "I find kittens cute" -----------------------------
    if (tree.rel(adj) == DepRel::kXcomp) {
      if (!AcompEnabled()) continue;
      if (tree.CountChildrenWithRel(adj, DepRel::kNsubj) != 1) continue;
      const int subject_unit = tree.FirstChildWithRel(adj, DepRel::kNsubj);
      const ParseUnit& subject = sentence.units[subject_unit];
      if (!subject.IsEntityMention()) continue;
      if (checks && (tree.HasChildWithRel(adj, DepRel::kPrep) ||
                     tree.HasChildWithRel(subject_unit, DepRel::kAmod))) {
        continue;
      }
      EmitWithConjuncts(sentence, adj, subject.entity,
                        PatternKind::kSmallClause, doc_id, sentence_index,
                        out);
      continue;
    }

    // --- Adjectival modifier: "snakes are dangerous animals", "the cute
    // kitten slept", "X is a big city" ------------------------------------
    if (tree.rel(adj) != DepRel::kAmod) continue;
    if (!AmodEnabled()) continue;
    const int head = tree.head(adj);
    if (head < 0) continue;
    const ParseUnit& noun = sentence.units[head];
    EntityId entity = kInvalidEntity;
    if (checks) {
      // The coreference requirement: the modified noun must be a
      // coreferential secondary mention, which rejects part-of readings
      // ("southern France is warm") and bare attributive uses.
      if (noun.coref_entity == kInvalidEntity) continue;
      entity = noun.coref_entity;
      // Predicate-nominal copula must be "to be" for v3/v4.
      bool copula_ok = true;
      for (int child : tree.children(head)) {
        if (tree.rel(child) == DepRel::kCop && ToBeOnly() &&
            sentence.units[child].pos != Pos::kToBe) {
          copula_ok = false;
        }
      }
      if (!copula_ok) continue;
      // Intrinsicness: prepositional constriction on the nominal head
      // ("a big city in the north") or adjectival constriction on the
      // subject mention.
      if (tree.HasChildWithRel(head, DepRel::kPrep)) continue;
      bool subject_constricted = false;
      for (int child : tree.children(head)) {
        if (tree.rel(child) == DepRel::kNsubj &&
            tree.HasChildWithRel(child, DepRel::kAmod)) {
          subject_constricted = true;
        }
      }
      if (subject_constricted) continue;
    } else {
      entity = noun.ReferentEntity();
      if (entity == kInvalidEntity) continue;
    }
    EmitWithConjuncts(sentence, adj, entity, PatternKind::kAdjectivalModifier,
                      doc_id, sentence_index, out);
  }
  return out;
}
// SURVEYOR_HOT_END

std::vector<EvidenceStatement> EvidenceExtractor::ExtractFromDocument(
    const AnnotatedDocument& doc) const {
  std::vector<EvidenceStatement> out;
  for (size_t s = 0; s < doc.sentences.size(); ++s) {
    std::vector<EvidenceStatement> statements = ExtractFromSentence(
        doc.sentences[s], doc.doc_id, static_cast<int>(s));
    out.insert(out.end(), std::make_move_iterator(statements.begin()),
               std::make_move_iterator(statements.end()));
  }
  return out;
}

}  // namespace surveyor
