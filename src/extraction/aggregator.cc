#include "extraction/aggregator.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace surveyor {

EvidenceAggregator::EvidenceAggregator(int max_provenance_samples)
    : max_provenance_samples_(max_provenance_samples) {
  SURVEYOR_CHECK_GE(max_provenance_samples, 0);
}

void EvidenceAggregator::Add(const EvidenceStatement& statement) {
  SURVEYOR_CHECK_NE(statement.entity, kInvalidEntity);
  EvidenceCounts& counts = pairs_[statement.entity][statement.property];
  if (statement.positive) {
    ++counts.positive;
  } else {
    ++counts.negative;
  }
  ++total_statements_;
  if (max_provenance_samples_ > 0) {
    std::vector<StatementRef>& refs =
        provenance_[statement.entity][statement.property];
    if (refs.size() < static_cast<size_t>(max_provenance_samples_)) {
      refs.push_back(StatementRef{statement.doc_id, statement.sentence_index,
                                  statement.positive});
    }
  }
}

void EvidenceAggregator::AddAll(
    const std::vector<EvidenceStatement>& statements) {
  for (const EvidenceStatement& s : statements) Add(s);
}

void EvidenceAggregator::Merge(const EvidenceAggregator& other) {
  for (const auto& [entity, properties] : other.pairs_) {
    auto& mine = pairs_[entity];
    for (const auto& [property, counts] : properties) {
      EvidenceCounts& c = mine[property];
      c.positive += counts.positive;
      c.negative += counts.negative;
    }
  }
  if (max_provenance_samples_ > 0) {
    for (const auto& [entity, properties] : other.provenance_) {
      auto& mine = provenance_[entity];
      for (const auto& [property, refs] : properties) {
        std::vector<StatementRef>& target = mine[property];
        for (const StatementRef& ref : refs) {
          if (target.size() >= static_cast<size_t>(max_provenance_samples_)) {
            break;
          }
          target.push_back(ref);
        }
      }
    }
  }
  total_statements_ += other.total_statements_;
}

size_t EvidenceAggregator::num_pairs() const {
  size_t total = 0;
  for (const auto& [entity, properties] : pairs_) total += properties.size();
  return total;
}

EvidenceCounts EvidenceAggregator::CountsFor(EntityId entity,
                                             const std::string& property) const {
  auto it = pairs_.find(entity);
  if (it == pairs_.end()) return {};
  auto pit = it->second.find(property);
  if (pit == it->second.end()) return {};
  return pit->second;
}

std::vector<PropertyTypeEvidence> EvidenceAggregator::GroupByType(
    const KnowledgeBase& kb, int64_t min_statements) const {
  // (type, property) -> entity -> counts. Ordered map for deterministic
  // output across runs.
  std::map<std::pair<TypeId, std::string>,
           std::unordered_map<EntityId, EvidenceCounts>>
      groups;
  for (const auto& [entity, properties] : pairs_) {
    const TypeId type = kb.entity(entity).most_notable_type;
    for (const auto& [property, counts] : properties) {
      groups[{type, property}][entity] = counts;
    }
  }
  std::vector<PropertyTypeEvidence> result;
  for (const auto& [key, entity_counts] : groups) {
    int64_t total = 0;
    for (const auto& [entity, counts] : entity_counts) {
      total += counts.total();
    }
    if (total < min_statements) continue;
    PropertyTypeEvidence evidence;
    evidence.type = key.first;
    evidence.property = key.second;
    evidence.total_statements = total;
    const std::vector<EntityId>& members = kb.EntitiesOfType(key.first);
    evidence.entities = members;
    evidence.counts.resize(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      auto it = entity_counts.find(members[i]);
      if (it != entity_counts.end()) evidence.counts[i] = it->second;
    }
    result.push_back(std::move(evidence));
  }
  return result;
}

std::vector<StatementRef> EvidenceAggregator::SupportingStatements(
    EntityId entity, const std::string& property) const {
  auto it = provenance_.find(entity);
  if (it == provenance_.end()) return {};
  auto pit = it->second.find(property);
  if (pit == it->second.end()) return {};
  return pit->second;
}

std::vector<std::tuple<EntityId, std::string, std::vector<StatementRef>>>
EvidenceAggregator::AllSupportingStatements() const {
  std::vector<std::tuple<EntityId, std::string, std::vector<StatementRef>>>
      result;
  for (const auto& [entity, properties] : provenance_) {
    for (const auto& [property, refs] : properties) {
      result.emplace_back(entity, property, refs);
    }
  }
  return result;
}

std::vector<int64_t> EvidenceAggregator::StatementsPerEntity(
    const KnowledgeBase& kb) const {
  std::vector<int64_t> totals(kb.num_entities(), 0);
  for (const auto& [entity, properties] : pairs_) {
    int64_t total = 0;
    for (const auto& [property, counts] : properties) total += counts.total();
    totals[entity] = total;
  }
  return totals;
}

}  // namespace surveyor
