#ifndef SURVEYOR_EXTRACTION_EVIDENCE_H_
#define SURVEYOR_EXTRACTION_EVIDENCE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "kb/knowledge_base.h"

namespace surveyor {

/// Which dependency pattern produced an extraction (paper Fig. 4).
enum class PatternKind {
  kAdjectivalModifier,    ///< "snakes are dangerous animals"
  kAdjectivalComplement,  ///< "chicago is very big"
  kConjunction,           ///< "a fast and exciting sport" (for "exciting")
  kSmallClause,           ///< "I find kittens cute"
};

std::string_view PatternKindName(PatternKind kind);

/// The four extraction-pattern versions of Appendix B. They differ in the
/// modifier patterns enabled, the verb class accepted for the copula, and
/// whether the intrinsicness checks run. Version 4 is the one the paper
/// ships.
enum class PatternVersion {
  kV1AmodCopula = 1,        ///< amod only, copula class, no checks
  kV2AmodAcompCopula = 2,   ///< amod+acomp, copula class, no checks
  kV3AcompToBeChecks = 3,   ///< acomp only, "to be" only, checks
  kV4AmodAcompToBeChecks = 4,  ///< amod+acomp, "to be" only, checks (final)
};

/// One evidence statement: an assertion found in text that a property does
/// (positive) or does not (negative) apply to an entity.
struct EvidenceStatement {
  EntityId entity = kInvalidEntity;
  /// The bare adjective ("big").
  std::string adjective;
  /// The full property: optional adverbs plus the adjective ("very big",
  /// "densely populated"). Aggregation keys on this string, like the
  /// paper's properties.
  std::string property;
  bool positive = true;
  PatternKind pattern = PatternKind::kAdjectivalComplement;
  int64_t doc_id = 0;
  int sentence_index = 0;
};

}  // namespace surveyor

#endif  // SURVEYOR_EXTRACTION_EVIDENCE_H_
