#ifndef SURVEYOR_EXTRACTION_EXTRACTOR_H_
#define SURVEYOR_EXTRACTION_EXTRACTOR_H_

#include <optional>
#include <vector>

#include "extraction/evidence.h"
#include "text/annotated.h"

namespace surveyor {

/// Options controlling evidence extraction.
struct ExtractionOptions {
  /// Which Appendix-B pattern version to run. The deployed system uses v4.
  PatternVersion version = PatternVersion::kV4AmodAcompToBeChecks;
  /// Negation-path polarity detection (paper Fig. 5). Disabling it treats
  /// every statement as positive — the ablation showing why
  /// occurrence-style approaches fail on subjective properties.
  bool detect_negation = true;
  /// Overrides the version's intrinsicness-check setting (for ablations).
  std::optional<bool> intrinsic_checks_override;
};

/// Matches the dependency patterns of paper Section 4 against annotated
/// sentences and emits evidence statements.
///
/// Patterns: adjectival complement (entity subject + copula + adjective),
/// adjectival modifier (adjective on a noun that mentions or corefers with
/// an entity), and conjunction (adjectives coordinated with a matched
/// adjective). Intrinsicness checks reject statements whose predicate
/// carries a prepositional constriction ("bad *for parking*") and
/// adjectival-modifier matches that are not licensed by coreference
/// ("*southern* France is warm"). Polarity flips once per negated token on
/// the path from the property token to the root, so double negations
/// resolve to positive.
class EvidenceExtractor {
 public:
  explicit EvidenceExtractor(ExtractionOptions options = {});

  /// Extracts all evidence statements from one parsed sentence.
  /// Unparsed sentences yield no evidence.
  std::vector<EvidenceStatement> ExtractFromSentence(
      const AnnotatedSentence& sentence, int64_t doc_id = 0,
      int sentence_index = 0) const;

  /// Extracts from every sentence of a document.
  std::vector<EvidenceStatement> ExtractFromDocument(
      const AnnotatedDocument& doc) const;

  const ExtractionOptions& options() const { return options_; }

  /// True when this configuration runs the intrinsicness checks.
  bool ChecksEnabled() const;
  /// True when the adjectival-modifier pattern is enabled.
  bool AmodEnabled() const;
  /// True when the adjectival-complement pattern is enabled.
  bool AcompEnabled() const;
  /// True when only forms of "to be" are accepted as copula.
  bool ToBeOnly() const;

 private:
  /// Determines statement polarity from the negation path (Fig. 5).
  bool IsPositive(const AnnotatedSentence& sentence, int adjective_unit) const;

  /// Builds the property string: advmod children + adjective.
  std::string PropertyString(const AnnotatedSentence& sentence,
                             int adjective_unit) const;

  /// Emits a statement plus statements for conjoined adjectives.
  void EmitWithConjuncts(const AnnotatedSentence& sentence, int adjective_unit,
                         EntityId entity, PatternKind kind, int64_t doc_id,
                         int sentence_index,
                         std::vector<EvidenceStatement>& out) const;

  ExtractionOptions options_;
};

}  // namespace surveyor

#endif  // SURVEYOR_EXTRACTION_EXTRACTOR_H_
