#ifndef SURVEYOR_MAPREDUCE_MAPREDUCE_H_
#define SURVEYOR_MAPREDUCE_MAPREDUCE_H_

#include <algorithm>
#include <functional>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/threadpool.h"

namespace surveyor {

/// Options for an in-process MapReduce execution.
struct MapReduceOptions {
  /// Worker threads for the map and reduce phases (0 = hardware).
  int num_workers = 0;
  /// Shuffle partitions; reducers run per partition. More partitions give
  /// more reduce parallelism at the cost of smaller batches.
  int num_partitions = 16;
};

/// A minimal typed MapReduce framework — the in-process stand-in for the
/// cluster framework behind the paper's deployment (Section 7.1 describes
/// the pipeline as exactly such jobs: extract over documents, group by
/// pair, group by type, then per-group model fitting).
///
/// Deterministic: outputs are ordered by (partition, key) regardless of
/// worker count or scheduling, because the shuffle groups into ordered
/// maps and reducers consume whole partitions.
///
/// - `Input`: one map task's input record.
/// - `K`: shuffle key. Must be hashable via `Hasher` and `operator<`
///   comparable.
/// - `V`: mapped value.
/// - `Out`: one reducer output record.
template <typename Input, typename K, typename V, typename Out,
          typename Hasher = std::hash<K>>
class MapReduce {
 public:
  using EmitFn = std::function<void(K, V)>;
  /// Map: consume one input record, emit any number of (key, value) pairs.
  using MapFn = std::function<void(const Input&, const EmitFn&)>;
  /// Reduce: fold all values of one key into one output record.
  using ReduceFn = std::function<Out(const K&, std::vector<V>&)>;

  explicit MapReduce(MapReduceOptions options = {}) : options_(options) {
    SURVEYOR_CHECK_GT(options_.num_partitions, 0);
  }

  /// Runs the job over `inputs`. Map tasks run sharded across workers;
  /// emitted pairs are hash-partitioned; each partition is reduced
  /// independently (also across workers). Returns reducer outputs ordered
  /// by (partition, key).
  std::vector<Out> Run(const std::vector<Input>& inputs, const MapFn& map_fn,
                       const ReduceFn& reduce_fn) const {
    const size_t num_partitions =
        static_cast<size_t>(options_.num_partitions);
    const unsigned hardware = std::thread::hardware_concurrency();
    ThreadPool pool(options_.num_workers > 0
                        ? static_cast<size_t>(options_.num_workers)
                        : (hardware == 0 ? 4 : hardware));

    // --- Map phase: each worker shard keeps per-partition buffers --------
    const size_t num_shards = pool.num_threads();
    std::vector<std::vector<std::vector<std::pair<K, V>>>> shard_buffers(
        num_shards,
        std::vector<std::vector<std::pair<K, V>>>(num_partitions));
    const size_t per_shard =
        (inputs.size() + num_shards - 1) / std::max<size_t>(1, num_shards);
    Hasher hasher;
    for (size_t shard = 0; shard < num_shards; ++shard) {
      const size_t begin = shard * per_shard;
      const size_t end = std::min(inputs.size(), begin + per_shard);
      if (begin >= end) continue;
      pool.Submit([&, shard, begin, end] {
        auto& buffers = shard_buffers[shard];
        const EmitFn emit = [&](K key, V value) {
          const size_t partition = hasher(key) % num_partitions;
          buffers[partition].emplace_back(std::move(key), std::move(value));
        };
        for (size_t i = begin; i < end; ++i) map_fn(inputs[i], emit);
      });
    }
    pool.Wait();

    // --- Shuffle: group each partition's pairs by key ---------------------
    // Ordered maps make reduce input (and thus output) deterministic.
    std::vector<std::map<K, std::vector<V>>> partitions(num_partitions);
    ParallelFor(pool, num_partitions, [&](size_t p) {
      for (size_t shard = 0; shard < num_shards; ++shard) {
        for (auto& [key, value] : shard_buffers[shard][p]) {
          partitions[p][std::move(key)].push_back(std::move(value));
        }
      }
    });

    // --- Reduce phase ------------------------------------------------------
    std::vector<std::vector<Out>> partition_outputs(num_partitions);
    ParallelFor(pool, num_partitions, [&](size_t p) {
      partition_outputs[p].reserve(partitions[p].size());
      for (auto& [key, values] : partitions[p]) {
        partition_outputs[p].push_back(reduce_fn(key, values));
      }
    });

    std::vector<Out> outputs;
    for (auto& partition : partition_outputs) {
      for (Out& out : partition) outputs.push_back(std::move(out));
    }
    return outputs;
  }

 private:
  MapReduceOptions options_;
};

}  // namespace surveyor

#endif  // SURVEYOR_MAPREDUCE_MAPREDUCE_H_
