#ifndef SURVEYOR_MAPREDUCE_MAPREDUCE_H_
#define SURVEYOR_MAPREDUCE_MAPREDUCE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "util/fault.h"
#include "util/logging.h"
#include "util/retry.h"
#include "util/threadpool.h"

namespace surveyor {

/// Options for an in-process MapReduce execution.
struct MapReduceOptions {
  /// Worker threads for the map and reduce phases (0 = hardware).
  int num_workers = 0;
  /// Shuffle partitions; reducers run per partition. More partitions give
  /// more reduce parallelism at the cost of smaller batches.
  int num_partitions = 16;
  /// Inputs per map task. 0 = one task per worker shard (the natural
  /// grain for a healthy run). Smaller tasks narrow the blast radius of a
  /// poison input at the cost of scheduling overhead.
  size_t map_task_size = 0;
  /// Retry policy of every map and reduce task. A failed attempt is
  /// re-run from scratch: task effects are buffered per attempt and
  /// committed only on success, so retries cannot duplicate emissions.
  RetryPolicy task_retry;
  /// When true, a task that still fails after its retries is quarantined
  /// — its inputs (map) or keys (reduce) are dropped from the job and
  /// counted in MapReduceReport — matching the cluster posture where a
  /// handful of poison records must not kill a 5000-node job. Default
  /// false: exhausted retries abort (programmer error until opted in).
  bool quarantine_poison_tasks = false;
};

/// Fault-handling accounting of one MapReduce::Run call.
struct MapReduceReport {
  int64_t map_tasks = 0;
  int64_t reduce_tasks = 0;
  /// Map/reduce task attempts beyond the first.
  int64_t map_task_retries = 0;
  int64_t reduce_task_retries = 0;
  /// Tasks dropped after exhausting retries (quarantine mode only).
  int64_t quarantined_map_tasks = 0;
  /// Input records covered by quarantined map tasks.
  int64_t quarantined_map_inputs = 0;
  int64_t quarantined_reduce_tasks = 0;
  /// Shuffle keys dropped — via a quarantined reduce task or a reducer
  /// that threw on that key.
  int64_t quarantined_keys = 0;
};

/// A minimal typed MapReduce framework — the in-process stand-in for the
/// cluster framework behind the paper's deployment (Section 7.1 describes
/// the pipeline as exactly such jobs: extract over documents, group by
/// pair, group by type, then per-group model fitting).
///
/// Deterministic: outputs are ordered by (partition, key) regardless of
/// worker count or scheduling, because the shuffle groups into ordered
/// maps and reducers consume whole partitions. Task retries preserve this:
/// an attempt emits into attempt-local buffers that only the successful
/// attempt commits.
///
/// Fault model: map tasks evaluate the "mr_map_task" fault point and
/// reduce tasks "mr_reduce_task" at the start of every attempt; a firing
/// fails the attempt before any user code runs, so a retried attempt is
/// always safe. A map_fn/reduce_fn that *throws* also fails its attempt —
/// after an exception mid-task the retry re-runs user code over the same
/// records, so reducers that mutate their value vector must be idempotent
/// for retry to be sound (the built-in jobs are).
///
/// - `Input`: one map task's input record.
/// - `K`: shuffle key. Must be hashable via `Hasher` and `operator<`
///   comparable.
/// - `V`: mapped value.
/// - `Out`: one reducer output record.
template <typename Input, typename K, typename V, typename Out,
          typename Hasher = std::hash<K>>
class MapReduce {
 public:
  using EmitFn = std::function<void(K, V)>;
  /// Map: consume one input record, emit any number of (key, value) pairs.
  using MapFn = std::function<void(const Input&, const EmitFn&)>;
  /// Reduce: fold all values of one key into one output record.
  using ReduceFn = std::function<Out(const K&, std::vector<V>&)>;

  explicit MapReduce(MapReduceOptions options = {}) : options_(options) {
    SURVEYOR_CHECK_GT(options_.num_partitions, 0);
  }

  /// Runs the job over `inputs`. Map tasks run sharded across workers;
  /// emitted pairs are hash-partitioned; each partition is reduced
  /// independently (also across workers). Returns reducer outputs ordered
  /// by (partition, key). When `report` is non-null it receives the
  /// retry/quarantine accounting of this run.
  std::vector<Out> Run(const std::vector<Input>& inputs, const MapFn& map_fn,
                       const ReduceFn& reduce_fn,
                       MapReduceReport* report = nullptr) const {
    const size_t num_partitions =
        static_cast<size_t>(options_.num_partitions);
    const unsigned hardware = std::thread::hardware_concurrency();
    ThreadPool pool(options_.num_workers > 0
                        ? static_cast<size_t>(options_.num_workers)
                        : (hardware == 0 ? 4 : hardware));

    // --- Map phase: retryable tasks with attempt-local buffers -----------
    const size_t num_shards = pool.num_threads();
    const size_t task_size =
        options_.map_task_size > 0
            ? options_.map_task_size
            : (inputs.size() + num_shards - 1) / std::max<size_t>(1, num_shards);
    const size_t num_tasks =
        task_size == 0 ? 0 : (inputs.size() + task_size - 1) / task_size;
    std::vector<std::vector<std::vector<std::pair<K, V>>>> task_buffers(
        num_tasks, std::vector<std::vector<std::pair<K, V>>>(num_partitions));
    Hasher hasher;
    std::atomic<int64_t> map_retries{0};
    std::atomic<int64_t> quarantined_map_tasks{0};
    std::atomic<int64_t> quarantined_map_inputs{0};
    for (size_t task = 0; task < num_tasks; ++task) {
      const size_t begin = task * task_size;
      const size_t end = std::min(inputs.size(), begin + task_size);
      pool.Submit([&, task, begin, end] {
        auto& buffers = task_buffers[task];
        RetryResult outcome =
            RetryWithBackoff(options_.task_retry, [&]() -> Status {
              if (SURVEYOR_FAULT("mr_map_task")) {
                return Status::Internal("injected fault: mr_map_task");
              }
              for (auto& partition : buffers) partition.clear();
              const EmitFn emit = [&](K key, V value) {
                const size_t partition = hasher(key) % num_partitions;
                buffers[partition].emplace_back(std::move(key),
                                                std::move(value));
              };
              try {
                for (size_t i = begin; i < end; ++i) map_fn(inputs[i], emit);
              } catch (const std::exception& e) {
                return Status::Internal(std::string("map task threw: ") +
                                        e.what());
              } catch (...) {
                return Status::Internal("map task threw");
              }
              return Status::OK();
            });
        map_retries.fetch_add(outcome.attempts - 1);
        if (!outcome.status.ok()) {
          SURVEYOR_CHECK(options_.quarantine_poison_tasks)
              << "map task " << task << " failed after " << outcome.attempts
              << " attempts: " << outcome.status.ToString();
          for (auto& partition : buffers) partition.clear();
          quarantined_map_tasks.fetch_add(1);
          quarantined_map_inputs.fetch_add(static_cast<int64_t>(end - begin));
        }
      });
    }
    pool.Wait();

    // --- Shuffle: group each partition's pairs by key ---------------------
    // Ordered maps make reduce input (and thus output) deterministic.
    std::vector<std::map<K, std::vector<V>>> partitions(num_partitions);
    ParallelFor(pool, num_partitions, [&](size_t p) {
      for (size_t task = 0; task < num_tasks; ++task) {
        for (auto& [key, value] : task_buffers[task][p]) {
          partitions[p][std::move(key)].push_back(std::move(value));
        }
      }
    });

    // --- Reduce phase: one retryable task per partition -------------------
    std::vector<std::vector<Out>> partition_outputs(num_partitions);
    std::atomic<int64_t> reduce_retries{0};
    std::atomic<int64_t> quarantined_reduce_tasks{0};
    std::atomic<int64_t> quarantined_keys{0};
    ParallelFor(pool, num_partitions, [&](size_t p) {
      int64_t dropped_keys = 0;
      RetryResult outcome =
          RetryWithBackoff(options_.task_retry, [&]() -> Status {
            if (SURVEYOR_FAULT("mr_reduce_task")) {
              return Status::Internal("injected fault: mr_reduce_task");
            }
            partition_outputs[p].clear();
            partition_outputs[p].reserve(partitions[p].size());
            dropped_keys = 0;
            for (auto& [key, values] : partitions[p]) {
              try {
                partition_outputs[p].push_back(reduce_fn(key, values));
              } catch (const std::exception& e) {
                if (!options_.quarantine_poison_tasks) {
                  return Status::Internal(std::string("reduce threw: ") +
                                          e.what());
                }
                ++dropped_keys;
              } catch (...) {
                if (!options_.quarantine_poison_tasks) {
                  return Status::Internal("reduce threw");
                }
                ++dropped_keys;
              }
            }
            return Status::OK();
          });
      reduce_retries.fetch_add(outcome.attempts - 1);
      if (!outcome.status.ok()) {
        SURVEYOR_CHECK(options_.quarantine_poison_tasks)
            << "reduce task for partition " << p << " failed after "
            << outcome.attempts
            << " attempts: " << outcome.status.ToString();
        partition_outputs[p].clear();
        quarantined_reduce_tasks.fetch_add(1);
        quarantined_keys.fetch_add(
            static_cast<int64_t>(partitions[p].size()));
      } else {
        quarantined_keys.fetch_add(dropped_keys);
      }
    });

    if (report != nullptr) {
      report->map_tasks = static_cast<int64_t>(num_tasks);
      report->reduce_tasks = static_cast<int64_t>(num_partitions);
      report->map_task_retries = map_retries.load();
      report->reduce_task_retries = reduce_retries.load();
      report->quarantined_map_tasks = quarantined_map_tasks.load();
      report->quarantined_map_inputs = quarantined_map_inputs.load();
      report->quarantined_reduce_tasks = quarantined_reduce_tasks.load();
      report->quarantined_keys = quarantined_keys.load();
    }

    std::vector<Out> outputs;
    for (auto& partition : partition_outputs) {
      for (Out& out : partition) outputs.push_back(std::move(out));
    }
    return outputs;
  }

 private:
  MapReduceOptions options_;
};

}  // namespace surveyor

#endif  // SURVEYOR_MAPREDUCE_MAPREDUCE_H_
