#include "util/symbolize.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <cxxabi.h>
#include <dlfcn.h>
#define SURVEYOR_HAVE_DLADDR 1
#endif

namespace surveyor {

namespace {

std::string HexAddress(const void* pc) {
  char buffer[2 + 2 * sizeof(void*) + 1];
  std::snprintf(buffer, sizeof(buffer), "0x%llx",
                static_cast<unsigned long long>(
                    reinterpret_cast<uintptr_t>(pc)));
  return buffer;
}

}  // namespace

#ifdef SURVEYOR_HAVE_DLADDR

std::string SymbolizePc(const void* pc) {
  Dl_info info{};
  if (dladdr(pc, &info) == 0 || info.dli_sname == nullptr) {
    return HexAddress(pc);
  }
  int demangle_status = 0;
  char* demangled =
      abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &demangle_status);
  if (demangle_status != 0 || demangled == nullptr) {
    std::free(demangled);
    return info.dli_sname;
  }
  std::string name(demangled);
  std::free(demangled);
  return name;
}

#else  // !SURVEYOR_HAVE_DLADDR

std::string SymbolizePc(const void* pc) { return HexAddress(pc); }

#endif  // SURVEYOR_HAVE_DLADDR

}  // namespace surveyor
