#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace surveyor {

double LogFactorial(int64_t k) {
  SURVEYOR_CHECK_GE(k, 0);
  return std::lgamma(static_cast<double>(k) + 1.0);
}

double SafeLog(double x) {
  return std::log(std::max(x, kMinPoissonRate));
}

double PoissonLogPmf(int64_t k, double lambda) {
  SURVEYOR_CHECK_GE(k, 0);
  const double rate = std::max(lambda, kMinPoissonRate);
  return static_cast<double>(k) * std::log(rate) - rate - LogFactorial(k);
}

double PoissonPmf(int64_t k, double lambda) {
  return std::exp(PoissonLogPmf(k, lambda));
}

double LogSumExp(double a, double b) {
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  if (std::isinf(hi) && hi < 0) return hi;  // both -inf
  return hi + std::log1p(std::exp(lo - hi));
}

double Sigmoid(double x) {
  if (x >= 0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - mean) * (v - mean);
  return sum / static_cast<double>(values.size());
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  SURVEYOR_CHECK_GE(q, 0.0);
  SURVEYOR_CHECK_LE(q, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = q / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

namespace {

// Average ranks with tie handling.
std::vector<double> Ranks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  SURVEYOR_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  SURVEYOR_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

}  // namespace surveyor
