#ifndef SURVEYOR_UTIL_STATUSOR_H_
#define SURVEYOR_UTIL_STATUSOR_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace surveyor {

/// `StatusOr<T>` holds either a value of type `T` or an error `Status`.
/// Accessing the value of an error-holding `StatusOr` is a programmer error
/// and aborts the process (matching the no-exceptions policy).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    SURVEYOR_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  /// Constructs from a value.
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this holds an error.
  const T& value() const& {
    SURVEYOR_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SURVEYOR_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SURVEYOR_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a `StatusOr<T>`), returns its status on error, and
/// otherwise move-assigns the value into `lhs`.
#define SURVEYOR_ASSIGN_OR_RETURN(lhs, rexpr)              \
  SURVEYOR_ASSIGN_OR_RETURN_IMPL_(                         \
      SURVEYOR_STATUS_MACROS_CONCAT_(_status_or, __LINE__), lhs, rexpr)

#define SURVEYOR_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define SURVEYOR_STATUS_MACROS_CONCAT_(x, y) \
  SURVEYOR_STATUS_MACROS_CONCAT_INNER_(x, y)

#define SURVEYOR_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                    \
  if (!statusor.ok()) return statusor.status();               \
  lhs = std::move(statusor).value()

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_STATUSOR_H_
