#ifndef SURVEYOR_UTIL_CRC32_H_
#define SURVEYOR_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace surveyor {

/// CRC-32 (IEEE 802.3, the zlib polynomial 0xEDB88320), the checksum the
/// opinion snapshot format uses to detect bit rot and truncation per
/// section. Table-driven, byte at a time: ~1 GB/s, plenty for snapshot
/// load-time validation.
///
/// `Crc32(data)` checksums one buffer. For incremental use, seed with
/// `kCrc32Init`, feed chunks through `Crc32Update`, and finalize with
/// `Crc32Finalize` (the one-shot form composes exactly these).
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;

/// Folds `data` into a running checksum started from kCrc32Init.
uint32_t Crc32Update(uint32_t state, std::string_view data);

/// Final xor; after this the value matches zlib's crc32().
inline uint32_t Crc32Finalize(uint32_t state) { return state ^ 0xFFFFFFFFu; }

/// One-shot checksum of `data`.
inline uint32_t Crc32(std::string_view data) {
  return Crc32Finalize(Crc32Update(kCrc32Init, data));
}

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_CRC32_H_
