#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace surveyor {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

Rng Rng::Split() { return Rng(Next()); }

double Rng::Uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  SURVEYOR_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SURVEYOR_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Normal() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

int64_t Rng::Poisson(double mean) {
  SURVEYOR_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = Uniform();
    int64_t count = 0;
    while (product > limit) {
      ++count;
      product *= Uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // simulator's large-mean draws and keeps generation O(1).
  double draw = std::round(Normal(mean, std::sqrt(mean)));
  if (draw < 0.0) draw = 0.0;
  return static_cast<int64_t>(draw);
}

int64_t Rng::Binomial(int64_t n, double p) {
  SURVEYOR_CHECK_GE(n, 0);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double mean = static_cast<double>(n) * p;
  if (n <= 64) {
    int64_t successes = 0;
    for (int64_t i = 0; i < n; ++i) successes += Bernoulli(p) ? 1 : 0;
    return successes;
  }
  if (mean < 30.0) {
    // Rare-event regime: Poisson approximation, truncated at n.
    int64_t draw = Poisson(mean);
    return draw > n ? n : draw;
  }
  const double variance = mean * (1.0 - p);
  double draw = std::round(Normal(mean, std::sqrt(variance)));
  if (draw < 0.0) draw = 0.0;
  if (draw > static_cast<double>(n)) draw = static_cast<double>(n);
  return static_cast<int64_t>(draw);
}

uint64_t Rng::Zipf(uint64_t n, double exponent) {
  SURVEYOR_CHECK_GT(n, 0u);
  // Inverse-CDF sampling over the truncated harmonic weights via
  // rejection against the continuous envelope (Devroye).
  if (n == 1) return 0;
  const double s = exponent;
  for (;;) {
    const double u = Uniform();
    double x;
    if (std::abs(s - 1.0) < 1e-9) {
      x = std::pow(static_cast<double>(n), u);
    } else {
      const double t = std::pow(static_cast<double>(n), 1.0 - s);
      x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    const uint64_t rank = static_cast<uint64_t>(x);
    if (rank >= 1 && rank <= n) {
      // Accept with probability proportional to the discrete/continuous
      // density ratio; a cheap approximation accepting the floor is fine
      // for workload generation purposes.
      return rank - 1;
    }
  }
}

}  // namespace surveyor
