#ifndef SURVEYOR_UTIL_SYMBOLIZE_H_
#define SURVEYOR_UTIL_SYMBOLIZE_H_

#include <functional>
#include <string>

namespace surveyor {

/// Maps a code address to a human-readable frame name: the demangled
/// function symbol when dladdr can resolve one (executables link with
/// -rdynamic so their own symbols are visible), otherwise a stable
/// "0x<hex>" fallback. NOT async-signal-safe — call it during aggregation,
/// never from the sampling handler.
std::string SymbolizePc(const void* pc);

/// Injectable symbolizer so folded-stack aggregation can be tested with a
/// deterministic fake (real addresses differ between runs and builds).
using SymbolizeFn = std::function<std::string(const void*)>;

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_SYMBOLIZE_H_
