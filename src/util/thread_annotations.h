#ifndef SURVEYOR_UTIL_THREAD_ANNOTATIONS_H_
#define SURVEYOR_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (-Wthread-safety). On Clang
/// these expand to the capability attributes the analysis consumes; on
/// every other compiler they expand to nothing, so annotated code stays
/// portable. Build with -DSURVEYOR_THREAD_SAFETY=ON (Clang only) to turn
/// the analysis into hard errors; see DESIGN.md §8 for the conventions.
///
/// The vocabulary (mirroring the Clang documentation and Abseil):
///   SURVEYOR_CAPABILITY(name)     a class is a lockable capability
///   SURVEYOR_SCOPED_CAPABILITY    a class is an RAII lock holder
///   SURVEYOR_GUARDED_BY(mu)      data member readable/writable only
///                                while holding mu
///   SURVEYOR_PT_GUARDED_BY(mu)   the pointee is guarded by mu
///   SURVEYOR_REQUIRES(mu)        function must be called with mu held
///   SURVEYOR_ACQUIRE(mu...)      function acquires mu and does not
///                                release it
///   SURVEYOR_RELEASE(mu...)      function releases mu
///   SURVEYOR_TRY_ACQUIRE(b, mu)  function acquires mu iff it returns b
///   SURVEYOR_EXCLUDES(mu...)     caller must NOT hold mu (non-reentrant
///                                public entry points)
///   SURVEYOR_ASSERT_CAPABILITY(mu)  runtime assertion that mu is held
///   SURVEYOR_RETURN_CAPABILITY(mu)  function returns a reference to mu
///   SURVEYOR_NO_THREAD_SAFETY_ANALYSIS  opt a function out entirely

#if defined(__clang__) && defined(__has_attribute)
#define SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op off Clang
#endif

#define SURVEYOR_CAPABILITY(x) \
  SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

#define SURVEYOR_SCOPED_CAPABILITY \
  SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

#define SURVEYOR_GUARDED_BY(x) \
  SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define SURVEYOR_PT_GUARDED_BY(x) \
  SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

#define SURVEYOR_REQUIRES(...) \
  SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define SURVEYOR_ACQUIRE(...) \
  SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define SURVEYOR_RELEASE(...) \
  SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define SURVEYOR_TRY_ACQUIRE(...) \
  SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

#define SURVEYOR_EXCLUDES(...) \
  SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define SURVEYOR_ASSERT_CAPABILITY(x) \
  SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

#define SURVEYOR_RETURN_CAPABILITY(x) \
  SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

#define SURVEYOR_NO_THREAD_SAFETY_ANALYSIS \
  SURVEYOR_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // SURVEYOR_UTIL_THREAD_ANNOTATIONS_H_
