#ifndef SURVEYOR_UTIL_PROFILE_TAG_H_
#define SURVEYOR_UTIL_PROFILE_TAG_H_

// Thread-local profile tag: names the pipeline phase a thread is executing
// ("tokenize", "match", "extract", "em", "query", ...) so the sampling
// profiler (src/obs/profiler.h) can attribute CPU samples to phases even
// when symbolization fails or frames are inlined away. Lives in util — the
// lowest layer — so text/extraction/model/serving can tag their hot loops
// without depending on obs (DESIGN.md §8, §12).
//
// Cost model: a ProfileScope is two thread-local pointer writes (save +
// install) and one on destruction; reading the tag is one TLS load. No
// atomics, no branches — cheap enough for per-sentence inner loops, proven
// <1% of the extraction hot path in bench/micro_benchmarks.cc.

namespace surveyor {

/// The innermost active tag of the calling thread, nullptr outside any
/// ProfileScope. Async-signal-safe: a plain load of an initial-exec TLS
/// slot, safe to call from the SIGPROF handler sampling this thread.
const char* CurrentProfileTag();

/// RAII phase tag. `tag` must point at static-storage memory (a string
/// literal): the profiler's signal handler stores the raw pointer and
/// symbolizes it long after the scope died. Scopes nest; the destructor
/// restores the enclosing tag.
class ProfileScope {
 public:
  explicit ProfileScope(const char* tag);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  const char* previous_;
};

}  // namespace surveyor

#define SURVEYOR_PROFILE_CONCAT_INNER(a, b) a##b
#define SURVEYOR_PROFILE_CONCAT(a, b) SURVEYOR_PROFILE_CONCAT_INNER(a, b)

/// Tags the rest of the enclosing block: SURVEYOR_PROFILE_SCOPE("extract").
#define SURVEYOR_PROFILE_SCOPE(tag)                                     \
  ::surveyor::ProfileScope SURVEYOR_PROFILE_CONCAT(profile_scope_line_, \
                                                   __LINE__)(tag)

#endif  // SURVEYOR_UTIL_PROFILE_TAG_H_
