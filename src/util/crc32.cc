#include "util/crc32.h"

#include <array>

namespace surveyor {

namespace {

/// The byte-indexed remainder table for polynomial 0xEDB88320, computed
/// once at static-init time (constexpr, so actually at compile time).
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t byte = 0; byte < 256; ++byte) {
    uint32_t remainder = byte;
    for (int bit = 0; bit < 8; ++bit) {
      remainder = (remainder >> 1) ^ ((remainder & 1u) ? 0xEDB88320u : 0u);
    }
    table[byte] = remainder;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32Update(uint32_t state, std::string_view data) {
  for (const char c : data) {
    state = (state >> 8) ^ kTable[(state ^ static_cast<uint8_t>(c)) & 0xFFu];
  }
  return state;
}

}  // namespace surveyor
