#include "util/profile_tag.h"

namespace surveyor {
namespace {

// initial-exec TLS: the access compiles to a direct %fs-relative load with
// no lazy-allocation path, which keeps CurrentProfileTag() async-signal-
// safe (the general-dynamic model may call __tls_get_addr, which can
// malloc on first touch — from a signal handler that is a deadlock).
#if defined(__ELF__) && (defined(__GNUC__) || defined(__clang__))
thread_local const char* tls_profile_tag
    __attribute__((tls_model("initial-exec"))) = nullptr;
#else
thread_local const char* tls_profile_tag = nullptr;
#endif

}  // namespace

const char* CurrentProfileTag() { return tls_profile_tag; }

ProfileScope::ProfileScope(const char* tag) : previous_(tls_profile_tag) {
  tls_profile_tag = tag;
}

ProfileScope::~ProfileScope() { tls_profile_tag = previous_; }

}  // namespace surveyor
