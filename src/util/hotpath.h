#ifndef SURVEYOR_UTIL_HOTPATH_H_
#define SURVEYOR_UTIL_HOTPATH_H_

// Hot-path annotations for tools/check_hotpath (DESIGN.md §13).
//
// The per-sentence pipeline (tokenize → match → parse → extract) and the
// serving lookup path run millions of times per mining run; BENCH_profile
// attributes ~90% of CPU samples to them. These annotations make their
// performance hygiene a statically checked invariant: code inside an
// annotated hot region may not allocate, copy std::strings, take locks,
// or do I/O unless each occurrence is explicitly justified.
//
// Two annotation forms, both recognized purely lexically:
//
//   SURVEYOR_HOT_FUNCTION          marker on a function definition or
//                                  declaration; the region spans the
//                                  signature and (if present) the body.
//   // SURVEYOR_HOT_BEGIN          comment pair delimiting an arbitrary
//   // SURVEYOR_HOT_END            hot region (regions may nest).
//
// Individual findings are suppressed with a justifying comment:
//
//   // NOLINT_HOTPATH(rule)        same line, or
//   // NOLINTNEXTLINE_HOTPATH(rule)
//
// and pre-existing findings live in tools/check_hotpath_baseline.json
// until paid down. The macro expands to nothing so annotating a function
// can never perturb codegen.
#define SURVEYOR_HOT_FUNCTION

#endif  // SURVEYOR_UTIL_HOTPATH_H_
