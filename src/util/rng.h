#ifndef SURVEYOR_UTIL_RNG_H_
#define SURVEYOR_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace surveyor {

/// Deterministic, splittable pseudo-random number generator
/// (xoshiro256** seeded through SplitMix64). Every stochastic component of
/// the corpus simulator and the evaluation harness draws from an `Rng`
/// so runs are exactly reproducible given a seed.
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 42);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a generator with an independent stream derived from this one.
  /// Used to give each shard/worker its own deterministic stream.
  Rng Split();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Poisson draw with the given mean. Uses inversion for small means and
  /// the PTRS transformed-rejection method for large means.
  int64_t Poisson(double mean);

  /// Binomial draw: number of successes in n Bernoulli(p) trials.
  /// Uses a Poisson/normal approximation for large n to stay O(1).
  int64_t Binomial(int64_t n, double p);

  /// Zipf-like rank draw in [0, n): probability of rank r proportional to
  /// 1 / (r + 1)^exponent. Requires n > 0.
  uint64_t Zipf(uint64_t n, double exponent);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element index for a non-empty container size.
  size_t Index(size_t size) { return static_cast<size_t>(UniformInt(static_cast<uint64_t>(size))); }

 private:
  uint64_t state_[4];
};

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_RNG_H_
