#include "util/logging.h"

#include <atomic>

namespace surveyor {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kWarning};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity.load(); }

LogSeverity SetMinLogSeverity(LogSeverity severity) {
  return g_min_severity.exchange(severity);
}

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << SeverityTag(severity) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace surveyor
