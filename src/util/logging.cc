#include "util/logging.h"

#include <atomic>

namespace surveyor {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kWarning};
std::atomic<LogTee> g_tee{nullptr};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity.load(); }

LogSeverity SetMinLogSeverity(LogSeverity severity) {
  return g_min_severity.exchange(severity);
}

LogTee SetLogTee(LogTee tee) { return g_tee.exchange(tee); }

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << SeverityTag(severity) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const std::string line = stream_.str();
  if (const LogTee tee = g_tee.load()) {
    tee(severity_, line);
  }
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::cerr << line << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace surveyor
