#ifndef SURVEYOR_UTIL_TABLE_H_
#define SURVEYOR_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace surveyor {

/// Plain-text table printer used by the benchmark harness to render the
/// paper's tables and figure series as aligned rows on stdout.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must match the header count.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 3);

  /// Renders the table with aligned columns.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_TABLE_H_
