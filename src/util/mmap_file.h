#ifndef SURVEYOR_UTIL_MMAP_FILE_H_
#define SURVEYOR_UTIL_MMAP_FILE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace surveyor {

/// Read-only memory-mapped file, the zero-copy substrate of the opinion
/// snapshot reader: the kernel pages data in on demand and evicts it under
/// memory pressure, so a serving process can hold an index far larger than
/// its RSS — the laptop-scale version of the "serve heavy traffic" story.
///
/// On platforms without mmap (and for empty files, which mmap rejects)
/// Open falls back to reading the file into an owned buffer; callers see
/// the same string_view either way.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { Close(); }

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. NotFound when the file cannot be opened,
  /// Internal on a map failure.
  Status Open(const std::string& path);

  /// Unmaps; idempotent. data() is invalid afterwards.
  void Close();

  bool is_open() const { return data_ != nullptr || fallback_open_; }

  /// The mapped bytes; views into it stay valid until Close().
  std::string_view data() const {
    return data_ != nullptr ? std::string_view(data_, size_)
                            : std::string_view(buffer_);
  }

  size_t size() const { return data_ != nullptr ? size_ : buffer_.size(); }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  /// Fallback storage when mmap is unavailable or the file is empty.
  std::string buffer_;
  bool fallback_open_ = false;
};

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_MMAP_FILE_H_
