#ifndef SURVEYOR_UTIL_MUTEX_H_
#define SURVEYOR_UTIL_MUTEX_H_

#include <mutex>

#include "util/thread_annotations.h"

namespace surveyor {

/// std::mutex wrapper that carries the Clang thread-safety `capability`
/// annotation. libstdc++'s std::mutex is unannotated, so GUARDED_BY
/// declarations against it are invisible to -Wthread-safety; every
/// mutex-protected member in this codebase is guarded by one of these
/// instead (DESIGN.md §8).
///
/// The lower-case lock()/unlock() aliases satisfy BasicLockable so a
/// std::condition_variable_any can wait on a Mutex directly; prefer the
/// capitalized names (or MutexLock) in ordinary code.
class SURVEYOR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SURVEYOR_ACQUIRE() { mu_.lock(); }
  void Unlock() SURVEYOR_RELEASE() { mu_.unlock(); }
  bool TryLock() SURVEYOR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable interface for std::condition_variable_any.
  void lock() SURVEYOR_ACQUIRE() { mu_.lock(); }
  void unlock() SURVEYOR_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over a Mutex, the annotated analogue of std::lock_guard.
/// Scoped-capability tracking lets -Wthread-safety prove GUARDED_BY
/// accesses inside the scope.
class SURVEYOR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SURVEYOR_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SURVEYOR_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_MUTEX_H_
