#include "util/mmap_file.h"

#include <cerrno>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define SURVEYOR_HAVE_MMAP 1
#endif

namespace surveyor {

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    buffer_ = std::move(other.buffer_);
    other.buffer_.clear();
    fallback_open_ = std::exchange(other.fallback_open_, false);
  }
  return *this;
}

#ifdef SURVEYOR_HAVE_MMAP

Status MmapFile::Open(const std::string& path) {
  Close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::system_category().message(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string error = std::system_category().message(errno);
    ::close(fd);
    return Status::Internal("fstat('" + path + "'): " + error);
  }
  if (st.st_size == 0) {
    // mmap rejects zero-length mappings; an empty file is simply empty.
    ::close(fd);
    fallback_open_ = true;
    return Status::OK();
  }
  void* mapped = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
  // The mapping survives the descriptor; close either way.
  const std::string error = std::system_category().message(errno);
  ::close(fd);
  if (mapped == MAP_FAILED) {
    return Status::Internal("mmap('" + path + "'): " + error);
  }
  data_ = static_cast<const char*>(mapped);
  size_ = static_cast<size_t>(st.st_size);
  return Status::OK();
}

void MmapFile::Close() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
  buffer_.clear();
  fallback_open_ = false;
}

#else  // !SURVEYOR_HAVE_MMAP

Status MmapFile::Open(const std::string& path) {
  Close();
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) return Status::Internal("read failure on '" + path + "'");
  buffer_ = std::move(contents).str();
  fallback_open_ = true;
  return Status::OK();
}

void MmapFile::Close() {
  buffer_.clear();
  fallback_open_ = false;
}

#endif  // SURVEYOR_HAVE_MMAP

}  // namespace surveyor
