#ifndef SURVEYOR_UTIL_RETRY_H_
#define SURVEYOR_UTIL_RETRY_H_

#include <cstdint>
#include <functional>

#include "util/rng.h"
#include "util/status.h"

namespace surveyor {

/// Bounded-retry policy with exponential backoff and deterministic jitter.
/// Defaults suit in-process transient faults (injected task failures,
/// short I/O hiccups): up to 5 attempts, 0.5 ms initial backoff doubling
/// to a 50 ms cap, ±25% jitter drawn from a seeded `Rng` so retry timing
/// is reproducible. A zero deadline means no deadline.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 5;
  /// Backoff before the first retry.
  double initial_backoff_seconds = 0.0005;
  /// Multiplier applied per further retry.
  double backoff_multiplier = 2.0;
  /// Upper clamp on a single backoff, before jitter.
  double max_backoff_seconds = 0.05;
  /// Each backoff is scaled by Uniform(1 - j, 1 + j).
  double jitter_fraction = 0.25;
  /// Wall-clock budget across all attempts and backoffs; once exceeded no
  /// further retry starts. 0 disables the deadline.
  double total_deadline_seconds = 0.0;
  /// Seed of the jitter stream.
  uint64_t jitter_seed = 42;
};

/// The backoff before retry `retry_index` (1-based): initial * mult^(i-1),
/// clamped to the max, scaled by the jitter factor drawn from `rng`.
double BackoffSeconds(const RetryPolicy& policy, int retry_index, Rng& rng);

/// Outcome of RetryWithBackoff: the final status plus accounting.
struct RetryResult {
  Status status;
  /// Attempts actually made (>= 1 whenever max_attempts >= 1).
  int attempts = 0;
  /// Total time slept in backoffs.
  double backoff_seconds = 0.0;
};

/// Runs `attempt` until it succeeds, retries are exhausted, the failure is
/// not retryable, or the deadline expires; sleeps the policy backoff
/// between attempts. `retryable` decides which non-OK statuses are worth
/// retrying; by default only kInternal (the code used for injected faults
/// and unexpected I/O errors) — kInvalidArgument-style failures are
/// deterministic and retrying them would only hide bugs.
[[nodiscard]] RetryResult RetryWithBackoff(
    const RetryPolicy& policy, const std::function<Status()>& attempt,
    const std::function<bool(const Status&)>& retryable = nullptr);

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_RETRY_H_
