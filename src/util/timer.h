#ifndef SURVEYOR_UTIL_TIMER_H_
#define SURVEYOR_UTIL_TIMER_H_

#include <chrono>

namespace surveyor {

/// Wall-clock stopwatch for stage timing in the pipeline and benches.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_TIMER_H_
