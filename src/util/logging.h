#ifndef SURVEYOR_UTIL_LOGGING_H_
#define SURVEYOR_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace surveyor {

/// Log severity levels.
enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Returns the minimum severity that is actually emitted. Messages below
/// the threshold are swallowed (FATAL always aborts regardless).
LogSeverity MinLogSeverity();

/// Sets the minimum emitted severity; returns the previous value. Used by
/// tests and benchmarks to silence INFO chatter.
LogSeverity SetMinLogSeverity(LogSeverity severity);

/// Observer of every composed log message, called *before* the
/// min-severity filter (so INFO lines reach the observability layer even
/// when stderr stays quiet) and before a FATAL message aborts. Must be
/// safe to call from any thread and must not log itself. src/util cannot
/// depend on src/obs, so the obs log ring installs itself through this
/// hook (obs::LogRing::InstallGlobalTee).
using LogTee = void (*)(LogSeverity severity, std::string_view line);

/// Atomically installs `tee` (nullptr uninstalls); returns the previous
/// tee. The tee does not change stderr emission in any way.
LogTee SetLogTee(LogTee tee);

namespace internal {

/// Stream-style log message collector. Emits on destruction; aborts the
/// process for FATAL severity.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Swallows a log stream in the disabled branch of conditional logging
/// macros; keeps the `<<` expression well-formed without evaluating it
/// into any output.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace surveyor

#define SURVEYOR_LOG(severity)                                        \
  ::surveyor::internal::LogMessage(::surveyor::LogSeverity::k##severity, \
                                   __FILE__, __LINE__)                \
      .stream()

/// Aborts with a message when `condition` is false. For programmer errors
/// (invariant violations), not for recoverable failures.
#define SURVEYOR_CHECK(condition)                              \
  (condition) ? (void)0                                        \
              : ::surveyor::internal::LogMessageVoidify() &    \
                    SURVEYOR_LOG(Fatal) << "Check failed: " #condition " "

#define SURVEYOR_CHECK_OK(expr)                                       \
  do {                                                                \
    const ::surveyor::Status _s = (expr);                             \
    SURVEYOR_CHECK(_s.ok()) << _s.ToString();                         \
  } while (0)

#define SURVEYOR_CHECK_EQ(a, b) SURVEYOR_CHECK((a) == (b))
#define SURVEYOR_CHECK_NE(a, b) SURVEYOR_CHECK((a) != (b))
#define SURVEYOR_CHECK_LT(a, b) SURVEYOR_CHECK((a) < (b))
#define SURVEYOR_CHECK_LE(a, b) SURVEYOR_CHECK((a) <= (b))
#define SURVEYOR_CHECK_GT(a, b) SURVEYOR_CHECK((a) > (b))
#define SURVEYOR_CHECK_GE(a, b) SURVEYOR_CHECK((a) >= (b))

#endif  // SURVEYOR_UTIL_LOGGING_H_
