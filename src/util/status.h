#ifndef SURVEYOR_UTIL_STATUS_H_
#define SURVEYOR_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace surveyor {

/// Canonical error codes, modeled after the Google/RocksDB conventions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "INVALID_ARGUMENT", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A `Status` carries the outcome of an operation: either success (`OK`) or
/// an error code with a message. The library does not throw exceptions
/// across public API boundaries; recoverable failures are reported through
/// `Status` / `StatusOr<T>`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates an error status from the current function.
#define SURVEYOR_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::surveyor::Status _status = (expr);                \
    if (!_status.ok()) return _status;                  \
  } while (0)

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_STATUS_H_
