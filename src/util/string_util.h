#ifndef SURVEYOR_UTIL_STRING_UTIL_H_
#define SURVEYOR_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace surveyor {

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits `text` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// Strips leading and trailing ASCII whitespace.
std::string Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_STRING_UTIL_H_
