#include "util/fault.h"

#include <cstdlib>
#include <string>

#include "util/string_util.h"

namespace surveyor {
namespace {

/// Parses a non-negative integer; false on empty/overflow/garbage.
bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  int64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (INT64_MAX - (c - '0')) / 10) return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

bool ParseProbability(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;
  *out = value;
  return true;
}

}  // namespace

FaultInjector::FaultInjector() {
  const char* spec = std::getenv("SURVEYOR_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return;
  uint64_t seed = 42;
  if (const char* seed_env = std::getenv("SURVEYOR_FAULT_SEED")) {
    int64_t parsed = 0;
    if (ParseInt64(seed_env, &parsed)) seed = static_cast<uint64_t>(parsed);
  }
  // A malformed env spec leaves the process disarmed rather than aborting:
  // chaos configuration must never take down a clean run.
  (void)Configure(spec, seed);
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

Status FaultInjector::Parse(std::string_view spec,
                            std::map<std::string, Point, std::less<>>* points) {
  points->clear();
  for (const std::string& raw : Split(spec, ',')) {
    std::string entry = Trim(raw);
    if (entry.empty()) continue;
    size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' is not name:probability or name:@N");
    }
    std::string name = Trim(std::string_view(entry).substr(0, colon));
    std::string trigger = Trim(std::string_view(entry).substr(colon + 1));
    Point point;
    if (!trigger.empty() && trigger[0] == '@') {
      if (!ParseInt64(std::string_view(trigger).substr(1), &point.nth_hit) ||
          point.nth_hit <= 0) {
        return Status::InvalidArgument("fault spec entry '" + entry +
                                       "' needs a positive hit index after @");
      }
    } else if (!ParseProbability(trigger, &point.probability)) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' needs a probability in [0,1] or @N");
    }
    if (points->count(name) > 0) {
      return Status::InvalidArgument("fault point '" + name +
                                     "' configured twice");
    }
    (*points)[name] = point;
  }
  return Status::OK();
}

Status FaultInjector::ValidateSpec(std::string_view spec) {
  std::map<std::string, Point, std::less<>> points;
  return Parse(spec, &points);
}

Status FaultInjector::Configure(std::string_view spec, uint64_t seed) {
  std::map<std::string, Point, std::less<>> points;
  SURVEYOR_RETURN_IF_ERROR(Parse(spec, &points));
  MutexLock lock(mutex_);
  points_ = std::move(points);
  rng_ = Rng(seed);
  spec_ = std::string(spec);
  seed_ = seed;
  armed_.store(!points_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Disarm() { (void)Configure("", 42); }

bool FaultInjector::ShouldFail(std::string_view point) {
  MutexLock lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  Point& p = it->second;
  ++p.stats.evaluations;
  bool fire = false;
  if (p.nth_hit > 0) {
    fire = p.stats.evaluations == p.nth_hit;
  } else {
    fire = rng_.Bernoulli(p.probability);
  }
  if (fire) {
    ++p.stats.injected;
    total_injected_.fetch_add(1);
  }
  return fire;
}

std::string FaultInjector::spec() const {
  MutexLock lock(mutex_);
  return spec_;
}

uint64_t FaultInjector::seed() const {
  MutexLock lock(mutex_);
  return seed_;
}

std::vector<std::pair<std::string, FaultPointStats>> FaultInjector::Stats()
    const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, FaultPointStats>> out;
  out.reserve(points_.size());
  for (const auto& [name, point] : points_) out.emplace_back(name, point.stats);
  return out;
}

FaultPointStats FaultInjector::StatsFor(std::string_view point) const {
  MutexLock lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end()) return FaultPointStats{};
  return it->second.stats;
}

ScopedFaults::ScopedFaults(std::string_view spec, uint64_t seed) {
  FaultInjector& injector = FaultInjector::Global();
  previous_spec_ = injector.spec();
  previous_seed_ = injector.seed();
  (void)injector.Configure(spec, seed);
}

ScopedFaults::~ScopedFaults() {
  (void)FaultInjector::Global().Configure(previous_spec_, previous_seed_);
}

}  // namespace surveyor
