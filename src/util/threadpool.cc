#include "util/threadpool.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace surveyor {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    SURVEYOR_CHECK(!shutting_down_);
    queue_.push(std::move(task));
    ++in_flight_;
    ++tasks_submitted_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  // Explicit predicate loop (not the lambda overload): thread-safety
  // analysis treats lambda bodies as separate functions that do not hold
  // mutex_, so guarded reads belong in this scope.
  while (in_flight_ != 0) work_done_.wait(mutex_);
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

ThreadPoolStats ThreadPool::stats() const {
  MutexLock lock(mutex_);
  ThreadPoolStats stats;
  stats.tasks_submitted = tasks_submitted_;
  stats.tasks_completed = tasks_completed_;
  stats.queue_depth = queue_.size();
  stats.idle_seconds = idle_seconds_;
  return stats;
}

void ThreadPool::WorkerLoop() {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      const Clock::time_point wait_start = Clock::now();
      while (!shutting_down_ && queue_.empty()) work_available_.wait(mutex_);
      // The wait returns holding the lock, so this accumulation is safe.
      idle_seconds_ +=
          std::chrono::duration<double>(Clock::now() - wait_start).count();
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      ++tasks_completed_;
      if (in_flight_ == 0) work_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  const size_t num_chunks = std::min(count, pool.num_threads() * 4);
  const size_t chunk = (count + num_chunks - 1) / num_chunks;
  for (size_t start = 0; start < count; start += chunk) {
    const size_t end = std::min(start + chunk, count);
    pool.Submit([start, end, &fn] {
      for (size_t i = start; i < end; ++i) fn(i);
    });
  }
  pool.Wait();
}

}  // namespace surveyor
