#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace surveyor {

double BackoffSeconds(const RetryPolicy& policy, int retry_index, Rng& rng) {
  if (retry_index < 1) return 0.0;
  double base = policy.initial_backoff_seconds;
  for (int i = 1; i < retry_index && base < policy.max_backoff_seconds; ++i) {
    base *= policy.backoff_multiplier;
  }
  base = std::min(base, policy.max_backoff_seconds);
  double jitter = std::clamp(policy.jitter_fraction, 0.0, 1.0);
  return base * rng.Uniform(1.0 - jitter, 1.0 + jitter);
}

RetryResult RetryWithBackoff(
    const RetryPolicy& policy, const std::function<Status()>& attempt,
    const std::function<bool(const Status&)>& retryable) {
  RetryResult result;
  if (policy.max_attempts < 1) {
    result.status =
        Status::InvalidArgument("RetryPolicy.max_attempts must be >= 1");
    return result;
  }
  Rng rng(policy.jitter_seed);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 1; i <= policy.max_attempts; ++i) {
    ++result.attempts;
    result.status = attempt();
    if (result.status.ok()) return result;
    bool should_retry = retryable ? retryable(result.status)
                                  : result.status.code() == StatusCode::kInternal;
    if (!should_retry || i == policy.max_attempts) return result;
    if (policy.total_deadline_seconds > 0.0) {
      double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed >= policy.total_deadline_seconds) return result;
    }
    double backoff = BackoffSeconds(policy, i, rng);
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      result.backoff_seconds += backoff;
    }
  }
  return result;
}

}  // namespace surveyor
