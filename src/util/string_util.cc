#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace surveyor {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) parts.emplace_back(text.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::string ToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return result;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(result.data(), result.size(), format, args_copy);
    result.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return result;
}

}  // namespace surveyor
