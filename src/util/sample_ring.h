#ifndef SURVEYOR_UTIL_SAMPLE_RING_H_
#define SURVEYOR_UTIL_SAMPLE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace surveyor {

/// One raw CPU sample captured inside a signal handler: a stack of program
/// counters plus the attribution context read at sample time. Symbolization
/// happens later, outside the handler (util/symbolize.h).
struct StackSample {
  static constexpr int kMaxFrames = 64;

  /// Program counters, innermost (leaf) first, as backtrace() returns them.
  void* frames[kMaxFrames] = {};
  int32_t depth = 0;
  /// Innermost ProfileScope tag of the sampled thread (static-storage
  /// string or nullptr) — see util/profile_tag.h.
  const char* tag = nullptr;
  /// Opaque pipeline-stage id at sample time (obs::PipelineStage as int),
  /// -1 when no stage tracker was attached.
  int32_t stage = -1;
};

/// Bounded, preallocated, lock-free sample buffer writable from a signal
/// handler. Writers claim a slot with one fetch_add and publish it with a
/// release store on the slot's committed flag; once every slot is claimed
/// further appends are counted as dropped rather than blocking or
/// reallocating. Not a circular buffer on purpose: a profile window wants
/// the first N samples plus an honest drop count, not silent overwrites of
/// earlier samples (DESIGN.md §12).
///
/// Thread safety: TryAppend is safe from any number of threads and signal
/// handlers concurrently. Snapshot/size/dropped are safe concurrently with
/// writers (they only observe committed slots). Reset must be externally
/// serialized against writers — stop the sampler first.
class SampleRing {
 public:
  explicit SampleRing(size_t capacity);

  SampleRing(const SampleRing&) = delete;
  SampleRing& operator=(const SampleRing&) = delete;

  /// Appends a copy of `sample`; returns false (and counts a drop) when
  /// the ring is full. Async-signal-safe: one fetch_add, a memcpy-style
  /// struct copy, one release store. Never allocates.
  bool TryAppend(const StackSample& sample);

  /// Committed samples, in append order.
  std::vector<StackSample> Snapshot() const;

  /// Slots claimed and published so far (<= capacity).
  size_t size() const;

  /// Appends rejected because the ring was full.
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Total TryAppend calls (committed + dropped).
  int64_t attempts() const { return attempts_.load(std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }

  /// Forgets all samples and drop counts. Caller must guarantee no
  /// concurrent TryAppend (disarm the sampler first).
  void Reset();

 private:
  struct Slot {
    StackSample sample;
    std::atomic<bool> committed{false};
  };

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  /// Next slot index to claim; may run past capacity_ (claims beyond the
  /// end are drops).
  std::atomic<uint64_t> next_{0};
  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> attempts_{0};
};

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_SAMPLE_RING_H_
