#ifndef SURVEYOR_UTIL_FAULT_H_
#define SURVEYOR_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace surveyor {

/// Counters of one configured fault point. Evaluations are only counted
/// while the injector is armed: the disarmed fast path never reaches the
/// registry.
struct FaultPointStats {
  int64_t evaluations = 0;  ///< armed SURVEYOR_FAULT evaluations
  int64_t injected = 0;     ///< evaluations that fired
};

/// Process-global registry of named, always-compiled fault-injection
/// points — the chaos-testing substrate for a system whose deployed
/// ancestor treated task failures on 5000 nodes as routine (paper
/// Section 7.1). Code declares a point with `SURVEYOR_FAULT("doc_read")`
/// and maps a firing to whatever failure it simulates (a Status, a
/// dropped record); nothing fires unless the point is armed.
///
/// Arming is configured with a spec string, either programmatically
/// (`Configure`, or `ScopedFaults` in tests) or through the environment
/// at first use: `SURVEYOR_FAULTS="doc_read:0.01,em_fit:@3"` with an
/// optional `SURVEYOR_FAULT_SEED`. Each entry is `name:probability`
/// (fires with that probability per evaluation, deterministic given the
/// seed) or `name:@N` (fires exactly on the N-th evaluation of the
/// point, once — useful for forcing a specific victim).
///
/// Cost when disarmed: `SURVEYOR_FAULT` is one relaxed atomic load and a
/// predictable branch, cheap enough for per-document and per-pair hot
/// paths (see bench/micro_benchmarks.cc).
class FaultInjector {
 public:
  /// The process-wide injector. First use reads SURVEYOR_FAULTS /
  /// SURVEYOR_FAULT_SEED from the environment.
  static FaultInjector& Global();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// True when any fault point is configured. The disarmed fast path of
  /// SURVEYOR_FAULT.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Evaluates the named point: true when the caller should simulate a
  /// failure now. Unconfigured points never fire. Call through
  /// SURVEYOR_FAULT so the disarmed case stays off the lock.
  bool ShouldFail(std::string_view point) SURVEYOR_EXCLUDES(mutex_);

  /// Replaces the configuration with `spec` (see class comment for the
  /// grammar) and resets all per-point counters. An empty spec disarms
  /// every point. On a malformed spec the previous configuration is kept.
  Status Configure(std::string_view spec, uint64_t seed = 42)
      SURVEYOR_EXCLUDES(mutex_);

  /// Grammar check only: parses `spec` without touching the process-wide
  /// configuration. Lets SurveyorConfig::Validate reject a malformed
  /// fault_spec up front instead of at arm time mid-run.
  static Status ValidateSpec(std::string_view spec);

  /// Disarms every point (equivalent to Configure("")).
  void Disarm() SURVEYOR_EXCLUDES(mutex_);

  /// The currently armed spec ("" when disarmed) and its seed.
  std::string spec() const SURVEYOR_EXCLUDES(mutex_);
  uint64_t seed() const SURVEYOR_EXCLUDES(mutex_);

  /// Per-point counters since the last Configure, sorted by point name.
  std::vector<std::pair<std::string, FaultPointStats>> Stats() const
      SURVEYOR_EXCLUDES(mutex_);

  /// Counters of one point (zeros when the point is not configured).
  FaultPointStats StatsFor(std::string_view point) const
      SURVEYOR_EXCLUDES(mutex_);

  /// Total injections across all points since process start. Monotonic
  /// across Configure calls, so runs can meter their own injections by
  /// delta (surveyor_faults_injected_total).
  int64_t TotalInjected() const { return total_injected_.load(); }

 private:
  FaultInjector();

  struct Point {
    /// Firing probability per evaluation; used when nth_hit == 0.
    double probability = 0.0;
    /// When > 0, fire exactly on this evaluation (one-shot).
    int64_t nth_hit = 0;
    FaultPointStats stats;
  };

  /// Parses one spec into `points`; returns a non-OK status (and leaves
  /// `points` unspecified) on grammar errors.
  static Status Parse(std::string_view spec,
                      std::map<std::string, Point, std::less<>>* points);

  mutable Mutex mutex_;
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> total_injected_{0};
  std::map<std::string, Point, std::less<>> points_
      SURVEYOR_GUARDED_BY(mutex_);
  Rng rng_ SURVEYOR_GUARDED_BY(mutex_);
  std::string spec_ SURVEYOR_GUARDED_BY(mutex_);
  uint64_t seed_ SURVEYOR_GUARDED_BY(mutex_) = 42;
};

/// RAII fault configuration for tests: applies `spec`, restores whatever
/// was armed before (including an environment-armed chaos profile) on
/// destruction.
class ScopedFaults {
 public:
  explicit ScopedFaults(std::string_view spec, uint64_t seed = 42);
  ~ScopedFaults();

  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;

 private:
  std::string previous_spec_;
  uint64_t previous_seed_;
};

/// Evaluates a named fault point. True when the caller should simulate a
/// failure. Disarmed cost: one relaxed load and a not-taken branch.
#define SURVEYOR_FAULT(point)                     \
  (::surveyor::FaultInjector::Global().armed() && \
   ::surveyor::FaultInjector::Global().ShouldFail(point))

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_FAULT_H_
