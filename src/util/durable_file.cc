#include "util/durable_file.h"

#include <cerrno>
#include <cstdio>
#include <system_error>

#ifdef _WIN32
#include <fstream>
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace surveyor {
namespace {

std::string ErrnoMessage(int err) {
  return std::system_category().message(err);
}

/// Directory part of `path` ("." when the path has no slash), for the
/// temp-file sibling and the directory fsync.
std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

#ifdef _WIN32

// Portability fallback: plain buffered writes plus rename. No fsync is
// available through the standard library, so durability is best-effort —
// atomic visibility via rename still holds.
Status WriteFileDurable(const std::string& path, std::string_view contents) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot create '" + temp + "'");
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(temp.c_str());
      return Status::Internal("short write to '" + temp + "'");
    }
  }
  std::remove(path.c_str());
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::Internal("cannot rename '" + temp + "' to '" + path + "'");
  }
  return Status::OK();
}

Status SyncFile(const std::string&) { return Status::OK(); }
Status SyncDir(const std::string&) { return Status::OK(); }

Status RenamePath(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::Internal("cannot rename '" + from + "' to '" + to + "'");
  }
  return Status::OK();
}

#else

Status WriteFileDurable(const std::string& path, std::string_view contents) {
  // Unique per process: two concurrent publishers to the same directory
  // never clobber each other's temp file. A stale temp from a crashed
  // writer with the same pid is truncated harmlessly by O_TRUNC.
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long long>(getpid()));
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create '" + temp +
                            "': " + ErrnoMessage(errno));
  }
  Status status = Status::OK();
  const char* data = contents.data();
  size_t remaining = contents.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, data, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      status = Status::Internal("short write to '" + temp +
                                "': " + ErrnoMessage(errno));
      break;
    }
    data += written;
    remaining -= static_cast<size_t>(written);
  }
  // fsync before rename: the rename barrier only orders metadata; the
  // bytes themselves must be on disk before the new name can point at
  // them, or a crash could publish a file of zeros.
  if (status.ok() && ::fsync(fd) != 0) {
    status =
        Status::Internal("fsync '" + temp + "': " + ErrnoMessage(errno));
  }
  if (::close(fd) != 0 && status.ok()) {
    status =
        Status::Internal("close '" + temp + "': " + ErrnoMessage(errno));
  }
  if (status.ok() && ::rename(temp.c_str(), path.c_str()) != 0) {
    status = Status::Internal("cannot rename '" + temp + "' to '" + path +
                              "': " + ErrnoMessage(errno));
  }
  if (!status.ok()) {
    ::unlink(temp.c_str());
    return status;
  }
  return SyncDir(DirOf(path));
}

Status SyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Internal("cannot open '" + path +
                            "' for fsync: " + ErrnoMessage(errno));
  }
  Status status = Status::OK();
  if (::fsync(fd) != 0) {
    status =
        Status::Internal("fsync '" + path + "': " + ErrnoMessage(errno));
  }
  ::close(fd);
  return status;
}

Status SyncDir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("cannot open directory '" + path +
                            "' for fsync: " + ErrnoMessage(errno));
  }
  Status status = Status::OK();
  if (::fsync(fd) != 0) {
    // Some filesystems refuse fsync on directories; the rename is still
    // atomic, so degrade to best-effort durability rather than failing
    // the publish.
    if (errno != EINVAL && errno != EROFS) {
      status = Status::Internal("fsync directory '" + path +
                                "': " + ErrnoMessage(errno));
    }
  }
  ::close(fd);
  return status;
}

Status RenamePath(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::Internal("cannot rename '" + from + "' to '" + to +
                            "': " + ErrnoMessage(errno));
  }
  return Status::OK();
}

#endif  // _WIN32

}  // namespace surveyor
