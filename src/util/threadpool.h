#ifndef SURVEYOR_UTIL_THREADPOOL_H_
#define SURVEYOR_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace surveyor {

/// Point-in-time usage statistics of a ThreadPool, for the observability
/// layer (src/obs): the pipeline copies these into its metrics registry.
struct ThreadPoolStats {
  int64_t tasks_submitted = 0;
  int64_t tasks_completed = 0;
  /// Tasks queued but not yet picked up by a worker.
  size_t queue_depth = 0;
  /// Total seconds workers spent parked waiting for work (summed across
  /// threads), a direct measure of scheduling slack.
  double idle_seconds = 0.0;
};

/// A fixed-size worker pool. Stands in for the paper's compute cluster:
/// document shards and property-type pairs are embarrassingly parallel, so
/// the 1000-5000-node deployment maps directly onto threads at laptop
/// scale.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) SURVEYOR_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished.
  void Wait() SURVEYOR_EXCLUDES(mutex_);

  size_t num_threads() const { return threads_.size(); }

  /// Tasks queued but not yet running (cheap; safe to poll from a
  /// progress reporter while workers run).
  size_t queue_depth() const SURVEYOR_EXCLUDES(mutex_);

  /// Usage counters since construction.
  ThreadPoolStats stats() const SURVEYOR_EXCLUDES(mutex_);

 private:
  void WorkerLoop() SURVEYOR_EXCLUDES(mutex_);

  /// Immutable after construction; joined (never resized) on destruction.
  std::vector<std::thread> threads_;

  mutable Mutex mutex_;
  /// Condition-variable-any so workers can wait on the annotated Mutex.
  std::condition_variable_any work_available_;
  std::condition_variable_any work_done_;
  std::queue<std::function<void()>> queue_ SURVEYOR_GUARDED_BY(mutex_);
  size_t in_flight_ SURVEYOR_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ SURVEYOR_GUARDED_BY(mutex_) = false;
  int64_t tasks_submitted_ SURVEYOR_GUARDED_BY(mutex_) = 0;
  int64_t tasks_completed_ SURVEYOR_GUARDED_BY(mutex_) = 0;
  double idle_seconds_ SURVEYOR_GUARDED_BY(mutex_) = 0.0;
};

/// Runs `fn(i)` for each i in [0, count), partitioned into contiguous
/// chunks across `pool`. Blocks until all iterations complete.
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn);

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_THREADPOOL_H_
