#ifndef SURVEYOR_UTIL_THREADPOOL_H_
#define SURVEYOR_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace surveyor {

/// A fixed-size worker pool. Stands in for the paper's compute cluster:
/// document shards and property-type pairs are embarrassingly parallel, so
/// the 1000-5000-node deployment maps directly onto threads at laptop
/// scale.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs `fn(i)` for each i in [0, count), partitioned into contiguous
/// chunks across `pool`. Blocks until all iterations complete.
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn);

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_THREADPOOL_H_
