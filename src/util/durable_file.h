#ifndef SURVEYOR_UTIL_DURABLE_FILE_H_
#define SURVEYOR_UTIL_DURABLE_FILE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace surveyor {

/// Crash-safe file publication, the write-side twin of MmapFile: artifacts
/// that other processes (or this one, after a restart) will trust must
/// never be observable half-written. Every helper follows the classic
/// write-temp -> fsync -> rename protocol, so a crash at any instruction
/// leaves either the old file or the new file at the final path — never a
/// torn hybrid and never a shorter-than-declared tail.

/// Writes `contents` to `path` atomically and durably: the bytes land in
/// a uniquely named temp file in the same directory, are flushed and
/// fsync'd, and only then renamed over `path`; finally the directory is
/// fsync'd so the rename itself survives a power cut. Any write/flush
/// failure (e.g. a full disk) surfaces as Internal and leaves `path`
/// untouched (the temp file is unlinked on the way out).
Status WriteFileDurable(const std::string& path, std::string_view contents);

/// fsync() on an existing file, surfacing the error instead of dropping
/// it. Used after writing into a not-yet-published directory, where the
/// rename barrier happens on the directory, not the file.
Status SyncFile(const std::string& path);

/// fsync() on a directory, making previously committed renames/creates
/// inside it durable. No-op (OK) on platforms where directories cannot be
/// opened for reading.
Status SyncDir(const std::string& path);

/// rename() with a Status, failing loudly instead of via errno.
Status RenamePath(const std::string& from, const std::string& to);

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_DURABLE_FILE_H_
