#ifndef SURVEYOR_UTIL_MATH_H_
#define SURVEYOR_UTIL_MATH_H_

#include <cstdint>
#include <vector>

namespace surveyor {

/// Natural log of k! (via lgamma).
double LogFactorial(int64_t k);

/// Log of the Poisson pmf: k * log(lambda) - lambda - log(k!).
/// `lambda` is clamped below by `kMinPoissonRate` so that zero-rate
/// components remain numerically usable during EM.
double PoissonLogPmf(int64_t k, double lambda);

/// Poisson pmf (exp of the above).
double PoissonPmf(int64_t k, double lambda);

/// Smallest rate used in Poisson likelihoods; prevents log(0).
inline constexpr double kMinPoissonRate = 1e-12;

/// log(exp(a) + exp(b)) computed stably.
double LogSumExp(double a, double b);

/// Stable logistic function 1 / (1 + exp(-x)).
double Sigmoid(double x);

/// Natural logarithm with clamping at kMinPoissonRate.
double SafeLog(double x);

/// Mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Population variance of a vector; 0 for fewer than 2 elements.
double Variance(const std::vector<double>& values);

/// The q-th percentile (q in [0, 100]) using linear interpolation between
/// order statistics. Input need not be sorted; empty input yields 0.
double Percentile(std::vector<double> values, double q);

/// Spearman rank correlation between two equally sized vectors.
/// Returns 0 for inputs shorter than 2. Ties receive average ranks.
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Pearson correlation; returns 0 when either side has zero variance.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace surveyor

#endif  // SURVEYOR_UTIL_MATH_H_
