#include "util/sample_ring.h"

namespace surveyor {

SampleRing::SampleRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

bool SampleRing::TryAppend(const StackSample& sample) {
  attempts_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t index = next_.fetch_add(1, std::memory_order_relaxed);
  if (index >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Slot& slot = slots_[index];
  slot.sample = sample;
  // Publish: a reader that acquires committed==true sees the full payload.
  slot.committed.store(true, std::memory_order_release);
  return true;
}

std::vector<StackSample> SampleRing::Snapshot() const {
  std::vector<StackSample> samples;
  const uint64_t claimed = next_.load(std::memory_order_relaxed);
  const size_t end = claimed < capacity_ ? static_cast<size_t>(claimed)
                                         : capacity_;
  samples.reserve(end);
  for (size_t i = 0; i < end; ++i) {
    // Skip slots claimed but not yet published (a handler mid-copy).
    if (!slots_[i].committed.load(std::memory_order_acquire)) continue;
    samples.push_back(slots_[i].sample);
  }
  return samples;
}

size_t SampleRing::size() const {
  const uint64_t claimed = next_.load(std::memory_order_relaxed);
  size_t committed = 0;
  const size_t end = claimed < capacity_ ? static_cast<size_t>(claimed)
                                         : capacity_;
  for (size_t i = 0; i < end; ++i) {
    if (slots_[i].committed.load(std::memory_order_acquire)) ++committed;
  }
  return committed;
}

void SampleRing::Reset() {
  const uint64_t claimed = next_.load(std::memory_order_relaxed);
  const size_t end = claimed < capacity_ ? static_cast<size_t>(claimed)
                                         : capacity_;
  for (size_t i = 0; i < end; ++i) {
    slots_[i].committed.store(false, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  attempts_.store(0, std::memory_order_relaxed);
}

}  // namespace surveyor
