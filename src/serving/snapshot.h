#ifndef SURVEYOR_SERVING_SNAPSHOT_H_
#define SURVEYOR_SERVING_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "extraction/aggregator.h"
#include "kb/knowledge_base.h"
#include "model/opinion.h"
#include "surveyor/pipeline.h"
#include "util/mmap_file.h"
#include "util/status.h"
#include "util/statusor.h"

namespace surveyor {
namespace serving {

/// The opinion snapshot: a versioned, immutable binary artifact holding
/// everything a serving process needs to answer subjective queries — the
/// durable hand-off between the offline mining run (the paper's 5000-node
/// extraction) and the online query engine that outlives it.
///
/// File layout (little-endian, every section 8-byte aligned):
///
///   FileHeader        magic "SURVSNP\n", format version, section count,
///                     total file size (truncation check)
///   SectionEntry[n]   id, CRC-32 of the payload, offset, size
///   payloads          one per section:
///     meta            snapshot label + opinion/block counts
///     types           string table of type names
///     entities        (name, type index) per entity, names in one blob
///     properties      string table of property strings
///     opinions        per-(type, property) blocks: header (type index,
///                     property index, degraded flag, record count,
///                     record offset) + 16-byte records
///                     {posterior f64, entity index u32, polarity i8}
///     provenance      optional supporting-statement samples per
///                     (entity, property)
///
/// Every section payload is CRC-32 checked at open, so bit rot and
/// truncation are detected before a single query is answered. The reader
/// is zero-copy: it mmaps the file and serves names as string_views into
/// the mapping.
inline constexpr char kSnapshotMagic[8] = {'S', 'U', 'R', 'V',
                                           'S', 'N', 'P', '\n'};
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Section ids of format version 1.
enum SnapshotSection : uint32_t {
  kSectionMeta = 1,
  kSectionTypes = 2,
  kSectionEntities = 3,
  kSectionProperties = 4,
  kSectionOpinions = 5,
  kSectionProvenance = 6,
};

/// One mined opinion as the snapshot stores it, with names resolved — a
/// snapshot is self-contained and serves without the knowledge base that
/// produced it.
struct SnapshotOpinion {
  std::string entity;
  std::string type;
  std::string property;
  double posterior = 0.5;
  Polarity polarity = Polarity::kNeutral;
  /// True when the pair's EM fit fell back to the SMV baseline.
  bool degraded = false;
};

/// Builds a snapshot deterministically: output bytes depend only on the
/// opinions, provenance and label added, never on insertion order (types,
/// entities, properties and blocks are sorted before serialization), so
/// write -> read -> rebuild -> write is bit-identical.
class SnapshotWriter {
 public:
  SnapshotWriter() = default;

  /// Free-form label stored in the meta section (e.g. "mine /tmp/ws").
  void set_label(std::string label) { label_ = std::move(label); }

  /// Adds one opinion; a second Add for the same (type, entity, property)
  /// replaces the first. Neutral-polarity opinions are rejected the same
  /// way OpinionStore::Add rejects them: they carry no decision.
  Status Add(const SnapshotOpinion& opinion);

  /// Adds supporting-statement samples for one (entity, property) pair.
  void AddProvenance(const std::string& entity, const std::string& type,
                     const std::string& property,
                     std::vector<StatementRef> refs);

  /// Adds every non-neutral opinion (and any provenance samples) of a
  /// pipeline result, resolving entity/type names through `kb`.
  Status AddResult(const PipelineResult& result, const KnowledgeBase& kb);

  /// Serializes the snapshot image.
  std::string Serialize() const;

  Status WriteToFile(const std::string& path) const;

 private:
  struct PairKey {
    std::string type;
    std::string property;
    auto operator<=>(const PairKey&) const = default;
  };
  struct Record {
    double posterior = 0.5;
    Polarity polarity = Polarity::kNeutral;
  };
  struct Block {
    bool degraded = false;
    /// entity name -> record; map for deterministic order.
    std::map<std::string, Record> records;
  };

  std::string label_;
  std::map<PairKey, Block> blocks_;
  /// entity name -> type name, the union of every entity seen.
  std::map<std::string, std::string> entity_types_;
  /// (entity, property) -> refs.
  std::map<std::pair<std::string, std::string>, std::vector<StatementRef>>
      provenance_;
};

/// Read side: validates the whole file at Open (magic, version, size,
/// section table bounds, per-section CRC) and then serves zero-copy views
/// into the mapping. A Snapshot is immutable once open; concurrent readers
/// need no synchronization.
class Snapshot {
 public:
  Snapshot() = default;
  Snapshot(Snapshot&&) = default;
  Snapshot& operator=(Snapshot&&) = default;

  /// Maps and validates `path`. InvalidArgument for format problems (bad
  /// magic, version mismatch, truncation, malformed tables); Internal for
  /// payload corruption (CRC mismatch). The "snapshot_read" fault point
  /// fires here as a simulated transient I/O failure (Internal), which
  /// OpinionIndex absorbs with bounded retries.
  Status Open(const std::string& path);

  std::string_view label() const { return label_; }

  size_t num_types() const { return types_.size(); }
  size_t num_entities() const { return entities_.size(); }
  size_t num_properties() const { return properties_.size(); }
  size_t num_opinions() const { return num_opinions_; }

  std::string_view TypeName(uint32_t index) const { return types_[index]; }
  std::string_view EntityName(uint32_t index) const {
    return entities_[index].name;
  }
  uint32_t EntityType(uint32_t index) const { return entities_[index].type; }
  std::string_view PropertyName(uint32_t index) const {
    return properties_[index];
  }

  /// One per-(type, property) block; `records` points at `record_count`
  /// 16-byte records inside the mapping.
  struct BlockView {
    uint32_t type_index = 0;
    uint32_t property_index = 0;
    bool degraded = false;
    uint32_t record_count = 0;
    const char* records = nullptr;
  };
  const std::vector<BlockView>& blocks() const { return blocks_; }

  struct RecordView {
    double posterior = 0.5;
    uint32_t entity_index = 0;
    Polarity polarity = Polarity::kNeutral;
  };
  static RecordView ReadRecord(const char* records, size_t i);

  /// Decoded provenance samples (empty when the section is absent).
  struct ProvenanceEntry {
    uint32_t entity_index = 0;
    uint32_t property_index = 0;
    std::vector<StatementRef> refs;
  };
  const std::vector<ProvenanceEntry>& provenance() const {
    return provenance_;
  }

 private:
  struct EntityEntry {
    std::string_view name;
    uint32_t type = 0;
  };

  Status Validate(std::string_view file);

  MmapFile file_;
  std::string_view label_;
  size_t num_opinions_ = 0;
  std::vector<std::string_view> types_;
  std::vector<EntityEntry> entities_;
  std::vector<std::string_view> properties_;
  std::vector<BlockView> blocks_;
  std::vector<ProvenanceEntry> provenance_;
};

}  // namespace serving
}  // namespace surveyor

#endif  // SURVEYOR_SERVING_SNAPSHOT_H_
