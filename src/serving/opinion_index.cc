#include "serving/opinion_index.h"

#include <algorithm>
#include <cctype>
#include <functional>

#include "obs/request_trace.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/hotpath.h"
#include "util/string_util.h"

namespace surveyor {
namespace serving {
namespace {

uint64_t PairKey(uint32_t entity_index, uint32_t property_index) {
  return (static_cast<uint64_t>(entity_index) << 32) | property_index;
}

/// Lower-cases into a reused thread-local buffer. Point lookups are the
/// serving fast path; after warm-up this never allocates. The reference
/// is valid until the next call on the same thread.
const std::string& LowerScratch(std::string_view text) {
  thread_local std::string scratch;
  scratch.resize(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    scratch[i] =
        static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
  }
  return scratch;
}

}  // namespace

bool OpinionIndex::CacheShard::Get(uint64_t key, ServedOpinion* out) const {
  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second.second);
  *out = it->second.first;
  return true;
}

size_t OpinionIndex::CacheShard::Put(uint64_t key, ServedOpinion value,
                                     size_t capacity) {
  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.first = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second.second);
    return 0;
  }
  size_t evicted = 0;
  while (entries_.size() >= capacity && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evicted;
  }
  lru_.push_front(key);
  entries_.emplace(key, std::make_pair(std::move(value), lru_.begin()));
  return evicted;
}

size_t OpinionIndex::CacheShard::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

OpinionIndex::OpinionIndex(OpinionIndexOptions options)
    : options_(std::move(options)) {
  if (options_.cache_shards == 0) options_.cache_shards = 1;
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    own_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics_ = own_metrics_.get();
  }
  cache_hits_ = metrics_->GetCounter("surveyor_query_cache_hits_total");
  cache_misses_ = metrics_->GetCounter("surveyor_query_cache_misses_total");
  cache_evictions_ =
      metrics_->GetCounter("surveyor_query_cache_evictions_total");
  lookups_ = metrics_->GetCounter("surveyor_query_lookups_total");
  not_found_ = metrics_->GetCounter("surveyor_query_not_found_total");
  metrics_->SetHelp("surveyor_query_cache_hits_total",
                    "Point lookups answered from the LRU cache");
  metrics_->SetHelp("surveyor_query_cache_misses_total",
                    "Point lookups that decoded snapshot records");
  metrics_->SetHelp("surveyor_query_cache_evictions_total",
                    "Cache entries displaced by newer answers");
  shards_.reserve(options_.cache_shards);
  for (size_t i = 0; i < options_.cache_shards; ++i) {
    shards_.push_back(std::make_unique<CacheShard>());
  }
}

Status OpinionIndex::Load(const std::string& path) {
  SURVEYOR_SPAN("opinion_index.load");
  Snapshot snapshot;
  const RetryResult result = RetryWithBackoff(
      options_.retry, [&snapshot, &path] { return snapshot.Open(path); });
  if (result.attempts > 1) {
    if (obs::RequestStats* stats = obs::CurrentRequestStats()) {
      stats->retries += result.attempts - 1;
    }
  }
  SURVEYOR_RETURN_IF_ERROR(result.status);

  std::unordered_map<std::string, uint32_t> entity_by_name;
  entity_by_name.reserve(snapshot.num_entities());
  std::vector<std::pair<std::string, uint32_t>> sorted_entities;
  sorted_entities.reserve(snapshot.num_entities());
  for (uint32_t i = 0; i < snapshot.num_entities(); ++i) {
    std::string name = ToLower(snapshot.EntityName(i));
    entity_by_name[name] = i;
    sorted_entities.emplace_back(std::move(name), i);
  }
  std::sort(sorted_entities.begin(), sorted_entities.end());

  std::unordered_map<std::string, uint32_t> property_by_name;
  property_by_name.reserve(snapshot.num_properties());
  for (uint32_t i = 0; i < snapshot.num_properties(); ++i) {
    property_by_name[ToLower(snapshot.PropertyName(i))] = i;
  }
  std::unordered_map<std::string, uint32_t> type_by_name;
  type_by_name.reserve(snapshot.num_types());
  for (uint32_t i = 0; i < snapshot.num_types(); ++i) {
    type_by_name[ToLower(snapshot.TypeName(i))] = i;
  }

  std::unordered_map<uint64_t, RecordLoc> records_by_pair;
  records_by_pair.reserve(snapshot.num_opinions());
  std::vector<std::vector<uint32_t>> blocks_by_type(snapshot.num_types());
  const auto& blocks = snapshot.blocks();
  for (uint32_t b = 0; b < blocks.size(); ++b) {
    blocks_by_type[blocks[b].type_index].push_back(b);
    for (uint32_t r = 0; r < blocks[b].record_count; ++r) {
      const Snapshot::RecordView record =
          Snapshot::ReadRecord(blocks[b].records, r);
      records_by_pair[PairKey(record.entity_index,
                              blocks[b].property_index)] = RecordLoc{b, r};
    }
  }

  std::unordered_map<uint64_t, uint32_t> provenance_by_pair;
  const auto& provenance = snapshot.provenance();
  provenance_by_pair.reserve(provenance.size());
  for (uint32_t i = 0; i < provenance.size(); ++i) {
    provenance_by_pair[PairKey(provenance[i].entity_index,
                               provenance[i].property_index)] = i;
  }

  // All derived state built; swap in atomically from the caller's view.
  snapshot_ = std::move(snapshot);
  entity_by_name_ = std::move(entity_by_name);
  property_by_name_ = std::move(property_by_name);
  type_by_name_ = std::move(type_by_name);
  records_by_pair_ = std::move(records_by_pair);
  provenance_by_pair_ = std::move(provenance_by_pair);
  blocks_by_type_ = std::move(blocks_by_type);
  sorted_entities_ = std::move(sorted_entities);
  for (auto& shard : shards_) shard = std::make_unique<CacheShard>();
  loaded_ = true;
  metrics_->GetGauge("surveyor_snapshot_opinions")
      ->Set(static_cast<double>(snapshot_.num_opinions()));
  metrics_->GetGauge("surveyor_snapshot_entities")
      ->Set(static_cast<double>(snapshot_.num_entities()));
  return Status::OK();
}

OpinionIndex::CacheShard& OpinionIndex::ShardFor(uint64_t key) const {
  return *shards_[std::hash<uint64_t>{}(key) % shards_.size()];
}

ServedOpinion OpinionIndex::Materialize(const RecordLoc& loc) const {
  SURVEYOR_SPAN("snapshot.materialize");
  const Snapshot::BlockView& block = snapshot_.blocks()[loc.block];
  const Snapshot::RecordView record =
      Snapshot::ReadRecord(block.records, loc.record);
  ServedOpinion opinion;
  opinion.entity = std::string(snapshot_.EntityName(record.entity_index));
  opinion.type = std::string(snapshot_.TypeName(block.type_index));
  opinion.property = std::string(snapshot_.PropertyName(block.property_index));
  opinion.posterior = record.posterior;
  opinion.polarity = record.polarity;
  opinion.degraded = block.degraded;
  auto prov = provenance_by_pair_.find(
      PairKey(record.entity_index, block.property_index));
  if (prov != provenance_by_pair_.end()) {
    opinion.provenance = snapshot_.provenance()[prov->second].refs;
  }
  return opinion;
}

SURVEYOR_HOT_FUNCTION
StatusOr<ServedOpinion> OpinionIndex::Lookup(std::string_view entity,
                                             std::string_view property) const {
  SURVEYOR_SPAN("opinion_index.lookup");
  lookups_->Increment();
  if (!loaded_) return Status::FailedPrecondition("no snapshot loaded");
  // The scratch is reused for the property find below; only the mapped
  // index survives each find, never the key string.
  auto entity_it = entity_by_name_.find(LowerScratch(entity));
  if (entity_it == entity_by_name_.end()) {
    not_found_->Increment();
    return Status::NotFound("unknown entity '" + std::string(entity) + "'");
  }
  auto property_it = property_by_name_.find(LowerScratch(property));
  const uint64_t key =
      property_it == property_by_name_.end()
          ? 0
          : PairKey(entity_it->second, property_it->second);
  RecordLoc loc;
  if (property_it != property_by_name_.end()) {
    auto record_it = records_by_pair_.find(key);
    if (record_it == records_by_pair_.end()) {
      not_found_->Increment();
      return Status::NotFound("no opinion for entity '" +
                              std::string(entity) + "' property '" +
                              std::string(property) + "'");
    }
    loc = record_it->second;
  } else {
    not_found_->Increment();
    return Status::NotFound("no opinion for entity '" + std::string(entity) +
                            "' property '" + std::string(property) + "'");
  }

  // The "query_cache" fault simulates a cold/flaky cache tier: the read is
  // skipped and the answer recomputed from the snapshot, so an armed chaos
  // profile degrades throughput, never correctness.
  obs::RequestStats* request_stats = obs::CurrentRequestStats();
  const bool cache_enabled =
      options_.cache_capacity > 0 && !SURVEYOR_FAULT("query_cache");
  if (cache_enabled) {
    ServedOpinion cached;
    if (ShardFor(key).Get(key, &cached)) {
      cache_hits_->Increment();
      if (request_stats != nullptr) ++request_stats->cache_hits;
      return cached;
    }
  }
  cache_misses_->Increment();
  if (request_stats != nullptr) ++request_stats->cache_misses;
  ServedOpinion opinion = Materialize(loc);
  if (options_.cache_capacity > 0) {
    const size_t per_shard =
        std::max<size_t>(1, options_.cache_capacity / shards_.size());
    const size_t evicted = ShardFor(key).Put(key, opinion, per_shard);
    if (evicted > 0) {
      cache_evictions_->Increment(static_cast<int64_t>(evicted));
    }
  }
  return opinion;
}

std::vector<StatusOr<ServedOpinion>> OpinionIndex::BatchLookup(
    const std::vector<std::pair<std::string, std::string>>& pairs) const {
  std::vector<StatusOr<ServedOpinion>> out;
  out.reserve(pairs.size());
  for (const auto& [entity, property] : pairs) {
    out.push_back(Lookup(entity, property));
  }
  return out;
}

std::vector<ServedOpinion> OpinionIndex::QueryType(std::string_view type,
                                                   std::string_view property,
                                                   size_t limit) const {
  std::vector<ServedOpinion> out;
  if (!loaded_) return out;
  auto type_it = type_by_name_.find(ToLower(type));
  auto property_it = property_by_name_.find(ToLower(property));
  if (type_it == type_by_name_.end() ||
      property_it == property_by_name_.end()) {
    return out;
  }
  for (uint32_t b : blocks_by_type_[type_it->second]) {
    const Snapshot::BlockView& block = snapshot_.blocks()[b];
    if (block.property_index != property_it->second) continue;
    for (uint32_t r = 0; r < block.record_count; ++r) {
      const Snapshot::RecordView record =
          Snapshot::ReadRecord(block.records, r);
      if (record.polarity != Polarity::kPositive) continue;
      out.push_back(Materialize(RecordLoc{b, r}));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ServedOpinion& a, const ServedOpinion& b) {
              if (a.posterior != b.posterior) return a.posterior > b.posterior;
              return a.entity < b.entity;
            });
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

std::vector<std::string> OpinionIndex::PrefixScan(std::string_view prefix,
                                                  size_t limit) const {
  std::vector<std::string> out;
  if (!loaded_) return out;
  const std::string needle = ToLower(prefix);
  auto it = std::lower_bound(
      sorted_entities_.begin(), sorted_entities_.end(), needle,
      [](const auto& entry, const std::string& p) { return entry.first < p; });
  for (; it != sorted_entities_.end(); ++it) {
    if (it->first.compare(0, needle.size(), needle) != 0) break;
    out.emplace_back(snapshot_.EntityName(it->second));
    if (limit > 0 && out.size() >= limit) break;
  }
  return out;
}

}  // namespace serving
}  // namespace surveyor
