#include "serving/opinion_index.h"

#include <algorithm>
#include <cctype>
#include <functional>

#include "obs/request_trace.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/hotpath.h"
#include "util/string_util.h"

namespace surveyor {
namespace serving {
namespace {

uint64_t PairKey(uint32_t entity_index, uint32_t property_index) {
  return (static_cast<uint64_t>(entity_index) << 32) | property_index;
}

/// Lower-cases into a reused thread-local buffer. Point lookups are the
/// serving fast path; after warm-up this never allocates. The reference
/// is valid until the next call on the same thread.
const std::string& LowerScratch(std::string_view text) {
  thread_local std::string scratch;
  scratch.resize(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    scratch[i] =
        static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
  }
  return scratch;
}

}  // namespace

bool LoadedGeneration::CacheShard::Get(uint64_t key,
                                       ServedOpinion* out) const {
  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second.second);
  *out = it->second.first;
  return true;
}

size_t LoadedGeneration::CacheShard::Put(uint64_t key, ServedOpinion value,
                                         size_t capacity) {
  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.first = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second.second);
    return 0;
  }
  size_t evicted = 0;
  while (entries_.size() >= capacity && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evicted;
  }
  lru_.push_front(key);
  entries_.emplace(key, std::make_pair(std::move(value), lru_.begin()));
  return evicted;
}

size_t LoadedGeneration::CacheShard::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

OpinionIndex::OpinionIndex(OpinionIndexOptions options)
    : options_(std::move(options)) {
  if (options_.cache_shards == 0) options_.cache_shards = 1;
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    own_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics_ = own_metrics_.get();
  }
  cache_hits_ = metrics_->GetCounter("surveyor_query_cache_hits_total");
  cache_misses_ = metrics_->GetCounter("surveyor_query_cache_misses_total");
  cache_evictions_ =
      metrics_->GetCounter("surveyor_query_cache_evictions_total");
  lookups_ = metrics_->GetCounter("surveyor_query_lookups_total");
  not_found_ = metrics_->GetCounter("surveyor_query_not_found_total");
  swaps_ = metrics_->GetCounter("surveyor_generation_swaps_total");
  swap_failures_ =
      metrics_->GetCounter("surveyor_generation_swap_failures_total");
  generation_gauge_ = metrics_->GetGauge("surveyor_generation_id");
  metrics_->SetHelp("surveyor_query_cache_hits_total",
                    "Point lookups answered from the LRU cache");
  metrics_->SetHelp("surveyor_query_cache_misses_total",
                    "Point lookups that decoded snapshot records");
  metrics_->SetHelp("surveyor_query_cache_evictions_total",
                    "Cache entries displaced by newer answers");
  metrics_->SetHelp("surveyor_generation_swaps_total",
                    "Snapshot generations hot-swapped into the index");
  metrics_->SetHelp("surveyor_generation_swap_failures_total",
                    "Failed loads (the previous generation kept serving)");
  metrics_->SetHelp("surveyor_generation_id",
                    "Generation id currently serving (0 = none)");
}

Status OpinionIndex::Load(const std::string& path) {
  return LoadGeneration(path, generation_id() + 1);
}

Status OpinionIndex::LoadGeneration(const std::string& path,
                                    uint64_t generation_id) {
  SURVEYOR_SPAN("opinion_index.load");
  MutexLock load_lock(load_mutex_);
  // Everything below builds off to the side: queries keep hitting the
  // current generation untouched until the single publish store at the
  // bottom. Any failure leaves the index exactly as it was.
  auto fail = [this](Status status) {
    swap_failures_->Increment();
    return status;
  };

  Snapshot snapshot;
  const RetryResult result = RetryWithBackoff(
      options_.retry, [&snapshot, &path] { return snapshot.Open(path); });
  if (result.attempts > 1) {
    if (obs::RequestStats* stats = obs::CurrentRequestStats()) {
      stats->retries += result.attempts - 1;
    }
  }
  if (!result.status.ok()) return fail(result.status);

  auto generation = std::make_shared<LoadedGeneration>();
  generation->id_ = generation_id;
  generation->entity_by_name_.reserve(snapshot.num_entities());
  generation->sorted_entities_.reserve(snapshot.num_entities());
  for (uint32_t i = 0; i < snapshot.num_entities(); ++i) {
    std::string name = ToLower(snapshot.EntityName(i));
    generation->entity_by_name_[name] = i;
    generation->sorted_entities_.emplace_back(std::move(name), i);
  }
  std::sort(generation->sorted_entities_.begin(),
            generation->sorted_entities_.end());

  generation->property_by_name_.reserve(snapshot.num_properties());
  for (uint32_t i = 0; i < snapshot.num_properties(); ++i) {
    generation->property_by_name_[ToLower(snapshot.PropertyName(i))] = i;
  }
  generation->type_by_name_.reserve(snapshot.num_types());
  for (uint32_t i = 0; i < snapshot.num_types(); ++i) {
    generation->type_by_name_[ToLower(snapshot.TypeName(i))] = i;
  }

  generation->records_by_pair_.reserve(snapshot.num_opinions());
  generation->blocks_by_type_.resize(snapshot.num_types());
  const auto& blocks = snapshot.blocks();
  for (uint32_t b = 0; b < blocks.size(); ++b) {
    generation->blocks_by_type_[blocks[b].type_index].push_back(b);
    for (uint32_t r = 0; r < blocks[b].record_count; ++r) {
      const Snapshot::RecordView record =
          Snapshot::ReadRecord(blocks[b].records, r);
      generation->records_by_pair_[PairKey(
          record.entity_index, blocks[b].property_index)] =
          LoadedGeneration::RecordLoc{b, r};
    }
  }

  const auto& provenance = snapshot.provenance();
  generation->provenance_by_pair_.reserve(provenance.size());
  for (uint32_t i = 0; i < provenance.size(); ++i) {
    generation->provenance_by_pair_[PairKey(provenance[i].entity_index,
                                            provenance[i].property_index)] =
        i;
  }

  // A fresh cache travels with the generation: a swap can never serve an
  // answer decoded from a previous snapshot.
  generation->shards_.reserve(options_.cache_shards);
  for (size_t i = 0; i < options_.cache_shards; ++i) {
    generation->shards_.push_back(
        std::make_unique<LoadedGeneration::CacheShard>());
  }
  generation->snapshot_ = std::move(snapshot);
  generation->loaded_at_ = std::chrono::steady_clock::now();

  // The "generation_swap" fault simulates a load that dies after all the
  // I/O succeeded but before publication — the previous generation must
  // keep serving and the failure must be visible on /metrics.
  if (SURVEYOR_FAULT("generation_swap")) {
    return fail(
        Status::Internal("injected fault at generation_swap: " + path));
  }

  // The swap: one pointer assignment under current_mutex_. In-flight
  // queries finish on the generation they pinned; its snapshot, indexes
  // and cache die with the last reference.
  {
    MutexLock lock(current_mutex_);
    current_ = std::move(generation);
  }
  swaps_->Increment();
  const GenerationPtr published = this->generation();
  generation_gauge_->Set(static_cast<double>(published->id()));
  metrics_->GetGauge("surveyor_snapshot_opinions")
      ->Set(static_cast<double>(published->snapshot().num_opinions()));
  metrics_->GetGauge("surveyor_snapshot_entities")
      ->Set(static_cast<double>(published->snapshot().num_entities()));
  return Status::OK();
}

LoadedGeneration::CacheShard& OpinionIndex::ShardFor(
    const LoadedGeneration& generation, uint64_t key) const {
  return *generation
              .shards_[std::hash<uint64_t>{}(key) %
                       generation.shards_.size()];
}

ServedOpinion OpinionIndex::Materialize(
    const LoadedGeneration& generation,
    const LoadedGeneration::RecordLoc& loc) const {
  SURVEYOR_SPAN("snapshot.materialize");
  const Snapshot& snapshot = generation.snapshot_;
  const Snapshot::BlockView& block = snapshot.blocks()[loc.block];
  const Snapshot::RecordView record =
      Snapshot::ReadRecord(block.records, loc.record);
  ServedOpinion opinion;
  opinion.entity = std::string(snapshot.EntityName(record.entity_index));
  opinion.type = std::string(snapshot.TypeName(block.type_index));
  opinion.property = std::string(snapshot.PropertyName(block.property_index));
  opinion.posterior = record.posterior;
  opinion.polarity = record.polarity;
  opinion.degraded = block.degraded;
  auto prov = generation.provenance_by_pair_.find(
      PairKey(record.entity_index, block.property_index));
  if (prov != generation.provenance_by_pair_.end()) {
    opinion.provenance = snapshot.provenance()[prov->second].refs;
  }
  return opinion;
}

SURVEYOR_HOT_FUNCTION
StatusOr<ServedOpinion> OpinionIndex::Lookup(std::string_view entity,
                                             std::string_view property) const {
  SURVEYOR_SPAN("opinion_index.lookup");
  lookups_->Increment();
  const GenerationPtr generation = this->generation();
  if (generation == nullptr) {
    return Status::FailedPrecondition("no snapshot loaded");
  }
  return LookupIn(*generation, entity, property);
}

SURVEYOR_HOT_FUNCTION
StatusOr<ServedOpinion> OpinionIndex::LookupIn(
    const LoadedGeneration& generation, std::string_view entity,
    std::string_view property) const {
  // The scratch is reused for the property find below; only the mapped
  // index survives each find, never the key string.
  auto entity_it = generation.entity_by_name_.find(LowerScratch(entity));
  if (entity_it == generation.entity_by_name_.end()) {
    not_found_->Increment();
    return Status::NotFound("unknown entity '" + std::string(entity) + "'");
  }
  auto property_it = generation.property_by_name_.find(LowerScratch(property));
  if (property_it == generation.property_by_name_.end()) {
    not_found_->Increment();
    return Status::NotFound("no opinion for entity '" + std::string(entity) +
                            "' property '" + std::string(property) + "'");
  }
  const uint64_t key = PairKey(entity_it->second, property_it->second);
  auto record_it = generation.records_by_pair_.find(key);
  if (record_it == generation.records_by_pair_.end()) {
    not_found_->Increment();
    return Status::NotFound("no opinion for entity '" + std::string(entity) +
                            "' property '" + std::string(property) + "'");
  }
  const LoadedGeneration::RecordLoc loc = record_it->second;

  // The "query_cache" fault simulates a cold/flaky cache tier: the read is
  // skipped and the answer recomputed from the snapshot, so an armed chaos
  // profile degrades throughput, never correctness.
  obs::RequestStats* request_stats = obs::CurrentRequestStats();
  const bool cache_enabled =
      options_.cache_capacity > 0 && !SURVEYOR_FAULT("query_cache");
  if (cache_enabled) {
    ServedOpinion cached;
    if (ShardFor(generation, key).Get(key, &cached)) {
      cache_hits_->Increment();
      if (request_stats != nullptr) ++request_stats->cache_hits;
      return cached;
    }
  }
  cache_misses_->Increment();
  if (request_stats != nullptr) ++request_stats->cache_misses;
  ServedOpinion opinion = Materialize(generation, loc);
  if (options_.cache_capacity > 0) {
    const size_t per_shard = std::max<size_t>(
        1, options_.cache_capacity / generation.shards_.size());
    const size_t evicted =
        ShardFor(generation, key).Put(key, opinion, per_shard);
    if (evicted > 0) {
      cache_evictions_->Increment(static_cast<int64_t>(evicted));
    }
  }
  return opinion;
}

std::vector<StatusOr<ServedOpinion>> OpinionIndex::BatchLookup(
    const std::vector<std::pair<std::string, std::string>>& pairs) const {
  std::vector<StatusOr<ServedOpinion>> out;
  out.reserve(pairs.size());
  // Pin once: the whole batch is answered from one generation even if a
  // swap lands mid-batch.
  const GenerationPtr generation = this->generation();
  for (const auto& [entity, property] : pairs) {
    SURVEYOR_SPAN("opinion_index.lookup");
    lookups_->Increment();
    if (generation == nullptr) {
      out.push_back(Status::FailedPrecondition("no snapshot loaded"));
    } else {
      out.push_back(LookupIn(*generation, entity, property));
    }
  }
  return out;
}

std::vector<ServedOpinion> OpinionIndex::QueryType(std::string_view type,
                                                   std::string_view property,
                                                   size_t limit) const {
  std::vector<ServedOpinion> out;
  const GenerationPtr pinned = this->generation();
  if (pinned == nullptr) return out;
  const LoadedGeneration& generation = *pinned;
  auto type_it = generation.type_by_name_.find(ToLower(type));
  auto property_it = generation.property_by_name_.find(ToLower(property));
  if (type_it == generation.type_by_name_.end() ||
      property_it == generation.property_by_name_.end()) {
    return out;
  }
  for (uint32_t b : generation.blocks_by_type_[type_it->second]) {
    const Snapshot::BlockView& block = generation.snapshot_.blocks()[b];
    if (block.property_index != property_it->second) continue;
    for (uint32_t r = 0; r < block.record_count; ++r) {
      const Snapshot::RecordView record =
          Snapshot::ReadRecord(block.records, r);
      if (record.polarity != Polarity::kPositive) continue;
      out.push_back(
          Materialize(generation, LoadedGeneration::RecordLoc{b, r}));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ServedOpinion& a, const ServedOpinion& b) {
              if (a.posterior != b.posterior) return a.posterior > b.posterior;
              return a.entity < b.entity;
            });
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

std::vector<std::string> OpinionIndex::PrefixScan(std::string_view prefix,
                                                  size_t limit) const {
  std::vector<std::string> out;
  const GenerationPtr pinned = this->generation();
  if (pinned == nullptr) return out;
  const LoadedGeneration& generation = *pinned;
  const std::string needle = ToLower(prefix);
  auto it = std::lower_bound(
      generation.sorted_entities_.begin(), generation.sorted_entities_.end(),
      needle,
      [](const auto& entry, const std::string& p) { return entry.first < p; });
  for (; it != generation.sorted_entities_.end(); ++it) {
    if (it->first.compare(0, needle.size(), needle) != 0) break;
    out.emplace_back(generation.snapshot_.EntityName(it->second));
    if (limit > 0 && out.size() >= limit) break;
  }
  return out;
}

}  // namespace serving
}  // namespace surveyor
