#include "serving/reload_service.h"

#include <string>

#include "obs/json_writer.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "serving/api_envelope.h"
#include "util/logging.h"

namespace surveyor {
namespace serving {
namespace {

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    default:
      return 500;
  }
}

/// Pulls `generation=N` out of the target's query string. Returns false
/// on a malformed value; `*present` says whether the parameter appeared.
bool ParseGenerationParam(std::string_view target, bool* present,
                          uint64_t* id) {
  *present = false;
  const size_t query = target.find('?');
  if (query == std::string_view::npos) return true;
  std::string_view rest = target.substr(query + 1);
  while (!rest.empty()) {
    const size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    constexpr std::string_view kKey = "generation=";
    if (pair.substr(0, kKey.size()) != kKey) continue;
    const std::string_view value = pair.substr(kKey.size());
    if (value.empty()) return false;
    uint64_t parsed = 0;
    for (const char c : value) {
      if (c < '0' || c > '9') return false;
      parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
    }
    *present = true;
    *id = parsed;
  }
  return true;
}

}  // namespace

ReloadService::ReloadService(GenerationStore* store, OpinionIndex* index,
                             obs::MetricRegistry* metrics)
    : store_(store),
      index_(index),
      metrics_(metrics != nullptr ? metrics : &index->metrics()) {
  reloads_ = metrics_->GetCounter("surveyor_reloads_total");
  reload_failures_ = metrics_->GetCounter("surveyor_reload_failures_total");
  age_gauge_ = metrics_->GetGauge("surveyor_generation_age_seconds");
  metrics_->SetHelp("surveyor_reloads_total",
                    "Successful /reloadz and SIGHUP generation swaps");
  metrics_->SetHelp("surveyor_reload_failures_total",
                    "Reload requests that left the old generation serving");
  metrics_->SetHelp("surveyor_generation_age_seconds",
                    "Seconds since the serving generation was swapped in");
}

void ReloadService::Register(obs::AdminServer* server) {
  const auto handler = [this](std::string_view method, std::string_view target,
                              std::string_view body) {
    return Handle(method, target, body);
  };
  server->AddHandler("/v1/admin/reload", handler);
  // One-PR deprecation shim: answers identically, stamped Deprecated.
  server->AddHandler("/reloadz", handler);
  server->AddStatusSection(
      "generation", [this](obs::JsonWriter& writer) { WriteStatus(writer); });
  server->AddMetricsHook([this] { UpdateGauges(); });
}

obs::AdminResponse ReloadService::Handle(std::string_view method,
                                         std::string_view target,
                                         std::string_view) const {
  SURVEYOR_SPAN("reloadz");
  // A generation swap is rare and operator-significant: always keep its
  // trace, whatever the sampling rate.
  obs::ForceSampleCurrentRequest();
  const std::string_view path = target.substr(0, target.find('?'));
  const bool legacy = path == "/reloadz";
  obs::AdminResponse response = HandleReload(method, target);
  if (legacy) MarkDeprecated(&response, "/v1/admin/reload");
  return response;
}

obs::AdminResponse ReloadService::HandleReload(std::string_view method,
                                               std::string_view target) const {
  if (method != "POST") {
    return ApiError(405, "POST only");
  }
  bool explicit_id = false;
  uint64_t id = 0;
  if (!ParseGenerationParam(target, &explicit_id, &id)) {
    return ApiError(400, "generation must be a decimal id");
  }
  const uint64_t previous = index_->generation_id();
  Status status;
  if (explicit_id) {
    status = ReloadGeneration(id);
  } else {
    status = ReloadLatest();
  }
  if (!status.ok()) {
    return ApiError(HttpStatusFor(status), status.message());
  }
  const uint64_t now_serving = index_->generation_id();
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("generation")
      .Value(static_cast<int64_t>(now_serving))
      .Key("previous")
      .Value(static_cast<int64_t>(previous))
      .Key("reloaded")
      .Value(now_serving != previous || explicit_id)
      .EndObject();
  return ApiData(writer.str());
}

Status ReloadService::ReloadLatest() const {
  SURVEYOR_RETURN_IF_ERROR(store_->Refresh());
  const uint64_t latest = store_->latest();
  if (latest == 0) {
    // An empty store is only an error when nothing is serving yet —
    // otherwise SIGHUP on a freshly-initialized store is a clean no-op.
    if (!index_->loaded()) {
      reload_failures_->Increment();
      return Status::NotFound("no generations published");
    }
    return Status::OK();
  }
  if (latest == index_->generation_id()) return Status::OK();
  const Status loaded =
      index_->LoadGeneration(store_->SnapshotPath(latest), latest);
  if (!loaded.ok()) {
    reload_failures_->Increment();
    return loaded;
  }
  reloads_->Increment();
  SURVEYOR_LOG(Info) << "reloaded generation " << latest << " from "
                     << store_->root();
  return Status::OK();
}

Status ReloadService::ReloadGeneration(uint64_t id) const {
  SURVEYOR_RETURN_IF_ERROR(store_->Refresh());
  if (!store_->Contains(id)) {
    reload_failures_->Increment();
    return Status::NotFound("generation " + std::to_string(id) +
                            " is not in the store");
  }
  const Status loaded = index_->LoadGeneration(store_->SnapshotPath(id), id);
  if (!loaded.ok()) {
    reload_failures_->Increment();
    return loaded;
  }
  reloads_->Increment();
  SURVEYOR_LOG(Info) << "reloaded generation " << id << " from "
                     << store_->root();
  return Status::OK();
}

void ReloadService::WriteStatus(obs::JsonWriter& writer) const {
  const GenerationPtr generation = index_->generation();
  writer.BeginObject();
  writer.Key("serving")
      .Value(static_cast<int64_t>(generation == nullptr ? 0
                                                        : generation->id()));
  if (generation != nullptr) {
    writer.Key("age_seconds").Value(generation->AgeSeconds());
  }
  writer.Key("store_root").Value(store_->root());
  writer.Key("store_latest").Value(static_cast<int64_t>(store_->latest()));
  writer.Key("available").BeginArray();
  for (const uint64_t id : store_->generations()) {
    writer.Value(static_cast<int64_t>(id));
  }
  writer.EndArray();
  writer.EndObject();
}

void ReloadService::UpdateGauges() const {
  const GenerationPtr generation = index_->generation();
  age_gauge_->Set(generation == nullptr ? 0.0 : generation->AgeSeconds());
}

}  // namespace serving
}  // namespace surveyor
