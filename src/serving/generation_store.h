#ifndef SURVEYOR_SERVING_GENERATION_STORE_H_
#define SURVEYOR_SERVING_GENERATION_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace surveyor {
namespace serving {

struct GenerationStoreOptions {
  /// Generations kept on disk, newest inclusive. Publishing the (N+1)-th
  /// prunes the oldest after the manifest commits. Must be >= 1; older
  /// retained generations are the rollback targets of /reloadz.
  size_t retain = 4;
  /// Publish/prune counters and the latest-generation gauge land here;
  /// nullptr records nothing.
  obs::MetricRegistry* metrics = nullptr;
};

/// Crash-safe snapshot generations: the durable hand-off of the
/// "Subjective Databases" loop (mine -> publish -> serve -> re-mine). A
/// store is one directory:
///
///   <root>/MANIFEST            committed state, CRC-32 checked
///   <root>/gen-000007/         one published generation
///       snapshot.surv
///   <root>/.tmp-gen-000008     an in-flight publish (invisible until
///                              renamed; swept at Open)
///
/// Publish ordering (every arrow is an fsync barrier):
///
///   write snapshot into .tmp dir -> rename .tmp -> gen-<N> ->
///   write MANIFEST.tmp -> rename over MANIFEST -> prune old gen dirs
///
/// A publisher that dies at ANY instruction leaves the previous MANIFEST
/// intact, so a reopening store always sees the last complete generation
/// and never a half-visible one: a gen-<N> directory not named by the
/// manifest is an orphan (crashed between the two renames) and is swept,
/// never served. The fault points `generation_publish` (evaluated before
/// the snapshot write and again before the directory rename) and
/// `generation_manifest` (before the manifest replace) simulate those
/// deaths under test and in the chaos CI profile.
///
/// Thread-safe; Publish assumes one publishing process per store (ids are
/// allocated from the manifest read at Open/Refresh).
class GenerationStore {
 public:
  explicit GenerationStore(std::string root,
                           GenerationStoreOptions options = {});

  /// Creates the root directory if needed, loads and CRC-checks the
  /// manifest (an absent manifest is an empty store, not an error),
  /// verifies every listed generation's snapshot file exists, and sweeps
  /// the leftovers of crashed publishes (.tmp-* and unlisted gen-*
  /// directories). Internal on a corrupt manifest or a listed-but-missing
  /// generation — serving must not guess.
  Status Open() SURVEYOR_EXCLUDES(mutex_);

  /// Re-reads the manifest from disk, picking up generations published by
  /// another process (the mine -> /reloadz loop). Same validation as
  /// Open, without the sweep.
  Status Refresh() SURVEYOR_EXCLUDES(mutex_);

  /// Publishes `image` (a serialized snapshot) as the next generation and
  /// returns its id. The image is validated by a full snapshot open
  /// before the generation becomes visible — a corrupt image is rejected,
  /// never published. On any failure the store (and its manifest) is
  /// exactly as before.
  StatusOr<uint64_t> PublishImage(std::string_view image)
      SURVEYOR_EXCLUDES(mutex_);

  /// Reads `source_path` and publishes its bytes (the CLI's
  /// `mine --publish` hand-off from SnapshotWriter::WriteToFile output).
  StatusOr<uint64_t> PublishFile(const std::string& source_path)
      SURVEYOR_EXCLUDES(mutex_);

  /// Latest committed generation id; 0 when the store is empty.
  uint64_t latest() const SURVEYOR_EXCLUDES(mutex_);

  /// Committed generation ids, oldest first (the rollback menu).
  std::vector<uint64_t> generations() const SURVEYOR_EXCLUDES(mutex_);

  /// True when `id` is committed (and therefore loadable).
  bool Contains(uint64_t id) const SURVEYOR_EXCLUDES(mutex_);

  /// Path of generation `id`'s snapshot file. The id need not be
  /// committed (used internally during publish); callers should check
  /// Contains first.
  std::string SnapshotPath(uint64_t id) const;

  const std::string& root() const { return root_; }

 private:
  std::string GenerationDir(uint64_t id) const;
  std::string ManifestPath() const;

  /// Serializes `ids` (+ latest) into manifest text with the CRC footer.
  static std::string RenderManifest(const std::vector<uint64_t>& ids);

  /// Parses + CRC-checks manifest text into `ids` (ascending).
  static Status ParseManifest(std::string_view text,
                              std::vector<uint64_t>* ids);

  /// Loads the manifest into members; shared by Open and Refresh.
  Status LoadManifest() SURVEYOR_REQUIRES(mutex_);

  /// Removes .tmp-* and gen-* directories the manifest does not name.
  void SweepOrphans() SURVEYOR_REQUIRES(mutex_);

  const std::string root_;
  GenerationStoreOptions options_;

  obs::Counter* published_ = nullptr;
  obs::Counter* publish_failures_ = nullptr;
  obs::Counter* pruned_ = nullptr;
  obs::Gauge* latest_gauge_ = nullptr;
  obs::Gauge* retained_gauge_ = nullptr;

  mutable Mutex mutex_;
  bool opened_ SURVEYOR_GUARDED_BY(mutex_) = false;
  std::vector<uint64_t> generations_ SURVEYOR_GUARDED_BY(mutex_);
};

}  // namespace serving
}  // namespace surveyor

#endif  // SURVEYOR_SERVING_GENERATION_STORE_H_
