#include "serving/snapshot.h"

#include <bit>
#include <cstring>
#include <utility>

#include "obs/trace.h"
#include "util/crc32.h"
#include "util/durable_file.h"
#include "util/fault.h"

namespace surveyor {
namespace serving {
namespace {

constexpr size_t kFileHeaderSize = 32;
constexpr size_t kSectionEntrySize = 24;
constexpr size_t kBlockHeaderSize = 24;
constexpr size_t kRecordSize = 16;
constexpr size_t kProvRefSize = 16;
/// Version 1 writes six sections; anything larger than this in a header is
/// a corrupt or hostile file, not a future format (those bump the version).
constexpr uint32_t kMaxSections = 64;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, sizeof(buf));
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, sizeof(buf));
}

void AppendF64(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

/// u32 length prefix + raw bytes.
void AppendString(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PadTo8(std::string* out) {
  while (out->size() % 8 != 0) out->push_back('\0');
}

uint32_t DecodeU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t DecodeU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

double DecodeF64(const char* p) { return std::bit_cast<double>(DecodeU64(p)); }

/// Bounds-checked sequential reader over one section payload. Every Read
/// fails with InvalidArgument on overrun, so a truncated or length-lying
/// section can never walk past the mapping.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status ReadU32(uint32_t* out) {
    SURVEYOR_RETURN_IF_ERROR(Need(4));
    *out = DecodeU32(data_.data() + pos_);
    pos_ += 4;
    return Status::OK();
  }

  Status ReadU64(uint64_t* out) {
    SURVEYOR_RETURN_IF_ERROR(Need(8));
    *out = DecodeU64(data_.data() + pos_);
    pos_ += 8;
    return Status::OK();
  }

  Status ReadBytes(size_t n, std::string_view* out) {
    SURVEYOR_RETURN_IF_ERROR(Need(n));
    *out = data_.substr(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  /// Length-prefixed string; the view aliases the underlying mapping.
  Status ReadString(std::string_view* out) {
    uint32_t len = 0;
    SURVEYOR_RETURN_IF_ERROR(ReadU32(&len));
    return ReadBytes(len, out);
  }

 private:
  Status Need(size_t n) const {
    if (remaining() < n) {
      return Status::InvalidArgument("snapshot section truncated");
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

Status SnapshotWriter::Add(const SnapshotOpinion& opinion) {
  if (opinion.entity.empty() || opinion.type.empty() ||
      opinion.property.empty()) {
    return Status::InvalidArgument(
        "snapshot opinion needs entity, type and property");
  }
  if (opinion.polarity == Polarity::kNeutral) {
    return Status::InvalidArgument("snapshot stores decisions, not neutral");
  }
  if (!(opinion.posterior >= 0.0 && opinion.posterior <= 1.0)) {
    return Status::InvalidArgument("posterior must be in [0, 1]");
  }
  Block& block = blocks_[PairKey{opinion.type, opinion.property}];
  block.degraded = block.degraded || opinion.degraded;
  block.records[opinion.entity] =
      Record{opinion.posterior, opinion.polarity};
  entity_types_.emplace(opinion.entity, opinion.type);
  return Status::OK();
}

void SnapshotWriter::AddProvenance(const std::string& entity,
                                   const std::string& type,
                                   const std::string& property,
                                   std::vector<StatementRef> refs) {
  if (refs.empty()) return;
  entity_types_.emplace(entity, type);
  provenance_[{entity, property}] = std::move(refs);
}

Status SnapshotWriter::AddResult(const PipelineResult& result,
                                 const KnowledgeBase& kb) {
  for (const PropertyTypeResult& pair : result.pairs) {
    const std::string& type_name = kb.TypeName(pair.evidence.type);
    for (size_t i = 0; i < pair.evidence.entities.size(); ++i) {
      if (pair.polarity[i] == Polarity::kNeutral) continue;
      SnapshotOpinion opinion;
      opinion.entity = kb.entity(pair.evidence.entities[i]).canonical_name;
      opinion.type = type_name;
      opinion.property = pair.evidence.property;
      opinion.posterior = pair.posterior[i];
      opinion.polarity = pair.polarity[i];
      opinion.degraded = pair.degraded;
      SURVEYOR_RETURN_IF_ERROR(Add(opinion));
    }
  }
  for (const auto& [key, refs] : result.provenance) {
    const Entity& entity = kb.entity(key.first);
    AddProvenance(entity.canonical_name, kb.TypeName(entity.most_notable_type),
                  key.second, refs);
  }
  return Status::OK();
}

std::string SnapshotWriter::Serialize() const {
  // String tables, index maps. std::map iteration makes each table sorted
  // and therefore the whole image deterministic.
  std::map<std::string, uint32_t> type_index;
  for (const auto& [key, block] : blocks_) type_index.emplace(key.type, 0);
  for (const auto& [entity, type] : entity_types_) type_index.emplace(type, 0);
  uint32_t next = 0;
  for (auto& [name, index] : type_index) index = next++;

  std::map<std::string, uint32_t> entity_index;
  next = 0;
  for (const auto& [name, type] : entity_types_) entity_index[name] = next++;

  std::map<std::string, uint32_t> property_index;
  for (const auto& [key, block] : blocks_) property_index.emplace(key.property, 0);
  for (const auto& [key, refs] : provenance_) property_index.emplace(key.second, 0);
  next = 0;
  for (auto& [name, index] : property_index) index = next++;

  uint64_t num_opinions = 0;
  for (const auto& [key, block] : blocks_) num_opinions += block.records.size();

  // --- Section payloads -------------------------------------------------
  std::string meta;
  AppendU64(&meta, num_opinions);
  AppendU64(&meta, blocks_.size());
  AppendString(&meta, label_);

  std::string types;
  AppendU32(&types, static_cast<uint32_t>(type_index.size()));
  for (const auto& [name, index] : type_index) AppendString(&types, name);

  std::string entities;
  AppendU32(&entities, static_cast<uint32_t>(entity_index.size()));
  for (const auto& [name, index] : entity_index) {
    AppendU32(&entities, type_index.at(entity_types_.at(name)));
    AppendString(&entities, name);
  }

  std::string properties;
  AppendU32(&properties, static_cast<uint32_t>(property_index.size()));
  for (const auto& [name, index] : property_index) {
    AppendString(&properties, name);
  }

  std::string opinions;
  AppendU32(&opinions, static_cast<uint32_t>(blocks_.size()));
  AppendU32(&opinions, 0);  // pad: keeps the header array 8-aligned
  uint64_t record_offset = 8 + kBlockHeaderSize * blocks_.size();
  for (const auto& [key, block] : blocks_) {
    AppendU32(&opinions, type_index.at(key.type));
    AppendU32(&opinions, property_index.at(key.property));
    AppendU32(&opinions, block.degraded ? 1 : 0);
    AppendU32(&opinions, static_cast<uint32_t>(block.records.size()));
    AppendU64(&opinions, record_offset);
    record_offset += kRecordSize * block.records.size();
  }
  for (const auto& [key, block] : blocks_) {
    for (const auto& [entity, record] : block.records) {
      AppendF64(&opinions, record.posterior);
      AppendU32(&opinions, entity_index.at(entity));
      opinions.push_back(static_cast<char>(record.polarity));
      opinions.append(3, '\0');
    }
  }

  std::string provenance;
  if (!provenance_.empty()) {
    AppendU32(&provenance, static_cast<uint32_t>(provenance_.size()));
    AppendU32(&provenance, 0);  // pad
    for (const auto& [key, refs] : provenance_) {
      AppendU32(&provenance, entity_index.at(key.first));
      AppendU32(&provenance, property_index.at(key.second));
      AppendU32(&provenance, static_cast<uint32_t>(refs.size()));
      AppendU32(&provenance, 0);  // pad
      for (const StatementRef& ref : refs) {
        AppendU64(&provenance, static_cast<uint64_t>(ref.doc_id));
        AppendU32(&provenance, static_cast<uint32_t>(ref.sentence_index));
        AppendU32(&provenance, ref.positive ? 1 : 0);
      }
    }
  }

  // --- Assembly ---------------------------------------------------------
  std::vector<std::pair<uint32_t, const std::string*>> sections = {
      {kSectionMeta, &meta},
      {kSectionTypes, &types},
      {kSectionEntities, &entities},
      {kSectionProperties, &properties},
      {kSectionOpinions, &opinions},
  };
  if (!provenance.empty()) sections.emplace_back(kSectionProvenance, &provenance);

  std::string payload;  // everything after the section table
  struct Placed {
    uint32_t id;
    uint32_t crc;
    uint64_t offset;
    uint64_t size;
  };
  std::vector<Placed> placed;
  const size_t table_end =
      kFileHeaderSize + kSectionEntrySize * sections.size();
  for (const auto& [id, body] : sections) {
    PadTo8(&payload);
    placed.push_back({id, Crc32(*body), table_end + payload.size(),
                      body->size()});
    payload += *body;
  }
  PadTo8(&payload);

  std::string out;
  out.reserve(table_end + payload.size());
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendU32(&out, kSnapshotFormatVersion);
  AppendU32(&out, static_cast<uint32_t>(sections.size()));
  AppendU64(&out, table_end + payload.size());  // total file size
  AppendU64(&out, 0);                           // reserved
  for (const Placed& p : placed) {
    AppendU32(&out, p.id);
    AppendU32(&out, p.crc);
    AppendU64(&out, p.offset);
    AppendU64(&out, p.size);
  }
  out += payload;
  return out;
}

Status SnapshotWriter::WriteToFile(const std::string& path) const {
  // Publish atomically: a crash (or a full disk) mid-write must never
  // leave a torn file at the final path — the serving tier hot-swaps off
  // this file while queries are in flight, and a restart trusts whatever
  // it finds there. WriteFileDurable reports short writes as errors
  // instead of silently truncating.
  return WriteFileDurable(path, Serialize());
}

Snapshot::RecordView Snapshot::ReadRecord(const char* records, size_t i) {
  const char* p = records + i * kRecordSize;
  RecordView view;
  view.posterior = DecodeF64(p);
  view.entity_index = DecodeU32(p + 8);
  view.polarity = static_cast<Polarity>(static_cast<int8_t>(p[12]));
  return view;
}

Status Snapshot::Open(const std::string& path) {
  SURVEYOR_SPAN("snapshot.open");
  if (SURVEYOR_FAULT("snapshot_read")) {
    return Status::Internal("injected fault at snapshot_read: " + path);
  }
  MmapFile file;
  SURVEYOR_RETURN_IF_ERROR(file.Open(path));
  // Swap in only after full validation: a failed Open leaves the previous
  // snapshot (if any) untouched.
  Snapshot fresh;
  fresh.file_ = std::move(file);
  SURVEYOR_RETURN_IF_ERROR(fresh.Validate(fresh.file_.data()));
  *this = std::move(fresh);
  return Status::OK();
}

Status Snapshot::Validate(std::string_view file) {
  if (file.size() < kFileHeaderSize) {
    return Status::InvalidArgument("snapshot too small for a header");
  }
  if (std::memcmp(file.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("not an opinion snapshot (bad magic)");
  }
  const uint32_t version = DecodeU32(file.data() + 8);
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "snapshot format version " + std::to_string(version) +
        " unsupported (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  const uint32_t section_count = DecodeU32(file.data() + 12);
  const uint64_t declared_size = DecodeU64(file.data() + 16);
  if (declared_size != file.size()) {
    return Status::InvalidArgument(
        "snapshot truncated: header declares " +
        std::to_string(declared_size) + " bytes, file has " +
        std::to_string(file.size()));
  }
  if (section_count == 0 || section_count > kMaxSections) {
    return Status::InvalidArgument("snapshot section count out of range");
  }
  const size_t table_end =
      kFileHeaderSize + kSectionEntrySize * section_count;
  if (file.size() < table_end) {
    return Status::InvalidArgument("snapshot truncated in section table");
  }

  std::map<uint32_t, std::string_view> payloads;
  for (uint32_t i = 0; i < section_count; ++i) {
    const char* entry = file.data() + kFileHeaderSize + kSectionEntrySize * i;
    const uint32_t id = DecodeU32(entry);
    const uint32_t crc = DecodeU32(entry + 4);
    const uint64_t offset = DecodeU64(entry + 8);
    const uint64_t size = DecodeU64(entry + 16);
    if (offset < table_end || offset > file.size() ||
        size > file.size() - offset) {
      return Status::InvalidArgument("snapshot section out of bounds");
    }
    const std::string_view body = file.substr(offset, size);
    if (Crc32(body) != crc) {
      return Status::Internal("snapshot section " + std::to_string(id) +
                              " failed its CRC check (corrupt file)");
    }
    if (!payloads.emplace(id, body).second) {
      return Status::InvalidArgument("snapshot has duplicate sections");
    }
  }
  for (uint32_t id :
       {kSectionMeta, kSectionTypes, kSectionEntities, kSectionProperties,
        kSectionOpinions}) {
    if (payloads.count(id) == 0) {
      return Status::InvalidArgument("snapshot missing required section " +
                                     std::to_string(id));
    }
  }

  // --- meta -------------------------------------------------------------
  {
    Cursor c(payloads[kSectionMeta]);
    uint64_t declared_opinions = 0, declared_blocks = 0;
    SURVEYOR_RETURN_IF_ERROR(c.ReadU64(&declared_opinions));
    SURVEYOR_RETURN_IF_ERROR(c.ReadU64(&declared_blocks));
    SURVEYOR_RETURN_IF_ERROR(c.ReadString(&label_));
    num_opinions_ = declared_opinions;
  }

  // --- string tables ----------------------------------------------------
  auto read_table = [](std::string_view body,
                       std::vector<std::string_view>* out) -> Status {
    Cursor c(body);
    uint32_t count = 0;
    SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&count));
    if (count > body.size()) {
      return Status::InvalidArgument("snapshot string table count too large");
    }
    out->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string_view s;
      SURVEYOR_RETURN_IF_ERROR(c.ReadString(&s));
      out->push_back(s);
    }
    return Status::OK();
  };
  SURVEYOR_RETURN_IF_ERROR(read_table(payloads[kSectionTypes], &types_));
  SURVEYOR_RETURN_IF_ERROR(
      read_table(payloads[kSectionProperties], &properties_));

  {
    Cursor c(payloads[kSectionEntities]);
    uint32_t count = 0;
    SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&count));
    if (count > payloads[kSectionEntities].size()) {
      return Status::InvalidArgument("snapshot entity count too large");
    }
    entities_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      EntityEntry entry;
      SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&entry.type));
      SURVEYOR_RETURN_IF_ERROR(c.ReadString(&entry.name));
      if (entry.type >= types_.size()) {
        return Status::InvalidArgument("snapshot entity references a type "
                                       "beyond the type table");
      }
      entities_.push_back(entry);
    }
  }

  // --- opinion blocks ---------------------------------------------------
  {
    const std::string_view body = payloads[kSectionOpinions];
    Cursor c(body);
    uint32_t block_count = 0, pad = 0;
    SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&block_count));
    SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&pad));
    if (block_count > body.size()) {
      return Status::InvalidArgument("snapshot block count too large");
    }
    blocks_.reserve(block_count);
    uint64_t total_records = 0;
    for (uint32_t i = 0; i < block_count; ++i) {
      BlockView block;
      uint32_t degraded = 0;
      SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&block.type_index));
      SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&block.property_index));
      SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&degraded));
      SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&block.record_count));
      uint64_t record_offset = 0;
      SURVEYOR_RETURN_IF_ERROR(c.ReadU64(&record_offset));
      block.degraded = degraded != 0;
      if (block.type_index >= types_.size() ||
          block.property_index >= properties_.size()) {
        return Status::InvalidArgument(
            "snapshot block references beyond its string tables");
      }
      if (record_offset > body.size() ||
          static_cast<uint64_t>(block.record_count) * kRecordSize >
              body.size() - record_offset) {
        return Status::InvalidArgument("snapshot block records out of bounds");
      }
      block.records = body.data() + record_offset;
      total_records += block.record_count;
      blocks_.push_back(block);
    }
    for (const BlockView& block : blocks_) {
      for (uint32_t i = 0; i < block.record_count; ++i) {
        const RecordView record = ReadRecord(block.records, i);
        if (record.entity_index >= entities_.size()) {
          return Status::InvalidArgument(
              "snapshot record references beyond the entity table");
        }
        if (record.polarity != Polarity::kPositive &&
            record.polarity != Polarity::kNegative) {
          return Status::InvalidArgument(
              "snapshot record has a non-decision polarity");
        }
      }
    }
    if (total_records != num_opinions_) {
      return Status::InvalidArgument(
          "snapshot meta/opinion count mismatch: meta says " +
          std::to_string(num_opinions_) + ", blocks hold " +
          std::to_string(total_records));
    }
  }

  // --- provenance (optional) -------------------------------------------
  if (payloads.count(kSectionProvenance) > 0) {
    Cursor c(payloads[kSectionProvenance]);
    uint32_t count = 0, pad = 0;
    SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&count));
    SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&pad));
    if (count > payloads[kSectionProvenance].size()) {
      return Status::InvalidArgument("snapshot provenance count too large");
    }
    provenance_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      ProvenanceEntry entry;
      uint32_t ref_count = 0;
      SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&entry.entity_index));
      SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&entry.property_index));
      SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&ref_count));
      SURVEYOR_RETURN_IF_ERROR(c.ReadU32(&pad));
      if (entry.entity_index >= entities_.size() ||
          entry.property_index >= properties_.size()) {
        return Status::InvalidArgument(
            "snapshot provenance references beyond its string tables");
      }
      if (ref_count > c.remaining() / kProvRefSize) {
        return Status::InvalidArgument("snapshot provenance truncated");
      }
      entry.refs.reserve(ref_count);
      for (uint32_t r = 0; r < ref_count; ++r) {
        std::string_view raw;
        SURVEYOR_RETURN_IF_ERROR(c.ReadBytes(kProvRefSize, &raw));
        StatementRef ref;
        ref.doc_id = static_cast<int64_t>(DecodeU64(raw.data()));
        ref.sentence_index = static_cast<int>(DecodeU32(raw.data() + 8));
        ref.positive = DecodeU32(raw.data() + 12) != 0;
        entry.refs.push_back(ref);
      }
      provenance_.push_back(std::move(entry));
    }
  }

  return Status::OK();
}

}  // namespace serving
}  // namespace surveyor
