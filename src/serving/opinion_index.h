#ifndef SURVEYOR_SERVING_OPINION_INDEX_H_
#define SURVEYOR_SERVING_OPINION_INDEX_H_

#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "extraction/aggregator.h"
#include "obs/metrics.h"
#include "serving/snapshot.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace surveyor {
namespace serving {

/// One answer of the query engine: an opinion with every name resolved and
/// the supporting-statement samples attached, ready to serialize.
struct ServedOpinion {
  std::string entity;
  std::string type;
  std::string property;
  double posterior = 0.5;
  Polarity polarity = Polarity::kNeutral;
  bool degraded = false;
  std::vector<StatementRef> provenance;
};

struct OpinionIndexOptions {
  /// Total cached answers across all shards (0 disables the cache).
  size_t cache_capacity = 4096;
  /// Independent LRU shards; each has its own mutex, so concurrent
  /// lookups only contend when they hash to the same shard.
  size_t cache_shards = 8;
  /// Cache/lookup counters land here; nullptr uses an index-local
  /// registry (still inspectable through metrics()).
  obs::MetricRegistry* metrics = nullptr;
  /// Bounded retries around the snapshot open, absorbing transient read
  /// failures (the "snapshot_read" fault point).
  RetryPolicy retry;
};

/// The complete post-Load state of one snapshot generation: the mapped
/// snapshot, every derived name index, and the answer cache. Immutable
/// once published (the cache shards are internally synchronized), shared
/// out by std::shared_ptr so in-flight queries pin the generation they
/// started on while a newer one swaps in — RCU with shared_ptr as the
/// grace period. The cache living *inside* the generation is what makes
/// a hot-swap safe: stale answers cannot outlive the snapshot they were
/// decoded from.
class LoadedGeneration {
 public:
  LoadedGeneration() = default;
  LoadedGeneration(const LoadedGeneration&) = delete;
  LoadedGeneration& operator=(const LoadedGeneration&) = delete;

  /// Generation id this state was loaded as (monotonic per index; the
  /// GenerationStore id when loaded through one).
  uint64_t id() const { return id_; }

  const Snapshot& snapshot() const { return snapshot_; }

  /// Seconds since this generation was swapped in (the /metrics age
  /// gauge; monotonic clock, immune to wall-clock steps).
  double AgeSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         loaded_at_)
        .count();
  }

 private:
  friend class OpinionIndex;

  struct RecordLoc {
    uint32_t block = 0;
    uint32_t record = 0;
  };

  /// One LRU shard: intrusive recency list + key map under one mutex.
  class CacheShard {
   public:
    bool Get(uint64_t key, ServedOpinion* out) const
        SURVEYOR_EXCLUDES(mutex_);
    /// Inserts (or refreshes) `value`; returns the number of evictions.
    size_t Put(uint64_t key, ServedOpinion value, size_t capacity)
        SURVEYOR_EXCLUDES(mutex_);
    size_t size() const SURVEYOR_EXCLUDES(mutex_);

   private:
    mutable Mutex mutex_;
    /// Front = most recently used.
    mutable std::list<uint64_t> lru_ SURVEYOR_GUARDED_BY(mutex_);
    std::unordered_map<uint64_t,
                       std::pair<ServedOpinion, std::list<uint64_t>::iterator>>
        entries_ SURVEYOR_GUARDED_BY(mutex_);
  };

  uint64_t id_ = 0;
  Snapshot snapshot_;
  /// lowercased name -> table index.
  std::unordered_map<std::string, uint32_t> entity_by_name_;
  std::unordered_map<std::string, uint32_t> property_by_name_;
  std::unordered_map<std::string, uint32_t> type_by_name_;
  /// (entity_index << 32 | property_index) -> record location.
  std::unordered_map<uint64_t, RecordLoc> records_by_pair_;
  /// Same key -> index into snapshot_.provenance().
  std::unordered_map<uint64_t, uint32_t> provenance_by_pair_;
  /// type index -> blocks of that type.
  std::vector<std::vector<uint32_t>> blocks_by_type_;
  /// Lowercased entity names, sorted, paired with their table index.
  std::vector<std::pair<std::string, uint32_t>> sorted_entities_;
  /// Per-shard LRUs; mutable because a read-through cache updates on
  /// const lookups.
  mutable std::vector<std::unique_ptr<CacheShard>> shards_;
  std::chrono::steady_clock::time_point loaded_at_;
};

/// A pinned generation: holding one keeps the snapshot mapping, indexes
/// and cache alive regardless of concurrent swaps.
using GenerationPtr = std::shared_ptr<const LoadedGeneration>;

/// The online half of Surveyor: loads opinion snapshot generations and
/// answers the paper's two query shapes — point lookups ("is this kitten
/// cute?") and type scans ("safe cities") — plus the prefix scan an
/// autocomplete box needs. Every query method is const, thread-safe, and
/// runs entirely against the generation it pins on entry, so answers are
/// internally consistent even while Load publishes a newer generation
/// with one pointer swap. A failed Load keeps the previous generation
/// serving and increments surveyor_generation_swap_failures_total. Name
/// matching is case-insensitive, like the knowledge base.
class OpinionIndex {
 public:
  explicit OpinionIndex(OpinionIndexOptions options = {});

  /// Opens `path` (with bounded retries on transient failures), builds
  /// the name indexes off to the side, and atomically swaps the new
  /// generation in as id generation_id() + 1. On failure the index keeps
  /// serving its previous generation, if any.
  Status Load(const std::string& path);

  /// Load with an explicit generation id (the GenerationStore id), so
  /// /statusz and the metrics report the store's numbering — including
  /// backwards for an explicit rollback.
  Status LoadGeneration(const std::string& path, uint64_t generation_id);

  /// The currently served generation (pinned — safe to use across
  /// concurrent swaps), or nullptr before the first successful Load.
  /// The pin is a shared_ptr copy under a tiny mutex rather than
  /// std::atomic<shared_ptr>: libstdc++'s _Sp_atomic reads its pointer
  /// word outside any release/acquire pairing (the spinlock unlocks
  /// relaxed on the load path), which ThreadSanitizer correctly flags,
  /// and this repo's TSan CI runs with halt_on_error. The mutex is
  /// uncontended except during a swap, and queries already take a
  /// per-shard cache mutex, so the pin is not the bottleneck.
  GenerationPtr generation() const SURVEYOR_EXCLUDES(current_mutex_) {
    MutexLock lock(current_mutex_);
    return current_;
  }

  /// True once a generation is serving. Atomic-clean: readable while
  /// Load runs.
  bool loaded() const { return generation() != nullptr; }

  /// Id of the serving generation; 0 before the first successful Load.
  uint64_t generation_id() const {
    const GenerationPtr generation = this->generation();
    return generation == nullptr ? 0 : generation->id();
  }

  /// The mined opinion for one (entity, property) pair. kNotFound both
  /// for an unknown entity and for a known entity with no opinion on the
  /// property — the same contract as OpinionStore::Lookup, so callers can
  /// treat the offline store and the online index interchangeably. The
  /// messages differ so operators can tell the two cases apart.
  StatusOr<ServedOpinion> Lookup(std::string_view entity,
                                 std::string_view property) const;

  /// One lookup per pair, preserving order; individual misses are
  /// per-entry kNotFound, never a whole-batch failure. The whole batch is
  /// answered from one pinned generation.
  std::vector<StatusOr<ServedOpinion>> BatchLookup(
      const std::vector<std::pair<std::string, std::string>>& pairs) const;

  /// Subjective query ("safe cities"): entities of `type` whose dominant
  /// opinion affirms `property`, strongest posterior first, at most
  /// `limit` results (0 = no limit). Mirrors OpinionStore::Query.
  std::vector<ServedOpinion> QueryType(std::string_view type,
                                       std::string_view property,
                                       size_t limit = 0) const;

  /// Entity names starting with `prefix` (case-insensitive), sorted, at
  /// most `limit` (0 = no limit). Names come back in snapshot casing.
  std::vector<std::string> PrefixScan(std::string_view prefix,
                                      size_t limit = 0) const;

  /// The registry holding the cache counters (the configured one, or the
  /// index-local fallback).
  obs::MetricRegistry& metrics() const { return *metrics_; }

 private:
  ServedOpinion Materialize(const LoadedGeneration& generation,
                            const LoadedGeneration::RecordLoc& loc) const;
  StatusOr<ServedOpinion> LookupIn(const LoadedGeneration& generation,
                                   std::string_view entity,
                                   std::string_view property) const;
  LoadedGeneration::CacheShard& ShardFor(const LoadedGeneration& generation,
                                         uint64_t key) const;

  OpinionIndexOptions options_;
  /// Fallback registry when options_.metrics is null.
  std::unique_ptr<obs::MetricRegistry> own_metrics_;
  obs::MetricRegistry* metrics_ = nullptr;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Counter* cache_evictions_ = nullptr;
  obs::Counter* lookups_ = nullptr;
  obs::Counter* not_found_ = nullptr;
  obs::Counter* swaps_ = nullptr;
  obs::Counter* swap_failures_ = nullptr;
  obs::Gauge* generation_gauge_ = nullptr;

  /// Serializes Load/LoadGeneration (reload handler vs SIGHUP loop);
  /// queries never touch it.
  Mutex load_mutex_;
  /// Guards only the pointer swap/pin below — never held while loading
  /// a snapshot or answering a query.
  mutable Mutex current_mutex_;
  /// The serving generation (RCU-style: queries pin a ref on entry and
  /// run lock-free against it; a swap replaces the pointer and the old
  /// generation frees when its last pin drops).
  GenerationPtr current_ SURVEYOR_GUARDED_BY(current_mutex_);
};

}  // namespace serving
}  // namespace surveyor

#endif  // SURVEYOR_SERVING_OPINION_INDEX_H_
