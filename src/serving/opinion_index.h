#ifndef SURVEYOR_SERVING_OPINION_INDEX_H_
#define SURVEYOR_SERVING_OPINION_INDEX_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "extraction/aggregator.h"
#include "obs/metrics.h"
#include "serving/snapshot.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace surveyor {
namespace serving {

/// One answer of the query engine: an opinion with every name resolved and
/// the supporting-statement samples attached, ready to serialize.
struct ServedOpinion {
  std::string entity;
  std::string type;
  std::string property;
  double posterior = 0.5;
  Polarity polarity = Polarity::kNeutral;
  bool degraded = false;
  std::vector<StatementRef> provenance;
};

struct OpinionIndexOptions {
  /// Total cached answers across all shards (0 disables the cache).
  size_t cache_capacity = 4096;
  /// Independent LRU shards; each has its own mutex, so concurrent
  /// lookups only contend when they hash to the same shard.
  size_t cache_shards = 8;
  /// Cache/lookup counters land here; nullptr uses an index-local
  /// registry (still inspectable through metrics()).
  obs::MetricRegistry* metrics = nullptr;
  /// Bounded retries around the snapshot open, absorbing transient read
  /// failures (the "snapshot_read" fault point).
  RetryPolicy retry;
};

/// The online half of Surveyor: loads an opinion snapshot and answers the
/// paper's two query shapes — point lookups ("is this kitten cute?") and
/// type scans ("safe cities") — plus the prefix scan an autocomplete box
/// needs. Immutable after Load; every query method is const and
/// thread-safe, with a sharded read-through LRU in front of record
/// decoding. Name matching is case-insensitive, like the knowledge base.
class OpinionIndex {
 public:
  explicit OpinionIndex(OpinionIndexOptions options = {});

  /// Opens `path` (with bounded retries on transient failures) and builds
  /// the name indexes. On failure the index keeps serving its previous
  /// snapshot, if any.
  Status Load(const std::string& path);

  bool loaded() const { return loaded_; }
  const Snapshot& snapshot() const { return snapshot_; }

  /// The mined opinion for one (entity, property) pair. kNotFound both
  /// for an unknown entity and for a known entity with no opinion on the
  /// property — the same contract as OpinionStore::Lookup, so callers can
  /// treat the offline store and the online index interchangeably. The
  /// messages differ so operators can tell the two cases apart.
  StatusOr<ServedOpinion> Lookup(std::string_view entity,
                                 std::string_view property) const;

  /// One Lookup per pair, preserving order; individual misses are
  /// per-entry kNotFound, never a whole-batch failure.
  std::vector<StatusOr<ServedOpinion>> BatchLookup(
      const std::vector<std::pair<std::string, std::string>>& pairs) const;

  /// Subjective query ("safe cities"): entities of `type` whose dominant
  /// opinion affirms `property`, strongest posterior first, at most
  /// `limit` results (0 = no limit). Mirrors OpinionStore::Query.
  std::vector<ServedOpinion> QueryType(std::string_view type,
                                       std::string_view property,
                                       size_t limit = 0) const;

  /// Entity names starting with `prefix` (case-insensitive), sorted, at
  /// most `limit` (0 = no limit). Names come back in snapshot casing.
  std::vector<std::string> PrefixScan(std::string_view prefix,
                                      size_t limit = 0) const;

  /// The registry holding the cache counters (the configured one, or the
  /// index-local fallback).
  obs::MetricRegistry& metrics() const { return *metrics_; }

 private:
  /// One LRU shard: intrusive recency list + key map under one mutex.
  class CacheShard {
   public:
    bool Get(uint64_t key, ServedOpinion* out) const
        SURVEYOR_EXCLUDES(mutex_);
    /// Inserts (or refreshes) `value`; returns the number of evictions.
    size_t Put(uint64_t key, ServedOpinion value, size_t capacity)
        SURVEYOR_EXCLUDES(mutex_);
    size_t size() const SURVEYOR_EXCLUDES(mutex_);

   private:
    mutable Mutex mutex_;
    /// Front = most recently used.
    mutable std::list<uint64_t> lru_ SURVEYOR_GUARDED_BY(mutex_);
    std::unordered_map<uint64_t,
                       std::pair<ServedOpinion, std::list<uint64_t>::iterator>>
        entries_ SURVEYOR_GUARDED_BY(mutex_);
  };

  struct RecordLoc {
    uint32_t block = 0;
    uint32_t record = 0;
  };

  ServedOpinion Materialize(const RecordLoc& loc) const;
  CacheShard& ShardFor(uint64_t key) const;

  OpinionIndexOptions options_;
  /// Fallback registry when options_.metrics is null.
  std::unique_ptr<obs::MetricRegistry> own_metrics_;
  obs::MetricRegistry* metrics_ = nullptr;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Counter* cache_evictions_ = nullptr;
  obs::Counter* lookups_ = nullptr;
  obs::Counter* not_found_ = nullptr;

  bool loaded_ = false;
  Snapshot snapshot_;
  /// lowercased name -> table index.
  std::unordered_map<std::string, uint32_t> entity_by_name_;
  std::unordered_map<std::string, uint32_t> property_by_name_;
  std::unordered_map<std::string, uint32_t> type_by_name_;
  /// (entity_index << 32 | property_index) -> record location.
  std::unordered_map<uint64_t, RecordLoc> records_by_pair_;
  /// Same key -> index into snapshot_.provenance().
  std::unordered_map<uint64_t, uint32_t> provenance_by_pair_;
  /// type index -> blocks of that type.
  std::vector<std::vector<uint32_t>> blocks_by_type_;
  /// Lowercased entity names, sorted, paired with their table index.
  std::vector<std::pair<std::string, uint32_t>> sorted_entities_;

  /// Per-shard LRUs; mutable because a read-through cache updates on
  /// const lookups.
  mutable std::vector<std::unique_ptr<CacheShard>> shards_;
};

}  // namespace serving
}  // namespace surveyor

#endif  // SURVEYOR_SERVING_OPINION_INDEX_H_
