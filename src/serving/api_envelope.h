#ifndef SURVEYOR_SERVING_API_ENVELOPE_H_
#define SURVEYOR_SERVING_API_ENVELOPE_H_

#include <string>
#include <string_view>

#include "obs/admin_server.h"

namespace surveyor {
namespace serving {

/// The /v1 response envelope (DESIGN.md §15). Every versioned endpoint —
/// and every legacy shim, which must answer identically — speaks exactly
/// two shapes:
///
///   success:  {"data": <endpoint-specific JSON value>}
///   failure:  {"error": {"code": "<stable-slug>", "message": "<human>"}}
///
/// `code` is the machine-readable contract (clients switch on it);
/// `message` is free-form and may change between releases. Both shapes
/// are application/json regardless of status.

/// Stable error-code slug for an HTTP status ("not_found", "overloaded",
/// ...). Unmapped statuses collapse to "internal".
std::string_view ApiErrorCode(int status);

/// A failure envelope carrying `status` and the code derived from it.
obs::AdminResponse ApiError(int status, std::string_view message);

/// A failure envelope with an explicit code (when one status spans
/// several client-distinguishable causes).
obs::AdminResponse ApiError(int status, std::string_view code,
                            std::string_view message);

/// Serialized {"error":{...}} JSON object (no trailing newline) for
/// embedding inside a larger document — the per-entry error shape in
/// /v1/query/batch results.
std::string ApiErrorJson(int status, std::string_view message);

/// A success envelope: wraps an already-serialized JSON value as
/// {"data": value}. The value must be exactly one JSON value (object,
/// array, or scalar), e.g. a JsonWriter's str().
obs::AdminResponse ApiData(std::string_view json_value);

/// Stamps a legacy-path response as a one-PR deprecation shim:
/// `Deprecation: true` plus a successor-version Link so clients can
/// discover the /v1 path mechanically. The body is untouched — shims
/// answer byte-identically to their successors.
void MarkDeprecated(obs::AdminResponse* response,
                    std::string_view successor_path);

}  // namespace serving
}  // namespace surveyor

#endif  // SURVEYOR_SERVING_API_ENVELOPE_H_
