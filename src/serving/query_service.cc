#include "serving/query_service.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "obs/json_writer.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "model/opinion.h"
#include "serving/api_envelope.h"
#include "util/profile_tag.h"

namespace surveyor {
namespace serving {
namespace {

/// Decodes %XX and '+' in a URL query component.
std::string UrlDecode(std::string_view text) {
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out.push_back(' ');
    } else if (text[i] == '%' && i + 2 < text.size() &&
               hex(text[i + 1]) >= 0 && hex(text[i + 2]) >= 0) {
      out.push_back(
          static_cast<char>(hex(text[i + 1]) * 16 + hex(text[i + 2])));
      i += 2;
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

std::map<std::string, std::string> ParseQueryParams(std::string_view target) {
  std::map<std::string, std::string> params;
  const size_t query = target.find('?');
  if (query == std::string_view::npos) return params;
  std::string_view rest = target.substr(query + 1);
  while (!rest.empty()) {
    const size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (!pair.empty()) params[UrlDecode(pair)] = "";
    } else {
      params[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
  }
  return params;
}

void WriteOpinion(obs::JsonWriter* writer, const ServedOpinion& opinion) {
  writer->BeginObject()
      .Key("entity")
      .Value(opinion.entity)
      .Key("type")
      .Value(opinion.type)
      .Key("property")
      .Value(opinion.property)
      .Key("posterior")
      .Value(opinion.posterior)
      .Key("polarity")
      .Value(PolarityName(opinion.polarity))
      .Key("degraded")
      .Value(opinion.degraded);
  if (!opinion.provenance.empty()) {
    writer->Key("provenance").BeginArray();
    for (const StatementRef& ref : opinion.provenance) {
      writer->BeginObject()
          .Key("doc_id")
          .Value(ref.doc_id)
          .Key("sentence")
          .Value(ref.sentence_index)
          .Key("positive")
          .Value(ref.positive)
          .EndObject();
    }
    writer->EndArray();
  }
  writer->EndObject();
}

/// Strict scanner for the one JSON shape /query/batch accepts:
/// {"queries":[{"entity":"..","property":".."}, ...]}. Unknown string
/// keys inside a query object are ignored; anything else is a parse
/// error — a query API should reject what it would silently drop.
class BatchParser {
 public:
  explicit BatchParser(std::string_view text) : text_(text) {}

  bool Parse(std::vector<std::pair<std::string, std::string>>* out) {
    SkipWs();
    if (!Consume('{')) return false;
    SkipWs();
    std::string key;
    if (!ParseString(&key) || key != "queries") return false;
    SkipWs();
    if (!Consume(':')) return false;
    SkipWs();
    if (!Consume('[')) return false;
    SkipWs();
    if (!Consume(']')) {
      for (;;) {
        std::string entity, property;
        if (!ParseQueryObject(&entity, &property)) return false;
        out->emplace_back(std::move(entity), std::move(property));
        SkipWs();
        if (Consume(',')) {
          SkipWs();
          continue;
        }
        if (Consume(']')) break;
        return false;
      }
    }
    SkipWs();
    if (!Consume('}')) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          default: return false;  // \uXXXX et al.: not needed for names
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  bool ParseQueryObject(std::string* entity, std::string* property) {
    SkipWs();
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;  // empty object -> empty names -> 404s
    for (;;) {
      std::string key, value;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (!ParseString(&value)) return false;
      if (key == "entity") *entity = std::move(value);
      if (key == "property") *property = std::move(value);
      SkipWs();
      if (Consume(',')) {
        SkipWs();
        continue;
      }
      return Consume('}');
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

size_t ParseLimit(const std::map<std::string, std::string>& params,
                  size_t fallback) {
  auto it = params.find("limit");
  if (it == params.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  if (end != it->second.c_str() + it->second.size() || value <= 0) {
    return fallback;
  }
  return std::min(fallback, static_cast<size_t>(value));
}

}  // namespace

QueryService::QueryService(const OpinionIndex* index,
                           const obs::StageTracker* stage,
                           obs::MetricRegistry* metrics,
                           QueryServiceOptions options)
    : index_(index),
      stage_(stage),
      metrics_(metrics != nullptr ? metrics : &index->metrics()),
      options_(options) {
  // Query latencies are cache hits in the microseconds; start the buckets
  // at 1us and cover up to ~65ms before the overflow bucket.
  latency_ = metrics_->GetHistogram(
      "surveyor_query_latency_seconds",
      obs::HistogramOptions{/*first_bound=*/1e-6, /*growth=*/2.0,
                            /*num_finite_buckets=*/17});
  requests_ = metrics_->GetCounter("surveyor_query_requests_total");
  rejected_ = metrics_->GetCounter("surveyor_query_rejected_total");
  metrics_->SetHelp("surveyor_query_latency_seconds",
                    "End-to-end /query handling latency");
  metrics_->SetHelp("surveyor_query_rejected_total",
                    "Queries refused before lookup (not ready, bad request)");
}

void QueryService::Register(obs::AdminServer* server) {
  const auto handler = [this](std::string_view method,
                              std::string_view target,
                              std::string_view body) {
    return Handle(method, target, body);
  };
  server->AddHandler("/v1/query", handler);
  // One-PR deprecation shim: the legacy paths answer identically (same
  // envelope, same status) plus a Deprecation header.
  server->AddHandler("/query", handler);
}

obs::AdminResponse QueryService::Handle(std::string_view method,
                                        std::string_view target,
                                        std::string_view body) const {
  const auto start = std::chrono::steady_clock::now();
  requests_->Increment();
  const size_t query_pos = target.find('?');
  const std::string_view path = query_pos == std::string_view::npos
                                    ? target
                                    : target.substr(0, query_pos);
  // Legacy /query* paths normalize onto the /v1 surface and answer
  // identically, plus the deprecation stamp. Unknown subpaths stay
  // unmapped so they 404 on either surface.
  const bool legacy = path.substr(0, 6) == "/query";
  std::string_view canonical = path;
  if (path == "/query") {
    canonical = "/v1/query";
  } else if (path == "/query/batch") {
    canonical = "/v1/query/batch";
  }

  obs::AdminResponse response;
  if (stage_ != nullptr && !stage_->ready()) {
    rejected_->Increment();
    response = ApiError(
        503, "index not ready (stage " +
                 std::string(obs::PipelineStageName(stage_->stage())) + ")");
    response.headers.emplace_back("Retry-After", "1");
  } else if (canonical == "/v1/query/batch") {
    response = HandleBatch(method, body);
  } else if (canonical == "/v1/query") {
    response = HandleQuery(method, target);
  } else {
    rejected_->Increment();
    response = ApiError(404, "unknown query endpoint");
  }
  if (legacy) {
    MarkDeprecated(&response, canonical != path ? canonical
                                                : std::string_view("/v1/query"));
  }
  // The exemplar links the latency bucket to this request's trace on
  // /tracez; only head-sampled requests qualify, so every exemplar id on
  // /metrics resolves to a retained trace.
  latency_->Record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count(),
      obs::CurrentSampledTraceId());
  return response;
}

obs::AdminResponse QueryService::HandleQuery(std::string_view method,
                                             std::string_view target) const {
  SURVEYOR_PROFILE_SCOPE("query");
  if (method != "GET" && method != "HEAD") {
    rejected_->Increment();
    return ApiError(405,
                    "/v1/query is GET-only; POST /v1/query/batch instead");
  }
  const auto params = ParseQueryParams(target);
  const auto has = [&params](const char* name) {
    auto it = params.find(name);
    return it != params.end() && !it->second.empty();
  };

  if (has("entity") && has("property")) {
    SURVEYOR_SPAN("query_service.point");
    const StatusOr<ServedOpinion> result =
        index_->Lookup(params.at("entity"), params.at("property"));
    if (!result.ok()) {
      const int status =
          result.status().code() == StatusCode::kNotFound ? 404 : 500;
      rejected_->Increment();
      return ApiError(status, result.status().message());
    }
    obs::JsonWriter writer;
    WriteOpinion(&writer, *result);
    return ApiData(writer.str());
  }

  if (has("type") && has("property")) {
    SURVEYOR_SPAN("query_service.type_scan");
    const std::vector<ServedOpinion> results =
        index_->QueryType(params.at("type"), params.at("property"),
                          ParseLimit(params, options_.max_results));
    obs::JsonWriter writer;
    writer.BeginObject().Key("results").BeginArray();
    for (const ServedOpinion& opinion : results) WriteOpinion(&writer, opinion);
    writer.EndArray().EndObject();
    return ApiData(writer.str());
  }

  if (has("prefix")) {
    SURVEYOR_SPAN("query_service.prefix");
    const std::vector<std::string> names = index_->PrefixScan(
        params.at("prefix"), ParseLimit(params, options_.max_results));
    obs::JsonWriter writer;
    writer.BeginObject().Key("entities").BeginArray();
    for (const std::string& name : names) writer.Value(name);
    writer.EndArray().EndObject();
    return ApiData(writer.str());
  }

  rejected_->Increment();
  return ApiError(400,
                  "need entity=&property=, type=&property=, or prefix=");
}

obs::AdminResponse QueryService::HandleBatch(std::string_view method,
                                             std::string_view body) const {
  SURVEYOR_PROFILE_SCOPE("query");
  // Method and parse failures go through the same ApiError path as every
  // other endpoint — no hand-rolled error bodies that could drift from
  // the envelope.
  if (method != "POST") {
    rejected_->Increment();
    return ApiError(405, "/v1/query/batch is POST-only");
  }
  std::vector<std::pair<std::string, std::string>> queries;
  if (!BatchParser(body).Parse(&queries)) {
    rejected_->Increment();
    return ApiError(400,
                    "body must be {\"queries\":[{\"entity\":..,"
                    "\"property\":..},..]}");
  }
  if (queries.size() > options_.max_batch) {
    rejected_->Increment();
    return ApiError(400, "batch too large (max " +
                             std::to_string(options_.max_batch) + ")");
  }
  SURVEYOR_SPAN("query_service.batch");
  const std::vector<StatusOr<ServedOpinion>> results =
      index_->BatchLookup(queries);
  obs::JsonWriter writer;
  writer.BeginObject().Key("results").BeginArray();
  for (const StatusOr<ServedOpinion>& result : results) {
    if (result.ok()) {
      WriteOpinion(&writer, *result);
    } else {
      // Per-entry misses reuse the envelope's error object so batch
      // entries parse exactly like top-level failures.
      const int status =
          result.status().code() == StatusCode::kNotFound ? 404 : 500;
      writer.RawValue(ApiErrorJson(status, result.status().message()));
    }
  }
  writer.EndArray().EndObject();
  return ApiData(writer.str());
}

}  // namespace serving
}  // namespace surveyor
