#include "serving/generation_store.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/trace.h"
#include "serving/snapshot.h"
#include "util/crc32.h"
#include "util/durable_file.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace surveyor {
namespace serving {
namespace {

namespace fs = std::filesystem;

constexpr char kManifestMagic[] = "SURVGEN 1";
constexpr char kSnapshotFileName[] = "snapshot.surv";

/// Parses a full unsigned decimal; false on junk, empty, or overflow-ish
/// input (a manifest is trusted only after its CRC, but parse strictly
/// anyway).
bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 19) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

GenerationStore::GenerationStore(std::string root,
                                 GenerationStoreOptions options)
    : root_(std::move(root)), options_(options) {
  if (options_.retain == 0) options_.retain = 1;
  if (options_.metrics != nullptr) {
    obs::MetricRegistry* metrics = options_.metrics;
    published_ = metrics->GetCounter("surveyor_generation_published_total");
    publish_failures_ =
        metrics->GetCounter("surveyor_generation_publish_failures_total");
    pruned_ = metrics->GetCounter("surveyor_generation_pruned_total");
    latest_gauge_ = metrics->GetGauge("surveyor_generation_latest");
    retained_gauge_ = metrics->GetGauge("surveyor_generations_retained");
    metrics->SetHelp("surveyor_generation_published_total",
                     "Snapshot generations committed to the manifest");
    metrics->SetHelp("surveyor_generation_publish_failures_total",
                     "Publishes that failed before commit (store unchanged)");
    metrics->SetHelp("surveyor_generation_pruned_total",
                     "Old generations removed by retention");
    metrics->SetHelp("surveyor_generation_latest",
                     "Latest committed generation id (0 = empty store)");
    metrics->SetHelp("surveyor_generations_retained",
                     "Generations currently on disk per the manifest");
  }
}

std::string GenerationStore::GenerationDir(uint64_t id) const {
  return root_ + "/" + StrFormat("gen-%06llu",
                                 static_cast<unsigned long long>(id));
}

std::string GenerationStore::ManifestPath() const {
  return root_ + "/MANIFEST";
}

std::string GenerationStore::SnapshotPath(uint64_t id) const {
  return GenerationDir(id) + "/" + kSnapshotFileName;
}

std::string GenerationStore::RenderManifest(
    const std::vector<uint64_t>& ids) {
  std::string text = std::string(kManifestMagic) + "\n";
  text += "latest " +
          std::to_string(ids.empty() ? 0 : ids.back()) + "\n";
  for (uint64_t id : ids) {
    text += "generation " + std::to_string(id) + "\n";
  }
  text += StrFormat("crc32 %08x\n", Crc32(text));
  return text;
}

Status GenerationStore::ParseManifest(std::string_view text,
                                      std::vector<uint64_t>* ids) {
  // The CRC footer covers every byte before its own line; a manifest is
  // only ever replaced whole (write-temp -> fsync -> rename), so a CRC
  // mismatch means bit rot or tampering, not a torn write.
  const size_t crc_line = text.rfind("crc32 ");
  if (crc_line == std::string_view::npos ||
      (crc_line != 0 && text[crc_line - 1] != '\n')) {
    return Status::Internal("generation manifest has no CRC footer");
  }
  std::string_view crc_text = text.substr(crc_line + 6);
  while (!crc_text.empty() &&
         (crc_text.back() == '\n' || crc_text.back() == '\r')) {
    crc_text.remove_suffix(1);
  }
  uint32_t declared = 0;
  if (crc_text.size() != 8) {
    return Status::Internal("generation manifest CRC footer malformed");
  }
  for (char c : crc_text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return Status::Internal("generation manifest CRC footer malformed");
    }
    declared = declared * 16 + static_cast<uint32_t>(digit);
  }
  if (Crc32(text.substr(0, crc_line)) != declared) {
    return Status::Internal(
        "generation manifest failed its CRC check (corrupt file)");
  }

  std::istringstream lines{std::string(text.substr(0, crc_line))};
  std::string line;
  if (!std::getline(lines, line) || line != kManifestMagic) {
    return Status::Internal("generation manifest has a bad header");
  }
  if (!std::getline(lines, line) || line.rfind("latest ", 0) != 0) {
    return Status::Internal("generation manifest missing 'latest'");
  }
  uint64_t latest = 0;
  if (!ParseU64(std::string_view(line).substr(7), &latest)) {
    return Status::Internal("generation manifest 'latest' malformed");
  }
  ids->clear();
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("generation ", 0) != 0) {
      return Status::Internal("generation manifest has an unknown line");
    }
    uint64_t id = 0;
    if (!ParseU64(std::string_view(line).substr(11), &id) || id == 0) {
      return Status::Internal("generation manifest id malformed");
    }
    if (!ids->empty() && id <= ids->back()) {
      return Status::Internal("generation manifest ids not ascending");
    }
    ids->push_back(id);
  }
  if ((ids->empty() && latest != 0) ||
      (!ids->empty() && latest != ids->back())) {
    return Status::Internal(
        "generation manifest 'latest' disagrees with its generation list");
  }
  return Status::OK();
}

Status GenerationStore::LoadManifest() {
  const std::string path = ManifestPath();
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    generations_.clear();
    return Status::OK();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Internal("cannot read '" + path + "'");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::vector<uint64_t> ids;
  SURVEYOR_RETURN_IF_ERROR(ParseManifest(text, &ids));
  // Every committed generation must be servable: the snapshot rename and
  // its fsyncs happen strictly before the manifest commit, so a listed
  // generation with no snapshot file means outside interference.
  for (uint64_t id : ids) {
    if (!fs::exists(SnapshotPath(id), ec)) {
      return Status::Internal("generation manifest lists generation " +
                              std::to_string(id) +
                              " but its snapshot file is missing");
    }
  }
  generations_ = std::move(ids);
  return Status::OK();
}

void GenerationStore::SweepOrphans() {
  std::error_code ec;
  std::vector<fs::path> doomed;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(".tmp-", 0) == 0 ||
        (name.rfind("MANIFEST.tmp", 0) == 0)) {
      doomed.push_back(entry.path());
      continue;
    }
    if (name.rfind("gen-", 0) == 0) {
      uint64_t id = 0;
      const bool listed =
          ParseU64(std::string_view(name).substr(4), &id) &&
          std::find(generations_.begin(), generations_.end(), id) !=
              generations_.end();
      // An unlisted gen-<N> directory is the corpse of a publish that
      // died between the directory rename and the manifest commit. It
      // was never visible to readers; remove it so the id can be reused.
      if (!listed) doomed.push_back(entry.path());
    }
  }
  for (const fs::path& path : doomed) {
    fs::remove_all(path, ec);
    if (ec) {
      SURVEYOR_LOG(Warning) << "generation store: cannot sweep orphan '"
                            << path.string() << "': " << ec.message();
    }
  }
}

Status GenerationStore::Open() {
  SURVEYOR_SPAN("generation_store.open");
  MutexLock lock(mutex_);
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    return Status::Internal("cannot create generation root '" + root_ +
                            "': " + ec.message());
  }
  SURVEYOR_RETURN_IF_ERROR(LoadManifest());
  SweepOrphans();
  opened_ = true;
  if (latest_gauge_ != nullptr) {
    latest_gauge_->Set(static_cast<double>(
        generations_.empty() ? 0 : generations_.back()));
    retained_gauge_->Set(static_cast<double>(generations_.size()));
  }
  return Status::OK();
}

Status GenerationStore::Refresh() {
  MutexLock lock(mutex_);
  if (!opened_) return Status::FailedPrecondition("store not opened");
  return LoadManifest();
}

StatusOr<uint64_t> GenerationStore::PublishFile(
    const std::string& source_path) {
  std::ifstream in(source_path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot read snapshot '" + source_path + "'");
  }
  std::string image((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return PublishImage(image);
}

StatusOr<uint64_t> GenerationStore::PublishImage(std::string_view image) {
  SURVEYOR_SPAN("generation_store.publish");
  MutexLock lock(mutex_);
  if (!opened_) return Status::FailedPrecondition("store not opened");

  std::error_code ec;
  const uint64_t id = (generations_.empty() ? 0 : generations_.back()) + 1;
  const std::string tmp_dir =
      root_ + "/" + StrFormat(".tmp-gen-%06llu",
                              static_cast<unsigned long long>(id));
  // Everything before the manifest commit is invisible to readers; on any
  // failure undo the scratch state so the store is exactly as before.
  auto fail = [&](Status status) -> StatusOr<uint64_t> {
    std::error_code cleanup_ec;
    fs::remove_all(tmp_dir, cleanup_ec);
    fs::remove_all(GenerationDir(id), cleanup_ec);
    if (publish_failures_ != nullptr) publish_failures_->Increment();
    return status;
  };

  // Fault point #1: death before any byte is written.
  if (SURVEYOR_FAULT("generation_publish")) {
    return fail(Status::Internal(
        "injected fault at generation_publish (before snapshot write)"));
  }

  fs::remove_all(tmp_dir, ec);
  fs::create_directories(tmp_dir, ec);
  if (ec) {
    return fail(Status::Internal("cannot create '" + tmp_dir +
                                 "': " + ec.message()));
  }
  const std::string tmp_snapshot =
      tmp_dir + "/" + kSnapshotFileName;
  const Status written = WriteFileDurable(tmp_snapshot, image);
  if (!written.ok()) return fail(written);

  // Validate before publication: a corrupt image (torn upstream file,
  // version skew) must be rejected here, not discovered by the first
  // query after a swap.
  {
    Snapshot probe;
    const Status opened = probe.Open(tmp_snapshot);
    if (!opened.ok()) {
      return fail(Status::Internal("snapshot image failed validation: " +
                                   std::string(opened.message())));
    }
  }

  // Fault point #2: death after the bytes are durable but before the
  // generation becomes nameable.
  if (SURVEYOR_FAULT("generation_publish")) {
    return fail(Status::Internal(
        "injected fault at generation_publish (before generation rename)"));
  }

  // A pre-existing gen-<id> directory is an orphan of a publish that died
  // before its manifest commit (same id, never visible); replace it.
  fs::remove_all(GenerationDir(id), ec);
  {
    const Status renamed = RenamePath(tmp_dir, GenerationDir(id));
    if (!renamed.ok()) return fail(renamed);
    const Status synced = SyncDir(root_);
    if (!synced.ok()) return fail(synced);
  }

  std::vector<uint64_t> retained = generations_;
  retained.push_back(id);
  std::vector<uint64_t> dropped;
  while (retained.size() > options_.retain) {
    dropped.push_back(retained.front());
    retained.erase(retained.begin());
  }

  // Fault point #3: death between the generation rename and the manifest
  // commit — the classic torn-publish window. The previous manifest is
  // still intact; gen-<id> is an orphan the next Open sweeps.
  if (SURVEYOR_FAULT("generation_manifest")) {
    return fail(Status::Internal(
        "injected fault at generation_manifest (before manifest commit)"));
  }

  const Status committed =
      WriteFileDurable(ManifestPath(), RenderManifest(retained));
  if (!committed.ok()) return fail(committed);

  // Committed. Retention pruning happens strictly after: a crash here
  // leaves unlisted gen dirs, which Open sweeps.
  generations_ = std::move(retained);
  for (uint64_t old : dropped) {
    fs::remove_all(GenerationDir(old), ec);
    if (pruned_ != nullptr) pruned_->Increment();
  }
  if (published_ != nullptr) published_->Increment();
  if (latest_gauge_ != nullptr) {
    latest_gauge_->Set(static_cast<double>(id));
    retained_gauge_->Set(static_cast<double>(generations_.size()));
  }
  return id;
}

uint64_t GenerationStore::latest() const {
  MutexLock lock(mutex_);
  return generations_.empty() ? 0 : generations_.back();
}

std::vector<uint64_t> GenerationStore::generations() const {
  MutexLock lock(mutex_);
  return generations_;
}

bool GenerationStore::Contains(uint64_t id) const {
  MutexLock lock(mutex_);
  return std::find(generations_.begin(), generations_.end(), id) !=
         generations_.end();
}

}  // namespace serving
}  // namespace surveyor
