#ifndef SURVEYOR_SERVING_RELOAD_SERVICE_H_
#define SURVEYOR_SERVING_RELOAD_SERVICE_H_

#include <cstdint>
#include <string_view>

#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "serving/generation_store.h"
#include "serving/opinion_index.h"
#include "util/status.h"

namespace surveyor {
namespace serving {

/// The operator face of snapshot generations, wiring a GenerationStore to
/// a live OpinionIndex on the admin plane:
///
///   POST /v1/admin/reload                hot-swap to the newest committed
///                                        generation (refreshes the
///                                        manifest first, so it picks up a
///                                        publish by another process)
///   POST /v1/admin/reload?generation=N   hot-swap to a specific committed
///                                        generation — rollback
///
/// Responses use the /v1 envelope (serving/api_envelope.h). The legacy
/// /reloadz path stays mounted as a deprecation shim: identical body,
/// plus Deprecation/Link headers pointing at /v1/admin/reload.
///
/// Register() also mounts a "generation" section on /statusz (serving id,
/// age, the store's rollback menu) and a scrape-time hook keeping the
/// surveyor_generation_age_seconds gauge fresh on /metrics. Reload
/// requests force-sample their trace, so every swap leaves its span tree
/// on /tracez regardless of the sampling rate.
///
/// A failed reload (corrupt generation, injected fault) leaves the index
/// serving its previous generation; the failure is the HTTP status, the
/// surveyor_reload_failures_total counter, and the index's own
/// swap-failure counter.
class ReloadService {
 public:
  /// `store` and `index` must outlive the service. The store should
  /// already be Open()ed. `metrics` may be null (the index's registry is
  /// used).
  ReloadService(GenerationStore* store, OpinionIndex* index,
                obs::MetricRegistry* metrics);

  /// Mounts /v1/admin/reload (and the /reloadz shim), the /statusz
  /// section and the /metrics age hook. Call before server->Start().
  void Register(obs::AdminServer* server);

  /// Pure request handling, exposed for tests. `target` decides shim
  /// treatment: a /reloadz target gets the Deprecation headers.
  obs::AdminResponse Handle(std::string_view method, std::string_view target,
                            std::string_view body) const;

  /// Refreshes the manifest and hot-swaps to the newest committed
  /// generation; OK without swapping when already serving it (or when the
  /// store is still empty). The SIGHUP path.
  Status ReloadLatest() const;

  /// Hot-swaps to a specific committed generation (NotFound when the
  /// store does not hold it).
  Status ReloadGeneration(uint64_t id) const;

  /// Writes the /statusz "generation" section.
  void WriteStatus(obs::JsonWriter& writer) const;

  /// Refreshes the generation id/age gauges (the /metrics scrape hook).
  void UpdateGauges() const;

 private:
  /// Path-agnostic reload handling; Handle() wraps it with shim headers.
  obs::AdminResponse HandleReload(std::string_view method,
                                  std::string_view target) const;

  GenerationStore* store_;
  OpinionIndex* index_;
  obs::MetricRegistry* metrics_;
  obs::Counter* reloads_ = nullptr;
  obs::Counter* reload_failures_ = nullptr;
  obs::Gauge* age_gauge_ = nullptr;
};

}  // namespace serving
}  // namespace surveyor

#endif  // SURVEYOR_SERVING_RELOAD_SERVICE_H_
