#ifndef SURVEYOR_SERVING_QUERY_SERVICE_H_
#define SURVEYOR_SERVING_QUERY_SERVICE_H_

#include <string>
#include <string_view>

#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "obs/stage.h"
#include "serving/opinion_index.h"

namespace surveyor {
namespace serving {

struct QueryServiceOptions {
  /// Largest accepted /v1/query/batch request.
  size_t max_batch = 256;
  /// Result cap for type scans and prefix scans when the request does not
  /// pass its own (smaller) limit.
  size_t max_results = 100;
};

/// The HTTP face of the opinion index, mounted on the admin server so one
/// embedded plane serves both operators (/metrics, /statusz) and the
/// paper's end users (Section 1's subjective search):
///
///   GET  /v1/query?entity=E&property=P   one opinion (404 when Surveyor
///                                        mined nothing for the pair)
///   GET  /v1/query?type=T&property=P     "safe cities": affirming
///                                        entities of the type,
///                                        strongest first
///   GET  /v1/query?prefix=S              entity-name autocomplete
///   POST /v1/query/batch                 {"queries":[{"entity":..,
///                                        "property":..},..]} answered
///                                        per-entry in request order
///
/// Responses use the /v1 envelope (serving/api_envelope.h): {"data":...}
/// on success, {"error":{"code","message"}} on failure. The legacy /query
/// and /query/batch paths stay mounted as deprecation shims — identical
/// body and status, plus Deprecation/Link headers naming the successor.
///
/// Requests are refused with 503 until the stage tracker reports ready,
/// so a process that is still mining (serve --after-mine setups) never
/// answers from a half-built index. Every request lands in the
/// surveyor_query_latency_seconds histogram.
class QueryService {
 public:
  /// `index` must outlive the service. `stage` may be null (always
  /// ready). `metrics` may be null (the index's registry is used).
  QueryService(const OpinionIndex* index, const obs::StageTracker* stage,
               obs::MetricRegistry* metrics,
               QueryServiceOptions options = {});

  /// Mounts /v1/query (and the legacy /query shim). Call before
  /// server->Start().
  void Register(obs::AdminServer* server);

  /// Pure request handling, exposed for tests (the transport-free analog
  /// of AdminServer::Handle).
  obs::AdminResponse Handle(std::string_view method, std::string_view target,
                            std::string_view body) const;

 private:
  obs::AdminResponse HandleQuery(std::string_view method,
                                 std::string_view target) const;
  obs::AdminResponse HandleBatch(std::string_view method,
                                 std::string_view body) const;

  const OpinionIndex* index_;
  const obs::StageTracker* stage_;
  obs::MetricRegistry* metrics_;
  QueryServiceOptions options_;
  obs::Histogram* latency_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* rejected_ = nullptr;
};

}  // namespace serving
}  // namespace surveyor

#endif  // SURVEYOR_SERVING_QUERY_SERVICE_H_
