#include "serving/api_envelope.h"

#include "obs/json_writer.h"

namespace surveyor {
namespace serving {

std::string_view ApiErrorCode(int status) {
  switch (status) {
    case 400:
      return "invalid_argument";
    case 404:
      return "not_found";
    case 405:
      return "method_not_allowed";
    case 408:
      return "timeout";
    case 409:
      return "conflict";
    case 413:
      return "payload_too_large";
    case 429:
      return "overloaded";
    case 501:
      return "unimplemented";
    case 503:
      return "unavailable";
    default:
      return "internal";
  }
}

std::string ApiErrorJson(int status, std::string_view message) {
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("error")
      .BeginObject()
      .Key("code")
      .Value(ApiErrorCode(status))
      .Key("message")
      .Value(message)
      .EndObject()
      .EndObject();
  return writer.str();
}

obs::AdminResponse ApiError(int status, std::string_view code,
                            std::string_view message) {
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("error")
      .BeginObject()
      .Key("code")
      .Value(code)
      .Key("message")
      .Value(message)
      .EndObject()
      .EndObject();
  obs::AdminResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = writer.str() + "\n";
  return response;
}

obs::AdminResponse ApiError(int status, std::string_view message) {
  return ApiError(status, ApiErrorCode(status), message);
}

obs::AdminResponse ApiData(std::string_view json_value) {
  obs::AdminResponse response;
  response.content_type = "application/json";
  response.body.reserve(json_value.size() + 12);
  response.body += "{\"data\":";
  response.body += json_value;
  response.body += "}\n";
  return response;
}

void MarkDeprecated(obs::AdminResponse* response,
                    std::string_view successor_path) {
  response->headers.emplace_back("Deprecation", "true");
  response->headers.emplace_back(
      "Link", "<" + std::string(successor_path) + ">; rel=\"successor-version\"");
}

}  // namespace serving
}  // namespace surveyor
