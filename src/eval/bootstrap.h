#ifndef SURVEYOR_EVAL_BOOTSTRAP_H_
#define SURVEYOR_EVAL_BOOTSTRAP_H_

#include <vector>

#include "eval/harness.h"
#include "util/rng.h"

namespace surveyor {

/// A two-sided confidence interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Bootstrap confidence intervals over a method's per-case outcomes. The
/// paper reports point estimates from 500 hand-labeled cases; resampling
/// quantifies how much of the measured method gaps is noise.
struct BootstrapResult {
  Interval coverage;
  Interval precision;
  Interval f1;
  int resamples = 0;
};

/// Percentile-bootstrap confidence intervals at the given confidence
/// level (two-sided). Deterministic given the seed.
BootstrapResult BootstrapMetrics(
    const std::vector<ComparisonHarness::CaseOutcome>& outcomes,
    int resamples = 1000, uint64_t seed = 17, double confidence = 0.95);

}  // namespace surveyor

#endif  // SURVEYOR_EVAL_BOOTSTRAP_H_
