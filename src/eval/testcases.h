#ifndef SURVEYOR_EVAL_TESTCASES_H_
#define SURVEYOR_EVAL_TESTCASES_H_

#include <string>
#include <vector>

#include "corpus/world.h"
#include "eval/amt.h"
#include "kb/knowledge_base.h"
#include "util/rng.h"

namespace surveyor {

/// One entity-property test case.
struct TestCase {
  TypeId type = kInvalidType;
  std::string property;
  EntityId entity = kInvalidEntity;
};

/// A test case labeled with the simulated-AMT dominant opinion.
struct LabeledTestCase {
  TestCase test_case;
  AmtVote vote;
};

/// Curated selection (paper Section 7.3): for every property-type
/// combination of the world, picks `entities_per_pair` entities spread
/// over the popular range of the type — entities "common in the query
/// stream" and known to AMT workers.
std::vector<TestCase> SelectCuratedTestCases(const World& world,
                                             int entities_per_pair = 20);

/// Random-sample protocol (paper Appendix D): samples `num_pairs`
/// property-type combinations uniformly from `available_pairs` (with
/// replacement when fewer exist) and `entities_per_pair` entities uniformly
/// per combination — mostly obscure, rarely mentioned entities.
std::vector<TestCase> SelectRandomTestCases(
    const World& world,
    const std::vector<std::pair<TypeId, std::string>>& available_pairs,
    int num_pairs, int entities_per_pair, Rng& rng);

/// Collects AMT labels for the test cases and removes ties, mirroring the
/// paper's protocol.
std::vector<LabeledTestCase> LabelWithAmt(const World& world,
                                          const std::vector<TestCase>& cases,
                                          const AmtOptions& options, Rng& rng);

}  // namespace surveyor

#endif  // SURVEYOR_EVAL_TESTCASES_H_
