#include "eval/hit_counter.h"

#include <cctype>

#include "util/string_util.h"

namespace surveyor {
namespace {

/// Lower-cases and collapses whitespace runs to single spaces.
std::string Normalize(const std::string& text) {
  std::string normalized;
  normalized.reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isspace(uc)) {
      pending_space = !normalized.empty();
      continue;
    }
    if (pending_space) {
      normalized += ' ';
      pending_space = false;
    }
    normalized += static_cast<char>(std::tolower(uc));
  }
  return normalized;
}

int64_t CountIn(const std::string& haystack, const std::string& needle) {
  if (needle.empty()) return 0;
  int64_t count = 0;
  size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += 1;  // allow overlapping matches, like repeated page snippets
  }
  return count;
}

}  // namespace

PhraseHitCounter::PhraseHitCounter(const std::vector<RawDocument>& corpus) {
  texts_.reserve(corpus.size());
  for (const RawDocument& doc : corpus) texts_.push_back(Normalize(doc.text));
}

int64_t PhraseHitCounter::CountOccurrences(const std::string& phrase) const {
  const std::string needle = Normalize(phrase);
  int64_t total = 0;
  for (const std::string& text : texts_) total += CountIn(text, needle);
  return total;
}

EvidenceCounts PhraseHitCounter::QueryPair(const std::string& entity_name,
                                           const std::string& property,
                                           const std::string& type_noun) const {
  const std::string suffix =
      type_noun.empty() ? property : "a " + property + " " + type_noun;
  EvidenceCounts counts;
  counts.positive = CountOccurrences(entity_name + " is " + suffix);
  counts.negative = CountOccurrences(entity_name + " is not " + suffix);
  return counts;
}

}  // namespace surveyor
