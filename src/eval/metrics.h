#ifndef SURVEYOR_EVAL_METRICS_H_
#define SURVEYOR_EVAL_METRICS_H_

#include <cstdint>

namespace surveyor {

/// Aggregate evaluation metrics (paper Section 7.4): coverage is the
/// fraction of test cases the method decides, precision the fraction of
/// decided cases that match the ground truth, F1 the harmonic mean of the
/// two (the paper's definition — not the IR precision/recall F1).
struct EvalMetrics {
  int64_t total_cases = 0;
  int64_t solved_cases = 0;
  int64_t correct_cases = 0;

  double coverage() const {
    return total_cases == 0
               ? 0.0
               : static_cast<double>(solved_cases) /
                     static_cast<double>(total_cases);
  }
  double precision() const {
    return solved_cases == 0
               ? 0.0
               : static_cast<double>(correct_cases) /
                     static_cast<double>(solved_cases);
  }
  double f1() const {
    const double p = precision();
    const double c = coverage();
    return (p + c) == 0.0 ? 0.0 : 2.0 * p * c / (p + c);
  }
};

}  // namespace surveyor

#endif  // SURVEYOR_EVAL_METRICS_H_
