#include "eval/bootstrap.h"

#include <algorithm>

#include "eval/metrics.h"
#include "util/logging.h"
#include "util/math.h"

namespace surveyor {

BootstrapResult BootstrapMetrics(
    const std::vector<ComparisonHarness::CaseOutcome>& outcomes,
    int resamples, uint64_t seed, double confidence) {
  SURVEYOR_CHECK_GT(resamples, 0);
  SURVEYOR_CHECK_GT(confidence, 0.0);
  SURVEYOR_CHECK_LT(confidence, 1.0);
  BootstrapResult result;
  result.resamples = resamples;
  if (outcomes.empty()) return result;

  Rng rng(seed);
  std::vector<double> coverage, precision, f1;
  coverage.reserve(resamples);
  precision.reserve(resamples);
  f1.reserve(resamples);
  for (int r = 0; r < resamples; ++r) {
    EvalMetrics metrics;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const ComparisonHarness::CaseOutcome& outcome =
          outcomes[rng.Index(outcomes.size())];
      ++metrics.total_cases;
      if (outcome.solved) ++metrics.solved_cases;
      if (outcome.correct) ++metrics.correct_cases;
    }
    coverage.push_back(metrics.coverage());
    precision.push_back(metrics.precision());
    f1.push_back(metrics.f1());
  }

  const double alpha = (1.0 - confidence) / 2.0;
  auto interval = [&](std::vector<double>& samples) {
    Interval ci;
    ci.lo = Percentile(samples, 100.0 * alpha);
    ci.hi = Percentile(samples, 100.0 * (1.0 - alpha));
    return ci;
  };
  result.coverage = interval(coverage);
  result.precision = interval(precision);
  result.f1 = interval(f1);
  return result;
}

}  // namespace surveyor
