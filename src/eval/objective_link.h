#ifndef SURVEYOR_EVAL_OBJECTIVE_LINK_H_
#define SURVEYOR_EVAL_OBJECTIVE_LINK_H_

#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "surveyor/pipeline.h"
#include "util/statusor.h"

namespace surveyor {

/// A fitted connection between a subjective property and an objective
/// numeric attribute — the paper's stated future work (Section 9): "find a
/// lower bound on the population count of a city starting from which an
/// average user would call that city big".
struct ObjectiveLink {
  /// Attribute value at which the mined opinion crosses 50/50 — the lower
  /// bound the paper asks for (in original attribute units).
  double threshold = 0.0;
  /// Logistic slope in ln(attribute) units; positive when the property
  /// becomes more likely as the attribute grows.
  double slope = 0.0;
  /// Intercept of the logistic in ln(attribute) space.
  double intercept = 0.0;
  /// Fraction of decided entities whose mined polarity matches the fitted
  /// curve's prediction.
  double agreement = 0.0;
  /// Entities used for the fit (decided polarity + attribute present).
  int num_entities = 0;

  /// Predicted probability that the property applies at attribute `value`.
  double Predict(double value) const;
};

/// Options for the logistic fit.
struct ObjectiveLinkOptions {
  int max_iterations = 200;
  double learning_rate = 0.5;
  /// Posterior weights (soft labels) instead of hard polarities.
  bool use_soft_labels = true;
};

/// Fits a one-dimensional logistic regression of the mined dominant
/// opinion on ln(attribute) over the entities of one property-type result.
/// Fails when fewer than 3 usable entities exist or when both classes are
/// not represented.
StatusOr<ObjectiveLink> LinkObjectiveProperty(
    const KnowledgeBase& kb, const PropertyTypeResult& result,
    const std::string& attribute, ObjectiveLinkOptions options = {});

/// Core fitting routine on raw (ln-attribute, probability-label) pairs;
/// exposed for testing.
StatusOr<ObjectiveLink> FitLogisticLink(const std::vector<double>& log_values,
                                        const std::vector<double>& labels,
                                        ObjectiveLinkOptions options = {});

}  // namespace surveyor

#endif  // SURVEYOR_EVAL_OBJECTIVE_LINK_H_
