#ifndef SURVEYOR_EVAL_AMT_H_
#define SURVEYOR_EVAL_AMT_H_

#include <string>

#include "corpus/world.h"
#include "model/opinion.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace surveyor {

/// Options for the simulated Amazon Mechanical Turk ground-truth
/// collection (paper Section 7.3: 20 workers per test case).
struct AmtOptions {
  int num_workers = 20;
};

/// The collected opinions for one test case.
struct AmtVote {
  int positive_votes = 0;
  int num_workers = 0;
  /// Majority opinion; kNeutral on an exact tie (the paper removes ties,
  /// 4% of cases, from the test set).
  Polarity dominant = Polarity::kNeutral;
  /// Number of workers sharing the majority opinion (max of the two
  /// sides) — the paper's worker-agreement measure.
  int agreement = 0;
};

/// Samples worker opinions from the world's latent opinion distribution.
/// Workers are fresh draws from the same population the simulated Web
/// authors come from — the ground truth is a survey sample, exactly as in
/// the paper, not an oracle readout.
class AmtSimulator {
 public:
  /// `world` must outlive the simulator.
  AmtSimulator(const World* world, AmtOptions options = {});

  /// Asks `options.num_workers` simulated workers whether `property`
  /// applies to `entity`. Fails when the world has no ground truth for the
  /// pair.
  StatusOr<AmtVote> Collect(EntityId entity, const std::string& property,
                            Rng& rng) const;

 private:
  const World* world_;
  AmtOptions options_;
};

}  // namespace surveyor

#endif  // SURVEYOR_EVAL_AMT_H_
