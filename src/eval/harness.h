#ifndef SURVEYOR_EVAL_HARNESS_H_
#define SURVEYOR_EVAL_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/classifier.h"
#include "baselines/webchild.h"
#include "eval/metrics.h"
#include "eval/testcases.h"
#include "extraction/aggregator.h"
#include "extraction/extractor.h"
#include "kb/knowledge_base.h"
#include "text/document.h"
#include "text/entity_tagger.h"
#include "text/lexicon.h"
#include "util/status.h"

namespace surveyor {

/// Shared evaluation harness for the method-comparison experiments
/// (Tables 3 and 5, Figure 12): runs annotation + extraction once over a
/// corpus, materializes per-pair evidence, harvests the WebChild baseline,
/// and scores any OpinionClassifier against AMT-labeled test cases.
class ComparisonHarness {
 public:
  /// `kb` and `lexicon` must outlive the harness.
  ComparisonHarness(const KnowledgeBase* kb, const Lexicon* lexicon,
                    ExtractionOptions extraction = {},
                    EntityTaggerOptions tagger = {}, int num_threads = 0);

  /// Annotates and extracts the whole corpus (sharded over threads),
  /// groups evidence by property-type pair, and harvests the WebChild
  /// knowledge base. Must be called before any query.
  Status Prepare(const std::vector<RawDocument>& corpus);

  /// Evidence for one property-type pair (all entities of the type, zero
  /// counters included); nullptr if no statement mentioned the pair.
  const PropertyTypeEvidence* EvidenceFor(TypeId type,
                                          const std::string& property) const;

  /// Pairs whose total statement count reaches `min_statements` (the
  /// candidate set the random-sample protocol draws from).
  std::vector<std::pair<TypeId, std::string>> PairsAboveThreshold(
      int64_t min_statements) const;

  /// The WebChild baseline harvested from this corpus.
  const WebChildClassifier& webchild() const { return webchild_; }

  /// Global positive/negative statement ratio (for Scaled Majority Vote).
  double global_scale() const { return global_scale_; }

  const EvidenceAggregator& aggregator() const { return aggregator_; }

  /// Total statements extracted (Table 4's statements column).
  int64_t total_statements() const { return aggregator_.total_statements(); }

  /// Scores `method` on the labeled cases whose worker agreement is at
  /// least `min_agreement` (0 = all). Classifications are cached per
  /// (method name, pair), so sweeps over thresholds are cheap.
  EvalMetrics Evaluate(const OpinionClassifier& method,
                       const std::vector<LabeledTestCase>& cases,
                       int min_agreement = 0) const;

  /// Per-test-case outcome of one method (input to bootstrap resampling).
  struct CaseOutcome {
    bool solved = false;
    bool correct = false;
  };

  /// Like Evaluate, but returns the per-case outcomes in input order
  /// (agreement-filtered cases are omitted).
  std::vector<CaseOutcome> EvaluateCases(
      const OpinionClassifier& method,
      const std::vector<LabeledTestCase>& cases, int min_agreement = 0) const;

 private:
  using PairKey = std::pair<TypeId, std::string>;

  const KnowledgeBase* kb_;
  const Lexicon* lexicon_;
  ExtractionOptions extraction_options_;
  EntityTaggerOptions tagger_options_;
  int num_threads_;

  EvidenceAggregator aggregator_;
  std::map<PairKey, PropertyTypeEvidence> evidence_;
  /// entity -> index within its type's entity vector.
  std::unordered_map<EntityId, size_t> entity_index_;
  WebChildClassifier webchild_;
  double global_scale_ = 1.0;
  bool prepared_ = false;

  /// Cache of classifications: (method name, pair) -> polarities.
  mutable std::map<std::pair<std::string, PairKey>, std::vector<Polarity>>
      classification_cache_;
};

}  // namespace surveyor

#endif  // SURVEYOR_EVAL_HARNESS_H_
