#include "eval/extraction_stats.h"

namespace surveyor {

ExtractionStatistics ComputeExtractionStatistics(
    const KnowledgeBase& kb, const EvidenceAggregator& aggregator,
    int64_t pair_threshold) {
  ExtractionStatistics stats;

  for (int64_t count : aggregator.StatementsPerEntity(kb)) {
    stats.statements_per_entity.push_back(static_cast<double>(count));
  }

  std::vector<int> qualifying(kb.num_types(), 0);
  for (const PropertyTypeEvidence& group : aggregator.GroupByType(kb, 1)) {
    stats.statements_per_pair.push_back(
        static_cast<double>(group.total_statements));
    if (group.total_statements >= pair_threshold) {
      ++qualifying[group.type];
    }
  }
  for (TypeId t = 0; t < kb.num_types(); ++t) {
    stats.qualifying_properties_per_type.push_back(
        static_cast<double>(qualifying[t]));
  }
  return stats;
}

}  // namespace surveyor
