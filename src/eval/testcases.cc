#include "eval/testcases.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace surveyor {

std::vector<TestCase> SelectCuratedTestCases(const World& world,
                                             int entities_per_pair) {
  SURVEYOR_CHECK_GT(entities_per_pair, 0);
  std::vector<TestCase> cases;
  for (const PropertyGroundTruth& truth : world.ground_truths()) {
    // Order the type's entities by popularity (descending).
    std::vector<size_t> order(truth.entities.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return world.kb().entity(truth.entities[a]).popularity >
             world.kb().entity(truth.entities[b]).popularity;
    });
    // Spread picks evenly over the full popularity range: well-known entities,
    // but not only the very top (some cases have little evidence, like the
    // paper's curated set where MV solves only half).
    const size_t n = order.size();
    const size_t k = std::min<size_t>(static_cast<size_t>(entities_per_pair), n);
    const size_t range = std::max<size_t>(k, n);
    for (size_t j = 0; j < k; ++j) {
      const size_t rank = j * range / k;
      TestCase tc;
      tc.type = truth.type;
      tc.property = truth.property;
      tc.entity = truth.entities[order[rank]];
      cases.push_back(std::move(tc));
    }
  }
  return cases;
}

std::vector<TestCase> SelectRandomTestCases(
    const World& world,
    const std::vector<std::pair<TypeId, std::string>>& available_pairs,
    int num_pairs, int entities_per_pair, Rng& rng) {
  SURVEYOR_CHECK_GT(entities_per_pair, 0);
  std::vector<TestCase> cases;
  if (available_pairs.empty()) return cases;
  for (int p = 0; p < num_pairs; ++p) {
    const auto& [type, property] = available_pairs[rng.Index(available_pairs.size())];
    const PropertyGroundTruth* truth = world.FindGroundTruth(type, property);
    if (truth == nullptr) continue;  // extraction artifact ("very big")
    for (int e = 0; e < entities_per_pair; ++e) {
      TestCase tc;
      tc.type = type;
      tc.property = property;
      tc.entity = truth->entities[rng.Index(truth->entities.size())];
      cases.push_back(std::move(tc));
    }
  }
  return cases;
}

std::vector<LabeledTestCase> LabelWithAmt(const World& world,
                                          const std::vector<TestCase>& cases,
                                          const AmtOptions& options, Rng& rng) {
  const AmtSimulator amt(&world, options);
  std::vector<LabeledTestCase> labeled;
  for (const TestCase& tc : cases) {
    auto vote = amt.Collect(tc.entity, tc.property, rng);
    if (!vote.ok()) continue;
    if (vote->dominant == Polarity::kNeutral) continue;  // tie: removed
    labeled.push_back(LabeledTestCase{tc, *vote});
  }
  return labeled;
}

}  // namespace surveyor
