#include "eval/objective_link.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/math.h"

namespace surveyor {

double ObjectiveLink::Predict(double value) const {
  return Sigmoid(slope * std::log(std::max(value, 1e-300)) + intercept);
}

StatusOr<ObjectiveLink> FitLogisticLink(const std::vector<double>& log_values,
                                        const std::vector<double>& labels,
                                        ObjectiveLinkOptions options) {
  if (log_values.size() != labels.size()) {
    return Status::InvalidArgument("feature/label size mismatch");
  }
  if (log_values.size() < 3) {
    return Status::FailedPrecondition("need at least 3 entities to fit");
  }
  bool has_positive = false;
  bool has_negative = false;
  for (double label : labels) {
    if (label > 0.5) has_positive = true;
    if (label < 0.5) has_negative = true;
  }
  if (!has_positive || !has_negative) {
    return Status::FailedPrecondition(
        "both polarities must be present to fit a threshold");
  }

  // Standardize the feature for a well-conditioned gradient ascent.
  const double mean = Mean(log_values);
  const double sd = std::sqrt(std::max(Variance(log_values), 1e-12));
  std::vector<double> z(log_values.size());
  for (size_t i = 0; i < log_values.size(); ++i) {
    z[i] = (log_values[i] - mean) / sd;
  }

  double w = 0.0;
  double b = 0.0;
  const double n = static_cast<double>(z.size());
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double grad_w = 0.0;
    double grad_b = 0.0;
    for (size_t i = 0; i < z.size(); ++i) {
      const double error = labels[i] - Sigmoid(w * z[i] + b);
      grad_w += error * z[i];
      grad_b += error;
    }
    w += options.learning_rate * grad_w / n;
    b += options.learning_rate * grad_b / n;
  }

  // Un-standardize: p = sigmoid(w * (ln v - mean)/sd + b)
  //                   = sigmoid((w/sd) ln v + (b - w*mean/sd)).
  ObjectiveLink link;
  link.slope = w / sd;
  link.intercept = b - w * mean / sd;
  link.num_entities = static_cast<int>(z.size());
  if (std::abs(link.slope) > 1e-12) {
    link.threshold = std::exp(-link.intercept / link.slope);
  }
  int agree = 0;
  for (size_t i = 0; i < log_values.size(); ++i) {
    const bool predicted = link.slope * log_values[i] + link.intercept > 0.0;
    if (predicted == (labels[i] > 0.5)) ++agree;
  }
  link.agreement = static_cast<double>(agree) / n;
  return link;
}

StatusOr<ObjectiveLink> LinkObjectiveProperty(const KnowledgeBase& kb,
                                              const PropertyTypeResult& result,
                                              const std::string& attribute,
                                              ObjectiveLinkOptions options) {
  std::vector<double> log_values;
  std::vector<double> labels;
  for (size_t i = 0; i < result.evidence.entities.size(); ++i) {
    if (result.polarity[i] == Polarity::kNeutral) continue;
    auto value = kb.GetAttribute(result.evidence.entities[i], attribute);
    if (!value.ok()) continue;
    if (*value <= 0.0) continue;
    log_values.push_back(std::log(*value));
    labels.push_back(options.use_soft_labels
                         ? result.posterior[i]
                         : (result.polarity[i] == Polarity::kPositive ? 1.0
                                                                      : 0.0));
  }
  return FitLogisticLink(log_values, labels, options);
}

}  // namespace surveyor
