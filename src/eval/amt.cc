#include "eval/amt.h"

#include <algorithm>

#include "util/logging.h"

namespace surveyor {

AmtSimulator::AmtSimulator(const World* world, AmtOptions options)
    : world_(world), options_(options) {
  SURVEYOR_CHECK(world_ != nullptr);
  SURVEYOR_CHECK_GT(options_.num_workers, 0);
}

StatusOr<AmtVote> AmtSimulator::Collect(EntityId entity,
                                        const std::string& property,
                                        Rng& rng) const {
  SURVEYOR_ASSIGN_OR_RETURN(double fraction,
                            world_->PositiveFraction(entity, property));
  AmtVote vote;
  vote.num_workers = options_.num_workers;
  for (int w = 0; w < options_.num_workers; ++w) {
    if (rng.Bernoulli(fraction)) ++vote.positive_votes;
  }
  const int negative_votes = vote.num_workers - vote.positive_votes;
  vote.agreement = std::max(vote.positive_votes, negative_votes);
  if (vote.positive_votes > negative_votes) {
    vote.dominant = Polarity::kPositive;
  } else if (negative_votes > vote.positive_votes) {
    vote.dominant = Polarity::kNegative;
  }
  return vote;
}

}  // namespace surveyor
