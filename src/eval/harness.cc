#include "eval/harness.h"

#include <algorithm>
#include <thread>

#include "baselines/majority_vote.h"
#include "text/annotator.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace surveyor {

ComparisonHarness::ComparisonHarness(const KnowledgeBase* kb,
                                     const Lexicon* lexicon,
                                     ExtractionOptions extraction,
                                     EntityTaggerOptions tagger,
                                     int num_threads)
    : kb_(kb),
      lexicon_(lexicon),
      extraction_options_(extraction),
      tagger_options_(tagger),
      num_threads_(num_threads) {
  SURVEYOR_CHECK(kb_ != nullptr);
  SURVEYOR_CHECK(lexicon_ != nullptr);
}

Status ComparisonHarness::Prepare(const std::vector<RawDocument>& corpus) {
  const size_t num_threads =
      num_threads_ > 0
          ? static_cast<size_t>(num_threads_)
          : std::max(1u, std::thread::hardware_concurrency());
  ThreadPool pool(num_threads);

  struct ShardState {
    EvidenceAggregator aggregator;
    std::vector<EvidenceStatement> statements;
  };
  std::vector<ShardState> shards(num_threads);

  const TextAnnotator annotator(kb_, lexicon_, tagger_options_);
  const EvidenceExtractor extractor(extraction_options_);
  const size_t docs_per_shard =
      (corpus.size() + num_threads - 1) / std::max<size_t>(1, num_threads);
  for (size_t shard = 0; shard < num_threads; ++shard) {
    const size_t begin = shard * docs_per_shard;
    const size_t end = std::min(corpus.size(), begin + docs_per_shard);
    if (begin >= end) continue;
    pool.Submit([&, shard, begin, end] {
      ShardState& state = shards[shard];
      for (size_t d = begin; d < end; ++d) {
        const AnnotatedDocument doc =
            annotator.AnnotateDocument(corpus[d].doc_id, corpus[d].text);
        std::vector<EvidenceStatement> statements =
            extractor.ExtractFromDocument(doc);
        state.aggregator.AddAll(statements);
        state.statements.insert(state.statements.end(),
                                std::make_move_iterator(statements.begin()),
                                std::make_move_iterator(statements.end()));
      }
    });
  }
  pool.Wait();

  aggregator_ = EvidenceAggregator();
  std::vector<EvidenceStatement> all_statements;
  for (ShardState& state : shards) {
    aggregator_.Merge(state.aggregator);
    all_statements.insert(all_statements.end(),
                          std::make_move_iterator(state.statements.begin()),
                          std::make_move_iterator(state.statements.end()));
  }

  // Group all pairs (no threshold: the harness decides per experiment).
  evidence_.clear();
  for (PropertyTypeEvidence& group : aggregator_.GroupByType(*kb_, 1)) {
    PairKey key{group.type, group.property};
    evidence_.emplace(std::move(key), std::move(group));
  }

  entity_index_.clear();
  for (TypeId t = 0; t < kb_->num_types(); ++t) {
    const std::vector<EntityId>& members = kb_->EntitiesOfType(t);
    for (size_t i = 0; i < members.size(); ++i) entity_index_[members[i]] = i;
  }

  webchild_ = WebChildClassifier();
  webchild_.Harvest(all_statements);

  int64_t positive = 0;
  int64_t negative = 0;
  for (const auto& [key, group] : evidence_) {
    for (const EvidenceCounts& c : group.counts) {
      positive += c.positive;
      negative += c.negative;
    }
  }
  global_scale_ = (positive > 0 && negative > 0)
                      ? static_cast<double>(positive) /
                            static_cast<double>(negative)
                      : 1.0;
  classification_cache_.clear();
  prepared_ = true;
  return Status::OK();
}

const PropertyTypeEvidence* ComparisonHarness::EvidenceFor(
    TypeId type, const std::string& property) const {
  SURVEYOR_CHECK(prepared_);
  auto it = evidence_.find({type, property});
  if (it == evidence_.end()) return nullptr;
  return &it->second;
}

std::vector<std::pair<TypeId, std::string>>
ComparisonHarness::PairsAboveThreshold(int64_t min_statements) const {
  SURVEYOR_CHECK(prepared_);
  std::vector<std::pair<TypeId, std::string>> pairs;
  for (const auto& [key, group] : evidence_) {
    if (group.total_statements >= min_statements) pairs.push_back(key);
  }
  return pairs;
}

EvalMetrics ComparisonHarness::Evaluate(
    const OpinionClassifier& method, const std::vector<LabeledTestCase>& cases,
    int min_agreement) const {
  EvalMetrics metrics;
  for (const CaseOutcome& outcome :
       EvaluateCases(method, cases, min_agreement)) {
    ++metrics.total_cases;
    if (outcome.solved) ++metrics.solved_cases;
    if (outcome.correct) ++metrics.correct_cases;
  }
  return metrics;
}

std::vector<ComparisonHarness::CaseOutcome> ComparisonHarness::EvaluateCases(
    const OpinionClassifier& method, const std::vector<LabeledTestCase>& cases,
    int min_agreement) const {
  SURVEYOR_CHECK(prepared_);
  std::vector<CaseOutcome> outcomes;
  for (const LabeledTestCase& labeled : cases) {
    if (labeled.vote.agreement < min_agreement) continue;
    const PairKey key{labeled.test_case.type, labeled.test_case.property};
    auto eit = evidence_.find(key);
    Polarity decided = Polarity::kNeutral;
    if (eit != evidence_.end()) {
      const auto cache_key = std::make_pair(method.name(), key);
      auto cit = classification_cache_.find(cache_key);
      if (cit == classification_cache_.end()) {
        cit = classification_cache_
                  .emplace(cache_key, method.Classify(eit->second))
                  .first;
      }
      auto idx = entity_index_.find(labeled.test_case.entity);
      if (idx != entity_index_.end() && idx->second < cit->second.size()) {
        decided = cit->second[idx->second];
      }
    } else {
      // No statement mentioned the pair at all. Methods that can decide
      // from zero evidence (Surveyor's model, WebChild's absence-as-
      // negative) still get to answer over an all-zero evidence vector.
      auto type_members = kb_->EntitiesOfType(labeled.test_case.type);
      PropertyTypeEvidence zero;
      zero.type = labeled.test_case.type;
      zero.property = labeled.test_case.property;
      zero.entities = type_members;
      zero.counts.assign(type_members.size(), EvidenceCounts{});
      const auto cache_key = std::make_pair(method.name(), key);
      auto cit = classification_cache_.find(cache_key);
      if (cit == classification_cache_.end()) {
        cit = classification_cache_
                  .emplace(cache_key, method.Classify(zero))
                  .first;
      }
      auto idx = entity_index_.find(labeled.test_case.entity);
      if (idx != entity_index_.end() && idx->second < cit->second.size()) {
        decided = cit->second[idx->second];
      }
    }
    CaseOutcome outcome;
    outcome.solved = decided != Polarity::kNeutral;
    outcome.correct = outcome.solved && decided == labeled.vote.dominant;
    outcomes.push_back(outcome);
  }
  return outcomes;
}

}  // namespace surveyor
