#ifndef SURVEYOR_EVAL_EXTRACTION_STATS_H_
#define SURVEYOR_EVAL_EXTRACTION_STATS_H_

#include <vector>

#include "extraction/aggregator.h"
#include "kb/knowledge_base.h"

namespace surveyor {

/// The Section 7.2 extraction statistics (Figure 9): the three
/// distributions whose skew motivates the per-pair model and the rho
/// threshold.
struct ExtractionStatistics {
  /// Statements per knowledge-base entity (Fig. 9a), zeros included.
  std::vector<double> statements_per_entity;
  /// Statements per property-type combination with >= 1 statement
  /// (Fig. 9b).
  std::vector<double> statements_per_pair;
  /// Properties with at least `pair_threshold` statements, per type
  /// (Fig. 9c), zeros included for types without such properties.
  std::vector<double> qualifying_properties_per_type;
};

/// Computes the Figure-9 statistics from aggregated evidence.
/// `pair_threshold` is the statement minimum for a property to count in
/// 9(c) (the paper uses 100).
ExtractionStatistics ComputeExtractionStatistics(
    const KnowledgeBase& kb, const EvidenceAggregator& aggregator,
    int64_t pair_threshold = 100);

}  // namespace surveyor

#endif  // SURVEYOR_EVAL_EXTRACTION_STATS_H_
