#ifndef SURVEYOR_EVAL_HIT_COUNTER_H_
#define SURVEYOR_EVAL_HIT_COUNTER_H_

#include <string>
#include <vector>

#include "model/opinion.h"
#include "text/document.h"

namespace surveyor {

/// The Section 2 exploration methodology, reproduced against the corpus:
/// the paper collected evidence for each city by issuing search-engine
/// queries for the exact phrases "X is a big city" and "X is not a big
/// city" and reading the hit counts. This class answers such phrase
/// queries over an in-memory corpus (case-insensitive, whitespace
/// normalized), counting occurrences.
///
/// The paper's own conclusion holds here too: phrase queries are a crude
/// instrument next to the dependency-pattern extraction (they miss
/// paraphrases, conjunctions and embedded clauses and cannot
/// disambiguate), which is why the deployed system uses the NLP pipeline.
class PhraseHitCounter {
 public:
  /// Indexes the corpus (lower-cases and normalizes whitespace once).
  explicit PhraseHitCounter(const std::vector<RawDocument>& corpus);

  /// Number of occurrences of the exact phrase across all documents.
  int64_t CountOccurrences(const std::string& phrase) const;

  /// The Section 2 query pair for an entity: occurrences of
  /// "<entity> is (a) <property> <type>" as positive evidence and
  /// "<entity> is not (a) <property> <type>" as negative evidence.
  /// `type_noun` may be empty for bare-adjective phrasing
  /// ("X is big" / "X is not big").
  EvidenceCounts QueryPair(const std::string& entity_name,
                           const std::string& property,
                           const std::string& type_noun) const;

 private:
  /// Normalized document texts.
  std::vector<std::string> texts_;
};

}  // namespace surveyor

#endif  // SURVEYOR_EVAL_HIT_COUNTER_H_
