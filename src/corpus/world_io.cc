#include "corpus/world_io.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/string_util.h"

namespace surveyor {

Status SaveGroundTruth(const World& world, std::ostream& os) {
  os << "# surveyor ground truth v1\n";
  for (const PropertyGroundTruth& truth : world.ground_truths()) {
    const std::string& type_name = world.kb().TypeName(truth.type);
    for (size_t i = 0; i < truth.entities.size(); ++i) {
      os << "truth\t" << type_name << "\t"
         << world.kb().entity(truth.entities[i]).canonical_name << "\t"
         << truth.property << "\t"
         << StrFormat("%.4f", truth.positive_fraction[i]) << "\t"
         << PolarityName(truth.dominant[i]) << "\n";
    }
  }
  if (!os.good()) return Status::Internal("write failure");
  return Status::OK();
}

StatusOr<GroundTruthLabels> LoadGroundTruth(std::istream& is,
                                            const KnowledgeBase& kb) {
  GroundTruthLabels labels;
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::vector<std::string> fields = Split(trimmed, '\t');
    auto error = [&](const std::string& msg) {
      return Status::InvalidArgument(
          StrFormat("line %d: %s", line_number, msg.c_str()));
    };
    if (fields[0] != "truth" || fields.size() != 6) {
      return error("expected 'truth' with 5 fields");
    }
    auto type = kb.TypeByName(fields[1]);
    if (!type.ok()) return error("unknown type '" + fields[1] + "'");
    EntityId entity = kInvalidEntity;
    for (EntityId candidate : kb.EntitiesByName(fields[2])) {
      if (kb.entity(candidate).most_notable_type == *type) entity = candidate;
    }
    if (entity == kInvalidEntity) {
      return error("unknown entity '" + fields[2] + "'");
    }
    Polarity polarity;
    if (fields[5] == "+") {
      polarity = Polarity::kPositive;
    } else if (fields[5] == "-") {
      polarity = Polarity::kNegative;
    } else {
      return error("bad polarity '" + fields[5] + "'");
    }
    labels[{entity, fields[3]}] = polarity;
  }
  return labels;
}

StatusOr<GroundTruthLabels> LoadGroundTruthFromFile(const std::string& path,
                                                    const KnowledgeBase& kb) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open '" + path + "'");
  return LoadGroundTruth(is, kb);
}

Status SaveGroundTruthToFile(const World& world, const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::NotFound("cannot open '" + path + "' for writing");
  return SaveGroundTruth(world, os);
}

}  // namespace surveyor
