#ifndef SURVEYOR_CORPUS_WORLD_IO_H_
#define SURVEYOR_CORPUS_WORLD_IO_H_

#include <iosfwd>
#include <map>
#include <string>
#include <utility>

#include "corpus/world.h"
#include "util/status.h"
#include "util/statusor.h"

namespace surveyor {

/// Writes the world's latent ground truth as TSV lines
///   truth <tab> TYPE <tab> ENTITY <tab> PROPERTY <tab> FRACTION <tab> +/-
/// so external tooling can score mined opinions against the simulator's
/// oracle without linking the library.
Status SaveGroundTruth(const World& world, std::ostream& os);

Status SaveGroundTruthToFile(const World& world, const std::string& path);

/// Dominant-opinion labels parsed back from a ground-truth dump, keyed by
/// (entity, property). Entities are resolved against `kb`.
using GroundTruthLabels =
    std::map<std::pair<EntityId, std::string>, Polarity>;

StatusOr<GroundTruthLabels> LoadGroundTruth(std::istream& is,
                                            const KnowledgeBase& kb);
StatusOr<GroundTruthLabels> LoadGroundTruthFromFile(const std::string& path,
                                                    const KnowledgeBase& kb);

}  // namespace surveyor

#endif  // SURVEYOR_CORPUS_WORLD_IO_H_
