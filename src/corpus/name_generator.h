#ifndef SURVEYOR_CORPUS_NAME_GENERATOR_H_
#define SURVEYOR_CORPUS_NAME_GENERATOR_H_

#include <string>
#include <unordered_set>

#include "util/rng.h"

namespace surveyor {

/// Generates unique, pronounceable entity names ("beldora", "kervale") for
/// the bulk of the synthetic knowledge base. Curated seed lists cover the
/// paper's concrete test entities; this generator scales the world to
/// thousands of entities per type without hard-coding dictionaries.
class NameGenerator {
 public:
  NameGenerator() = default;

  /// Returns a fresh name not generated before and not in `reserved`.
  /// Names avoid collisions with previously returned names forever.
  std::string Generate(Rng& rng);

  /// Marks a word as taken so it is never generated (call for every
  /// lexicon word and curated entity name).
  void Reserve(const std::string& word);

 private:
  std::unordered_set<std::string> used_;
};

}  // namespace surveyor

#endif  // SURVEYOR_CORPUS_NAME_GENERATOR_H_
