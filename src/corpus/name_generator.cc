#include "corpus/name_generator.h"

#include "util/logging.h"

namespace surveyor {
namespace {

constexpr const char* kOnsets[] = {"b",  "bel", "d",   "dor", "f",  "gar",
                                   "h",  "k",   "kel", "l",   "m",  "mar",
                                   "n",  "p",   "r",   "s",   "t",  "tor",
                                   "v",  "w",   "z",   "br",  "cr", "dr",
                                   "gl", "gr",  "pl",  "st",  "tr", "sh"};
constexpr const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ea", "ou"};
constexpr const char* kCodas[] = {"",   "l",  "n",   "r",   "s",   "th",
                                  "ck", "m",  "nd",  "rt",  "x",   "v",
                                  "la", "ra", "dan", "ton", "ford"};

}  // namespace

void NameGenerator::Reserve(const std::string& word) { used_.insert(word); }

std::string NameGenerator::Generate(Rng& rng) {
  for (int attempt = 0; attempt < 10000; ++attempt) {
    std::string name;
    const int syllables = static_cast<int>(rng.UniformInt(2, 3));
    for (int s = 0; s < syllables; ++s) {
      name += kOnsets[rng.Index(std::size(kOnsets))];
      name += kVowels[rng.Index(std::size(kVowels))];
    }
    name += kCodas[rng.Index(std::size(kCodas))];
    if (name.size() < 4) continue;
    if (used_.insert(name).second) return name;
  }
  // The syllable space is ~10^5 per length tier; exhausting it means the
  // caller asked for an unrealistic number of entities.
  SURVEYOR_LOG(Fatal) << "name space exhausted";
  return "";
}

}  // namespace surveyor
