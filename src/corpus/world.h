#ifndef SURVEYOR_CORPUS_WORLD_H_
#define SURVEYOR_CORPUS_WORLD_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "model/opinion.h"
#include "text/lexicon.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace surveyor {

/// Specification of one subjective property attached to a type, together
/// with the *true* (latent) opinion distribution and authoring behavior.
/// These values are never visible to the pipeline — they only drive the
/// simulator and the ground-truth oracle.
struct PropertySpec {
  /// Bare adjective ("big").
  std::string adjective;
  /// Optional fixed adverb forming a compound property ("densely" for
  /// "densely populated"). Empty for plain adjectives.
  std::string adverb;

  // --- Ground-truth generation -----------------------------------------
  /// When set, the dominant opinion derives from this numeric entity
  /// attribute via a logistic curve (e.g. "population" for "big").
  std::optional<std::string> attribute;
  /// Attribute value at which opinion splits 50/50.
  double attribute_threshold = 1.0;
  /// Steepness of the logistic in ln-attribute units; higher = less
  /// controversy away from the threshold.
  double attribute_slope = 2.0;
  /// Inverts the attribute correlation (for "small", "cheap", ...).
  bool inverted = false;
  /// For attribute-free properties: fraction of entities whose dominant
  /// opinion is positive.
  double prevalence = 0.35;
  /// Occurrence bias for attribute-free properties: how strongly the
  /// chance of a positive dominant opinion grows with entity popularity
  /// (log-odds shift per standard deviation of log-popularity). Popular
  /// entities tend to have the property — the paper's observation that
  /// big cities are mentioned more often, which lets the model read
  /// meaning into silence.
  double popularity_coupling = 1.0;
  /// Typical population agreement with the dominant opinion; the latent
  /// analogue of the model's pA.
  double agreement = 0.85;

  // --- Authoring behavior ----------------------------------------------
  /// Probability that an exposed author holding a positive opinion writes
  /// a statement (latent analogue of p+S).
  double express_positive = 0.02;
  /// Likewise for a negative opinion (p-S). The gap between the two is the
  /// polarity bias the paper's model exists to correct.
  double express_negative = 0.002;

  /// Full property key as extracted ("big", "densely populated").
  std::string PropertyKey() const {
    return adverb.empty() ? adjective : adverb + " " + adjective;
  }
};

/// How numeric attributes are generated for a type.
struct AttributeSpec {
  std::string name;
  /// Attribute drawn log-uniformly in [10^log10_min, 10^log10_max].
  double log10_min = 2.0;
  double log10_max = 7.0;
  /// Popularity ∝ attribute^exponent × log-normal noise: the paper's
  /// occurrence bias (big cities are mentioned more often).
  double popularity_exponent = 0.8;
};

/// A curated entity to include before bulk generation.
struct EntitySeed {
  std::string name;
  /// Attribute value; NaN draws from the type's AttributeSpec.
  double attribute = 0.0;
  bool has_attribute = false;
  std::vector<std::string> aliases;
};

/// Specification of one entity type.
struct TypeSpec {
  std::string name;  ///< singular type noun ("city", "animal")
  /// Total entities of this type (curated seeds included).
  int num_entities = 100;
  std::vector<EntitySeed> seeds;
  std::optional<AttributeSpec> attribute;
  /// Zipf exponent for popularity when no attribute drives it.
  double popularity_zipf_exponent = 1.05;
  /// Fraction of entities that additionally receive an ambiguous alias
  /// shared with entities of other types (exercises disambiguation).
  double ambiguous_alias_fraction = 0.0;
  std::vector<PropertySpec> properties;
};

/// Whole-world configuration.
struct WorldConfig {
  std::vector<TypeSpec> types;
  uint64_t seed = 7;
};

/// Latent ground truth for one property-type combination.
struct PropertyGroundTruth {
  TypeId type = kInvalidType;
  std::string property;  ///< property key ("big", "densely populated")
  const PropertySpec* spec = nullptr;
  std::vector<EntityId> entities;  ///< all entities of the type
  /// Fraction of the population holding a positive opinion, per entity.
  std::vector<double> positive_fraction;
  /// Dominant opinion (positive iff fraction > 1/2), per entity.
  std::vector<Polarity> dominant;
};

/// The simulated world: a knowledge base plus latent opinion ground truth
/// and authoring behavior. Replaces the paper's 40 TB snapshot + AMT crowd
/// with a generative model whose *observable* output (text) is all the
/// pipeline ever sees.
class World {
 public:
  /// Builds a world from the configuration. Deterministic given the seed.
  static StatusOr<World> Generate(const WorldConfig& config);

  const KnowledgeBase& kb() const { return kb_; }

  /// Lexicon containing closed-class words plus every world vocabulary
  /// item (entity names as nouns, type nouns with plurals, adjectives,
  /// adverbs, realizer verbs/nouns).
  const Lexicon& lexicon() const { return lexicon_; }

  const std::vector<PropertyGroundTruth>& ground_truths() const {
    return ground_truths_;
  }

  /// Ground truth for a (type, property-key) combination; nullptr when the
  /// combination does not exist.
  const PropertyGroundTruth* FindGroundTruth(TypeId type,
                                             const std::string& property) const;

  /// True dominant opinion for an entity-property pair (oracle).
  StatusOr<Polarity> TrueDominant(EntityId entity,
                                  const std::string& property) const;

  /// Latent fraction of the population holding a positive opinion; this is
  /// what simulated AMT workers sample from.
  StatusOr<double> PositiveFraction(EntityId entity,
                                    const std::string& property) const;

  /// Normalized popularity in (0, 1]: the fraction of the author
  /// population exposed to the entity.
  double NormalizedPopularity(EntityId entity) const;

  World(World&&) = default;
  World& operator=(World&&) = default;

 private:
  World() = default;

  KnowledgeBase kb_;
  Lexicon lexicon_;
  std::vector<PropertyGroundTruth> ground_truths_;
  /// (type, property key) -> index into ground_truths_.
  std::map<std::pair<TypeId, std::string>, size_t> ground_truth_index_;
  /// Per-entity popularity normalized by the max within its type.
  std::vector<double> normalized_popularity_;
  /// Owned copies of the property specs (stable addresses).
  std::vector<PropertySpec> specs_;
};

}  // namespace surveyor

#endif  // SURVEYOR_CORPUS_WORLD_H_
