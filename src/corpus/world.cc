#include "corpus/world.h"

#include <algorithm>
#include <cmath>

#include "corpus/name_generator.h"
#include "corpus/vocab.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

}  // namespace

const PropertyGroundTruth* World::FindGroundTruth(
    TypeId type, const std::string& property) const {
  auto it = ground_truth_index_.find({type, property});
  if (it == ground_truth_index_.end()) return nullptr;
  return &ground_truths_[it->second];
}

StatusOr<Polarity> World::TrueDominant(EntityId entity,
                                       const std::string& property) const {
  SURVEYOR_ASSIGN_OR_RETURN(double fraction,
                            PositiveFraction(entity, property));
  return fraction > 0.5 ? Polarity::kPositive : Polarity::kNegative;
}

StatusOr<double> World::PositiveFraction(EntityId entity,
                                         const std::string& property) const {
  if (entity >= kb_.num_entities()) {
    return Status::InvalidArgument("unknown entity");
  }
  const TypeId type = kb_.entity(entity).most_notable_type;
  const PropertyGroundTruth* truth = FindGroundTruth(type, property);
  if (truth == nullptr) {
    return Status::NotFound("no ground truth for property '" + property +
                            "' on type '" + kb_.TypeName(type) + "'");
  }
  for (size_t i = 0; i < truth->entities.size(); ++i) {
    if (truth->entities[i] == entity) return truth->positive_fraction[i];
  }
  return Status::NotFound("entity not in ground truth");
}

double World::NormalizedPopularity(EntityId entity) const {
  SURVEYOR_CHECK_LT(entity, normalized_popularity_.size());
  return normalized_popularity_[entity];
}

StatusOr<World> World::Generate(const WorldConfig& config) {
  if (config.types.empty()) {
    return Status::InvalidArgument("world needs at least one type");
  }
  World world;
  Rng rng(config.seed);
  NameGenerator names;

  // Count properties up front so spec pointers stay stable.
  size_t total_properties = 0;
  for (const TypeSpec& type_spec : config.types) {
    total_properties += type_spec.properties.size();
  }
  world.specs_.reserve(total_properties);

  // Reserve vocabulary words so generated names never collide.
  for (const TypeSpec& type_spec : config.types) {
    names.Reserve(ToLower(type_spec.name));
    for (const EntitySeed& seed : type_spec.seeds) {
      names.Reserve(ToLower(seed.name));
    }
    for (const PropertySpec& prop : type_spec.properties) {
      names.Reserve(ToLower(prop.adjective));
      if (!prop.adverb.empty()) names.Reserve(ToLower(prop.adverb));
    }
  }
  for (const char* word : kFillerVerbs) names.Reserve(word);
  for (const char* word : kFillerNouns) names.Reserve(word);
  for (const char* word : kAspectNouns) names.Reserve(word);

  // Register realizer vocabulary.
  for (const char* word : kFillerVerbs) world.lexicon_.AddWord(word, Pos::kVerb);
  for (const char* word : kFillerNouns) {
    world.lexicon_.AddNounWithPlural(word);
  }
  for (const char* word : kAspectNouns) world.lexicon_.AddWord(word, Pos::kNoun);

  std::vector<EntityId> ambiguity_candidates;

  for (const TypeSpec& type_spec : config.types) {
    if (type_spec.num_entities < static_cast<int>(type_spec.seeds.size())) {
      return Status::InvalidArgument(
          "num_entities smaller than the number of seeds for type '" +
          type_spec.name + "'");
    }
    const TypeId type = world.kb_.AddType(type_spec.name);
    world.lexicon_.AddNounWithPlural(type_spec.name);

    // --- Entities ---------------------------------------------------------
    std::vector<EntityId> members;
    std::vector<double> attributes;
    for (int i = 0; i < type_spec.num_entities; ++i) {
      std::string name;
      double attribute = 0.0;
      bool has_attribute = false;
      std::vector<std::string> aliases;
      if (i < static_cast<int>(type_spec.seeds.size())) {
        const EntitySeed& seed = type_spec.seeds[i];
        name = ToLower(seed.name);
        attribute = seed.attribute;
        has_attribute = seed.has_attribute;
        aliases = seed.aliases;
      } else {
        name = names.Generate(rng);
      }
      if (type_spec.attribute.has_value() && !has_attribute) {
        const AttributeSpec& attr = *type_spec.attribute;
        attribute = std::pow(10.0, rng.Uniform(attr.log10_min, attr.log10_max));
        has_attribute = true;
      }

      // Popularity: attribute-coupled (occurrence bias) or Zipf by rank.
      double popularity;
      if (type_spec.attribute.has_value()) {
        popularity = std::pow(attribute, type_spec.attribute->popularity_exponent) *
                     rng.LogNormal(0.0, 0.5);
      } else {
        // Curated seeds are well-known entities (the paper picks test
        // entities "known to the general public"): their popularity decays
        // much more slowly than the generated tail.
        const double exponent =
            i < static_cast<int>(type_spec.seeds.size())
                ? 0.35 * type_spec.popularity_zipf_exponent
                : type_spec.popularity_zipf_exponent;
        popularity = 1.0 / std::pow(static_cast<double>(i) + 1.0, exponent) *
                     rng.LogNormal(0.0, 0.3);
      }

      SURVEYOR_ASSIGN_OR_RETURN(EntityId id,
                                world.kb_.AddEntity(name, type, popularity));
      if (type_spec.attribute.has_value()) {
        SURVEYOR_RETURN_IF_ERROR(world.kb_.SetAttribute(
            id, type_spec.attribute->name, attribute));
      }
      for (const std::string& alias : aliases) {
        SURVEYOR_RETURN_IF_ERROR(world.kb_.AddAlias(alias, id));
      }
      world.lexicon_.AddWord(name, Pos::kNoun);
      members.push_back(id);
      attributes.push_back(attribute);
      if (rng.Bernoulli(type_spec.ambiguous_alias_fraction)) {
        ambiguity_candidates.push_back(id);
      }
    }

    // Standardized log-popularity within the type, for occurrence-bias
    // coupling of attribute-free properties.
    std::vector<double> log_popularity;
    log_popularity.reserve(members.size());
    for (EntityId id : members) {
      log_popularity.push_back(
          std::log(std::max(world.kb_.entity(id).popularity, 1e-12)));
    }
    const double log_pop_mean = Mean(log_popularity);
    const double log_pop_sd = std::sqrt(std::max(Variance(log_popularity), 1e-12));

    // --- Ground truth per property -----------------------------------------
    for (const PropertySpec& prop_spec : type_spec.properties) {
      world.lexicon_.AddWord(prop_spec.adjective, Pos::kAdjective);
      if (!prop_spec.adverb.empty()) {
        world.lexicon_.AddWord(prop_spec.adverb, Pos::kAdverb);
      }
      world.specs_.push_back(prop_spec);
      const PropertySpec* spec = &world.specs_.back();

      PropertyGroundTruth truth;
      truth.type = type;
      truth.property = spec->PropertyKey();
      truth.spec = spec;
      truth.entities = members;
      truth.positive_fraction.resize(members.size());
      truth.dominant.resize(members.size());
      for (size_t i = 0; i < members.size(); ++i) {
        double fraction;
        if (spec->attribute.has_value()) {
          // Logistic in log-attribute space: smooth controversy near the
          // threshold, consensus far from it.
          double z = spec->attribute_slope *
                     (std::log(std::max(attributes[i], 1e-12)) -
                      std::log(spec->attribute_threshold));
          if (spec->inverted) z = -z;
          fraction = Clamp(Sigmoid(z), 0.02, 0.98);
        } else {
          // Occurrence bias: the positive-prevalence odds shift with the
          // entity's standardized log-popularity.
          const double z = (log_popularity[i] - log_pop_mean) / log_pop_sd;
          const double prior = std::min(std::max(spec->prevalence, 1e-6), 1.0 - 1e-6);
          const double logit = std::log(prior / (1.0 - prior)) +
                               spec->popularity_coupling * z;
          const bool positive = rng.Bernoulli(Sigmoid(logit));
          const double base = positive ? spec->agreement : 1.0 - spec->agreement;
          fraction = Clamp(rng.Normal(base, 0.05), 0.05, 0.95);
          // Keep the drawn dominant side stable under the noise.
          if (positive && fraction <= 0.5) fraction = 0.55;
          if (!positive && fraction > 0.5) fraction = 0.45;
        }
        truth.positive_fraction[i] = fraction;
        truth.dominant[i] =
            fraction > 0.5 ? Polarity::kPositive : Polarity::kNegative;
      }
      const auto key = std::make_pair(type, truth.property);
      if (world.ground_truth_index_.count(key) > 0) {
        return Status::AlreadyExists("duplicate property '" + truth.property +
                                     "' on type '" + type_spec.name + "'");
      }
      world.ground_truth_index_[key] = world.ground_truths_.size();
      world.ground_truths_.push_back(std::move(truth));
    }
  }

  // --- Ambiguous aliases: pair random entities across the whole world ----
  rng.Shuffle(ambiguity_candidates);
  for (size_t i = 0; i + 1 < ambiguity_candidates.size(); i += 2) {
    const std::string shared = names.Generate(rng);
    SURVEYOR_RETURN_IF_ERROR(
        world.kb_.AddAlias(shared, ambiguity_candidates[i]));
    SURVEYOR_RETURN_IF_ERROR(
        world.kb_.AddAlias(shared, ambiguity_candidates[i + 1]));
    world.lexicon_.AddWord(shared, Pos::kNoun);
  }

  // --- Normalized popularity (per type) ----------------------------------
  world.normalized_popularity_.resize(world.kb_.num_entities(), 0.0);
  for (TypeId t = 0; t < world.kb_.num_types(); ++t) {
    double max_pop = 0.0;
    for (EntityId id : world.kb_.EntitiesOfType(t)) {
      max_pop = std::max(max_pop, world.kb_.entity(id).popularity);
    }
    if (max_pop <= 0.0) max_pop = 1.0;
    for (EntityId id : world.kb_.EntitiesOfType(t)) {
      world.normalized_popularity_[id] =
          Clamp(world.kb_.entity(id).popularity / max_pop, 1e-9, 1.0);
    }
  }
  return world;
}

}  // namespace surveyor
