#include "corpus/generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/math.h"

namespace surveyor {

CorpusGenerator::CorpusGenerator(const World* world, GeneratorOptions options)
    : world_(world), options_(std::move(options)) {
  SURVEYOR_CHECK(world_ != nullptr);
  SURVEYOR_CHECK_GT(options_.author_population, 0.0);
  SURVEYOR_CHECK_GT(options_.mean_sentences_per_doc, 0);
  for (const RegionSpec& region : options_.regions) {
    SURVEYOR_CHECK_GT(region.weight, 0.0);
  }
}

double CorpusGenerator::ExposedAuthors(EntityId entity) const {
  return options_.author_population *
         std::pow(world_->NormalizedPopularity(entity),
                  options_.exposure_exponent);
}

ExpectedCounts CorpusGenerator::ExpectedCountsFor(
    const PropertyGroundTruth& truth, size_t index) const {
  SURVEYOR_CHECK_LT(index, truth.entities.size());
  const PropertySpec& spec = *truth.spec;
  const double exposed = ExposedAuthors(truth.entities[index]);
  const double fraction = truth.positive_fraction[index];
  ExpectedCounts expected;
  expected.positive = exposed * fraction * spec.express_positive;
  expected.negative = exposed * (1.0 - fraction) * spec.express_negative;
  return expected;
}

namespace {

/// Shifts an opinion fraction by a regional disposition in logit space.
double ShiftFraction(double fraction, double logit_shift) {
  if (logit_shift == 0.0) return fraction;
  const double clamped = std::min(std::max(fraction, 1e-6), 1.0 - 1e-6);
  return Sigmoid(std::log(clamped / (1.0 - clamped)) + logit_shift);
}

}  // namespace

std::vector<RawDocument> CorpusGenerator::Generate() const {
  Rng rng(options_.seed);
  SentenceRealizer realizer(world_, options_.realization);

  // Effective regions: one anonymous region when none configured.
  std::vector<RegionSpec> regions = options_.regions;
  if (regions.empty()) regions.push_back(RegionSpec{});
  double total_weight = 0.0;
  for (const RegionSpec& region : regions) total_weight += region.weight;

  // One sentence pool per region; documents never mix regions.
  std::vector<std::vector<std::string>> pools(regions.size());

  for (const PropertyGroundTruth& truth : world_->ground_truths()) {
    for (size_t i = 0; i < truth.entities.size(); ++i) {
      const EntityId entity = truth.entities[i];
      const double exposed = ExposedAuthors(entity);
      const PropertySpec& spec = *truth.spec;

      for (size_t r = 0; r < regions.size(); ++r) {
        const double share = regions[r].weight / total_weight;
        const int64_t authors =
            static_cast<int64_t>(std::llround(exposed * share));
        if (authors <= 0) continue;
        const double fraction = ShiftFraction(
            truth.positive_fraction[i], regions[r].opinion_logit_shift);
        std::vector<std::string>& pool = pools[r];

        // Each exposed author holds an opinion and decides (independently)
        // whether to express it — aggregate Binomial draws.
        const int64_t num_positive =
            rng.Binomial(authors, fraction * spec.express_positive);
        const int64_t num_negative =
            rng.Binomial(authors, (1.0 - fraction) * spec.express_negative);
        for (int64_t k = 0; k < num_positive; ++k) {
          pool.push_back(realizer.RealizeStatement(truth, i, true, rng));
        }
        for (int64_t k = 0; k < num_negative; ++k) {
          pool.push_back(realizer.RealizeStatement(truth, i, false, rng));
        }

        const double statement_mean =
            static_cast<double>(authors) *
            (fraction * spec.express_positive +
             (1.0 - fraction) * spec.express_negative);

        // Non-intrinsic statements: aspect-qualified opinions ("bad for
        // parking") whose polarity is essentially uncorrelated with the
        // intrinsic property — the reason the checks exist.
        const int64_t num_nonintrinsic =
            rng.Poisson(options_.nonintrinsic_fraction * statement_mean);
        for (int64_t k = 0; k < num_nonintrinsic; ++k) {
          pool.push_back(
              realizer.RealizeNonIntrinsic(truth, i, rng.Bernoulli(0.5), rng));
        }

        // Attributive noise: "the big X impressed tourists". A small share
        // reflects a genuine positive opinion; most is idiomatic usage with
        // a random adjective — the quality problem of pattern versions 1/2.
        const int64_t num_attributive =
            rng.Poisson(options_.attributive_fraction * statement_mean);
        for (int64_t k = 0; k < num_attributive; ++k) {
          std::string adjective = spec.adjective;
          bool keep = rng.Bernoulli(fraction);
          if (rng.Bernoulli(0.85)) {
            // Idiomatic: any property adjective of the type.
            std::vector<const PropertyGroundTruth*> others;
            for (const PropertyGroundTruth& other : world_->ground_truths()) {
              if (other.type == truth.type) others.push_back(&other);
            }
            adjective = others[rng.Index(others.size())]->spec->adjective;
            keep = true;
          }
          if (keep) {
            pool.push_back(
                realizer.RealizeAttributive(entity, adjective, rng));
          }
        }

        // Filler mentioning the entity (plus some with no entity at all).
        const int64_t num_filler =
            rng.Poisson(options_.filler_per_statement * statement_mean);
        for (int64_t k = 0; k < num_filler; ++k) {
          const EntityId filler_entity =
              rng.Bernoulli(0.8) ? entity : kInvalidEntity;
          pool.push_back(realizer.RealizeFiller(filler_entity, rng));
        }
      }
    }
  }

  // Shuffle each pool and pack it into documents. Statement independence
  // across documents is the model's core assumption; a uniform shuffle of
  // independent draws preserves it. Documents are region-homogeneous so
  // the pipeline can be specialized by domain filtering.
  std::vector<RawDocument> documents;
  int64_t doc_id = 0;
  for (size_t r = 0; r < regions.size(); ++r) {
    std::vector<std::string>& pool = pools[r];
    rng.Shuffle(pool);
    size_t i = 0;
    while (i < pool.size()) {
      const size_t doc_size = 1 + rng.Index(static_cast<size_t>(
                                      2 * options_.mean_sentences_per_doc - 1));
      RawDocument doc;
      doc.doc_id = doc_id++;
      doc.domain = regions[r].domain;
      for (size_t k = 0; k < doc_size && i < pool.size(); ++k, ++i) {
        doc.text += pool[i];
        doc.text += ". ";
      }
      documents.push_back(std::move(doc));
    }
  }
  return documents;
}

}  // namespace surveyor
