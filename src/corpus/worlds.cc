#include "corpus/worlds.h"

#include <cmath>

#include "corpus/name_generator.h"
#include "util/rng.h"

namespace surveyor {
namespace {

/// Compact builder for attribute-free properties.
PropertySpec Subjective(const char* adjective, double prevalence,
                        double agreement, double express_positive,
                        double express_negative) {
  PropertySpec spec;
  spec.adjective = adjective;
  spec.prevalence = prevalence;
  spec.agreement = agreement;
  spec.express_positive = express_positive;
  spec.express_negative = express_negative;
  return spec;
}

/// Compact builder for attribute-driven properties.
PropertySpec AttributeDriven(const char* adjective, const char* attribute,
                             double threshold, double slope, bool inverted,
                             double express_positive,
                             double express_negative) {
  PropertySpec spec;
  spec.adjective = adjective;
  spec.attribute = attribute;
  spec.attribute_threshold = threshold;
  spec.attribute_slope = slope;
  spec.inverted = inverted;
  spec.express_positive = express_positive;
  spec.express_negative = express_negative;
  return spec;
}

EntitySeed Seed(const char* name) {
  EntitySeed seed;
  seed.name = name;
  return seed;
}

EntitySeed SeedWithAttribute(const char* name, double attribute) {
  EntitySeed seed;
  seed.name = name;
  seed.attribute = attribute;
  seed.has_attribute = true;
  return seed;
}

}  // namespace

WorldConfig MakePaperWorldConfig(int entities_per_type, uint64_t seed) {
  WorldConfig config;
  config.seed = seed;

  // --- Animals (Fig. 10 seeds) -------------------------------------------
  TypeSpec animals;
  animals.name = "animal";
  animals.num_entities = entities_per_type;
  animals.popularity_zipf_exponent = 0.9;
  animals.ambiguous_alias_fraction = 0.03;
  for (const char* name :
       {"pony", "spider", "koala", "rat", "scorpion", "crow", "kitten",
        "monkey", "octopus", "beaver", "goose", "tiger", "moose", "frog",
        "grizzly bear", "alligator", "puppy", "camel", "white shark",
        "lion"}) {
    animals.seeds.push_back(Seed(name));
  }
  // Worker agreement on "dangerous animals" is high (18/20 in the paper);
  // positive opinions are voiced far more often than negative ones.
  animals.properties = {
      Subjective("dangerous", 0.24, 0.92, 0.024, 0.0004),
      Subjective("cute", 0.24, 0.88, 0.030, 0.0004),
      Subjective("big", 0.21, 0.85, 0.018, 0.00035),
      Subjective("friendly", 0.21, 0.82, 0.016, 0.00035),
      Subjective("deadly", 0.15, 0.90, 0.020, 0.0004),
  };
  config.types.push_back(std::move(animals));

  // --- Celebrities --------------------------------------------------------
  TypeSpec celebrities;
  celebrities.name = "celebrity";
  celebrities.num_entities = entities_per_type;
  celebrities.popularity_zipf_exponent = 0.9;
  celebrities.ambiguous_alias_fraction = 0.05;
  celebrities.properties = {
      Subjective("cool", 0.27, 0.80, 0.020, 0.0004),
      Subjective("crazy", 0.18, 0.78, 0.015, 0.0003),
      Subjective("pretty", 0.27, 0.84, 0.025, 0.0004),
      // "quiet" is the kind of property people mostly deny loudly, and
      // famous (popular) celebrities are the least likely to have it.
      [] {
        PropertySpec quiet = Subjective("quiet", 0.15, 0.80, 0.005, 0.012);
        quiet.popularity_coupling = -1.0;
        return quiet;
      }(),
      Subjective("young", 0.21, 0.88, 0.012, 0.0003),
  };
  config.types.push_back(std::move(celebrities));

  // --- Cities (population attribute drives "big") -------------------------
  TypeSpec cities;
  cities.name = "city";
  cities.num_entities = entities_per_type;
  cities.popularity_zipf_exponent = 0.9;
  cities.ambiguous_alias_fraction = 0.04;
  AttributeSpec population;
  population.name = "population";
  population.log10_min = 3.0;
  population.log10_max = 7.0;
  population.popularity_exponent = 0.7;
  cities.attribute = population;
  cities.seeds = {
      SeedWithAttribute("san francisco", 870000),
      SeedWithAttribute("los angeles", 3900000),
      SeedWithAttribute("chicago", 2700000),
      SeedWithAttribute("palo alto", 66000),
      SeedWithAttribute("sacramento", 520000),
      SeedWithAttribute("berkeley", 120000),
      SeedWithAttribute("monterey", 28000),
      SeedWithAttribute("napa", 79000),
  };
  cities.properties = {
      AttributeDriven("big", "population", 2.5e5, 1.2, false, 0.020, 0.00035),
      // Like the paper's "safe cities": people rather voice "not calm".
      [] {
        PropertySpec calm = Subjective("calm", 0.21, 0.78, 0.0025, 0.010);
        calm.popularity_coupling = -0.8;
        return calm;
      }(),
      Subjective("cheap", 0.18, 0.80, 0.010, 0.00025),
      // Negative experiences ("not safe", "hectic") travel louder.
      Subjective("hectic", 0.18, 0.76, 0.012, 0.002),
      Subjective("multicultural", 0.24, 0.86, 0.014, 0.0003),
  };
  config.types.push_back(std::move(cities));

  // --- Professions ---------------------------------------------------------
  TypeSpec professions;
  professions.name = "profession";
  professions.num_entities = entities_per_type;
  professions.popularity_zipf_exponent = 0.9;
  for (const char* name : {"firefighter", "teacher", "nurse", "pilot",
                           "miner", "actuary", "farmer", "surgeon"}) {
    professions.seeds.push_back(Seed(name));
  }
  professions.properties = {
      Subjective("dangerous", 0.18, 0.84, 0.018, 0.0004),
      Subjective("exciting", 0.21, 0.78, 0.016, 0.00035),
      Subjective("rare", 0.15, 0.82, 0.010, 0.00025),
      Subjective("solid", 0.24, 0.76, 0.008, 0.0002),
      Subjective("vital", 0.24, 0.85, 0.014, 0.0003),
  };
  config.types.push_back(std::move(professions));

  // --- Sports ---------------------------------------------------------------
  TypeSpec sports;
  sports.name = "sport";
  sports.num_entities = entities_per_type;
  sports.popularity_zipf_exponent = 0.9;
  for (const char* name : {"soccer", "chess", "rugby", "golf", "boxing",
                           "curling", "tennis", "cricket"}) {
    sports.seeds.push_back(Seed(name));
  }
  sports.properties = {
      Subjective("addictive", 0.24, 0.80, 0.018, 0.0004),
      // Lower consensus: "boring sports" (agreement ~15/20 in the paper).
      // Mild inverse bias: fans deny "boring" loudly.
      [] {
        PropertySpec boring = Subjective("boring", 0.18, 0.72, 0.004, 0.008);
        boring.popularity_coupling = -0.8;
        return boring;
      }(),
      // "dangerous sports" agree less than "dangerous animals" (~16/20).
      Subjective("dangerous", 0.21, 0.80, 0.020, 0.00045),
      Subjective("fast", 0.24, 0.84, 0.016, 0.00035),
      // "popular" tracks popularity almost by definition.
      [] {
        PropertySpec popular = Subjective("popular", 0.27, 0.86, 0.022, 0.00045);
        popular.popularity_coupling = 2.0;
        return popular;
      }(),
  };
  config.types.push_back(std::move(sports));
  return config;
}

WorldConfig MakeBigCityWorldConfig(int num_cities, uint64_t seed) {
  WorldConfig config;
  config.seed = seed;
  TypeSpec cities;
  cities.name = "city";
  cities.num_entities = num_cities;
  AttributeSpec population;
  population.name = "population";
  population.log10_min = 2.0;
  population.log10_max = 7.0;
  population.popularity_exponent = 0.75;
  cities.attribute = population;
  cities.seeds = {
      SeedWithAttribute("san francisco", 870000),
      SeedWithAttribute("los angeles", 3900000),
      SeedWithAttribute("palo alto", 66000),
      SeedWithAttribute("fresno", 540000),
      SeedWithAttribute("eureka", 27000),
  };
  cities.properties = {
      AttributeDriven("big", "population", 2.0e5, 1.3, false, 0.020, 0.0015),
  };
  config.types.push_back(std::move(cities));
  return config;
}

WorldConfig MakeWealthyCountryWorldConfig(uint64_t seed) {
  WorldConfig config;
  config.seed = seed;
  TypeSpec countries;
  countries.name = "country";
  countries.num_entities = 190;
  AttributeSpec gdp;
  gdp.name = "gdp per capita";
  gdp.log10_min = 2.6;
  gdp.log10_max = 5.1;
  gdp.popularity_exponent = 0.55;
  countries.attribute = gdp;
  countries.seeds = {
      SeedWithAttribute("switzerland", 85000),
      SeedWithAttribute("norway", 82000),
      SeedWithAttribute("germany", 48000),
      SeedWithAttribute("brazil", 8800),
      SeedWithAttribute("india", 1500),
      SeedWithAttribute("chad", 700),
  };
  countries.properties = {
      AttributeDriven("wealthy", "gdp per capita", 2.0e4, 1.4, false, 0.015,
                      0.003),
  };
  config.types.push_back(std::move(countries));
  return config;
}

WorldConfig MakeBigLakeWorldConfig(uint64_t seed) {
  WorldConfig config;
  config.seed = seed;
  TypeSpec lakes;
  lakes.name = "lake";
  lakes.num_entities = 120;
  AttributeSpec area;
  area.name = "area";
  area.log10_min = -1.0;
  area.log10_max = 2.8;
  area.popularity_exponent = 0.8;
  lakes.attribute = area;
  lakes.seeds = {
      SeedWithAttribute("geneva", 580),  SeedWithAttribute("constance", 536),
      SeedWithAttribute("neuchatel", 218), SeedWithAttribute("lucerne", 114),
      SeedWithAttribute("zurich", 88),   SeedWithAttribute("thun", 48),
      SeedWithAttribute("brienz", 30),   SeedWithAttribute("walen", 24),
  };
  lakes.properties = {
      AttributeDriven("big", "area", 30.0, 1.5, false, 0.015, 0.002),
  };
  config.types.push_back(std::move(lakes));
  return config;
}

WorldConfig MakeHighMountainWorldConfig(uint64_t seed) {
  WorldConfig config;
  config.seed = seed;
  TypeSpec mountains;
  mountains.name = "mountain";
  mountains.num_entities = 150;
  AttributeSpec height;
  height.name = "relative height";
  height.log10_min = 2.5;
  height.log10_max = 3.2;
  height.popularity_exponent = 1.6;
  mountains.attribute = height;
  mountains.seeds = {
      SeedWithAttribute("ben nevis", 1345),
      SeedWithAttribute("snowdon", 1085),
      SeedWithAttribute("scafell pike", 978),
      SeedWithAttribute("helvellyn", 950),
      SeedWithAttribute("slieve donard", 850),
  };
  mountains.properties = {
      AttributeDriven("high", "relative height", 700.0, 3.0, false, 0.018,
                      0.003),
  };
  config.types.push_back(std::move(mountains));
  return config;
}

WorldConfig MakeWebScaleWorldConfig(int num_types, uint64_t seed) {
  WorldConfig config;
  config.seed = seed;
  Rng rng(seed ^ 0x5eedULL);
  NameGenerator names;
  for (int t = 0; t < num_types; ++t) {
    TypeSpec type;
    type.name = names.Generate(rng);
    // Entity counts: log-uniform 50..1500.
    type.num_entities =
        static_cast<int>(50.0 * std::pow(10.0, rng.Uniform(0.0, 1.5)));
    type.popularity_zipf_exponent = rng.Uniform(0.9, 1.3);
    type.ambiguous_alias_fraction = 0.02;
    // Property counts: log-uniform 1..40 — the skew behind Fig. 9(c).
    const int num_properties =
        static_cast<int>(std::pow(40.0, rng.Uniform(0.0, 1.0)));
    for (int p = 0; p < std::max(1, num_properties); ++p) {
      PropertySpec spec;
      spec.adjective = names.Generate(rng);
      spec.prevalence = rng.Uniform(0.10, 0.40);
      spec.agreement = rng.Uniform(0.7, 0.95);
      // Weaker occurrence coupling than the curated world: popular
      // entities of obscure types are not reliably property-positive, so
      // count-based votes err more often.
      spec.popularity_coupling = 0.5;
      // Expression probability log-uniform. The polarity bias skews
      // heavily toward positive statements (the Web-wide pattern the
      // paper observes), with occasional mild or inverse-bias pairs.
      spec.express_positive = std::pow(10.0, rng.Uniform(-2.8, -1.6));
      const double bias = std::pow(10.0, rng.Uniform(-1.8, -0.2));
      spec.express_negative = spec.express_positive * bias;
      if (rng.Bernoulli(0.07)) {
        std::swap(spec.express_positive, spec.express_negative);
        spec.popularity_coupling = -spec.popularity_coupling;
      }
      type.properties.push_back(std::move(spec));
    }
    config.types.push_back(std::move(type));
  }
  return config;
}

WorldConfig MakeTinyWorldConfig(uint64_t seed) {
  WorldConfig config;
  config.seed = seed;
  TypeSpec animals;
  animals.name = "animal";
  animals.num_entities = 12;
  for (const char* name : {"kitten", "puppy", "spider", "tiger", "koala",
                           "scorpion", "rat", "pony"}) {
    animals.seeds.push_back(Seed(name));
  }
  animals.properties = {
      Subjective("cute", 0.5, 0.9, 0.05, 0.005),
      Subjective("dangerous", 0.4, 0.9, 0.04, 0.008),
  };
  config.types.push_back(std::move(animals));

  TypeSpec cities;
  cities.name = "city";
  cities.num_entities = 10;
  AttributeSpec population;
  population.name = "population";
  population.log10_min = 3.5;
  population.log10_max = 6.8;
  population.popularity_exponent = 0.7;
  cities.attribute = population;
  cities.seeds = {SeedWithAttribute("san francisco", 870000),
                  SeedWithAttribute("palo alto", 66000)};
  cities.properties = {
      AttributeDriven("big", "population", 2.5e5, 1.5, false, 0.05, 0.004),
  };
  config.types.push_back(std::move(cities));
  return config;
}

}  // namespace surveyor
