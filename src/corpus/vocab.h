#ifndef SURVEYOR_CORPUS_VOCAB_H_
#define SURVEYOR_CORPUS_VOCAB_H_

#include <cstddef>

namespace surveyor {

/// Shared open-class vocabulary used by the sentence realizer and
/// registered into the lexicon by the world builder. Kept in one place so
/// realizer output always parses with the world's lexicon.
inline constexpr const char* kFillerVerbs[] = {
    "visited", "visit", "visits", "enjoyed", "loves",
    "love",    "likes", "has",    "have",    "described",
};

/// Nouns used in filler sentences and prepositional attachments.
inline constexpr const char* kFillerNouns[] = {
    "harbor", "museum", "forest", "river",  "story",  "garden",
    "market", "summer", "winter", "north",  "south",  "history",
};

/// Nouns used to render non-intrinsic constrictions ("bad for parking").
inline constexpr const char* kAspectNouns[] = {
    "parking", "families", "tourists", "beginners", "children", "commuters",
};

inline constexpr size_t kNumFillerVerbs = 10;
inline constexpr size_t kNumFillerNouns = 12;
inline constexpr size_t kNumAspectNouns = 6;

}  // namespace surveyor

#endif  // SURVEYOR_CORPUS_VOCAB_H_
