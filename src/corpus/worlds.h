#ifndef SURVEYOR_CORPUS_WORLDS_H_
#define SURVEYOR_CORPUS_WORLDS_H_

#include <cstdint>

#include "corpus/world.h"

namespace surveyor {

/// The evaluation world of paper Section 7.3 (Table 2): five entity types
/// (animal, celebrity, city, profession, sport) with five subjective
/// properties each, including the Figure-10 animals as curated seeds.
/// Expression biases and agreement levels vary per property-type pair —
/// that variety is precisely what the per-pair model exists for.
WorldConfig MakePaperWorldConfig(int entities_per_type = 300,
                                 uint64_t seed = 7);

/// The Section-2 empirical study: `num_cities` Californian cities with a
/// population attribute and the single property "big" (population-coupled
/// dominant opinion, strong polarity and occurrence bias).
WorldConfig MakeBigCityWorldConfig(int num_cities = 461, uint64_t seed = 11);

/// Appendix A worlds: "wealthy country" (GDP per capita),
/// "big lake" (area, Swiss lakes), "high mountain" (relative height,
/// British Isles).
WorldConfig MakeWealthyCountryWorldConfig(uint64_t seed = 13);
WorldConfig MakeBigLakeWorldConfig(uint64_t seed = 17);
WorldConfig MakeHighMountainWorldConfig(uint64_t seed = 19);

/// A randomized many-type world approximating the full Web run of
/// Section 7.1/7.2: `num_types` types with skewed property counts, entity
/// counts, popularity and expression parameters. Used for the extraction
/// statistics (Fig. 9), the random-sample comparison (Table 5 / Appendix
/// D), and the scaling benchmarks.
WorldConfig MakeWebScaleWorldConfig(int num_types = 30, uint64_t seed = 23);

/// A two-type, few-entity world for quickstarts and fast tests.
WorldConfig MakeTinyWorldConfig(uint64_t seed = 3);

}  // namespace surveyor

#endif  // SURVEYOR_CORPUS_WORLDS_H_
