#ifndef SURVEYOR_CORPUS_GENERATOR_H_
#define SURVEYOR_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/realizer.h"
#include "corpus/world.h"
#include "text/document.h"
#include "util/rng.h"

namespace surveyor {

/// An author sub-population with its own domain extension and regional
/// disposition. The paper notes that opinions differ by region and that
/// Surveyor specializes its output by restricting the input to documents
/// from one domain (Section 2); the simulator reproduces that by shifting
/// each region's opinion distribution in log-odds space.
struct RegionSpec {
  /// Domain extension stamped on the region's documents ("us", "cn", ...).
  std::string domain;
  /// Share of the author population (normalized across regions).
  double weight = 1.0;
  /// Regional disposition: added to the logit of every positive-opinion
  /// fraction for authors of this region.
  double opinion_logit_shift = 0.0;
};

/// Options for corpus generation.
struct GeneratorOptions {
  uint64_t seed = 99;
  /// Size n of the author population. The number of statements an entity
  /// receives scales with n times its normalized popularity times the
  /// opinion-dependent expression probabilities — the generative story of
  /// paper Section 5, simulated for real instead of assumed.
  double author_population = 20000.0;
  /// Exposure grows sublinearly with popularity: of the authors who know
  /// an entity, only a topicality-limited fraction ever considers a given
  /// property of it, and that fraction shrinks as audiences grow. The
  /// number of exposed authors is author_population *
  /// popularity^exposure_exponent.
  double exposure_exponent = 0.45;
  /// Filler sentences per evidence statement (corpus noise volume).
  double filler_per_statement = 0.8;
  /// Non-intrinsic statements as a fraction of evidence statements.
  double nonintrinsic_fraction = 0.30;
  /// Attributive mentions ("the big X impressed tourists") as a fraction
  /// of evidence statements; adjectives drawn at random 85% of the time
  /// (idiomatic usage), from true-positive opinions otherwise. Attributive
  /// use dominates adjective occurrences on the real Web, which is why the
  /// paper's unchecked pattern versions extract an order of magnitude more
  /// (Appendix B).
  double attributive_fraction = 1.5;
  /// Mean sentences per generated document.
  int mean_sentences_per_doc = 4;
  /// Author sub-populations; empty means one anonymous region (documents
  /// carry no domain).
  std::vector<RegionSpec> regions;
  RealizationOptions realization;
};

/// Expected statement counts for an entity-property pair (the oracle the
/// simulator draws around; used by statistical tests).
struct ExpectedCounts {
  double positive = 0.0;
  double negative = 0.0;
};

/// Generates the synthetic Web snapshot from a world: draws per-author
/// statement decisions in aggregate (Binomial over the exposed author
/// population), renders them as English sentences, mixes in non-intrinsic
/// statements, attributive noise and filler, shuffles everything and packs
/// it into documents.
class CorpusGenerator {
 public:
  /// `world` must outlive the generator.
  CorpusGenerator(const World* world, GeneratorOptions options = {});

  /// Generates the whole corpus. Deterministic given the options' seed.
  std::vector<RawDocument> Generate() const;

  /// Oracle: the expected (mean) number of positive/negative evidence
  /// statements for entity `index` of `truth`, before realization noise.
  ExpectedCounts ExpectedCountsFor(const PropertyGroundTruth& truth,
                                   size_t index) const;

  /// Number of exposed authors for an entity (n times normalized
  /// popularity).
  double ExposedAuthors(EntityId entity) const;

  const GeneratorOptions& options() const { return options_; }

 private:
  const World* world_;
  GeneratorOptions options_;
};

}  // namespace surveyor

#endif  // SURVEYOR_CORPUS_GENERATOR_H_
