#ifndef SURVEYOR_CORPUS_REALIZER_H_
#define SURVEYOR_CORPUS_REALIZER_H_

#include <string>

#include "corpus/world.h"
#include "util/rng.h"

namespace surveyor {

/// Style probabilities for rendering statements as English sentences.
struct RealizationOptions {
  /// "X is really big" — an intensity adverb joins the extracted property
  /// string, fragmenting counts exactly as on the real Web.
  double intensity_adverb_prob = 0.05;
  /// "I think that X is big" / "I don't think that X is big".
  double embedded_clause_prob = 0.12;
  /// "I don't think that X is never big" (positive via double negation).
  double double_negation_prob = 0.02;
  /// "X is a big city" instead of "X is big".
  double predicate_nominal_prob = 0.45;
  /// "X seems big" — copula-class verb, only matched by pattern v1/v2.
  double seems_prob = 0.05;
  /// "I find X big" / "I don't find X big" — the small-clause form of the
  /// paper's opening example ("I find kittens cute").
  double small_clause_prob = 0.06;
  /// "X is a big and beautiful city" — adds a second property the entity's
  /// dominant opinion also affirms.
  double conjunction_prob = 0.08;
  /// Probability of referring to the entity by a non-canonical alias.
  double alias_prob = 0.25;
};

/// Renders statements, noise, and filler as plain English sentences
/// (without the terminating period). Everything the realizer outputs is
/// constructed only from the world's registered vocabulary, so the
/// annotation pipeline can always tokenize it; most — deliberately not
/// all — of it parses.
class SentenceRealizer {
 public:
  /// `world` must outlive the realizer.
  SentenceRealizer(const World* world, RealizationOptions options = {});

  /// Renders one opinion statement about entity `truth.entities[index]`
  /// asserting (`positive`) or denying the property.
  std::string RealizeStatement(const PropertyGroundTruth& truth, size_t index,
                               bool positive, Rng& rng) const;

  /// Renders an attributive use: "the big {entity} impressed tourists".
  /// Only the unchecked pattern versions (v1/v2) extract these.
  std::string RealizeAttributive(EntityId entity, const std::string& adjective,
                                 Rng& rng) const;

  /// Renders a non-intrinsic statement ("X is bad for parking",
  /// "X is a big city in the north") that the intrinsicness checks filter.
  std::string RealizeNonIntrinsic(const PropertyGroundTruth& truth,
                                  size_t index, bool positive, Rng& rng) const;

  /// Renders a filler sentence; mentions `entity` when valid, otherwise a
  /// generic sentence. A fraction of filler is intentionally outside the
  /// parser's grammar.
  std::string RealizeFiller(EntityId entity, Rng& rng) const;

  const RealizationOptions& options() const { return options_; }

 private:
  /// Picks a surface form for the entity (canonical name or alias).
  std::string SurfaceForm(EntityId entity, Rng& rng) const;

  /// Picks a second adjective whose dominant opinion on the entity is also
  /// positive; empty when none exists.
  std::string PickConjunctAdjective(const PropertyGroundTruth& truth,
                                    size_t index, Rng& rng) const;

  const World* world_;
  RealizationOptions options_;
};

}  // namespace surveyor

#endif  // SURVEYOR_CORPUS_REALIZER_H_
