#include "corpus/realizer.h"

#include "corpus/vocab.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

constexpr const char* kIntensityAdverbs[] = {"very", "really", "quite",
                                             "extremely", "truly"};

const char* Pick(const char* const* items, size_t count, Rng& rng) {
  return items[rng.Index(count)];
}

}  // namespace

SentenceRealizer::SentenceRealizer(const World* world,
                                   RealizationOptions options)
    : world_(world), options_(options) {
  SURVEYOR_CHECK(world_ != nullptr);
}

std::string SentenceRealizer::SurfaceForm(EntityId entity, Rng& rng) const {
  const Entity& e = world_->kb().entity(entity);
  if (e.aliases.size() > 1 && rng.Bernoulli(options_.alias_prob)) {
    // Pick any non-canonical alias.
    const size_t pick = 1 + rng.Index(e.aliases.size() - 1);
    return e.aliases[pick];
  }
  return e.canonical_name;
}

std::string SentenceRealizer::PickConjunctAdjective(
    const PropertyGroundTruth& truth, size_t index, Rng& rng) const {
  std::vector<const std::string*> candidates;
  for (const PropertyGroundTruth& other : world_->ground_truths()) {
    if (other.type != truth.type) continue;
    if (other.property == truth.property) continue;
    if (!other.spec->adverb.empty()) continue;  // conjoin plain adjectives
    // Entity vectors of all properties of one type share the same order.
    if (other.dominant[index] != Polarity::kPositive) continue;
    candidates.push_back(&other.spec->adjective);
  }
  if (candidates.empty()) return "";
  return *candidates[rng.Index(candidates.size())];
}

std::string SentenceRealizer::RealizeStatement(const PropertyGroundTruth& truth,
                                               size_t index, bool positive,
                                               Rng& rng) const {
  SURVEYOR_CHECK_LT(index, truth.entities.size());
  const PropertySpec& spec = *truth.spec;
  const std::string surface = SurfaceForm(truth.entities[index], rng);
  const std::string& type_noun = world_->kb().TypeName(truth.type);

  // Property rendering: fixed compound adverb, plus an optional intensity
  // adverb that becomes part of the extracted property string.
  std::string property;
  if (rng.Bernoulli(options_.intensity_adverb_prob)) {
    property += Pick(kIntensityAdverbs, std::size(kIntensityAdverbs), rng);
    property += ' ';
  }
  if (!spec.adverb.empty()) {
    property += spec.adverb;
    property += ' ';
  }
  property += spec.adjective;

  if (positive && rng.Bernoulli(options_.double_negation_prob)) {
    return "i don't think that " + surface + " is never " + property;
  }
  if (rng.Bernoulli(options_.embedded_clause_prob)) {
    if (positive) {
      switch (rng.UniformInt(0, 2)) {
        case 0:
          return "i think that " + surface + " is " + property;
        case 1:
          return "we believe that " + surface + " is " + property;
        default:
          return "everyone says that " + surface + " is " + property;
      }
    }
    return "i don't think that " + surface + " is " + property;
  }
  if (rng.Bernoulli(options_.small_clause_prob)) {
    if (positive) {
      return (rng.Bernoulli(0.5) ? "i find " : "we consider ") + surface +
             " " + property;
    }
    return "i don't find " + surface + " " + property;
  }
  if (positive && rng.Bernoulli(options_.seems_prob)) {
    return surface + " seems " + property;
  }
  if (rng.Bernoulli(options_.predicate_nominal_prob)) {
    std::string adjectives = property;
    if (positive && rng.Bernoulli(options_.conjunction_prob)) {
      const std::string conjunct = PickConjunctAdjective(truth, index, rng);
      if (!conjunct.empty()) adjectives += " and " + conjunct;
    }
    const char* article =
        (!adjectives.empty() && (adjectives[0] == 'a' || adjectives[0] == 'e' ||
                                 adjectives[0] == 'i' || adjectives[0] == 'o' ||
                                 adjectives[0] == 'u'))
            ? "an "
            : "a ";
    if (positive) {
      return surface + " is " + article + adjectives + " " + type_noun;
    }
    return surface + " is not " + article + adjectives + " " + type_noun;
  }
  // Plain adjectival complement.
  if (positive) {
    std::string adjectives = property;
    if (rng.Bernoulli(options_.conjunction_prob)) {
      const std::string conjunct = PickConjunctAdjective(truth, index, rng);
      if (!conjunct.empty()) adjectives += " and " + conjunct;
    }
    return surface + " is " + adjectives;
  }
  if (rng.Bernoulli(0.3)) {
    return surface + " is never " + property;
  }
  return surface + " is not " + property;
}

std::string SentenceRealizer::RealizeAttributive(EntityId entity,
                                                 const std::string& adjective,
                                                 Rng& rng) const {
  const std::string surface = SurfaceForm(entity, rng);
  const char* noun = Pick(kFillerNouns, kNumFillerNouns, rng);
  if (rng.Bernoulli(0.5)) {
    return "the " + adjective + " " + surface + " " +
           Pick(kFillerVerbs, kNumFillerVerbs, rng) + " the " + noun;
  }
  return "we visited the " + adjective + " " + surface;
}

std::string SentenceRealizer::RealizeNonIntrinsic(
    const PropertyGroundTruth& truth, size_t index, bool positive,
    Rng& rng) const {
  const PropertySpec& spec = *truth.spec;
  const std::string surface = SurfaceForm(truth.entities[index], rng);
  const std::string& type_noun = world_->kb().TypeName(truth.type);
  const char* aspect = Pick(kAspectNouns, kNumAspectNouns, rng);
  if (rng.Bernoulli(0.5)) {
    // "X is (not) bad for parking": prepositional constriction on the
    // adjectival complement.
    return surface + " is " + (positive ? "" : "not ") + spec.adjective +
           " for " + aspect;
  }
  // "X is (not) a big city in the north".
  const char* noun = Pick(kFillerNouns, kNumFillerNouns, rng);
  return surface + " is " + (positive ? "" : "not ") + "a " + spec.adjective +
         " " + type_noun + " in the " + noun;
}

std::string SentenceRealizer::RealizeFiller(EntityId entity, Rng& rng) const {
  const char* noun = Pick(kFillerNouns, kNumFillerNouns, rng);
  const char* noun2 = Pick(kFillerNouns, kNumFillerNouns, rng);
  if (entity == kInvalidEntity) {
    if (rng.Bernoulli(0.5)) {
      return std::string("we enjoyed the ") + noun;
    }
    return std::string("the ") + noun + " has a " + noun2;
  }
  const std::string surface = SurfaceForm(entity, rng);
  switch (rng.UniformInt(0, 4)) {
    case 0:
      return "people visit " + surface;
    case 1:
      return surface + " has a " + noun;
    case 2:
      return "we visited " + surface + " during the " + noun;
    case 3:
      return "they love the " + std::string(noun) + " of " + surface;
    default:
      // Deliberately outside the parser's grammar (subject NP with a
      // prepositional phrase); exercises the skip path like noisy Web text.
      return "the " + std::string(noun) + " of " + surface + " is " + noun2;
  }
}

}  // namespace surveyor
