#include "obs/build_info.h"

#include "obs/json_writer.h"

// CMake defines these on this translation unit only (src/obs/CMakeLists.txt);
// the fallbacks keep ad-hoc builds (e.g. a bare compiler invocation) working.
#ifndef SURVEYOR_BUILD_GIT_SHA
#define SURVEYOR_BUILD_GIT_SHA "unknown"
#endif
#ifndef SURVEYOR_BUILD_COMPILER
#define SURVEYOR_BUILD_COMPILER "unknown"
#endif
#ifndef SURVEYOR_BUILD_TYPE
#define SURVEYOR_BUILD_TYPE "unknown"
#endif
#ifndef SURVEYOR_BUILD_SANITIZER
#define SURVEYOR_BUILD_SANITIZER ""
#endif

namespace surveyor {
namespace obs {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{SURVEYOR_BUILD_GIT_SHA, SURVEYOR_BUILD_COMPILER,
                              SURVEYOR_BUILD_TYPE, SURVEYOR_BUILD_SANITIZER};
  return info;
}

void AppendBuildInfoJson(JsonWriter& writer) {
  const BuildInfo& info = GetBuildInfo();
  writer.Key("build_info")
      .BeginObject()
      .Key("git_sha")
      .Value(info.git_sha)
      .Key("compiler")
      .Value(info.compiler)
      .Key("build_type")
      .Value(info.build_type)
      .Key("sanitizer")
      .Value(info.sanitizer)
      .EndObject();
}

}  // namespace obs
}  // namespace surveyor
