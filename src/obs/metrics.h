#ifndef SURVEYOR_OBS_METRICS_H_
#define SURVEYOR_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace surveyor {
namespace obs {

/// Number of independent atomic shards per counter. Worker threads hash to
/// a shard, so concurrent increments from different threads almost never
/// touch the same cache line — the laptop-scale version of the per-node
/// counters the deployed Surveyor aggregated across 5000 machines.
inline constexpr size_t kCounterShards = 16;

/// Stable small index for the calling thread, assigned on first use.
/// Shared by counters and spans to pick shards / label trace records.
uint32_t CurrentThreadIndex();

/// A monotonically increasing sum. Increment is wait-free (one relaxed
/// atomic add on a thread-local shard); Value() folds the shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t delta = 1) {
    shards_[CurrentThreadIndex() % kCounterShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, kCounterShards> shards_{};
};

/// A value that can go up and down (queue depth, idle seconds, thread
/// counts). Set/Add are atomic; Add uses a CAS loop so it works on
/// toolchains without std::atomic<double>::fetch_add.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout of a histogram: fixed log-scaled upper bounds
/// first_bound * growth^i for i in [0, num_finite_buckets), plus an
/// implicit overflow bucket for values above the last bound.
struct HistogramOptions {
  double first_bound = 1.0;
  double growth = 2.0;
  int num_finite_buckets = 16;
};

/// A distribution with fixed log-scaled buckets. Record is lock-free (one
/// atomic add on the bucket plus count/sum updates).
class Histogram {
 public:
  /// A bucket's exemplar: the max-valued observation recorded with a
  /// trace id, linking the bucket to an inspectable trace on /tracez.
  /// trace_id == 0 means the bucket has none.
  struct BucketExemplar {
    uint64_t trace_id = 0;
    double value = 0.0;
  };

  explicit Histogram(HistogramOptions options = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value) { Record(value, 0); }

  /// Records `value`; when `exemplar_trace_id` is non-zero, offers
  /// (value, trace id) as the bucket's exemplar. The slot keeps the
  /// max-valued sample, so a bucket's exemplar is its worst known case.
  void Record(double value, uint64_t exemplar_trace_id);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.Value(); }

  /// Finite upper bounds, ascending. A value lands in the first bucket
  /// whose bound is >= value; values above the last bound land in the
  /// overflow bucket.
  const std::vector<double>& bucket_bounds() const { return bounds_; }

  /// Per-bucket observation counts; size bucket_bounds().size() + 1, the
  /// last entry being the overflow bucket.
  std::vector<int64_t> BucketCounts() const;

  /// Per-bucket exemplars; size bucket_bounds().size() + 1, the last
  /// entry being the overflow bucket.
  std::vector<BucketExemplar> Exemplars() const;

 private:
  struct ExemplarSlot {
    std::atomic<uint64_t> trace_id{0};
    std::atomic<double> value{0.0};
  };

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::unique_ptr<ExemplarSlot[]> exemplars_;
  std::atomic<int64_t> count_{0};
  Gauge sum_;
};

/// A read-only copy of one metric, used by exporters and run reports.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  /// Counter/gauge value; histogram sum of observations.
  double value = 0.0;
  /// Histogram observation count (0 for counters/gauges).
  int64_t count = 0;
  std::vector<double> bucket_bounds;
  std::vector<int64_t> bucket_counts;
  /// Per-bucket exemplars (empty for counters/gauges).
  std::vector<Histogram::BucketExemplar> exemplars;
  /// Help text for the # HELP exposition line (may be empty).
  std::string help;
};

std::string_view MetricKindName(MetricSnapshot::Kind kind);

/// Rewrites `name` into a valid Prometheus metric name
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): invalid characters become '_' and a
/// leading digit gains a '_' prefix. Valid names pass through unchanged.
std::string SanitizeMetricName(std::string_view name);

/// Escapes a Prometheus label value: backslash, double quote and newline
/// become \\, \" and \n (exposition-format rules).
std::string EscapeLabelValue(std::string_view value);

/// Owns named metrics. Lookup takes a mutex; hot paths resolve their
/// metric pointers once and increment lock-free afterwards. Metric names
/// follow the scheme surveyor_<stage>_<name> (see DESIGN.md §7).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name) SURVEYOR_EXCLUDES(mutex_);
  Gauge* GetGauge(const std::string& name) SURVEYOR_EXCLUDES(mutex_);
  Histogram* GetHistogram(const std::string& name,
                          HistogramOptions options = {})
      SURVEYOR_EXCLUDES(mutex_);

  /// Sets the help text emitted on the metric's # HELP exposition line.
  void SetHelp(const std::string& name, const std::string& help)
      SURVEYOR_EXCLUDES(mutex_);

  /// Copies every metric, sorted by name (counters, gauges and histograms
  /// interleaved).
  std::vector<MetricSnapshot> Snapshot() const SURVEYOR_EXCLUDES(mutex_);

  /// Prometheus text exposition format (# TYPE lines, _bucket/_sum/_count
  /// series for histograms).
  std::string ToPrometheusText() const;

  /// JSON object {"name": value, ...}; histograms expand to an object with
  /// count/sum/buckets.
  std::string ToJson() const;

 private:
  /// Help text registered for `name`, or empty. Factored out of
  /// Snapshot() so the guarded lookup carries an explicit REQUIRES
  /// contract instead of hiding in a lambda the analysis cannot see into.
  std::string HelpForLocked(const std::string& name) const
      SURVEYOR_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SURVEYOR_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      SURVEYOR_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SURVEYOR_GUARDED_BY(mutex_);
  std::map<std::string, std::string> help_ SURVEYOR_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_METRICS_H_
